// Microbenchmarks: condition-variable operation costs -- our transaction-
// friendly condvar head-to-head with std::condition_variable (the pthread
// mechanism it replaces), per TM backend.
//
// Default mode runs the google-benchmark suite.  `--json` instead runs a
// standalone 32-waiter notify-all cycle and writes BENCH_micro_condvar.json
// (ops/sec, abort/commit ratio, dedup hit rate, and the wake-batch counters
// that prove notify-all performs O(1) onCommit handler allocations), plus a
// BENCH_micro_condvar.metrics.json observability-registry sibling (+ .prom)
// with cv-wait / notify->wake percentiles from unmeasured timed rounds.
#include <benchmark/benchmark.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/condvar.h"
#include "core/legacy_cv.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tm/api.h"
#include "util/timing.h"

namespace {

using namespace tmcv;

// BENCH_foo.json -> BENCH_foo.metrics.json (registry snapshot sibling).
std::string metrics_path_for(const char* out_path) {
  std::string p(out_path);
  const std::string suffix = ".json";
  if (p.size() > suffix.size() &&
      p.compare(p.size() - suffix.size(), suffix.size(), suffix) == 0)
    p.resize(p.size() - suffix.size());
  return p + ".metrics.json";
}

tm::Backend backend_of(const benchmark::State& state) {
  switch (state.range(0)) {
    case 0:
      return tm::Backend::EagerSTM;
    case 1:
      return tm::Backend::LazySTM;
    default:
      return tm::Backend::HTM;
  }
}

// Notify with no waiter: the queue-probe transaction only (lost notify).
void BM_NotifyOneEmpty(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  CondVar cv;
  for (auto _ : state) benchmark::DoNotOptimize(cv.notify_one());
  tm::set_default_backend(tm::Backend::EagerSTM);
}
BENCHMARK(BM_NotifyOneEmpty)->Arg(0)->Arg(1)->Arg(2);

void BM_StdNotifyOneEmpty(benchmark::State& state) {
  std::condition_variable cv;
  for (auto _ : state) cv.notify_one();
}
BENCHMARK(BM_StdNotifyOneEmpty);

// Full sleep/wake round trip through a mutex-based critical section: the
// headline "overhead versus pthread condition variables" number.
template <typename CvT>
void roundtrip_loop(benchmark::State& state) {
  std::mutex m;
  CvT cv;
  bool token = false;
  std::atomic<bool> stop{false};
  std::thread partner([&] {
    for (;;) {
      std::unique_lock<std::mutex> lk(m);
      cv.wait(lk, [&] { return token || stop.load(); });
      if (stop.load()) return;
      token = false;
      lk.unlock();
      cv.notify_one();
    }
  });
  for (auto _ : state) {
    {
      std::unique_lock<std::mutex> lk(m);
      token = true;
    }
    cv.notify_one();
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return !token; });
  }
  stop.store(true);
  cv.notify_one();
  partner.join();
}

void BM_CvRoundtrip_TmCondVar(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  roundtrip_loop<condition_variable>(state);
  tm::set_default_backend(tm::Backend::EagerSTM);
}
BENCHMARK(BM_CvRoundtrip_TmCondVar)->Arg(0)->Arg(1)->Arg(2)->UseRealTime();

void BM_CvRoundtrip_StdCondVar(benchmark::State& state) {
  roundtrip_loop<std::condition_variable>(state);
}
BENCHMARK(BM_CvRoundtrip_StdCondVar)->UseRealTime();

// Notify from inside a transaction: dequeue + deferred (on-commit) post.
void BM_TxNotifyDeferredEmpty(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  CondVar cv;
  for (auto _ : state)
    tm::atomically([&] { cv.notify_one(); });
  tm::set_default_backend(tm::Backend::EagerSTM);
}
BENCHMARK(BM_TxNotifyDeferredEmpty)->Arg(0)->Arg(1)->Arg(2);

// waiter_count: a read-only queue-walk transaction.
void BM_WaiterCountEmpty(benchmark::State& state) {
  CondVar cv;
  for (auto _ : state) benchmark::DoNotOptimize(cv.waiter_count());
}
BENCHMARK(BM_WaiterCountEmpty);

// notify_best on an empty queue (selector-walk transaction).
void BM_NotifyBestEmpty(benchmark::State& state) {
  CondVar cv;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        cv.notify_best([](std::uint64_t tag) { return tag; }));
}
BENCHMARK(BM_NotifyBestEmpty);

// ---------------------------------------------------------------------------
// --json mode: 32-waiter notify-all cycles for BENCH_micro_condvar.json
// ---------------------------------------------------------------------------
//
// kWaiters threads park on the condvar; the main thread repeatedly
// notify-alls them from inside a transaction once the queue is full again.
// Throughput is waiters-woken per second; the stats deltas demonstrate the
// allocation-free batched wake path (zero onCommit handler allocations and
// one wake-batch flush per notify-all).

int run_json_mode(const char* out_path) {
  constexpr int kWaiters = 32;
  constexpr int kRounds = 200;

  CondVar cv;
  std::mutex m;
  std::atomic<bool> stop{false};
  std::atomic<int> exited{0};
  // The round counter is transactional state: it is bumped inside the
  // notify transaction, so an abort/retry rolls it back instead of
  // double-counting (outside transactions load() is a plain read).
  tm::var<std::uint64_t> round(0);
  std::vector<std::thread> waiters;
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      std::uint64_t seen = 0;
      m.lock();  // LockSync describes locks the caller already holds
      LockSync sync(m);
      while (!stop.load()) {
        // Wait for the next notify-all round (predicate re-checked under
        // the lock so a late thread never sleeps through its round).
        while (round.load() == seen && !stop.load()) cv.wait(sync);
        seen = round.load();
      }
      m.unlock();
      exited.fetch_add(1);
    });
  }

  const auto wait_for_full_queue = [&] {
    while (cv.waiter_count() < kWaiters) std::this_thread::yield();
  };

  wait_for_full_queue();  // warm-up: everyone parked once
  tm::stats_reset();
  const tm::Stats before = tm::stats_snapshot();

  // Measured rounds run with latency timing OFF: the wake cycle is so
  // short that the clock reads per wait measurably depress the committed
  // throughput number (~25% on the 1-core container).
  tmcv::Stopwatch sw;
  for (int r = 0; r < kRounds; ++r) {
    tm::atomically([&] {
      round.store(round.load() + 1);
      cv.notify_all();
    });
    wait_for_full_queue();
  }
  const double elapsed = sw.elapsed_seconds();

  const tm::Stats after = tm::stats_snapshot();

  // Unmeasured timed rounds: populate the cv-wait / notify->wake
  // histograms for the metrics sibling without perturbing the throughput
  // figure above.
  tmcv::obs::set_timing_enabled(true);
  for (int r = 0; r < kRounds / 4; ++r) {
    tm::atomically([&] {
      round.store(round.load() + 1);
      cv.notify_all();
    });
    wait_for_full_queue();
  }
  tmcv::obs::set_timing_enabled(false);
  stop.store(true);
  // A waiter can re-park after a single final notify (the stop check and
  // the enqueue are not atomic), so notify until every thread has exited.
  while (exited.load() < kWaiters) {
    cv.notify_all();
    std::this_thread::yield();
  }
  for (auto& th : waiters) th.join();

  const auto d = [&](std::uint64_t tm::Stats::*f) {
    return static_cast<double>(after.*f - before.*f);
  };
  const double attempts = d(&tm::Stats::commits) + d(&tm::Stats::aborts);
  const double wakes_per_sec = double(kWaiters) * kRounds / elapsed;
  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"micro_condvar_notify_all\",\n"
               "  \"backend\": \"EagerSTM\",\n"
               "  \"waiters\": %d,\n"
               "  \"rounds\": %d,\n"
               "  \"ops_per_sec\": %.0f,\n"
               "  \"notify_all_per_sec\": %.0f,\n"
               "  \"abort_rate\": %.6f,\n"
               "  \"abort_commit_ratio\": %.6f,\n"
               "  \"dedup_hit_rate\": %.6f,\n"
               "  \"commits\": %.0f,\n"
               "  \"aborts\": %.0f,\n"
               "  \"handler_allocs_per_notify_all\": %.4f,\n"
               "  \"deferred_wakes_per_notify_all\": %.2f,\n"
               "  \"wake_batches_per_notify_all\": %.4f\n"
               "}\n",
               kWaiters, kRounds, wakes_per_sec, kRounds / elapsed,
               attempts ? d(&tm::Stats::aborts) / attempts : 0.0,
               d(&tm::Stats::commits) != 0.0
                   ? d(&tm::Stats::aborts) / d(&tm::Stats::commits)
                   : 0.0,
               after.dedup_hit_rate(), d(&tm::Stats::commits),
               d(&tm::Stats::aborts),
               d(&tm::Stats::handlers_registered) / kRounds,
               d(&tm::Stats::deferred_wakes) / kRounds,
               d(&tm::Stats::wake_batches) / kRounds);
  std::fclose(f);
  const std::string mpath = metrics_path_for(out_path);
  if (!obs::write_metrics_files(obs::metrics_snapshot(), mpath)) {
    std::perror("write_metrics_files");
    return 1;
  }
  std::printf(
      "wrote %s (wakes/sec=%.0f, handler allocs per notify-all=%.4f) and %s\n",
      out_path, wakes_per_sec, d(&tm::Stats::handlers_registered) / kRounds,
      mpath.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0)
      return run_json_mode(i + 1 < argc ? argv[i + 1]
                                        : "BENCH_micro_condvar.json");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
