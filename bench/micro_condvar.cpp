// Microbenchmarks: condition-variable operation costs -- our transaction-
// friendly condvar head-to-head with std::condition_variable (the pthread
// mechanism it replaces), per TM backend.
#include <benchmark/benchmark.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "core/condvar.h"
#include "core/legacy_cv.h"
#include "tm/api.h"

namespace {

using namespace tmcv;

tm::Backend backend_of(const benchmark::State& state) {
  switch (state.range(0)) {
    case 0:
      return tm::Backend::EagerSTM;
    case 1:
      return tm::Backend::LazySTM;
    default:
      return tm::Backend::HTM;
  }
}

// Notify with no waiter: the queue-probe transaction only (lost notify).
void BM_NotifyOneEmpty(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  CondVar cv;
  for (auto _ : state) benchmark::DoNotOptimize(cv.notify_one());
  tm::set_default_backend(tm::Backend::EagerSTM);
}
BENCHMARK(BM_NotifyOneEmpty)->Arg(0)->Arg(1)->Arg(2);

void BM_StdNotifyOneEmpty(benchmark::State& state) {
  std::condition_variable cv;
  for (auto _ : state) cv.notify_one();
}
BENCHMARK(BM_StdNotifyOneEmpty);

// Full sleep/wake round trip through a mutex-based critical section: the
// headline "overhead versus pthread condition variables" number.
template <typename CvT>
void roundtrip_loop(benchmark::State& state) {
  std::mutex m;
  CvT cv;
  bool token = false;
  std::atomic<bool> stop{false};
  std::thread partner([&] {
    for (;;) {
      std::unique_lock<std::mutex> lk(m);
      cv.wait(lk, [&] { return token || stop.load(); });
      if (stop.load()) return;
      token = false;
      lk.unlock();
      cv.notify_one();
    }
  });
  for (auto _ : state) {
    {
      std::unique_lock<std::mutex> lk(m);
      token = true;
    }
    cv.notify_one();
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return !token; });
  }
  stop.store(true);
  cv.notify_one();
  partner.join();
}

void BM_CvRoundtrip_TmCondVar(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  roundtrip_loop<condition_variable>(state);
  tm::set_default_backend(tm::Backend::EagerSTM);
}
BENCHMARK(BM_CvRoundtrip_TmCondVar)->Arg(0)->Arg(1)->Arg(2)->UseRealTime();

void BM_CvRoundtrip_StdCondVar(benchmark::State& state) {
  roundtrip_loop<std::condition_variable>(state);
}
BENCHMARK(BM_CvRoundtrip_StdCondVar)->UseRealTime();

// Notify from inside a transaction: dequeue + deferred (on-commit) post.
void BM_TxNotifyDeferredEmpty(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  CondVar cv;
  for (auto _ : state)
    tm::atomically([&] { cv.notify_one(); });
  tm::set_default_backend(tm::Backend::EagerSTM);
}
BENCHMARK(BM_TxNotifyDeferredEmpty)->Arg(0)->Arg(1)->Arg(2);

// waiter_count: a read-only queue-walk transaction.
void BM_WaiterCountEmpty(benchmark::State& state) {
  CondVar cv;
  for (auto _ : state) benchmark::DoNotOptimize(cv.waiter_count());
}
BENCHMARK(BM_WaiterCountEmpty);

// notify_best on an empty queue (selector-walk transaction).
void BM_NotifyBestEmpty(benchmark::State& state) {
  CondVar cv;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        cv.notify_best([](std::uint64_t tag) { return tag; }));
}
BENCHMARK(BM_NotifyBestEmpty);

}  // namespace

BENCHMARK_MAIN();
