// Microbenchmarks: condition-variable operation costs -- our transaction-
// friendly condvar head-to-head with std::condition_variable (the pthread
// mechanism it replaces), per TM backend.
//
// Default mode runs the google-benchmark suite.  `--json` instead runs a
// standalone 32-waiter notify-all cycle and writes BENCH_micro_condvar.json
// (ops/sec, abort/commit ratio, dedup hit rate, and the wake-batch counters
// that prove notify-all performs O(1) onCommit handler allocations), plus a
// BENCH_micro_condvar.metrics.json observability-registry sibling (+ .prom)
// with cv-wait / notify->wake percentiles from unmeasured timed rounds.
//
// `--trace PATH` appends an unmeasured traced herd phase and writes its
// Chrome trace to PATH (input for tools/trace_report.py --causal).
// `--serve-metrics[=PORT]` starts the live telemetry endpoint for the run;
// `--hold-ms=N` keeps it up N ms after the workload finishes.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/c_api.h"
#include "core/condvar.h"
#include "core/legacy_cv.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/waitgraph.h"
#include "obs/watchdog.h"
#include "sync/semaphore.h"
#include "sync/waitpoint.h"
#include "tm/api.h"
#include "util/timing.h"

// The --json-herd mode A/Bs against a pre-wake-path-overhaul build of this
// same source (spin-then-park + wait-morphing landed together), so the new
// knobs and counters are feature-tested rather than assumed.
#if __has_include("sync/wait_morph.h")
#include "sync/spin.h"
#include "sync/wait_morph.h"
#include "sync/wake_stats.h"
#define TMCV_BENCH_HAVE_WAKE_PATH 1
#else
#define TMCV_BENCH_HAVE_WAKE_PATH 0
#endif

namespace {

using namespace tmcv;

// BENCH_foo.json -> BENCH_foo.metrics.json (registry snapshot sibling).
std::string metrics_path_for(const char* out_path) {
  std::string p(out_path);
  const std::string suffix = ".json";
  if (p.size() > suffix.size() &&
      p.compare(p.size() - suffix.size(), suffix.size(), suffix) == 0)
    p.resize(p.size() - suffix.size());
  return p + ".metrics.json";
}

tm::Backend backend_of(const benchmark::State& state) {
  switch (state.range(0)) {
    case 0:
      return tm::Backend::EagerSTM;
    case 1:
      return tm::Backend::LazySTM;
    default:
      return tm::Backend::HTM;
  }
}

// Notify with no waiter: the queue-probe transaction only (lost notify).
void BM_NotifyOneEmpty(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  CondVar cv;
  for (auto _ : state) benchmark::DoNotOptimize(cv.notify_one());
  tm::set_default_backend(tm::Backend::EagerSTM);
}
BENCHMARK(BM_NotifyOneEmpty)->Arg(0)->Arg(1)->Arg(2);

void BM_StdNotifyOneEmpty(benchmark::State& state) {
  std::condition_variable cv;
  for (auto _ : state) cv.notify_one();
}
BENCHMARK(BM_StdNotifyOneEmpty);

// Full sleep/wake round trip through a mutex-based critical section: the
// headline "overhead versus pthread condition variables" number.
template <typename CvT>
void roundtrip_loop(benchmark::State& state) {
  std::mutex m;
  CvT cv;
  bool token = false;
  std::atomic<bool> stop{false};
  std::thread partner([&] {
    for (;;) {
      std::unique_lock<std::mutex> lk(m);
      cv.wait(lk, [&] { return token || stop.load(); });
      if (stop.load()) return;
      token = false;
      lk.unlock();
      cv.notify_one();
    }
  });
  for (auto _ : state) {
    {
      std::unique_lock<std::mutex> lk(m);
      token = true;
    }
    cv.notify_one();
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return !token; });
  }
  stop.store(true);
  cv.notify_one();
  partner.join();
}

void BM_CvRoundtrip_TmCondVar(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  roundtrip_loop<condition_variable>(state);
  tm::set_default_backend(tm::Backend::EagerSTM);
}
BENCHMARK(BM_CvRoundtrip_TmCondVar)->Arg(0)->Arg(1)->Arg(2)->UseRealTime();

void BM_CvRoundtrip_StdCondVar(benchmark::State& state) {
  roundtrip_loop<std::condition_variable>(state);
}
BENCHMARK(BM_CvRoundtrip_StdCondVar)->UseRealTime();

// Notify from inside a transaction: dequeue + deferred (on-commit) post.
void BM_TxNotifyDeferredEmpty(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  CondVar cv;
  for (auto _ : state)
    tm::atomically([&] { cv.notify_one(); });
  tm::set_default_backend(tm::Backend::EagerSTM);
}
BENCHMARK(BM_TxNotifyDeferredEmpty)->Arg(0)->Arg(1)->Arg(2);

// waiter_count: a read-only queue-walk transaction.
void BM_WaiterCountEmpty(benchmark::State& state) {
  CondVar cv;
  for (auto _ : state) benchmark::DoNotOptimize(cv.waiter_count());
}
BENCHMARK(BM_WaiterCountEmpty);

// notify_best on an empty queue (selector-walk transaction).
void BM_NotifyBestEmpty(benchmark::State& state) {
  CondVar cv;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        cv.notify_best([](std::uint64_t tag) { return tag; }));
}
BENCHMARK(BM_NotifyBestEmpty);

// ---------------------------------------------------------------------------
// --json mode: 32-waiter notify-all cycles for BENCH_micro_condvar.json
// ---------------------------------------------------------------------------
//
// kWaiters threads park on the condvar; the main thread repeatedly
// notify-alls them from inside a transaction once the queue is full again.
// Throughput is waiters-woken per second; the stats deltas demonstrate the
// allocation-free batched wake path (zero onCommit handler allocations and
// one wake-batch flush per notify-all).

int run_json_mode(const char* out_path) {
  constexpr int kWaiters = 32;
  constexpr int kRounds = 200;

  CondVar cv;
  std::mutex m;
  std::atomic<bool> stop{false};
  std::atomic<int> exited{0};
  // The round counter is transactional state: it is bumped inside the
  // notify transaction, so an abort/retry rolls it back instead of
  // double-counting (outside transactions load() is a plain read).
  tm::var<std::uint64_t> round(0);
  std::vector<std::thread> waiters;
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      std::uint64_t seen = 0;
      m.lock();  // LockSync describes locks the caller already holds
      LockSync sync(m);
      while (!stop.load()) {
        // Wait for the next notify-all round (predicate re-checked under
        // the lock so a late thread never sleeps through its round).
        while (round.load() == seen && !stop.load()) cv.wait(sync);
        seen = round.load();
      }
      m.unlock();
      exited.fetch_add(1);
    });
  }

  const auto wait_for_full_queue = [&] {
    while (cv.waiter_count() < kWaiters) std::this_thread::yield();
  };

  wait_for_full_queue();  // warm-up: everyone parked once
  tm::stats_reset();
  const tm::Stats before = tm::stats_snapshot();

  // Measured rounds run with latency timing OFF: the wake cycle is so
  // short that the clock reads per wait measurably depress the committed
  // throughput number (~25% on the 1-core container).
  tmcv::Stopwatch sw;
  for (int r = 0; r < kRounds; ++r) {
    tm::atomically([&] {
      round.store(round.load() + 1);
      cv.notify_all();
    });
    wait_for_full_queue();
  }
  const double elapsed = sw.elapsed_seconds();

  const tm::Stats after = tm::stats_snapshot();

  // Unmeasured timed rounds: populate the cv-wait / notify->wake
  // histograms for the metrics sibling without perturbing the throughput
  // figure above.
  tmcv::obs::set_timing_enabled(true);
  for (int r = 0; r < kRounds / 4; ++r) {
    tm::atomically([&] {
      round.store(round.load() + 1);
      cv.notify_all();
    });
    wait_for_full_queue();
  }
  tmcv::obs::set_timing_enabled(false);
  stop.store(true);
  // A waiter can re-park after a single final notify (the stop check and
  // the enqueue are not atomic), so notify until every thread has exited.
  while (exited.load() < kWaiters) {
    cv.notify_all();
    std::this_thread::yield();
  }
  for (auto& th : waiters) th.join();

  const auto d = [&](std::uint64_t tm::Stats::*f) {
    return static_cast<double>(after.*f - before.*f);
  };
  const double attempts = d(&tm::Stats::commits) + d(&tm::Stats::aborts);
  const double wakes_per_sec = double(kWaiters) * kRounds / elapsed;
  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"micro_condvar_notify_all\",\n"
               "  \"backend\": \"EagerSTM\",\n"
               "  \"waiters\": %d,\n"
               "  \"rounds\": %d,\n"
               "  \"ops_per_sec\": %.0f,\n"
               "  \"notify_all_per_sec\": %.0f,\n"
               "  \"abort_rate\": %.6f,\n"
               "  \"abort_commit_ratio\": %.6f,\n"
               "  \"dedup_hit_rate\": %.6f,\n"
               "  \"commits\": %.0f,\n"
               "  \"aborts\": %.0f,\n"
               "  \"handler_allocs_per_notify_all\": %.4f,\n"
               "  \"deferred_wakes_per_notify_all\": %.2f,\n"
               "  \"wake_batches_per_notify_all\": %.4f\n"
               "}\n",
               kWaiters, kRounds, wakes_per_sec, kRounds / elapsed,
               attempts ? d(&tm::Stats::aborts) / attempts : 0.0,
               d(&tm::Stats::commits) != 0.0
                   ? d(&tm::Stats::aborts) / d(&tm::Stats::commits)
                   : 0.0,
               after.dedup_hit_rate(), d(&tm::Stats::commits),
               d(&tm::Stats::aborts),
               d(&tm::Stats::handlers_registered) / kRounds,
               d(&tm::Stats::deferred_wakes) / kRounds,
               d(&tm::Stats::wake_batches) / kRounds);
  std::fclose(f);
  const std::string mpath = metrics_path_for(out_path);
  if (!obs::write_metrics_files(obs::metrics_snapshot(), mpath)) {
    std::perror("write_metrics_files");
    return 1;
  }
  std::printf(
      "wrote %s (wakes/sec=%.0f, handler allocs per notify-all=%.4f) and %s\n",
      out_path, wakes_per_sec, d(&tm::Stats::handlers_registered) / kRounds,
      mpath.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// --json-herd mode: wake-path A/B for BENCH_micro_condvar_herd.json
// ---------------------------------------------------------------------------
//
// Two phases exercising the lock-based facade (no transactions), where the
// wake-path overhaul lives:
//
//   herd      -- kWaiters threads park on tmcv::condition_variable under one
//                std::mutex; the notifier bumps a round counter and
//                notify_alls UNDER the lock (the classic herd anti-pattern).
//                With wait-morphing the scoped notify makes one waiter
//                runnable per unlock instead of stampeding the mutex.
//                wake_to_run_per_sec counts waiters through their critical
//                sections per second.
//
//   pingpong  -- two threads alternating on a pair of BinarySemaphores with
//                the spin budget pinned: the uncontended wake path, where
//                adaptive spinning should convert parks into parks_avoided
//                (the CI perf-smoke asserts parks_avoided > 0 here).
int run_json_herd_mode(const char* out_path) {
  constexpr int kWaiters = 8;
  constexpr int kRounds = 2000;

  // One complete herd pass (spawn, warm up, run kRounds measured, tear
  // down), returning the measured elapsed seconds.  It runs twice per arm
  // of an A/B over the always-on wait-point registry: this is the densest
  // park/wake traffic in the repo, so the off/on throughput ratio prices
  // the per-park publish (the committed waitpoint_overhead_pct, gated at
  // <= 2% in CI).  The committed headline numbers and wake counters come
  // from the ENABLED arm -- the configuration every real run ships with.
  // `round_ticks`, when given, receives one TSC delta per measured round
  // (the overhead A/B compares per-round medians; see below).
  const auto herd_pass = [](int rounds,
                            std::vector<std::uint64_t>* round_ticks) {
    std::mutex m;
    condition_variable cv;
    std::uint64_t round = 0;
    bool stop = false;
    std::vector<std::thread> waiters;
    waiters.reserve(kWaiters);
    for (int t = 0; t < kWaiters; ++t) {
      waiters.emplace_back([&] {
        std::uint64_t seen = 0;
        std::unique_lock<std::mutex> lk(m);
        while (!stop) {
          while (round == seen && !stop) cv.wait(lk);
          seen = round;
        }
      });
    }
    const auto wait_for_full_queue = [&] {
      while (cv.raw().waiter_count() < kWaiters) std::this_thread::yield();
    };

    wait_for_full_queue();  // warm-up: everyone parked once
    tmcv::Stopwatch sw;
    for (int r = 0; r < rounds; ++r) {
      const std::uint64_t t0 = round_ticks != nullptr ? TscClock::now() : 0;
      {
        std::unique_lock<std::mutex> lk(m);
        ++round;
#if TMCV_BENCH_HAVE_WAKE_PATH
        cv.notify_all(lk);  // scoped: morph the herd onto the lock's chain
#else
        cv.notify_all();  // pre-overhaul facade: herd wake under the lock
#endif
      }
      wait_for_full_queue();
      if (round_ticks != nullptr)
        round_ticks->push_back(TscClock::now() - t0);
    }
    const double elapsed = sw.elapsed_seconds();
    {
      std::unique_lock<std::mutex> lk(m);
      stop = true;
      cv.notify_all();
    }
    for (auto& th : waiters) th.join();
    return elapsed;
  };

  // Paired A/B on per-round MEDIANS: each rep runs the two arms back to
  // back recording every round's duration, takes the ratio of the two
  // PER-REP medians, and the overhead is the median ratio across reps.
  // Wall-clock elapsed per arm is useless on a busy shared machine: a
  // round preempted by unrelated load costs 100x a clean one, so a pass's
  // total is mostly a count of how many preemptions it happened to eat.
  // The median round is immune to that tail; ratioing ADJACENT passes
  // cancels slow load drift (both arms of a rep see the same machine);
  // and the median across reps discards reps where a load phase flipped
  // mid-rep anyway.
  constexpr int kAbReps = 6;
  const auto median_of = [](std::vector<std::uint64_t>& v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return static_cast<double>(v[v.size() / 2]);
  };
  double rep_ratios[kAbReps];
  std::vector<std::uint64_t> off_rounds, on_rounds;
  off_rounds.reserve(kRounds);
  on_rounds.reserve(kRounds);
  for (int rep = 0; rep < kAbReps; ++rep) {
    off_rounds.clear();
    on_rounds.clear();
    set_waitpoints_enabled(false);
    herd_pass(kRounds, &off_rounds);
    set_waitpoints_enabled(true);
    herd_pass(kRounds, &on_rounds);
    rep_ratios[rep] = median_of(on_rounds) / median_of(off_rounds);
  }
  std::sort(rep_ratios, rep_ratios + kAbReps);
  const double median_ratio =
      (rep_ratios[kAbReps / 2 - 1] + rep_ratios[kAbReps / 2]) / 2.0;
#if TMCV_BENCH_HAVE_WAKE_PATH
  // Wake counters cover exactly one enabled pass (plus the pingpong below)
  // so the committed magnitudes stay comparable across revisions.
  const WakeStats wake_before = wake_stats_snapshot();
#endif
  const double herd_elapsed = herd_pass(kRounds, nullptr);
  const double rate_on = double(kWaiters) * kRounds / herd_elapsed;
  // Positive = publishing wait points costs throughput; a negative value
  // (noise) is reported as measured, not clamped.
  const double waitpoint_overhead_pct = (median_ratio - 1.0) * 100.0;

  // Phase 2: uncontended semaphore ping-pong.  The budget is pinned to the
  // default explicitly so the CI parks_avoided > 0 assertion holds even if
  // TMCV_NO_SPIN leaked into the environment.
  constexpr int kPingRounds = 20000;
#if TMCV_BENCH_HAVE_WAKE_PATH
  const unsigned saved_budget = spin_budget();
  set_spin_budget(16);
#endif
  BinarySemaphore ping, pong;
  std::thread partner([&] {
    for (int i = 0; i < kPingRounds; ++i) {
      ping.wait();
      pong.post();
    }
  });
  tmcv::Stopwatch sw2;
  for (int i = 0; i < kPingRounds; ++i) {
    ping.post();
    pong.wait();
  }
  const double ping_elapsed = sw2.elapsed_seconds();
  partner.join();
#if TMCV_BENCH_HAVE_WAKE_PATH
  set_spin_budget(saved_budget);
  WakeStats wd = wake_stats_snapshot();
  wd -= wake_before;
  const int have_wake_path = 1;
  const int morphing = wait_morphing() ? 1 : 0;
#else
  struct {
    std::uint64_t spin_attempts = 0, spin_rounds = 0, parks_avoided = 0,
                  parks = 0, requeues = 0, handoffs = 0;
  } wd;
  const int have_wake_path = 0;
  const int morphing = 0;
#endif

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"benchmark\": \"micro_condvar_herd\",\n"
      "  \"have_wake_path\": %d,\n"
      "  \"wait_morphing\": %d,\n"
      // Headline alias for tools/bench_check.py's throughput floor: the
      // herd benchmark's "operation" is one waiter carried wake-to-run.
      "  \"ops_per_sec\": %.0f,\n"
      "  \"waitpoint_overhead_pct\": %.2f,\n"
      "  \"herd\": {\n"
      "    \"waiters\": %d,\n"
      "    \"rounds\": %d,\n"
      "    \"wake_to_run_per_sec\": %.0f,\n"
      "    \"notify_all_per_sec\": %.0f\n"
      "  },\n"
      "  \"pingpong\": {\n"
      "    \"rounds\": %d,\n"
      "    \"roundtrips_per_sec\": %.0f\n"
      "  },\n"
      "  \"wake\": {\n"
      "    \"spin_attempts\": %llu,\n"
      "    \"spin_rounds\": %llu,\n"
      "    \"parks_avoided\": %llu,\n"
      "    \"parks\": %llu,\n"
      "    \"requeues\": %llu,\n"
      "    \"handoffs\": %llu\n"
      "  }\n"
      "}\n",
      have_wake_path, morphing, rate_on, waitpoint_overhead_pct, kWaiters,
      kRounds, rate_on, kRounds / herd_elapsed,
      kPingRounds, kPingRounds / ping_elapsed,
      static_cast<unsigned long long>(wd.spin_attempts),
      static_cast<unsigned long long>(wd.spin_rounds),
      static_cast<unsigned long long>(wd.parks_avoided),
      static_cast<unsigned long long>(wd.parks),
      static_cast<unsigned long long>(wd.requeues),
      static_cast<unsigned long long>(wd.handoffs));
  std::fclose(f);
  std::printf(
      "wrote %s (wake_to_run/sec=%.0f, parks_avoided=%llu, "
      "waitpoint_overhead=%.2f%%)\n",
      out_path, rate_on, static_cast<unsigned long long>(wd.parks_avoided),
      waitpoint_overhead_pct);
  return 0;
}

// ---------------------------------------------------------------------------
// --lost-wakeup mode: deterministic fault injection for the stuck-thread
// diagnosis pipeline (the CI stall-smoke job and the OBSERVABILITY.md
// walkthrough)
// ---------------------------------------------------------------------------
//
// A straggler thread waits on its own condition variable for a round
// counter the main thread advances.  For the first `drop_round - 1` rounds
// the advance is followed by notify_one (healthy traffic: the cv
// accumulates a notify history).  At `drop_round` the counter is advanced
// WITHOUT the notify -- the textbook lost wakeup: the condition changed,
// nobody was told, and the predicate loop cannot save a thread that never
// wakes to re-check it.  A keeper thread then runs small transactions so
// the rest of the process visibly makes progress, which is exactly the
// signature the waitgraph probe's suspect heuristic keys on: episode
// outlived its windows + cv went silent + cv was notified before + commits
// advanced.  The run waits for the watchdog's stuck_thread rule to fire
// (the fire edge writes the flight dump), optionally lingers so an
// external scraper can inspect /waitgraph, then delivers the dropped
// notify for a clean exit.  Exit 0 iff the alert fired.
int run_lost_wakeup_mode(int drop_round, long stuck_ms, long linger_ms,
                         const char* dump_path) {
  // Fast cadence so suspect confirmation (stuck_windows probe ticks) and
  // the watchdog's consecutive-breach filter resolve in CI time; the
  // stuck_thread threshold is overridden from its 3 s production default.
  obs::TimeSeriesOptions ts;
  ts.interval_ms = 100;
  obs::timeseries().start(ts);
  std::vector<obs::WatchdogRule> rules = obs::default_rules();
  for (obs::WatchdogRule& r : rules)
    if (r.kind == obs::RuleKind::kStuckThread)
      r.threshold = static_cast<double>(stuck_ms);
  obs::watchdog().start(rules, dump_path != nullptr ? dump_path : "");

  std::mutex m;
  condition_variable cv;
  std::uint64_t round = 0;
  bool exit_now = false;
  std::thread straggler([&] {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(m);
    while (!exit_now) {
      while (round == seen && !exit_now) cv.wait(lk);
      seen = round;
    }
  });
  const auto straggler_parked = [&] {
    while (cv.raw().waiter_count() < 1) std::this_thread::yield();
  };

  straggler_parked();
  for (int r = 1; r < drop_round; ++r) {
    {
      std::unique_lock<std::mutex> lk(m);
      ++round;
      cv.notify_one();
    }
    straggler_parked();  // woke, consumed the round, re-parked
  }
  {
    std::unique_lock<std::mutex> lk(m);
    ++round;  // the condition changes; the notify is "forgotten"
  }
  std::printf("lost-wakeup: dropped the notify for round %d\n", drop_round);
  std::fflush(stdout);

  // Keeper: healthy transactional progress while the straggler hangs, so
  // the diagnosis is "this thread is stuck", not "the process is wedged".
  std::atomic<bool> keeper_stop{false};
  tm::var<std::uint64_t> beat(0);
  std::thread keeper([&] {
    while (!keeper_stop.load()) {
      tm::atomically([&] { beat.store(beat.load() + 1); });
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  bool fired = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!fired && std::chrono::steady_clock::now() < deadline) {
    for (const obs::AlertState& st : obs::watchdog().alerts())
      if (st.rule.kind == obs::RuleKind::kStuckThread && st.fired_count > 0)
        fired = true;
    if (!fired)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (fired && linger_ms > 0)  // hold the evidence up for live scrapers
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));

  keeper_stop.store(true);
  keeper.join();
  {
    std::unique_lock<std::mutex> lk(m);
    exit_now = true;
    cv.notify_one();  // the fix: deliver the wakeup the bug dropped
  }
  straggler.join();
  obs::watchdog().stop();
  obs::timeseries().stop();
  if (!fired) {
    std::fprintf(stderr,
                 "lost-wakeup: stuck_thread never fired within 60 s\n");
    return 1;
  }
  std::printf("lost-wakeup: stuck_thread fired%s%s\n",
              dump_path != nullptr ? ", flight dump at " : "",
              dump_path != nullptr ? dump_path : "");
  return 0;
}

// ---------------------------------------------------------------------------
// --trace mode: unmeasured traced herd for the offline causal analysis
// ---------------------------------------------------------------------------
//
// A smaller herd run with event capture ON, written out as a Chrome trace
// for `tools/trace_report.py --causal` (notify->wake edge reconstruction,
// token conservation).  This is a separate phase rather than tracing the
// measured herd because the measured phases synchronize rounds by spinning
// on the transactional waiter_count(): with capture enabled each probe
// would push a txn.commit record, wrapping the notifier's ring and dropping
// the very cv.notify events the checker matches tokens against.  Rounds are
// synchronized with a plain atomic ack counter instead, so the rings hold
// the complete event stream (zero drops).
int run_traced_herd(const char* trace_path) {
  constexpr int kWaiters = 8;
  constexpr int kRounds = 300;

  std::mutex m;
  condition_variable cv;
  std::uint64_t round = 0;
  bool stop = false;
  std::atomic<std::uint64_t> acks{0};
  tmcv::obs::trace_reset();
  tmcv::obs::set_trace_enabled(true);
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      std::uint64_t seen = 0;
      std::unique_lock<std::mutex> lk(m);
      while (!stop) {
        while (round == seen && !stop) cv.wait(lk);
        seen = round;
        acks.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int r = 1; r <= kRounds; ++r) {
    {
      std::unique_lock<std::mutex> lk(m);
      ++round;
#if TMCV_BENCH_HAVE_WAKE_PATH
      cv.notify_all(lk);  // scoped: morph the herd onto the lock's chain
#else
      cv.notify_all();
#endif
    }
    // A waiter acking round r may not have re-parked yet when round r+1 is
    // notified; the predicate re-check under the mutex makes that benign,
    // and the notify's woken-count arg records how many actually woke.
    while (acks.load(std::memory_order_relaxed) <
           static_cast<std::uint64_t>(kWaiters) * static_cast<unsigned>(r))
      std::this_thread::yield();
  }
  {
    std::unique_lock<std::mutex> lk(m);
    stop = true;
    cv.notify_all();
  }
  for (auto& th : waiters) th.join();
  tmcv::obs::set_trace_enabled(false);
  const tmcv::obs::TraceCounts tc = tmcv::obs::trace_counts();
  if (!tmcv::obs::write_chrome_trace(trace_path)) {
    std::perror("write_chrome_trace");
    return 1;
  }
  std::printf("wrote %s (%llu events, %llu dropped)\n", trace_path,
              static_cast<unsigned long long>(tc.recorded),
              static_cast<unsigned long long>(tc.dropped));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Flags consumed here (and stripped before google-benchmark sees argv):
  //   --serve-metrics[=PORT]  live telemetry endpoint for the whole run
  //   --hold-ms=N             keep the endpoint alive N ms after the run
  //   --trace PATH            append the traced herd phase, write PATH
  //   --history[=MS]          time-series recorder at MS ms cadence (1000)
  //   --watchdog              SLO watchdog on default rules (implies
  //                           --history; enables timing + attribution)
  //   --lost-wakeup[=ROUND]   inject a lost wakeup at ROUND (default 3) and
  //                           wait for the stuck_thread alert (manages its
  //                           own recorder + watchdog; exit 0 iff it fired)
  //   --stuck-ms=N            stuck_thread threshold override (default 500)
  //   --linger-ms=N           hold the stuck state N ms after the fire so a
  //                           live scraper can hit /waitgraph
  //   --dump=PATH             watchdog flight-dump path for --lost-wakeup
  bool serve = false;
  int serve_port = 0;
  long hold_ms = 0;
  long history_ms = 0;
  bool watchdog_on = false;
  const char* trace_path = nullptr;
  // 0 = google-benchmark, 1 = --json, 2 = --json-herd, 3 = --lost-wakeup
  int mode = 0;
  const char* out_path = nullptr;
  int lost_round = 3;
  long stuck_ms = 500;
  long linger_ms = 0;
  const char* dump_path = nullptr;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--serve-metrics", 15) == 0 &&
        (a[15] == '\0' || a[15] == '=')) {
      serve = true;
      if (a[15] == '=') serve_port = std::atoi(a + 16);
    } else if (std::strncmp(a, "--hold-ms=", 10) == 0) {
      hold_ms = std::atol(a + 10);
    } else if (std::strncmp(a, "--history", 9) == 0 &&
               (a[9] == '\0' || a[9] == '=')) {
      history_ms = a[9] == '=' ? std::atol(a + 10) : 1000;
      if (history_ms <= 0) history_ms = 1000;
    } else if (std::strcmp(a, "--watchdog") == 0) {
      watchdog_on = true;
    } else if (std::strcmp(a, "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(a, "--json") == 0) {
      mode = 1;
      if (i + 1 < argc && argv[i + 1][0] != '-') out_path = argv[++i];
    } else if (std::strcmp(a, "--json-herd") == 0) {
      mode = 2;
      if (i + 1 < argc && argv[i + 1][0] != '-') out_path = argv[++i];
    } else if (std::strncmp(a, "--lost-wakeup", 13) == 0 &&
               (a[13] == '\0' || a[13] == '=')) {
      mode = 3;
      if (a[13] == '=') lost_round = std::atoi(a + 14);
      if (lost_round < 2) lost_round = 2;  // need >= 1 healthy notify first
    } else if (std::strncmp(a, "--stuck-ms=", 11) == 0) {
      stuck_ms = std::atol(a + 11);
    } else if (std::strncmp(a, "--linger-ms=", 12) == 0) {
      linger_ms = std::atol(a + 12);
    } else if (std::strncmp(a, "--dump=", 7) == 0) {
      dump_path = a + 7;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (serve) {
    tmcv::obs::set_attribution_enabled(true);
    const int port = tmcv_telemetry_start(serve_port);
    if (port < 0) {
      std::fprintf(stderr,
                   "micro_condvar: failed to start telemetry on port %d: %s\n",
                   serve_port, std::strerror(errno));
      return 1;
    }
    std::printf("telemetry: http://127.0.0.1:%d/metrics\n", port);
    std::fflush(stdout);
  }
  if (mode == 3) {
    // --lost-wakeup runs its own recorder + watchdog (fast cadence, low
    // stuck threshold); the generic flags would double-start them.
    watchdog_on = false;
    history_ms = 0;
  }
  if (watchdog_on && history_ms == 0) history_ms = 1000;
  if (watchdog_on) {
    tmcv::obs::set_timing_enabled(true);
    tmcv::obs::set_attribution_enabled(true);
  }
  if (history_ms > 0) {
    tmcv::obs::TimeSeriesOptions ts;
    ts.interval_ms = static_cast<std::uint32_t>(history_ms);
    tmcv::obs::timeseries().start(ts);
  }
  if (watchdog_on)
    tmcv::obs::watchdog().start(tmcv::obs::default_rules());
  int rc = 0;
  if (mode == 1) {
    rc = run_json_mode(out_path ? out_path : "BENCH_micro_condvar.json");
  } else if (mode == 2) {
    rc = run_json_herd_mode(out_path ? out_path
                                     : "BENCH_micro_condvar_herd.json");
  } else if (mode == 3) {
    rc = run_lost_wakeup_mode(lost_round, stuck_ms, linger_ms, dump_path);
  }
  if (rc == 0 && trace_path != nullptr) rc = run_traced_herd(trace_path);
  if (mode == 0 && trace_path == nullptr) {
    int bench_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&bench_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               passthrough.data()))
      return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  if (serve) {
    if (hold_ms > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
    tmcv_telemetry_stop();
  }
  if (watchdog_on) tmcv::obs::watchdog().stop();
  if (history_ms > 0) tmcv::obs::timeseries().stop();
  return rc;
}
