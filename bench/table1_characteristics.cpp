// Table 1 reproduction: synchronization characteristics -- total
// transactions, condvar transactions (barrier subset in parentheses), and
// refactored continuations -- for the paper's PARSEC sources and for our
// mini-kernel ports side by side.  Our counts are the static audit each
// kernel declares next to the code it counts (see src/parsec/*.cpp).
#include <cstdio>

#include "parsec/registry.h"
#include "parsec/runner.h"  // links the kernels so their audits register

int main() {
  using namespace tmcv::parsec;
  // Touching the kernel table guarantees every kernel TU is linked in and
  // its static registration ran.
  (void)kernels();

  std::printf("Table 1: Synchronization characteristics\n");
  std::printf("%-14s | %-26s | %-26s | %-26s\n", "", "Total Transactions",
              "CondVar Transactions", "Refactored Continuations");
  std::printf("%-14s | %-12s %-12s | %-12s %-12s | %-12s %-12s\n",
              "Benchmark", "paper", "ours", "paper", "ours", "paper", "ours");
  std::printf("----------------------------------------------------------"
              "----------------------------------------\n");

  int p_total = 0, p_cv = 0, p_cvb = 0, p_ref = 0, p_refb = 0;
  int o_total = 0, o_cv = 0, o_cvb = 0, o_ref = 0, o_refb = 0;
  for (const PaperTableRow& paper : paper_table1()) {
    const SyncCharacteristics* ours = nullptr;
    for (const auto& row : registered_characteristics())
      if (row.benchmark == paper.benchmark) ours = &row;
    char p_cv_s[32], o_cv_s[32], p_ref_s[32], o_ref_s[32];
    std::snprintf(p_cv_s, sizeof(p_cv_s), "%d (%d)", paper.condvar_transactions,
                  paper.condvar_transactions_barrier);
    std::snprintf(p_ref_s, sizeof(p_ref_s), "%d (%d)",
                  paper.refactored_continuations, paper.refactored_barrier);
    std::snprintf(o_cv_s, sizeof(o_cv_s), "%d (%d)",
                  ours ? ours->condvar_transactions : -1,
                  ours ? ours->condvar_transactions_barrier : -1);
    std::snprintf(o_ref_s, sizeof(o_ref_s), "%d (%d)",
                  ours ? ours->refactored_continuations : -1,
                  ours ? ours->refactored_barrier : -1);
    std::printf("%-14s | %-12d %-12d | %-12s %-12s | %-12s %-12s\n",
                paper.benchmark, paper.total_transactions,
                ours ? ours->total_transactions : -1, p_cv_s, o_cv_s, p_ref_s,
                o_ref_s);
    p_total += paper.total_transactions;
    p_cv += paper.condvar_transactions;
    p_cvb += paper.condvar_transactions_barrier;
    p_ref += paper.refactored_continuations;
    p_refb += paper.refactored_barrier;
    if (ours) {
      o_total += ours->total_transactions;
      o_cv += ours->condvar_transactions;
      o_cvb += ours->condvar_transactions_barrier;
      o_ref += ours->refactored_continuations;
      o_refb += ours->refactored_barrier;
    }
  }
  std::printf("----------------------------------------------------------"
              "----------------------------------------\n");
  std::printf("%-14s | %-12d %-12d | %-6d (%d)  %-6d (%d)  | %-6d (%d)  "
              "%-6d (%d)\n",
              "TOTAL", p_total, o_total, p_cv, p_cvb, o_cv, o_cvb, p_ref,
              p_refb, o_ref, o_refb);
  std::printf("\nPaper TOTAL row: 65 / 19 (6) / 11 (5). Differences per "
              "benchmark are explained in each kernel's audit comment "
              "(src/parsec/*.cpp): our ports reproduce the condition-"
              "synchronization skeletons, not the unrelated data-structure "
              "critical sections (largest gap: raytrace).\n");
  return 0;
}
