// Figure 3 reproduction: per-benchmark speedup of each software system
// versus the Parsec+pthreadCondVar baseline, plus the geometric mean --
// on both "machines" (STM backend = Westmere panel, HTM backend = Haswell
// panel).  Speedups are measured at each machine's maximum thread count,
// matching how the paper's bar chart summarizes its line plots.
//
// Usage: fig3_speedup [--quick] [--trials N] [--scale X]
#include <cstdio>
#include <vector>

#include "figure_common.h"

namespace {

using namespace tmcv;
using namespace tmcv::bench;

void run_panel(const char* panel, tm::Backend backend, bool haswell,
               const FigureOptions& opt) {
  tm::set_default_backend(backend);
  std::printf("\n== Figure 3(%s): speedup vs Parsec+pthreadCondVar ==\n",
              panel);
  std::printf("%-14s %10s %14s %20s\n", "benchmark", "threads",
              "Parsec+TMCondVar", "TMParsec+TMCondVar");
  std::vector<double> tmcv_speedups, tm_speedups;
  for (const parsec::KernelInfo& kernel : parsec::kernels()) {
    const auto& sweep =
        haswell ? kernel.threads_haswell : kernel.threads_westmere;
    const int threads = sweep.back();
    parsec::KernelConfig cfg;
    cfg.threads = threads;
    cfg.scale = opt.scale;
    cfg.seed = opt.seed;
    auto mean_time = [&](parsec::System sys) {
      const auto times =
          run_trials(static_cast<std::size_t>(opt.trials),
                     [&] { return kernel.run(sys, cfg).seconds; });
      return summarize(times).mean;
    };
    const double base = mean_time(parsec::System::Pthread);
    const double t_tmcv = mean_time(parsec::System::TmCv);
    const double t_tm = mean_time(parsec::System::Tm);
    const double s_tmcv = base / t_tmcv;
    const double s_tm = base / t_tm;
    tmcv_speedups.push_back(s_tmcv);
    tm_speedups.push_back(s_tm);
    std::printf("%-14s %10d %16.3f %20.3f\n", kernel.name.c_str(), threads,
                s_tmcv, s_tm);
    std::printf("CSV,Figure3-%s,%s,%d,%.4f,%.4f\n", panel,
                kernel.name.c_str(), threads, s_tmcv, s_tm);
  }
  std::printf("%-14s %10s %16.3f %20.3f   (geometric mean)\n", "GEOMEAN", "",
              geomean(tmcv_speedups), geomean(tm_speedups));
  std::printf("CSV,Figure3-%s,GEOMEAN,0,%.4f,%.4f\n", panel,
              geomean(tmcv_speedups), geomean(tm_speedups));
  tm::set_default_backend(tm::Backend::EagerSTM);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = parse_options(argc, argv);
  run_panel("a-Westmere", tm::Backend::EagerSTM, /*haswell=*/false, opt);
  run_panel("b-Haswell", tm::Backend::HTM, /*haswell=*/true, opt);
  return 0;
}
