// Microbenchmarks: BoundedQueue throughput under the three sync policies --
// the per-operation cost each PARSEC kernel's queues pay in each software
// system.
#include <benchmark/benchmark.h>

#include <thread>

#include "apps/bounded_queue.h"

namespace {

using namespace tmcv::apps;

template <typename Policy>
void BM_QueuePushPop_SingleThread(benchmark::State& state) {
  state.SetLabel(Policy::name());
  BoundedQueue<Policy> q(64);
  std::uint64_t v = 0;
  for (auto _ : state) {
    q.push(1);
    benchmark::DoNotOptimize(q.pop(v));
  }
}
BENCHMARK(BM_QueuePushPop_SingleThread<PthreadPolicy>);
BENCHMARK(BM_QueuePushPop_SingleThread<TmCvPolicy>);
BENCHMARK(BM_QueuePushPop_SingleThread<TxnPolicy>);

template <typename Policy>
void BM_QueueProducerConsumer(benchmark::State& state) {
  state.SetLabel(Policy::name());
  BoundedQueue<Policy> q(16);
  std::thread consumer([&] {
    std::uint64_t v = 0;
    while (q.pop(v)) benchmark::DoNotOptimize(v);
  });
  std::uint64_t i = 0;
  for (auto _ : state) q.push(++i);
  q.close();
  consumer.join();
}
BENCHMARK(BM_QueueProducerConsumer<PthreadPolicy>)->UseRealTime();
BENCHMARK(BM_QueueProducerConsumer<TmCvPolicy>)->UseRealTime();
BENCHMARK(BM_QueueProducerConsumer<TxnPolicy>)->UseRealTime();

template <typename Policy>
void BM_QueueTryOps(benchmark::State& state) {
  state.SetLabel(Policy::name());
  BoundedQueue<Policy> q(64);
  std::uint64_t v = 0;
  for (auto _ : state) {
    q.try_push(1);
    benchmark::DoNotOptimize(q.try_pop(v));
  }
}
BENCHMARK(BM_QueueTryOps<PthreadPolicy>);
BENCHMARK(BM_QueueTryOps<TmCvPolicy>);
BENCHMARK(BM_QueueTryOps<TxnPolicy>);

}  // namespace

BENCHMARK_MAIN();
