// Ablation: the dedup anomaly in microcosm (§5.4).
//
// dedup stops scaling under TMParsec because its output stage performs I/O
// inside a *relaxed* (irrevocable) transaction, and a relaxed transaction
// cannot run in parallel with any other transaction: while the I/O is in
// flight, there is no concurrency.  Under locks, the same I/O only holds
// its own mutex and every other thread keeps computing.
//
// This bench interleaves compute operations (optimistic transactions) with
// I/O operations (a blocking device write) and compares:
//   lock-guarded I/O  -- I/O under a private mutex, compute unaffected
//   relaxed-txn I/O   -- I/O inside tm::irrevocably, which drains and
//                        blocks all transactions for its whole duration
//
// Even on one core the difference is structural: I/O wait is overlap-able
// with compute under locks, and forcibly serialized under relaxed
// transactions.
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "parsec/workload.h"
#include "tm/api.h"
#include "tm/var.h"
#include "util/timing.h"

namespace {

using namespace tmcv;

// A blocking "device write": nanosleep stands in for disk/pipe latency
// (what dedup's output write() costs).  While one thread sleeps here,
// other threads could be computing -- unless a relaxed transaction forbids
// it.
void blocking_io() { ::usleep(300); }

double run(int threads, int ops_per_thread, int io_period, bool relaxed_io) {
  // Compute ops carry real work (~30us) so I/O waits have something to
  // overlap with.
  const auto compute_iters = static_cast<std::uint64_t>(
      30.0 * parsec::calibrated_iters_per_us());
  std::vector<std::unique_ptr<tm::var<std::uint64_t>>> counters;
  for (int i = 0; i < threads; ++i)
    counters.push_back(std::make_unique<tm::var<std::uint64_t>>(0));
  std::mutex io_mutex;
  Stopwatch sw;
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < ops_per_thread; ++i) {
        if (i % io_period == 0) {
          if (relaxed_io) {
            // TMParsec dedup: I/O inside a relaxed transaction.  Every
            // other transaction drains and blocks for the I/O's duration.
            tm::irrevocably([&] {
              counters[t]->store(counters[t]->load() + 1);
              blocking_io();
            });
          } else {
            // Lock-based dedup: I/O under its own mutex; transactions
            // elsewhere keep running.
            std::lock_guard<std::mutex> g(io_mutex);
            blocking_io();
            tm::atomically(tm::Backend::EagerSTM, [&] {
              counters[t]->store(counters[t]->load() + 1);
            });
          }
        } else {
          tm::atomically(tm::Backend::EagerSTM, [&] {
            const std::uint64_t w = parsec::synth_work(
                counters[t]->load() + 1, compute_iters);
            counters[t]->store(counters[t]->load() + (w | 1) - (w | 1) + 1);
          });
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  return sw.elapsed_seconds();
}

}  // namespace

int main() {
  constexpr int kOps = 1000;
  constexpr int kIoPeriod = 10;  // every 10th op performs I/O
  std::printf("Ablation: I/O in a relaxed transaction vs under a lock "
              "(the dedup anomaly; %d ops/thread, I/O every %d ops)\n\n",
              kOps, kIoPeriod);
  std::printf("%-10s %22s %22s %10s\n", "threads", "lock-guarded I/O (s)",
              "relaxed-txn I/O (s)", "slowdown");
  for (int threads : {1, 2, 4, 8}) {
    const double t_lock = run(threads, kOps, kIoPeriod, false);
    const double t_relaxed = run(threads, kOps, kIoPeriod, true);
    std::printf("%-10d %22.3f %22.3f %9.2fx\n", threads, t_lock, t_relaxed,
                t_relaxed / t_lock);
  }
  std::printf("\nWith lock-guarded I/O, threads overlap each other's I/O "
              "waits; with relaxed-transaction I/O every thread stalls "
              "behind the serial lock for the I/O's full duration -- the "
              "\"during I/O, there is no concurrency\" effect that leaves "
              "dedup flat in Figures 1(h)/2(h).\n");
  return 0;
}
