// Microbenchmarks: transactional data structures (tmds) per backend --
// the cost of fully composable structures versus their lock-based
// equivalents.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <mutex>
#include <stack>
#include <unordered_map>

#include "tm/api.h"
#include "tmds/tx_bst.h"
#include "tmds/tx_counter.h"
#include "tmds/tx_hashmap.h"
#include "tmds/tx_list.h"
#include "tmds/tx_queue.h"
#include "tmds/tx_skiplist.h"
#include "tmds/tx_stack.h"

namespace {

using namespace tmcv;

tm::Backend backend_of(const benchmark::State& state) {
  switch (state.range(0)) {
    case 0:
      return tm::Backend::EagerSTM;
    case 1:
      return tm::Backend::LazySTM;
    case 3:
      return tm::Backend::NOrec;
    default:
      return tm::Backend::HTM;
  }
}

void BM_TxStackPushPop(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  tmds::TxStack<std::uint64_t> stack;
  std::uint64_t v = 0;
  for (auto _ : state) {
    stack.push(1);
    benchmark::DoNotOptimize(stack.pop(v));
  }
  tm::gc_collect();
  tm::set_default_backend(tm::Backend::EagerSTM);
}
BENCHMARK(BM_TxStackPushPop)->Arg(0)->Arg(1)->Arg(2);

void BM_LockedStdStackPushPop(benchmark::State& state) {
  std::mutex m;
  std::stack<std::uint64_t> stack;
  for (auto _ : state) {
    {
      std::lock_guard<std::mutex> g(m);
      stack.push(1);
    }
    std::lock_guard<std::mutex> g(m);
    benchmark::DoNotOptimize(stack.top());
    stack.pop();
  }
}
BENCHMARK(BM_LockedStdStackPushPop);

void BM_TxQueueEnqueueDequeue(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  tmds::TxQueue<std::uint64_t> queue;
  std::uint64_t v = 0;
  for (auto _ : state) {
    queue.enqueue(1);
    benchmark::DoNotOptimize(queue.dequeue(v));
  }
  tm::gc_collect();
  tm::set_default_backend(tm::Backend::EagerSTM);
}
BENCHMARK(BM_TxQueueEnqueueDequeue)->Arg(0)->Arg(1)->Arg(2);

void BM_TxHashMapPutGet(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  tmds::TxHashMap<std::uint64_t, std::uint64_t> map(256);
  std::uint64_t key = 0;
  std::uint64_t v = 0;
  for (auto _ : state) {
    key = (key + 1) & 1023;
    map.put(key, key);
    benchmark::DoNotOptimize(map.get(key, v));
  }
  tm::set_default_backend(tm::Backend::EagerSTM);
}
BENCHMARK(BM_TxHashMapPutGet)->Arg(0)->Arg(1)->Arg(2);

void BM_LockedStdMapPutGet(benchmark::State& state) {
  std::mutex m;
  std::unordered_map<std::uint64_t, std::uint64_t> map;
  std::uint64_t key = 0;
  for (auto _ : state) {
    key = (key + 1) & 1023;
    {
      std::lock_guard<std::mutex> g(m);
      map[key] = key;
    }
    std::lock_guard<std::mutex> g(m);
    benchmark::DoNotOptimize(map.find(key));
  }
}
BENCHMARK(BM_LockedStdMapPutGet);

// Composed operation: atomic transfer between two structures -- the case
// locks cannot express without careful two-lock protocols.
void BM_TxComposedTransfer(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  tmds::TxQueue<std::uint64_t> a, b;
  a.enqueue(42);
  for (auto _ : state) {
    tm::atomically([&] {
      std::uint64_t v = 0;
      if (a.dequeue(v))
        b.enqueue(v);
      else if (b.dequeue(v))
        a.enqueue(v);
    });
  }
  tm::gc_collect();
  tm::set_default_backend(tm::Backend::EagerSTM);
}
BENCHMARK(BM_TxComposedTransfer)->Arg(0)->Arg(1)->Arg(2);

// ---------------------------------------------------------------------------
// Ordered family mix sweeps: the same three access mixes over each ordered
// structure (skiplist / unbalanced BST / sorted list), so the conflict-
// footprint table in docs/DATASTRUCTURES.md is backed by numbers.  Arg(0)
// selects the backend (0=eager 1=lazy 2=htm 3=norec); the sorted list is the
// deliberate O(n)-read-set stress case where NOrec's per-read economics show
// the widest spread.
// ---------------------------------------------------------------------------

using u64 = std::uint64_t;
constexpr u64 kOrderedKeys = 1024;

// Cheap deterministic key sequence in [0, kOrderedKeys).
constexpr u64 mixed_key(u64 i) {
  return (i * 0x9e3779b97f4a7c15ull) >> 54;
}

template <typename S>
void fill_ordered(S& s) {
  for (u64 k = 0; k < kOrderedKeys; ++k) s.insert(k, k);
}

// 90% point lookups / 10% overwrites on a fixed key population.
template <typename S>
void ordered_lookup_heavy(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  S s;
  fill_ordered(s);
  u64 i = 0, v = 0;
  for (auto _ : state) {
    const u64 k = mixed_key(i);
    if (++i % 10 == 0)
      s.insert(k, i);
    else
      benchmark::DoNotOptimize(s.get(k, v));
  }
  tm::gc_collect();
  tm::set_default_backend(tm::Backend::EagerSTM);
}

// Structural churn: every iteration inserts one fresh key and erases one
// old key (sliding window over a 4x key space), so towers/subtrees/links
// are built and torn down constantly.
template <typename S>
void ordered_update_heavy(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  S s;
  fill_ordered(s);
  u64 head = kOrderedKeys, tail = 0;
  for (auto _ : state) {
    s.insert(head++ & (4 * kOrderedKeys - 1), 1);
    benchmark::DoNotOptimize(s.erase(tail++ & (4 * kOrderedKeys - 1)));
  }
  tm::gc_collect();
  tm::set_default_backend(tm::Backend::EagerSTM);
}

// Range scans dominate: one 256-key window per iteration plus a point
// update every 16th, so the read set is wide and the occasional writer
// invalidates in-flight scans.
template <typename S>
void ordered_traversal_heavy(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  S s;
  fill_ordered(s);
  u64 lo = 0, i = 0;
  for (auto _ : state) {
    u64 sum = 0;
    s.range(lo, lo + 256, [&](u64, u64 val) {
      sum += val;
      return true;
    });
    benchmark::DoNotOptimize(sum);
    lo = (lo + 256) & (kOrderedKeys - 1);
    if (++i % 16 == 0) s.insert(mixed_key(i), i);
  }
  tm::gc_collect();
  tm::set_default_backend(tm::Backend::EagerSTM);
}

using SkipListU64 = tmds::TxSkipList<u64, u64>;
using BstU64 = tmds::TxBst<u64, u64>;
using ListU64 = tmds::TxSortedList<u64, u64>;

void BM_SkipListLookupHeavy(benchmark::State& s) {
  ordered_lookup_heavy<SkipListU64>(s);
}
void BM_BstLookupHeavy(benchmark::State& s) { ordered_lookup_heavy<BstU64>(s); }
void BM_SortedListLookupHeavy(benchmark::State& s) {
  ordered_lookup_heavy<ListU64>(s);
}
void BM_SkipListUpdateHeavy(benchmark::State& s) {
  ordered_update_heavy<SkipListU64>(s);
}
void BM_BstUpdateHeavy(benchmark::State& s) { ordered_update_heavy<BstU64>(s); }
void BM_SortedListUpdateHeavy(benchmark::State& s) {
  ordered_update_heavy<ListU64>(s);
}
void BM_SkipListTraversalHeavy(benchmark::State& s) {
  ordered_traversal_heavy<SkipListU64>(s);
}
void BM_BstTraversalHeavy(benchmark::State& s) {
  ordered_traversal_heavy<BstU64>(s);
}
void BM_SortedListTraversalHeavy(benchmark::State& s) {
  ordered_traversal_heavy<ListU64>(s);
}

BENCHMARK(BM_SkipListLookupHeavy)->Arg(0)->Arg(1)->Arg(3);
BENCHMARK(BM_BstLookupHeavy)->Arg(0)->Arg(1)->Arg(3);
BENCHMARK(BM_SortedListLookupHeavy)->Arg(0)->Arg(1)->Arg(3);
BENCHMARK(BM_SkipListUpdateHeavy)->Arg(0)->Arg(1)->Arg(3);
BENCHMARK(BM_BstUpdateHeavy)->Arg(0)->Arg(1)->Arg(3);
BENCHMARK(BM_SortedListUpdateHeavy)->Arg(0)->Arg(1)->Arg(3);
BENCHMARK(BM_SkipListTraversalHeavy)->Arg(0)->Arg(1)->Arg(3);
BENCHMARK(BM_BstTraversalHeavy)->Arg(0)->Arg(1)->Arg(3);
BENCHMARK(BM_SortedListTraversalHeavy)->Arg(0)->Arg(1)->Arg(3);

// ---------------------------------------------------------------------------
// Counters: the single-cell canary versus the striped scaling fix, alone
// and under 4-way concurrency (where the single cell is a guaranteed
// conflict per add and the stripes commute).
// ---------------------------------------------------------------------------

void BM_TxCounterAdd(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  static tmds::TxCounter counter;
  for (auto _ : state) counter.add(1);
  tm::set_default_backend(tm::Backend::EagerSTM);
}
BENCHMARK(BM_TxCounterAdd)->Arg(0)->Arg(1)->Arg(3);
BENCHMARK(BM_TxCounterAdd)->Arg(0)->Arg(1)->Arg(3)->Threads(4)
    ->UseRealTime();

void BM_TxStripedCounterAdd(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  static tmds::TxStripedCounter<16> counter;
  for (auto _ : state) counter.add(1);
  tm::set_default_backend(tm::Backend::EagerSTM);
}
BENCHMARK(BM_TxStripedCounterAdd)->Arg(0)->Arg(1)->Arg(3);
BENCHMARK(BM_TxStripedCounterAdd)->Arg(0)->Arg(1)->Arg(3)->Threads(4)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
