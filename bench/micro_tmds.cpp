// Microbenchmarks: transactional data structures (tmds) per backend --
// the cost of fully composable structures versus their lock-based
// equivalents.
#include <benchmark/benchmark.h>

#include <mutex>
#include <stack>
#include <unordered_map>

#include "tm/api.h"
#include "tmds/tx_hashmap.h"
#include "tmds/tx_queue.h"
#include "tmds/tx_stack.h"

namespace {

using namespace tmcv;

tm::Backend backend_of(const benchmark::State& state) {
  switch (state.range(0)) {
    case 0:
      return tm::Backend::EagerSTM;
    case 1:
      return tm::Backend::LazySTM;
    default:
      return tm::Backend::HTM;
  }
}

void BM_TxStackPushPop(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  tmds::TxStack<std::uint64_t> stack;
  std::uint64_t v = 0;
  for (auto _ : state) {
    stack.push(1);
    benchmark::DoNotOptimize(stack.pop(v));
  }
  tm::gc_collect();
  tm::set_default_backend(tm::Backend::EagerSTM);
}
BENCHMARK(BM_TxStackPushPop)->Arg(0)->Arg(1)->Arg(2);

void BM_LockedStdStackPushPop(benchmark::State& state) {
  std::mutex m;
  std::stack<std::uint64_t> stack;
  for (auto _ : state) {
    {
      std::lock_guard<std::mutex> g(m);
      stack.push(1);
    }
    std::lock_guard<std::mutex> g(m);
    benchmark::DoNotOptimize(stack.top());
    stack.pop();
  }
}
BENCHMARK(BM_LockedStdStackPushPop);

void BM_TxQueueEnqueueDequeue(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  tmds::TxQueue<std::uint64_t> queue;
  std::uint64_t v = 0;
  for (auto _ : state) {
    queue.enqueue(1);
    benchmark::DoNotOptimize(queue.dequeue(v));
  }
  tm::gc_collect();
  tm::set_default_backend(tm::Backend::EagerSTM);
}
BENCHMARK(BM_TxQueueEnqueueDequeue)->Arg(0)->Arg(1)->Arg(2);

void BM_TxHashMapPutGet(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  tmds::TxHashMap<std::uint64_t, std::uint64_t> map(256);
  std::uint64_t key = 0;
  std::uint64_t v = 0;
  for (auto _ : state) {
    key = (key + 1) & 1023;
    map.put(key, key);
    benchmark::DoNotOptimize(map.get(key, v));
  }
  tm::set_default_backend(tm::Backend::EagerSTM);
}
BENCHMARK(BM_TxHashMapPutGet)->Arg(0)->Arg(1)->Arg(2);

void BM_LockedStdMapPutGet(benchmark::State& state) {
  std::mutex m;
  std::unordered_map<std::uint64_t, std::uint64_t> map;
  std::uint64_t key = 0;
  for (auto _ : state) {
    key = (key + 1) & 1023;
    {
      std::lock_guard<std::mutex> g(m);
      map[key] = key;
    }
    std::lock_guard<std::mutex> g(m);
    benchmark::DoNotOptimize(map.find(key));
  }
}
BENCHMARK(BM_LockedStdMapPutGet);

// Composed operation: atomic transfer between two structures -- the case
// locks cannot express without careful two-lock protocols.
void BM_TxComposedTransfer(benchmark::State& state) {
  tm::set_default_backend(backend_of(state));
  state.SetLabel(tm::to_string(backend_of(state)));
  tmds::TxQueue<std::uint64_t> a, b;
  a.enqueue(42);
  for (auto _ : state) {
    tm::atomically([&] {
      std::uint64_t v = 0;
      if (a.dequeue(v))
        b.enqueue(v);
      else if (b.dequeue(v))
        a.enqueue(v);
    });
  }
  tm::gc_collect();
  tm::set_default_backend(tm::Backend::EagerSTM);
}
BENCHMARK(BM_TxComposedTransfer)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
