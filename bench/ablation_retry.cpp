// Ablation: condition variables vs Harris-style retry (§6/§7).
//
// The paper's conclusion muses that "the best approach might be to use a
// mechanism like retry instead" of condition variables.  Having implemented
// both on the same TM runtime, we can measure the trade-off directly:
//
//   * condvar: explicit notification -- each NOTIFY wakes exactly the
//     selected waiter(s); sleeping costs one enqueue transaction.
//   * retry: implicit notification -- ANY writing commit wakes every
//     retry-parked transaction, which re-runs its closure to re-check its
//     predicate.  No notify code needed, but unrelated commit traffic
//     causes spurious re-checks.
//
// Scenario: token passing between one producer and W consumers, with a
// configurable amount of unrelated commit "noise" from a background thread.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/condvar.h"
#include "tm/api.h"
#include "tm/txn_sync.h"
#include "tm/var.h"
#include "util/timing.h"

namespace {

using namespace tmcv;

struct Result {
  double seconds;
  std::uint64_t aborts;  // includes retry parks + conflicts
};

Result run(bool use_retry, int consumers, int tokens, bool noise) {
  tm::stats_reset();
  CondVar cv;
  tm::var<int> available(0);
  tm::var<long> noise_cell(0);
  std::atomic<int> consumed{0};
  std::atomic<bool> stop_noise{false};

  std::vector<std::thread> pool;
  for (int c = 0; c < consumers; ++c) {
    pool.emplace_back([&] {
      for (;;) {
        bool done = false;
        if (use_retry) {
          tm::atomically([&] {
            done = false;
            const int t = available.load();
            if (t == -1) {
              done = true;
              return;
            }
            if (t == 0) tm::retry_wait();
            available.store(t - 1);
          });
          if (!done) consumed.fetch_add(1);
        } else {
          bool got = false;
          tm::atomically([&] {
            got = false;
            done = false;
            const int t = available.load();
            if (t == -1) {
              done = true;
              return;
            }
            if (t > 0) {
              available.store(t - 1);
              got = true;
              return;
            }
            tm::TxnSync sync;
            cv.wait_final(sync);
          });
          if (got) consumed.fetch_add(1);
        }
        if (done) break;
      }
    });
  }

  // Unrelated commit traffic: stresses retry's wake-on-any-commit.
  std::thread noise_thread([&] {
    while (noise && !stop_noise.load()) {
      tm::atomically([&] { noise_cell.store(noise_cell.load() + 1); });
    }
  });

  Stopwatch sw;
  for (int i = 0; i < tokens; ++i) {
    tm::atomically([&] {
      available.store(available.load() + 1);
      cv.notify_one();  // harmless under retry (queue empty)
    });
    // Pace the producer so consumers drain and actually park: waiting is
    // the behaviour under comparison.
    if ((i & 31) == 0) std::this_thread::yield();
  }
  while (consumed.load() < tokens) {
    cv.notify_all();
    std::this_thread::yield();
  }
  const double seconds = sw.elapsed_seconds();
  tm::atomically([&] { available.store(-1); });
  // Shutdown: wake whichever mechanism is parked.
  std::atomic<bool> joined{false};
  std::thread drain([&] {
    tm::var<long> kick(0);
    while (!joined.load()) {
      cv.notify_all();
      tm::atomically([&] { kick.store(kick.load() + 1); });  // retry wake
      std::this_thread::yield();
    }
  });
  for (auto& t : pool) t.join();
  joined.store(true);
  drain.join();
  stop_noise.store(true);
  noise_thread.join();
  return Result{seconds, tm::stats_snapshot().aborts};
}

}  // namespace

int main() {
  constexpr int kTokens = 10000;
  std::printf("Ablation: condition variables vs Harris-style retry "
              "(%d tokens)\n\n", kTokens);
  std::printf("%-10s %-8s %18s %18s %14s %14s\n", "consumers", "noise",
              "condvar (tok/ms)", "retry (tok/ms)", "cv aborts",
              "retry aborts");
  for (int consumers : {1, 2, 4}) {
    for (bool noise : {false, true}) {
      const Result cv_r = run(false, consumers, kTokens, noise);
      const Result rt_r = run(true, consumers, kTokens, noise);
      std::printf("%-10d %-8s %18.1f %18.1f %14llu %14llu\n", consumers,
                  noise ? "yes" : "no", kTokens / (cv_r.seconds * 1e3),
                  kTokens / (rt_r.seconds * 1e3),
                  static_cast<unsigned long long>(cv_r.aborts),
                  static_cast<unsigned long long>(rt_r.aborts));
    }
  }
  std::printf("\nretry needs no notification code but re-checks its "
              "predicate on every commit (watch its abort count grow under "
              "noise); condvars pay an enqueue transaction per sleep but "
              "wake exactly once.\n");
  return 0;
}
