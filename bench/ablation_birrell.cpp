// Ablation: per-thread semaphores (this paper's design) versus a
// per-condvar semaphore (Birrell's classic construction [3]).
//
// Birrell built condition variables from one semaphore per condvar plus a
// waiter count; the paper notes that language-level thread-locals enable the
// simpler per-thread-semaphore design and avoid Birrell's corner cases
// (token stealing by late arrivals, thundering-herd accounting).  This
// bench quantifies the two designs on wake latency and notify_all cost.
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "core/legacy_cv.h"
#include "sync/semaphore.h"
#include "util/stats.h"
#include "util/timing.h"

namespace {

using namespace tmcv;

// Birrell's condition variable from per-condvar semaphores (his corrected
// construction): a shared queue semaphore `s`, a waiter count guarded by an
// internal lock `x`, and a handshake semaphore `h`.  The handshake -- the
// notifier blocks until every token it posted has been claimed -- is what
// prevents a late-arriving waiter from stealing a token meant for an
// earlier one (the naive count-and-post version deadlocks exactly that
// way).  The handshake is also the design's cost: every notify pays a
// sleep/wake pair on the notifier side, which the per-thread-semaphore
// design of this paper never needs.
class BirrellCondVar {
 public:
  template <typename Mutex>
  void wait(std::unique_lock<Mutex>& lock) {
    {
      std::lock_guard<std::mutex> gx(x_);
      ++waiters_;
    }
    lock.unlock();
    s_.wait();
    h_.post();  // handshake: token claimed
    lock.lock();
  }

  void notify_one() {
    std::lock_guard<std::mutex> gx(x_);
    if (waiters_ > 0) {
      --waiters_;
      s_.post();
      h_.wait();  // block until the woken thread claims its token
    }
  }

  void notify_all() {
    std::lock_guard<std::mutex> gx(x_);
    const int w = waiters_;
    if (w == 0) return;
    s_.post(static_cast<std::uint32_t>(w));
    for (int i = 0; i < w; ++i) h_.wait();
    waiters_ = 0;
  }

 private:
  std::mutex x_;
  Semaphore s_;
  Semaphore h_;
  int waiters_ = 0;
};

// One condvar per direction: with a single Birrell condvar, the two-sided
// hand-off deadlocks via token stealing (main re-waits and consumes the
// token posted for the partner) -- one of the exact corner cases Birrell
// documents and the per-thread-semaphore design eliminates.  Splitting the
// condvars is the standard workaround, used here so the latency comparison
// is apples-to-apples.
template <typename CvT>
double measure_roundtrip(int iterations) {
  std::mutex m;
  CvT to_partner, to_main;
  bool token = false;
  std::atomic<bool> stop{false};
  std::thread partner([&] {
    for (;;) {
      std::unique_lock<std::mutex> lk(m);
      while (!token && !stop.load()) to_partner.wait(lk);
      if (stop.load()) return;
      token = false;
      lk.unlock();
      to_main.notify_one();
    }
  });
  Stopwatch sw;
  for (int i = 0; i < iterations; ++i) {
    {
      std::unique_lock<std::mutex> lk(m);
      token = true;
    }
    to_partner.notify_one();
    std::unique_lock<std::mutex> lk(m);
    while (token) to_main.wait(lk);
  }
  const double per_op = sw.elapsed_seconds() / iterations;
  stop.store(true);
  to_partner.notify_one();
  partner.join();
  return per_op * 1e6;  // microseconds
}

template <typename CvT>
double measure_notify_all(int waiters, int rounds) {
  std::mutex m;
  CvT cv;
  std::uint64_t generation = 0;
  int arrived = 0;
  std::condition_variable arrived_cv;  // harness-side only
  std::vector<std::thread> pool;
  std::atomic<bool> stop{false};
  for (int w = 0; w < waiters; ++w) {
    pool.emplace_back([&] {
      std::unique_lock<std::mutex> lk(m);
      std::uint64_t my_gen = generation;
      for (;;) {
        ++arrived;
        arrived_cv.notify_one();
        while (generation == my_gen && !stop.load()) cv.wait(lk);
        if (stop.load()) return;
        my_gen = generation;
      }
    });
  }
  Stopwatch sw;
  for (int r = 0; r < rounds; ++r) {
    // Wait for every waiter to park, then release the herd.
    std::unique_lock<std::mutex> lk(m);
    arrived_cv.wait(lk, [&] { return arrived == waiters; });
    arrived = 0;
    ++generation;
    lk.unlock();
    cv.notify_all();
  }
  {
    std::unique_lock<std::mutex> lk(m);
    arrived_cv.wait(lk, [&] { return arrived == waiters; });
    stop.store(true);
  }
  const double per_round = sw.elapsed_seconds() / rounds;
  cv.notify_all();
  for (auto& t : pool) t.join();
  return per_round * 1e6;
}

}  // namespace

int main() {
  std::printf("Ablation: per-thread semaphores (ours) vs per-condvar "
              "semaphore (Birrell)\n\n");
  constexpr int kIters = 3000;
  std::printf("%-34s %14s\n", "roundtrip (sleep+wake), us/op", "");
  std::printf("  %-32s %14.2f\n", "tmcv (per-thread semaphores)",
              measure_roundtrip<condition_variable>(kIters));
  std::printf("  %-32s %14.2f\n", "Birrell (per-condvar semaphore)",
              measure_roundtrip<BirrellCondVar>(kIters));
  std::printf("  %-32s %14.2f\n", "std::condition_variable",
              measure_roundtrip<std::condition_variable>(kIters));

  std::printf("\n%-34s %14s\n", "notify_all herd release, us/round", "");
  for (int waiters : {2, 4, 8}) {
    std::printf("  waiters=%d\n", waiters);
    std::printf("    %-30s %14.2f\n", "tmcv",
                measure_notify_all<condition_variable>(waiters, 300));
    std::printf("    %-30s %14.2f\n", "Birrell",
                measure_notify_all<BirrellCondVar>(waiters, 300));
    std::printf("    %-30s %14.2f\n", "std::condition_variable",
                measure_notify_all<std::condition_variable>(waiters, 300));
  }
  std::printf("\nNote: the Birrell numbers include his mandatory handshake "
              "(the notifier sleeps until each woken thread claims its "
              "token), without which the per-condvar-semaphore design "
              "deadlocks via token stealing.  The per-thread-semaphore "
              "design needs no handshake by construction, which is the "
              "latency gap above.\n");
  return 0;
}
