// Shared per-backend sweep harness for the standalone (--json) bench modes.
//
// A sweep runs the same timed workload once per requested leg ("eager",
// "lazy", "norec", ..., "auto"), installing each backend via the quiesced
// switch, and records ops/sec, the abort/commit ratio, and -- for the `auto`
// leg -- the number of runtime backend switches the adaptive controller
// performed.  fprint_sweep() emits the legs as a nested "backend_sweep" JSON
// object, which bench_check's scalar diffing skips, so adding or removing
// legs never breaks ref comparisons.
//
// Used by bench/micro_tm.cpp and bench/vacation.cpp; keep workload-specific
// knobs out of here.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "tm/algs/adaptive.h"
#include "tm/api.h"
#include "tm/stats.h"

namespace tmcv::bench {

struct SweepLeg {
  const char* name;
  double ops_per_sec;
  std::uint64_t switches;  // runtime backend switches observed (auto leg)
  double abort_commit_ratio;
};

// Runs `run` (a callable returning ops/sec for one timed rep) once per leg
// label.  Fixed legs take the best of three reps; the `auto` leg starts the
// adaptive controller from EagerSTM and reports the best of the last three
// of six reps, so the recorded number is the controller's steady-state
// choice rather than the convergence transient.  Restores the entry backend
// and disables the controller on exit.
template <typename RunFn>
std::vector<SweepLeg> run_backend_sweep(const std::vector<const char*>& legs,
                                        const RunFn& run) {
  using namespace tmcv::tm;
  const Backend saved = default_backend();
  std::vector<SweepLeg> out;
  for (const char* name : legs) {
    const Stats before = stats_snapshot();
    double ops = 0;
    if (std::strcmp(name, "auto") == 0) {
      set_backend(Backend::EagerSTM);
      set_backend_auto(true);
      for (int rep = 0; rep < 6; ++rep) {
        const double r = run();
        if (rep >= 3 && r > ops) ops = r;
      }
      set_backend_auto(false);
    } else {
      // Best of three: single-run legs are noisy enough on shared machines
      // to invert the cross-backend ordering the sweep exists to record.
      Backend b{};
      if (!backend_from_label(name, b)) continue;
      set_backend(b);
      for (int rep = 0; rep < 3; ++rep) {
        const double r = run();
        if (r > ops) ops = r;
      }
    }
    const Stats after = stats_snapshot();
    const std::uint64_t d_commits = after.commits - before.commits;
    const std::uint64_t d_aborts = after.aborts - before.aborts;
    out.push_back(SweepLeg{name, ops,
                           after.backend_switches - before.backend_switches,
                           d_commits ? static_cast<double>(d_aborts) /
                                           static_cast<double>(d_commits)
                                     : 0.0});
  }
  tm::set_backend_auto(false);
  tm::set_backend(saved);
  return out;
}

// Emits `  "backend_sweep": { "eager": {...}, ... },` (note the trailing
// comma: callers follow with at least one more top-level field).
inline void fprint_sweep(std::FILE* f, const std::vector<SweepLeg>& legs) {
  std::fprintf(f, "  \"backend_sweep\": {");
  bool first = true;
  for (const SweepLeg& leg : legs) {
    std::fprintf(f,
                 "%s\n    \"%s\": {\"ops_per_sec\": %.0f, \"switches\": %llu, "
                 "\"abort_commit_ratio\": %.6f}",
                 first ? "" : ",", leg.name, leg.ops_per_sec,
                 (unsigned long long)leg.switches, leg.abort_commit_ratio);
    first = false;
  }
  std::fprintf(f, "\n  },\n");
}

// BENCH_foo.json -> BENCH_foo.metrics.json (registry snapshot sibling).
inline std::string metrics_path_for(const char* out_path) {
  std::string p(out_path);
  const std::string suffix = ".json";
  if (p.size() > suffix.size() &&
      p.compare(p.size() - suffix.size(), suffix.size(), suffix) == 0)
    p.resize(p.size() - suffix.size());
  return p + ".metrics.json";
}

}  // namespace tmcv::bench
