// Load driver for the KV-cache server (src/apps/kv/): N client threads,
// one connection each, issuing a zipfian get/set mix in pipelined windows.
//
// Pipelining is the point.  One request per round trip measures the
// kernel's wakeup latency, not the server; real cache clients batch.  Each
// thread renders `window` requests into one buffer, writes it with a single
// send, then reads until the matching number of response lines arrives.
// Window round-trip times land in a shared histogram; per-op latency is the
// amortized rtt/window (recorded per window), which is the honest number
// for a pipelined protocol -- EXPERIMENTS.md spells out the methodology.
//
// Default mode embeds the server in-process (same container, loopback TCP
// still on the path) so one command produces BENCH_kvserver.json with
// exact post-run store statistics and conflict attribution:
//
//   kv_loadgen --json BENCH_kvserver.json
//
// `--connect PORT` drives an external tmcv_kv_server instead (no store
// stats / attribution in the JSON; the telemetry endpoint has them).
// `--serve-metrics[=PORT]` (embedded mode) starts the live endpoint;
// `--hold-ms=N` keeps the process alive after the run so CI can curl
// /profile at quiescence, when conflicts_recorded == aborts_conflict
// exactly.  `--storm-ms=N` injects a deterministic abort storm for the
// first N ms (capacity-doomed hybrid transactions, see run_storm) -- the
// watchdog-smoke CI job uses it to prove the abort-storm alert fires and
// clears against live traffic.
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "apps/kv/kv_server.h"
#include "obs/attribution.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "tm/algs/adaptive.h"
#include "tm/api.h"
#include "tm/descriptor.h"
#include "tm/var.h"
#include "util/net.h"
#include "util/rng.h"
#include "util/timing.h"
#include "util/zipf.h"

namespace {

using tmcv::obs::HistogramSnapshot;

struct Config {
  int connect_port = -1;  // >= 0: external server
  unsigned conns = 8;
  unsigned server_workers = 8;
  std::size_t keys = 65536;
  double theta = 0.9;
  unsigned get_pct = 90;
  std::size_t window = 128;
  std::size_t ops_per_conn = 250000;
  std::uint64_t seed = 42;
  std::size_t shards = 8;       // embedded server store geometry
  std::size_t capacity = 8192;  // per shard
  const char* json_path = nullptr;
  int metrics_port = -1;  // embedded only; -1 off
  long hold_ms = 0;
  long history_ms = 0;            // 0: recorder off
  bool watchdog = false;          // SLO watchdog on default rules
  const char* watchdog_dump = nullptr;  // flight dump path on alert fire
  double watchdog_abort_ratio = -1.0;   // override abort-storm threshold
  long storm_ms = 0;              // injected abort storm duration; 0: off
  const char* backend = nullptr;  // --backend=NAME (auto: adaptive controller)
};

struct ClientResult {
  std::uint64_t ops = 0;
  std::uint64_t gets = 0;
  std::uint64_t sets = 0;
  std::uint64_t windows = 0;
  bool ok = false;
};

// One client thread: pipelined zipfian load over its own connection.
void run_client(const Config& cfg, std::uint16_t port, unsigned id,
                const std::vector<std::string>& key_names,
                tmcv::obs::LatencyHistogram& window_rtt,
                tmcv::obs::LatencyHistogram& op_latency, ClientResult& out) {
  const int fd = tmcv::connect_loopback(port);
  if (fd < 0) {
    std::perror("kv_loadgen: connect");
    return;
  }
  tmcv::set_tcp_nodelay(fd);
  tmcv::Xoshiro256 rng(cfg.seed * 0x9e3779b97f4a7c15ull + id);
  const tmcv::ZipfDistribution zipf(cfg.keys, cfg.theta);

  std::string req;
  req.reserve(cfg.window * 24);
  char resp[65536];
  std::uint64_t value_tick = id;
  std::size_t remaining = cfg.ops_per_conn;
  while (remaining > 0) {
    const std::size_t batch = remaining < cfg.window ? remaining : cfg.window;
    req.clear();
    std::size_t batch_gets = 0;
    for (std::size_t i = 0; i < batch; ++i) {
      const std::string& key = key_names[zipf(rng)];
      // next_double() in [0,1): get_pct percent gets, the rest sets.
      if (rng.next_double() * 100.0 < static_cast<double>(cfg.get_pct)) {
        req.append("get ", 4);
        req.append(key);
        req.push_back('\n');
        ++batch_gets;
      } else {
        req.append("set ", 4);
        req.append(key);
        req.push_back(' ');
        req.append(std::to_string(value_tick += cfg.conns));
        req.push_back('\n');
      }
    }
    const tmcv::Stopwatch sw;
    if (!tmcv::send_all(fd, req.data(), req.size())) {
      std::perror("kv_loadgen: send");
      ::close(fd);
      return;
    }
    // Count response lines until the whole window has been answered.
    std::size_t lines = 0;
    while (lines < batch) {
      const ssize_t n = ::recv(fd, resp, sizeof resp, 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        std::fprintf(stderr, "kv_loadgen: connection lost mid-window\n");
        ::close(fd);
        return;
      }
      for (ssize_t i = 0; i < n; ++i)
        if (resp[i] == '\n') ++lines;
    }
    const std::uint64_t rtt = sw.elapsed_nanos();
    window_rtt.record(rtt);
    op_latency.record(rtt / batch);
    out.windows += 1;
    out.ops += batch;
    out.gets += batch_gets;
    out.sets += batch - batch_gets;
    remaining -= batch;
  }
  ::close(fd);
  out.ok = true;
}

// --storm-ms: the injected abort storm.  A sidecar thread hammers a private
// hot region with Hybrid-backend transactions whose write set (kStormWrites
// distinct words) exceeds TxDescriptor::kHtmWriteCapacity, so every
// iteration capacity-aborts the doomed hardware attempt before the software
// fallback commits.  That makes the storm deterministic on any machine:
// conflict aborts need two transactions racing (scheduler luck on a
// single-core box), capacity aborts are structural.  The watchdog's
// abort-storm rule sees the ratio spike within two sampling periods, and
// clears after the deadline passes, when only the well-behaved zipfian KV
// traffic is left running.
void run_storm(long storm_ms) {
  constexpr int kStormWrites = 96;
  static_assert(kStormWrites > tmcv::tm::TxDescriptor::kHtmWriteCapacity,
                "the storm transaction must overflow the hardware write set");
  std::vector<std::unique_ptr<tmcv::tm::var<std::uint64_t>>> region;
  region.reserve(kStormWrites);
  for (int i = 0; i < kStormWrites; ++i)
    region.push_back(std::make_unique<tmcv::tm::var<std::uint64_t>>(0));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(storm_ms);
  std::uint64_t tick = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    tmcv::tm::atomically(tmcv::tm::Backend::Hybrid, [&] {
      TMCV_TXN_SITE("kv_loadgen.storm");
      for (auto& v : region) v->store(tick);
    });
    ++tick;
  }
}

void append_hist(std::string& json, const char* name,
                 const HistogramSnapshot& h, const char* indent) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%s\"%s\": {\"p50\": %" PRIu64 ", \"p99\": %" PRIu64
                ", \"p999\": %" PRIu64 ", \"mean\": %.1f, \"count\": %" PRIu64
                "}",
                indent, name, h.percentile(0.50), h.percentile(0.99),
                h.percentile(0.999), h.mean(), h.count);
  json.append(buf);
}

int parse_args(int argc, char** argv, Config& cfg) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const auto next_long = [&](long& out) {
      if (i + 1 >= argc) return false;
      out = std::atol(argv[++i]);
      return true;
    };
    long v = 0;
    if (std::strcmp(a, "--connect") == 0 && next_long(v)) {
      cfg.connect_port = static_cast<int>(v);
    } else if (std::strcmp(a, "--conns") == 0 && next_long(v)) {
      cfg.conns = static_cast<unsigned>(v);
    } else if (std::strcmp(a, "--server-workers") == 0 && next_long(v)) {
      cfg.server_workers = static_cast<unsigned>(v);
    } else if (std::strcmp(a, "--keys") == 0 && next_long(v)) {
      cfg.keys = static_cast<std::size_t>(v);
    } else if (std::strcmp(a, "--theta") == 0 && i + 1 < argc) {
      cfg.theta = std::atof(argv[++i]);
    } else if (std::strcmp(a, "--get-pct") == 0 && next_long(v)) {
      cfg.get_pct = static_cast<unsigned>(v);
    } else if (std::strcmp(a, "--window") == 0 && next_long(v)) {
      cfg.window = static_cast<std::size_t>(v);
    } else if (std::strcmp(a, "--ops") == 0 && next_long(v)) {
      cfg.ops_per_conn = static_cast<std::size_t>(v);
    } else if (std::strcmp(a, "--seed") == 0 && next_long(v)) {
      cfg.seed = static_cast<std::uint64_t>(v);
    } else if (std::strcmp(a, "--shards") == 0 && next_long(v)) {
      cfg.shards = static_cast<std::size_t>(v);
    } else if (std::strcmp(a, "--capacity") == 0 && next_long(v)) {
      cfg.capacity = static_cast<std::size_t>(v);
    } else if (std::strcmp(a, "--json") == 0) {
      cfg.json_path = "BENCH_kvserver.json";
      if (i + 1 < argc && argv[i + 1][0] != '-') cfg.json_path = argv[++i];
    } else if (std::strcmp(a, "--serve-metrics") == 0) {
      cfg.metrics_port = 0;
    } else if (std::strncmp(a, "--serve-metrics=", 16) == 0) {
      cfg.metrics_port = std::atoi(a + 16);
    } else if (std::strncmp(a, "--hold-ms=", 10) == 0) {
      cfg.hold_ms = std::atol(a + 10);
    } else if (std::strcmp(a, "--history") == 0) {
      cfg.history_ms = 1000;
    } else if (std::strncmp(a, "--history=", 10) == 0) {
      cfg.history_ms = std::atol(a + 10);
      if (cfg.history_ms <= 0) cfg.history_ms = 1000;
    } else if (std::strcmp(a, "--watchdog") == 0) {
      cfg.watchdog = true;
    } else if (std::strncmp(a, "--watchdog=", 11) == 0) {
      cfg.watchdog = true;
      cfg.watchdog_dump = a + 11;
    } else if (std::strncmp(a, "--watchdog-abort-ratio=", 23) == 0) {
      cfg.watchdog_abort_ratio = std::atof(a + 23);
    } else if (std::strncmp(a, "--storm-ms=", 11) == 0) {
      cfg.storm_ms = std::atol(a + 11);
    } else if (std::strncmp(a, "--backend=", 10) == 0) {
      cfg.backend = a + 10;
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--connect PORT] [--conns N] [--server-workers N]\n"
          "          [--keys N] [--theta F] [--get-pct N] [--window N]\n"
          "          [--ops N-per-conn] [--seed N] [--shards N]\n"
          "          [--capacity N] [--json [PATH]]\n"
          "          [--serve-metrics[=PORT]] [--hold-ms=N]\n"
          "          [--history[=MS]] [--watchdog[=DUMP.json]]\n"
          "          [--watchdog-abort-ratio=F] [--storm-ms=N]\n"
          "          [--backend=eager|lazy|htm|hybrid|norec|auto]\n",
          argv[0]);
      return 2;
    }
  }
  if (cfg.conns == 0 || cfg.window == 0 || cfg.keys == 0 ||
      cfg.get_pct > 100) {
    std::fprintf(stderr, "kv_loadgen: invalid configuration\n");
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  if (const int rc = parse_args(argc, argv, cfg); rc != 0) return rc;

  // Observability stack, outermost first: the watchdog needs history to
  // ride on, and judges latency + attribution signals, so it turns those
  // capture layers on (trace too, so an alert-triggered flight dump has
  // ring contents to serialize).
  if (cfg.watchdog && cfg.history_ms == 0) cfg.history_ms = 1000;
  if (cfg.watchdog) {
    tmcv::obs::set_timing_enabled(true);
    tmcv::obs::set_trace_enabled(true);
    tmcv::obs::set_attribution_enabled(true);
  }
  if (cfg.history_ms > 0) {
    tmcv::obs::TimeSeriesOptions ts;
    ts.interval_ms = static_cast<std::uint32_t>(cfg.history_ms);
    tmcv::obs::timeseries().start(ts);
  }
  if (cfg.watchdog) {
    std::vector<tmcv::obs::WatchdogRule> rules = tmcv::obs::default_rules();
    if (cfg.watchdog_abort_ratio >= 0.0) {
      for (tmcv::obs::WatchdogRule& r : rules)
        if (r.kind == tmcv::obs::RuleKind::kAbortStorm)
          r.threshold = cfg.watchdog_abort_ratio;
    }
    tmcv::obs::watchdog().start(
        std::move(rules),
        cfg.watchdog_dump != nullptr ? cfg.watchdog_dump : "");
  }

  if (cfg.backend != nullptr) {
    if (std::strcmp(cfg.backend, "auto") == 0) {
      tmcv::tm::set_backend_auto(true);
    } else {
      tmcv::tm::Backend b{};
      if (!tmcv::tm::backend_from_label(cfg.backend, b)) {
        std::fprintf(stderr, "kv_loadgen: unknown --backend '%s'\n",
                     cfg.backend);
        return 2;
      }
      tmcv::tm::set_backend(b);
    }
  }

  const bool embedded = cfg.connect_port < 0;
  tmcv::apps::kv::KvServer server;
  std::uint16_t port = 0;
  if (embedded) {
    tmcv::obs::set_attribution_enabled(true);  // exact conflict pairs
    tmcv::apps::kv::KvOptions sopts;
    sopts.port = 0;
    sopts.workers = cfg.server_workers;
    sopts.shards = cfg.shards;
    sopts.capacity_per_shard = cfg.capacity;
    sopts.buckets_per_shard = cfg.capacity;  // ~1 node per bucket when full
    sopts.metrics_port = cfg.metrics_port;
    if (!server.start(sopts)) {
      std::fprintf(stderr, "kv_loadgen: embedded server start failed: %s\n",
                   std::strerror(errno));
      return 1;
    }
    port = server.port();
    std::printf("kv-server listening on 127.0.0.1:%u (%u workers)\n", port,
                cfg.server_workers);
    if (cfg.metrics_port >= 0)
      std::printf("kv-server metrics on http://127.0.0.1:%u/metrics.json\n",
                  server.metrics_port());
    std::fflush(stdout);
  } else {
    port = static_cast<std::uint16_t>(cfg.connect_port);
  }

  // Key strings rendered once; every thread shares the read-only table.
  std::vector<std::string> key_names;
  key_names.reserve(cfg.keys);
  for (std::size_t i = 0; i < cfg.keys; ++i) {
    char kb[24];
    std::snprintf(kb, sizeof kb, "k%zu", i);
    key_names.emplace_back(kb);
  }

  const tmcv::obs::MetricsSnapshot before = tmcv::obs::metrics_snapshot();
  tmcv::obs::LatencyHistogram window_rtt;
  tmcv::obs::LatencyHistogram op_latency;
  std::vector<ClientResult> results(cfg.conns);
  std::vector<std::thread> clients;
  clients.reserve(cfg.conns);
  const tmcv::Stopwatch wall;
  std::thread storm;
  if (cfg.storm_ms > 0) {
    std::printf("kv_loadgen: injecting abort storm for %ld ms\n",
                cfg.storm_ms);
    std::fflush(stdout);
    storm = std::thread(run_storm, cfg.storm_ms);
  }
  for (unsigned c = 0; c < cfg.conns; ++c)
    clients.emplace_back(run_client, std::cref(cfg), port, c,
                         std::cref(key_names), std::ref(window_rtt),
                         std::ref(op_latency), std::ref(results[c]));
  for (auto& t : clients) t.join();
  if (storm.joinable()) storm.join();
  const double secs = wall.elapsed_seconds();

  std::uint64_t total_ops = 0;
  std::uint64_t total_gets = 0;
  std::uint64_t total_sets = 0;
  bool all_ok = true;
  for (const ClientResult& r : results) {
    total_ops += r.ops;
    total_gets += r.gets;
    total_sets += r.sets;
    all_ok = all_ok && r.ok;
  }
  if (!all_ok || total_ops == 0) {
    std::fprintf(stderr, "kv_loadgen: a client failed; no result written\n");
    return 1;
  }
  const double ops_per_sec = static_cast<double>(total_ops) / secs;
  std::printf("kv_loadgen: %" PRIu64 " ops in %.3fs = %.0f ops/s "
              "(%u conns, window %zu, theta %.2f, %u%% get)\n",
              total_ops, secs, ops_per_sec, cfg.conns, cfg.window, cfg.theta,
              cfg.get_pct);

  if (cfg.json_path != nullptr) {
    // Settle the pump/server, then diff the registry: TM activity and
    // conflict attribution attributable to this run.
    const tmcv::obs::MetricsSnapshot after = tmcv::obs::metrics_snapshot();
    const tmcv::obs::MetricsSnapshot delta =
        tmcv::obs::metrics_delta(after, before);
    std::string json;
    json.reserve(4096);
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "{\n"
        "  \"benchmark\": \"kv_loadgen\",\n"
        "  \"mode\": \"%s\",\n"
        "  \"conns\": %u,\n"
        "  \"server_workers\": %u,\n"
        "  \"keys\": %zu,\n"
        "  \"theta\": %.2f,\n"
        "  \"get_pct\": %u,\n"
        "  \"window\": %zu,\n"
        "  \"ops_per_conn\": %zu,\n"
        "  \"seed\": %" PRIu64 ",\n"
        "  \"ops\": %" PRIu64 ",\n"
        "  \"gets\": %" PRIu64 ",\n"
        "  \"sets\": %" PRIu64 ",\n"
        "  \"elapsed_sec\": %.3f,\n"
        "  \"ops_per_sec\": %.0f,\n",
        embedded ? "embedded" : "external", cfg.conns, cfg.server_workers,
        cfg.keys, cfg.theta, cfg.get_pct, cfg.window, cfg.ops_per_conn,
        cfg.seed, total_ops, total_gets, total_sets, secs, ops_per_sec);
    json.append(buf);
    append_hist(json, "op_latency_ns", op_latency.snapshot(), "  ");
    json.append(",\n");
    append_hist(json, "window_rtt_ns", window_rtt.snapshot(), "  ");
    json.append(",\n");
    std::snprintf(buf, sizeof buf,
                  "  \"commits\": %" PRIu64 ",\n  \"aborts\": %" PRIu64
                  ",\n  \"aborts_conflict\": %" PRIu64
                  ",\n  \"abort_commit_ratio\": %.6f,\n",
                  delta.tm.commits, delta.tm.aborts, delta.tm.aborts_conflict,
                  delta.tm.commits
                      ? static_cast<double>(delta.tm.aborts) /
                            static_cast<double>(delta.tm.commits)
                      : 0.0);
    json.append(buf);
    if (embedded) {
      const tmcv::tmds::LruStats st = server.store_stats();
      std::snprintf(buf, sizeof buf,
                    "  \"store\": {\"hits\": %" PRIu64 ", \"misses\": %" PRIu64
                    ", \"evictions\": %" PRIu64 ", \"size\": %" PRIu64 "},\n",
                    st.hits, st.misses, st.evictions, st.size);
      json.append(buf);
    }
    // Top victim x attacker pairs from the attribution profiler (quiescent:
    // recorded conflicts equal aborts_conflict when nothing was dropped).
    json.append("  \"conflict_pairs\": [");
    const auto& pairs = delta.attribution.conflict_pairs;
    for (std::size_t i = 0; i < pairs.size() && i < 5; ++i) {
      std::snprintf(buf, sizeof buf,
                    "%s\n    {\"victim\": \"%s\", \"attacker\": \"%s\", "
                    "\"count\": %" PRIu64 "}",
                    i == 0 ? "" : ",",
                    tmcv::obs::site_name(
                        tmcv::obs::attr_pair_victim(pairs[i].key)),
                    tmcv::obs::site_name(
                        tmcv::obs::attr_pair_attacker(pairs[i].key)),
                    pairs[i].count);
      json.append(buf);
    }
    json.append(pairs.empty() ? "],\n" : "\n  ],\n");
    std::snprintf(buf, sizeof buf,
                  "  \"conflicts_recorded\": %" PRIu64
                  ",\n  \"attribution_dropped\": %" PRIu64 "\n}\n",
                  tmcv::obs::attr_conflicts_total(delta.attribution),
                  delta.attribution.dropped);
    json.append(buf);
    std::FILE* f = std::fopen(cfg.json_path, "w");
    if (f == nullptr) {
      std::perror("kv_loadgen: fopen");
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", cfg.json_path);
    std::fflush(stdout);
  }

  if (cfg.hold_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg.hold_ms));
  if (embedded) server.stop();
  if (cfg.watchdog) tmcv::obs::watchdog().stop();
  if (cfg.history_ms > 0) tmcv::obs::timeseries().stop();
  tmcv::tm::set_backend_auto(false);  // join the controller if --backend=auto
  return 0;
}
