// Microbenchmarks: futex semaphore primitives (the per-thread wake
// mechanism under every condition variable in this library).
#include <benchmark/benchmark.h>

#include <semaphore.h>

#include <thread>

#include "sync/semaphore.h"

namespace {

using tmcv::BinarySemaphore;
using tmcv::Semaphore;

void BM_SemaphorePostWait_Uncontended(benchmark::State& state) {
  Semaphore sem;
  for (auto _ : state) {
    sem.post();
    sem.wait();
  }
}
BENCHMARK(BM_SemaphorePostWait_Uncontended);

void BM_BinarySemaphorePostWait_Uncontended(benchmark::State& state) {
  BinarySemaphore sem;
  for (auto _ : state) {
    sem.post();
    sem.wait();
  }
}
BENCHMARK(BM_BinarySemaphorePostWait_Uncontended);

// POSIX sem_t as the reference implementation (what the paper's SEMWAIT /
// SEMPOST would be).
void BM_PosixSemPostWait_Uncontended(benchmark::State& state) {
  sem_t sem;
  sem_init(&sem, 0, 0);
  for (auto _ : state) {
    sem_post(&sem);
    sem_wait(&sem);
  }
  sem_destroy(&sem);
}
BENCHMARK(BM_PosixSemPostWait_Uncontended);

void BM_SemaphoreTryWaitFailure(benchmark::State& state) {
  Semaphore sem;
  for (auto _ : state) benchmark::DoNotOptimize(sem.try_wait());
}
BENCHMARK(BM_SemaphoreTryWaitFailure);

// Cross-thread ping-pong: one full sleep/wake handoff per iteration pair --
// the latency that bounds NOTIFY-to-resume in the condvar.
void BM_BinarySemaphorePingPong(benchmark::State& state) {
  BinarySemaphore ping, pong;
  std::atomic<bool> stop{false};
  std::thread partner([&] {
    for (;;) {
      ping.wait();
      if (stop.load(std::memory_order_acquire)) return;
      pong.post();
    }
  });
  for (auto _ : state) {
    ping.post();
    pong.wait();
  }
  stop.store(true, std::memory_order_release);
  ping.post();
  partner.join();
}
BENCHMARK(BM_BinarySemaphorePingPong)->UseRealTime();

void BM_SemaphoreBatchPost(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Semaphore sem;
  for (auto _ : state) {
    sem.post(n);
    for (std::uint32_t i = 0; i < n; ++i) sem.wait();
  }
}
BENCHMARK(BM_SemaphoreBatchPost)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
