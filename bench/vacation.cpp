// Vacation: a STAMP-style travel-reservation macro benchmark over the tmds
// ordered family -- the "whole application" contrast to bench/micro_tm's
// primitive costs.
//
// Three relations (cars, rooms, flights) live in TxSkipList ordered maps
// keyed by resource id, each value a packed {total, used, price} word.  The
// customer table is a TxBst (populated in bit-reversed key order, so the
// unbalanced tree starts balanced), and every booking appends a record to a
// global reservations skiplist keyed (customer, relation, id) -- customer in
// the high bits, so cancelling a customer is ONE range scan over their key
// prefix.  A striped counter tracks revenue transactionally.
//
// Task mix per transaction (STAMP vacation shapes):
//   make_reservation  query `queries_per_task` random resources per task,
//                     book the cheapest with free capacity (skip resources
//                     the customer already holds): resource.used++, record
//                     insert, customer bill += price, revenue += price.
//   delete_customer   range-scan the customer's reservation prefix, release
//                     every held resource, zero the bill, refund revenue.
//   update_tables     re-price or re-size random resources (capacity never
//                     drops below `used`).
// Each transaction performs `tasks_per_txn` tasks; ids are drawn from the
// first `queries_pct`% of the table, so the low-contention mix (2 tasks,
// 90%, 98% user txns) spreads bookings wide while the high-contention mix
// (4 tasks, 60%, 90% user txns, smaller table) funnels them onto a hot
// prefix.
//
// Every rep runs on a freshly populated world (construction untimed), and
// after each rep the books are audited quiescently: live reservation count
// must equal the sum of `used` over all relations, and the revenue counter,
// the sum of customer bills, and the sum of booked record prices must all
// agree -- the macro-scale lost-update canary.
//
// `--json [path]` writes BENCH_vacation.json: both mixes' headline numbers
// plus a per-backend sweep (eager/lazy/norec/auto) on the low-contention
// mix, with the usual .metrics.json sibling.  `--serve-metrics[=PORT]`,
// `--hold-ms=N`, `--backend=NAME`, `--threads=N`, `--txns=N` follow the
// micro_tm conventions.
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "backend_sweep.h"
#include "core/c_api.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "tm/algs/adaptive.h"
#include "tm/api.h"
#include "tmds/tx_bst.h"
#include "tmds/tx_counter.h"
#include "tmds/tx_skiplist.h"
#include "util/rng.h"
#include "util/timing.h"

namespace {

using namespace tmcv::tm;
using tmcv::Xoshiro256;
using tmcv::bench::SweepLeg;
using tmcv::bench::fprint_sweep;
using tmcv::bench::metrics_path_for;
using tmcv::bench::run_backend_sweep;
using u64 = std::uint64_t;

// ---------------------------------------------------------------------------
// Packed words (tm::var cells are single 8-byte words)
// ---------------------------------------------------------------------------

// Resource: total(16) | used(16) | price(32).
constexpr u64 pack_res(u64 total, u64 used, u64 price) {
  return (total << 48) | (used << 32) | (price & 0xffffffffull);
}
constexpr u64 res_total(u64 r) { return r >> 48; }
constexpr u64 res_used(u64 r) { return (r >> 32) & 0xffff; }
constexpr u64 res_price(u64 r) { return r & 0xffffffffull; }

// Reservation key: customer | relation(2b) | id(20b).  Customer occupies the
// high bits so [rkey(c,0,0), rkey(c+1,0,0)) spans exactly customer c's
// bookings.
constexpr int kRelBits = 2;
constexpr int kIdBits = 20;
constexpr u64 rkey(u64 customer, u64 relation, u64 id) {
  return (customer << (kRelBits + kIdBits)) | (relation << kIdBits) | id;
}
constexpr u64 rkey_relation(u64 k) { return (k >> kIdBits) & 0x3; }
constexpr u64 rkey_id(u64 k) { return k & ((u64{1} << kIdBits) - 1); }

// Deterministic initial price in [50, 550).
constexpr u64 price_of(u64 id) {
  return 50 + (((id ^ 0xa0761d6478bd642full) * 0x9e3779b97f4a7c15ull) >> 40) %
                  500;
}

// ---------------------------------------------------------------------------
// World + task mix
// ---------------------------------------------------------------------------

struct Mix {
  const char* name;
  int tasks_per_txn;
  int queries_per_task;
  int queries_pct;  // ids drawn from the first q% of the table
  int user_pct;     // % of transactions that are make_reservation
  u64 relations;    // resources per relation == number of customers
  u64 base_capacity;  // seats per resource: base + id % spread
  u64 capacity_spread;
  bool prefill;  // start near capacity (most reserve attempts query-only)
  int txns_per_thread;
};

// Low contention is the STAMP "-n2 -q90 -u98" shape run NEAR CAPACITY: the
// world starts with almost every seat booked, so a typical reservation
// transaction queries a handful of resources, finds them full (or already
// held), and commits read-only; bookings trickle in as cancellations free
// seats.  That read-mostly regime is where value-based validation (NOrec)
// is competitive and where the adaptive controller's low-abort vote points.
// High contention is "-n4 -q60 -u90" on a small, mostly-empty table: nearly
// every transaction books (write-heavy), the hot prefix stays warm, and
// encounter-time locking (eager) wins.
constexpr Mix kLowContention{"low_contention", 2,    2,    90, 98,
                             1024,             1,    3,    true, 3000};
constexpr Mix kHighContention{"high_contention", 4,   4,     60, 90,
                              256,               100, 100, false, 1500};

constexpr u64 capacity_of(const Mix& mix, u64 id) {
  return mix.base_capacity + id % mix.capacity_spread;
}

constexpr int kNumRelations = 3;  // cars, rooms, flights

struct World {
  tmcv::tmds::TxSkipList<u64, u64> relations[kNumRelations];
  tmcv::tmds::TxBst<u64, u64> customers;  // customer -> bill
  tmcv::tmds::TxSkipList<u64, u64> reservations;  // rkey -> price paid
  tmcv::tmds::TxStripedCounter<8> revenue;

  explicit World(const Mix& mix) {
    std::vector<u64> bills(mix.relations, 0);
    u64 revenue_total = 0;
    for (u64 id = 0; id < mix.relations; ++id) {
      const u64 cap = capacity_of(mix, id);
      // Prefilled worlds leave id%2 seats free per resource; seat s of
      // resource id goes to customer (id + (s+1)*307) mod N -- distinct
      // customers per resource, spread across the table.
      const u64 booked =
          mix.prefill ? cap - std::min<u64>(cap, id % 2) : 0;
      const u64 price = price_of(id);
      for (u64 rel = 0; rel < kNumRelations; ++rel) {
        relations[rel].insert(id, pack_res(cap, booked, price));
        for (u64 s = 0; s < booked; ++s) {
          const u64 c = (id + (s + 1) * 307) % mix.relations;
          reservations.insert(rkey(c, rel, id), price);
          bills[c] += price;
          revenue_total += price;
        }
      }
    }
    // Bit-reversed insertion order: the deterministic-balance trick for the
    // unbalanced BST (monotone inserts would degrade it to a list).
    int bits = 0;
    while ((u64{1} << bits) < mix.relations) ++bits;
    for (u64 j = 0; j < (u64{1} << bits); ++j) {
      u64 rev = 0;
      for (int b = 0; b < bits; ++b)
        if (j & (u64{1} << b)) rev |= u64{1} << (bits - 1 - b);
      if (rev < mix.relations) customers.insert(rev, bills[rev]);
    }
    revenue.add(static_cast<std::int64_t>(revenue_total));
  }
};

struct Tally {
  std::atomic<u64> reservations_made{0};
  std::atomic<u64> customers_deleted{0};
  std::atomic<u64> tables_updated{0};
};

// One make-reservation transaction: `tasks` tasks, each querying `queries`
// random resources of one random relation and booking the cheapest with
// free capacity that the customer doesn't already hold.
u64 make_reservation(World& w, const Mix& mix, Xoshiro256& rng, u64 customer) {
  return atomically([&]() -> u64 {
    TMCV_TXN_SITE("vacation.reserve");
    const u64 span = std::max<u64>(1, mix.relations * mix.queries_pct / 100);
    u64 made = 0;
    for (int t = 0; t < mix.tasks_per_txn; ++t) {
      const u64 rel = rng.next() % kNumRelations;
      u64 best_id = 0, best_res = 0;
      bool found = false;
      for (int q = 0; q < mix.queries_per_task; ++q) {
        const u64 id = rng.next() % span;
        u64 res = 0;
        if (!w.relations[rel].get(id, res)) continue;
        if (res_used(res) >= res_total(res)) continue;
        if (w.reservations.contains(rkey(customer, rel, id))) continue;
        if (!found || res_price(res) < res_price(best_res)) {
          best_id = id;
          best_res = res;
          found = true;
        }
      }
      if (!found) continue;
      const u64 price = res_price(best_res);
      w.relations[rel].insert(
          best_id,
          pack_res(res_total(best_res), res_used(best_res) + 1, price));
      w.reservations.insert(rkey(customer, rel, best_id), price);
      u64 bill = 0;
      w.customers.get(customer, bill);
      w.customers.insert(customer, bill + price);
      w.revenue.add(static_cast<std::int64_t>(price));
      ++made;
    }
    return made;
  });
}

// Cancel every booking a customer holds: one range scan over the customer's
// key prefix, then release each resource and refund the bill.  The scratch
// vector is non-transactional, so it is cleared INSIDE the transaction --
// a re-execution restarts the accumulation (see docs/DATASTRUCTURES.md).
bool delete_customer(World& w, std::vector<std::pair<u64, u64>>& scratch,
                     u64 customer) {
  return atomically([&] {
    TMCV_TXN_SITE("vacation.delete");
    scratch.clear();
    w.reservations.range(rkey(customer, 0, 0), rkey(customer + 1, 0, 0),
                         [&](u64 k, u64 paid) {
                           scratch.emplace_back(k, paid);
                           return true;
                         });
    if (scratch.empty()) return false;
    u64 freed = 0;
    for (const auto& [k, paid] : scratch) {
      const u64 rel = rkey_relation(k);
      const u64 id = rkey_id(k);
      u64 res = 0;
      w.relations[rel].get(id, res);
      w.relations[rel].insert(
          id, pack_res(res_total(res), res_used(res) - 1, res_price(res)));
      w.reservations.erase(k);
      freed += paid;
    }
    w.customers.insert(customer, 0);
    w.revenue.add(-static_cast<std::int64_t>(freed));
    return true;
  });
}

// Re-price or re-size `tasks` random resources.
void update_tables(World& w, const Mix& mix, Xoshiro256& rng) {
  atomically([&] {
    TMCV_TXN_SITE("vacation.update");
    const u64 span = std::max<u64>(1, mix.relations * mix.queries_pct / 100);
    for (int t = 0; t < mix.tasks_per_txn; ++t) {
      const u64 rel = rng.next() % kNumRelations;
      const u64 id = rng.next() % span;
      u64 res = 0;
      if (!w.relations[rel].get(id, res)) continue;
      if (rng.next() % 2 == 0) {
        w.relations[rel].insert(
            id, pack_res(res_total(res), res_used(res), price_of(rng.next())));
      } else {
        // Grow, or shrink while capacity exceeds what's booked.
        const u64 total = res_total(res);
        const u64 next = (rng.next() % 2 == 0 || total <= res_used(res))
                             ? total + 1
                             : total - 1;
        w.relations[rel].insert(
            id, pack_res(next, res_used(res), res_price(res)));
      }
    }
  });
}

// Quiescent audit: reservation count vs seats in use, and the three
// independent money totals (revenue counter, customer bills, booked record
// prices) must agree exactly.
bool audit(World& w) {
  u64 records = 0, booked_total = 0;
  w.reservations.range(0, ~u64{0}, [&](u64, u64 paid) {
    ++records;
    booked_total += paid;
    return true;
  });
  u64 seats = 0;
  for (auto& rel : w.relations)
    rel.range(0, ~u64{0}, [&](u64, u64 res) {
      seats += res_used(res);
      return true;
    });
  u64 bills = 0;
  w.customers.range(0, ~u64{0}, [&](u64, u64 bill) {
    bills += bill;
    return true;
  });
  const auto revenue = static_cast<u64>(w.revenue.value());
  if (records != seats || booked_total != bills || revenue != bills) {
    std::fprintf(stderr,
                 "AUDIT FAILED: records=%llu seats=%llu booked=%llu "
                 "bills=%llu revenue=%llu\n",
                 (unsigned long long)records, (unsigned long long)seats,
                 (unsigned long long)booked_total, (unsigned long long)bills,
                 (unsigned long long)revenue);
    return false;
  }
  return true;
}

std::atomic<bool> g_audit_ok{true};

// One timed rep on a freshly populated world (construction and audit are
// outside the timer).  Transactions re-read the process default backend via
// plain atomically(), so the adaptive controller's switches take effect
// mid-rep.
double run_mix_once(const Mix& mix, int threads, int txns_per_thread,
                    Tally* tally) {
  World w(mix);
  std::atomic<int> go{0};
  std::vector<std::thread> ts;
  tmcv::Stopwatch sw;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      Xoshiro256 rng(0x7ac3ull * (t + 1));
      std::vector<std::pair<u64, u64>> scratch;
      u64 made = 0, deleted = 0, updated = 0;
      go.fetch_add(1);
      while (go.load() < threads) {
      }
      for (int i = 0; i < txns_per_thread; ++i) {
        const u64 customer = rng.next() % mix.relations;
        const u64 p = rng.next() % 100;
        if (p < static_cast<u64>(mix.user_pct)) {
          made += make_reservation(w, mix, rng, customer);
        } else if (p < static_cast<u64>(mix.user_pct) +
                           (100 - static_cast<u64>(mix.user_pct)) / 2) {
          if (delete_customer(w, scratch, customer)) ++deleted;
        } else {
          update_tables(w, mix, rng);
          ++updated;
        }
      }
      if (tally != nullptr) {
        tally->reservations_made.fetch_add(made);
        tally->customers_deleted.fetch_add(deleted);
        tally->tables_updated.fetch_add(updated);
      }
    });
  }
  for (auto& th : ts) th.join();
  const double secs = sw.elapsed_seconds();
  if (!audit(w)) g_audit_ok.store(false);
  return static_cast<double>(threads) * txns_per_thread / secs;
}

// ---------------------------------------------------------------------------
// Modes
// ---------------------------------------------------------------------------

struct BackendChoice {
  bool set = false;
  const char* label = nullptr;
};
BackendChoice g_backend_choice;

struct MixResult {
  const Mix* mix;
  double ops_per_sec;
  Stats window;
  Tally tally;
  int txns_per_thread;
};

void run_mix_profile(const Mix& mix, int threads, int txns_override,
                     MixResult& out) {
  constexpr int kReps = 3;
  const int txns = txns_override > 0 ? txns_override : mix.txns_per_thread;
  run_mix_once(mix, threads, txns / 4 + 1, nullptr);  // warm-up
  stats_reset();
  // Paired with stats_reset (the documented idiom) so attribution and the
  // tm counters cover the same window: at quiescence /profile then owes
  // conflicts_recorded == aborts_conflict exactly, which CI checks.
  tmcv::obs::attr_reset();
  double best = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const double r = run_mix_once(mix, threads, txns, &out.tally);
    if (r > best) best = r;
  }
  out.mix = &mix;
  out.ops_per_sec = best;
  out.window = stats_snapshot();
  out.txns_per_thread = txns;
}

void fprint_mix(std::FILE* f, const MixResult& r, bool last) {
  const Stats& st = r.window;
  std::fprintf(
      f,
      "    \"%s\": {\"ops_per_sec\": %.0f, \"abort_commit_ratio\": %.6f, "
      "\"tasks_per_txn\": %d, \"queries_per_task\": %d, \"queries_pct\": %d, "
      "\"user_pct\": %d, \"relations\": %llu, \"txns_per_thread\": %d, "
      "\"reservations_made\": %llu, \"customers_deleted\": %llu, "
      "\"tables_updated\": %llu, \"commits\": %llu, \"aborts\": %llu}%s\n",
      r.mix->name, r.ops_per_sec,
      st.commits
          ? static_cast<double>(st.aborts) / static_cast<double>(st.commits)
          : 0.0,
      r.mix->tasks_per_txn, r.mix->queries_per_task, r.mix->queries_pct,
      r.mix->user_pct, (unsigned long long)r.mix->relations,
      r.txns_per_thread,
      (unsigned long long)r.tally.reservations_made.load(),
      (unsigned long long)r.tally.customers_deleted.load(),
      (unsigned long long)r.tally.tables_updated.load(),
      (unsigned long long)st.commits, (unsigned long long)st.aborts,
      last ? "" : ",");
}

int run_json_mode(const char* out_path, int threads, int txns_override) {
  if (std::getenv("TMCV_BENCH_NO_ATTR") == nullptr)
    tmcv::obs::set_attribution_enabled(true);
  tmcv::obs::attr_reset();

  MixResult low{}, high{};
  run_mix_profile(kLowContention, threads, txns_override, low);
  run_mix_profile(kHighContention, threads, txns_override, high);
  const Stats st = low.window;  // headline = low-contention window

  // Latency percentiles for the metrics sibling: one extra unmeasured rep.
  tmcv::obs::set_timing_enabled(true);
  run_mix_once(kLowContention, threads, low.txns_per_thread / 2 + 1, nullptr);
  tmcv::obs::set_timing_enabled(false);

  // Per-backend sweep on the low-contention mix (fresh world per rep; the
  // auto leg starts from EagerSTM and must re-discover the winner).
  const std::vector<SweepLeg> sweep =
      run_backend_sweep({"eager", "lazy", "norec", "auto"}, [&] {
        return run_mix_once(kLowContention, threads, low.txns_per_thread,
                            nullptr);
      });

  if (!g_audit_ok.load()) return 1;

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::perror("fopen");
    return 1;
  }
  const double attempts =
      static_cast<double>(st.commits) + static_cast<double>(st.aborts);
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"vacation\",\n"
               "  \"backend\": \"%s\",\n"
               "  \"spin_budget\": %u,\n"
               "  \"threads\": %d,\n",
               g_backend_choice.set ? g_backend_choice.label : "EagerSTM",
               tmcv_get_spin_budget(), threads);
  fprint_sweep(f, sweep);
  std::fprintf(f, "  \"mixes\": {\n");
  fprint_mix(f, low, false);
  fprint_mix(f, high, true);
  std::fprintf(f, "  },\n");
  std::fprintf(
      f,
      "  \"ops_per_sec\": %.0f,\n"
      "  \"abort_rate\": %.6f,\n"
      "  \"abort_commit_ratio\": %.6f,\n"
      "  \"commits\": %llu,\n"
      "  \"aborts\": %llu,\n"
      "  \"aborts_conflict\": %llu,\n"
      "  \"aborts_capacity\": %llu,\n"
      "  \"aborts_syscall\": %llu,\n"
      "  \"aborts_explicit\": %llu,\n"
      "  \"aborts_retry_wait\": %llu\n"
      "}\n",
      low.ops_per_sec,
      attempts ? static_cast<double>(st.aborts) / attempts : 0.0,
      st.commits
          ? static_cast<double>(st.aborts) / static_cast<double>(st.commits)
          : 0.0,
      (unsigned long long)st.commits, (unsigned long long)st.aborts,
      (unsigned long long)st.aborts_conflict,
      (unsigned long long)st.aborts_capacity,
      (unsigned long long)st.aborts_syscall,
      (unsigned long long)st.aborts_explicit,
      (unsigned long long)st.aborts_retry_wait);
  std::fclose(f);
  const std::string mpath = metrics_path_for(out_path);
  if (!tmcv::obs::write_metrics_files(tmcv::obs::metrics_snapshot(), mpath)) {
    std::perror("write_metrics_files");
    return 1;
  }
  std::printf("wrote %s (low=%.0f high=%.0f txn/s) and %s\n", out_path,
              low.ops_per_sec, high.ops_per_sec, mpath.c_str());
  return 0;
}

int run_summary_mode(int threads, int txns_override) {
  for (const Mix* mix : {&kLowContention, &kHighContention}) {
    const int txns =
        txns_override > 0 ? txns_override : mix->txns_per_thread / 2;
    Tally tally;
    stats_reset();
    const double ops = run_mix_once(*mix, threads, txns, &tally);
    const Stats st = stats_snapshot();
    std::printf(
        "%-16s %8.0f txn/s  abort/commit %.3f  booked %llu  cancelled %llu  "
        "updated %llu\n",
        mix->name, ops,
        st.commits
            ? static_cast<double>(st.aborts) / static_cast<double>(st.commits)
            : 0.0,
        (unsigned long long)tally.reservations_made.load(),
        (unsigned long long)tally.customers_deleted.load(),
        (unsigned long long)tally.tables_updated.load());
  }
  return g_audit_ok.load() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool serve = false;
  int serve_port = 0;
  long hold_ms = 0;
  int threads = 4;
  int txns_override = 0;
  bool json = false;
  const char* out_path = nullptr;
  const char* backend_arg = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--serve-metrics", 15) == 0 &&
        (a[15] == '\0' || a[15] == '=')) {
      serve = true;
      if (a[15] == '=') serve_port = std::atoi(a + 16);
    } else if (std::strncmp(a, "--hold-ms=", 10) == 0) {
      hold_ms = std::atol(a + 10);
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      threads = std::atoi(a + 10);
      if (threads < 1) threads = 1;
    } else if (std::strncmp(a, "--txns=", 7) == 0) {
      txns_override = std::atoi(a + 7);
    } else if (std::strncmp(a, "--backend=", 10) == 0) {
      backend_arg = a + 10;
    } else if (std::strcmp(a, "--json") == 0) {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "vacation: unknown arg '%s' (want --json [path], "
                   "--backend=NAME, --threads=N, --txns=N, "
                   "--serve-metrics[=PORT], --hold-ms=N)\n",
                   a);
      return 1;
    }
  }
  if (backend_arg != nullptr) {
    if (std::strcmp(backend_arg, "auto") == 0) {
      set_backend_auto(true);
      g_backend_choice = {true, "auto"};
    } else {
      Backend b{};
      if (!backend_from_label(backend_arg, b)) {
        std::fprintf(stderr,
                     "vacation: unknown --backend '%s' (want "
                     "eager|lazy|htm|hybrid|norec|auto)\n",
                     backend_arg);
        return 1;
      }
      set_backend(b);
      g_backend_choice = {true, backend_label(b)};
    }
  }
  if (serve) {
    tmcv::obs::set_attribution_enabled(true);
    const int port = tmcv_telemetry_start(serve_port);
    if (port < 0) {
      std::fprintf(stderr,
                   "vacation: failed to start telemetry on port %d: %s\n",
                   serve_port, std::strerror(errno));
      return 1;
    }
    std::printf("telemetry: http://127.0.0.1:%d/metrics\n", port);
    std::fflush(stdout);
  }
  int rc = json ? run_json_mode(out_path ? out_path : "BENCH_vacation.json",
                                threads, txns_override)
                : run_summary_mode(threads, txns_override);
  if (serve) {
    if (hold_ms > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
    tmcv_telemetry_stop();
  }
  set_backend_auto(false);
  return rc;
}
