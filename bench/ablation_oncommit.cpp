// Ablation: deferred (on-commit) versus immediate notification (§3.2).
//
// When NOTIFY runs inside a transaction, the semaphore post is deferred to
// an on-commit handler -- required both for correctness (no wake-up from a
// doomed transaction) and for HTM compatibility (no syscall inside a
// hardware transaction).  This bench measures what the deferral costs by
// comparing token-passing throughput with the notify inside the
// transaction (deferred) against the notify issued immediately after it
// (manual immediate), per TM backend.
#include <atomic>
#include <cstdio>
#include <thread>

#include "core/condvar.h"
#include "sync/sync_context.h"
#include "tm/api.h"
#include "tm/var.h"
#include "util/timing.h"

namespace {

using namespace tmcv;

double run(tm::Backend backend, bool deferred, int tokens) {
  tm::set_default_backend(backend);
  CondVar cv;
  tm::var<int> available(0);
  std::atomic<bool> done{false};

  std::thread consumer([&] {
    for (int consumed = 0; consumed < tokens; ++consumed) {
      for (;;) {
        bool got = false;
        tm::atomically([&] {
          got = false;
          if (available.load() > 0) {
            available.store(available.load() - 1);
            got = true;
            return;
          }
          tm::TxnSync sync;
          cv.wait_final(sync);
        });
        if (got) break;
      }
    }
    done.store(true);
  });

  Stopwatch sw;
  for (int i = 0; i < tokens; ++i) {
    if (deferred) {
      tm::atomically([&] {
        available.store(available.load() + 1);
        cv.notify_one();  // post deferred to the commit handler
      });
    } else {
      tm::atomically([&] { available.store(available.load() + 1); });
      cv.notify_one();  // immediate post, after the data transaction
    }
  }
  while (!done.load()) {
    // The consumer may have parked after a lost race with the last token's
    // notify landing pre-enqueue; nudge it (semantics-preserving).
    cv.notify_one();
    std::this_thread::yield();
  }
  const double seconds = sw.elapsed_seconds();
  consumer.join();
  tm::set_default_backend(tm::Backend::EagerSTM);
  return seconds;
}

}  // namespace

int main() {
  constexpr int kTokens = 20000;
  std::printf("Ablation: deferred (onCommit) vs immediate notification "
              "(%d tokens)\n\n", kTokens);
  std::printf("%-12s %26s %26s\n", "backend", "deferred (in-txn), tok/ms",
              "immediate (post-txn), tok/ms");
  for (tm::Backend b :
       {tm::Backend::EagerSTM, tm::Backend::LazySTM, tm::Backend::HTM}) {
    const double t_def = run(b, /*deferred=*/true, kTokens);
    const double t_imm = run(b, /*deferred=*/false, kTokens);
    std::printf("%-12s %26.1f %26.1f\n", tm::to_string(b),
                kTokens / (t_def * 1e3), kTokens / (t_imm * 1e3));
  }
  std::printf("\nDeferral is required for correctness inside transactions; "
              "the comparison shows its cost is in the noise, so nothing is "
              "sacrificed by the always-safe design.\n");
  return 0;
}
