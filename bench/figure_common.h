// Shared machinery for the figure-reproduction benches: run the kernel
// grid (kernel x system x threads x trials) and print both a human-readable
// table shaped like the paper's figures and machine-readable CSV.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "parsec/runner.h"
#include "tm/api.h"
#include "util/stats.h"

namespace tmcv::bench {

struct FigureOptions {
  int trials = 3;         // paper: average of five trials
  double scale = 1.0;     // input-size multiplier
  std::uint64_t seed = 42;
  bool quick = false;     // --quick: 1 trial at reduced scale (CI smoke)
};

inline FigureOptions parse_options(int argc, char** argv) {
  FigureOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opt.quick = true;
      opt.trials = 1;
      opt.scale = 0.2;
    } else if (arg == "--trials" && i + 1 < argc) {
      opt.trials = std::atoi(argv[++i]);
    } else if (arg == "--scale" && i + 1 < argc) {
      opt.scale = std::atof(argv[++i]);
    }
  }
  return opt;
}

struct SeriesPoint {
  int threads = 0;
  double mean_seconds = 0.0;
  double stddev_seconds = 0.0;
};

struct Series {
  parsec::System system;
  std::vector<SeriesPoint> points;
};

inline Series run_series(const parsec::KernelInfo& kernel,
                         parsec::System system,
                         const std::vector<int>& thread_counts,
                         const FigureOptions& opt) {
  Series series;
  series.system = system;
  for (int threads : thread_counts) {
    parsec::KernelConfig cfg;
    cfg.threads = threads;
    cfg.scale = opt.scale;
    cfg.seed = opt.seed;
    const auto times = run_trials(static_cast<std::size_t>(opt.trials), [&] {
      return kernel.run(system, cfg).seconds;
    });
    const Summary s = summarize(times);
    series.points.push_back(SeriesPoint{threads, s.mean, s.stddev});
  }
  return series;
}

// Print one figure panel: time-in-seconds vs threads for the three systems,
// the same series the paper's sub-figures plot.
inline void print_panel(const std::string& figure, const std::string& kernel,
                        const std::vector<int>& thread_counts,
                        const std::vector<Series>& series) {
  std::printf("\n== %s: %s (time in seconds vs threads) ==\n", figure.c_str(),
              kernel.c_str());
  std::printf("%8s", "threads");
  for (const Series& s : series)
    std::printf("  %26s", parsec::to_string(s.system));
  std::printf("\n");
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    std::printf("%8d", thread_counts[i]);
    for (const Series& s : series)
      std::printf("  %20.4f +-%3.3f", s.points[i].mean_seconds,
                  s.points[i].stddev_seconds);
    std::printf("\n");
  }
  // CSV block for plotting tools.
  for (const Series& s : series)
    for (const SeriesPoint& p : s.points)
      std::printf("CSV,%s,%s,%s,%d,%.6f,%.6f\n", figure.c_str(),
                  kernel.c_str(), parsec::to_string(s.system), p.threads,
                  p.mean_seconds, p.stddev_seconds);
}

// Run one whole figure (all kernels, all systems) under a TM backend.
inline void run_figure(const std::string& figure_name, tm::Backend backend,
                       bool haswell_threads, const FigureOptions& opt) {
  tm::set_default_backend(backend);
  std::printf("%s -- internal TM backend: %s, trials=%d, scale=%.2f\n",
              figure_name.c_str(), tm::to_string(backend), opt.trials,
              opt.scale);
  for (const parsec::KernelInfo& kernel : parsec::kernels()) {
    const std::vector<int>& threads =
        haswell_threads ? kernel.threads_haswell : kernel.threads_westmere;
    std::vector<Series> series;
    for (parsec::System sys :
         {parsec::System::Pthread, parsec::System::TmCv, parsec::System::Tm})
      series.push_back(run_series(kernel, sys, threads, opt));
    print_panel(figure_name, kernel.name, threads, series);
  }
  tm::set_default_backend(tm::Backend::EagerSTM);
}

}  // namespace tmcv::bench
