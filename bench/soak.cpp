// Soak test: a mixed workload hammering every subsystem at once --
// condition variables under locks and transactions, timed waits, retry,
// transactional containers, irrevocable sections, and all TM backends --
// for a configurable duration.  Release-validation tool; the default two
// seconds keep the full bench sweep fast.
//
//   soak [--seconds N] [--threads N]
#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "core/legacy_cv.h"
#include "tm/api.h"
#include "tm/var.h"
#include "tmds/tx_hashmap.h"
#include "tmds/tx_queue.h"
#include "util/rng.h"
#include "util/timing.h"

namespace {

using namespace tmcv;

struct Shared {
  tmds::TxQueue<std::uint64_t> queue;
  tmds::TxHashMap<std::uint64_t, std::uint64_t> map{128};
  tx_condition_variable cv;
  condition_variable lock_cv;
  std::mutex m;
  tm::var<long> credits{0};
  long lock_guarded_counter = 0;  // protected by m
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
};

void worker(Shared& s, int id) {
  Xoshiro256 rng(0x50AC + static_cast<std::uint64_t>(id));
  const tm::Backend backends[] = {tm::Backend::EagerSTM,
                                  tm::Backend::LazySTM, tm::Backend::HTM,
                                  tm::Backend::Hybrid};
  while (!s.stop.load(std::memory_order_relaxed)) {
    const auto dice = rng.next_below(100);
    const tm::Backend b = backends[rng.next_below(4)];
    if (dice < 30) {
      // Produce: credit + enqueue + notify, one transaction.
      tm::atomically(b, [&] {
        s.credits.store(s.credits.load() + 1);
        s.queue.enqueue(rng.next());
        s.cv.notify_one();
      });
    } else if (dice < 55) {
      // Consume with a timed transactional wait.
      bool got = false;
      tm::atomically(b, [&] {
        got = false;
        if (s.credits.load() > 0) {
          s.credits.store(s.credits.load() - 1);
          std::uint64_t v = 0;
          (void)s.queue.dequeue(v);
          got = true;
          return;
        }
        tm::TxnSync sync;
        // Timed transactional wait: the continuation (nothing) resumes
        // irrevocably and the enclosing atomically commits it.
        (void)s.cv.raw().wait_for(sync, std::chrono::microseconds(200));
      });
      (void)got;
    } else if (dice < 70) {
      // Hash-map churn.
      const std::uint64_t k = rng.next_below(256);
      tm::atomically(b, [&] {
        std::uint64_t v = 0;
        if (s.map.get(k, v))
          s.map.put(k, v + 1);
        else
          s.map.put(k, 1);
      });
      if (rng.next_below(8) == 0) tm::atomically(b, [&] { s.map.erase(k); });
    } else if (dice < 80) {
      // Harris retry on a predicate another thread flips constantly.
      tm::atomically(b, [&] {
        if (s.credits.load() < 0) tm::retry_wait();  // never true: no park
      });
    } else if (dice < 92) {
      // Lock-based critical section + condvar interplay.
      std::unique_lock<std::mutex> lk(s.m);
      ++s.lock_guarded_counter;
      if (s.lock_guarded_counter % 64 == 0) {
        lk.unlock();
        s.lock_cv.notify_all();
      } else if (s.lock_guarded_counter % 97 == 0) {
        (void)s.lock_cv.wait_for(lk, std::chrono::microseconds(100));
      }
    } else {
      // Irrevocable section.
      tm::irrevocably([&] { s.credits.store(s.credits.load()); });
    }
    s.ops.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 2.0;
  int threads = 6;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc)
      seconds = std::atof(argv[++i]);
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = std::atoi(argv[++i]);
  }
  Shared shared;
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t)
    pool.emplace_back([&shared, t] { worker(shared, t); });
  Stopwatch sw;
  while (sw.elapsed_seconds() < seconds)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  shared.stop.store(true);
  // Wake anything parked.
  std::atomic<bool> joined{false};
  std::thread drain([&] {
    while (!joined.load()) {
      shared.cv.notify_all();
      shared.lock_cv.notify_all();
      tm::atomically([&] {
        shared.credits.store(shared.credits.load());  // bump commit signal
        shared.queue.enqueue(0);
        std::uint64_t v = 0;
        (void)shared.queue.dequeue(v);
      });
      std::this_thread::yield();
    }
  });
  for (auto& t : pool) t.join();
  joined.store(true);
  drain.join();
  std::printf("soak: %llu mixed ops across %d threads in %.1f s (%.0f "
              "kops/s); tm: %s\n",
              static_cast<unsigned long long>(shared.ops.load()), threads,
              seconds, shared.ops.load() / seconds / 1e3,
              tm::stats_snapshot().to_string().c_str());
  return 0;
}
