// Microbenchmarks: TM runtime primitive costs per backend -- the overheads
// behind "the use of transactions in the implementation" that §5.4 shows to
// be negligible for condvar-sized (<10 location) transactions.
//
// Default mode runs the google-benchmark suite (read/dedup counters attached
// to the read-shaped benchmarks).  `--json` instead runs the read-heavy
// 8-thread workload standalone and writes BENCH_micro_tm.json (ops/sec,
// abort/commit ratio, dedup hit rate) for the CI perf-smoke artifact, plus a
// BENCH_micro_tm.metrics.json observability-registry sibling (+ .prom) with
// txn-duration percentiles from one extra unmeasured timed rep.
//
// `--serve-metrics[=PORT]` additionally starts the live telemetry endpoint
// (core/c_api.h) for the duration of the run; `--hold-ms=N` keeps it up N ms
// after the workload finishes so external scrapers can read the final
// counters.  `--history[=MS]` runs the time-series recorder and
// `--watchdog` the SLO rules on top of it (see obs/watchdog.h).  All
// compose with any mode.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "backend_sweep.h"
#include "core/c_api.h"
#include "obs/attribution.h"
#include "tm/algs/adaptive.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "tm/api.h"
#include "tm/var.h"
#include "util/timing.h"
#include "util/zipf.h"

namespace {

using namespace tmcv::tm;
using tmcv::bench::SweepLeg;
using tmcv::bench::fprint_sweep;
using tmcv::bench::metrics_path_for;
using tmcv::bench::run_backend_sweep;

// --backend=NAME from the command line (applies to every mode).  When set,
// the JSON headers report the chosen label and the timed loops re-read the
// process default per transaction, so `auto` (the adaptive controller) is
// measured with its switches taking effect mid-run.
struct BackendChoice {
  bool set = false;
  bool dynamic = false;  // --backend=auto: the controller owns the default
  const char* label = nullptr;
};
BackendChoice g_backend_choice;

Backend backend_of(const benchmark::State& state) {
  switch (state.range(0)) {
    case 0:
      return Backend::EagerSTM;
    case 1:
      return Backend::LazySTM;
    default:
      return Backend::HTM;
  }
}

void label(benchmark::State& state) {
  state.SetLabel(to_string(backend_of(state)));
}

void BM_TmEmptyTxn(benchmark::State& state) {
  const Backend b = backend_of(state);
  label(state);
  for (auto _ : state) atomically(b, [] {});
}
BENCHMARK(BM_TmEmptyTxn)->Arg(0)->Arg(1)->Arg(2);

void BM_TmReadOnlyTxn(benchmark::State& state) {
  const Backend b = backend_of(state);
  label(state);
  const auto n = static_cast<std::size_t>(state.range(1));
  std::vector<std::unique_ptr<var<std::uint64_t>>> vars;
  for (std::size_t i = 0; i < n; ++i)
    vars.push_back(std::make_unique<var<std::uint64_t>>(i));
  for (auto _ : state) {
    std::uint64_t sum = 0;
    atomically(b, [&] {
      sum = 0;
      for (std::size_t i = 0; i < n; ++i) sum += vars[i]->load();
    });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_TmReadOnlyTxn)
    ->ArgsProduct({{0, 1, 2}, {1, 8, 64}});

void BM_TmWriteTxn(benchmark::State& state) {
  const Backend b = backend_of(state);
  label(state);
  const auto n = static_cast<std::size_t>(state.range(1));
  std::vector<std::unique_ptr<var<std::uint64_t>>> vars;
  for (std::size_t i = 0; i < n; ++i)
    vars.push_back(std::make_unique<var<std::uint64_t>>(0));
  std::uint64_t tick = 0;
  for (auto _ : state) {
    ++tick;
    atomically(b, [&] {
      for (std::size_t i = 0; i < n; ++i) vars[i]->store(tick);
    });
  }
}
BENCHMARK(BM_TmWriteTxn)->ArgsProduct({{0, 1, 2}, {1, 8}});

// The condvar-shaped transaction: ~4 reads + ~3 writes (enqueue/dequeue).
void BM_TmCondvarShapedTxn(benchmark::State& state) {
  const Backend b = backend_of(state);
  label(state);
  var<std::uint64_t> head(0), tail(0), count(0);
  for (auto _ : state) {
    atomically(b, [&] {
      const auto h = head.load();
      const auto t = tail.load();
      const auto c = count.load();
      head.store(h + 1);
      tail.store(t + 1);
      count.store(c);
    });
  }
}
BENCHMARK(BM_TmCondvarShapedTxn)->Arg(0)->Arg(1)->Arg(2);

void BM_TmIrrevocable(benchmark::State& state) {
  var<std::uint64_t> x(0);
  for (auto _ : state)
    irrevocably([&] { x.store(x.load() + 1); });
}
BENCHMARK(BM_TmIrrevocable);

void BM_TmOnCommitHandler(benchmark::State& state) {
  const Backend b = backend_of(state);
  label(state);
  var<std::uint64_t> x(0);
  std::uint64_t fired = 0;
  for (auto _ : state) {
    atomically(b, [&] {
      x.store(x.load() + 1);
      on_commit([&] { ++fired; });
    });
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_TmOnCommitHandler)->Arg(0)->Arg(1)->Arg(2);

void BM_TmNonTxnVarAccess(benchmark::State& state) {
  var<std::uint64_t> x(1);
  std::uint64_t sum = 0;
  for (auto _ : state) {
    sum += x.load();
    x.store(sum);
  }
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_TmNonTxnVarAccess);

// ---------------------------------------------------------------------------
// Read-heavy contended workload (the dedup/fast-path headline number)
// ---------------------------------------------------------------------------
//
// Each transaction scans kScan elements, re-reading a hot "header" var
// between elements (the traversal shape that makes undeduplicated read sets
// O(reads)), then performs kWrites read-modify-writes: >=80% reads.

constexpr int kRhVars = 32;
constexpr int kRhScan = 24;    // 48 reads (hot + element per step)
constexpr int kRhWrites = 4;   // 4 writes (+4 reads): 52r / 4w per txn

struct ReadHeavyState {
  var<std::uint64_t> hot{1};
  std::vector<std::unique_ptr<var<std::uint64_t>>> arr;
  ReadHeavyState() {
    for (int i = 0; i < kRhVars; ++i)
      arr.push_back(std::make_unique<var<std::uint64_t>>(i));
  }
};

ReadHeavyState& read_heavy_state() {
  static ReadHeavyState s;
  return s;
}

void read_heavy_txn(ReadHeavyState& s, Backend b, int t, int i) {
  atomically(b, [&] {
    TMCV_TXN_SITE("read_heavy.scan");
    std::uint64_t sum = 0;
    for (int k = 0; k < kRhScan; ++k)
      sum += s.hot.load() + s.arr[(t * 7 + k) % kRhVars]->load();
    for (int w = 0; w < kRhWrites; ++w) {
      auto* v = s.arr[(t * 5 + i + w) % kRhVars].get();
      v->store(v->load() + sum);
    }
  });
}

void BM_TmReadHeavy(benchmark::State& state) {
  const Backend b = backend_of(state);
  label(state);
  ReadHeavyState& s = read_heavy_state();
  Stats before;
  if (state.thread_index() == 0) before = stats_snapshot();
  const int t = state.thread_index();
  int i = 0;
  for (auto _ : state) read_heavy_txn(s, b, t, i++);
  if (state.thread_index() == 0) {
    const Stats after = stats_snapshot();
    const auto d = [&](std::uint64_t Stats::*f) {
      return static_cast<double>(after.*f - before.*f);
    };
    state.counters["reads"] =
        benchmark::Counter(d(&Stats::reads), benchmark::Counter::kAvgIterations);
    state.counters["read_set_entries"] = benchmark::Counter(
        d(&Stats::read_dedup_appends), benchmark::Counter::kAvgIterations);
    const double logged =
        d(&Stats::read_dedup_hits) + d(&Stats::read_dedup_appends);
    state.counters["dedup_hit_rate"] =
        logged ? d(&Stats::read_dedup_hits) / logged : 0.0;
    const double attempts = d(&Stats::commits) + d(&Stats::aborts);
    state.counters["abort_rate"] =
        attempts ? d(&Stats::aborts) / attempts : 0.0;
  }
}
BENCHMARK(BM_TmReadHeavy)->Arg(0)->Arg(1)->Threads(8)->UseRealTime();

// ---------------------------------------------------------------------------
// Backend sweep: per-backend throughput sections appended to the JSON
// artifacts (harness shared with bench/vacation.cpp -- see backend_sweep.h).
// Runs AFTER the main profile's stats snapshot so the sweep's counters never
// pollute the headline numbers.
// ---------------------------------------------------------------------------
// Contended write-heavy zipfian workload (the contention-path anchor)
// ---------------------------------------------------------------------------
//
// Each transaction reads a few zipf-hot stripes (live validation traffic),
// blind-writes a large zipfian write set, and bumps one private counter (the
// serializability canary), so most commits fight over a handful of hot
// stripes: commit-time lock conflicts, clock-line traffic, and validation
// extensions are the dominant costs -- exactly the path the contention
// manager, polite orec acquisition, and the GV4 clock target.  The pick
// sets are pre-drawn per thread so the timed loop measures the TM runtime,
// not the zipf sampler.

constexpr int kCwVars = 64;
constexpr int kCwReads = 4;
// Write sets this large keep a committer inside its commit-time lock window
// for a meaningful slice of each transaction, so on an oversubscribed core
// the scheduler regularly parks a thread mid-acquisition -- the scenario
// that separates abort-on-sight (re-execute everything, repeatedly) from
// polite bounded waiting (yield to the holder once and resume).
constexpr int kCwWrites = 32;  // 1 counter RMW + (kCwWrites - 1) blind stores
constexpr double kCwTheta = 0.9;  // zipf skew: ~35% of draws hit the top 4
constexpr int kCwMaxThreads = 8;
constexpr int kCwPickSets = 256;  // pre-drawn picks cycled per thread
// Every kCwHeavyEvery-th transaction is a large one: kCwHeavyWrites distinct
// words comfortably exceed TxDescriptor::kHtmWriteCapacity (64 stripes), so
// the hybrid hardware path is deterministically doomed for it.  Mixed
// transaction sizes are what real workloads feed a hybrid TM, and they are
// exactly what separates abort-reason triage (one doomed hardware attempt,
// then software) from a blind fixed hardware budget (burn every attempt on
// a transaction that can never fit).
constexpr int kCwHeavyEvery = 32;
constexpr int kCwHeavyWrites = 96;

struct ContendedPickSet {
  int reads[kCwReads];
  int writes[kCwWrites - 1];
};

struct ContendedState {
  std::vector<std::unique_ptr<var<std::uint64_t>>> arr;
  // One private counter per thread: the serializability canary (every
  // committed transaction bumps its own exactly once).
  std::vector<std::unique_ptr<var<std::uint64_t>>> counters;
  // Per-thread large regions for the capacity-busting transactions.
  std::vector<std::vector<std::unique_ptr<var<std::uint64_t>>>> heavy;
  std::vector<std::vector<ContendedPickSet>> picks;  // [thread][set]
  // The shared generator (util/zipf.h): identical draws here and in
  // bench/kv_loadgen, deterministic under a fixed seed.
  tmcv::ZipfDistribution zipf{kCwVars, kCwTheta};
  ContendedState() {
    for (int i = 0; i < kCwVars; ++i)
      arr.push_back(std::make_unique<var<std::uint64_t>>(0));
    for (int t = 0; t < kCwMaxThreads; ++t) {
      counters.push_back(std::make_unique<var<std::uint64_t>>(0));
      std::vector<std::unique_ptr<var<std::uint64_t>>> region;
      for (int w = 0; w < kCwHeavyWrites; ++w)
        region.push_back(std::make_unique<var<std::uint64_t>>(0));
      heavy.push_back(std::move(region));
      tmcv::Xoshiro256 rng(0xC0417EDEDull + t);
      std::vector<ContendedPickSet> sets(kCwPickSets);
      for (auto& ps : sets) {
        for (int& r : ps.reads) r = static_cast<int>(zipf(rng));
        for (int& w : ps.writes) w = static_cast<int>(zipf(rng));
      }
      picks.push_back(std::move(sets));
    }
  }
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto& v : counters) sum += v->load();
    return sum;
  }
};

ContendedState& contended_state() {
  static ContendedState s;
  return s;
}

void contended_txn(ContendedState& s, int tid, int seq) {
  auto* counter = s.counters[tid].get();
  if ((seq + 1) % kCwHeavyEvery == 0) {
    // Heavy transaction: the write set cannot fit in (emulated) hardware,
    // so the hybrid path must discover that and fall back to software.
    auto& region = s.heavy[tid];
    atomically(Backend::Hybrid, [&] {
      TMCV_TXN_SITE("zipf.heavy");
      for (int w = 0; w < kCwHeavyWrites; ++w)
        region[w]->store(static_cast<std::uint64_t>(seq));
      counter->store(counter->load() + 1);
    });
    return;
  }
  // Picks are pre-drawn (outside the transaction), so a retry fights over
  // the same stripe set -- the worst case for naive conflict handling.
  const ContendedPickSet& p = s.picks[tid][seq & (kCwPickSets - 1)];
  atomically(Backend::LazySTM, [&] {
    TMCV_TXN_SITE("zipf.update");
    std::uint64_t acc = 0;
    for (int r = 0; r < kCwReads; ++r) acc += s.arr[p.reads[r]]->load();
    for (int w = 0; w < kCwWrites - 1; ++w)
      s.arr[p.writes[w]]->store(acc + static_cast<std::uint64_t>(w));
    counter->store(counter->load() + 1);
  });
}

double run_contended_once(ContendedState& s, int threads, int txns_per_thread) {
  std::atomic<int> go{0};
  std::vector<std::thread> ts;
  tmcv::Stopwatch sw;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      go.fetch_add(1);
      while (go.load() < threads) {
      }
      for (int i = 0; i < txns_per_thread; ++i) contended_txn(s, t, i);
    });
  }
  for (auto& th : ts) th.join();
  return static_cast<double>(threads) * txns_per_thread / sw.elapsed_seconds();
}

int run_json_contended_mode(const char* out_path) {
  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 20000;
  constexpr int kReps = 5;
  ContendedState& s = contended_state();
  run_contended_once(s, kThreads, kTxnsPerThread / 4);  // warm-up
  const std::uint64_t sum_before = s.total();
  // Attribution covers exactly the post-reset window, so the sibling
  // metrics file demonstrates completeness: the conflict-pair counts sum to
  // tm.aborts_conflict (same window, same counters).
  stats_reset();
  tmcv::obs::attr_reset();
  // TMCV_BENCH_NO_ATTR keeps the recorder off for A/B runs that measure the
  // cost of the compiled-in-but-disabled hooks (same idiom as TMCV_NO_SPIN).
  if (std::getenv("TMCV_BENCH_NO_ATTR") == nullptr)
    tmcv::obs::set_attribution_enabled(true);
  double best = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const double r = run_contended_once(s, kThreads, kTxnsPerThread);
    if (r > best) best = r;
  }
  // Serializability canary: every committed transaction must have bumped
  // its thread's private counter exactly once, no matter how contended the
  // clock/orec paths were.
  const std::uint64_t expected =
      sum_before +
      static_cast<std::uint64_t>(kReps) * kThreads * kTxnsPerThread;
  if (s.total() != expected) {
    std::fprintf(stderr, "LOST UPDATES: sum=%llu expected=%llu\n",
                 (unsigned long long)s.total(), (unsigned long long)expected);
    return 1;
  }
  tmcv::obs::set_timing_enabled(true);
  run_contended_once(s, kThreads, kTxnsPerThread);
  tmcv::obs::set_timing_enabled(false);
  // Snapshot after the histogram rep so the JSON's abort counters cover the
  // same window as the sibling metrics file -- the completeness contract
  // (attribution.conflicts_recorded == tm.aborts_conflict) then holds
  // across both artifacts, not just within the metrics snapshot.
  const Stats st = stats_snapshot();
  const double attempts =
      static_cast<double>(st.commits) + static_cast<double>(st.aborts);
  // Sweep after the headline snapshot: the "lazy" leg is the committed
  // profile's own shape (the closures request LazySTM/Hybrid explicitly),
  // "eager" forces encounter-time locking on the same mix, "norec" coerces
  // the whole mix through the family override, and "auto" starts from
  // EagerSTM and reports the controller's converged steady state.
  const std::vector<SweepLeg> sweep = run_backend_sweep(
      {"eager", "lazy", "norec", "auto"},
      [&] { return run_contended_once(s, kThreads, kTxnsPerThread); });
  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"micro_tm_contended_zipf\",\n"
               "  \"backend\": \"%s\",\n"
               "  \"spin_budget\": %u,\n"
               "  \"threads\": %d,\n",
               g_backend_choice.set ? g_backend_choice.label
                                    : "LazySTM+Hybrid",
               tmcv_get_spin_budget(), kThreads);
  fprint_sweep(f, sweep);
  std::fprintf(f,
               "  \"txns_per_thread\": %d,\n"
               "  \"writes_per_txn\": %d,\n"
               "  \"reads_per_txn\": %d,\n"
               "  \"heavy_every\": %d,\n"
               "  \"heavy_writes\": %d,\n"
               "  \"zipf_vars\": %d,\n"
               "  \"zipf_theta\": %.2f,\n"
               "  \"reps\": %d,\n"
               "  \"ops_per_sec\": %.0f,\n"
               "  \"abort_rate\": %.6f,\n"
               "  \"abort_commit_ratio\": %.6f,\n"
               "  \"commits\": %llu,\n"
               "  \"aborts\": %llu,\n"
               "  \"serial_fallbacks\": %llu,\n"
               "  \"extensions\": %llu,\n"
               "  \"cm_waits\": %llu,\n"
               "  \"cm_backoffs\": %llu,\n"
               "  \"cm_serial_escalations\": %llu,\n"
               "  \"clock_cas_reuses\": %llu,\n"
               "  \"aborts_conflict\": %llu,\n"
               "  \"aborts_capacity\": %llu,\n"
               "  \"aborts_syscall\": %llu,\n"
               "  \"aborts_explicit\": %llu,\n"
               "  \"aborts_retry_wait\": %llu\n"
               "}\n",
               kTxnsPerThread, kCwWrites, kCwReads, kCwHeavyEvery,
               kCwHeavyWrites, kCwVars, kCwTheta, kReps,
               best,
               attempts ? static_cast<double>(st.aborts) / attempts : 0.0,
               st.commits ? static_cast<double>(st.aborts) /
                                static_cast<double>(st.commits)
                          : 0.0,
               (unsigned long long)st.commits, (unsigned long long)st.aborts,
               (unsigned long long)st.serial_fallbacks,
               (unsigned long long)st.extensions,
               (unsigned long long)st.cm_waits,
               (unsigned long long)st.cm_backoffs,
               (unsigned long long)st.cm_serial_escalations,
               (unsigned long long)st.clock_cas_reuses,
               (unsigned long long)st.aborts_conflict,
               (unsigned long long)st.aborts_capacity,
               (unsigned long long)st.aborts_syscall,
               (unsigned long long)st.aborts_explicit,
               (unsigned long long)st.aborts_retry_wait);
  std::fclose(f);
  const std::string mpath = metrics_path_for(out_path);
  if (!tmcv::obs::write_metrics_files(tmcv::obs::metrics_snapshot(), mpath)) {
    std::perror("write_metrics_files");
    return 1;
  }
  std::printf("wrote %s (ops/sec=%.0f, abort/commit=%.3f) and %s\n", out_path,
              best,
              st.commits ? static_cast<double>(st.aborts) /
                               static_cast<double>(st.commits)
                         : 0.0,
              mpath.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// --json mode: standalone read-heavy run for BENCH_micro_tm.json
// ---------------------------------------------------------------------------

// `dynamic` re-reads the process default per transaction, so the adaptive
// controller's mid-run switches actually take effect inside the loop (a
// fixed `b` would pin every transaction to the leg's starting backend).
double run_read_heavy_once(ReadHeavyState& s, Backend b, bool dynamic,
                           int threads, int txns_per_thread) {
  std::atomic<int> go{0};
  std::vector<std::thread> ts;
  tmcv::Stopwatch sw;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      go.fetch_add(1);
      while (go.load() < threads) {
      }
      for (int i = 0; i < txns_per_thread; ++i)
        read_heavy_txn(s, dynamic ? default_backend() : b, t, i);
    });
  }
  for (auto& th : ts) th.join();
  return static_cast<double>(threads) * txns_per_thread / sw.elapsed_seconds();
}


int run_json_mode(const char* out_path) {
  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 40000;
  constexpr int kReps = 5;
  ReadHeavyState& s = read_heavy_state();
  const bool dyn = g_backend_choice.set;
  run_read_heavy_once(s, Backend::EagerSTM, dyn, kThreads,
                      kTxnsPerThread / 4);  // warm-up
  stats_reset();
  double best = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const double r =
        run_read_heavy_once(s, Backend::EagerSTM, dyn, kThreads,
                            kTxnsPerThread);
    if (r > best) best = r;
  }
  const Stats st = stats_snapshot();
  const double attempts =
      static_cast<double>(st.commits) + static_cast<double>(st.aborts);
  // One extra (unmeasured) rep with latency timing on, so the metrics
  // snapshot carries txn-duration percentiles without perturbing the
  // throughput reps above.
  tmcv::obs::set_timing_enabled(true);
  run_read_heavy_once(s, Backend::EagerSTM, dyn, kThreads, kTxnsPerThread);
  tmcv::obs::set_timing_enabled(false);
  // Per-backend sweep after the headline snapshot (run_backend_sweep does
  // the best-of-reps smoothing and the auto leg's convergence reps).
  const std::vector<SweepLeg> sweep = run_backend_sweep(
      {"eager", "lazy", "norec", "auto"}, [&] {
        return run_read_heavy_once(s, Backend::EagerSTM, true, kThreads,
                                   kTxnsPerThread);
      });
  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"micro_tm_read_heavy\",\n"
               "  \"backend\": \"%s\",\n"
               "  \"spin_budget\": %u,\n"
               "  \"threads\": %d,\n",
               g_backend_choice.set ? g_backend_choice.label : "EagerSTM",
               tmcv_get_spin_budget(), kThreads);
  fprint_sweep(f, sweep);
  std::fprintf(f,
               "  \"txns_per_thread\": %d,\n"
               "  \"reads_per_txn\": %d,\n"
               "  \"writes_per_txn\": %d,\n"
               "  \"reps\": %d,\n"
               "  \"ops_per_sec\": %.0f,\n"
               "  \"abort_rate\": %.6f,\n"
               "  \"abort_commit_ratio\": %.6f,\n"
               "  \"dedup_hit_rate\": %.6f,\n"
               "  \"commits\": %llu,\n"
               "  \"aborts\": %llu,\n"
               "  \"reads\": %llu,\n"
               "  \"read_set_appends\": %llu,\n"
               "  \"extensions\": %llu,\n"
               "  \"aborts_conflict\": %llu,\n"
               "  \"aborts_capacity\": %llu,\n"
               "  \"aborts_syscall\": %llu,\n"
               "  \"aborts_explicit\": %llu,\n"
               "  \"aborts_retry_wait\": %llu\n"
               "}\n",
               kTxnsPerThread, 2 * kRhScan + kRhWrites, kRhWrites,
               kReps, best,
               attempts ? static_cast<double>(st.aborts) / attempts : 0.0,
               st.commits ? static_cast<double>(st.aborts) /
                                static_cast<double>(st.commits)
                          : 0.0,
               st.dedup_hit_rate(), (unsigned long long)st.commits,
               (unsigned long long)st.aborts, (unsigned long long)st.reads,
               (unsigned long long)st.read_dedup_appends,
               (unsigned long long)st.extensions,
               (unsigned long long)st.aborts_conflict,
               (unsigned long long)st.aborts_capacity,
               (unsigned long long)st.aborts_syscall,
               (unsigned long long)st.aborts_explicit,
               (unsigned long long)st.aborts_retry_wait);
  std::fclose(f);
  const std::string mpath = metrics_path_for(out_path);
  if (!tmcv::obs::write_metrics_files(tmcv::obs::metrics_snapshot(), mpath)) {
    std::perror("write_metrics_files");
    return 1;
  }
  std::printf("wrote %s (ops/sec=%.0f, dedup_hit_rate=%.3f) and %s\n",
              out_path, best, st.dedup_hit_rate(), mpath.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// --json-norec mode: the NOrec headline profile for BENCH_micro_tm_norec.json
// ---------------------------------------------------------------------------
//
// Read-MOSTLY at 2 threads -- the workload class NOrec was designed for.
// Most transactions are pure scans over a wide var array (every read is a
// distinct location, so the orec backends pay a stripe lookup + version
// check per read while NOrec pays one append and a check of the single
// global counter); one transaction in kNpWriterEvery does a couple of
// read-modify-writes confined to the thread's own half of the array, so
// the commit counter moves rarely (cheap revalidation) and writers never
// collide (uncontended by construction).  Eager and lazy run the identical
// workload first so the artifact carries its own baseline (and bench_check
// can gate the committed speedup ratio without cross-file joins).

constexpr int kNpVars = 4096;
constexpr int kNpScan = 96;        // reads per scan transaction
constexpr int kNpWrites = 2;       // RMWs per writer transaction
constexpr int kNpWriterEvery = 8;  // 1-in-8 transactions write

struct NorecProfileState {
  std::vector<std::unique_ptr<var<std::uint64_t>>> arr;
  NorecProfileState() {
    for (int i = 0; i < kNpVars; ++i)
      arr.push_back(std::make_unique<var<std::uint64_t>>(i));
  }
};

void norec_profile_txn(NorecProfileState& s, int t, int i) {
  constexpr int kHalf = kNpVars / 2;
  atomically([&] {
    TMCV_TXN_SITE("norec_profile.scan");
    if (i % kNpWriterEvery == 0) {
      for (int w = 0; w < kNpWrites; ++w) {
        auto* v = s.arr[t * kHalf + (i + w * 61) % kHalf].get();
        v->store(v->load() + 1);
      }
      return;
    }
    std::uint64_t sum = 0;
    for (int k = 0; k < kNpScan; ++k)
      sum += s.arr[(t * kHalf + i * 31 + k * 37) % kNpVars]->load();
    (void)sum;
  });
}

double run_norec_profile_once(NorecProfileState& s, int threads,
                              int txns_per_thread) {
  std::atomic<int> go{0};
  std::vector<std::thread> ts;
  tmcv::Stopwatch sw;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      go.fetch_add(1);
      while (go.load() < threads) {
      }
      for (int i = 0; i < txns_per_thread; ++i) norec_profile_txn(s, t, i);
    });
  }
  for (auto& th : ts) th.join();
  return static_cast<double>(threads) * txns_per_thread / sw.elapsed_seconds();
}

int run_json_norec_mode(const char* out_path) {
  constexpr int kThreads = 2;
  constexpr int kTxnsPerThread = 40000;
  constexpr int kReps = 5;
  NorecProfileState s;
  const Backend saved = default_backend();
  Stats norec_window{};
  const auto leg = [&](Backend b, bool snapshot_window) {
    set_backend(b);
    run_norec_profile_once(s, kThreads, kTxnsPerThread / 4);  // warm-up
    if (snapshot_window) stats_reset();
    double best = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      const double r = run_norec_profile_once(s, kThreads, kTxnsPerThread);
      if (r > best) best = r;
    }
    if (snapshot_window) norec_window = stats_snapshot();
    return best;
  };
  const double eager = leg(Backend::EagerSTM, false);
  const double lazy = leg(Backend::LazySTM, false);
  const double norec = leg(Backend::NOrec, true);
  set_backend(saved);
  const double best_fixed = eager > lazy ? eager : lazy;
  const Stats& st = norec_window;
  const double attempts =
      static_cast<double>(st.commits) + static_cast<double>(st.aborts);
  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"micro_tm_norec_read_heavy\",\n"
               "  \"backend\": \"NOrec\",\n"
               "  \"spin_budget\": %u,\n"
               "  \"threads\": %d,\n"
               "  \"txns_per_thread\": %d,\n"
               "  \"reads_per_txn\": %d,\n"
               "  \"writes_per_txn\": %d,\n"
               "  \"writer_txn_every\": %d,\n"
               "  \"reps\": %d,\n"
               "  \"ops_per_sec\": %.0f,\n"
               "  \"eager_ops_per_sec\": %.0f,\n"
               "  \"lazy_ops_per_sec\": %.0f,\n"
               "  \"speedup_vs_best_fixed\": %.4f,\n"
               "  \"abort_rate\": %.6f,\n"
               "  \"commits\": %llu,\n"
               "  \"aborts\": %llu,\n"
               "  \"norec_commits\": %llu,\n"
               "  \"norec_validations\": %llu,\n"
               "  \"norec_val_failures\": %llu\n"
               "}\n",
               tmcv_get_spin_budget(), kThreads, kTxnsPerThread,
               kNpScan, kNpWrites, kNpWriterEvery, kReps, norec, eager, lazy,
               best_fixed > 0 ? norec / best_fixed : 0.0,
               attempts ? static_cast<double>(st.aborts) / attempts : 0.0,
               (unsigned long long)st.commits, (unsigned long long)st.aborts,
               (unsigned long long)st.norec_commits,
               (unsigned long long)st.norec_validations,
               (unsigned long long)st.norec_val_failures);
  std::fclose(f);
  const std::string mpath = metrics_path_for(out_path);
  if (!tmcv::obs::write_metrics_files(tmcv::obs::metrics_snapshot(), mpath)) {
    std::perror("write_metrics_files");
    return 1;
  }
  std::printf("wrote %s (norec=%.0f eager=%.0f lazy=%.0f, x%.3f) and %s\n",
              out_path, norec, eager, lazy,
              best_fixed > 0 ? norec / best_fixed : 0.0, mpath.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Flags consumed here (and stripped before google-benchmark sees argv):
  //   --serve-metrics[=PORT]  live telemetry endpoint for the whole run
  //                           (PORT 0 / omitted = ephemeral)
  //   --hold-ms=N             keep the process (and the endpoint) alive N ms
  //                           after the selected mode finishes, so an
  //                           external scraper can read the final counters
  //   --history[=MS]          time-series recorder at MS ms cadence (1000)
  //   --watchdog              SLO watchdog on default rules (implies
  //                           --history; enables timing + attribution)
  //   --backend=NAME          eager|lazy|htm|hybrid|norec pins the process
  //                           default (quiesced switch); `auto` runs the
  //                           adaptive controller for the whole run
  bool serve = false;
  int serve_port = 0;
  long hold_ms = 0;
  long history_ms = 0;
  bool watchdog_on = false;
  const char* backend_arg = nullptr;
  // 0 = google-benchmark, 1 = --json, 2 = --json-contended, 3 = --json-norec
  int mode = 0;
  const char* out_path = nullptr;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--serve-metrics", 15) == 0 &&
        (a[15] == '\0' || a[15] == '=')) {
      serve = true;
      if (a[15] == '=') serve_port = std::atoi(a + 16);
    } else if (std::strncmp(a, "--hold-ms=", 10) == 0) {
      hold_ms = std::atol(a + 10);
    } else if (std::strncmp(a, "--history", 9) == 0 &&
               (a[9] == '\0' || a[9] == '=')) {
      history_ms = a[9] == '=' ? std::atol(a + 10) : 1000;
      if (history_ms <= 0) history_ms = 1000;
    } else if (std::strcmp(a, "--watchdog") == 0) {
      watchdog_on = true;
    } else if (std::strncmp(a, "--backend=", 10) == 0) {
      backend_arg = a + 10;
    } else if (std::strcmp(a, "--json-contended") == 0) {
      mode = 2;
      if (i + 1 < argc && argv[i + 1][0] != '-') out_path = argv[++i];
    } else if (std::strcmp(a, "--json-norec") == 0) {
      mode = 3;
      if (i + 1 < argc && argv[i + 1][0] != '-') out_path = argv[++i];
    } else if (std::strcmp(a, "--json") == 0) {
      mode = 1;
      if (i + 1 < argc && argv[i + 1][0] != '-') out_path = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (backend_arg != nullptr) {
    if (std::strcmp(backend_arg, "auto") == 0) {
      set_backend_auto(true);
      g_backend_choice = {true, true, "auto"};
    } else {
      Backend b{};
      if (!backend_from_label(backend_arg, b)) {
        std::fprintf(stderr,
                     "micro_tm: unknown --backend '%s' (want "
                     "eager|lazy|htm|hybrid|norec|auto)\n",
                     backend_arg);
        return 1;
      }
      set_backend(b);
      g_backend_choice = {true, false, backend_label(b)};
    }
  }
  if (serve) {
    tmcv::obs::set_attribution_enabled(true);
    const int port = tmcv_telemetry_start(serve_port);
    if (port < 0) {
      std::fprintf(stderr,
                   "micro_tm: failed to start telemetry on port %d: %s\n",
                   serve_port, std::strerror(errno));
      return 1;
    }
    std::printf("telemetry: http://127.0.0.1:%d/metrics\n", port);
    std::fflush(stdout);
  }
  if (watchdog_on && history_ms == 0) history_ms = 1000;
  if (watchdog_on) {
    tmcv::obs::set_timing_enabled(true);
    tmcv::obs::set_attribution_enabled(true);
  }
  if (history_ms > 0) {
    tmcv::obs::TimeSeriesOptions ts;
    ts.interval_ms = static_cast<std::uint32_t>(history_ms);
    tmcv::obs::timeseries().start(ts);
  }
  if (watchdog_on)
    tmcv::obs::watchdog().start(tmcv::obs::default_rules());
  int rc = 0;
  if (mode == 3) {
    rc = run_json_norec_mode(out_path ? out_path
                                      : "BENCH_micro_tm_norec.json");
  } else if (mode == 2) {
    rc = run_json_contended_mode(out_path ? out_path
                                          : "BENCH_micro_tm_contended.json");
  } else if (mode == 1) {
    rc = run_json_mode(out_path ? out_path : "BENCH_micro_tm.json");
  } else {
    int bench_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&bench_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               passthrough.data()))
      return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  if (serve) {
    if (hold_ms > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
    tmcv_telemetry_stop();
  }
  if (watchdog_on) tmcv::obs::watchdog().stop();
  if (history_ms > 0) tmcv::obs::timeseries().stop();
  set_backend_auto(false);  // join the controller if --backend=auto ran
  return rc;
}
