// Microbenchmarks: TM runtime primitive costs per backend -- the overheads
// behind "the use of transactions in the implementation" that §5.4 shows to
// be negligible for condvar-sized (<10 location) transactions.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "tm/api.h"
#include "tm/var.h"

namespace {

using namespace tmcv::tm;

Backend backend_of(const benchmark::State& state) {
  switch (state.range(0)) {
    case 0:
      return Backend::EagerSTM;
    case 1:
      return Backend::LazySTM;
    default:
      return Backend::HTM;
  }
}

void label(benchmark::State& state) {
  state.SetLabel(to_string(backend_of(state)));
}

void BM_TmEmptyTxn(benchmark::State& state) {
  const Backend b = backend_of(state);
  label(state);
  for (auto _ : state) atomically(b, [] {});
}
BENCHMARK(BM_TmEmptyTxn)->Arg(0)->Arg(1)->Arg(2);

void BM_TmReadOnlyTxn(benchmark::State& state) {
  const Backend b = backend_of(state);
  label(state);
  const auto n = static_cast<std::size_t>(state.range(1));
  std::vector<std::unique_ptr<var<std::uint64_t>>> vars;
  for (std::size_t i = 0; i < n; ++i)
    vars.push_back(std::make_unique<var<std::uint64_t>>(i));
  for (auto _ : state) {
    std::uint64_t sum = 0;
    atomically(b, [&] {
      sum = 0;
      for (std::size_t i = 0; i < n; ++i) sum += vars[i]->load();
    });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_TmReadOnlyTxn)
    ->ArgsProduct({{0, 1, 2}, {1, 8, 64}});

void BM_TmWriteTxn(benchmark::State& state) {
  const Backend b = backend_of(state);
  label(state);
  const auto n = static_cast<std::size_t>(state.range(1));
  std::vector<std::unique_ptr<var<std::uint64_t>>> vars;
  for (std::size_t i = 0; i < n; ++i)
    vars.push_back(std::make_unique<var<std::uint64_t>>(0));
  std::uint64_t tick = 0;
  for (auto _ : state) {
    ++tick;
    atomically(b, [&] {
      for (std::size_t i = 0; i < n; ++i) vars[i]->store(tick);
    });
  }
}
BENCHMARK(BM_TmWriteTxn)->ArgsProduct({{0, 1, 2}, {1, 8}});

// The condvar-shaped transaction: ~4 reads + ~3 writes (enqueue/dequeue).
void BM_TmCondvarShapedTxn(benchmark::State& state) {
  const Backend b = backend_of(state);
  label(state);
  var<std::uint64_t> head(0), tail(0), count(0);
  for (auto _ : state) {
    atomically(b, [&] {
      const auto h = head.load();
      const auto t = tail.load();
      const auto c = count.load();
      head.store(h + 1);
      tail.store(t + 1);
      count.store(c);
    });
  }
}
BENCHMARK(BM_TmCondvarShapedTxn)->Arg(0)->Arg(1)->Arg(2);

void BM_TmIrrevocable(benchmark::State& state) {
  var<std::uint64_t> x(0);
  for (auto _ : state)
    irrevocably([&] { x.store(x.load() + 1); });
}
BENCHMARK(BM_TmIrrevocable);

void BM_TmOnCommitHandler(benchmark::State& state) {
  const Backend b = backend_of(state);
  label(state);
  var<std::uint64_t> x(0);
  std::uint64_t fired = 0;
  for (auto _ : state) {
    atomically(b, [&] {
      x.store(x.load() + 1);
      on_commit([&] { ++fired; });
    });
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_TmOnCommitHandler)->Arg(0)->Arg(1)->Arg(2);

void BM_TmNonTxnVarAccess(benchmark::State& state) {
  var<std::uint64_t> x(1);
  std::uint64_t sum = 0;
  for (auto _ : state) {
    sum += x.load();
    x.store(sum);
  }
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_TmNonTxnVarAccess);

}  // namespace

BENCHMARK_MAIN();
