// Ablation: HTM sensitivity to asynchronous aborts.
//
// Real hardware transactions die to interrupts, cache evictions, and TLB
// misses at rates that depend on the machine and the workload; the paper's
// Haswell numbers embed whatever rate that machine had.  Injecting
// synthetic chaos into the HTM emulation shows how gracefully the whole
// stack (condvar transactions included) degrades: aborted hardware
// attempts retry and eventually take the serial fallback; Hybrid absorbs
// chaos in software instead.
#include <cstdio>

#include "parsec/runner.h"
#include "tm/api.h"
#include "util/stats.h"

namespace {

using namespace tmcv;

struct Row {
  double seconds;
  std::uint64_t chaos_aborts;
  std::uint64_t serial_fallbacks;
};

Row run(const parsec::KernelInfo& kernel, tm::Backend backend,
        std::uint32_t chaos_per_million) {
  tm::set_default_backend(backend);
  tm::TxDescriptor::set_htm_chaos_per_million(chaos_per_million);
  tm::stats_reset();
  parsec::KernelConfig cfg;
  cfg.threads = 4;
  cfg.scale = 0.5;
  const auto times =
      run_trials(2, [&] { return kernel.run(parsec::System::Tm, cfg).seconds; });
  tm::TxDescriptor::set_htm_chaos_per_million(0);
  tm::set_default_backend(tm::Backend::EagerSTM);
  const auto s = tm::stats_snapshot();
  return Row{summarize(times).mean, s.htm_chaos_aborts, s.serial_fallbacks};
}

}  // namespace

int main() {
  const parsec::KernelInfo* kernel = parsec::find_kernel("ferret");
  if (kernel == nullptr) return 1;
  std::printf("Ablation: HTM chaos sensitivity (ferret kernel, "
              "TMParsec+TMCondVar, 4 threads)\n\n");
  std::printf("%-10s %12s %14s %16s %18s\n", "backend", "chaos", "time (ms)",
              "chaos aborts", "serial fallbacks");
  for (tm::Backend b : {tm::Backend::HTM, tm::Backend::Hybrid}) {
    for (std::uint32_t rate : {0u, 10000u, 50000u, 200000u}) {
      const Row r = run(*kernel, b, rate);
      std::printf("%-10s %10.1f%% %14.1f %16llu %18llu\n", tm::to_string(b),
                  rate / 1e4, r.seconds * 1e3,
                  static_cast<unsigned long long>(r.chaos_aborts),
                  static_cast<unsigned long long>(r.serial_fallbacks));
    }
  }
  std::printf("\nHTM escalates to the serial lock as chaos grows; Hybrid "
              "absorbs the same chaos in software transactions and avoids "
              "serialization entirely.\n");
  return 0;
}
