// Figure 2 reproduction: "Haswell performance" -- the same grid as
// Figure 1, but with the condition variables' internal transactions (and
// the TMParsec port) on the *HTM* backend: our bounded-capacity,
// abort-on-syscall, serial-fallback emulation of Intel RTM (see DESIGN.md
// for the substitution argument).
//
// Usage: fig2_haswell [--quick] [--trials N] [--scale X]
#include "figure_common.h"

int main(int argc, char** argv) {
  const auto opt = tmcv::bench::parse_options(argc, argv);
  tmcv::bench::run_figure("Figure2-Haswell", tmcv::tm::Backend::HTM,
                          /*haswell_threads=*/true, opt);
  return 0;
}
