// Ablation: wake-policy selection (§3.4) -- when several threads wait on
// *different predicates* through one condition variable, how much work does
// each strategy do to wake the right thread?
//
//   notify_all   -- oblivious wake-ups: the whole herd wakes, one thread
//                   proceeds, the rest re-wait.
//   notify_one   -- may wake the wrong thread, which must pass the
//                   notification along (re-notify) before re-waiting.
//   notify_best  -- the user-space wait set lets the notifier select the
//                   thread whose predicate is satisfied: exactly one wake.
//
// Reported: wall time and total wake-ups for R rounds with K waiters.
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "core/condvar.h"
#include "sync/sync_context.h"
#include "util/rng.h"
#include "util/timing.h"

namespace {

using namespace tmcv;

enum class Strategy { NotifyAll, NotifyOne, NotifyBest };

const char* name(Strategy s) {
  switch (s) {
    case Strategy::NotifyAll:
      return "notify_all (oblivious)";
    case Strategy::NotifyOne:
      return "notify_one (relay)";
    case Strategy::NotifyBest:
      return "notify_best (targeted)";
  }
  return "?";
}

struct Result {
  double seconds;
  std::uint64_t wakeups;
};

Result run(Strategy strategy, int waiters, int rounds) {
  CondVar cv;
  std::mutex m;
  // ready[k] set means predicate k is satisfied; thread k may consume it.
  std::vector<bool> ready(static_cast<std::size_t>(waiters), false);
  std::atomic<std::uint64_t> wakeups{0};
  std::atomic<int> consumed{0};
  std::atomic<bool> stop{false};

  std::atomic<int> alive{waiters};
  std::vector<std::thread> pool;
  for (int k = 0; k < waiters; ++k) {
    pool.emplace_back([&, k] {
      struct Departure {
        std::atomic<int>& alive;
        ~Departure() { alive.fetch_sub(1); }
      } departure{alive};
      for (;;) {
        std::unique_lock<std::mutex> lk(m);
        for (;;) {
          if (stop.load()) return;
          if (ready[static_cast<std::size_t>(k)]) break;
          LockSync sync(m);
          cv.wait(sync, static_cast<std::uint64_t>(k));  // tag = predicate id
          wakeups.fetch_add(1, std::memory_order_relaxed);
          if (strategy == Strategy::NotifyOne && !stop.load() &&
              !ready[static_cast<std::size_t>(k)]) {
            // Wrong thread woken: pass the notification along before
            // re-waiting (the §3.4 relay pattern).
            cv.notify_one();
          }
        }
        ready[static_cast<std::size_t>(k)] = false;
        lk.unlock();
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Let every waiter park before the clock starts.
  while (cv.waiter_count() < static_cast<std::size_t>(waiters))
    std::this_thread::yield();

  Stopwatch sw;
  Xoshiro256 rng(12345);
  for (int r = 0; r < rounds; ++r) {
    // Random target: with FIFO wake order the notified head is usually the
    // wrong thread, which is exactly the oblivious/relay scenario.
    const int target = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(waiters)));
    {
      std::lock_guard<std::mutex> g(m);
      ready[static_cast<std::size_t>(target)] = true;
    }
    switch (strategy) {
      case Strategy::NotifyAll:
        cv.notify_all();
        break;
      case Strategy::NotifyOne:
        cv.notify_one();
        break;
      case Strategy::NotifyBest:
        cv.notify_best([target](std::uint64_t tag) {
          // Highest score for the satisfied predicate.
          return tag == static_cast<std::uint64_t>(target) ? 1 : 0;
        });
        break;
    }
    while (consumed.load() <= r) std::this_thread::yield();
  }
  const double seconds = sw.elapsed_seconds();

  stop.store(true);
  // Drain: parked threads need wakes to observe stop.
  std::thread drainer([&] {
    while (alive.load() > 0) {
      cv.notify_all();
      std::this_thread::yield();
    }
  });
  for (auto& t : pool) t.join();
  drainer.join();
  return Result{seconds, wakeups.load()};
}

}  // namespace

int main() {
  constexpr int kRounds = 400;
  std::printf("Ablation: wake policies with per-thread predicates "
              "(%d rounds)\n\n", kRounds);
  std::printf("%-26s %8s %14s %12s %14s\n", "strategy", "waiters",
              "time (ms)", "wakeups", "wakeups/round");
  for (int waiters : {2, 4, 8}) {
    for (Strategy s :
         {Strategy::NotifyAll, Strategy::NotifyOne, Strategy::NotifyBest}) {
      const Result r = run(s, waiters, kRounds);
      std::printf("%-26s %8d %14.2f %12llu %14.2f\n", name(s), waiters,
                  r.seconds * 1e3,
                  static_cast<unsigned long long>(r.wakeups),
                  static_cast<double>(r.wakeups) / kRounds);
    }
  }
  std::printf("\nnotify_best wakes ~1 thread per round regardless of the "
              "herd size; notify_all wakes the whole herd; notify_one "
              "relays through on average half the herd.\n");
  return 0;
}
