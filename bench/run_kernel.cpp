// CLI driver for individual PARSEC mini-kernels: run one (kernel, system,
// backend, threads) cell of the evaluation grid, with TM statistics.
//
//   run_kernel <kernel> [--system pthread|tmcv|tm] [--threads N]
//              [--backend eager|lazy|htm|hybrid|norec|auto] [--scale X]
//              [--trials N]
//              [--trace out.json] [--metrics out.json]
//              [--serve-metrics PORT] [--hold-ms N]
//   run_kernel --list
//
// --trace writes a Chrome trace-event JSON (open in Perfetto) of condvar,
// transaction and semaphore events; --metrics writes the unified metrics
// registry snapshot as JSON plus a Prometheus-text sibling (<path>.prom).
// --serve-metrics starts the live telemetry endpoint (core/c_api.h) for the
// run (PORT 0 = ephemeral); --hold-ms keeps it up N ms after the trials so
// an external scraper can read the final counters.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "core/c_api.h"
#include "obs/trace.h"
#include "parsec/runner.h"
#include "tm/algs/adaptive.h"
#include "tm/api.h"
#include "util/stats.h"

namespace {

using namespace tmcv;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <kernel> [--system pthread|tmcv|tm] [--threads N]\n"
               "          [--backend eager|lazy|htm|hybrid|norec|auto] [--scale X]\n"
               "          [--trials N] [--trace out.json] [--metrics out.json]\n"
               "          [--serve-metrics PORT] [--hold-ms N]\n"
               "       %s --list\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--list") == 0) {
    // Bare invocation (e.g. from `for b in build/bench/*; do $b; done`):
    // list the kernels and point at the flags.
    std::printf("available kernels:\n");
    for (const parsec::KernelInfo& k : parsec::kernels())
      std::printf("  %s\n", k.name.c_str());
    std::printf("\nrun one with: %s <kernel> --system tm --threads 4 "
                "--backend htm\n", argv[0]);
    return 0;
  }

  const parsec::KernelInfo* kernel = parsec::find_kernel(argv[1]);
  if (kernel == nullptr) {
    std::fprintf(stderr, "unknown kernel '%s' (try --list)\n", argv[1]);
    return 2;
  }

  parsec::System system = parsec::System::Pthread;
  tm::Backend backend = tm::Backend::EagerSTM;
  bool backend_auto = false;
  parsec::KernelConfig cfg;
  parsec::ObsOutputs obs_out;
  int trials = 3;
  bool serve = false;
  int serve_port = 0;
  long hold_ms = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--system") {
      const std::string v = next();
      if (v == "pthread")
        system = parsec::System::Pthread;
      else if (v == "tmcv")
        system = parsec::System::TmCv;
      else if (v == "tm")
        system = parsec::System::Tm;
      else
        return usage(argv[0]);
    } else if (arg == "--backend") {
      const std::string v = next();
      if (v == "auto")
        backend_auto = true;
      else if (!tm::backend_from_label(v.c_str(), backend))
        return usage(argv[0]);
    } else if (arg == "--threads") {
      cfg.threads = std::atoi(next());
    } else if (arg == "--scale") {
      cfg.scale = std::atof(next());
    } else if (arg == "--trials") {
      trials = std::atoi(next());
    } else if (arg == "--trace") {
      obs_out.trace_path = next();
    } else if (arg == "--metrics") {
      obs_out.metrics_path = next();
    } else if (arg == "--serve-metrics") {
      serve = true;
      serve_port = std::atoi(next());
    } else if (arg == "--hold-ms") {
      hold_ms = std::atol(next());
    } else {
      return usage(argv[0]);
    }
  }

  tm::set_default_backend(backend);
  if (backend_auto) tm::set_backend_auto(true);
  tm::stats_reset();
  obs_out.enable();
  if (serve) {
    obs::set_attribution_enabled(true);
    const int port = tmcv_telemetry_start(serve_port);
    if (port < 0) {
      std::fprintf(stderr, "failed to start telemetry on port %d\n",
                   serve_port);
      return 1;
    }
    std::printf("telemetry: http://127.0.0.1:%d/metrics\n", port);
    std::fflush(stdout);
  }
  std::printf("%s / %s / backend=%s / threads=%d / scale=%.2f\n",
              kernel->name.c_str(), parsec::to_string(system),
              tm::to_string(backend), cfg.threads, cfg.scale);
  std::uint64_t checksum = 0;
  const auto times = run_trials(static_cast<std::size_t>(trials), [&] {
    const parsec::KernelResult r = kernel->run(system, cfg);
    checksum = r.checksum;
    return r.seconds;
  });
  const Summary s = summarize(times);
  std::printf("time: %.4f s (+- %.4f over %d trials)  checksum: %016llx\n",
              s.mean, s.stddev, trials,
              static_cast<unsigned long long>(checksum));
  std::printf("tm:   %s\n", tm::stats_snapshot().to_string().c_str());
  if (obs_out.any() && !obs_out.write()) {
    std::fprintf(stderr, "failed to write observability outputs\n");
    return 1;
  }
  if (!obs_out.trace_path.empty())
    std::printf("trace:   %s (load in Perfetto / chrome://tracing)\n",
                obs_out.trace_path.c_str());
  if (!obs_out.metrics_path.empty())
    std::printf("metrics: %s (+ .prom)\n", obs_out.metrics_path.c_str());
  if (serve) {
    if (hold_ms > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
    tmcv_telemetry_stop();
  }
  tm::set_backend_auto(false);
  tm::set_default_backend(tm::Backend::EagerSTM);
  return 0;
}
