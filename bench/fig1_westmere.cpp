// Figure 1 reproduction: "Westmere performance" -- per-benchmark time vs
// threads for the three software systems, with the condition variables'
// internal transactions (and the TMParsec port) running on the *software*
// TM backend (our stand-in for GCC's ml_wt algorithm).
//
// The paper's Westmere is a 6-core/12-thread Xeon; this container is
// single-core, so absolute scaling does not reproduce.  What must (and
// does) hold is the relative claim: Parsec+TMCondVar tracks
// Parsec+pthreadCondVar at every thread count, and TMParsec falls into the
// three categories of §5.4.
//
// Usage: fig1_westmere [--quick] [--trials N] [--scale X]
#include "figure_common.h"

int main(int argc, char** argv) {
  const auto opt = tmcv::bench::parse_options(argc, argv);
  tmcv::bench::run_figure("Figure1-Westmere", tmcv::tm::Backend::EagerSTM,
                          /*haswell_threads=*/false, opt);
  return 0;
}
