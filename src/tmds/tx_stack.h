// Transactional LIFO stack.
//
// A linked stack whose every access runs inside a transaction (flat-nesting
// into an ambient one), making it composable: callers can push/pop together
// with arbitrary other transactional state atomically.  Nodes are allocated
// with rollback safety (tm::tx_new) and reclaimed through the epoch GC
// (tm::retire), so concurrent optimistic readers never touch freed memory.
#pragma once

#include <cstddef>

#include "tm/api.h"
#include "tm/epoch.h"
#include "tm/var.h"

namespace tmcv::tmds {

template <typename T>
class TxStack {
 public:
  TxStack() = default;

  TxStack(const TxStack&) = delete;
  TxStack& operator=(const TxStack&) = delete;

  // Destruction requires quiescence (no concurrent access), like any
  // container.
  ~TxStack() {
    Node* node = top_.load_plain();
    while (node != nullptr) {
      Node* next = node->next.load_plain();
      delete node;
      node = next;
    }
  }

  void push(T value) {
    tm::atomically([&] {
      Node* node = tm::tx_new<Node>();
      node->value.store(value);
      node->next.store(top_.load());
      top_.store(node);
      size_.store(size_.load() + 1);
    });
  }

  // Pop into `out`; false when empty.
  bool pop(T& out) {
    return tm::atomically([&] {
      Node* node = top_.load();
      if (node == nullptr) return false;
      out = node->value.load();
      top_.store(node->next.load());
      size_.store(size_.load() - 1);
      tm::retire(node);  // freed once no transaction can reference it
      return true;
    });
  }

  // Peek without removing; false when empty.
  bool peek(T& out) const {
    return tm::atomically([&] {
      Node* node = top_.load();
      if (node == nullptr) return false;
      out = node->value.load();
      return true;
    });
  }

  [[nodiscard]] std::size_t size() const {
    return tm::atomically([&] { return size_.load(); });
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  struct Node {
    tm::var<T> value;
    tm::var<Node*> next{nullptr};
  };

  tm::var<Node*> top_{nullptr};
  tm::var<std::size_t> size_{0};
};

}  // namespace tmcv::tmds
