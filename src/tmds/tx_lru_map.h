// Sharded transactional hash map with per-shard LRU eviction: the store
// behind the KV-cache server (src/apps/kv/), usable anywhere a bounded
// transactional cache is needed.
//
// Layout.  Keys hash once; the HIGH bits of the mixed hash pick the shard
// and the LOW bits pick the bucket inside it, so any two keys that share a
// shard still spread across its buckets and -- the property the sharding
// exists for -- a transaction touches exactly one shard, making cross-shard
// conflicts structurally impossible for single-key operations.  Each shard
// is a chained hash table (the tx_hashmap.h shape) whose nodes are
// additionally threaded on an intrusive doubly-linked recency list:
// head = most recent, tail = eviction victim.
//
// Every operation is one flat transaction (tm::atomically merges into an
// enclosing transaction, so callers can compose a get with other state).
// GET is a *writing* transaction -- it splices the touched node to the list
// head and bumps the hit/miss counter -- which is what makes the recency
// order and the statistics exact under concurrency instead of
// approximately-LRU: the cost is bounded to the one shard the key lives in.
//
// Invariants (enforced by tests/tmds_lru_test.cpp):
//   * per-shard size never exceeds capacity; inserting into a full shard
//     evicts exactly the list tail, atomically with the insert;
//   * hits + misses == completed gets, summed exactly across shards
//     (transactional counters, no relaxed drift);
//   * eviction order is strict LRU over the shard's get/put history.
//
// Keys and values must be cell-compatible (trivially copyable, <= 8 bytes),
// like every tm::var payload.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "tm/api.h"
#include "tm/epoch.h"
#include "tm/var.h"
#include "util/assert.h"

namespace tmcv::tmds {

// Aggregated (or per-shard) cache statistics; exact at quiescence and
// transactionally consistent per shard while running.
struct LruStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t size = 0;

  LruStats& operator+=(const LruStats& o) noexcept {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    size += o.size;
    return *this;
  }
};

// One shard: bounded chained hash table + intrusive LRU list.  Usable on
// its own (TxLruMap with one shard is exactly this), but normally owned by
// TxLruMap below.
template <typename K, typename V>
class TxLruShard {
 public:
  TxLruShard(std::size_t capacity, std::size_t buckets)
      : capacity_(capacity), buckets_(buckets) {
    TMCV_ASSERT_MSG(capacity > 0, "LRU shard needs capacity >= 1");
    TMCV_ASSERT_MSG((buckets & (buckets - 1)) == 0,
                    "bucket count must be a power of two");
  }

  TxLruShard(const TxLruShard&) = delete;
  TxLruShard& operator=(const TxLruShard&) = delete;

  ~TxLruShard() {
    // Quiescent teardown: walk the recency list (it threads every node).
    Node* n = head_.load_plain();
    while (n != nullptr) {
      Node* next = n->next.load_plain();
      delete n;
      n = next;
    }
  }

  // Lookup; a hit refreshes the key's recency.
  bool get(K key, V& out) {
    return tm::atomically([&] {
      Node* n = find(key);
      if (n == nullptr) {
        misses_.store(misses_.load() + 1);
        return false;
      }
      hits_.store(hits_.load() + 1);
      touch(n);
      out = n->value.load();
      return true;
    });
  }

  // Insert or overwrite (both refresh recency); returns true when the key
  // was newly inserted.  A full shard evicts its LRU tail in the same
  // transaction, so `size <= capacity` holds at every commit point.
  bool put(K key, V value) {
    return tm::atomically([&] {
      Node* n = find(key);
      if (n != nullptr) {
        n->value.store(value);
        touch(n);
        return false;
      }
      if (size_.load() == capacity_) evict_tail();
      n = tm::tx_new<Node>();
      n->key.store(key);
      n->value.store(value);
      link_into_bucket(n);
      link_at_head(n);
      size_.store(size_.load() + 1);
      return true;
    });
  }

  // Remove; false if absent.
  bool erase(K key) {
    return tm::atomically([&] {
      Node* n = find(key);
      if (n == nullptr) return false;
      unlink(n);
      tm::retire(n);
      return true;
    });
  }

  [[nodiscard]] bool contains(K key) {
    V ignored;
    return get(key, ignored);
  }

  [[nodiscard]] std::size_t size() const {
    return tm::atomically([&] { return size_.load(); });
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] LruStats stats() const {
    return tm::atomically([&] {
      LruStats s;
      s.hits = hits_.load();
      s.misses = misses_.load();
      s.evictions = evictions_.load();
      s.size = size_.load();
      return s;
    });
  }

  // Keys in recency order, most recent first (tests and debugging; runs as
  // one transaction over the whole shard).
  [[nodiscard]] std::vector<K> keys_by_recency() const {
    return tm::atomically([&] {
      std::vector<K> out;
      for (Node* n = head_.load(); n != nullptr; n = n->next.load())
        out.push_back(n->key.load());
      return out;
    });
  }

 private:
  struct Node {
    tm::var<K> key;
    tm::var<V> value;
    tm::var<Node*> hnext{nullptr};  // hash-chain link
    tm::var<Node*> prev{nullptr};   // recency list, toward head (MRU)
    tm::var<Node*> next{nullptr};   // recency list, toward tail (LRU)
  };

  [[nodiscard]] tm::var<Node*>& bucket_for(K key) const {
    // Shards re-mix with their own constant, so the bits the sharded map
    // consumed for shard selection don't thin out the bucket spread.
    const auto h =
        (static_cast<std::uint64_t>(key) ^ 0x94d049bb133111ebull) *
        0x9e3779b97f4a7c15ull;
    return buckets_[h & (buckets_.size() - 1)];
  }

  [[nodiscard]] Node* find(K key) const {
    for (Node* n = bucket_for(key).load(); n != nullptr; n = n->hnext.load())
      if (n->key.load() == key) return n;
    return nullptr;
  }

  void link_into_bucket(Node* n) {
    tm::var<Node*>& bucket = bucket_for(n->key.load());
    n->hnext.store(bucket.load());
    bucket.store(n);
  }

  void unlink_from_bucket(Node* n) {
    tm::var<Node*>& bucket = bucket_for(n->key.load());
    Node* prev = nullptr;
    for (Node* c = bucket.load(); c != nullptr; c = c->hnext.load()) {
      if (c == n) {
        if (prev == nullptr)
          bucket.store(n->hnext.load());
        else
          prev->hnext.store(n->hnext.load());
        return;
      }
      prev = c;
    }
    TMCV_ASSERT_MSG(false, "node missing from its hash bucket");
  }

  void link_at_head(Node* n) {
    Node* h = head_.load();
    n->prev.store(nullptr);
    n->next.store(h);
    if (h != nullptr)
      h->prev.store(n);
    else
      tail_.store(n);
    head_.store(n);
  }

  void unlink_from_list(Node* n) {
    Node* p = n->prev.load();
    Node* x = n->next.load();
    if (p != nullptr)
      p->next.store(x);
    else
      head_.store(x);
    if (x != nullptr)
      x->prev.store(p);
    else
      tail_.store(p);
  }

  // Splice an existing node to the list head (recency refresh).
  void touch(Node* n) {
    if (head_.load() == n) return;
    unlink_from_list(n);
    link_at_head(n);
  }

  // Full unlink (bucket + list) and size decrement; caller retires.
  void unlink(Node* n) {
    unlink_from_bucket(n);
    unlink_from_list(n);
    size_.store(size_.load() - 1);
  }

  void evict_tail() {
    Node* victim = tail_.load();
    TMCV_ASSERT_MSG(victim != nullptr, "full shard with empty LRU list");
    unlink(victim);
    evictions_.store(evictions_.load() + 1);
    tm::retire(victim);
  }

  const std::size_t capacity_;
  mutable std::vector<tm::var<Node*>> buckets_;
  tm::var<Node*> head_{nullptr};
  tm::var<Node*> tail_{nullptr};
  tm::var<std::size_t> size_{0};
  tm::var<std::uint64_t> hits_{0};
  tm::var<std::uint64_t> misses_{0};
  tm::var<std::uint64_t> evictions_{0};
};

// The sharded map.  Shard count is a power of two; selection uses the top
// log2(shards) bits of the mixed key hash so single-key transactions stay
// shard-local and hot keys spread by hash, not by value locality.
template <typename K, typename V>
class TxLruMap {
 public:
  TxLruMap(std::size_t shards, std::size_t capacity_per_shard,
           std::size_t buckets_per_shard)
      : shift_(64 - log2_of(shards)) {
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
      shards_.push_back(std::make_unique<TxLruShard<K, V>>(
          capacity_per_shard, buckets_per_shard));
  }

  bool get(K key, V& out) { return shard_for(key).get(key, out); }
  bool put(K key, V value) { return shard_for(key).put(key, value); }
  bool erase(K key) { return shard_for(key).erase(key); }
  [[nodiscard]] bool contains(K key) { return shard_for(key).contains(key); }

  // Exact sum of per-shard sizes (one transaction per shard; exact at
  // quiescence, momentarily staggered while writers run -- same contract as
  // the metrics registry).
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const auto& s : shards_) total += s->size();
    return total;
  }

  [[nodiscard]] LruStats stats() const {
    LruStats total;
    for (const auto& s : shards_) total += s->stats();
    return total;
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  [[nodiscard]] std::size_t shard_index(K key) const noexcept {
    return shift_ >= 64 ? 0 : mix(key) >> shift_;
  }

  [[nodiscard]] TxLruShard<K, V>& shard(std::size_t i) { return *shards_[i]; }

 private:
  [[nodiscard]] static std::uint64_t mix(K key) noexcept {
    return static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ull;
  }

  [[nodiscard]] static unsigned log2_of(std::size_t shards) noexcept {
    TMCV_ASSERT_MSG(shards > 0 && (shards & (shards - 1)) == 0,
                    "shard count must be a power of two");
    unsigned bits = 0;
    while ((std::size_t{1} << bits) < shards) ++bits;
    return bits;
  }

  [[nodiscard]] TxLruShard<K, V>& shard_for(K key) const {
    return *shards_[shift_ >= 64 ? 0 : mix(key) >> shift_];
  }

  const unsigned shift_;
  std::vector<std::unique_ptr<TxLruShard<K, V>>> shards_;
};

}  // namespace tmcv::tmds
