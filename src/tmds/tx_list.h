// Transactional sorted singly-linked list: the worst-case traversal
// structure of the tmds ordered family.
//
// Same interface as TxSkipList/TxBst, but every operation walks the list
// from the head: O(n) transactional reads per lookup.  That makes it the
// deliberate stress case for read-set cost -- on the orec backends every
// hop is a stripe lookup plus a version check and the read set grows with
// the traversal, while NOrec logs (address, value) pairs and validates
// against one global counter, which is why the list is the structure where
// NOrec's per-read economics win by the widest margin (measured in
// bench/micro_tmds; see docs/DATASTRUCTURES.md for the footprint table).
//
// Nodes are immutable in key (like the skiplist) and linked through one
// tm::var pointer; erase unlinks and epoch-retires.
#pragma once

#include <cstddef>

#include "obs/attribution.h"
#include "tm/api.h"
#include "tm/epoch.h"
#include "tm/var.h"

namespace tmcv::tmds {

template <typename K, typename V>
class TxSortedList {
 public:
  TxSortedList() = default;

  TxSortedList(const TxSortedList&) = delete;
  TxSortedList& operator=(const TxSortedList&) = delete;

  ~TxSortedList() {
    Node* n = head_.load_plain();
    while (n != nullptr) {
      Node* next = n->next.load_plain();
      delete n;
      n = next;
    }
  }

  // Lookup; false if absent.
  bool get(K key, V& out) const {
    return tm::atomically([&] {
      TMCV_TXN_SITE("list.get");
      Node* n = find_geq(key);
      if (n == nullptr || n->key != key) return false;
      out = n->value.load();
      return true;
    });
  }

  [[nodiscard]] bool contains(K key) const {
    V ignored;
    return get(key, ignored);
  }

  // Insert or overwrite; true when the key was newly inserted.
  bool insert(K key, V value) {
    return tm::atomically([&] {
      TMCV_TXN_SITE("list.insert");
      tm::var<Node*>* link = &head_;
      Node* n = link->load();
      while (n != nullptr && n->key < key) {
        link = &n->next;
        n = link->load();
      }
      if (n != nullptr && n->key == key) {
        n->value.store(value);
        return false;
      }
      Node* fresh = tm::tx_new<Node>(key, value);
      fresh->next.store(n);
      link->store(fresh);
      size_.store(size_.load() + 1);
      return true;
    });
  }

  bool put(K key, V value) { return insert(key, value); }

  // Remove; false if absent.
  bool erase(K key) {
    return tm::atomically([&] {
      TMCV_TXN_SITE("list.erase");
      tm::var<Node*>* link = &head_;
      Node* n = link->load();
      while (n != nullptr && n->key < key) {
        link = &n->next;
        n = link->load();
      }
      if (n == nullptr || n->key != key) return false;
      link->store(n->next.load());
      size_.store(size_.load() - 1);
      tm::retire(n);
      return true;
    });
  }

  // Smallest key >= `key`; false when no such key exists.
  bool lower_bound(K key, K& out_key, V& out_value) const {
    return tm::atomically([&] {
      TMCV_TXN_SITE("list.lower_bound");
      Node* n = find_geq(key);
      if (n == nullptr) return false;
      out_key = n->key;
      out_value = n->value.load();
      return true;
    });
  }

  // Visit every (key, value) with lo <= key < hi in ascending order, as one
  // transaction (consistent snapshot).  `fn(K, V)` returning false stops
  // early.  Returns the number of pairs visited.
  template <typename Fn>
  std::size_t range(K lo, K hi, Fn&& fn) const {
    return tm::atomically([&] {
      TMCV_TXN_SITE("list.range");
      std::size_t visited = 0;
      for (Node* n = find_geq(lo); n != nullptr && n->key < hi;
           n = n->next.load()) {
        ++visited;
        if (!fn(n->key, n->value.load())) break;
      }
      return visited;
    });
  }

  [[nodiscard]] std::size_t size() const {
    return tm::atomically([&] { return size_.load(); });
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  struct Node {
    Node(K k, V v) : key(k), value(v) {}
    const K key;  // immutable after publication (see tx_skiplist.h)
    tm::var<V> value;
    tm::var<Node*> next{nullptr};
  };

  [[nodiscard]] Node* find_geq(K key) const {
    Node* n = head_.load();
    while (n != nullptr && n->key < key) n = n->next.load();
    return n;
  }

  mutable tm::var<Node*> head_{nullptr};
  tm::var<std::size_t> size_{0};
};

}  // namespace tmcv::tmds
