// Transactional skiplist: the ordered map of the tmds family.
//
// A classic singly-linked skiplist whose every pointer is a tm::var, so any
// operation -- point lookup, insert, erase, lower_bound, range scan -- is one
// flat transaction and composes atomically with other transactional state.
// There is no fine-grained locking and no marking protocol: conflict
// detection is the TM runtime's job, which keeps the structure an honest
// workload for the backends rather than a concurrency algorithm of its own.
//
// Deterministic heights.  A node's tower height is a pure function of its
// key (trailing-zero count of the mixed key hash, capped at kMaxLevel), NOT
// a random draw.  Two consequences the tests and benchmarks rely on:
//   * replay independence -- re-executing the same operation sequence (in
//     any schedule) produces the identical shape, so abort/retry storms
//     cannot skew the expected O(log n) search paths;
//   * erase/insert round trips are shape-stable: deleting and re-inserting
//     a key restores exactly the prior towers.
// The usual probabilistic height distribution (P(h >= k) = 2^-k) is
// preserved because the hash bits are uniform.
//
// Conflict footprint (see docs/DATASTRUCTURES.md): a search at height h
// reads O(h + log n) tower words; an insert writes its preds' pointers at
// each of the node's levels (1 + expected 1 extra level); tall towers make
// the head node a natural hot stripe under write-heavy mixes -- precisely
// the read-set-validation stress the ordered benchmarks exist to measure.
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/attribution.h"
#include "tm/api.h"
#include "tm/epoch.h"
#include "tm/var.h"
#include "util/assert.h"

namespace tmcv::tmds {

template <typename K, typename V>
class TxSkipList {
 public:
  // Heights 1..kMaxLevel cover ~2^kMaxLevel keys at the expected
  // half-density per level; 16 is comfortable for every committed workload.
  static constexpr std::size_t kMaxLevel = 16;

  TxSkipList() : head_(tm::tx_new<Node>(K{}, V{}, kMaxLevel)) {}

  TxSkipList(const TxSkipList&) = delete;
  TxSkipList& operator=(const TxSkipList&) = delete;

  ~TxSkipList() {
    // Quiescent teardown: level-0 threads every node.
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0].load_plain();
      delete n;
      n = next;
    }
  }

  // Lookup; false if absent.
  bool get(K key, V& out) const {
    return tm::atomically([&] {
      TMCV_TXN_SITE("skiplist.get");
      Node* n = find_geq(key);
      if (n == nullptr || n->key != key) return false;
      out = n->value.load();
      return true;
    });
  }

  [[nodiscard]] bool contains(K key) const {
    V ignored;
    return get(key, ignored);
  }

  // Insert or overwrite; true when the key was newly inserted.
  bool insert(K key, V value) {
    return tm::atomically([&] {
      TMCV_TXN_SITE("skiplist.insert");
      Node* preds[kMaxLevel];
      Node* n = find_path(key, preds);
      if (n != nullptr && n->key == key) {
        n->value.store(value);
        return false;
      }
      const std::size_t h = height_of(key);
      Node* fresh = tm::tx_new<Node>(key, value, h);
      for (std::size_t lvl = 0; lvl < h; ++lvl) {
        fresh->next[lvl].store(preds[lvl]->next[lvl].load());
        preds[lvl]->next[lvl].store(fresh);
      }
      size_.store(size_.load() + 1);
      return true;
    });
  }

  // Family-consistent alias (TxHashMap::put semantics).
  bool put(K key, V value) { return insert(key, value); }

  // Remove; false if absent.
  bool erase(K key) {
    return tm::atomically([&] {
      TMCV_TXN_SITE("skiplist.erase");
      Node* preds[kMaxLevel];
      Node* n = find_path(key, preds);
      if (n == nullptr || n->key != key) return false;
      for (std::size_t lvl = 0; lvl < n->height; ++lvl) {
        // The pred at each level either points at n (n reaches this level)
        // or past it already.
        if (preds[lvl]->next[lvl].load() == n)
          preds[lvl]->next[lvl].store(n->next[lvl].load());
      }
      size_.store(size_.load() - 1);
      tm::retire(n);
      return true;
    });
  }

  // Smallest key >= `key`; false when no such key exists.
  bool lower_bound(K key, K& out_key, V& out_value) const {
    return tm::atomically([&] {
      TMCV_TXN_SITE("skiplist.lower_bound");
      Node* n = find_geq(key);
      if (n == nullptr) return false;
      out_key = n->key;
      out_value = n->value.load();
      return true;
    });
  }

  // Visit every (key, value) with lo <= key < hi in ascending order, inside
  // ONE transaction: the visited pairs form a consistent snapshot (a
  // concurrent writer either serializes entirely before or after the scan).
  // `fn(K, V)` returning bool false stops the scan early.  Returns the
  // number of pairs visited.
  template <typename Fn>
  std::size_t range(K lo, K hi, Fn&& fn) const {
    return tm::atomically([&] {
      TMCV_TXN_SITE("skiplist.range");
      std::size_t visited = 0;
      for (Node* n = find_geq(lo); n != nullptr && n->key < hi;
           n = n->next[0].load()) {
        ++visited;
        if (!fn(n->key, n->value.load())) break;
      }
      return visited;
    });
  }

  [[nodiscard]] std::size_t size() const {
    return tm::atomically([&] { return size_.load(); });
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

  // Deterministic tower height for `key` (exposed for tests: replay
  // independence is checkable without poking internals).
  [[nodiscard]] static std::size_t height_of(K key) noexcept {
    const std::uint64_t h =
        (static_cast<std::uint64_t>(key) ^ 0xa0761d6478bd642full) *
        0x9e3779b97f4a7c15ull;
    // Trailing zeros of a uniform word: P(>= k) = 2^-k, the classic
    // skiplist level law, but derived from the key alone.
    std::size_t level = 1;
    std::uint64_t bits = h;
    while ((bits & 1) == 0 && level < kMaxLevel) {
      ++level;
      bits >>= 1;
    }
    return level;
  }

 private:
  struct Node {
    Node(K k, V v, std::size_t h) : key(k), value(v), height(h) {}
    const K key;          // immutable after insert: read without
                          // instrumentation (publication is ordered by the
                          // transactional pointer store that links the node)
    tm::var<V> value;
    const std::size_t height;
    tm::array<Node*, kMaxLevel> next;  // levels [height, kMaxLevel) unused
  };

  // In-transaction: walk the towers, recording the last node strictly
  // before `key` at every level; returns preds[0]'s level-0 successor (the
  // first node with key >= `key`, or nullptr).
  Node* find_path(K key, Node* preds[kMaxLevel]) const {
    Node* pred = head_;
    for (std::size_t lvl = kMaxLevel; lvl-- > 0;) {
      for (Node* cur = pred->next[lvl].load();
           cur != nullptr && cur->key < key; cur = pred->next[lvl].load())
        pred = cur;
      preds[lvl] = pred;
    }
    return pred->next[0].load();
  }

  Node* find_geq(K key) const {
    Node* preds[kMaxLevel];
    return find_path(key, preds);
  }

  Node* const head_;  // sentinel, full height, key unused
  tm::var<std::size_t> size_{0};
};

}  // namespace tmcv::tmds
