// Transactional chained hash map (fixed bucket array).
//
// The shape of dedup's deduplication table, as a reusable composable
// structure: every operation is a transaction over the touched bucket
// chain, so lookups/inserts compose atomically with other transactional
// state.  Keys and values must be cell-compatible (trivially copyable,
// <= 8 bytes).  The bucket count is fixed at construction (power of two),
// which keeps conflicts bucket-local; resizing under TM is future work, as
// it is for most TM data-structure literature.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tm/api.h"
#include "tm/epoch.h"
#include "tm/var.h"
#include "util/assert.h"

namespace tmcv::tmds {

template <typename K, typename V>
class TxHashMap {
 public:
  explicit TxHashMap(std::size_t buckets = 256) : buckets_(buckets) {
    TMCV_ASSERT_MSG((buckets & (buckets - 1)) == 0,
                    "bucket count must be a power of two");
  }

  TxHashMap(const TxHashMap&) = delete;
  TxHashMap& operator=(const TxHashMap&) = delete;

  ~TxHashMap() {
    for (auto& bucket : buckets_) {
      Node* node = bucket.load_plain();
      while (node != nullptr) {
        Node* next = node->next.load_plain();
        delete node;
        node = next;
      }
    }
  }

  // Insert or overwrite; returns true if the key was newly inserted.
  bool put(K key, V value) {
    return tm::atomically([&] {
      tm::var<Node*>& bucket = bucket_for(key);
      for (Node* n = bucket.load(); n != nullptr; n = n->next.load()) {
        if (n->key.load() == key) {
          n->value.store(value);
          return false;
        }
      }
      Node* node = tm::tx_new<Node>();
      node->key.store(key);
      node->value.store(value);
      node->next.store(bucket.load());
      bucket.store(node);
      size_.store(size_.load() + 1);
      return true;
    });
  }

  // Lookup; false if absent.
  bool get(K key, V& out) const {
    return tm::atomically([&] {
      for (Node* n = bucket_for(key).load(); n != nullptr;
           n = n->next.load()) {
        if (n->key.load() == key) {
          out = n->value.load();
          return true;
        }
      }
      return false;
    });
  }

  [[nodiscard]] bool contains(K key) const {
    V ignored;
    return get(key, ignored);
  }

  // Remove; false if absent.
  bool erase(K key) {
    return tm::atomically([&] {
      tm::var<Node*>& bucket = bucket_for(key);
      Node* prev = nullptr;
      for (Node* n = bucket.load(); n != nullptr; n = n->next.load()) {
        if (n->key.load() == key) {
          Node* next = n->next.load();
          if (prev == nullptr)
            bucket.store(next);
          else
            prev->next.store(next);
          size_.store(size_.load() - 1);
          tm::retire(n);
          return true;
        }
        prev = n;
      }
      return false;
    });
  }

  // Insert-if-absent returning the final value: the composable upsert used
  // for "first writer wins" tables (dedup's pattern).
  V get_or_put(K key, V value) {
    return tm::atomically([&] {
      tm::var<Node*>& bucket = bucket_for(key);
      for (Node* n = bucket.load(); n != nullptr; n = n->next.load())
        if (n->key.load() == key) return n->value.load();
      Node* node = tm::tx_new<Node>();
      node->key.store(key);
      node->value.store(value);
      node->next.store(bucket.load());
      bucket.store(node);
      size_.store(size_.load() + 1);
      return value;
    });
  }

  [[nodiscard]] std::size_t size() const {
    return tm::atomically([&] { return size_.load(); });
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }

 private:
  struct Node {
    tm::var<K> key;
    tm::var<V> value;
    tm::var<Node*> next{nullptr};
  };

  [[nodiscard]] tm::var<Node*>& bucket_for(K key) const {
    const auto h = static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ull;
    return buckets_[h & (buckets_.size() - 1)];
  }

  mutable std::vector<tm::var<Node*>> buckets_;
  tm::var<std::size_t> size_{0};
};

}  // namespace tmcv::tmds
