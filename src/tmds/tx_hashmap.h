// Transactional chained hash map with cooperative incremental rehashing.
//
// The shape of dedup's deduplication table, as a reusable composable
// structure: every operation is a transaction over the touched bucket
// chain(s), so lookups/inserts compose atomically with other transactional
// state.  Keys and values must be cell-compatible (trivially copyable,
// <= 8 bytes).
//
// Resizing.  The bucket array can be grown (or shrunk) while readers and
// writers run: rehash(n) installs a fresh table as the *active* one and
// demotes the current table to *old*; a migration cursor then walks the old
// buckets, splicing each chain's nodes into their new active buckets.  The
// scheme is the classic two-table incremental rehash (Redis/dictEntry
// style), made trivially safe here because every step is a transaction:
//
//   * inserts always go to the active table (after checking both tables
//     for an existing key, so no key is ever duplicated);
//   * lookups/erases consult the active chain first, then the old chain if
//     that bucket has not been migrated yet;
//   * every operation migrates one old bucket on its way through
//     (cooperative progress), and migrate_all() finishes the job in
//     bounded transactions for callers that want the table settled now;
//   * when the cursor passes the last old bucket, the old table is retired
//     through the epoch GC -- in-flight transactions that read it will
//     fail validation and re-execute against the new tables.
//
// One rehash runs at a time (a second request while one is migrating
// returns false).  Conflict note: while a migration is in flight every
// operation reads the cursor, so ops serialize against migration steps --
// the table is slower *during* a rehash, never incorrect.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tm/api.h"
#include "tm/epoch.h"
#include "tm/var.h"
#include "util/assert.h"

namespace tmcv::tmds {

template <typename K, typename V>
class TxHashMap {
 public:
  explicit TxHashMap(std::size_t buckets = 256)
      : active_(new Table(buckets)) {
    TMCV_ASSERT_MSG((buckets & (buckets - 1)) == 0,
                    "bucket count must be a power of two");
  }

  TxHashMap(const TxHashMap&) = delete;
  TxHashMap& operator=(const TxHashMap&) = delete;

  ~TxHashMap() {
    // Quiescent teardown.  Unmigrated old buckets still own their chains;
    // migrated ones were spliced into the active table.
    Table* active = active_.load_plain();
    for (auto& bucket : active->slots) delete_chain(bucket.load_plain());
    delete active;
    Table* old = old_.load_plain();
    if (old != nullptr) {
      for (std::size_t i = migrated_.load_plain(); i < old->slots.size(); ++i)
        delete_chain(old->slots[i].load_plain());
      delete old;
    }
  }

  // Insert or overwrite; returns true if the key was newly inserted.
  bool put(K key, V value) {
    return tm::atomically([&] {
      migrate_step();
      if (Node* n = find_either(key)) {
        n->value.store(value);
        return false;
      }
      insert_active(key, value);
      return true;
    });
  }

  // Lookup; false if absent.
  bool get(K key, V& out) const {
    return tm::atomically([&] {
      migrate_step();
      if (Node* n = find_either(key)) {
        out = n->value.load();
        return true;
      }
      return false;
    });
  }

  [[nodiscard]] bool contains(K key) const {
    V ignored;
    return get(key, ignored);
  }

  // Remove; false if absent.
  bool erase(K key) {
    return tm::atomically([&] {
      migrate_step();
      if (erase_in(active_.load(), key)) return true;
      Table* old = old_.load();
      if (old != nullptr && !bucket_migrated(old, key) &&
          erase_in(old, key))
        return true;
      return false;
    });
  }

  // Insert-if-absent returning the final value: the composable upsert used
  // for "first writer wins" tables (dedup's pattern).
  V get_or_put(K key, V value) {
    return tm::atomically([&] {
      migrate_step();
      if (Node* n = find_either(key)) return n->value.load();
      insert_active(key, value);
      return value;
    });
  }

  // Begin an incremental rehash to `new_buckets` (power of two, != the
  // current active count).  Returns false when a migration is already in
  // flight or the size would not change.  Migration proceeds one old
  // bucket per subsequent operation; call migrate_all() to finish eagerly.
  bool rehash(std::size_t new_buckets) {
    TMCV_ASSERT_MSG((new_buckets & (new_buckets - 1)) == 0,
                    "bucket count must be a power of two");
    return tm::atomically([&] {
      if (old_.load() != nullptr) return false;  // one at a time
      Table* active = active_.load();
      if (active->slots.size() == new_buckets) return false;
      Table* bigger = tm::tx_new<Table>(new_buckets);
      old_.store(active);
      active_.store(bigger);
      migrated_.store(0);
      return true;
    });
  }

  // True while an old table is still being drained.
  [[nodiscard]] bool rehash_pending() const {
    return tm::atomically([&] { return old_.load() != nullptr; });
  }

  // Drive the migration to completion, one bucket-sized transaction per
  // step (bounded work per transaction keeps conflict windows small).
  void migrate_all() {
    while (rehash_pending())
      tm::atomically([&] { migrate_step(); });
  }

  [[nodiscard]] std::size_t size() const {
    return tm::atomically([&] { return size_.load(); });
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

  // Active-table bucket count (the target geometry during a migration).
  [[nodiscard]] std::size_t bucket_count() const {
    return tm::atomically([&] { return active_.load()->slots.size(); });
  }

 private:
  struct Node {
    tm::var<K> key;
    tm::var<V> value;
    tm::var<Node*> next{nullptr};
  };

  struct Table {
    explicit Table(std::size_t n) : slots(n) {}
    std::vector<tm::var<Node*>> slots;
  };

  static void delete_chain(Node* node) {
    while (node != nullptr) {
      Node* next = node->next.load_plain();
      delete node;
      node = next;
    }
  }

  [[nodiscard]] static std::uint64_t mix(K key) noexcept {
    return static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ull;
  }

  [[nodiscard]] static std::size_t slot_of(const Table* t, K key) noexcept {
    return mix(key) & (t->slots.size() - 1);
  }

  // In-transaction: has `key`'s old bucket already been drained?
  [[nodiscard]] bool bucket_migrated(Table* old, K key) const {
    return slot_of(old, key) < migrated_.load();
  }

  [[nodiscard]] Node* find_in(Table* t, K key) const {
    for (Node* n = t->slots[slot_of(t, key)].load(); n != nullptr;
         n = n->next.load())
      if (n->key.load() == key) return n;
    return nullptr;
  }

  // In-transaction: the node for `key` wherever it currently lives.
  [[nodiscard]] Node* find_either(K key) const {
    if (Node* n = find_in(active_.load(), key)) return n;
    Table* old = old_.load();
    if (old != nullptr && !bucket_migrated(old, key))
      return find_in(old, key);
    return nullptr;
  }

  // In-transaction: push a fresh node onto its active chain.
  void insert_active(K key, V value) {
    Node* node = tm::tx_new<Node>();
    node->key.store(key);
    node->value.store(value);
    tm::var<Node*>& bucket = active_.load()->slots[slot_of(
        active_.load(), key)];
    node->next.store(bucket.load());
    bucket.store(node);
    size_.store(size_.load() + 1);
  }

  bool erase_in(Table* t, K key) {
    tm::var<Node*>& bucket = t->slots[slot_of(t, key)];
    Node* prev = nullptr;
    for (Node* n = bucket.load(); n != nullptr; n = n->next.load()) {
      if (n->key.load() == key) {
        Node* next = n->next.load();
        if (prev == nullptr)
          bucket.store(next);
        else
          prev->next.store(next);
        size_.store(size_.load() - 1);
        tm::retire(n);
        return true;
      }
      prev = n;
    }
    return false;
  }

  // In-transaction: drain one old bucket into the active table (no-op when
  // no migration is in flight).  Splicing reuses the nodes; only the chain
  // links move.  Const because reads cooperate too (mutable table vars).
  void migrate_step() const {
    Table* old = old_.load();
    if (old == nullptr) return;
    const std::size_t idx = migrated_.load();
    if (idx >= old->slots.size()) {
      old_.store(nullptr);
      tm::retire(old);
      return;
    }
    Table* active = active_.load();
    Node* n = old->slots[idx].load();
    old->slots[idx].store(nullptr);
    while (n != nullptr) {
      Node* next = n->next.load();
      tm::var<Node*>& dst = active->slots[slot_of(active, n->key.load())];
      n->next.store(dst.load());
      dst.store(n);
      n = next;
    }
    migrated_.store(idx + 1);
  }

  mutable tm::var<Table*> active_;
  mutable tm::var<Table*> old_{nullptr};
  mutable tm::var<std::size_t> migrated_{0};
  tm::var<std::size_t> size_{0};
};

}  // namespace tmcv::tmds
