// Transactional unbounded FIFO queue.
//
// The same linked-queue shape the condition variable uses for its wait set
// (Algorithm 3), generalized to arbitrary payloads, with epoch-reclaimed
// nodes.  Fully composable: enqueue/dequeue flat-nest into ambient
// transactions.
#pragma once

#include <cstddef>

#include "tm/api.h"
#include "tm/epoch.h"
#include "tm/var.h"

namespace tmcv::tmds {

template <typename T>
class TxQueue {
 public:
  TxQueue() = default;

  TxQueue(const TxQueue&) = delete;
  TxQueue& operator=(const TxQueue&) = delete;

  ~TxQueue() {
    Node* node = head_.load_plain();
    while (node != nullptr) {
      Node* next = node->next.load_plain();
      delete node;
      node = next;
    }
  }

  void enqueue(T value) {
    tm::atomically([&] {
      Node* node = tm::tx_new<Node>();
      node->value.store(value);
      node->next.store(nullptr);
      Node* tail = tail_.load();
      if (tail == nullptr) {
        head_.store(node);
        tail_.store(node);
      } else {
        tail->next.store(node);
        tail_.store(node);
      }
      size_.store(size_.load() + 1);
    });
  }

  // Dequeue into `out`; false when empty.
  bool dequeue(T& out) {
    return tm::atomically([&] {
      Node* head = head_.load();
      if (head == nullptr) return false;
      out = head->value.load();
      Node* next = head->next.load();
      head_.store(next);
      if (next == nullptr) tail_.store(nullptr);
      size_.store(size_.load() - 1);
      tm::retire(head);
      return true;
    });
  }

  // Front element without removal; false when empty.
  bool front(T& out) const {
    return tm::atomically([&] {
      Node* head = head_.load();
      if (head == nullptr) return false;
      out = head->value.load();
      return true;
    });
  }

  [[nodiscard]] std::size_t size() const {
    return tm::atomically([&] { return size_.load(); });
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  struct Node {
    tm::var<T> value;
    tm::var<Node*> next{nullptr};
  };

  tm::var<Node*> head_{nullptr};
  tm::var<Node*> tail_{nullptr};
  tm::var<std::size_t> size_{0};
};

}  // namespace tmcv::tmds
