// Transactional counters: plain and striped.
//
// TxCounter is one tm::var cell -- every add is a read-modify-write of the
// same word, so under concurrency the cell is a single hot stripe and the
// abort rate grows with the thread count.  That is sometimes exactly what
// you want (a serializability canary; an exact sequence number), and it is
// the classic STM scaling cliff when you don't.
//
// TxStripedCounter spreads the hot word across kStripes cache-line-spaced
// cells: add() picks the calling thread's home stripe (a thread_local
// token), so disjoint threads update disjoint words and commit without
// conflicting, while value() sums every stripe in ONE transaction and so
// still reads an exact, transactionally consistent total (unlike relaxed
// sharded counters, a striped read here can never observe a torn total --
// the snapshot either validates or the reader re-executes).  The trade:
// value() carries a kStripes-word read set and conflicts with every
// concurrent add, so poll totals sparingly (or from one thread).
//
// Both compose: bump a counter inside any enclosing transaction and the
// increment commits or rolls back with it (exact-stats idiom of
// tmds::TxLruMap, reusable standalone).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "obs/attribution.h"
#include "tm/api.h"
#include "tm/var.h"

namespace tmcv::tmds {

// Single-cell exact counter.
class TxCounter {
 public:
  TxCounter() = default;
  explicit TxCounter(std::int64_t initial) : cell_(initial) {}

  TxCounter(const TxCounter&) = delete;
  TxCounter& operator=(const TxCounter&) = delete;

  void add(std::int64_t delta) {
    tm::atomically([&] {
      TMCV_TXN_SITE("counter.add");
      cell_.store(cell_.load() + delta);
    });
  }

  void increment() { add(1); }
  void decrement() { add(-1); }

  [[nodiscard]] std::int64_t value() const {
    return tm::atomically([&] { return cell_.load(); });
  }

 private:
  tm::var<std::int64_t> cell_{0};
};

// Striped exact counter.  kStripes is a power of two; each stripe is a
// cache-line-aligned tm::var so false sharing never re-couples what the
// striping decoupled.
template <std::size_t kStripes = 16>
class TxStripedCounter {
  static_assert(kStripes > 0 && (kStripes & (kStripes - 1)) == 0,
                "stripe count must be a power of two");

 public:
  TxStripedCounter() = default;

  TxStripedCounter(const TxStripedCounter&) = delete;
  TxStripedCounter& operator=(const TxStripedCounter&) = delete;

  void add(std::int64_t delta) {
    tm::var<std::int64_t>& stripe = stripes_[home_stripe()].value;
    tm::atomically([&] {
      TMCV_TXN_SITE("counter.striped_add");
      stripe.store(stripe.load() + delta);
    });
  }

  void increment() { add(1); }
  void decrement() { add(-1); }

  // Exact, transactionally consistent total (one transaction over every
  // stripe; conflicts with concurrent adds -- poll sparingly).
  [[nodiscard]] std::int64_t value() const {
    return tm::atomically([&] {
      TMCV_TXN_SITE("counter.striped_read");
      std::int64_t total = 0;
      for (std::size_t i = 0; i < kStripes; ++i)
        total += stripes_[i].value.load();
      return total;
    });
  }

  [[nodiscard]] static constexpr std::size_t stripe_count() noexcept {
    return kStripes;
  }

 private:
  struct alignas(64) Stripe {
    tm::var<std::int64_t> value{0};
  };

  // Thread-home stripe: a process-wide ticket hashed into the stripe space,
  // taken once per thread.  Threads that outnumber stripes share politely.
  [[nodiscard]] static std::size_t home_stripe() noexcept {
    static std::atomic<std::size_t> tickets{0};
    thread_local const std::size_t home =
        (tickets.fetch_add(1, std::memory_order_relaxed) *
         0x9e3779b97f4a7c15ull) &
        (kStripes - 1);
    return home;
  }

  Stripe stripes_[kStripes];
};

}  // namespace tmcv::tmds
