// Transactional binary search tree: the cheap contrast point to the
// skiplist.
//
// An internal (values in every node), deliberately UNBALANCED BST offering
// the same ordered-map interface as TxSkipList.  No rotations means the
// write set of an insert/erase is tiny (one or two pointer stores), but the
// read path is at the mercy of the key distribution: random keys give
// O(log n), monotone keys degrade to a linked list -- which is exactly the
// point.  The skiplist-vs-BST sweep in bench/micro_tmds and the vacation
// benchmark make the permissiveness/overhead trade-off measurable instead
// of argued (read-set size drives validation cost on the orec backends;
// NOrec revalidates by value, so deep read paths cost it only on commit
// traffic).
//
// Erase uses the textbook internal scheme: a node with two children swaps
// payload with its in-order successor (leftmost node of the right subtree)
// and unlinks the successor, so structural surgery is always on a node with
// at most one child.  Keys must therefore be MUTABLE here, unlike the
// skiplist's immutable keys -- both key and value live in tm::var cells.
#pragma once

#include <cstddef>

#include "obs/attribution.h"
#include "tm/api.h"
#include "tm/epoch.h"
#include "tm/var.h"

namespace tmcv::tmds {

template <typename K, typename V>
class TxBst {
 public:
  TxBst() = default;

  TxBst(const TxBst&) = delete;
  TxBst& operator=(const TxBst&) = delete;

  ~TxBst() { delete_subtree(root_.load_plain()); }

  // Lookup; false if absent.
  bool get(K key, V& out) const {
    return tm::atomically([&] {
      TMCV_TXN_SITE("bst.get");
      Node* n = find(key);
      if (n == nullptr) return false;
      out = n->value.load();
      return true;
    });
  }

  [[nodiscard]] bool contains(K key) const {
    V ignored;
    return get(key, ignored);
  }

  // Insert or overwrite; true when the key was newly inserted.
  bool insert(K key, V value) {
    return tm::atomically([&] {
      TMCV_TXN_SITE("bst.insert");
      tm::var<Node*>* link = &root_;
      for (Node* n = link->load(); n != nullptr; n = link->load()) {
        const K k = n->key.load();
        if (key == k) {
          n->value.store(value);
          return false;
        }
        link = key < k ? &n->left : &n->right;
      }
      Node* fresh = tm::tx_new<Node>();
      fresh->key.store(key);
      fresh->value.store(value);
      link->store(fresh);
      size_.store(size_.load() + 1);
      return true;
    });
  }

  bool put(K key, V value) { return insert(key, value); }

  // Remove; false if absent.
  bool erase(K key) {
    return tm::atomically([&] {
      TMCV_TXN_SITE("bst.erase");
      tm::var<Node*>* link = &root_;
      Node* n = link->load();
      while (n != nullptr) {
        const K k = n->key.load();
        if (key == k) break;
        link = key < k ? &n->left : &n->right;
        n = link->load();
      }
      if (n == nullptr) return false;
      if (n->left.load() != nullptr && n->right.load() != nullptr) {
        // Two children: pull up the in-order successor's payload, then
        // unlink the successor (which has no left child by construction).
        tm::var<Node*>* slink = &n->right;
        Node* s = slink->load();
        while (s->left.load() != nullptr) {
          slink = &s->left;
          s = slink->load();
        }
        n->key.store(s->key.load());
        n->value.store(s->value.load());
        link = slink;
        n = s;
      }
      Node* child = n->left.load() != nullptr ? n->left.load()
                                              : n->right.load();
      link->store(child);
      size_.store(size_.load() - 1);
      tm::retire(n);
      return true;
    });
  }

  // Smallest key >= `key`; false when no such key exists.
  bool lower_bound(K key, K& out_key, V& out_value) const {
    return tm::atomically([&] {
      TMCV_TXN_SITE("bst.lower_bound");
      Node* best = nullptr;
      for (Node* n = root_.load(); n != nullptr;) {
        const K k = n->key.load();
        if (k < key) {
          n = n->right.load();
        } else {
          best = n;  // candidate; a smaller qualifying key may sit left
          if (k == key) break;
          n = n->left.load();
        }
      }
      if (best == nullptr) return false;
      out_key = best->key.load();
      out_value = best->value.load();
      return true;
    });
  }

  // Visit every (key, value) with lo <= key < hi in ascending order, as one
  // transaction (consistent snapshot).  `fn(K, V)` returning false stops
  // early.  Returns the number of pairs visited.
  template <typename Fn>
  std::size_t range(K lo, K hi, Fn&& fn) const {
    return tm::atomically([&] {
      TMCV_TXN_SITE("bst.range");
      std::size_t visited = 0;
      visit_range(root_.load(), lo, hi, visited, fn);
      return visited;
    });
  }

  [[nodiscard]] std::size_t size() const {
    return tm::atomically([&] { return size_.load(); });
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  struct Node {
    tm::var<K> key;
    tm::var<V> value;
    tm::var<Node*> left{nullptr};
    tm::var<Node*> right{nullptr};
  };

  [[nodiscard]] Node* find(K key) const {
    for (Node* n = root_.load(); n != nullptr;) {
      const K k = n->key.load();
      if (key == k) return n;
      n = key < k ? n->left.load() : n->right.load();
    }
    return nullptr;
  }

  // In-order walk pruned to [lo, hi); returns false once fn stops the scan.
  template <typename Fn>
  bool visit_range(Node* n, K lo, K hi, std::size_t& visited, Fn& fn) const {
    if (n == nullptr) return true;
    const K k = n->key.load();
    if (lo < k && !visit_range(n->left.load(), lo, hi, visited, fn))
      return false;
    if (lo <= k && k < hi) {
      ++visited;
      if (!fn(k, n->value.load())) return false;
    }
    if (k < hi) return visit_range(n->right.load(), lo, hi, visited, fn);
    return true;
  }

  static void delete_subtree(Node* n) {
    if (n == nullptr) return;
    delete_subtree(n->left.load_plain());
    delete_subtree(n->right.load_plain());
    delete n;
  }

  mutable tm::var<Node*> root_{nullptr};
  tm::var<std::size_t> size_{0};
};

}  // namespace tmcv::tmds
