#include "core/c_api.h"

#include <errno.h>

#include <chrono>
#include <new>

#include "core/condvar.h"
#include "sync/spin.h"
#include "sync/sync_context.h"
#include "sync/wait_morph.h"
#include "tm/algs/adaptive.h"
#include "tm/api.h"

struct tmcv_cond {
  tmcv::CondVar cv;
};

namespace {

// Adapter: present a pthread_mutex_t as a Lockable for LockSync.
struct PthreadMutexRef {
  pthread_mutex_t* m;
  void lock() { pthread_mutex_lock(m); }
  void unlock() { pthread_mutex_unlock(m); }
};

}  // namespace

extern "C" {

tmcv_cond_t* tmcv_cond_create(void) {
  return new (std::nothrow) tmcv_cond;
}

void tmcv_cond_destroy(tmcv_cond_t* cond) { delete cond; }

int tmcv_cond_wait(tmcv_cond_t* cond, pthread_mutex_t* mutex) {
  if (cond == nullptr || mutex == nullptr) return EINVAL;
  PthreadMutexRef ref{mutex};
  tmcv::LockSync sync(ref);
  cond->cv.wait(sync);  // traditional style: returns with the mutex held
  return 0;
}

int tmcv_cond_timedwait_ms(tmcv_cond_t* cond, pthread_mutex_t* mutex,
                           unsigned timeout_ms) {
  if (cond == nullptr || mutex == nullptr) return EINVAL;
  PthreadMutexRef ref{mutex};
  tmcv::LockSync sync(ref);
  const bool notified =
      cond->cv.wait_for(sync, std::chrono::milliseconds(timeout_ms));
  return notified ? 0 : ETIMEDOUT;
}

int tmcv_cond_signal(tmcv_cond_t* cond) {
  if (cond == nullptr) return EINVAL;
  cond->cv.notify_one();
  return 0;
}

int tmcv_cond_broadcast(tmcv_cond_t* cond) {
  if (cond == nullptr) return EINVAL;
  cond->cv.notify_all();
  return 0;
}

int tmcv_cond_broadcast_locked(tmcv_cond_t* cond, pthread_mutex_t* mutex) {
  if (cond == nullptr || mutex == nullptr) return EINVAL;
  tmcv::WakeHandoffScope scope(static_cast<const void*>(mutex));
  cond->cv.notify_all();
  return 0;
}

void tmcv_set_spin_budget(unsigned rounds) { tmcv::set_spin_budget(rounds); }

unsigned tmcv_get_spin_budget(void) { return tmcv::spin_budget(); }

void tmcv_set_wait_morphing(int enabled) {
  tmcv::set_wait_morphing(enabled != 0);
}

int tmcv_get_wait_morphing(void) { return tmcv::wait_morphing() ? 1 : 0; }

int tmcv_tm_set_backend(const char* name) {
  if (name == nullptr) return -1;
  tmcv::tm::Backend b{};
  if (!tmcv::tm::backend_from_label(name, b)) return -1;
  tmcv::tm::set_backend_auto(false);  // manual pin overrides the controller
  tmcv::tm::set_backend(b);
  return 0;
}

void tmcv_tm_set_backend_auto(int enabled) {
  tmcv::tm::set_backend_auto(enabled != 0);
}

const char* tmcv_tm_get_backend(void) {
  return tmcv::tm::backend_label(tmcv::tm::default_backend());
}

}  // extern "C"
