// Transaction-friendly condition variables (the paper's contribution).
//
// Each condition variable is a queue, in user space, of per-thread binary
// semaphores (Algorithm 3).  The queue is protected by transactions, so WAIT
// and NOTIFY may be called from any mix of lock-based critical sections,
// transactions, and unsynchronized code without racing (§3.2).  Semaphore
// operations never execute inside an active transaction: WAIT ends the
// caller's synchronization block before sleeping, and NOTIFY defers its
// posts to on-commit handlers.
//
// Guarantees (§3.4):
//   * No spurious wake-ups: a WAIT returns only after a matching NOTIFY
//     dequeued this thread's node and posted its semaphore.
//   * Mesa-style deterministic wake-ups with pluggable selection: FIFO
//     (default), LIFO, or predicate-driven notify_best.
//   * Immune to lost wake-ups: enqueue and block are not atomic, but the
//     semaphore's token makes a post that lands between them stick.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <utility>

#include "obs/hooks.h"
#include "sync/semaphore.h"
#include "sync/sync_context.h"
#include "sync/wait_morph.h"
#include "sync/waitpoint.h"
#include "tm/api.h"
#include "tm/txn_sync.h"
#include "tm/var.h"
#include "util/assert.h"

namespace tmcv {

// Which waiting thread a notify_one selects (§3.4: the user-space set admits
// arbitrary policies; FIFO matches Hoare's queue, LIFO favours cache warmth
// per Scherer & Scott).
enum class WakePolicy : std::uint8_t { FIFO, LIFO };

// Per-condvar observability counters.  Maintained with relaxed atomics
// *outside* the queue transactions (a counter inside the transaction would
// manufacture conflicts between otherwise-disjoint operations).
//
// Consistency model: CondVar::stats() reads each counter with its own
// relaxed load -- a field-by-field copy, never a struct assignment over the
// atomics.  Every individual field is therefore an exact monotonic count at
// some moment during the call, but the fields are not sampled at a single
// instant: a snapshot taken while threads are active may, e.g., show a
// notify whose matching wait has not incremented yet.  Cross-field
// invariants (waits <= threads_woken + timeouts in flight) only hold at
// quiescence.  This is the standard contract for hot-path metrics; callers
// needing an exact aggregate must quiesce first.
struct CondVarStats {
  std::uint64_t waits = 0;          // completed waits (all flavours)
  std::uint64_t timed_waits = 0;    // wait_for calls
  std::uint64_t timeouts = 0;       // wait_for calls that timed out
  std::uint64_t notify_one_calls = 0;
  std::uint64_t notify_all_calls = 0;
  std::uint64_t notify_best_calls = 0;
  std::uint64_t threads_woken = 0;  // waiters selected across all notifies
  std::uint64_t lost_notifies = 0;  // notifies that found an empty queue

  // Visit every counter as (name, member pointer): single source of truth
  // for the arithmetic below and the metrics exporters.
  template <typename Fn>
  static constexpr void for_each_field(Fn&& fn) {
    fn("waits", &CondVarStats::waits);
    fn("timed_waits", &CondVarStats::timed_waits);
    fn("timeouts", &CondVarStats::timeouts);
    fn("notify_one_calls", &CondVarStats::notify_one_calls);
    fn("notify_all_calls", &CondVarStats::notify_all_calls);
    fn("notify_best_calls", &CondVarStats::notify_best_calls);
    fn("threads_woken", &CondVarStats::threads_woken);
    fn("lost_notifies", &CondVarStats::lost_notifies);
  }

  CondVarStats& operator+=(const CondVarStats& o) noexcept {
    for_each_field([&](const char*, std::uint64_t CondVarStats::*f) {
      this->*f += o.*f;
    });
    return *this;
  }

  // Delta against an earlier snapshot of the same counters.
  CondVarStats& operator-=(const CondVarStats& o) noexcept {
    for_each_field([&](const char*, std::uint64_t CondVarStats::*f) {
      this->*f -= o.*f;
    });
    return *this;
  }
};

// Fold the counters of every live condition variable plus every destroyed
// one (folded at destruction under the same mutex, so nothing is counted
// twice or lost).  Per-field consistency model as documented above.
[[nodiscard]] CondVarStats condvar_stats_aggregate();

// Safe by-address probe for the wait-for graph: if `cv` is a LIVE CondVar
// (checked against the registry under its mutex -- never dereferenced
// otherwise), copy its counters and the site label of its most recent
// notify into the out-params and return true.  A parked waiter keeps its
// condvar alive (destruction with waiters queued is an assertion failure),
// so a pointer read from an active wait slot always resolves.
[[nodiscard]] bool condvar_probe(const void* cv, CondVarStats& stats,
                                 std::uint16_t& last_notify_site);

namespace detail {

// One queue node per thread (Algorithm 3).  A thread waits on at most one
// condition variable at a time (it is blocked while queued), so a single
// thread_local node suffices -- this is the insight the paper credits to
// language-level thread locals versus Birrell's per-condvar semaphores.
struct WaitNode {
  BinarySemaphore sem;
  tm::var<WaitNode*> next{nullptr};
  tm::var<std::uint64_t> tag{0};  // notify_best discriminator
  bool enqueued = false;          // owner-only sanity flag
  // Notify->wake latency stamp: written by the notifier when it selects
  // this node, consumed by the owner after the semaphore wait.  A stamp
  // from an aborted selection is overwritten or cleared at the next wait.
  std::atomic<std::uint64_t> notify_ticks{0};
  // Wait-morphing membership (see sync/wait_morph.h): a notifier running
  // under a lock scope defers this waiter onto the lock's relay chain via
  // this node instead of posting sem directly.  morph.sem always points at
  // `sem` above (set in prepare_node).
  MorphWaiter morph;
};

WaitNode& my_wait_node() noexcept;

}  // namespace detail

class CondVar {
 public:
  explicit CondVar(WakePolicy policy = WakePolicy::FIFO) : policy_(policy) {
    register_self();
  }

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  ~CondVar() {
    TMCV_ASSERT_MSG(head_.load_plain() == nullptr,
                    "condition variable destroyed with waiting threads");
    unregister_self();  // folds this object's counters into the aggregate
  }

  // ---- WAIT, continuation-passing style (Algorithm 4) ----
  //
  // Must be the last shared-state action of the enclosing synchronized
  // block.  `sync` describes the caller's context; `cont` runs afterwards
  // under an equivalent context (a fresh transaction with its own retry
  // loop, or the re-acquired locks).  `tag` is visible to notify_best.
  template <typename Cont>
  void wait(SyncContext& sync, Cont&& cont, std::uint64_t tag = 0) {
    detail::WaitNode& node = prepare_node(tag);
    const std::uint64_t t0 = wait_begin_ticks();
    enqueue_self(node);
    sync.end_block();            // line 9: break atomicity
    tm::syscall_fence();         // sleeping would abort a hardware txn
    {
      // Publish "parked on this condvar" (with the wait's txn-site label)
      // into the wait-point registry for the duration of the sleep.
      WaitScope wp(WaitReason::kCondVar, this, wait_site());
      node.sem.wait();           // line 10: block until notified
    }
    finish_wait(node, t0);
    run_continuation(sync, node, std::forward<Cont>(cont));
  }

  // ---- WAIT, traditional style (§4.1, §4.3) ----
  //
  // Returns with an equivalent synchronization block re-established; the
  // caller's own code after the call is the continuation.  Under a
  // transactional context the continuation runs irrevocably (§4.3), since a
  // conflict-abort after WAIT must not re-run the first half.
  void wait(SyncContext& sync, std::uint64_t tag = 0) {
    detail::WaitNode& node = prepare_node(tag);
    const std::uint64_t t0 = wait_begin_ticks();
    enqueue_self(node);
    sync.end_block();
    tm::syscall_fence();
    {
      WaitScope wp(WaitReason::kCondVar, this, wait_site());
      node.sem.wait();
    }
    finish_wait(node, t0);
    reacquire_and_relay(sync, node);  // line 11: re-lock / begin cont. txn
  }

  // ---- Timed WAIT (extension; traditional style) ----
  //
  // Returns true if notified, false on timeout.  Not in the paper: POSIX
  // compatibility requires pthread_cond_timedwait, and the user-space queue
  // makes it clean to add.  The timeout/notify race is resolved against the
  // queue: on timeout the thread transactionally removes its own node; if
  // the node is already gone, a notifier selected us and its post is in
  // flight (possibly deferred to that notifier's commit), so we consume it
  // and report "notified".  Exactly one of {timeout-removal, notify-
  // dequeue} can win, so no token is ever leaked or duplicated.
  template <typename Rep, typename Period>
  bool wait_for(SyncContext& sync,
                std::chrono::duration<Rep, Period> timeout,
                std::uint64_t tag = 0) {
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(timeout)
            .count());
    detail::WaitNode& node = prepare_node(tag);
    const std::uint64_t t0 = wait_begin_ticks();
    enqueue_self(node);
    sync.end_block();
    tm::syscall_fence();
    timed_waits_.fetch_add(1, std::memory_order_relaxed);
    bool notified;
    {
      // Scoped tightly around the sleep so the try_remove_self transaction
      // below is never misreported as "parked" in the wait-point registry.
      WaitScope wp(WaitReason::kCondVar, this, wait_site());
      notified = node.sem.wait_for(ns);
    }
    if (!notified && !try_remove_self(node)) {
      // A notifier dequeued us concurrently with the timeout: the post is
      // committed or imminent; absorb it so the semaphore stays balanced.
      WaitScope wp(WaitReason::kCondVar, this, wait_site());
      node.sem.wait();
      notified = true;
    }
    if (notified) {
      finish_wait(node, t0);
    } else {
      node.enqueued = false;
      timeouts_.fetch_add(1, std::memory_order_relaxed);
    }
    // On the timeout path the morph key is never set, so the relay in here
    // is a single relaxed exchange.
    reacquire_and_relay(sync, node);
    return notified;
  }

  // ---- WAIT as the final action of a critical section (§4.1) ----
  //
  // Elides the continuation entirely: no re-acquire, no second transaction.
  // The caller must not touch shared state after the call.
  void wait_final(SyncContext& sync, std::uint64_t tag = 0) {
    detail::WaitNode& node = prepare_node(tag);
    const std::uint64_t t0 = wait_begin_ticks();
    enqueue_self(node);
    sync.end_block();
    tm::syscall_fence();
    {
      WaitScope wp(WaitReason::kCondVar, this, wait_site());
      node.sem.wait();
    }
    finish_wait(node, t0);
    // No re-acquire by contract, so nothing to pace against: relay at once.
    morph_consume(node.morph);
    if (sync.is_transactional()) tm::descriptor().mark_split_done();
  }

  // ---- WAIT scheduled at commit (§4.3, second empty-continuation form) ----
  //
  // For transactional callers only: enqueues now and registers the sleep as
  // an on-commit handler, so control returns to the enclosing
  // ENDTRANSACTION, which commits and then blocks.  The enclosing
  // transaction must end immediately after this call.
  void wait_at_commit(std::uint64_t tag = 0) {
    TMCV_ASSERT_MSG(tm::in_txn(),
                    "wait_at_commit requires a transactional context");
    detail::WaitNode& node = prepare_node(tag);
    const std::uint64_t t0 = wait_begin_ticks();
    enqueue_self(node);
    // The sleep is parked in a thread_local stash and registered through
    // the inline-slot handler path: no std::function, no allocation.  One
    // stash suffices because a second wait_at_commit in the same
    // transaction would trip prepare_node's already-waiting assertion
    // before it could overwrite this one.
    CommitSleep& cs = commit_sleep_stash();
    cs = CommitSleep{this, &node, t0};
    tm::on_commit_fn(&CondVar::commit_sleep_thunk, &cs);
    // If the transaction aborts, the enqueue rolls back and a stale node
    // must not linger flagged.
    tm::on_abort_fn(&CondVar::clear_enqueued_thunk, &node);
  }

  // ---- NOTIFYONE (Algorithm 5) ----
  //
  // Dequeues one waiter (per the wake policy) and schedules its semaphore
  // post for when the outermost enclosing transaction commits; immediate
  // when called from lock-based or unsynchronized code.  Returns whether a
  // waiter was selected (callable from any context; "naked notify" is safe).
  bool notify_one();

  // ---- NOTIFYALL (Algorithm 6) ----
  //
  // Dequeues every waiter and schedules all their posts.  Returns the
  // number of threads notified.
  std::size_t notify_all();

  // ---- NOTIFY-N (generalization) ----
  //
  // Dequeues up to `n` waiters (per the wake policy) and schedules their
  // posts; returns how many were selected.  Generalizes Birrell's
  // "NOTIFY could accidentally wake more than one thread" into a
  // deliberate batched wake (useful when k units of work arrive at once
  // and waking the whole herd would be oblivious).
  std::size_t notify_n(std::size_t n);

  // ---- NOTIFYBEST (§3.4) ----
  //
  // Walks the wait set and wakes the waiter whose tag maximizes `score`
  // (ties: the earliest waiter).  Only possible because the set lives in
  // user space.  Returns whether a waiter was selected.
  template <typename Score>
  bool notify_best(Score&& score) {
    const std::uint64_t notify_t0 = notify_begin_ticks();
    bool notified = false;
    tm::atomically([&] {
      notified = false;  // the closure may re-execute
      detail::WaitNode* best = nullptr;
      detail::WaitNode* best_prev = nullptr;
      auto best_score = decltype(score(std::uint64_t{})){};
      detail::WaitNode* prev = nullptr;
      for (detail::WaitNode* cur = head_.load(); cur != nullptr;
           cur = cur->next.load()) {
        const auto s = score(cur->tag.load());
        if (best == nullptr || s > best_score) {
          best = cur;
          best_prev = prev;
          best_score = s;
        }
        prev = cur;
      }
      if (best == nullptr) return;
      unlink(best_prev, best);
#if TMCV_TRACE
      obs::stamp_notify(best->notify_ticks);
#endif
      tm::defer_wake(&best->sem);
      notified = true;
    });
    count_notify(notify_best_calls_, notified ? 1 : 0, notify_t0);
    return notified;
  }

  // Number of threads currently queued (transactional snapshot; advisory).
  [[nodiscard]] std::size_t waiter_count() const;

  [[nodiscard]] WakePolicy policy() const noexcept { return policy_; }

  // Snapshot of the observability counters.  Deliberately a field-by-field
  // copy (one relaxed load per counter), never a struct assignment over the
  // atomics: each field is individually exact, the set of fields is not
  // sampled atomically.  See the CondVarStats comment for the full
  // consistency model.
  [[nodiscard]] CondVarStats stats() const noexcept {
    CondVarStats s;
    s.waits = waits_.load(std::memory_order_relaxed);
    s.timed_waits = timed_waits_.load(std::memory_order_relaxed);
    s.timeouts = timeouts_.load(std::memory_order_relaxed);
    s.notify_one_calls = notify_one_calls_.load(std::memory_order_relaxed);
    s.notify_all_calls = notify_all_calls_.load(std::memory_order_relaxed);
    s.notify_best_calls =
        notify_best_calls_.load(std::memory_order_relaxed);
    s.threads_woken = threads_woken_.load(std::memory_order_relaxed);
    s.lost_notifies = lost_notifies_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  // Aggregate-registry membership (condvar.cpp): the ctor registers, the
  // dtor folds this object's counters into the retired accumulator.
  void register_self();
  void unregister_self() noexcept;

  // Timestamp for the enqueue->wake latency region; 0 when observability is
  // compiled out or disabled at runtime.
  [[nodiscard]] static std::uint64_t wait_begin_ticks() noexcept {
#if TMCV_TRACE
    return obs::region_begin();
#else
    return 0;
#endif
  }

  // Grant instant of a notify, captured before its queue transaction (see
  // count_notify for why the ordering matters).
  [[nodiscard]] static std::uint64_t notify_begin_ticks() noexcept {
    return wait_begin_ticks();
  }

  // Post-wake bookkeeping shared by every wait flavour.
  void finish_wait(detail::WaitNode& node, std::uint64_t t0) noexcept {
    node.enqueued = false;
    waits_.fetch_add(1, std::memory_order_relaxed);
#if TMCV_TRACE
    obs::region_end(obs::Event::kCvWait, t0, &obs::hist_cv_wait());
    obs::consume_notify_stamp(node.notify_ticks);
#else
    (void)t0;
#endif
  }

  detail::WaitNode& prepare_node(std::uint64_t tag) {
    detail::WaitNode& node = detail::my_wait_node();
    TMCV_ASSERT_MSG(!node.enqueued, "thread is already waiting on a condvar");
    node.enqueued = true;
#if TMCV_TRACE
    node.notify_ticks.store(0, std::memory_order_relaxed);
#endif
    // Inside an ambient transaction, the enqueue (or the early commit that
    // follows it) can abort and re-run the whole closure including this
    // call; the rollback must clear the owner flag along with the queue
    // state.  Registered through the inline-slot path: the node pointer is
    // the whole context, so no allocation.
    if (tm::in_txn())
      tm::on_abort_fn(&CondVar::clear_enqueued_thunk, &node);
    // Line 1 of WAIT: unsynchronized by design -- the node is privatized
    // (unreachable from any queue) until the enqueue transaction commits.
    node.next.store_plain(nullptr);
    node.tag.store_plain(tag);
    node.morph.sem = &node.sem;
    // Let morph_requeue mirror relay-chain membership into this thread's
    // wait slot (cleared by the WaitScope around the park on wake).
    node.morph.wslot = my_wait_slot();
    return node;
  }

  // Site label for the wait's registry publish: whatever transaction label
  // was in flight when the caller blocked (the enqueue hint, or the user's
  // own TMCV_TXN_SITE on an ambient transaction).  0 with TMCV_TRACE=OFF.
  [[nodiscard]] static std::uint16_t wait_site() noexcept {
    return tm::descriptor().txn_site();
  }

  // Lines 2-8 of WAIT: insert into the queue under a transaction.  Flat
  // nesting merges this with an ambient transaction; from lock-based or
  // unsynchronized contexts it is its own small transaction.
  void enqueue_self(detail::WaitNode& node);

  // The wait_at_commit sleep, parked for the inline-slot handler path.  The
  // stash is thread_local (one per would-be sleeper) and must stay valid
  // until the outermost commit runs the handler -- guaranteed because the
  // registering thread is the one that commits.
  struct CommitSleep {
    CondVar* cv;
    detail::WaitNode* node;
    std::uint64_t t0;
  };
  [[nodiscard]] static CommitSleep& commit_sleep_stash() noexcept;
  static void commit_sleep_thunk(void* ctx) noexcept;
  // on_abort context is just the node: clear its owner flag.
  static void clear_enqueued_thunk(void* ctx) noexcept;

  // Remove `node` given its predecessor (transactional context required).
  void unlink(detail::WaitNode* prev, detail::WaitNode* node);

  // Transactionally search for `node` and remove it; false if a notifier
  // already dequeued it (timed-wait race resolution).
  bool try_remove_self(detail::WaitNode& node);

  // Re-establish the caller's synchronization block and relay any pending
  // wait-morph chain.  Lock-based contexts relay AFTER re-acquiring -- the
  // pacing that turns a notify_all herd into a lock-speed relay (at most
  // one notified waiter is runnable per unlock).  Transactional contexts
  // have no lock to contend, and a semaphore post is a syscall that must
  // not run inside an optimistic transaction, so they relay first.
  static void reacquire_and_relay(SyncContext& sync,
                                  detail::WaitNode& node) {
    if (sync.is_transactional()) {
      morph_consume(node.morph);
      sync.begin_block();
    } else {
      sync.begin_block();
      morph_consume(node.morph);
    }
  }

  template <typename Cont>
  void run_continuation(SyncContext& sync, detail::WaitNode& node,
                        Cont&& cont) {
    if (sync.is_transactional()) {
      // Lines 11-13 under TM: a fresh transaction with its own retry loop,
      // so an abort re-runs only the continuation (never the first half).
      // Relay first: see reacquire_and_relay for why.
      morph_consume(node.morph);
      auto& d = tm::descriptor();
      tm::atomically(d.backend(), [&] { cont(); });
      d.mark_split_done();
    } else {
      sync.begin_block();
      morph_consume(node.morph);
      cont();
      sync.end_block();
    }
  }

  // `t0` is the notify's grant instant, captured BEFORE the queue
  // transaction (notify_begin_ticks): the trace record must precede every
  // wake it causes, or the offline causal check (tools/trace_report.py
  // --causal) would see wakes without tokens whenever a victim stamps its
  // wait-end before the notifier regains the CPU.
  void count_notify(std::atomic<std::uint64_t>& calls, std::size_t woken,
                    std::uint64_t t0) noexcept {
    calls.fetch_add(1, std::memory_order_relaxed);
    // Remember who notifies this condvar (by txn-site label) so the
    // wait-for graph can point a parked waiter at its expected notifier.
    last_notify_site_.store(tm::descriptor().txn_site(),
                            std::memory_order_relaxed);
    if (woken == 0)
      lost_notifies_.fetch_add(1, std::memory_order_relaxed);
    else
      threads_woken_.fetch_add(woken, std::memory_order_relaxed);
#if TMCV_TRACE
    obs::emit_instant_at(obs::Event::kCvNotify, t0,
                         static_cast<std::uint16_t>(
                             woken > 0xffff ? 0xffff : woken));
#else
    (void)t0;
#endif
  }

  tm::var<detail::WaitNode*> head_{nullptr};
  tm::var<detail::WaitNode*> tail_{nullptr};
  // Queue length, maintained transactionally by enqueue/unlink/drain so
  // waiter_count() is an O(1) read instead of an O(n) walk.
  tm::var<std::size_t> size_{0};
  WakePolicy policy_;

  friend bool condvar_probe(const void*, CondVarStats&, std::uint16_t&);

  // Metrics (relaxed; see CondVarStats).
  std::atomic<std::uint16_t> last_notify_site_{0};
  std::atomic<std::uint64_t> waits_{0};
  std::atomic<std::uint64_t> timed_waits_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> notify_one_calls_{0};
  std::atomic<std::uint64_t> notify_all_calls_{0};
  std::atomic<std::uint64_t> notify_best_calls_{0};
  std::atomic<std::uint64_t> threads_woken_{0};
  std::atomic<std::uint64_t> lost_notifies_{0};
};

}  // namespace tmcv
