// Drop-in replacements for the legacy C++/pthread condition-variable
// interfaces, built on the transaction-friendly CondVar.
//
//   tmcv::condition_variable  -- mirrors std::condition_variable usage with
//                                std::unique_lock (any Lockable), §4.1's
//                                "indistinguishable from pthread" mode.
//                                Bonus over the standard: no spurious
//                                wake-ups (§3.4), though wait(lock, pred)
//                                retains the guard loop for oblivious
//                                wake-ups under notify_all.
//
//   tmcv::tx_condition_variable -- the same interface for transactional
//                                critical sections: wait_tx() splits the
//                                enclosing transaction and resumes the
//                                caller irrevocably (§4.3); wait_cps() runs
//                                an explicit continuation.
//
// Both are thin adapters: either may be notified from locks, transactions,
// or naked contexts, because the underlying queue is transactional.
#pragma once

#include <chrono>
#include <mutex>

#include "core/condvar.h"
#include "sync/sync_context.h"
#include "tm/txn_sync.h"

namespace tmcv {

class condition_variable {
 public:
  condition_variable() noexcept = default;

  // WAIT with the lock held; returns with the lock re-acquired.
  template <typename Mutex>
  void wait(std::unique_lock<Mutex>& lock) {
    TMCV_ASSERT_MSG(lock.owns_lock(), "wait requires a held lock");
    LockSync sync(*lock.mutex());
    cv_.wait(sync);
  }

  template <typename Mutex, typename Predicate>
  void wait(std::unique_lock<Mutex>& lock, Predicate pred) {
    // The loop guards against *oblivious* wake-ups (another thread's
    // notify_all satisfying a different predicate), not spurious ones.
    while (!pred()) wait(lock);
  }

  // Timed WAIT: true if notified, false on timeout (extension; see
  // CondVar::wait_for).  Unlike std::condition_variable::wait_for there is
  // no spurious-wakeup case: false means the full duration elapsed.
  template <typename Mutex, typename Rep, typename Period>
  bool wait_for(std::unique_lock<Mutex>& lock,
                std::chrono::duration<Rep, Period> timeout) {
    TMCV_ASSERT_MSG(lock.owns_lock(), "wait_for requires a held lock");
    LockSync sync(*lock.mutex());
    return cv_.wait_for(sync, timeout);
  }

  // Timed predicate WAIT: returns pred() on exit, like the std:: interface.
  template <typename Mutex, typename Rep, typename Period,
            typename Predicate>
  bool wait_for(std::unique_lock<Mutex>& lock,
                std::chrono::duration<Rep, Period> timeout, Predicate pred) {
    // Budget the deadline across re-waits (oblivious wake-ups may deliver
    // the notify to a different predicate's thread).
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!pred()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return pred();
      if (!wait_for(lock, deadline - now)) return pred();
    }
    return true;
  }

  // WAIT as the final action: releases the lock and does NOT re-acquire it
  // (§4.1's optimization).  The caller must not touch shared state after.
  template <typename Mutex>
  void wait_final(std::unique_lock<Mutex>& lock) {
    TMCV_ASSERT_MSG(lock.owns_lock(), "wait_final requires a held lock");
    LockSync sync(*lock.mutex());
    cv_.wait_final(sync);
    lock.release();  // ownership already surrendered inside wait_final
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  // Scoped notifies: declare that the notify happens under `lock` so a
  // multi-waiter wake can morph onto that lock's relay chain (one waiter
  // made runnable per unlock) instead of waking the whole herd into a
  // mutex convoy.  Semantically identical to the unscoped forms -- use
  // them whenever the lock is held, which std::condition_variable usage
  // usually guarantees anyway.
  template <typename Mutex>
  void notify_one(std::unique_lock<Mutex>& lock) {
    TMCV_ASSERT_MSG(lock.owns_lock(), "scoped notify requires a held lock");
    WakeHandoffScope scope(*lock.mutex());
    cv_.notify_one();
  }

  template <typename Mutex>
  void notify_all(std::unique_lock<Mutex>& lock) {
    TMCV_ASSERT_MSG(lock.owns_lock(), "scoped notify requires a held lock");
    WakeHandoffScope scope(*lock.mutex());
    cv_.notify_all();
  }

  [[nodiscard]] CondVar& raw() noexcept { return cv_; }

 private:
  CondVar cv_;
};

class tx_condition_variable {
 public:
  tx_condition_variable() noexcept = default;

  // Traditional-style WAIT inside tm::atomically: commits the enclosing
  // transaction, sleeps, and resumes the caller irrevocably.  Code after
  // this call runs as the continuation and must not self-abort.
  void wait_tx(std::uint64_t tag = 0) {
    TMCV_ASSERT_MSG(tm::in_txn(), "wait_tx requires a transactional context");
    tm::TxnSync sync;
    cv_.wait(sync, tag);
  }

  // CPS WAIT inside tm::atomically: must be the last action of the
  // enclosing closure; `cont` runs as an independent transaction.
  template <typename Cont>
  void wait_cps(Cont&& cont, std::uint64_t tag = 0) {
    TMCV_ASSERT_MSG(tm::in_txn(), "wait_cps requires a transactional context");
    tm::TxnSync sync;
    cv_.wait(sync, std::forward<Cont>(cont), tag);
  }

  // Timed transactional WAIT: true if notified, false on timeout.  Like
  // wait_tx, the caller resumes irrevocably either way.
  template <typename Rep, typename Period>
  bool wait_for_tx(std::chrono::duration<Rep, Period> timeout,
                   std::uint64_t tag = 0) {
    TMCV_ASSERT_MSG(tm::in_txn(),
                    "wait_for_tx requires a transactional context");
    tm::TxnSync sync;
    return cv_.wait_for(sync, timeout, tag);
  }

  // WAIT as the final action of the enclosing transaction.
  void wait_final_tx(std::uint64_t tag = 0) {
    TMCV_ASSERT_MSG(tm::in_txn(),
                    "wait_final_tx requires a transactional context");
    tm::TxnSync sync;
    cv_.wait_final(sync, tag);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  [[nodiscard]] CondVar& raw() noexcept { return cv_; }

 private:
  CondVar cv_;
};

}  // namespace tmcv
