// The generic CondVar implementation of Algorithm 2, kept faithful to the
// paper's line numbering: a set Q of waiting threads plus per-thread `spin`
// flags.  WAITSTEP2 busy-waits (with yield), so this object is a *reference
// model* for the specification -- property tests check the practical
// implementation (condvar.h) against it, and the interleaving explorer
// (src/sched) verifies Lemma 2's invariants on its step structure.
//
// Each atomic line of Algorithm 2 is realized as a transaction over the set,
// mirroring how the practical algorithm protects its queue.
#pragma once

#include <atomic>
#include <cstdint>

#include "tm/api.h"
#include "tm/var.h"
#include "util/assert.h"
#include "util/backoff.h"

namespace tmcv {

// N is the maximum number of participating threads; callers index themselves
// with small dense ids (0..N-1), which tests allocate per thread.
template <std::size_t N>
class GenericCondVar {
 public:
  static constexpr std::size_t kInvalid = N;

  // Line 1-2: set the flag, then atomically insert p into Q.
  void wait_step1(std::size_t p) {
    TMCV_ASSERT(p < N);
    spin_[p].store(true, std::memory_order_seq_cst);  // line 1
    tm::atomically([&] {                              // line 2
      in_q_[p].store(true);
    });
  }

  // Line 3: spin until notified; always returns false (Definition 1(2)).
  bool wait_step2(std::size_t p) {
    TMCV_ASSERT(p < N);
    Backoff backoff;
    while (spin_[p].load(std::memory_order_seq_cst)) backoff.wait();
    return false;
  }

  // Lines 4-5: atomically remove an arbitrary element, then clear its flag
  // as a separate step.  Returns the removed thread, or kInvalid.
  std::size_t notify_one() {
    std::size_t victim = kInvalid;
    tm::atomically([&] {  // line 4
      victim = kInvalid;
      for (std::size_t i = 0; i < N; ++i) {
        if (in_q_[i].load()) {
          in_q_[i].store(false);
          victim = i;
          break;
        }
      }
    });
    if (victim != kInvalid)  // line 5
      spin_[victim].store(false, std::memory_order_seq_cst);
    return victim;
  }

  // Lines 6-7: atomically drain Q into Q', then clear flags one by one.
  // Returns the number of threads woken.
  std::size_t notify_all() {
    bool drained[N];
    tm::atomically([&] {  // line 6
      for (std::size_t i = 0; i < N; ++i) {
        drained[i] = in_q_[i].load();
        if (drained[i]) in_q_[i].store(false);
      }
    });
    std::size_t count = 0;
    for (std::size_t i = 0; i < N; ++i) {  // line 7
      if (drained[i]) {
        spin_[i].store(false, std::memory_order_seq_cst);
        ++count;
      }
    }
    return count;
  }

  // Convenience: full WAIT (both steps).
  void wait(std::size_t p) {
    wait_step1(p);
    const bool spurious = wait_step2(p);
    TMCV_ASSERT_MSG(!spurious, "spec violation: WAITSTEP2 returned true");
  }

  // Observers for invariant checks.
  [[nodiscard]] bool in_queue(std::size_t p) const {
    bool result = false;
    tm::atomically([&] { result = in_q_[p].load(); });
    return result;
  }
  [[nodiscard]] bool spin_flag(std::size_t p) const noexcept {
    return spin_[p].load(std::memory_order_seq_cst);
  }

 private:
  tm::array<bool, N> in_q_{};
  std::atomic<bool> spin_[N]{};
};

}  // namespace tmcv
