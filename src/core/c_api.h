/* C-compatible interface to the transaction-friendly condition variables:
 * a drop-in pattern for pthread_cond_t users (the paper's abstract promises
 * compatibility with "existing C/C++ interfaces for condition
 * synchronization").
 *
 * Semantics match pthread_cond_* with one strengthening: tmcv_cond_wait
 * never returns spuriously (§3.4).  All functions return 0 on success.
 * Signals/broadcasts issued from inside a transaction (when the calling
 * thread is running under tm::atomically in C++ callers) are deferred to
 * that transaction's commit, like the C++ API.
 */
#pragma once

#include <pthread.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct tmcv_cond tmcv_cond_t;

/* Allocate / free a condition variable.  Destroying one with waiters is
 * undefined behaviour (asserted in debug builds), as with pthreads. */
tmcv_cond_t* tmcv_cond_create(void);
void tmcv_cond_destroy(tmcv_cond_t* cond);

/* Atomically release `mutex` and sleep until signaled, then re-acquire
 * `mutex` before returning.  The mutex must be held by the caller. */
int tmcv_cond_wait(tmcv_cond_t* cond, pthread_mutex_t* mutex);

/* As tmcv_cond_wait, bounded by `timeout_ms` milliseconds.  Returns 0 when
 * signaled, ETIMEDOUT on timeout (mutex re-acquired either way). */
int tmcv_cond_timedwait_ms(tmcv_cond_t* cond, pthread_mutex_t* mutex,
                           unsigned timeout_ms);

/* Wake one / all waiting threads.  Safe from any context, including naked
 * (mutex-less) calls. */
int tmcv_cond_signal(tmcv_cond_t* cond);
int tmcv_cond_broadcast(tmcv_cond_t* cond);

/* As tmcv_cond_broadcast, but declares that the caller holds `mutex` (the
 * one its waiters re-acquire).  With wait morphing enabled this wakes one
 * waiter and relays the rest one-per-unlock instead of waking the herd. */
int tmcv_cond_broadcast_locked(tmcv_cond_t* cond, pthread_mutex_t* mutex);

/* Process-wide tuning knobs (see docs/TUNING.md).
 *
 * Spin budget: max backoff rounds a blocking wait spins before parking in
 * the kernel (0 disables spinning; the TMCV_NO_SPIN env var forces 0 at
 * startup).  Wait morphing: enables the broadcast relay described above
 * (on by default; gates only new requeues, so toggling is always safe). */
void tmcv_set_spin_budget(unsigned rounds);
unsigned tmcv_get_spin_budget(void);
void tmcv_set_wait_morphing(int enabled);
int tmcv_get_wait_morphing(void);

/* TM backend selection (see docs/BACKENDS.md).
 *
 * tmcv_tm_set_backend pins the process-wide default to a fixed backend by
 * label ("eager", "lazy", "htm", "hybrid", "norec"); the switch happens at
 * a quiescence point (every in-flight transaction drains first) and the
 * adaptive controller, if running, is stopped.  Returns 0 on success, -1
 * on an unknown label.  Must not be called from inside a transaction.
 *
 * tmcv_tm_set_backend_auto starts (nonzero) or stops (zero) the adaptive
 * controller, which moves the default between eager/lazy/norec from live
 * abort and concurrency signals.  tmcv_tm_get_backend returns the current
 * default's label (a static string; "auto" is never returned -- the
 * controller always has some concrete backend installed). */
int tmcv_tm_set_backend(const char* name);
void tmcv_tm_set_backend_auto(int enabled);
const char* tmcv_tm_get_backend(void);

/* Live telemetry endpoint (implemented in the obs library -- linking
 * tmcv_obs is required to use these two; everything above needs only
 * tmcv_core).  Starts a background HTTP/1.0 server bound to 127.0.0.1
 * serving GET /metrics (Prometheus text), /metrics.json, /healthz and
 * /profile (conflict-attribution top-N), snapshotting the metrics registry
 * every few hundred ms.  `port` 0 picks an ephemeral port.  Returns the
 * bound port, or -1 on failure (including: a server already running).
 * tmcv_telemetry_stop is idempotent and joins the server threads. */
int tmcv_telemetry_start(int port);
void tmcv_telemetry_stop(void);

/* Flight recorder (also obs-library-only): atomically write a post-mortem
 * JSON -- full metrics snapshot, time-series history, unsliced conflict
 * attribution, and the Chrome trace document -- to `path`.  Capture flags
 * are frozen during serialization and restored after.  Returns 0 on
 * success, -1 on failure (errno intact).  Validate/summarize the file with
 * tools/trace_report.py. */
int tmcv_flight_dump(const char* path);

#ifdef __cplusplus
}  /* extern "C" */
#endif
