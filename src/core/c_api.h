/* C-compatible interface to the transaction-friendly condition variables:
 * a drop-in pattern for pthread_cond_t users (the paper's abstract promises
 * compatibility with "existing C/C++ interfaces for condition
 * synchronization").
 *
 * Semantics match pthread_cond_* with one strengthening: tmcv_cond_wait
 * never returns spuriously (§3.4).  All functions return 0 on success.
 * Signals/broadcasts issued from inside a transaction (when the calling
 * thread is running under tm::atomically in C++ callers) are deferred to
 * that transaction's commit, like the C++ API.
 */
#pragma once

#include <pthread.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct tmcv_cond tmcv_cond_t;

/* Allocate / free a condition variable.  Destroying one with waiters is
 * undefined behaviour (asserted in debug builds), as with pthreads. */
tmcv_cond_t* tmcv_cond_create(void);
void tmcv_cond_destroy(tmcv_cond_t* cond);

/* Atomically release `mutex` and sleep until signaled, then re-acquire
 * `mutex` before returning.  The mutex must be held by the caller. */
int tmcv_cond_wait(tmcv_cond_t* cond, pthread_mutex_t* mutex);

/* As tmcv_cond_wait, bounded by `timeout_ms` milliseconds.  Returns 0 when
 * signaled, ETIMEDOUT on timeout (mutex re-acquired either way). */
int tmcv_cond_timedwait_ms(tmcv_cond_t* cond, pthread_mutex_t* mutex,
                           unsigned timeout_ms);

/* Wake one / all waiting threads.  Safe from any context, including naked
 * (mutex-less) calls. */
int tmcv_cond_signal(tmcv_cond_t* cond);
int tmcv_cond_broadcast(tmcv_cond_t* cond);

#ifdef __cplusplus
}  /* extern "C" */
#endif
