#include "core/condvar.h"

#include <algorithm>
#include <mutex>
#include <vector>

namespace tmcv {

namespace detail {

WaitNode& my_wait_node() noexcept {
  thread_local WaitNode node;
  return node;
}

}  // namespace detail

namespace {

// Tracks every live CondVar and accumulates the counters of destroyed ones,
// so condvar_stats_aggregate() sees a complete, never-double-counted view.
// Function-local static: constructed before the first CondVar finishes its
// constructor, hence destroyed after the last one (including globals).
struct CvRegistry {
  std::mutex mu;
  std::vector<const CondVar*> live;
  CondVarStats retired;
};

CvRegistry& cv_registry() {
  static CvRegistry r;
  return r;
}

#if TMCV_TRACE
// Stamp the victim inside the queue transaction, right before its deferred
// wake: a stamp from an aborted transaction is harmless (the node's next
// wait clears it; a re-executed notify overwrites it).
inline void stamp_victim(detail::WaitNode* victim) noexcept {
  obs::stamp_notify(victim->notify_ticks);
}
#else
inline void stamp_victim(detail::WaitNode*) noexcept {}
#endif

}  // namespace

void CondVar::register_self() {
  CvRegistry& r = cv_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.live.push_back(this);
}

void CondVar::unregister_self() noexcept {
  CvRegistry& r = cv_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.retired += stats();
  r.live.erase(std::remove(r.live.begin(), r.live.end(), this),
               r.live.end());
}

CondVarStats condvar_stats_aggregate() {
  CvRegistry& r = cv_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  CondVarStats s = r.retired;
  for (const CondVar* cv : r.live) s += cv->stats();
  return s;
}

void CondVar::enqueue_self(detail::WaitNode& node) {
  tm::atomically([&] {
    // The closure may re-execute after an abort; re-assert line 1's state
    // (plain store is fine: the node is still private).
    node.next.store_plain(nullptr);
    detail::WaitNode* tail = tail_.load();
    if (tail == nullptr) {
      TMCV_DEBUG_ASSERT(head_.load() == nullptr);
      head_.store(&node);
      tail_.store(&node);
    } else {
      tail->next.store(&node);
      tail_.store(&node);
    }
    size_.store(size_.load() + 1);
  });
}

void CondVar::unlink(detail::WaitNode* prev, detail::WaitNode* node) {
  detail::WaitNode* next = node->next.load();
  if (prev == nullptr)
    head_.store(next);
  else
    prev->next.store(next);
  if (tail_.load() == node) tail_.store(prev);
  size_.store(size_.load() - 1);
}

bool CondVar::try_remove_self(detail::WaitNode& node) {
  bool removed = false;
  tm::atomically([&] {
    removed = false;
    detail::WaitNode* prev = nullptr;
    for (detail::WaitNode* cur = head_.load(); cur != nullptr;
         cur = cur->next.load()) {
      if (cur == &node) {
        unlink(prev, cur);
        removed = true;
        return;
      }
      prev = cur;
    }
  });
  return removed;
}

bool CondVar::notify_one() {
  bool notified = false;
  tm::atomically([&] {
    notified = false;
    detail::WaitNode* sn = head_.load();
    if (sn == nullptr) return;  // empty queue: the notify is lost, by spec
    detail::WaitNode* victim = sn;
    detail::WaitNode* prev = nullptr;
    if (policy_ == WakePolicy::LIFO) {
      // Wake the most recent waiter: walk to the tail.  Queues are short
      // (bounded by thread count), so the walk is cheap; keeping the list
      // singly linked preserves Algorithm 3's structure.
      while (detail::WaitNode* nx = victim->next.load()) {
        prev = victim;
        victim = nx;
      }
    }
    unlink(prev, victim);
    // Line 9: wake the thread when the outermost transaction commits.  The
    // wake batch replaces the per-victim onCommit closure: zero handler
    // allocations, and an abort discards the batch so no wake-up escapes
    // (§3.2).
    stamp_victim(victim);
    tm::defer_wake(&victim->sem);
    notified = true;
  });
  count_notify(notify_one_calls_, notified ? 1 : 0);
  return notified;
}

std::size_t CondVar::notify_all() {
  std::size_t count = 0;
  tm::atomically([&] {
    count = 0;
    detail::WaitNode* sn = head_.load();
    if (sn == nullptr) return;
    head_.store(nullptr);
    tail_.store(nullptr);
    size_.store(0);
    // Accesses to next fields stay inside the transaction (§3.3): the nodes
    // are reachable only because their owners' enqueue transactions
    // committed and no intervening notify removed them, so no owner can be
    // at WAIT line 1 and no race with its plain store is possible.  Victims
    // join the descriptor's wake batch -- one coalesced post_batch at
    // commit, O(1) handler allocations for any N.
    while (sn != nullptr) {
      detail::WaitNode* node = sn;
      sn = sn->next.load();
      stamp_victim(node);
      tm::defer_wake(&node->sem);
      ++count;
    }
  });
  count_notify(notify_all_calls_, count);
  return count;
}

std::size_t CondVar::notify_n(std::size_t n) {
  std::size_t count = 0;
  tm::atomically([&] {
    count = 0;
    if (n == 0) return;
    if (policy_ == WakePolicy::FIFO) {
      // FIFO victims are head pops: O(1) each.
      while (count < n) {
        detail::WaitNode* victim = head_.load();
        if (victim == nullptr) break;
        unlink(nullptr, victim);
        stamp_victim(victim);
        tm::defer_wake(&victim->sem);
        ++count;
      }
      return;
    }
    // LIFO: the victims are the last n nodes, i.e. a suffix of the list.
    // One traversal with a ring of the trailing n+1 pointers finds both the
    // suffix and its predecessor (the new tail), instead of restarting the
    // walk from head per victim (which was O(n^2)).  The ring grows to at
    // most min(n+1, waiters) entries and is reused across calls.
    thread_local std::vector<detail::WaitNode*> ring;
    ring.clear();
    const std::size_t cap = n + 1 == 0 ? n : n + 1;  // saturate, no wrap
    std::size_t len = 0;
    for (detail::WaitNode* cur = head_.load(); cur != nullptr;
         cur = cur->next.load()) {
      if (ring.size() < cap)
        ring.push_back(cur);
      else
        ring[len % cap] = cur;
      ++len;
    }
    if (len == 0) return;
    if (len <= n) {
      // Everyone goes: drain the whole queue, most recent first.
      for (std::size_t p = len; p > 0; --p) {
        stamp_victim(ring[p - 1]);
        tm::defer_wake(&ring[p - 1]->sem);
      }
      head_.store(nullptr);
      tail_.store(nullptr);
      size_.store(0);
      count = len;
      return;
    }
    // The ring holds positions len-n-1 .. len-1: the new tail followed by
    // the n victims.  Cut the suffix and wake it, most recent first.
    detail::WaitNode* boundary = ring[(len - n - 1) % cap];
    for (std::size_t p = len; p > len - n; --p) {
      stamp_victim(ring[(p - 1) % cap]);
      tm::defer_wake(&ring[(p - 1) % cap]->sem);
    }
    boundary->next.store(nullptr);
    tail_.store(boundary);
    size_.store(len - n);
    count = n;
  });
  count_notify(notify_all_calls_, count);
  return count;
}

std::size_t CondVar::waiter_count() const {
  // O(1): the size field is maintained transactionally by enqueue/unlink,
  // replacing the O(n) queue walk (which also manufactured conflicts with
  // every enqueue/dequeue it overlapped).
  std::size_t count = 0;
  tm::atomically([&] { count = size_.load(); });
  return count;
}

}  // namespace tmcv
