#include "core/condvar.h"

namespace tmcv {

namespace detail {

WaitNode& my_wait_node() noexcept {
  thread_local WaitNode node;
  return node;
}

}  // namespace detail

void CondVar::enqueue_self(detail::WaitNode& node) {
  tm::atomically([&] {
    // The closure may re-execute after an abort; re-assert line 1's state
    // (plain store is fine: the node is still private).
    node.next.store_plain(nullptr);
    detail::WaitNode* tail = tail_.load();
    if (tail == nullptr) {
      TMCV_DEBUG_ASSERT(head_.load() == nullptr);
      head_.store(&node);
      tail_.store(&node);
    } else {
      tail->next.store(&node);
      tail_.store(&node);
    }
  });
}

void CondVar::unlink(detail::WaitNode* prev, detail::WaitNode* node) {
  detail::WaitNode* next = node->next.load();
  if (prev == nullptr)
    head_.store(next);
  else
    prev->next.store(next);
  if (tail_.load() == node) tail_.store(prev);
}

bool CondVar::try_remove_self(detail::WaitNode& node) {
  bool removed = false;
  tm::atomically([&] {
    removed = false;
    detail::WaitNode* prev = nullptr;
    for (detail::WaitNode* cur = head_.load(); cur != nullptr;
         cur = cur->next.load()) {
      if (cur == &node) {
        unlink(prev, cur);
        removed = true;
        return;
      }
      prev = cur;
    }
  });
  return removed;
}

bool CondVar::notify_one() {
  bool notified = false;
  tm::atomically([&] {
    notified = false;
    detail::WaitNode* sn = head_.load();
    if (sn == nullptr) return;  // empty queue: the notify is lost, by spec
    detail::WaitNode* victim = sn;
    detail::WaitNode* prev = nullptr;
    if (policy_ == WakePolicy::LIFO) {
      // Wake the most recent waiter: walk to the tail.  Queues are short
      // (bounded by thread count), so the walk is cheap; keeping the list
      // singly linked preserves Algorithm 3's structure.
      while (detail::WaitNode* nx = victim->next.load()) {
        prev = victim;
        victim = nx;
      }
    }
    unlink(prev, victim);
    // Line 9: wake the thread when the outermost transaction commits.  If
    // this transaction ultimately aborts, the handler is discarded and no
    // wake-up escapes (§3.2).
    tm::on_commit([victim] { victim->sem.post(); });
    notified = true;
  });
  count_notify(notify_one_calls_, notified ? 1 : 0);
  return notified;
}

std::size_t CondVar::notify_all() {
  std::size_t count = 0;
  tm::atomically([&] {
    count = 0;
    detail::WaitNode* sn = head_.load();
    if (sn == nullptr) return;
    head_.store(nullptr);
    tail_.store(nullptr);
    // Accesses to next fields stay inside the transaction (§3.3): the nodes
    // are reachable only because their owners' enqueue transactions
    // committed and no intervening notify removed them, so no owner can be
    // at WAIT line 1 and no race with its plain store is possible.
    while (sn != nullptr) {
      detail::WaitNode* node = sn;
      sn = sn->next.load();
      tm::on_commit([node] { node->sem.post(); });
      ++count;
    }
  });
  count_notify(notify_all_calls_, count);
  return count;
}

std::size_t CondVar::notify_n(std::size_t n) {
  std::size_t count = 0;
  tm::atomically([&] {
    count = 0;
    while (count < n) {
      detail::WaitNode* sn = head_.load();
      if (sn == nullptr) break;
      detail::WaitNode* victim = sn;
      detail::WaitNode* prev = nullptr;
      if (policy_ == WakePolicy::LIFO) {
        while (detail::WaitNode* nx = victim->next.load()) {
          prev = victim;
          victim = nx;
        }
      }
      unlink(prev, victim);
      tm::on_commit([victim] { victim->sem.post(); });
      ++count;
    }
  });
  count_notify(notify_all_calls_, count);
  return count;
}

std::size_t CondVar::waiter_count() const {
  std::size_t count = 0;
  tm::atomically([&] {
    count = 0;
    for (detail::WaitNode* cur = head_.load(); cur != nullptr;
         cur = cur->next.load())
      ++count;
  });
  return count;
}

}  // namespace tmcv
