#include "core/condvar.h"

#include <algorithm>
#include <mutex>
#include <vector>

#include "obs/attribution.h"

namespace tmcv {

namespace detail {

WaitNode& my_wait_node() noexcept {
  thread_local WaitNode node;
  return node;
}

}  // namespace detail

namespace {

// Tracks every live CondVar and accumulates the counters of destroyed ones,
// so condvar_stats_aggregate() sees a complete, never-double-counted view.
// Function-local static: constructed before the first CondVar finishes its
// constructor, hence destroyed after the last one (including globals).
struct CvRegistry {
  std::mutex mu;
  std::vector<const CondVar*> live;
  CondVarStats retired;
};

CvRegistry& cv_registry() {
  static CvRegistry r;
  return r;
}

#if TMCV_TRACE
// Stamp the victim inside the queue transaction, right before its deferred
// wake: a stamp from an aborted transaction is harmless (the node's next
// wait clears it; a re-executed notify overwrites it).
inline void stamp_victim(detail::WaitNode* victim) noexcept {
  obs::stamp_notify(victim->notify_ticks);
}
#else
inline void stamp_victim(detail::WaitNode*) noexcept {}
#endif

// Scratch for the multi-victim notifies: victims are collected inside the
// queue transaction (cleared at the top of the closure, so re-execution is
// safe) and dispatched after it.  Reused across calls -- no allocation in
// steady state.
thread_local std::vector<detail::WaitNode*> t_victims;
thread_local std::vector<BinarySemaphore*> t_victim_sems;

// Wake the collected victims by the cheapest route that fits the caller's
// context:
//
//   * Ambient transaction: every post joins the descriptor's wake batch, so
//     an abort discards them (§3.2) -- unchanged from the pre-morph design.
//   * Lock scope + morphing on + a herd (>1 victim): post the first victim
//     and park the rest on the lock's relay chain.  The first victim's
//     morph key is set BEFORE its post and the rest are requeued BEFORE the
//     post too: once the first waiter runs it must find the chain fully
//     formed, or a late requeue could strand a waiter (lost wakeup).
//   * Otherwise: one coalesced post_batch (publish all tokens, then wake).
void dispatch_wakes(std::vector<detail::WaitNode*>& victims) {
  if (victims.empty()) return;
  if (tm::in_txn()) {
    for (detail::WaitNode* v : victims) tm::defer_wake(&v->sem);
    return;
  }
  const void* scope = current_lock_scope();
  if (scope != nullptr && victims.size() > 1 && wait_morphing()) {
    detail::WaitNode* first = victims[0];
    // The directly-woken waiter starts the relay, so it carries the key
    // too; without it the second victim would never be posted.
    first->morph.key.store(scope, std::memory_order_relaxed);
    for (std::size_t i = 1; i < victims.size(); ++i)
      morph_requeue(scope, &victims[i]->morph);
    first->sem.post();
    return;
  }
  t_victim_sems.clear();
  t_victim_sems.reserve(victims.size());
  for (detail::WaitNode* v : victims) t_victim_sems.push_back(&v->sem);
  BinarySemaphore::post_batch(t_victim_sems.data(), t_victim_sems.size());
}

}  // namespace

void CondVar::register_self() {
  CvRegistry& r = cv_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.live.push_back(this);
}

void CondVar::unregister_self() noexcept {
  CvRegistry& r = cv_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.retired += stats();
  r.live.erase(std::remove(r.live.begin(), r.live.end(), this),
               r.live.end());
}

CondVarStats condvar_stats_aggregate() {
  CvRegistry& r = cv_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  CondVarStats s = r.retired;
  for (const CondVar* cv : r.live) s += cv->stats();
  return s;
}

bool condvar_probe(const void* cv, CondVarStats& stats,
                   std::uint16_t& last_notify_site) {
  CvRegistry& r = cv_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const CondVar* live : r.live) {
    if (live != cv) continue;
    stats = live->stats();
    last_notify_site =
        live->last_notify_site_.load(std::memory_order_relaxed);
    return true;
  }
  return false;
}

CondVar::CommitSleep& CondVar::commit_sleep_stash() noexcept {
  thread_local CommitSleep cs;
  return cs;
}

void CondVar::commit_sleep_thunk(void* ctx) noexcept {
  CommitSleep& cs = *static_cast<CommitSleep*>(ctx);
  {
    // The registering transaction has committed by the time the handler
    // runs, so publishing the park is safe (no syscall-in-txn hazard) and
    // its site label is still the committed transaction's.
    WaitScope wp(WaitReason::kCondVar, cs.cv, wait_site());
    cs.node->sem.wait();
  }
  cs.cv->finish_wait(*cs.node, cs.t0);
  // wait_at_commit never re-acquires a lock, so relay immediately (same
  // contract as wait_final).
  morph_consume(cs.node->morph);
}

void CondVar::clear_enqueued_thunk(void* ctx) noexcept {
  static_cast<detail::WaitNode*>(ctx)->enqueued = false;
}

void CondVar::enqueue_self(detail::WaitNode& node) {
  tm::atomically([&] {
    // Attribution hint, not label: an ambient user transaction keeps its
    // own TMCV_TXN_SITE name; only standalone queue transactions show up
    // as cv.* sites.  Same for the notify paths below.
    TMCV_TXN_SITE_HINT("cv.wait.enqueue");
    // The closure may re-execute after an abort; re-assert line 1's state
    // (plain store is fine: the node is still private).
    node.next.store_plain(nullptr);
    detail::WaitNode* tail = tail_.load();
    if (tail == nullptr) {
      TMCV_DEBUG_ASSERT(head_.load() == nullptr);
      head_.store(&node);
      tail_.store(&node);
    } else {
      tail->next.store(&node);
      tail_.store(&node);
    }
    size_.store(size_.load() + 1);
  });
}

void CondVar::unlink(detail::WaitNode* prev, detail::WaitNode* node) {
  detail::WaitNode* next = node->next.load();
  if (prev == nullptr)
    head_.store(next);
  else
    prev->next.store(next);
  if (tail_.load() == node) tail_.store(prev);
  size_.store(size_.load() - 1);
}

bool CondVar::try_remove_self(detail::WaitNode& node) {
  bool removed = false;
  tm::atomically([&] {
    TMCV_TXN_SITE_HINT("cv.wait.cancel");
    removed = false;
    detail::WaitNode* prev = nullptr;
    for (detail::WaitNode* cur = head_.load(); cur != nullptr;
         cur = cur->next.load()) {
      if (cur == &node) {
        unlink(prev, cur);
        removed = true;
        return;
      }
      prev = cur;
    }
  });
  return removed;
}

bool CondVar::notify_one() {
  const std::uint64_t notify_t0 = notify_begin_ticks();
  bool notified = false;
  tm::atomically([&] {
    TMCV_TXN_SITE_HINT("cv.notify");
    notified = false;
    detail::WaitNode* sn = head_.load();
    if (sn == nullptr) return;  // empty queue: the notify is lost, by spec
    detail::WaitNode* victim = sn;
    detail::WaitNode* prev = nullptr;
    if (policy_ == WakePolicy::LIFO) {
      // Wake the most recent waiter: walk to the tail.  Queues are short
      // (bounded by thread count), so the walk is cheap; keeping the list
      // singly linked preserves Algorithm 3's structure.
      while (detail::WaitNode* nx = victim->next.load()) {
        prev = victim;
        victim = nx;
      }
    }
    unlink(prev, victim);
    // Line 9: wake the thread when the outermost transaction commits.  The
    // wake batch replaces the per-victim onCommit closure: zero handler
    // allocations, and an abort discards the batch so no wake-up escapes
    // (§3.2).
    stamp_victim(victim);
    tm::defer_wake(&victim->sem);
    notified = true;
  });
  count_notify(notify_one_calls_, notified ? 1 : 0, notify_t0);
  return notified;
}

std::size_t CondVar::notify_all() {
  const std::uint64_t notify_t0 = notify_begin_ticks();
  std::vector<detail::WaitNode*>& victims = t_victims;
  tm::atomically([&] {
    TMCV_TXN_SITE_HINT("cv.notify");
    victims.clear();  // the closure may re-execute
    detail::WaitNode* sn = head_.load();
    if (sn == nullptr) return;
    head_.store(nullptr);
    tail_.store(nullptr);
    size_.store(0);
    // Accesses to next fields stay inside the transaction (§3.3): the nodes
    // are reachable only because their owners' enqueue transactions
    // committed and no intervening notify removed them, so no owner can be
    // at WAIT line 1 and no race with its plain store is possible.  Victims
    // are collected here and dispatched after the transaction, where the
    // caller's context (ambient txn / lock scope / naked) picks the route.
    while (sn != nullptr) {
      detail::WaitNode* node = sn;
      sn = sn->next.load();
      stamp_victim(node);
      victims.push_back(node);
    }
  });
  dispatch_wakes(victims);
  const std::size_t count = victims.size();
  count_notify(notify_all_calls_, count, notify_t0);
  return count;
}

std::size_t CondVar::notify_n(std::size_t n) {
  const std::uint64_t notify_t0 = notify_begin_ticks();
  std::vector<detail::WaitNode*>& victims = t_victims;
  tm::atomically([&] {
    TMCV_TXN_SITE_HINT("cv.notify");
    victims.clear();  // the closure may re-execute
    if (n == 0) return;
    if (policy_ == WakePolicy::FIFO) {
      // FIFO victims are head pops: O(1) each.
      while (victims.size() < n) {
        detail::WaitNode* victim = head_.load();
        if (victim == nullptr) break;
        unlink(nullptr, victim);
        stamp_victim(victim);
        victims.push_back(victim);
      }
      return;
    }
    // LIFO: the victims are the last n nodes, i.e. a suffix of the list.
    // One traversal with a ring of the trailing n+1 pointers finds both the
    // suffix and its predecessor (the new tail), instead of restarting the
    // walk from head per victim (which was O(n^2)).  The ring grows to at
    // most min(n+1, waiters) entries and is reused across calls.
    thread_local std::vector<detail::WaitNode*> ring;
    ring.clear();
    const std::size_t cap = n + 1 == 0 ? n : n + 1;  // saturate, no wrap
    std::size_t len = 0;
    for (detail::WaitNode* cur = head_.load(); cur != nullptr;
         cur = cur->next.load()) {
      if (ring.size() < cap)
        ring.push_back(cur);
      else
        ring[len % cap] = cur;
      ++len;
    }
    if (len == 0) return;
    if (len <= n) {
      // Everyone goes: drain the whole queue, most recent first.
      for (std::size_t p = len; p > 0; --p) {
        stamp_victim(ring[p - 1]);
        victims.push_back(ring[p - 1]);
      }
      head_.store(nullptr);
      tail_.store(nullptr);
      size_.store(0);
      return;
    }
    // The ring holds positions len-n-1 .. len-1: the new tail followed by
    // the n victims.  Cut the suffix and wake it, most recent first.
    detail::WaitNode* boundary = ring[(len - n - 1) % cap];
    for (std::size_t p = len; p > len - n; --p) {
      stamp_victim(ring[(p - 1) % cap]);
      victims.push_back(ring[(p - 1) % cap]);
    }
    boundary->next.store(nullptr);
    tail_.store(boundary);
    size_.store(len - n);
  });
  dispatch_wakes(victims);
  const std::size_t count = victims.size();
  count_notify(notify_all_calls_, count, notify_t0);
  return count;
}

std::size_t CondVar::waiter_count() const {
  // O(1): the size field is maintained transactionally by enqueue/unlink,
  // replacing the O(n) queue walk (which also manufactured conflicts with
  // every enqueue/dequeue it overlapped).
  std::size_t count = 0;
  tm::atomically([&] { count = size_.load(); });
  return count;
}

}  // namespace tmcv
