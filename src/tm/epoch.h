// Epoch-based memory reclamation for transactional data structures.
//
// Problem: a transaction that unlinks a node cannot delete it at commit --
// a concurrent transaction that started earlier may still hold the pointer
// and dereference it (its validation will abort it *after* the read
// touches memory, so the memory must still be mapped).  The standard
// answer, used by production STMs, is epoch-based reclamation:
//
//   * every transaction announces the global epoch when it begins;
//   * tm::retire(ptr) defers the free to the retiring transaction's commit
//     and stamps it with the then-current epoch;
//   * a retired node is freed only when every in-flight transaction's
//     announced epoch is newer than the node's stamp -- at which point no
//     transaction that could have seen the node is still running (later
//     transactions cannot reach it: their validated snapshots post-date
//     the unlink).
//
// Each thread reclaims its own retirements; a thread that exits hands its
// leftovers to a global orphan list drained by whoever collects next.
#pragma once

#include <cstdint>

namespace tmcv::tm {

// Deleter signature kept C-style so entries are POD.
using GcDeleter = void (*)(void*);

// Retire `ptr`: if called inside a transaction, the retirement is deferred
// to commit (an aborted transaction never retires -- its unlink rolled
// back); outside a transaction it takes effect immediately.  The object is
// deleted by `deleter` once no transaction can still reference it.
void retire(void* ptr, GcDeleter deleter);

template <typename T>
void retire(T* ptr) {
  retire(static_cast<void*>(ptr),
         [](void* p) { delete static_cast<T*>(p); });
}

// Internal hook used by tx_new: register an allocation for rollback.
void detail_gc_register_alloc(void* ptr, GcDeleter deleter);

// Allocate inside a transaction with rollback safety: if the enclosing
// transaction aborts, the object is deleted automatically.  Equivalent to
// plain `new` outside a transaction.
template <typename T, typename... Args>
T* tx_new(Args&&... args) {
  T* ptr = new T(static_cast<Args&&>(args)...);
  detail_gc_register_alloc(
      static_cast<void*>(ptr),
      [](void* p) { delete static_cast<T*>(p); });
  return ptr;
}

// Attempt reclamation on the calling thread (runs automatically every few
// retirements; exposed for tests and shutdown paths).
void gc_collect();

// Number of retired-but-not-yet-freed objects owned by this thread plus
// the orphan list (approximate; for tests).
std::uint64_t gc_pending();

// Current global epoch (for tests).
std::uint64_t gc_epoch();

}  // namespace tmcv::tm
