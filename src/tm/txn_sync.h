// TxnSync: the transactional SyncContext (the `Sync` argument of WAIT when
// the caller is inside tm::atomically).
//
// end_block() commits the ambient transaction *now* (early commit, WAIT
// line 9) -- any abort at this point retries the whole enclosing closure,
// which is correct because nothing was published.  begin_block() starts the
// continuation's transaction at the saved nesting depth (WAIT line 11);
// with `irrevocable(true)` the continuation runs under the serial lock,
// enabling the traditional (non-CPS) interface per §4.3.
#pragma once

#include "sync/sync_context.h"
#include "tm/api.h"

namespace tmcv::tm {

class TxnSync final : public SyncContext {
 public:
  // `irrevocable_continuation` applies to the *traditional* (non-CPS) WAIT:
  // the code after WAIT returns runs as the continuation, and §4.2 shows a
  // conflict-abort there must not re-run the first half.  Running it
  // irrevocably (§4.3) is the only sound option without compiler-assisted
  // stack checkpointing, so it defaults to true.  CPS waits never call
  // begin_block (their continuation is an independently retried closure) and
  // ignore this flag.
  explicit TxnSync(bool irrevocable_continuation = true) noexcept
      : irrevocable_(irrevocable_continuation) {}

  void end_block() override { descriptor().end_sync_block(); }

  void begin_block() override { descriptor().begin_sync_block(irrevocable_); }

  [[nodiscard]] bool is_transactional() const noexcept override {
    return true;
  }

  [[nodiscard]] bool irrevocable_continuation() const noexcept {
    return irrevocable_;
  }

 private:
  bool irrevocable_;
};

}  // namespace tmcv::tm
