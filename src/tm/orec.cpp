#include "tm/orec.h"

#include "util/assert.h"

namespace tmcv::tm {

namespace detail {

// Static table: zero-initialized, i.e. every orec starts unlocked at
// version 0, matching the clock's initial time.
Orec g_orecs[kOrecCount];

}  // namespace detail

Orec& orec_at(std::uint64_t index) noexcept {
  TMCV_ASSERT(index < kOrecCount);
  return detail::g_orecs[index];
}

}  // namespace tmcv::tm
