#include "tm/orec.h"

#include "util/assert.h"

namespace tmcv::tm {

namespace {

// Static table: zero-initialized, i.e. every orec starts unlocked at
// version 0, matching the clock's initial time.
Orec g_orecs[kOrecCount];

}  // namespace

Orec& orec_for(const void* addr) noexcept {
  // Drop the low 3 bits (all transactional words are 8-byte aligned), then
  // Fibonacci-hash so nearby words spread across the table.
  const auto bits = reinterpret_cast<std::uintptr_t>(addr) >> 3;
  const std::uint64_t h =
      (static_cast<std::uint64_t>(bits) * 0x9e3779b97f4a7c15ULL) >>
      (64 - kOrecCountLog2);
  return g_orecs[h];
}

Orec& orec_at(std::uint64_t index) noexcept {
  TMCV_ASSERT(index < kOrecCount);
  return g_orecs[index];
}

}  // namespace tmcv::tm
