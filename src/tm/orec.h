// Ownership records (orecs): versioned try-locks hashed from data addresses.
//
// Encoding of an orec word:
//   (version << 1) | 0   -- unlocked; `version` is the commit timestamp of
//                           the last writer of any address striped here
//   (slot    << 1) | 1   -- locked by the thread whose registry slot is
//                           `slot`
//
// The table is a process-global fixed array; addresses are striped onto it
// with a Fibonacci multiplicative hash.  False conflicts from striping are a
// standard property of word-based STMs (the paper's ml_wt included); tests
// cover the aliasing paths explicitly.
#pragma once

#include <atomic>
#include <cstdint>

namespace tmcv::tm {

using OrecWord = std::uint64_t;
using Orec = std::atomic<OrecWord>;

inline constexpr std::uint64_t kOrecCountLog2 = 16;
inline constexpr std::uint64_t kOrecCount = 1ull << kOrecCountLog2;

[[nodiscard]] constexpr bool orec_is_locked(OrecWord w) noexcept {
  return (w & 1ull) != 0;
}

[[nodiscard]] constexpr std::uint64_t orec_version(OrecWord w) noexcept {
  return w >> 1;
}

[[nodiscard]] constexpr std::uint64_t orec_owner_slot(OrecWord w) noexcept {
  return w >> 1;
}

[[nodiscard]] constexpr OrecWord make_version(std::uint64_t version) noexcept {
  return version << 1;
}

[[nodiscard]] constexpr OrecWord make_locked(std::uint64_t slot) noexcept {
  return (slot << 1) | 1ull;
}

namespace detail {
// The process-global table.  Exposed only so orec_for inlines into the
// transactional read/write fast paths (one multiply + one indexed load,
// no call); treat as private to orec.h/orec.cpp.
extern Orec g_orecs[kOrecCount];
}  // namespace detail

// Map a data address to its orec.
[[nodiscard]] inline Orec& orec_for(const void* addr) noexcept {
  // Drop the low 3 bits (all transactional words are 8-byte aligned), then
  // Fibonacci-hash so nearby words spread across the table.
  const auto bits = reinterpret_cast<std::uintptr_t>(addr) >> 3;
  const std::uint64_t h =
      (static_cast<std::uint64_t>(bits) * 0x9e3779b97f4a7c15ULL) >>
      (64 - kOrecCountLog2);
  return detail::g_orecs[h];
}

// Direct access to the table (tests exercise striping/aliasing).
[[nodiscard]] Orec& orec_at(std::uint64_t index) noexcept;

// Stripe index of an orec within the global table (conflict attribution
// keys its heatmap on this; also handy in tests).
[[nodiscard]] inline std::uint64_t orec_index(const Orec& o) noexcept {
  return static_cast<std::uint64_t>(&o - detail::g_orecs);
}

}  // namespace tmcv::tm
