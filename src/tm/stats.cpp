#include "tm/stats.h"

#include <sstream>

#include "tm/descriptor.h"
#include "tm/registry.h"

namespace tmcv::tm {

Stats& Stats::operator+=(const Stats& o) noexcept {
  commits += o.commits;
  ro_commits += o.ro_commits;
  aborts += o.aborts;
  reads += o.reads;
  writes += o.writes;
  extensions += o.extensions;
  serial_commits += o.serial_commits;
  serial_fallbacks += o.serial_fallbacks;
  htm_capacity_aborts += o.htm_capacity_aborts;
  htm_syscall_aborts += o.htm_syscall_aborts;
  htm_chaos_aborts += o.htm_chaos_aborts;
  handlers_run += o.handlers_run;
  read_dedup_hits += o.read_dedup_hits;
  read_dedup_appends += o.read_dedup_appends;
  log_index_rehashes += o.log_index_rehashes;
  handlers_registered += o.handlers_registered;
  deferred_wakes += o.deferred_wakes;
  wake_batches += o.wake_batches;
  return *this;
}

std::string Stats::to_string() const {
  std::ostringstream os;
  os << "commits=" << commits << " (ro=" << ro_commits << ", serial="
     << serial_commits << ") aborts=" << aborts << " reads=" << reads
     << " writes=" << writes << " extensions=" << extensions
     << " serial_fallbacks=" << serial_fallbacks
     << " htm_capacity_aborts=" << htm_capacity_aborts
     << " htm_syscall_aborts=" << htm_syscall_aborts
     << " htm_chaos_aborts=" << htm_chaos_aborts
     << " handlers=" << handlers_run
     << " dedup_hits=" << read_dedup_hits
     << " dedup_appends=" << read_dedup_appends
     << " wake_batches=" << wake_batches
     << " deferred_wakes=" << deferred_wakes;
  return os.str();
}

Stats stats_snapshot() {
  Stats total;
  Registry& reg = registry();
  const std::uint64_t n = reg.high_water();
  for (std::uint64_t slot = 0; slot < n; ++slot) {
    if (TxDescriptor* desc = reg.descriptor(slot)) total += desc->stats();
  }
  reg.fold_retired(total);
  return total;
}

void stats_reset() {
  Registry& reg = registry();
  const std::uint64_t n = reg.high_water();
  for (std::uint64_t slot = 0; slot < n; ++slot) {
    if (TxDescriptor* desc = reg.descriptor(slot)) desc->stats() = Stats{};
  }
  reg.reset_retired();
}

}  // namespace tmcv::tm
