#include "tm/stats.h"

#include <sstream>

#include "tm/descriptor.h"
#include "tm/registry.h"

namespace tmcv::tm {

Stats& Stats::operator+=(const Stats& o) noexcept {
  for_each_field(
      [&](const char*, std::uint64_t Stats::*f) { this->*f += o.*f; });
  return *this;
}

Stats& Stats::operator-=(const Stats& o) noexcept {
  for_each_field(
      [&](const char*, std::uint64_t Stats::*f) { this->*f -= o.*f; });
  return *this;
}

std::string Stats::to_string() const {
  std::ostringstream os;
  os << "commits=" << commits << " (ro=" << ro_commits << ", serial="
     << serial_commits << ") aborts=" << aborts << " reads=" << reads
     << " writes=" << writes << " extensions=" << extensions
     << " serial_fallbacks=" << serial_fallbacks
     << " htm_capacity_aborts=" << htm_capacity_aborts
     << " htm_syscall_aborts=" << htm_syscall_aborts
     << " htm_chaos_aborts=" << htm_chaos_aborts
     << " handlers=" << handlers_run
     << " dedup_hits=" << read_dedup_hits
     << " dedup_appends=" << read_dedup_appends
     << " wake_batches=" << wake_batches
     << " deferred_wakes=" << deferred_wakes;
  return os.str();
}

Stats stats_snapshot() {
  Stats total;
  registry().snapshot_stats(total);
  return total;
}

void stats_reset() { registry().reset_stats(); }

}  // namespace tmcv::tm
