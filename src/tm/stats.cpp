#include "tm/stats.h"

#include <sstream>

#include "tm/cm.h"
#include "tm/descriptor.h"
#include "tm/registry.h"

namespace tmcv::tm {

const char* stats_backend_label(std::size_t i) noexcept {
  static constexpr const char* kLabels[kStatsBackends] = {
      "eager", "lazy", "htm", "hybrid", "norec"};
  return i < kStatsBackends ? kLabels[i] : "?";
}

const char* stats_abort_reason_label(std::size_t i) noexcept {
  static constexpr const char* kLabels[kStatsAbortReasons] = {
      "conflict", "capacity", "syscall", "explicit", "retry_wait"};
  return i < kStatsAbortReasons ? kLabels[i] : "?";
}

Stats& Stats::operator+=(const Stats& o) noexcept {
  for_each_field(
      [&](const char*, std::uint64_t Stats::*f) { this->*f += o.*f; });
  for (std::size_t b = 0; b < kStatsBackends; ++b)
    for (std::size_t r = 0; r < kStatsAbortReasons; ++r)
      aborts_by_backend[b][r] += o.aborts_by_backend[b][r];
  return *this;
}

Stats& Stats::operator-=(const Stats& o) noexcept {
  for_each_field(
      [&](const char*, std::uint64_t Stats::*f) { this->*f -= o.*f; });
  for (std::size_t b = 0; b < kStatsBackends; ++b)
    for (std::size_t r = 0; r < kStatsAbortReasons; ++r)
      aborts_by_backend[b][r] -= o.aborts_by_backend[b][r];
  return *this;
}

std::string Stats::to_string() const {
  std::ostringstream os;
  os << "commits=" << commits << " (ro=" << ro_commits << ", serial="
     << serial_commits << ") aborts=" << aborts << " (conflict=" << aborts_conflict
     << ", capacity=" << aborts_capacity << ", syscall=" << aborts_syscall
     << ", explicit=" << aborts_explicit
     << ", retry_wait=" << aborts_retry_wait << ") reads=" << reads
     << " writes=" << writes << " extensions=" << extensions
     << " serial_fallbacks=" << serial_fallbacks
     << " htm_capacity_aborts=" << htm_capacity_aborts
     << " htm_syscall_aborts=" << htm_syscall_aborts
     << " htm_chaos_aborts=" << htm_chaos_aborts
     << " handlers=" << handlers_run
     << " dedup_hits=" << read_dedup_hits
     << " dedup_appends=" << read_dedup_appends
     << " wake_batches=" << wake_batches
     << " deferred_wakes=" << deferred_wakes
     << " clock_cas_reuses=" << clock_cas_reuses << " cm_waits=" << cm_waits
     << " cm_backoffs=" << cm_backoffs
     << " cm_serial_escalations=" << cm_serial_escalations;
  return os.str();
}

Stats stats_snapshot() {
  Stats total;
  registry().snapshot_stats(total);
  return total;
}

void stats_reset() {
  registry().reset_stats();
  // Benchmark phases and tests expect a reset to restore the full HTM
  // attempt budget, not inherit fallback pressure from the previous phase.
  cm_reset_htm_hysteresis();
}

}  // namespace tmcv::tm
