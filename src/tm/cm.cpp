#include "tm/cm.h"

#include <atomic>

#include "obs/attribution.h"

namespace tmcv::tm {

namespace {

std::atomic<std::uint32_t> g_conflict_streak_limit{32};
std::atomic<std::uint32_t> g_orec_wait_rounds{8};

// Saturating fallback pressure: budget = kHtmAttemptsBeforeSerial >> p,
// so 0..3 maps to 8, 4, 2, 1 hardware attempts.
constexpr std::uint32_t kHtmPressureMax = 3;
std::atomic<std::uint32_t> g_htm_pressure{0};

// Pressure decays one level per kHtmRecoveryCommits hardware commits (only
// counted while pressure is nonzero, so the uncontended fast path never
// touches this line).
constexpr std::uint32_t kHtmRecoveryCommits = 64;
std::atomic<std::uint32_t> g_htm_recovery{0};

}  // namespace

void cm_set_conflict_streak_limit(std::uint32_t k) noexcept {
  g_conflict_streak_limit.store(k == 0 ? 1 : k, std::memory_order_relaxed);
}

std::uint32_t cm_conflict_streak_limit() noexcept {
  return g_conflict_streak_limit.load(std::memory_order_relaxed);
}

void cm_set_orec_wait_rounds(std::uint32_t rounds) noexcept {
  g_orec_wait_rounds.store(rounds, std::memory_order_relaxed);
}

std::uint32_t cm_orec_wait_rounds() noexcept {
  return g_orec_wait_rounds.load(std::memory_order_relaxed);
}

void cm_note_serial_escalation(std::uint16_t site) noexcept {
#if TMCV_TRACE
  obs::attr_record_escalation(site);
#else
  (void)site;
#endif
}

int htm_attempt_budget() noexcept {
  std::uint32_t p = g_htm_pressure.load(std::memory_order_relaxed);
  if (p > kHtmPressureMax) p = kHtmPressureMax;
  return kHtmAttemptsBeforeSerial >> p;
}

void note_htm_fallback() noexcept {
  std::uint32_t p = g_htm_pressure.load(std::memory_order_relaxed);
  while (p < kHtmPressureMax &&
         !g_htm_pressure.compare_exchange_weak(p, p + 1,
                                               std::memory_order_relaxed,
                                               std::memory_order_relaxed)) {
  }
}

void note_htm_commit() noexcept {
  std::uint32_t p = g_htm_pressure.load(std::memory_order_relaxed);
  if (p == 0) return;  // full budget already: stay off the shared line
  if ((g_htm_recovery.fetch_add(1, std::memory_order_relaxed) + 1) %
          kHtmRecoveryCommits !=
      0)
    return;
  while (p > 0 && !g_htm_pressure.compare_exchange_weak(
                      p, p - 1, std::memory_order_relaxed,
                      std::memory_order_relaxed)) {
  }
}

void cm_reset_htm_hysteresis() noexcept {
  g_htm_pressure.store(0, std::memory_order_relaxed);
  g_htm_recovery.store(0, std::memory_order_relaxed);
}

}  // namespace tmcv::tm
