// Per-thread transaction descriptor: the engine behind tm::atomically.
//
// One descriptor exists per thread (thread_local).  It implements three
// optimistic backends over the same orec table and version clock:
//
//   EagerSTM -- the paper's "Westmere" configuration: GCC ml_wt stand-in.
//               Encounter-time locking, write-through with an undo log.
//   LazySTM  -- TL2-style redo logging: writes buffered, orecs acquired at
//               commit, write-back on success.  Exercises the paper's §4.2
//               redo-log discussion.
//   HTM      -- the paper's "Haswell" configuration: best-effort bounded
//               transactions.  Eager execution with hard capacity limits,
//               no timestamp extension (first conflict aborts), explicit
//               abort on syscall-like actions, and escalation to the serial
//               lock after a few attempts (RTM + lock-elision stand-in).
//
// plus the Serial state for irrevocable/relaxed transactions.
//
// Aborts are signalled by throwing TxAbort after the descriptor has rolled
// back; the retry loop lives in tm::atomically (api.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "tm/clock.h"
#include "tm/orec.h"
#include "tm/stats.h"
#include "util/assert.h"

namespace tmcv::tm {

enum class Backend : std::uint8_t {
  EagerSTM,
  LazySTM,
  HTM,
  // Hybrid TM (the deployment real RTM systems use): a few hardware
  // attempts, then software transactions, then the serial lock.  Resolved
  // by the retry loop; the descriptor itself never runs in Hybrid state.
  Hybrid,
};

[[nodiscard]] const char* to_string(Backend b) noexcept;

// Thrown (after rollback) to unwind to the retry loop.  User code must not
// swallow it; tm::atomically rethrows anything else after aborting.
struct TxAbort {
  enum class Reason : std::uint8_t {
    Conflict,
    Capacity,
    Syscall,
    Explicit,
    RetryWait,  // Harris-style retry: sleep until some commit, then re-run
  };
  Reason reason = Reason::Conflict;
  // For RetryWait: the commit-signal value observed before aborting (the
  // retry loop sleeps until the signal moves past it).
  std::uint64_t retry_signal = 0;
};

enum class TxState : std::uint8_t { Idle, Optimistic, Serial };

class TxDescriptor {
 public:
  TxDescriptor();
  ~TxDescriptor() = default;

  TxDescriptor(const TxDescriptor&) = delete;
  TxDescriptor& operator=(const TxDescriptor&) = delete;

  // Descriptors are pooled, never destroyed while the process runs: the
  // serial lock's quiescence scan and the epoch collector dereference other
  // threads' descriptors through the registry, so their storage must stay
  // valid.  attach/detach bind a pooled descriptor to the current thread.
  void attach();
  void detach();

  // ---- lifecycle (driven by tm::atomically / tm::irrevocably) ----

  [[nodiscard]] TxState state() const noexcept { return state_; }
  [[nodiscard]] bool in_txn() const noexcept { return state_ != TxState::Idle; }
  [[nodiscard]] Backend backend() const noexcept { return backend_; }
  [[nodiscard]] std::uint32_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::uint64_t slot() const noexcept { return slot_; }

  // Begin a top-level optimistic transaction (waits out any serial section).
  void begin_top(Backend b, std::uint32_t depth = 1);

  // Flat nesting bookkeeping for nested atomically() blocks.
  void push_nested() noexcept { ++depth_; }
  void pop_nested() noexcept {
    TMCV_DEBUG_ASSERT(depth_ > 1);
    --depth_;
  }

  // Commit the top-level transaction (validate, publish, run handlers).
  // Throws TxAbort if validation fails (after rolling back).
  void commit_top();

  // Roll back and throw TxAbort (optimistic transactions only).
  [[noreturn]] void abort_restart(TxAbort::Reason reason);

  // Harris-style retry (paper §6/§7): validate the snapshot, roll back,
  // and throw a RetryWait abort carrying the current commit-signal value;
  // the retry loop sleeps until some writing commit bumps the signal, then
  // re-runs the closure.  Coarse (any commit wakes) but lost-wakeup-free:
  // the signal is observed before validation, so no commit that could have
  // changed the predicate is missed.
  [[noreturn]] void retry_and_wait();

  // Called by the retry loop after catching TxAbort: bookkeeping only (the
  // throwing path already rolled back).
  void after_abort() noexcept {}

  // ---- serial / irrevocable ----

  void begin_serial(std::uint32_t depth = 1);
  void commit_serial();

  // ---- early commit & split transactions (WAIT support, paper §3.2/§4.2) --

  // ENDSYNCBLOCK inside a transaction: commit *now*, at any depth.  Saves the
  // depth so the continuation can be resumed at the same nesting level.
  // Throws TxAbort if the commit-time validation fails (the enclosing
  // atomically retries the whole body, which is correct: nothing published).
  void end_sync_block();

  // BEGINSYNCBLOCK for the continuation: a fresh transaction at the saved
  // depth.  `irrevocable` selects the §4.3 "run the continuation
  // irrevocably" mode that permits the traditional (non-CPS) interface.
  void begin_sync_block(bool irrevocable);

  [[nodiscard]] std::uint32_t saved_depth() const noexcept {
    return saved_depth_;
  }

  // Split-completion protocol: when a CPS wait fully handles the second half
  // itself, it marks the split done; commit_top then becomes a no-op once.
  void mark_split_done() noexcept { split_done_ = true; }
  [[nodiscard]] bool split_done() const noexcept { return split_done_; }
  void clear_split_done() noexcept { split_done_ = false; }

  // ---- data access ----

  [[nodiscard]] std::uint64_t read_word(const std::atomic<std::uint64_t>* addr);
  void write_word(std::atomic<std::uint64_t>* addr, std::uint64_t value);

  // ---- handlers (REGISTERHANDLER of Algorithms 5/6) ----

  // Deferred until after the outermost commit; discarded on abort.  Runs
  // immediately when no transaction is active.
  void on_commit(std::function<void()> fn);

  // Run if the transaction aborts (compensation); discarded on commit.
  void on_abort(std::function<void()> fn);

  // Abort if executing inside a hardware transaction: models the fact that a
  // syscall (futex wait/wake) inside RTM aborts the transaction (§3.2).
  void syscall_fence();

  // ---- quiescence (used by SerialLock) ----

  [[nodiscard]] std::uint64_t activity() const noexcept {
    return activity_.load(std::memory_order_seq_cst);
  }

  // ---- epoch GC support (see tm/epoch.h) ----

  [[nodiscard]] std::uint64_t announced_epoch() const noexcept {
    return epoch_.load(std::memory_order_seq_cst);
  }

  // ---- stats ----
  Stats& stats() noexcept { return stats_; }

  // HTM emulation capacities (exposed for tests/benchmarks).
  static constexpr std::size_t kHtmReadCapacity = 1024;
  static constexpr std::size_t kHtmWriteCapacity = 64;

  // Chaos injection for the HTM emulation: real hardware transactions
  // abort asynchronously (timer interrupts, cache evictions, TLB misses);
  // setting a nonzero rate makes every HTM data access abort with
  // probability rate/1e6, exercising fallback robustness.  0 disables.
  static void set_htm_chaos_per_million(std::uint32_t rate) noexcept;
  [[nodiscard]] static std::uint32_t htm_chaos_per_million() noexcept;

 private:
  struct ReadEntry {
    const Orec* orec;
    OrecWord seen;  // unlocked orec word observed at read time
  };
  struct LockEntry {
    Orec* orec;
    OrecWord prior;  // unlocked word replaced by our lock
  };
  struct UndoEntry {
    std::atomic<std::uint64_t>* addr;
    std::uint64_t old_value;
  };
  struct RedoEntry {
    std::atomic<std::uint64_t>* addr;
    std::uint64_t value;
  };

  // Backend-specific paths.
  [[nodiscard]] std::uint64_t read_optimistic(
      const std::atomic<std::uint64_t>* addr);
  void write_eager(std::atomic<std::uint64_t>* addr, std::uint64_t value);
  void write_lazy(std::atomic<std::uint64_t>* addr, std::uint64_t value);
  void commit_eager();
  void commit_lazy();
  void rollback() noexcept;

  // Try to advance start_time_ to the current clock after validating the
  // read set; returns false on conflict.
  [[nodiscard]] bool extend();
  [[nodiscard]] bool reads_valid() const noexcept;

  // Roll an injected asynchronous abort for HTM accesses (no-op when the
  // chaos rate is 0 or the backend is not HTM).
  void maybe_chaos_abort();

  [[nodiscard]] bool orec_locked_by_me(OrecWord w) const noexcept {
    return orec_is_locked(w) && orec_owner_slot(w) == slot_;
  }
  [[nodiscard]] LockEntry* find_lock(const Orec* o) noexcept;
  [[nodiscard]] RedoEntry* find_redo(
      const std::atomic<std::uint64_t>* addr) noexcept;

  void reset_logs() noexcept;
  void run_commit_handlers();
  void run_abort_handlers() noexcept;

  // Mark this thread visible-in-transaction for quiescence.
  void activity_begin() noexcept;
  void activity_end() noexcept;

  std::uint64_t slot_;
  TxState state_ = TxState::Idle;
  Backend backend_ = Backend::EagerSTM;
  std::uint32_t depth_ = 0;
  std::uint32_t saved_depth_ = 0;
  bool split_done_ = false;
  std::uint64_t start_time_ = 0;

  std::vector<ReadEntry> read_set_;
  std::vector<LockEntry> lock_set_;
  std::vector<UndoEntry> undo_log_;
  std::vector<RedoEntry> redo_log_;
  std::vector<std::function<void()>> commit_handlers_;
  std::vector<std::function<void()>> abort_handlers_;

  void announce_epoch() noexcept;

  // Even = no optimistic transaction in flight; odd = in flight.
  std::atomic<std::uint64_t> activity_{0};

  // Global epoch observed at the last begin (epoch reclamation).
  std::atomic<std::uint64_t> epoch_{0};

  Stats stats_;
};

// The process-wide epoch word (owned by the GC; announced by descriptors).
std::atomic<std::uint64_t>& gc_epoch_word() noexcept;

// Commit signal: a futex word bumped by every writing commit.  The retry
// mechanism sleeps on it; the waiter count lets committers skip the wake
// syscall when nobody waits.
std::atomic<std::uint32_t>& commit_signal_word() noexcept;
std::atomic<std::uint32_t>& retry_waiter_count() noexcept;

// The calling thread's descriptor (created and registered on first use).
TxDescriptor& descriptor() noexcept;

}  // namespace tmcv::tm
