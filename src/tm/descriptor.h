// Per-thread transaction descriptor: the engine behind tm::atomically.
//
// One descriptor exists per thread (thread_local).  It implements three
// optimistic backends over the same orec table and version clock:
//
//   EagerSTM -- the paper's "Westmere" configuration: GCC ml_wt stand-in.
//               Encounter-time locking, write-through with an undo log.
//   LazySTM  -- TL2-style redo logging: writes buffered, orecs acquired at
//               commit, write-back on success.  Exercises the paper's §4.2
//               redo-log discussion.
//   HTM      -- the paper's "Haswell" configuration: best-effort bounded
//               transactions.  Eager execution with hard capacity limits,
//               no timestamp extension (first conflict aborts), explicit
//               abort on syscall-like actions, and escalation to the serial
//               lock after a few attempts (RTM + lock-elision stand-in).
//
// plus the Serial state for irrevocable/relaxed transactions.
//
// Aborts are signalled by throwing TxAbort after the descriptor has rolled
// back; the retry loop lives in tm::atomically (api.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tm/algs/norec.h"
#include "tm/clock.h"
#include "tm/cm.h"
#include "tm/orec.h"
#include "tm/stats.h"
#include "util/assert.h"

namespace tmcv {
class BinarySemaphore;
}  // namespace tmcv

namespace tmcv::tm {

enum class Backend : std::uint8_t {
  EagerSTM,
  LazySTM,
  HTM,
  // Hybrid TM (the deployment real RTM systems use): a few hardware
  // attempts, then software transactions, then the serial lock.  Resolved
  // by the retry loop; the descriptor itself never runs in Hybrid state.
  Hybrid,
  // NOrec (Dalessandro/Spear/Scott): no ownership records at all.  Reads
  // are validated by value against a single global commit counter; writes
  // buffer in the redo log and write back while holding the counter.
  // Appended after Hybrid so the numeric values of the orec backends (and
  // every committed bench JSON that names them) stay stable.
  NOrec,
};

// Number of Backend enum values (sized for the per-backend stats matrix).
inline constexpr std::size_t kBackendCount = 5;

[[nodiscard]] const char* to_string(Backend b) noexcept;

// Lowercase flag/metrics label ("eager", "lazy", "htm", "hybrid", "norec").
[[nodiscard]] const char* backend_label(Backend b) noexcept;

// Parse a lowercase label back to a Backend; false on unknown input.
// ("auto" is not a Backend -- callers handle it before parsing.)
[[nodiscard]] bool backend_from_label(const char* s, Backend& out) noexcept;

namespace algs {
struct AlgMethods;  // per-backend method table (tm/algs/policy.h)
}  // namespace algs

// TxAbort (the abort token) lives in tm/cm.h alongside the attempt budgets
// and the contention-management policy.

enum class TxState : std::uint8_t { Idle, Optimistic, Serial };

class TxDescriptor {
 public:
  TxDescriptor();
  ~TxDescriptor() = default;

  TxDescriptor(const TxDescriptor&) = delete;
  TxDescriptor& operator=(const TxDescriptor&) = delete;

  // Descriptors are pooled, never destroyed while the process runs: the
  // serial lock's quiescence scan and the epoch collector dereference other
  // threads' descriptors through the registry, so their storage must stay
  // valid.  attach/detach bind a pooled descriptor to the current thread.
  void attach();
  void detach();

  // ---- lifecycle (driven by tm::atomically / tm::irrevocably) ----

  [[nodiscard]] TxState state() const noexcept { return state_; }
  [[nodiscard]] bool in_txn() const noexcept { return state_ != TxState::Idle; }
  [[nodiscard]] Backend backend() const noexcept { return backend_; }
  [[nodiscard]] std::uint32_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::uint64_t slot() const noexcept { return slot_; }

  // Begin a top-level optimistic transaction (waits out any serial section).
  void begin_top(Backend b, std::uint32_t depth = 1);

  // Flat nesting bookkeeping for nested atomically() blocks.
  void push_nested() noexcept { ++depth_; }
  void pop_nested() noexcept {
    TMCV_DEBUG_ASSERT(depth_ > 1);
    --depth_;
  }

  // Commit the top-level transaction (validate, publish, run handlers).
  // Throws TxAbort if validation fails (after rolling back).
  void commit_top();

  // Roll back and throw TxAbort (optimistic transactions only).
  [[noreturn]] void abort_restart(TxAbort::Reason reason);

  // Harris-style retry (paper §6/§7): validate the snapshot, roll back,
  // and throw a RetryWait abort carrying the current commit-signal value;
  // the retry loop sleeps until some writing commit bumps the signal, then
  // re-runs the closure.  Coarse (any commit wakes) but lost-wakeup-free:
  // the signal is observed before validation, so no commit that could have
  // changed the predicate is missed.
  [[noreturn]] void retry_and_wait();

  // Called by the retry loop after catching TxAbort: bookkeeping only (the
  // throwing path already rolled back).
  void after_abort() noexcept {}

  // ---- serial / irrevocable ----

  void begin_serial(std::uint32_t depth = 1);
  void commit_serial();

  // ---- early commit & split transactions (WAIT support, paper §3.2/§4.2) --

  // ENDSYNCBLOCK inside a transaction: commit *now*, at any depth.  Saves the
  // depth so the continuation can be resumed at the same nesting level.
  // Throws TxAbort if the commit-time validation fails (the enclosing
  // atomically retries the whole body, which is correct: nothing published).
  void end_sync_block();

  // BEGINSYNCBLOCK for the continuation: a fresh transaction at the saved
  // depth.  `irrevocable` selects the §4.3 "run the continuation
  // irrevocably" mode that permits the traditional (non-CPS) interface.
  void begin_sync_block(bool irrevocable);

  [[nodiscard]] std::uint32_t saved_depth() const noexcept {
    return saved_depth_;
  }

  // Split-completion protocol: when a CPS wait fully handles the second half
  // itself, it marks the split done; commit_top then becomes a no-op once.
  void mark_split_done() noexcept { split_done_ = true; }
  [[nodiscard]] bool split_done() const noexcept { return split_done_; }
  void clear_split_done() noexcept { split_done_ = false; }

  // ---- data access ----

  // Defined inline below: the optimistic-read fast path (orec probe, value
  // load, recheck, dedup-filter hit) compiles into the caller; everything
  // else tail-calls the out-of-line protocol.
  [[nodiscard]] std::uint64_t read_word(const std::atomic<std::uint64_t>* addr);
  void write_word(std::atomic<std::uint64_t>* addr, std::uint64_t value);

  // ---- handlers (REGISTERHANDLER of Algorithms 5/6) ----

  // Deferred until after the outermost commit; discarded on abort.  Runs
  // immediately when no transaction is active.
  void on_commit(std::function<void()> fn);

  // Run if the transaction aborts (compensation); discarded on commit.
  void on_abort(std::function<void()> fn);

  // Allocation-free handler registration: a plain function pointer plus a
  // context pointer, kept in fixed inline slots.  The condvar wait paths
  // register exactly one handler per wait, and a std::function whose capture
  // exceeds the small-buffer limit heap-allocates on every registration --
  // measurable on the wait fast path.  The first kInlineHandlerSlots
  // handlers of each kind stay inline; overflow silently degrades to the
  // std::function path.  Inline handlers run before any std::function
  // handlers of the same kind (registration order is preserved within each
  // tier, not across tiers).
  using HandlerFn = void (*)(void*);
  void on_commit_fn(HandlerFn fn, void* ctx);
  void on_abort_fn(HandlerFn fn, void* ctx);

  static constexpr std::size_t kInlineHandlerSlots = 4;

  // ---- batched wakeups ----
  //
  // Queue a semaphore post for the outermost commit.  The batch is a plain
  // per-descriptor vector (reused across transactions: no allocation in
  // steady state, no std::function) flushed with one coalesced
  // BinarySemaphore::post_batch after publication; a rollback clears it, so
  // a discarded notify releases nothing.  Posts immediately when no
  // transaction is active.  This is the allocation-free fast path behind
  // CondVar::notify_{one,n,all,best}.
  void defer_wake(BinarySemaphore* sem);

  // Abort if executing inside a hardware transaction: models the fact that a
  // syscall (futex wait/wake) inside RTM aborts the transaction (§3.2).
  void syscall_fence();

  // ---- quiescence (used by SerialLock) ----

  [[nodiscard]] std::uint64_t activity() const noexcept {
    return activity_.load(std::memory_order_seq_cst);
  }

  // ---- epoch GC support (see tm/epoch.h) ----

  [[nodiscard]] std::uint64_t announced_epoch() const noexcept {
    return epoch_.load(std::memory_order_seq_cst);
  }

  // ---- stats & contention management ----
  Stats& stats() noexcept { return stats_; }
  ContentionManager& cm() noexcept { return cm_; }

  // ---- conflict attribution (obs/attribution.h) ----
  //
  // The TMCV_TXN_SITE macro publishes an interned site id here; abort paths
  // read the *attacker's* site through the registry to build (victim,
  // attacker) conflict pairs.  The store is relaxed and the cross-thread
  // read racy-but-approximate by design: the owner may have moved on by the
  // time the victim looks, in which case the victim attributes to whatever
  // transaction the attacker runs now (or site 0 once idle).  Cleared by
  // begin_top so a label never outlives its transaction.
  void set_txn_site(std::uint16_t site) noexcept {
    attr_site_.store(site, std::memory_order_relaxed);
  }
  // Library-internal labels (condvar queue ops) must not stomp a user label
  // on an ambient transaction: set only when unlabeled.
  void set_txn_site_hint(std::uint16_t site) noexcept {
    if (attr_site_.load(std::memory_order_relaxed) == 0)
      attr_site_.store(site, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint16_t txn_site() const noexcept {
    return attr_site_.load(std::memory_order_relaxed);
  }

  // Jittered backoff between optimistic retries (the one tuned policy, via
  // the contention manager), with stats/obs accounting.
  void backoff_for_retry() noexcept;

  // HTM emulation capacities (exposed for tests/benchmarks).
  static constexpr std::size_t kHtmReadCapacity = 1024;
  static constexpr std::size_t kHtmWriteCapacity = 64;

  // Chaos injection for the HTM emulation: real hardware transactions
  // abort asynchronously (timer interrupts, cache evictions, TLB misses);
  // setting a nonzero rate makes every HTM data access abort with
  // probability rate/1e6, exercising fallback robustness.  0 disables.
  static void set_htm_chaos_per_million(std::uint32_t rate) noexcept;
  [[nodiscard]] static std::uint32_t htm_chaos_per_million() noexcept;

  // The per-backend method table (tm/algs/policy.h).  A static member so
  // the table builder in algs/policy.cpp can form pointers to the private
  // backend methods below without a friend zoo.
  [[nodiscard]] static const algs::AlgMethods& alg_methods(Backend b) noexcept;

 private:
  struct ReadEntry {
    const Orec* orec;
    OrecWord seen;  // unlocked orec word observed at read time
  };
  struct LockEntry {
    Orec* orec;
    OrecWord prior;  // unlocked word replaced by our lock
  };
  struct UndoEntry {
    std::atomic<std::uint64_t>* addr;
    std::uint64_t old_value;
  };
  struct RedoEntry {
    std::atomic<std::uint64_t>* addr;
    std::uint64_t value;
  };
  // NOrec read log: value-based, not version-based.  Revalidation re-reads
  // every address and compares values, so a stripe-aliasing dedup filter
  // does not apply (two addresses in one stripe hold different values).
  struct NorecReadEntry {
    const std::atomic<std::uint64_t>* addr;
    std::uint64_t value;
  };

  // ---- read-set dedup filter ----
  //
  // read_optimistic logs each orec stripe (almost always) once per
  // transaction, so the read set is O(stripes) instead of O(reads) and
  // validation/extension revalidate a stripe once instead of per read.
  // Membership is decided by a direct-mapped tag cache keyed by orec index.
  // A tag packs the 16-bit orec index with the low 48 bits of log_epoch_
  // into one word, so a probe is a single compare, stale entries (from any
  // earlier transaction) can never match, and the whole cache is
  // invalidated by bumping log_epoch_ -- never a memset.
  //
  // The note path (note_read below) is deliberately BRANCH-FREE: hit/miss
  // is data-dependent and mispredicts heavily if branched on (measured ~2x
  // on the read fast path), so the filter slot is overwritten
  // unconditionally, the log append writes unconditionally into reserved
  // slack, and the end pointer advances by !hit.  (A 2-way MRU variant was
  // measured ~20% slower end-to-end: the cmov chain and second way's
  // load/store cost more than the aliasing they prevent.)  The price is
  // approximate dedup: when two live stripes alias one slot their reads
  // re-append on each alternation, and duplicate read-set entries are
  // benign -- they just get validated twice, exactly as every read did
  // before dedup.  There is no scan or Bloom fallback: a miss costs
  // nothing beyond keeping the already-written slack entry.
  static constexpr std::size_t kReadFilterSlots = 512;  // 4 KiB
  static constexpr std::uint64_t kFilterEpochMask = (1ull << 48) - 1;

  // Branch-free dedup note + append (see the filter comment above).
  void note_read(const Orec* o, OrecWord seen, std::uint64_t idx) noexcept {
    const std::uint64_t tag = (idx << 48) | epoch_tag_;
    std::uint64_t& slot = read_filter_[idx & (kReadFilterSlots - 1)];
    const bool hit = slot == tag;
    slot = tag;
    stats_.read_dedup_hits += hit;
    if (rs_end_ == rs_cap_) [[unlikely]] read_set_grow();
    rs_end_->orec = o;  // unconditional store into reserved slack;
    rs_end_->seen = seen;
    rs_end_ += !hit;  // ...kept only on a miss
  }

  // Doubles the read-set buffer (cold).
  void read_set_grow();

  // Non-optimistic reads (Idle / Serial).
  [[nodiscard]] std::uint64_t read_word_slow(
      const std::atomic<std::uint64_t>* addr);

  // ---- redo-log hash index ----
  //
  // Open-addressed, inline-storage map from a key pointer to a log index,
  // making find_redo O(1) for large write sets (LazySTM read-after-write
  // was O(n^2)).  Small write sets never build it: find_redo scans the log
  // directly until it outgrows kRedoIndexThreshold entries -- a handful of
  // contiguous compares beats per-write hash maintenance.  Slots
  // are invalidated wholesale by epoch stamping: a slot belongs to the
  // current transaction iff its stamp equals the descriptor's log_epoch_,
  // so clearing between transactions is a single counter increment, never a
  // memset.  Entries are never deleted within a transaction (logs only
  // grow), so probe chains stay valid; growth rehashes live slots.
  class LogIndex {
   public:
    static constexpr std::uint32_t kNpos = ~0u;

    void reset(std::uint64_t epoch) noexcept {
      epoch_ = epoch;
      live_ = 0;
    }

    [[nodiscard]] std::uint32_t find(const void* key) const noexcept {
      if (slots_.empty()) return kNpos;
      for (std::uint32_t h = hash(key) & mask_;; h = (h + 1) & mask_) {
        const Slot& s = slots_[h];
        if (s.stamp != epoch_) return kNpos;  // empty for this transaction
        if (s.key == key) return s.idx;
      }
    }

    // Insert or overwrite: the redo log is append-only (repeated writes to
    // one word coexist in it), so an index hit must be redirected at the
    // newest entry.  Returns true when the table grew (so callers can count
    // rehashes).
    bool upsert(const void* key, std::uint32_t idx) {
      bool grew = false;
      if (slots_.empty()) {
        grow(kInitialSlots);
        grew = true;
      } else if ((live_ + 1) * 4 > (mask_ + 1) * 3) {  // load factor 3/4
        grow((mask_ + 1) * 2);
        grew = true;
      }
      for (std::uint32_t h = hash(key) & mask_;; h = (h + 1) & mask_) {
        Slot& s = slots_[h];
        if (s.stamp != epoch_) {
          s = Slot{key, idx, epoch_};
          ++live_;
          return grew;
        }
        if (s.key == key) {
          s.idx = idx;
          return grew;
        }
      }
    }

   private:
    struct Slot {
      const void* key;
      std::uint32_t idx;
      std::uint64_t stamp;
    };
    static constexpr std::uint32_t kInitialSlots = 64;

    [[nodiscard]] static std::uint32_t hash(const void* key) noexcept {
      const auto bits = reinterpret_cast<std::uintptr_t>(key) >> 3;
      return static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(bits) * 0x9e3779b97f4a7c15ULL) >> 32);
    }

    void place(const void* key, std::uint32_t idx) noexcept {
      std::uint32_t h = hash(key) & mask_;
      while (slots_[h].stamp == epoch_) h = (h + 1) & mask_;
      slots_[h] = Slot{key, idx, epoch_};
    }

    void grow(std::uint32_t target) {
      std::vector<Slot> old = std::move(slots_);
      slots_.assign(target, Slot{nullptr, 0, 0});
      mask_ = target - 1;
      for (const Slot& s : old)
        if (s.stamp == epoch_) place(s.key, s.idx);
    }

    std::vector<Slot> slots_;
    std::uint32_t mask_ = 0;
    std::uint32_t live_ = 0;
    std::uint64_t epoch_ = 0;
  };

  // Backend-specific paths.  The write/commit/validate members are reached
  // through the per-backend method table (alg_, set by begin_top); the
  // bodies live in tm/algs/{orec_eager,orec_lazy,norec}.cpp.
  [[nodiscard]] std::uint64_t read_optimistic(
      const std::atomic<std::uint64_t>* addr);
  void write_eager(std::atomic<std::uint64_t>* addr, std::uint64_t value);
  void write_lazy(std::atomic<std::uint64_t>* addr, std::uint64_t value);
  void commit_eager();
  void commit_lazy();
  void commit_norec();
  void rollback() noexcept;

  // NOrec slow read: the counter moved since the last snapshot, so
  // revalidate the value log and retry the read at the new snapshot.
  [[nodiscard]] std::uint64_t read_norec_slow(
      const std::atomic<std::uint64_t>* addr);

  // NOrec revalidation: waits out any in-flight write-back, re-reads the
  // value log, and returns the new (even) snapshot -- or aborts on a value
  // mismatch.  Advances start_time_ to the returned snapshot.
  std::uint64_t norec_validate();

  // Try to advance start_time_ to the current clock after validating the
  // read set; returns false on conflict.
  [[nodiscard]] bool extend();

  // Generic snapshot validity (dispatches through alg_): the orec loop for
  // the eager/lazy/HTM family, a non-aborting value recheck for NOrec.
  [[nodiscard]] bool reads_valid() const noexcept;
  [[nodiscard]] bool reads_valid_orec() const noexcept;
  [[nodiscard]] bool reads_valid_norec() const noexcept;

  // Roll an injected asynchronous abort for HTM accesses (no-op when the
  // chaos rate is 0 or the backend is not HTM).
  void maybe_chaos_abort();

  [[nodiscard]] bool orec_locked_by_me(OrecWord w) const noexcept {
    return orec_is_locked(w) && orec_owner_slot(w) == slot_;
  }
  [[nodiscard]] RedoEntry* find_redo(
      const std::atomic<std::uint64_t>* addr) noexcept;

  // Index every live redo entry once the write set outgrows the linear scan.
  void build_redo_index();

  // Bounded, jittered wait for a locked orec during commit-time acquisition
  // (the "polite" alternative to abort-on-sight).  Returns the last word
  // observed -- still locked means the wait budget ran out.
  [[nodiscard]] OrecWord wait_for_orec_unlock(Orec& o) noexcept;

  // Append to the lock set (ownership itself is recorded in the orec word,
  // so no index is maintained).
  void note_lock(Orec* o, OrecWord prior);

  void reset_logs() noexcept;
  void run_commit_handlers();
  void run_abort_handlers() noexcept;

  // Start a fresh logging epoch: invalidates the read filter and both log
  // indexes in O(1) and clears the per-transaction Bloom signature.
  void new_log_epoch() noexcept;

  // Post and clear the wake batch (commit path); aborts just clear it.
  void flush_wake_batch() noexcept;

  // Mark this thread visible-in-transaction for quiescence.
  void activity_begin() noexcept;
  void activity_end() noexcept;

  std::uint64_t slot_;
  TxState state_ = TxState::Idle;
  Backend backend_ = Backend::EagerSTM;
  // Method table for backend_; set alongside it by begin_top.  Null only
  // before the first top-level transaction (no dispatch happens then).
  const algs::AlgMethods* alg_ = nullptr;
  std::uint32_t depth_ = 0;
  std::uint32_t saved_depth_ = 0;
  bool split_done_ = false;
  std::uint64_t start_time_ = 0;

  // Read set: a manually managed buffer instead of std::vector so note_read
  // can append branch-free (store into slack, conditionally advance).  The
  // invariant rs_end_ < rs_cap_ always leaves one writable slack slot.
  std::unique_ptr<ReadEntry[]> rs_storage_;
  ReadEntry* rs_base_ = nullptr;
  ReadEntry* rs_end_ = nullptr;
  ReadEntry* rs_cap_ = nullptr;

  std::vector<LockEntry> lock_set_;
  std::vector<UndoEntry> undo_log_;
  std::vector<RedoEntry> redo_log_;
  std::vector<NorecReadEntry> norec_reads_;
  // Commit-time acquisition scratch: the write set's orecs, deduped and
  // sorted into a global acquisition order (reused across transactions).
  std::vector<Orec*> acquire_scratch_;
  std::vector<std::function<void()>> commit_handlers_;
  std::vector<std::function<void()>> abort_handlers_;
  // Inline POD handler slots (see on_commit_fn): cleared on both commit and
  // abort, drained before the std::function vectors above.
  struct InlineHandler {
    HandlerFn fn;
    void* ctx;
  };
  InlineHandler commit_fns_[kInlineHandlerSlots];
  InlineHandler abort_fns_[kInlineHandlerSlots];
  std::size_t commit_fn_count_ = 0;
  std::size_t abort_fn_count_ = 0;
  std::vector<BinarySemaphore*> wake_batch_;

  // Dedup filter + log-index state (see the comments above).
  // log_epoch_ starts at 0 and is bumped before every top-level transaction,
  // so zero-initialized tags are never mistaken for live entries.
  // epoch_tag_ caches log_epoch_ & kFilterEpochMask so the per-read tag is
  // one shift and one OR.
  std::uint64_t read_filter_[kReadFilterSlots] = {};
  std::uint64_t log_epoch_ = 0;
  std::uint64_t epoch_tag_ = 0;
  LogIndex redo_index_;
  // find_redo scans the log linearly until it holds this many entries, then
  // builds redo_index_ once and switches to O(1) lookups.
  static constexpr std::size_t kRedoIndexThreshold = 16;
  // Commit-time acquisition walks the log directly (duplicates skipped by
  // the own-lock check) until the write set is this large; beyond it the
  // stripes are deduped and sorted into a global acquisition order first.
  static constexpr std::size_t kSortedAcquireThreshold = 64;
  bool redo_indexed_ = false;

  // HTM read footprint for the current attempt.  Counted per instrumented
  // read (pre-dedup): the emulated capacity models a footprint-limited
  // hardware buffer, and must not widen just because the software read set
  // got denser.
  std::size_t htm_reads_ = 0;

  void announce_epoch() noexcept;

  // Even = no optimistic transaction in flight; odd = in flight.
  std::atomic<std::uint64_t> activity_{0};

  // Global epoch observed at the last begin (epoch reclamation).
  std::atomic<std::uint64_t> epoch_{0};

  // Observability: TscClock ticks at the current attempt's begin (0 when
  // the obs layer is off).  Consumed by the commit/abort hooks to produce
  // txn duration histograms and trace events (src/obs).
  std::uint64_t txn_begin_ticks_ = 0;

  // Conflict attribution: the culprit orec noted by whichever detection
  // path fires last before an abort (stripe index + the owner slot encoded
  // in the locked word, or kNoConflictOrec when the culprit was unlocked /
  // unknown).  abort_restart consumes and clears both.  `mutable` because
  // reads_valid() is const but is a detection path.
  static constexpr std::uint64_t kNoConflictOrec = ~0ull;
  mutable std::uint64_t attr_stripe_ = kNoConflictOrec;
  mutable std::uint64_t attr_owner_slot_ = kNoConflictOrec;

  // Notes the orec a conflict was just detected on.  Callable unguarded
  // (contains no obs references); the body still compiles away with tracing
  // off so the abort paths stay byte-identical to the untraced build.
  void note_conflict_orec(const Orec& o, OrecWord w) const noexcept {
#if TMCV_TRACE
    attr_stripe_ = orec_index(o);
    attr_owner_slot_ = orec_is_locked(w) ? orec_owner_slot(w) : kNoConflictOrec;
#else
    (void)o;
    (void)w;
#endif
  }

  // Interned TMCV_TXN_SITE id for the transaction in flight (0 =
  // unattributed).  Atomic because abort paths of *other* threads read it
  // through the registry to name their attacker.
  std::atomic<std::uint16_t> attr_site_{0};

  Stats stats_;
  ContentionManager cm_;
};

inline TxDescriptor::RedoEntry* TxDescriptor::find_redo(
    const std::atomic<std::uint64_t>* addr) noexcept {
  if (!redo_indexed_) {
    // Small write set: scan newest-first (read-after-write usually targets
    // a recent store; entries are unique per address).
    for (auto it = redo_log_.rbegin(); it != redo_log_.rend(); ++it)
      if (it->addr == addr) return &*it;
    return nullptr;
  }
  const std::uint32_t i = redo_index_.find(addr);
  return i == LogIndex::kNpos ? nullptr : &redo_log_[i];
}

// The read fast path.  Straight-line for the overwhelmingly common case (an
// unlocked, in-snapshot stripe already noted in the dedup filter): one orec
// probe, the value load, the recheck, one filter compare.  Anything unusual
// -- locked stripe, snapshot extension, HTM accounting, filter miss, Serial
// or Idle context -- leaves through an out-of-line call.
inline std::uint64_t TxDescriptor::read_word(
    const std::atomic<std::uint64_t>* addr) {
  if (state_ != TxState::Optimistic) [[unlikely]]
    return read_word_slow(addr);
  if (backend_ != Backend::EagerSTM) [[unlikely]] {
    // HTM models chaos aborts and a footprint cap on every read: keep the
    // whole protocol out-of-line.
    if (backend_ == Backend::HTM) return read_optimistic(addr);
    if (backend_ == Backend::NOrec) {
      // NOrec: read-after-write from the redo log, otherwise a plain value
      // load that is consistent iff the global counter still matches the
      // snapshot -- no orec probe, no recheck, no stripe hashing.
      if (!redo_log_.empty())
        if (const RedoEntry* e = find_redo(addr)) return e->value;
      const std::uint64_t value = addr->load(std::memory_order_acquire);
      if (algs::norec_clock().load(std::memory_order_acquire) ==
          start_time_) [[likely]] {
        ++stats_.reads;
        norec_reads_.push_back({addr, value});
        return value;
      }
      return read_norec_slow(addr);
    }
    // LazySTM: reads-after-writes come from the redo log.
    if (const RedoEntry* e = find_redo(addr)) return e->value;
  }
  // Inline orec_for so the stripe index is computed once and shared between
  // the orec probe and the dedup filter.
  const auto bits = reinterpret_cast<std::uintptr_t>(addr) >> 3;
  const std::uint64_t idx =
      (static_cast<std::uint64_t>(bits) * 0x9e3779b97f4a7c15ULL) >>
      (64 - kOrecCountLog2);
  const Orec& o = detail::g_orecs[idx];
  const OrecWord seen = o.load(std::memory_order_acquire);
  const std::uint64_t value = addr->load(std::memory_order_acquire);
  if (orec_is_locked(seen) || o.load(std::memory_order_acquire) != seen ||
      orec_version(seen) > start_time_) [[unlikely]]
    return read_optimistic(addr);  // full protocol: own locks, extension...
  ++stats_.reads;
  // A filter hit skips the append: the logged word still matches the
  // current one, since any commit to this stripe after the first read
  // either fails the version check above or fails the extension's
  // revalidation -- skipping the duplicate entry loses no validation.
  note_read(&o, seen, idx);
  return value;
}

// The process-wide epoch word (owned by the GC; announced by descriptors).
std::atomic<std::uint64_t>& gc_epoch_word() noexcept;

// Commit signal: a futex word bumped by every writing commit.  The retry
// mechanism sleeps on it; the waiter count lets committers skip the wake
// syscall when nobody waits.
std::atomic<std::uint32_t>& commit_signal_word() noexcept;
std::atomic<std::uint32_t>& retry_waiter_count() noexcept;

// Announce a writing commit to any retry-parked transactions (bump the
// signal, wake sleepers).  Called by every publishing commit path,
// including the backend bodies in tm/algs/.
void bump_commit_signal() noexcept;

// The calling thread's descriptor (created and registered on first use).
// The common case inlines to one thread-local pointer load: attach/detach
// keep the cached pointer in sync with the pooled descriptor's lifetime.
namespace detail {
extern thread_local TxDescriptor* tls_descriptor;
}  // namespace detail

[[nodiscard]] TxDescriptor& descriptor_slow() noexcept;

[[nodiscard]] inline TxDescriptor& descriptor() noexcept {
  TxDescriptor* d = detail::tls_descriptor;
  if (d != nullptr) [[likely]]
    return *d;
  return descriptor_slow();
}

}  // namespace tmcv::tm
