// Contention management: the policy layer between an abort and the next
// attempt.
//
// Three cooperating mechanisms (all per-descriptor unless noted):
//
//   * Jittered exponential backoff between optimistic retries (one tuned
//     policy -- tmcv::Backoff -- shared with every other spin site).
//   * Conflict-streak escalation (karma/greedy-lite): after K *consecutive*
//     conflict aborts with no intervening commit, the transaction takes the
//     serial-irrevocable lock instead of burning its whole retry budget.
//     Only genuine conflicts feed the streak -- Explicit and RetryWait
//     aborts are user-directed, Capacity/Syscall are handled by the HTM
//     hard-fail triage -- so waiting or self-aborting closures never
//     escalate spuriously.
//   * HTM serial-fallback hysteresis (process-wide): when hardware attempts
//     keep falling back, every thread's hardware budget shrinks (8 -> 4 ->
//     2 -> 1) so the herd stops burning doomed attempts in front of an
//     already-held serial lock (the "lemming effect"); sustained hardware
//     commits restore it.
//
// This header also owns TxAbort (the abort token thrown to the retry loop)
// and the attempt budgets, so the descriptor, the retry loop and the policy
// knobs agree on one vocabulary without an include cycle.
#pragma once

#include <cstdint>

#include "util/backoff.h"
#include "util/rng.h"

namespace tmcv::tm {

// Thrown (after rollback) to unwind to the retry loop.  User code must not
// swallow it; tm::atomically rethrows anything else after aborting.
struct TxAbort {
  enum class Reason : std::uint8_t {
    Conflict,
    Capacity,
    Syscall,
    Explicit,
    RetryWait,  // Harris-style retry: sleep until some commit, then re-run
  };
  Reason reason = Reason::Conflict;
  // For RetryWait: the commit-signal value observed before aborting (the
  // retry loop sleeps until the signal moves past it).
  std::uint64_t retry_signal = 0;
};

// Retry budgets before escalating to the serial lock.
inline constexpr int kStmAttemptsBeforeSerial = 64;
inline constexpr int kHtmAttemptsBeforeSerial = 8;

// ---- policy knobs (process-wide; set between phases, read on abort paths) --

// Consecutive conflict aborts before a descriptor escalates to the serial
// lock (clamped to >= 1).  Default 32 -- half the STM attempt budget: low
// enough to cut doomed retry storms short, high enough that the (globally
// quiescing, so expensive) serial drain stays rare on oversubscribed boxes.
void cm_set_conflict_streak_limit(std::uint32_t k) noexcept;
[[nodiscard]] std::uint32_t cm_conflict_streak_limit() noexcept;

// Bounded polite-wait rounds on a locked orec during commit-time acquisition
// before declaring a conflict (0 restores abort-on-sight).  Default 8.
void cm_set_orec_wait_rounds(std::uint32_t rounds) noexcept;
[[nodiscard]] std::uint32_t cm_orec_wait_rounds() noexcept;

// Attribution hook: a transaction labeled `site` (obs/attribution.h; 0 =
// unattributed) escalated to the serial lock.  Recorded alongside the
// abort-reason breakdown so TUNING's cm_set_conflict_streak_limit guidance
// can point at which call sites escalate.  Compiles to nothing with
// TMCV_TRACE=0; always callable (api.h calls it unconditionally).
void cm_note_serial_escalation(std::uint16_t site) noexcept;

// ---- HTM serial-fallback hysteresis (anti-lemming) ----

// Current hardware attempt budget: kHtmAttemptsBeforeSerial shifted down by
// the global fallback pressure (floor 1).
[[nodiscard]] int htm_attempt_budget() noexcept;

// A hardware path gave up (fell back to software or the serial lock).
void note_htm_fallback() noexcept;

// A hardware transaction committed; sustained success decays the pressure.
void note_htm_commit() noexcept;

// Drop all fallback pressure (called from tm::stats_reset so benchmark
// phases and tests start from the full hardware budget).
void cm_reset_htm_hysteresis() noexcept;

// Per-descriptor adaptive state.  Not thread-safe; owned by one descriptor.
class ContentionManager {
 public:
  // Record an abort that unwound to the retry loop.
  void note_abort(TxAbort::Reason reason) noexcept {
    if (reason == TxAbort::Reason::Conflict) ++conflict_streak_;
  }

  // Any successful commit ends the streak and re-arms the backoff.
  void note_commit() noexcept {
    conflict_streak_ = 0;
    backoff_.reset();
  }

  [[nodiscard]] std::uint32_t conflict_streak() const noexcept {
    return conflict_streak_;
  }

  // Karma/greedy-lite: a long conflict streak means optimistic retry is
  // losing; take the serial lock and make guaranteed progress.
  [[nodiscard]] bool wants_serial() const noexcept {
    return conflict_streak_ >= cm_conflict_streak_limit();
  }

  // Jittered exponential backoff between retries; returns the spin count
  // (0 when it escalated to sched_yield).
  std::uint32_t backoff_before_retry() noexcept { return backoff_.wait(); }

  // Uniform draw in [0, bound): jitter source for the polite orec wait.
  [[nodiscard]] std::uint32_t jitter(std::uint32_t bound) noexcept {
    return static_cast<std::uint32_t>(rng_.next() % bound);
  }

 private:
  Backoff backoff_;  // self-seeded; escalates to sched_yield
  // Self-seeded like Backoff: distinct descriptors must draw distinct
  // jitter streams or the polite wait re-probes in lockstep.
  SplitMix64 rng_{static_cast<std::uint64_t>(
                      reinterpret_cast<std::uintptr_t>(this)) ^
                  0x9e3779b97f4a7c15ULL};
  std::uint32_t conflict_streak_ = 0;
};

}  // namespace tmcv::tm
