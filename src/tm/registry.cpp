#include "tm/registry.h"

#include "tm/descriptor.h"
#include "util/assert.h"
#include "util/backoff.h"

namespace tmcv::tm {

Registry& registry() noexcept {
  static Registry instance;
  return instance;
}

std::uint64_t Registry::register_thread(TxDescriptor* desc) noexcept {
  for (std::uint64_t slot = 0; slot < kMaxThreads; ++slot) {
    TxDescriptor* expected = nullptr;
    if (slots_[slot].compare_exchange_strong(expected, desc,
                                             std::memory_order_acq_rel)) {
      // Grow the scan bound monotonically.
      std::uint64_t hw = high_water_.load(std::memory_order_relaxed);
      while (hw < slot + 1 &&
             !high_water_.compare_exchange_weak(hw, slot + 1,
                                                std::memory_order_acq_rel)) {
      }
      return slot;
    }
  }
  TMCV_ASSERT_MSG(false, "more than kMaxThreads concurrent TM threads");
  return 0;  // unreachable
}

void Registry::unregister_thread(std::uint64_t slot,
                                 const Stats& stats) noexcept {
  // Fold this thread's counters before the slot is reused.
  Backoff backoff;
  while (retired_lock_.exchange(true, std::memory_order_acquire))
    backoff.wait();
  retired_ += stats;
  retired_lock_.store(false, std::memory_order_release);
  slots_[slot].store(nullptr, std::memory_order_release);
}

void Registry::fold_retired(Stats& into) const noexcept {
  Backoff backoff;
  while (retired_lock_.exchange(true, std::memory_order_acquire))
    backoff.wait();
  into += retired_;
  retired_lock_.store(false, std::memory_order_release);
}

void Registry::reset_retired() noexcept {
  Backoff backoff;
  while (retired_lock_.exchange(true, std::memory_order_acquire))
    backoff.wait();
  retired_ = Stats{};
  retired_lock_.store(false, std::memory_order_release);
}

}  // namespace tmcv::tm
