#include "tm/registry.h"

#include "tm/descriptor.h"
#include "util/assert.h"

namespace tmcv::tm {

Registry& registry() noexcept {
  static Registry instance;
  return instance;
}

std::uint64_t Registry::register_thread(TxDescriptor* desc) noexcept {
  for (std::uint64_t slot = 0; slot < kMaxThreads; ++slot) {
    TxDescriptor* expected = nullptr;
    if (slots_[slot].compare_exchange_strong(expected, desc,
                                             std::memory_order_acq_rel)) {
      // Grow the scan bound monotonically.
      std::uint64_t hw = high_water_.load(std::memory_order_relaxed);
      while (hw < slot + 1 &&
             !high_water_.compare_exchange_weak(hw, slot + 1,
                                                std::memory_order_acq_rel)) {
      }
      return slot;
    }
  }
  TMCV_ASSERT_MSG(false, "more than kMaxThreads concurrent TM threads");
  return 0;  // unreachable
}

void Registry::unregister_thread(std::uint64_t slot,
                                 const Stats& stats) noexcept {
  // Fold this thread's counters and clear the slot as one atomic step with
  // respect to snapshot_stats().  The old design released the retired lock
  // before clearing the slot, so a snapshot running in that window counted
  // the thread twice (once from the still-populated slot, once from the
  // accumulator).
  std::lock_guard<std::mutex> lock(stats_mu_);
  retired_ += stats;
  slots_[slot].store(nullptr, std::memory_order_release);
}

void Registry::snapshot_stats(Stats& into) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  const std::uint64_t n = high_water();
  for (std::uint64_t slot = 0; slot < n; ++slot) {
    if (TxDescriptor* desc = descriptor(slot)) into += desc->stats();
  }
  into += retired_;
}

void Registry::reset_stats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  const std::uint64_t n = high_water();
  for (std::uint64_t slot = 0; slot < n; ++slot) {
    if (TxDescriptor* desc = descriptor(slot)) desc->stats() = Stats{};
  }
  retired_ = Stats{};
}

}  // namespace tmcv::tm
