#include "tm/api.h"

#include <atomic>
#include <cstdlib>

#include "sync/futex.h"

namespace tmcv::tm {

namespace {

std::atomic<Backend> g_default_backend{Backend::EagerSTM};

// TMCV_DEFAULT_BACKEND=eager|lazy|htm|hybrid|norec seeds the process-wide
// default before main() (the CI matrix uses norec to run the whole test
// suite value-validated).  Fixed backends only: "auto" needs the controller
// thread, which must not start from a static initializer.  Unknown values
// are ignored -- a typo'd env var must not change TM semantics silently
// mid-fleet, and the benches print the effective backend anyway.
struct EnvBackendInit {
  EnvBackendInit() {
    const char* v = std::getenv("TMCV_DEFAULT_BACKEND");
    if (v == nullptr || *v == '\0') return;
    Backend b{};
    if (backend_from_label(v, b))
      g_default_backend.store(b, std::memory_order_release);
  }
};
EnvBackendInit g_env_backend_init;

}  // namespace

void set_default_backend(Backend b) noexcept {
  g_default_backend.store(b, std::memory_order_release);
}

Backend default_backend() noexcept {
  return g_default_backend.load(std::memory_order_acquire);
}

namespace detail {

void retry_sleep(std::uint32_t observed) noexcept {
  auto& waiters = retry_waiter_count();
  waiters.fetch_add(1, std::memory_order_seq_cst);
  // If the signal already moved, futex_wait returns immediately; otherwise
  // the next writing commit wakes us.  Either way the caller re-runs its
  // closure and re-evaluates the predicate.
  futex_wait(&commit_signal_word(), observed);
  waiters.fetch_sub(1, std::memory_order_seq_cst);
}

}  // namespace detail

}  // namespace tmcv::tm
