// tm::var<T>: a transactionally shared variable.
//
// All data accessed inside transactions must live in var<T> cells (word-based
// instrumentation, like a compiler would emit for every shared load/store).
// T must be trivially copyable and at most 8 bytes (pointers, integers,
// small structs); larger state composes from multiple cells or tm::array.
//
// Access rules:
//   load()/store()       -- instrumented: transactional inside a transaction,
//                           plain (with acquire/release) outside.
//   load_plain()/store_plain()
//                        -- never instrumented.  Only correct when the cell
//                           is privatized (e.g. a dequeued condvar node being
//                           re-initialized by its owner, WAIT line 1).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "tm/api.h"

namespace tmcv::tm {

namespace detail {

template <typename T>
std::uint64_t to_word(T value) noexcept {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "tm::var requires a trivially copyable type of at most 8 "
                "bytes; compose larger state from multiple cells");
  std::uint64_t word = 0;
  std::memcpy(&word, &value, sizeof(T));
  return word;
}

template <typename T>
T from_word(std::uint64_t word) noexcept {
  T value;
  std::memcpy(&value, &word, sizeof(T));
  return value;
}

}  // namespace detail

template <typename T>
class var {
 public:
  constexpr var() noexcept : word_(0) {}
  explicit var(T initial) noexcept : word_(detail::to_word(initial)) {}

  var(const var&) = delete;
  var& operator=(const var&) = delete;

  [[nodiscard]] T load() const {
    return detail::from_word<T>(descriptor().read_word(&word_));
  }

  void store(T value) {
    descriptor().write_word(&word_, detail::to_word(value));
  }

  // Privatized access; see header comment.
  [[nodiscard]] T load_plain() const noexcept {
    return detail::from_word<T>(word_.load(std::memory_order_acquire));
  }

  void store_plain(T value) noexcept {
    word_.store(detail::to_word(value), std::memory_order_release);
  }

  // The underlying word (tests poke orecs and aliasing through this).
  [[nodiscard]] const std::atomic<std::uint64_t>* word() const noexcept {
    return &word_;
  }

 private:
  mutable std::atomic<std::uint64_t> word_;
};

// Transactional storage for larger trivially-copyable types: the value is
// striped across 8-byte cells, each individually instrumented.  Loads are
// consistent despite spanning multiple words -- per-read validation plus
// commit-time validation guarantee the words belong to one atomic snapshot
// (a concurrent writer either conflicts or serializes entirely before/
// after).
template <typename T>
class box {
  static_assert(std::is_trivially_copyable_v<T>,
                "tm::box requires a trivially copyable type");
  static constexpr std::size_t kWords = (sizeof(T) + 7) / 8;

 public:
  constexpr box() noexcept = default;
  explicit box(const T& initial) noexcept { store_plain(initial); }

  box(const box&) = delete;
  box& operator=(const box&) = delete;

  [[nodiscard]] T load() const {
    std::uint64_t words[kWords];
    TxDescriptor& d = descriptor();
    for (std::size_t i = 0; i < kWords; ++i)
      words[i] = d.read_word(&cells_[i]);
    T value;
    std::memcpy(&value, words, sizeof(T));
    return value;
  }

  void store(const T& value) {
    std::uint64_t words[kWords] = {};
    std::memcpy(words, &value, sizeof(T));
    TxDescriptor& d = descriptor();
    for (std::size_t i = 0; i < kWords; ++i)
      d.write_word(&cells_[i], words[i]);
  }

  // Privatized access (single-owner phases only; no torn-read protection).
  [[nodiscard]] T load_plain() const noexcept {
    std::uint64_t words[kWords];
    for (std::size_t i = 0; i < kWords; ++i)
      words[i] = cells_[i].load(std::memory_order_acquire);
    T value;
    std::memcpy(&value, words, sizeof(T));
    return value;
  }

  void store_plain(const T& value) noexcept {
    std::uint64_t words[kWords] = {};
    std::memcpy(words, &value, sizeof(T));
    for (std::size_t i = 0; i < kWords; ++i)
      cells_[i].store(words[i], std::memory_order_release);
  }

 private:
  mutable std::atomic<std::uint64_t> cells_[kWords]{};
};

// Fixed-size array of transactional cells.
template <typename T, std::size_t N>
class array {
 public:
  [[nodiscard]] T load(std::size_t i) const { return cells_[i].load(); }
  void store(std::size_t i, T value) { cells_[i].store(value); }
  [[nodiscard]] var<T>& operator[](std::size_t i) noexcept {
    return cells_[i];
  }
  [[nodiscard]] const var<T>& operator[](std::size_t i) const noexcept {
    return cells_[i];
  }
  [[nodiscard]] static constexpr std::size_t size() noexcept { return N; }

 private:
  var<T> cells_[N];
};

}  // namespace tmcv::tm
