#include "tm/serial.h"

#include "sync/waitpoint.h"
#include "tm/descriptor.h"
#include "tm/registry.h"
#include "util/backoff.h"

namespace tmcv::tm {

void SerialLock::acquire(std::uint64_t self_slot) noexcept {
  // Phase 1: win the lock (even -> odd).
  Backoff backoff;
  for (;;) {
    std::uint64_t seq = seq_->load(std::memory_order_acquire);
    if ((seq & 1ull) == 0 &&
        seq_->compare_exchange_weak(seq, seq + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed))
      break;
    backoff.wait();
  }
  // Phase 2: drain every in-flight optimistic transaction.  New ones observe
  // the odd sequence at begin and hold off, so after this scan the serial
  // section runs truly alone (this is what serializes dedup's relaxed I/O
  // transactions in the paper's §5.4).
  Registry& reg = registry();
  const std::uint64_t n = reg.high_water();
  for (std::uint64_t slot = 0; slot < n; ++slot) {
    if (slot == self_slot) continue;
    const TxDescriptor* desc = reg.descriptor(slot);
    if (desc == nullptr || (desc->activity() & 1ull) == 0) continue;
    // Check-then-publish: only a slot we actually stall on is reported to
    // the wait-point registry (reason serial_quiesce, detail = the drained
    // slot, site = that transaction's label), so an uncontended serial
    // entry publishes nothing.
    WaitScope wp(WaitReason::kSerialQuiesce, desc, desc->txn_site(),
                 static_cast<std::uint32_t>(slot));
    Backoff drain;
    for (;;) {
      desc = reg.descriptor(slot);
      if (desc == nullptr || (desc->activity() & 1ull) == 0) break;
      drain.wait();
    }
  }
}

void SerialLock::release() noexcept {
  seq_->fetch_add(1, std::memory_order_seq_cst);  // odd -> even
}

void SerialLock::wait_until_free() const noexcept {
  if ((seq_->load(std::memory_order_acquire) & 1ull) == 0) return;
  WaitScope wp(WaitReason::kSerialLock, this);
  Backoff backoff;
  while ((seq_->load(std::memory_order_acquire) & 1ull) != 0) backoff.wait();
}

}  // namespace tmcv::tm
