// Thread registry: assigns each thread a small slot id (used in orec lock
// words) and exposes the set of live descriptors for quiescence waits and
// statistics aggregation.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "tm/stats.h"

namespace tmcv::tm {

class TxDescriptor;

inline constexpr std::uint64_t kMaxThreads = 512;

class Registry {
 public:
  // Claim a slot for `desc`; aborts the process if more than kMaxThreads
  // concurrent TM threads exist.
  std::uint64_t register_thread(TxDescriptor* desc) noexcept;

  // Release the slot and fold the thread's stats into the retired
  // accumulator.  The fold and the slot clear happen atomically with
  // respect to snapshot_stats(), so a concurrent snapshot sees the thread
  // either live (slot scan) or retired (accumulator) -- never both, never
  // neither.
  void unregister_thread(std::uint64_t slot, const Stats& stats) noexcept;

  // Descriptor in a slot, or nullptr.  Safe to call concurrently with
  // registration; callers must tolerate slots appearing/disappearing.
  [[nodiscard]] TxDescriptor* descriptor(std::uint64_t slot) const noexcept {
    return slots_[slot].load(std::memory_order_acquire);
  }

  // Upper bound on slots ever used (scan limit).
  [[nodiscard]] std::uint64_t high_water() const noexcept {
    return high_water_.load(std::memory_order_acquire);
  }

  // Fold every live descriptor's counters plus the retired accumulator
  // into `into`, under the same mutex unregister_thread holds across its
  // fold-and-clear.  Live counters are read while their owners may still
  // increment them (eventually-consistent per field); the live/retired
  // migration itself is exact.
  void snapshot_stats(Stats& into) const;

  // Zero every live descriptor's counters and the retired accumulator.
  // Assumes no transaction is in flight (documented contract of
  // stats_reset).
  void reset_stats();

 private:
  std::atomic<TxDescriptor*> slots_[kMaxThreads]{};
  std::atomic<std::uint64_t> high_water_{0};

  // Guards retired_ AND the retire transition (fold + slot clear) against
  // concurrent snapshots.  Cold path only: taken at thread exit and in
  // snapshot/reset, never per transaction.
  mutable std::mutex stats_mu_;
  Stats retired_{};
};

Registry& registry() noexcept;

}  // namespace tmcv::tm
