// Thread registry: assigns each thread a small slot id (used in orec lock
// words) and exposes the set of live descriptors for quiescence waits and
// statistics aggregation.
#pragma once

#include <atomic>
#include <cstdint>

#include "tm/stats.h"

namespace tmcv::tm {

class TxDescriptor;

inline constexpr std::uint64_t kMaxThreads = 512;

class Registry {
 public:
  // Claim a slot for `desc`; aborts the process if more than kMaxThreads
  // concurrent TM threads exist.
  std::uint64_t register_thread(TxDescriptor* desc) noexcept;

  // Release the slot and fold the thread's stats into the retired
  // accumulator.
  void unregister_thread(std::uint64_t slot, const Stats& stats) noexcept;

  // Descriptor in a slot, or nullptr.  Safe to call concurrently with
  // registration; callers must tolerate slots appearing/disappearing.
  [[nodiscard]] TxDescriptor* descriptor(std::uint64_t slot) const noexcept {
    return slots_[slot].load(std::memory_order_acquire);
  }

  // Upper bound on slots ever used (scan limit).
  [[nodiscard]] std::uint64_t high_water() const noexcept {
    return high_water_.load(std::memory_order_acquire);
  }

  // Stats support.
  void fold_retired(Stats& into) const noexcept;
  void reset_retired() noexcept;

 private:
  std::atomic<TxDescriptor*> slots_[kMaxThreads]{};
  std::atomic<std::uint64_t> high_water_{0};

  // Retired-thread stats, guarded by a tiny spin flag (cold path only).
  mutable std::atomic<bool> retired_lock_{false};
  Stats retired_{};
};

Registry& registry() noexcept;

}  // namespace tmcv::tm
