// The serial (irrevocable) lock.
//
// Purpose (paper §3.2 / §5.4): transactions that cannot roll back — relaxed
// transactions performing I/O, continuations run irrevocably after a WAIT,
// and the HTM fallback path — acquire this lock, drain all in-flight
// optimistic transactions, and then run with uninstrumented memory accesses.
// While it is held, no optimistic transaction may begin; this is precisely
// the "relaxed transactions cannot run in parallel with any other
// transactions" behaviour that makes dedup stop scaling in the paper.
//
// Representation: a sequence counter.  Even = free, odd = held.  Acquirers
// CAS even->odd; release stores even.  Optimistic transactions wait for an
// even value at begin.  Because acquisition also waits for quiescence of
// every active optimistic transaction, a serial section never overlaps any
// optimistic execution, so optimistic reads need no extra subscription.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/cacheline.h"

namespace tmcv::tm {

class SerialLock {
 public:
  // Block until the lock is free, acquire it, then block until every other
  // thread's optimistic transaction has finished.  `self_slot` is excluded
  // from the quiescence wait.
  void acquire(std::uint64_t self_slot) noexcept;

  void release() noexcept;

  [[nodiscard]] bool held() const noexcept {
    return (seq_->load(std::memory_order_acquire) & 1ull) != 0;
  }

  // Spin (with yield) until the lock is not held.  Called by optimistic
  // transactions at begin.
  void wait_until_free() const noexcept;

  [[nodiscard]] std::uint64_t sequence() const noexcept {
    return seq_->load(std::memory_order_acquire);
  }

 private:
  CacheAligned<std::atomic<std::uint64_t>> seq_;
};

SerialLock& serial_lock() noexcept;

}  // namespace tmcv::tm
