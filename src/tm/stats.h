// TM runtime statistics.
//
// Counters are accumulated per-descriptor without synchronization and folded
// into a process-wide snapshot on demand (and when a thread exits).  They
// power the benchmark reports and the dedup-anomaly diagnosis.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace tmcv::tm {

// Dimensions of the per-backend abort matrix below.  Kept as plain
// constants (not the Backend / TxAbort::Reason enums) so stats.h stays
// header-light; descriptor.cpp static_asserts they match the enums.
inline constexpr std::size_t kStatsBackends = 5;      // eager lazy htm hybrid norec
inline constexpr std::size_t kStatsAbortReasons = 5;  // conflict capacity syscall explicit retry_wait

// Label helpers for the matrix axes (exporters and tools).
[[nodiscard]] const char* stats_backend_label(std::size_t i) noexcept;
[[nodiscard]] const char* stats_abort_reason_label(std::size_t i) noexcept;

struct Stats {
  // The first four fields are the read/write fast-path counters: keep them
  // together so the per-access increments touch a single cache line.
  std::uint64_t reads = 0;               // instrumented word reads
  std::uint64_t read_dedup_hits = 0;     // reads coalesced into an existing
                                         // read-set entry (filter or scan)
  std::uint64_t read_dedup_appends = 0;  // read-set entries actually logged
  std::uint64_t writes = 0;              // instrumented word writes

  std::uint64_t commits = 0;           // outermost commits (any backend)
  std::uint64_t ro_commits = 0;        // read-only commits
  std::uint64_t aborts = 0;            // aborts + retries
  std::uint64_t extensions = 0;        // successful timestamp extensions
  std::uint64_t serial_commits = 0;    // irrevocable/relaxed sections
  std::uint64_t serial_fallbacks = 0;  // optimistic -> serial escalations
  std::uint64_t htm_capacity_aborts = 0;
  std::uint64_t htm_syscall_aborts = 0;
  std::uint64_t htm_chaos_aborts = 0;  // injected asynchronous aborts
  std::uint64_t handlers_run = 0;      // onCommit handlers executed

  // Abort-reason breakdown (sums to `aborts`).
  std::uint64_t aborts_conflict = 0;    // validation/acquisition conflicts
  std::uint64_t aborts_capacity = 0;    // HTM capacity overflow
  std::uint64_t aborts_syscall = 0;     // syscall fence in hardware
  std::uint64_t aborts_explicit = 0;    // user-directed retry_txn
  std::uint64_t aborts_retry_wait = 0;  // retry_wait self-aborts

  // Contention-management instrumentation.
  std::uint64_t clock_cas_reuses = 0;       // GV4 adopted (pass-on-failure)
                                            // commit timestamps
  std::uint64_t cm_waits = 0;               // polite waits on locked orecs
  std::uint64_t cm_backoffs = 0;            // inter-retry backoff episodes
  std::uint64_t cm_serial_escalations = 0;  // serial fallbacks forced by the
                                            // conflict-streak limit

  // Fast-path instrumentation (log index, wake batching).
  std::uint64_t log_index_rehashes = 0;  // redo/lock index growth events
  std::uint64_t handlers_registered = 0; // deferred onCommit handler allocs
  std::uint64_t handlers_inline = 0;     // handlers kept in inline POD slots
                                         // (registration without allocation)
  std::uint64_t deferred_wakes = 0;      // semaphores queued in a wake batch
  std::uint64_t wake_batches = 0;        // wake-batch flushes at commit

  // NOrec backend instrumentation.
  std::uint64_t norec_commits = 0;       // writing NOrec commits
  std::uint64_t norec_validations = 0;   // value-revalidation passes
  std::uint64_t norec_val_failures = 0;  // revalidations that found a change

  // Quiesced backend switches (tm::set_backend), counted on the switching
  // thread's descriptor.
  std::uint64_t backend_switches = 0;

  // Per-backend abort-reason matrix: aborts_by_backend[backend][reason],
  // axes labeled by stats_backend_label / stats_abort_reason_label.  NOT in
  // for_each_field (that visitor is the scalar single-source-of-truth);
  // the operators and exporters handle it explicitly.
  std::uint64_t aborts_by_backend[kStatsBackends][kStatsAbortReasons] = {};

  // Read-set dedup hit rate over all logged-or-coalesced reads (0 when no
  // instrumented reads ran).
  [[nodiscard]] double dedup_hit_rate() const noexcept {
    const std::uint64_t total = read_dedup_hits + read_dedup_appends;
    return total ? static_cast<double>(read_dedup_hits) /
                       static_cast<double>(total)
                 : 0.0;
  }

  // Visit every counter as (name, member pointer): single source of truth
  // for the arithmetic below and the metrics exporters (src/obs).
  template <typename Fn>
  static constexpr void for_each_field(Fn&& fn) {
    fn("reads", &Stats::reads);
    fn("read_dedup_hits", &Stats::read_dedup_hits);
    fn("read_dedup_appends", &Stats::read_dedup_appends);
    fn("writes", &Stats::writes);
    fn("commits", &Stats::commits);
    fn("ro_commits", &Stats::ro_commits);
    fn("aborts", &Stats::aborts);
    fn("extensions", &Stats::extensions);
    fn("serial_commits", &Stats::serial_commits);
    fn("serial_fallbacks", &Stats::serial_fallbacks);
    fn("htm_capacity_aborts", &Stats::htm_capacity_aborts);
    fn("htm_syscall_aborts", &Stats::htm_syscall_aborts);
    fn("htm_chaos_aborts", &Stats::htm_chaos_aborts);
    fn("handlers_run", &Stats::handlers_run);
    fn("aborts_conflict", &Stats::aborts_conflict);
    fn("aborts_capacity", &Stats::aborts_capacity);
    fn("aborts_syscall", &Stats::aborts_syscall);
    fn("aborts_explicit", &Stats::aborts_explicit);
    fn("aborts_retry_wait", &Stats::aborts_retry_wait);
    fn("clock_cas_reuses", &Stats::clock_cas_reuses);
    fn("cm_waits", &Stats::cm_waits);
    fn("cm_backoffs", &Stats::cm_backoffs);
    fn("cm_serial_escalations", &Stats::cm_serial_escalations);
    fn("log_index_rehashes", &Stats::log_index_rehashes);
    fn("handlers_registered", &Stats::handlers_registered);
    fn("handlers_inline", &Stats::handlers_inline);
    fn("deferred_wakes", &Stats::deferred_wakes);
    fn("wake_batches", &Stats::wake_batches);
    fn("norec_commits", &Stats::norec_commits);
    fn("norec_validations", &Stats::norec_validations);
    fn("norec_val_failures", &Stats::norec_val_failures);
    fn("backend_switches", &Stats::backend_switches);
  }

  Stats& operator+=(const Stats& o) noexcept;
  Stats& operator-=(const Stats& o) noexcept;  // delta vs earlier snapshot
  [[nodiscard]] std::string to_string() const;
};

// Fold all live descriptors' counters (plus retired threads') into one view.
// Safe to call while threads run and exit: the registry serializes the
// live->retired fold against this scan, so no thread is double-counted or
// lost (live counters themselves are read with eventual consistency).
[[nodiscard]] Stats stats_snapshot();

// Zero every live descriptor's counters and the retired accumulator.
void stats_reset();

}  // namespace tmcv::tm
