// TM runtime statistics.
//
// Counters are accumulated per-descriptor without synchronization and folded
// into a process-wide snapshot on demand (and when a thread exits).  They
// power the benchmark reports and the dedup-anomaly diagnosis.
#pragma once

#include <cstdint>
#include <string>

namespace tmcv::tm {

struct Stats {
  std::uint64_t commits = 0;           // outermost commits (any backend)
  std::uint64_t ro_commits = 0;        // read-only commits
  std::uint64_t aborts = 0;            // aborts + retries
  std::uint64_t reads = 0;             // instrumented word reads
  std::uint64_t writes = 0;            // instrumented word writes
  std::uint64_t extensions = 0;        // successful timestamp extensions
  std::uint64_t serial_commits = 0;    // irrevocable/relaxed sections
  std::uint64_t serial_fallbacks = 0;  // optimistic -> serial escalations
  std::uint64_t htm_capacity_aborts = 0;
  std::uint64_t htm_syscall_aborts = 0;
  std::uint64_t htm_chaos_aborts = 0;  // injected asynchronous aborts
  std::uint64_t handlers_run = 0;      // onCommit handlers executed

  Stats& operator+=(const Stats& o) noexcept;
  [[nodiscard]] std::string to_string() const;
};

// Fold all live descriptors' counters (plus retired threads') into one view.
[[nodiscard]] Stats stats_snapshot();

// Zero every live descriptor's counters and the retired accumulator.
void stats_reset();

}  // namespace tmcv::tm
