#include "tm/descriptor.h"

#include <algorithm>
#include <utility>

#include "obs/attribution.h"
#include "obs/hooks.h"
#include "sync/futex.h"
#include "sync/semaphore.h"
#include "tm/registry.h"
#include "tm/serial.h"
#include "util/backoff.h"
#include "util/cacheline.h"
#include "util/rng.h"

namespace tmcv::tm {

namespace {

// Initial log capacities: typical condvar transactions touch < 10 locations
// (paper §5.4), but application transactions can be larger.
constexpr std::size_t kInitialLogCapacity = 64;

VersionClock g_clock;
SerialLock g_serial;

}  // namespace

VersionClock& global_clock() noexcept { return g_clock; }
SerialLock& serial_lock() noexcept { return g_serial; }

const char* to_string(Backend b) noexcept {
  switch (b) {
    case Backend::EagerSTM:
      return "EagerSTM";
    case Backend::LazySTM:
      return "LazySTM";
    case Backend::HTM:
      return "HTM";
    case Backend::Hybrid:
      return "Hybrid";
  }
  return "?";
}

TxDescriptor::TxDescriptor() : slot_(0) {
  rs_storage_ = std::make_unique<ReadEntry[]>(kInitialLogCapacity);
  rs_base_ = rs_end_ = rs_storage_.get();
  rs_cap_ = rs_base_ + (kInitialLogCapacity - 1);  // one slack slot
  lock_set_.reserve(kInitialLogCapacity);
  undo_log_.reserve(kInitialLogCapacity);
  redo_log_.reserve(kInitialLogCapacity);
  wake_batch_.reserve(kInitialLogCapacity);
}

void TxDescriptor::attach() {
  slot_ = registry().register_thread(this);
  detail::tls_descriptor = this;
}

void TxDescriptor::detach() {
  TMCV_ASSERT_MSG(state_ == TxState::Idle,
                  "thread exited with an open transaction");
  detail::tls_descriptor = nullptr;
  registry().unregister_thread(slot_, stats_);
  stats_ = Stats{};
}

namespace {

// Descriptor pool: storage is recycled across threads but never freed, so
// cross-thread dereferences through the registry stay valid for the life
// of the process (quiescence scans, epoch collection).
std::atomic<bool> g_pool_lock{false};
std::vector<TxDescriptor*>& pool_storage() {
  static std::vector<TxDescriptor*> instance;
  return instance;
}

TxDescriptor* pool_acquire() {
  TxDescriptor* desc = nullptr;
  Backoff backoff;
  while (g_pool_lock.exchange(true, std::memory_order_acquire))
    backoff.wait();
  auto& pool = pool_storage();
  if (!pool.empty()) {
    desc = pool.back();
    pool.pop_back();
  }
  g_pool_lock.store(false, std::memory_order_release);
  if (desc == nullptr) desc = new TxDescriptor;  // intentionally immortal
  desc->attach();
  return desc;
}

void pool_release(TxDescriptor* desc) {
  desc->detach();
  Backoff backoff;
  while (g_pool_lock.exchange(true, std::memory_order_acquire))
    backoff.wait();
  pool_storage().push_back(desc);
  g_pool_lock.store(false, std::memory_order_release);
}

}  // namespace

namespace detail {
thread_local TxDescriptor* tls_descriptor = nullptr;
}  // namespace detail

TxDescriptor& descriptor_slow() noexcept {
  struct Holder {
    TxDescriptor* desc;
    Holder() : desc(pool_acquire()) {}
    ~Holder() { pool_release(desc); }
  };
  thread_local Holder holder;
  return *holder.desc;
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

namespace {

std::atomic<std::uint64_t> g_gc_epoch{1};
alignas(kCacheLine) std::atomic<std::uint32_t> g_commit_signal{0};
alignas(kCacheLine) std::atomic<std::uint32_t> g_retry_waiters{0};

// Announce a writing commit to any retry-parked transactions.
void bump_commit_signal() noexcept {
  g_commit_signal.fetch_add(1, std::memory_order_seq_cst);
  if (g_retry_waiters.load(std::memory_order_seq_cst) > 0)
    futex_wake(&g_commit_signal, -1);
}

}  // namespace

std::atomic<std::uint64_t>& gc_epoch_word() noexcept { return g_gc_epoch; }

std::atomic<std::uint32_t>& commit_signal_word() noexcept {
  return g_commit_signal;
}

std::atomic<std::uint32_t>& retry_waiter_count() noexcept {
  return g_retry_waiters;
}

void TxDescriptor::announce_epoch() noexcept {
  // The store needs no seq_cst fence (it was an xchg on the begin fast
  // path): if the collector reads this slot before the store lands it sees
  // the previous -- smaller -- announcement, which epoch.cpp's gc_collect
  // treats as conservatively stale (it only delays frees, never makes them
  // unsafe).  The seq_cst activity_ RMW preceding every announcement keeps
  // the begin/quiescence ordering intact.
  epoch_.store(g_gc_epoch.load(std::memory_order_seq_cst),
               std::memory_order_release);
}

void TxDescriptor::activity_begin() noexcept {
  activity_.fetch_add(1, std::memory_order_seq_cst);  // even -> odd
  announce_epoch();
}

void TxDescriptor::activity_end() noexcept {
  activity_.fetch_add(1, std::memory_order_seq_cst);  // odd -> even
}

void TxDescriptor::begin_top(Backend b, std::uint32_t depth) {
  TMCV_ASSERT_MSG(state_ == TxState::Idle, "begin_top inside a transaction");
  // Publish intent first, then check the serial lock: this ordering pairs
  // with SerialLock::acquire (seq-odd first, quiescence scan second) so a
  // serial section can never overlap an optimistic transaction.
  for (;;) {
    activity_begin();
    if (!g_serial.held()) break;
    activity_end();
    g_serial.wait_until_free();
  }
  state_ = TxState::Optimistic;
  backend_ = b;
  depth_ = depth;
  split_done_ = false;
  start_time_ = g_clock.now();
  new_log_epoch();
#if TMCV_TRACE
  txn_begin_ticks_ = obs::region_begin();
  // Attribution state is per-transaction: clear the site label (so one
  // never leaks into the next, unlabeled transaction) and any stale
  // conflict-orec note.
  attr_site_.store(0, std::memory_order_relaxed);
  attr_stripe_ = kNoConflictOrec;
  attr_owner_slot_ = kNoConflictOrec;
#endif
}

void TxDescriptor::new_log_epoch() noexcept {
  ++log_epoch_;
  epoch_tag_ = log_epoch_ & kFilterEpochMask;
  redo_index_.reset(log_epoch_);
  redo_indexed_ = false;
  htm_reads_ = 0;
}

void TxDescriptor::commit_top() {
  if (state_ == TxState::Idle) {
    // A split (early-committed) transaction already completed; nothing to do.
    TMCV_ASSERT_MSG(split_done_, "commit_top outside a transaction");
    split_done_ = false;
    return;
  }
  if (state_ == TxState::Serial) {
    commit_serial();
    return;
  }
  switch (backend_) {
    case Backend::EagerSTM:
    case Backend::HTM:
      commit_eager();
      break;
    case Backend::LazySTM:
      commit_lazy();
      break;
    case Backend::Hybrid:
      // Hybrid is resolved to a concrete backend by the retry loop before
      // begin_top; a descriptor can never be committing in Hybrid state.
      TMCV_ASSERT_MSG(false, "Hybrid backend reached the descriptor");
      break;
  }
  state_ = TxState::Idle;
  depth_ = 0;
  activity_end();
  ++stats_.commits;
  cm_.note_commit();
#if TMCV_TRACE
  obs::region_end(obs::Event::kTxnCommit, txn_begin_ticks_,
                  &obs::hist_txn_commit());
#endif
  run_commit_handlers();
}

void TxDescriptor::abort_restart(TxAbort::Reason reason) {
  TMCV_ASSERT(state_ == TxState::Optimistic);
  if (backend_ == Backend::HTM) {
    if (reason == TxAbort::Reason::Capacity) ++stats_.htm_capacity_aborts;
    if (reason == TxAbort::Reason::Syscall) ++stats_.htm_syscall_aborts;
  }
  switch (reason) {
    case TxAbort::Reason::Conflict:
      ++stats_.aborts_conflict;
      break;
    case TxAbort::Reason::Capacity:
      ++stats_.aborts_capacity;
      break;
    case TxAbort::Reason::Syscall:
      ++stats_.aborts_syscall;
      break;
    case TxAbort::Reason::Explicit:
      ++stats_.aborts_explicit;
      break;
    case TxAbort::Reason::RetryWait:
      break;  // counted in retry_and_wait
  }
  cm_.note_abort(reason);
#if TMCV_TRACE
  // Attribution reason codes mirror TxAbort::Reason numerically.
  static_assert(static_cast<std::uint16_t>(TxAbort::Reason::Conflict) ==
                obs::kAttrReasonConflict);
  static_assert(static_cast<std::uint16_t>(TxAbort::Reason::RetryWait) ==
                obs::kAttrReasonRetryWait);
  {
    const std::uint16_t victim = txn_site();
    obs::attr_record_abort(victim, static_cast<std::uint16_t>(reason));
    if (reason == TxAbort::Reason::Conflict) {
      // Name the attacker through the owning descriptor of the culprit orec
      // (racy-but-approximate: the owner may have moved on; the victim and
      // stripe halves are exact).  Conflicts with no captured orec (chaos
      // aborts, CAS races) attribute to site 0 so the pair counts still sum
      // to aborts_conflict.
      std::uint16_t attacker = obs::kUnattributedSite;
      if (attr_owner_slot_ != kNoConflictOrec) {
        if (const TxDescriptor* a = registry().descriptor(attr_owner_slot_))
          attacker = a->txn_site();
      }
      const std::uint32_t stripe =
          attr_stripe_ == kNoConflictOrec
              ? obs::kAttrNoStripe
              : static_cast<std::uint32_t>(attr_stripe_);
      obs::attr_record_conflict(victim, attacker, stripe);
    }
    attr_stripe_ = kNoConflictOrec;
    attr_owner_slot_ = kNoConflictOrec;
  }
#endif
  rollback();
  run_abort_handlers();
  state_ = TxState::Idle;
  depth_ = 0;
  activity_end();
  ++stats_.aborts;
#if TMCV_TRACE
  obs::region_end(obs::Event::kTxnAbort, txn_begin_ticks_,
                  &obs::hist_txn_abort(),
                  static_cast<std::uint16_t>(reason));
#endif
  throw TxAbort{reason};
}

void TxDescriptor::retry_and_wait() {
  TMCV_ASSERT_MSG(state_ == TxState::Optimistic,
                  "retry_wait requires an optimistic transaction "
                  "(irrevocable transactions cannot roll back)");
  // Observe the signal BEFORE validating: any commit that could invalidate
  // the predicate decision lands after our snapshot and therefore bumps a
  // value we have already captured -- the sleep then returns immediately.
  const std::uint32_t observed =
      g_commit_signal.load(std::memory_order_seq_cst);
  if (!reads_valid()) abort_restart(TxAbort::Reason::Conflict);
  rollback();
  run_abort_handlers();
  state_ = TxState::Idle;
  depth_ = 0;
  activity_end();
  ++stats_.aborts;
  ++stats_.aborts_retry_wait;
#if TMCV_TRACE
  obs::attr_record_abort(txn_site(), obs::kAttrReasonRetryWait);
  obs::region_end(obs::Event::kTxnAbort, txn_begin_ticks_,
                  &obs::hist_txn_abort(),
                  static_cast<std::uint16_t>(TxAbort::Reason::RetryWait));
#endif
  TxAbort abort{TxAbort::Reason::RetryWait};
  abort.retry_signal = observed;
  throw abort;
}

void TxDescriptor::begin_serial(std::uint32_t depth) {
  TMCV_ASSERT_MSG(state_ == TxState::Idle,
                  "cannot upgrade an active optimistic transaction; declare "
                  "irrevocability at the outermost begin");
#if TMCV_TRACE
  // The acquire below drains every in-flight optimistic transaction: its
  // duration is the serial-fallback stall the paper's §5 worries about.
  const std::uint64_t stall_t0 = obs::region_begin();
#endif
  g_serial.acquire(slot_);
#if TMCV_TRACE
  obs::region_end(obs::Event::kSerialFallback, stall_t0,
                  &obs::hist_serial_stall());
  txn_begin_ticks_ = obs::region_begin();
#endif
  announce_epoch();
  state_ = TxState::Serial;
  depth_ = depth;
  split_done_ = false;
}

void TxDescriptor::commit_serial() {
  TMCV_ASSERT(state_ == TxState::Serial);
  state_ = TxState::Idle;
  depth_ = 0;
  g_serial.release();
  ++stats_.commits;
  ++stats_.serial_commits;
  cm_.note_commit();
#if TMCV_TRACE
  obs::region_end(obs::Event::kTxnCommit, txn_begin_ticks_,
                  &obs::hist_txn_commit());
#endif
  bump_commit_signal();  // serial sections may have written anything
  run_commit_handlers();
}

// ---------------------------------------------------------------------------
// Early commit / split (ENDSYNCBLOCK / BEGINSYNCBLOCK)
// ---------------------------------------------------------------------------

void TxDescriptor::end_sync_block() {
  TMCV_ASSERT_MSG(in_txn(), "end_sync_block outside a transaction");
  saved_depth_ = depth_;
  // commit_top validates and publishes; on failure it throws TxAbort having
  // rolled everything back, so the enclosing retry loop re-runs the whole
  // body -- correct, since nothing (including the pre-WAIT enqueue) became
  // visible.
  commit_top();
}

void TxDescriptor::begin_sync_block(bool irrevocable) {
  TMCV_ASSERT_MSG(state_ == TxState::Idle,
                  "begin_sync_block inside a transaction");
  if (irrevocable)
    begin_serial(saved_depth_);
  else
    begin_top(backend_, saved_depth_);
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

std::uint64_t TxDescriptor::read_word_slow(
    const std::atomic<std::uint64_t>* addr) {
  switch (state_) {
    case TxState::Idle:
      TMCV_ASSERT_MSG(!split_done_,
                      "transactional access after a split WAIT returned; put "
                      "post-wait work in the continuation");
      return addr->load(std::memory_order_acquire);
    case TxState::Serial:
      return addr->load(std::memory_order_acquire);
    case TxState::Optimistic:
      break;
  }
  // Unreachable from the inline read_word (which handles Optimistic), but
  // kept complete so the function is safe to call in any state.
  if (backend_ == Backend::LazySTM) {
    if (const RedoEntry* e = find_redo(addr)) return e->value;
  }
  return read_optimistic(addr);
}

void TxDescriptor::maybe_chaos_abort() {
  if (backend_ != Backend::HTM) return;
  const std::uint32_t rate = htm_chaos_per_million();
  if (rate == 0) return;
  thread_local Xoshiro256 rng(0xC4405u + slot_);
  if (rng.next_below(1000000) < rate) {
    ++stats_.htm_chaos_aborts;
    abort_restart(TxAbort::Reason::Conflict);
  }
}

std::uint64_t TxDescriptor::read_optimistic(
    const std::atomic<std::uint64_t>* addr) {
  maybe_chaos_abort();
  const Orec& o = orec_for(addr);
  for (;;) {
    const OrecWord seen = o.load(std::memory_order_acquire);
    if (orec_is_locked(seen)) {
      if (orec_locked_by_me(seen)) {
        // Eager/HTM write-through: our own speculative value is current.
        ++stats_.reads;
        return addr->load(std::memory_order_relaxed);
      }
      // Locked by a concurrent writer: conflict.
      note_conflict_orec(o, seen);
      abort_restart(TxAbort::Reason::Conflict);
    }
    const std::uint64_t value = addr->load(std::memory_order_acquire);
    if (o.load(std::memory_order_acquire) != seen) {
      // Orec changed while we read the value; re-run the protocol.
      continue;
    }
    if (orec_version(seen) > start_time_) {
      // Newer than our snapshot.  HTM has no extension (a real hardware
      // transaction would already have been killed by the coherence probe).
      if (backend_ == Backend::HTM) {
        note_conflict_orec(o, seen);  // extend() captures its own culprit
        abort_restart(TxAbort::Reason::Conflict);
      }
      if (!extend()) abort_restart(TxAbort::Reason::Conflict);
      continue;  // revalidated forward; retry against the new snapshot
    }
    // HTM capacity is a per-read footprint (pre-dedup): the emulated buffer
    // must not widen just because the software read set got denser.
    if (backend_ == Backend::HTM && ++htm_reads_ > kHtmReadCapacity)
      abort_restart(TxAbort::Reason::Capacity);
    ++stats_.reads;
    const auto idx = static_cast<std::uint64_t>(&o - detail::g_orecs);
    note_read(&o, seen, idx);
    return value;
  }
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

void TxDescriptor::write_word(std::atomic<std::uint64_t>* addr,
                              std::uint64_t value) {
  switch (state_) {
    case TxState::Idle:
      TMCV_ASSERT_MSG(!split_done_,
                      "transactional access after a split WAIT returned; put "
                      "post-wait work in the continuation");
      addr->store(value, std::memory_order_release);
      return;
    case TxState::Serial:
      addr->store(value, std::memory_order_release);
      return;
    case TxState::Optimistic:
      break;
  }
  ++stats_.writes;
  if (backend_ == Backend::LazySTM)
    write_lazy(addr, value);
  else
    write_eager(addr, value);
}

void TxDescriptor::write_eager(std::atomic<std::uint64_t>* addr,
                               std::uint64_t value) {
  maybe_chaos_abort();
  Orec& o = orec_for(addr);
  for (;;) {
    OrecWord cur = o.load(std::memory_order_acquire);
    if (orec_locked_by_me(cur)) break;  // stripe already owned
    if (orec_is_locked(cur)) {
      note_conflict_orec(o, cur);
      abort_restart(TxAbort::Reason::Conflict);
    }
    if (orec_version(cur) > start_time_) {
      if (backend_ == Backend::HTM) {
        note_conflict_orec(o, cur);  // extend() captures its own culprit
        abort_restart(TxAbort::Reason::Conflict);
      }
      if (!extend()) abort_restart(TxAbort::Reason::Conflict);
      continue;
    }
    if (backend_ == Backend::HTM && lock_set_.size() >= kHtmWriteCapacity)
      abort_restart(TxAbort::Reason::Capacity);
    if (o.compare_exchange_strong(cur, make_locked(slot_),
                                  std::memory_order_acq_rel,
                                  std::memory_order_acquire)) {
      note_lock(&o, cur);
      break;
    }
    // CAS lost a race; re-examine the new word.
  }
  undo_log_.push_back(UndoEntry{addr, addr->load(std::memory_order_relaxed)});
  addr->store(value, std::memory_order_release);
}

void TxDescriptor::write_lazy(std::atomic<std::uint64_t>* addr,
                              std::uint64_t value) {
  // Append-only redo log: a repeated write appends a second entry instead of
  // seeking and updating the first, so the store fast path is a plain
  // push_back.  Lookups still resolve to the newest write -- find_redo scans
  // newest-first and the index upsert repoints at the latest entry -- and
  // commit write-back replays the log in program order, so the last write
  // wins there too.  Duplicate entries cost one extra write-back store and
  // an own-lock check at acquisition, both far cheaper than a per-store
  // lookup.
  const auto idx = static_cast<std::uint32_t>(redo_log_.size());
  redo_log_.push_back(RedoEntry{addr, value});
  if (redo_indexed_) {
    if (redo_index_.upsert(addr, idx)) ++stats_.log_index_rehashes;
  } else if (redo_log_.size() > kRedoIndexThreshold) {
    build_redo_index();
  }
}

void TxDescriptor::build_redo_index() {
  // The write set outgrew the linear scan; index every live entry once and
  // switch find_redo to O(1) for the rest of the transaction.  (The index
  // was reset for this log epoch at begin, so plain inserts suffice.)
  for (std::uint32_t i = 0; i < redo_log_.size(); ++i)
    if (redo_index_.upsert(redo_log_[i].addr, i)) ++stats_.log_index_rehashes;
  redo_indexed_ = true;
}

// ---------------------------------------------------------------------------
// Commit / abort
// ---------------------------------------------------------------------------

void TxDescriptor::commit_eager() {
  if (lock_set_.empty()) {
    // Read-only: the per-read validation already proved consistency at
    // start_time_; nothing to publish.
    ++stats_.ro_commits;
    reset_logs();
    return;
  }
  const VersionClock::Tick t = g_clock.tick();
  stats_.clock_cas_reuses += t.reused;
  // If we won the tick and nobody committed since our snapshot, reads are
  // trivially valid; a reused tick means someone DID commit concurrently,
  // so the skip is never sound then (see VersionClock::tick).
  if ((t.reused || t.time != start_time_ + 1) && !reads_valid())
    abort_restart(TxAbort::Reason::Conflict);
  for (const LockEntry& e : lock_set_)
    e.orec->store(make_version(t.time), std::memory_order_release);
  reset_logs();
  bump_commit_signal();
}

void TxDescriptor::commit_lazy() {
  if (redo_log_.empty()) {
    ++stats_.ro_commits;
    reset_logs();
    return;
  }
  // Acquire every written stripe, one lock per orec.  Duplicate stripes need
  // no side table: the orec word itself records ownership, and the
  // acquisition protocol starts with the load that reveals it -- a stripe we
  // already hold is skipped by the locked_by_me check below for free (the
  // old per-entry lock-index maintenance disappears entirely).
  //
  // Small write sets (the overwhelmingly common case) acquire in encounter
  // order: the whole commit window is a handful of stores, so the polite
  // wait below comfortably outlives any cycle partner and the bounded wait
  // turns ordering hazards into (at worst) one abort.  Large write sets are
  // first deduped and sorted into a global acquisition order, so long
  // commit windows chase each other's locks in one direction and cannot
  // form cyclic polite waits.
  const bool sorted_acquire = redo_log_.size() > kSortedAcquireThreshold;
  if (sorted_acquire) {
    acquire_scratch_.clear();
    for (const RedoEntry& w : redo_log_)
      acquire_scratch_.push_back(&orec_for(w.addr));
    std::sort(acquire_scratch_.begin(), acquire_scratch_.end());
    acquire_scratch_.erase(
        std::unique(acquire_scratch_.begin(), acquire_scratch_.end()),
        acquire_scratch_.end());
  }
  const std::size_t n_stripes =
      sorted_acquire ? acquire_scratch_.size() : redo_log_.size();
  for (std::size_t i = 0; i < n_stripes; ++i) {
    Orec* o = sorted_acquire ? acquire_scratch_[i] : &orec_for(redo_log_[i].addr);
    for (;;) {
      OrecWord cur = o->load(std::memory_order_acquire);
      if (orec_is_locked(cur)) {
        if (orec_locked_by_me(cur)) break;  // duplicate stripe: already ours
        // Polite acquisition: commit-time lock holds are short (write-back
        // plus release), so a bounded wait usually outlives the holder and
        // turns what was an instant abort into a brief pause.
        cur = wait_for_orec_unlock(*o);
        if (orec_is_locked(cur)) {
          note_conflict_orec(*o, cur);
          abort_restart(TxAbort::Reason::Conflict);
        }
        continue;  // re-run the protocol against the fresh word
      }
      if (orec_version(cur) > start_time_) {
        if (!extend()) abort_restart(TxAbort::Reason::Conflict);
        continue;
      }
      if (o->compare_exchange_strong(cur, make_locked(slot_),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        note_lock(o, cur);
        break;
      }
    }
  }
  const VersionClock::Tick t = g_clock.tick();
  stats_.clock_cas_reuses += t.reused;
  if ((t.reused || t.time != start_time_ + 1) && !reads_valid())
    abort_restart(TxAbort::Reason::Conflict);
  for (const RedoEntry& w : redo_log_)
    w.addr->store(w.value, std::memory_order_release);
  for (const LockEntry& e : lock_set_)
    e.orec->store(make_version(t.time), std::memory_order_release);
  reset_logs();
  bump_commit_signal();
}

void TxDescriptor::rollback() noexcept {
  if (backend_ != Backend::LazySTM) {
    // Undo in reverse so overlapping writes restore the oldest value last.
    for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it)
      it->addr->store(it->old_value, std::memory_order_release);
  }
  // Release stripes back to their pre-lock versions: the restored values are
  // exactly what those versions stamped.
  for (const LockEntry& e : lock_set_)
    e.orec->store(e.prior, std::memory_order_release);
  // A discarded notify releases nothing: the wake batch dies with the
  // transaction (Algorithm 5/6 abort semantics).
  wake_batch_.clear();
  reset_logs();
}

bool TxDescriptor::extend() {
  const std::uint64_t now = g_clock.now();
  if (!reads_valid()) return false;
  start_time_ = now;
  ++stats_.extensions;
  return true;
}

bool TxDescriptor::reads_valid() const noexcept {
  for (const ReadEntry* e = rs_base_; e != rs_end_; ++e) {
    const OrecWord cur = e->orec->load(std::memory_order_acquire);
    if (cur == e->seen) continue;
    // A stripe we later locked ourselves is still valid: nobody else could
    // have changed it between our (validated) read and our lock.
    if (orec_locked_by_me(cur)) continue;
    // Note the failing stripe for attribution (mutable scratch; consumed by
    // abort_restart if the caller aborts on this result).
    note_conflict_orec(*e->orec, cur);
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Handlers & fences
// ---------------------------------------------------------------------------

void TxDescriptor::on_commit(std::function<void()> fn) {
  if (!in_txn()) {
    ++stats_.handlers_run;
    fn();
    return;
  }
  ++stats_.handlers_registered;
  commit_handlers_.push_back(std::move(fn));
}

void TxDescriptor::on_commit_fn(HandlerFn fn, void* ctx) {
  if (!in_txn()) {
    ++stats_.handlers_run;
    fn(ctx);
    return;
  }
  if (commit_fn_count_ < kInlineHandlerSlots) {
    ++stats_.handlers_inline;
    commit_fns_[commit_fn_count_++] = InlineHandler{fn, ctx};
    return;
  }
  // Slot overflow: degrade to the allocating path rather than drop.
  ++stats_.handlers_registered;
  commit_handlers_.push_back([fn, ctx] { fn(ctx); });
}

void TxDescriptor::on_abort_fn(HandlerFn fn, void* ctx) {
  if (!in_txn()) return;  // nothing to compensate outside a transaction
  if (abort_fn_count_ < kInlineHandlerSlots) {
    ++stats_.handlers_inline;
    abort_fns_[abort_fn_count_++] = InlineHandler{fn, ctx};
    return;
  }
  abort_handlers_.push_back([fn, ctx] { fn(ctx); });
}

void TxDescriptor::defer_wake(BinarySemaphore* sem) {
  if (!in_txn()) {
    sem->post();
    return;
  }
  ++stats_.deferred_wakes;
  wake_batch_.push_back(sem);
}

void TxDescriptor::flush_wake_batch() noexcept {
  if (wake_batch_.empty()) return;
  ++stats_.wake_batches;
  BinarySemaphore::post_batch(wake_batch_.data(), wake_batch_.size());
  wake_batch_.clear();
}

void TxDescriptor::on_abort(std::function<void()> fn) {
  if (!in_txn()) return;  // nothing to compensate outside a transaction
  abort_handlers_.push_back(std::move(fn));
}

void TxDescriptor::run_commit_handlers() {
  // Wakes first: they are plain futex posts (no user code, no reentrancy),
  // and a wait_at_commit handler queued behind them may block this thread.
  flush_wake_batch();
  abort_handlers_.clear();
  abort_fn_count_ = 0;
  // Inline slots drain before the std::function vector; both drain from a
  // local copy because handlers run post-commit with no transaction active
  // and may themselves start transactions (re-registering handlers).
  if (commit_fn_count_ != 0) {
    InlineHandler fns[kInlineHandlerSlots];
    const std::size_t n = commit_fn_count_;
    for (std::size_t i = 0; i < n; ++i) fns[i] = commit_fns_[i];
    commit_fn_count_ = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ++stats_.handlers_run;
      fns[i].fn(fns[i].ctx);
    }
  }
  if (commit_handlers_.empty()) return;
  std::vector<std::function<void()>> handlers = std::move(commit_handlers_);
  commit_handlers_.clear();
  for (auto& h : handlers) {
    ++stats_.handlers_run;
    h();
  }
}

void TxDescriptor::run_abort_handlers() noexcept {
  commit_handlers_.clear();
  commit_fn_count_ = 0;
  if (abort_fn_count_ != 0) {
    InlineHandler fns[kInlineHandlerSlots];
    const std::size_t n = abort_fn_count_;
    for (std::size_t i = 0; i < n; ++i) fns[i] = abort_fns_[i];
    abort_fn_count_ = 0;
    for (std::size_t i = 0; i < n; ++i) fns[i].fn(fns[i].ctx);
  }
  std::vector<std::function<void()>> handlers = std::move(abort_handlers_);
  abort_handlers_.clear();
  for (auto& h : handlers) h();
}

void TxDescriptor::syscall_fence() {
  if (state_ == TxState::Optimistic && backend_ == Backend::HTM)
    abort_restart(TxAbort::Reason::Syscall);
}

namespace {

std::atomic<std::uint32_t> g_htm_chaos_per_million{0};

}  // namespace

void TxDescriptor::set_htm_chaos_per_million(std::uint32_t rate) noexcept {
  g_htm_chaos_per_million.store(rate, std::memory_order_release);
}

std::uint32_t TxDescriptor::htm_chaos_per_million() noexcept {
  return g_htm_chaos_per_million.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// Log helpers
// ---------------------------------------------------------------------------

void TxDescriptor::read_set_grow() {
  // Doubles the buffer while preserving the slack-slot invariant
  // (rs_cap_ points one entry before the true end, so note_read's
  // unconditional store is always in bounds).
  const auto live = static_cast<std::size_t>(rs_end_ - rs_base_);
  const auto old_cap = static_cast<std::size_t>(rs_cap_ - rs_base_) + 1;
  const std::size_t new_cap = old_cap * 2;
  auto fresh = std::make_unique<ReadEntry[]>(new_cap);
  std::copy(rs_base_, rs_end_, fresh.get());
  rs_storage_ = std::move(fresh);
  rs_base_ = rs_storage_.get();
  rs_end_ = rs_base_ + live;
  rs_cap_ = rs_base_ + (new_cap - 1);
}

void TxDescriptor::note_lock(Orec* o, OrecWord prior) {
  lock_set_.push_back(LockEntry{o, prior});
}

OrecWord TxDescriptor::wait_for_orec_unlock(Orec& o) noexcept {
  ++stats_.cm_waits;
#if TMCV_TRACE
  const std::uint64_t t0 = obs::region_begin();
#endif
  const std::uint32_t rounds = cm_orec_wait_rounds();
  OrecWord cur = o.load(std::memory_order_acquire);
  for (std::uint32_t r = 0; r < rounds && orec_is_locked(cur); ++r) {
    if (r < 2) {
      // Short jittered spins first: commit-time holds are usually a few
      // stores long, and jitter keeps simultaneous waiters from re-probing
      // in lockstep.
      const std::uint32_t spins = 1u + cm_.jitter(16u << r);
      for (std::uint32_t i = 0; i < spins; ++i) cpu_relax();
    } else {
      // Oversubscribed machines: the holder needs the CPU to finish.
      sched_yield();
    }
    cur = o.load(std::memory_order_acquire);
  }
#if TMCV_TRACE
  obs::region_end(obs::Event::kCmBackoff, t0, &obs::hist_cm_backoff());
#endif
  return cur;
}

void TxDescriptor::backoff_for_retry() noexcept {
  ++stats_.cm_backoffs;
#if TMCV_TRACE
  const std::uint64_t t0 = obs::region_begin();
#endif
  cm_.backoff_before_retry();
#if TMCV_TRACE
  obs::region_end(obs::Event::kCmBackoff, t0, &obs::hist_cm_backoff());
#endif
}

void TxDescriptor::reset_logs() noexcept {
  stats_.read_dedup_appends += static_cast<std::uint64_t>(rs_end_ - rs_base_);
  rs_end_ = rs_base_;
  lock_set_.clear();
  undo_log_.clear();
  redo_log_.clear();
}

}  // namespace tmcv::tm
