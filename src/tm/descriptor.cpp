#include "tm/descriptor.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/attribution.h"
#include "obs/hooks.h"
#include "sync/futex.h"
#include "sync/semaphore.h"
#include "tm/algs/policy.h"
#include "tm/registry.h"
#include "tm/serial.h"
#include "util/backoff.h"
#include "util/cacheline.h"
#include "util/rng.h"

namespace tmcv::tm {

namespace {

// Initial log capacities: typical condvar transactions touch < 10 locations
// (paper §5.4), but application transactions can be larger.
constexpr std::size_t kInitialLogCapacity = 64;

VersionClock g_clock;
SerialLock g_serial;

}  // namespace

VersionClock& global_clock() noexcept { return g_clock; }
SerialLock& serial_lock() noexcept { return g_serial; }

const char* to_string(Backend b) noexcept {
  switch (b) {
    case Backend::EagerSTM:
      return "EagerSTM";
    case Backend::LazySTM:
      return "LazySTM";
    case Backend::HTM:
      return "HTM";
    case Backend::Hybrid:
      return "Hybrid";
    case Backend::NOrec:
      return "NOrec";
  }
  return "?";
}

// The stats matrix axes must track the enums they label.
static_assert(kBackendCount == kStatsBackends);
static_assert(static_cast<std::size_t>(TxAbort::Reason::RetryWait) + 1 ==
              kStatsAbortReasons);

const char* backend_label(Backend b) noexcept {
  switch (b) {
    case Backend::EagerSTM:
      return "eager";
    case Backend::LazySTM:
      return "lazy";
    case Backend::HTM:
      return "htm";
    case Backend::Hybrid:
      return "hybrid";
    case Backend::NOrec:
      return "norec";
  }
  return "?";
}

bool backend_from_label(const char* s, Backend& out) noexcept {
  if (std::strcmp(s, "eager") == 0)
    out = Backend::EagerSTM;
  else if (std::strcmp(s, "lazy") == 0)
    out = Backend::LazySTM;
  else if (std::strcmp(s, "htm") == 0)
    out = Backend::HTM;
  else if (std::strcmp(s, "hybrid") == 0)
    out = Backend::Hybrid;
  else if (std::strcmp(s, "norec") == 0)
    out = Backend::NOrec;
  else
    return false;
  return true;
}

TxDescriptor::TxDescriptor() : slot_(0) {
  alg_ = &alg_methods(Backend::EagerSTM);
  rs_storage_ = std::make_unique<ReadEntry[]>(kInitialLogCapacity);
  rs_base_ = rs_end_ = rs_storage_.get();
  rs_cap_ = rs_base_ + (kInitialLogCapacity - 1);  // one slack slot
  lock_set_.reserve(kInitialLogCapacity);
  undo_log_.reserve(kInitialLogCapacity);
  redo_log_.reserve(kInitialLogCapacity);
  wake_batch_.reserve(kInitialLogCapacity);
}

void TxDescriptor::attach() {
  slot_ = registry().register_thread(this);
  detail::tls_descriptor = this;
  // Stamp the registry slot into this thread's wait slot so waitgraph
  // edges (orec waiter -> owner slot, quiesce -> drained slot) resolve to
  // an OS thread id.
  waitpoint_bind_tm_slot(static_cast<std::uint32_t>(slot_));
}

void TxDescriptor::detach() {
  TMCV_ASSERT_MSG(state_ == TxState::Idle,
                  "thread exited with an open transaction");
  detail::tls_descriptor = nullptr;
  waitpoint_unbind_tm_slot();
  registry().unregister_thread(slot_, stats_);
  stats_ = Stats{};
}

namespace {

// Descriptor pool: storage is recycled across threads but never freed, so
// cross-thread dereferences through the registry stay valid for the life
// of the process (quiescence scans, epoch collection).
std::atomic<bool> g_pool_lock{false};
std::vector<TxDescriptor*>& pool_storage() {
  static std::vector<TxDescriptor*> instance;
  return instance;
}

TxDescriptor* pool_acquire() {
  TxDescriptor* desc = nullptr;
  Backoff backoff;
  while (g_pool_lock.exchange(true, std::memory_order_acquire))
    backoff.wait();
  auto& pool = pool_storage();
  if (!pool.empty()) {
    desc = pool.back();
    pool.pop_back();
  }
  g_pool_lock.store(false, std::memory_order_release);
  if (desc == nullptr) desc = new TxDescriptor;  // intentionally immortal
  desc->attach();
  return desc;
}

void pool_release(TxDescriptor* desc) {
  desc->detach();
  Backoff backoff;
  while (g_pool_lock.exchange(true, std::memory_order_acquire))
    backoff.wait();
  pool_storage().push_back(desc);
  g_pool_lock.store(false, std::memory_order_release);
}

}  // namespace

namespace detail {
thread_local TxDescriptor* tls_descriptor = nullptr;
}  // namespace detail

TxDescriptor& descriptor_slow() noexcept {
  struct Holder {
    TxDescriptor* desc;
    Holder() : desc(pool_acquire()) {}
    ~Holder() { pool_release(desc); }
  };
  thread_local Holder holder;
  return *holder.desc;
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

namespace {

std::atomic<std::uint64_t> g_gc_epoch{1};
CacheAligned<std::atomic<std::uint32_t>> g_commit_signal;
CacheAligned<std::atomic<std::uint32_t>> g_retry_waiters;

}  // namespace

void bump_commit_signal() noexcept {
  g_commit_signal->fetch_add(1, std::memory_order_seq_cst);
  if (g_retry_waiters->load(std::memory_order_seq_cst) > 0)
    futex_wake(&*g_commit_signal, -1);
}

std::atomic<std::uint64_t>& gc_epoch_word() noexcept { return g_gc_epoch; }

std::atomic<std::uint32_t>& commit_signal_word() noexcept {
  return *g_commit_signal;
}

std::atomic<std::uint32_t>& retry_waiter_count() noexcept {
  return *g_retry_waiters;
}

void TxDescriptor::announce_epoch() noexcept {
  // The store needs no seq_cst fence (it was an xchg on the begin fast
  // path): if the collector reads this slot before the store lands it sees
  // the previous -- smaller -- announcement, which epoch.cpp's gc_collect
  // treats as conservatively stale (it only delays frees, never makes them
  // unsafe).  The seq_cst activity_ RMW preceding every announcement keeps
  // the begin/quiescence ordering intact.
  epoch_.store(g_gc_epoch.load(std::memory_order_seq_cst),
               std::memory_order_release);
}

void TxDescriptor::activity_begin() noexcept {
  activity_.fetch_add(1, std::memory_order_seq_cst);  // even -> odd
  announce_epoch();
}

void TxDescriptor::activity_end() noexcept {
  activity_.fetch_add(1, std::memory_order_seq_cst);  // odd -> even
}

void TxDescriptor::begin_top(Backend b, std::uint32_t depth) {
  TMCV_ASSERT_MSG(state_ == TxState::Idle, "begin_top inside a transaction");
  // Publish intent first, then check the serial lock: this ordering pairs
  // with SerialLock::acquire (seq-odd first, quiescence scan second) so a
  // serial section can never overlap an optimistic transaction.
  for (;;) {
    activity_begin();
    if (!g_serial.held()) break;
    activity_end();
    g_serial.wait_until_free();
  }
  // Resolve the requested backend against the process default HERE, after
  // activity_begin: a quiesced backend switch (algs::set_backend) drains
  // every in-flight optimistic transaction through the serial lock, so a
  // transaction that begins after the drain is guaranteed to observe the
  // new default -- no orec-family transaction can overlap a NOrec one.
  b = algs::resolve_backend(b);
  TMCV_DEBUG_ASSERT(b != Backend::Hybrid);
  state_ = TxState::Optimistic;
  backend_ = b;
  alg_ = &alg_methods(b);
  depth_ = depth;
  split_done_ = false;
  // NOrec snapshots the global commit counter (even value); the orec family
  // snapshots the version clock.
  start_time_ = b == Backend::NOrec ? algs::norec_begin_snapshot()
                                    : g_clock.now();
  new_log_epoch();
#if TMCV_TRACE
  txn_begin_ticks_ = obs::region_begin();
  // Attribution state is per-transaction: clear the site label (so one
  // never leaks into the next, unlabeled transaction) and any stale
  // conflict-orec note.
  attr_site_.store(0, std::memory_order_relaxed);
  attr_stripe_ = kNoConflictOrec;
  attr_owner_slot_ = kNoConflictOrec;
#endif
}

void TxDescriptor::new_log_epoch() noexcept {
  ++log_epoch_;
  epoch_tag_ = log_epoch_ & kFilterEpochMask;
  redo_index_.reset(log_epoch_);
  redo_indexed_ = false;
  htm_reads_ = 0;
}

void TxDescriptor::commit_top() {
  if (state_ == TxState::Idle) {
    // A split (early-committed) transaction already completed; nothing to do.
    TMCV_ASSERT_MSG(split_done_, "commit_top outside a transaction");
    split_done_ = false;
    return;
  }
  if (state_ == TxState::Serial) {
    commit_serial();
    return;
  }
  // Hybrid is resolved to a concrete backend by the retry loop before
  // begin_top; a descriptor can never be committing in Hybrid state.
  TMCV_DEBUG_ASSERT(alg_ != nullptr && backend_ != Backend::Hybrid);
  (this->*(alg_->commit))();
  state_ = TxState::Idle;
  depth_ = 0;
  activity_end();
  ++stats_.commits;
  cm_.note_commit();
#if TMCV_TRACE
  obs::region_end(obs::Event::kTxnCommit, txn_begin_ticks_,
                  &obs::hist_txn_commit());
#endif
  run_commit_handlers();
}

void TxDescriptor::abort_restart(TxAbort::Reason reason) {
  TMCV_ASSERT(state_ == TxState::Optimistic);
  if (backend_ == Backend::HTM) {
    if (reason == TxAbort::Reason::Capacity) ++stats_.htm_capacity_aborts;
    if (reason == TxAbort::Reason::Syscall) ++stats_.htm_syscall_aborts;
  }
  switch (reason) {
    case TxAbort::Reason::Conflict:
      ++stats_.aborts_conflict;
      break;
    case TxAbort::Reason::Capacity:
      ++stats_.aborts_capacity;
      break;
    case TxAbort::Reason::Syscall:
      ++stats_.aborts_syscall;
      break;
    case TxAbort::Reason::Explicit:
      ++stats_.aborts_explicit;
      break;
    case TxAbort::Reason::RetryWait:
      break;  // counted in retry_and_wait
  }
  ++stats_.aborts_by_backend[static_cast<std::size_t>(backend_)]
                            [static_cast<std::size_t>(reason)];
  cm_.note_abort(reason);
#if TMCV_TRACE
  // Attribution reason codes mirror TxAbort::Reason numerically.
  static_assert(static_cast<std::uint16_t>(TxAbort::Reason::Conflict) ==
                obs::kAttrReasonConflict);
  static_assert(static_cast<std::uint16_t>(TxAbort::Reason::RetryWait) ==
                obs::kAttrReasonRetryWait);
  {
    const std::uint16_t victim = txn_site();
    obs::attr_record_abort(victim, static_cast<std::uint16_t>(reason));
    if (reason == TxAbort::Reason::Conflict) {
      // Name the attacker through the owning descriptor of the culprit orec
      // (racy-but-approximate: the owner may have moved on; the victim and
      // stripe halves are exact).  Conflicts with no captured orec (chaos
      // aborts, CAS races) attribute to site 0 so the pair counts still sum
      // to aborts_conflict.
      std::uint16_t attacker = obs::kUnattributedSite;
      if (attr_owner_slot_ != kNoConflictOrec) {
        if (const TxDescriptor* a = registry().descriptor(attr_owner_slot_))
          attacker = a->txn_site();
      }
      const std::uint32_t stripe =
          attr_stripe_ == kNoConflictOrec
              ? obs::kAttrNoStripe
              : static_cast<std::uint32_t>(attr_stripe_);
      obs::attr_record_conflict(victim, attacker, stripe);
    }
    attr_stripe_ = kNoConflictOrec;
    attr_owner_slot_ = kNoConflictOrec;
  }
#endif
  rollback();
  run_abort_handlers();
  state_ = TxState::Idle;
  depth_ = 0;
  activity_end();
  ++stats_.aborts;
#if TMCV_TRACE
  obs::region_end(obs::Event::kTxnAbort, txn_begin_ticks_,
                  &obs::hist_txn_abort(),
                  static_cast<std::uint16_t>(reason));
#endif
  throw TxAbort{reason};
}

void TxDescriptor::retry_and_wait() {
  TMCV_ASSERT_MSG(state_ == TxState::Optimistic,
                  "retry_wait requires an optimistic transaction "
                  "(irrevocable transactions cannot roll back)");
  // Observe the signal BEFORE validating: any commit that could invalidate
  // the predicate decision lands after our snapshot and therefore bumps a
  // value we have already captured -- the sleep then returns immediately.
  const std::uint32_t observed =
      g_commit_signal->load(std::memory_order_seq_cst);
  if (!reads_valid()) abort_restart(TxAbort::Reason::Conflict);
  rollback();
  run_abort_handlers();
  state_ = TxState::Idle;
  depth_ = 0;
  activity_end();
  ++stats_.aborts;
  ++stats_.aborts_retry_wait;
  ++stats_.aborts_by_backend[static_cast<std::size_t>(backend_)][static_cast<
      std::size_t>(TxAbort::Reason::RetryWait)];
#if TMCV_TRACE
  obs::attr_record_abort(txn_site(), obs::kAttrReasonRetryWait);
  obs::region_end(obs::Event::kTxnAbort, txn_begin_ticks_,
                  &obs::hist_txn_abort(),
                  static_cast<std::uint16_t>(TxAbort::Reason::RetryWait));
#endif
  TxAbort abort{TxAbort::Reason::RetryWait};
  abort.retry_signal = observed;
  throw abort;
}

void TxDescriptor::begin_serial(std::uint32_t depth) {
  TMCV_ASSERT_MSG(state_ == TxState::Idle,
                  "cannot upgrade an active optimistic transaction; declare "
                  "irrevocability at the outermost begin");
#if TMCV_TRACE
  // The acquire below drains every in-flight optimistic transaction: its
  // duration is the serial-fallback stall the paper's §5 worries about.
  const std::uint64_t stall_t0 = obs::region_begin();
#endif
  g_serial.acquire(slot_);
#if TMCV_TRACE
  obs::region_end(obs::Event::kSerialFallback, stall_t0,
                  &obs::hist_serial_stall());
  txn_begin_ticks_ = obs::region_begin();
#endif
  announce_epoch();
  state_ = TxState::Serial;
  depth_ = depth;
  split_done_ = false;
}

void TxDescriptor::commit_serial() {
  TMCV_ASSERT(state_ == TxState::Serial);
  state_ = TxState::Idle;
  depth_ = 0;
  g_serial.release();
  ++stats_.commits;
  ++stats_.serial_commits;
  cm_.note_commit();
#if TMCV_TRACE
  obs::region_end(obs::Event::kTxnCommit, txn_begin_ticks_,
                  &obs::hist_txn_commit());
#endif
  bump_commit_signal();  // serial sections may have written anything
  run_commit_handlers();
}

// ---------------------------------------------------------------------------
// Early commit / split (ENDSYNCBLOCK / BEGINSYNCBLOCK)
// ---------------------------------------------------------------------------

void TxDescriptor::end_sync_block() {
  TMCV_ASSERT_MSG(in_txn(), "end_sync_block outside a transaction");
  saved_depth_ = depth_;
  // commit_top validates and publishes; on failure it throws TxAbort having
  // rolled everything back, so the enclosing retry loop re-runs the whole
  // body -- correct, since nothing (including the pre-WAIT enqueue) became
  // visible.
  commit_top();
}

void TxDescriptor::begin_sync_block(bool irrevocable) {
  TMCV_ASSERT_MSG(state_ == TxState::Idle,
                  "begin_sync_block inside a transaction");
  if (irrevocable)
    begin_serial(saved_depth_);
  else
    begin_top(backend_, saved_depth_);
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

std::uint64_t TxDescriptor::read_word_slow(
    const std::atomic<std::uint64_t>* addr) {
  switch (state_) {
    case TxState::Idle:
      TMCV_ASSERT_MSG(!split_done_,
                      "transactional access after a split WAIT returned; put "
                      "post-wait work in the continuation");
      return addr->load(std::memory_order_acquire);
    case TxState::Serial:
      return addr->load(std::memory_order_acquire);
    case TxState::Optimistic:
      break;
  }
  // Unreachable from the inline read_word (which handles Optimistic), but
  // kept complete so the function is safe to call in any state.
  if (backend_ == Backend::LazySTM || backend_ == Backend::NOrec) {
    if (const RedoEntry* e = find_redo(addr)) return e->value;
  }
  if (backend_ == Backend::NOrec) return read_norec_slow(addr);
  return read_optimistic(addr);
}

void TxDescriptor::maybe_chaos_abort() {
  if (backend_ != Backend::HTM) return;
  const std::uint32_t rate = htm_chaos_per_million();
  if (rate == 0) return;
  thread_local Xoshiro256 rng(0xC4405u + slot_);
  if (rng.next_below(1000000) < rate) {
    ++stats_.htm_chaos_aborts;
    abort_restart(TxAbort::Reason::Conflict);
  }
}

std::uint64_t TxDescriptor::read_optimistic(
    const std::atomic<std::uint64_t>* addr) {
  maybe_chaos_abort();
  const Orec& o = orec_for(addr);
  for (;;) {
    const OrecWord seen = o.load(std::memory_order_acquire);
    if (orec_is_locked(seen)) {
      if (orec_locked_by_me(seen)) {
        // Eager/HTM write-through: our own speculative value is current.
        ++stats_.reads;
        return addr->load(std::memory_order_relaxed);
      }
      // Locked by a concurrent writer: conflict.
      note_conflict_orec(o, seen);
      abort_restart(TxAbort::Reason::Conflict);
    }
    const std::uint64_t value = addr->load(std::memory_order_acquire);
    if (o.load(std::memory_order_acquire) != seen) {
      // Orec changed while we read the value; re-run the protocol.
      continue;
    }
    if (orec_version(seen) > start_time_) {
      // Newer than our snapshot.  HTM has no extension (a real hardware
      // transaction would already have been killed by the coherence probe).
      if (backend_ == Backend::HTM) {
        note_conflict_orec(o, seen);  // extend() captures its own culprit
        abort_restart(TxAbort::Reason::Conflict);
      }
      if (!extend()) abort_restart(TxAbort::Reason::Conflict);
      continue;  // revalidated forward; retry against the new snapshot
    }
    // HTM capacity is a per-read footprint (pre-dedup): the emulated buffer
    // must not widen just because the software read set got denser.
    if (backend_ == Backend::HTM && ++htm_reads_ > kHtmReadCapacity)
      abort_restart(TxAbort::Reason::Capacity);
    ++stats_.reads;
    const auto idx = static_cast<std::uint64_t>(&o - detail::g_orecs);
    note_read(&o, seen, idx);
    return value;
  }
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

void TxDescriptor::write_word(std::atomic<std::uint64_t>* addr,
                              std::uint64_t value) {
  switch (state_) {
    case TxState::Idle:
      TMCV_ASSERT_MSG(!split_done_,
                      "transactional access after a split WAIT returned; put "
                      "post-wait work in the continuation");
      addr->store(value, std::memory_order_release);
      return;
    case TxState::Serial:
      addr->store(value, std::memory_order_release);
      return;
    case TxState::Optimistic:
      break;
  }
  ++stats_.writes;
  (this->*(alg_->write))(addr, value);
}

// The write barriers and commit protocols live in tm/algs/ (orec_eager.cpp,
// orec_lazy.cpp, norec.cpp), reached through the per-backend method table.

// ---------------------------------------------------------------------------
// Commit / abort
// ---------------------------------------------------------------------------

void TxDescriptor::rollback() noexcept {
  if (alg_->undo_on_rollback) {
    // Write-through backends: undo in reverse so overlapping writes restore
    // the oldest value last.  Redo-log backends (lazy, NOrec) published
    // nothing, so there is nothing to undo.
    for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it)
      it->addr->store(it->old_value, std::memory_order_release);
  }
  // Release stripes back to their pre-lock versions: the restored values are
  // exactly what those versions stamped.
  for (const LockEntry& e : lock_set_)
    e.orec->store(e.prior, std::memory_order_release);
  // A discarded notify releases nothing: the wake batch dies with the
  // transaction (Algorithm 5/6 abort semantics).
  wake_batch_.clear();
  reset_logs();
}

bool TxDescriptor::extend() {
  const std::uint64_t now = g_clock.now();
  if (!reads_valid_orec()) return false;
  start_time_ = now;
  ++stats_.extensions;
  return true;
}

bool TxDescriptor::reads_valid() const noexcept {
  return (this->*(alg_->validate))();
}

bool TxDescriptor::reads_valid_orec() const noexcept {
  for (const ReadEntry* e = rs_base_; e != rs_end_; ++e) {
    const OrecWord cur = e->orec->load(std::memory_order_acquire);
    if (cur == e->seen) continue;
    // A stripe we later locked ourselves is still valid: nobody else could
    // have changed it between our (validated) read and our lock.
    if (orec_locked_by_me(cur)) continue;
    // Note the failing stripe for attribution (mutable scratch; consumed by
    // abort_restart if the caller aborts on this result).
    note_conflict_orec(*e->orec, cur);
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Handlers & fences
// ---------------------------------------------------------------------------

void TxDescriptor::on_commit(std::function<void()> fn) {
  if (!in_txn()) {
    ++stats_.handlers_run;
    fn();
    return;
  }
  ++stats_.handlers_registered;
  commit_handlers_.push_back(std::move(fn));
}

void TxDescriptor::on_commit_fn(HandlerFn fn, void* ctx) {
  if (!in_txn()) {
    ++stats_.handlers_run;
    fn(ctx);
    return;
  }
  if (commit_fn_count_ < kInlineHandlerSlots) {
    ++stats_.handlers_inline;
    commit_fns_[commit_fn_count_++] = InlineHandler{fn, ctx};
    return;
  }
  // Slot overflow: degrade to the allocating path rather than drop.
  ++stats_.handlers_registered;
  commit_handlers_.push_back([fn, ctx] { fn(ctx); });
}

void TxDescriptor::on_abort_fn(HandlerFn fn, void* ctx) {
  if (!in_txn()) return;  // nothing to compensate outside a transaction
  if (abort_fn_count_ < kInlineHandlerSlots) {
    ++stats_.handlers_inline;
    abort_fns_[abort_fn_count_++] = InlineHandler{fn, ctx};
    return;
  }
  abort_handlers_.push_back([fn, ctx] { fn(ctx); });
}

void TxDescriptor::defer_wake(BinarySemaphore* sem) {
  if (!in_txn()) {
    sem->post();
    return;
  }
  ++stats_.deferred_wakes;
  wake_batch_.push_back(sem);
}

void TxDescriptor::flush_wake_batch() noexcept {
  if (wake_batch_.empty()) return;
  ++stats_.wake_batches;
  BinarySemaphore::post_batch(wake_batch_.data(), wake_batch_.size());
  wake_batch_.clear();
}

void TxDescriptor::on_abort(std::function<void()> fn) {
  if (!in_txn()) return;  // nothing to compensate outside a transaction
  abort_handlers_.push_back(std::move(fn));
}

void TxDescriptor::run_commit_handlers() {
  // Wakes first: they are plain futex posts (no user code, no reentrancy),
  // and a wait_at_commit handler queued behind them may block this thread.
  flush_wake_batch();
  abort_handlers_.clear();
  abort_fn_count_ = 0;
  // Inline slots drain before the std::function vector; both drain from a
  // local copy because handlers run post-commit with no transaction active
  // and may themselves start transactions (re-registering handlers).
  if (commit_fn_count_ != 0) {
    InlineHandler fns[kInlineHandlerSlots];
    const std::size_t n = commit_fn_count_;
    for (std::size_t i = 0; i < n; ++i) fns[i] = commit_fns_[i];
    commit_fn_count_ = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ++stats_.handlers_run;
      fns[i].fn(fns[i].ctx);
    }
  }
  if (commit_handlers_.empty()) return;
  std::vector<std::function<void()>> handlers = std::move(commit_handlers_);
  commit_handlers_.clear();
  for (auto& h : handlers) {
    ++stats_.handlers_run;
    h();
  }
}

void TxDescriptor::run_abort_handlers() noexcept {
  commit_handlers_.clear();
  commit_fn_count_ = 0;
  if (abort_fn_count_ != 0) {
    InlineHandler fns[kInlineHandlerSlots];
    const std::size_t n = abort_fn_count_;
    for (std::size_t i = 0; i < n; ++i) fns[i] = abort_fns_[i];
    abort_fn_count_ = 0;
    for (std::size_t i = 0; i < n; ++i) fns[i].fn(fns[i].ctx);
  }
  std::vector<std::function<void()>> handlers = std::move(abort_handlers_);
  abort_handlers_.clear();
  for (auto& h : handlers) h();
}

void TxDescriptor::syscall_fence() {
  if (state_ == TxState::Optimistic && backend_ == Backend::HTM)
    abort_restart(TxAbort::Reason::Syscall);
}

namespace {

std::atomic<std::uint32_t> g_htm_chaos_per_million{0};

}  // namespace

void TxDescriptor::set_htm_chaos_per_million(std::uint32_t rate) noexcept {
  g_htm_chaos_per_million.store(rate, std::memory_order_release);
}

std::uint32_t TxDescriptor::htm_chaos_per_million() noexcept {
  return g_htm_chaos_per_million.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// Log helpers
// ---------------------------------------------------------------------------

void TxDescriptor::read_set_grow() {
  // Doubles the buffer while preserving the slack-slot invariant
  // (rs_cap_ points one entry before the true end, so note_read's
  // unconditional store is always in bounds).
  const auto live = static_cast<std::size_t>(rs_end_ - rs_base_);
  const auto old_cap = static_cast<std::size_t>(rs_cap_ - rs_base_) + 1;
  const std::size_t new_cap = old_cap * 2;
  auto fresh = std::make_unique<ReadEntry[]>(new_cap);
  std::copy(rs_base_, rs_end_, fresh.get());
  rs_storage_ = std::move(fresh);
  rs_base_ = rs_storage_.get();
  rs_end_ = rs_base_ + live;
  rs_cap_ = rs_base_ + (new_cap - 1);
}

void TxDescriptor::note_lock(Orec* o, OrecWord prior) {
  lock_set_.push_back(LockEntry{o, prior});
}

OrecWord TxDescriptor::wait_for_orec_unlock(Orec& o) noexcept {
  ++stats_.cm_waits;
#if TMCV_TRACE
  const std::uint64_t t0 = obs::region_begin();
#endif
  const std::uint32_t rounds = cm_orec_wait_rounds();
  OrecWord cur = o.load(std::memory_order_acquire);
  // Publish the polite wait: target is the contested stripe, detail its
  // index, and the site is the OWNER's transaction label (who we wait FOR;
  // our own site is already on this descriptor).  Owner resolution is
  // best-effort by design -- the lock word can change hands mid-wait.
  std::uint16_t owner_site = 0;
  if (orec_is_locked(cur)) {
    if (const TxDescriptor* owner =
            registry().descriptor(orec_owner_slot(cur)))
      owner_site = owner->txn_site();
  }
  WaitScope wp(WaitReason::kOrec, &o, owner_site,
               static_cast<std::uint32_t>(orec_index(o)));
  for (std::uint32_t r = 0; r < rounds && orec_is_locked(cur); ++r) {
    if (r < 2) {
      // Short jittered spins first: commit-time holds are usually a few
      // stores long, and jitter keeps simultaneous waiters from re-probing
      // in lockstep.
      const std::uint32_t spins = 1u + cm_.jitter(16u << r);
      for (std::uint32_t i = 0; i < spins; ++i) cpu_relax();
    } else {
      // Oversubscribed machines: the holder needs the CPU to finish.
      sched_yield();
    }
    cur = o.load(std::memory_order_acquire);
  }
#if TMCV_TRACE
  obs::region_end(obs::Event::kCmBackoff, t0, &obs::hist_cm_backoff());
#endif
  return cur;
}

void TxDescriptor::backoff_for_retry() noexcept {
  ++stats_.cm_backoffs;
#if TMCV_TRACE
  const std::uint64_t t0 = obs::region_begin();
#endif
  cm_.backoff_before_retry();
#if TMCV_TRACE
  obs::region_end(obs::Event::kCmBackoff, t0, &obs::hist_cm_backoff());
#endif
}

void TxDescriptor::reset_logs() noexcept {
  stats_.read_dedup_appends += static_cast<std::uint64_t>(rs_end_ - rs_base_);
  rs_end_ = rs_base_;
  lock_set_.clear();
  undo_log_.clear();
  redo_log_.clear();
  norec_reads_.clear();
}

}  // namespace tmcv::tm
