#include "tm/algs/adaptive.h"

#include <chrono>
#include <mutex>
#include <thread>

#include "obs/attribution.h"
#include "sync/waitpoint.h"
#include "tm/api.h"
#include "tm/registry.h"
#include "tm/serial.h"
#include "util/assert.h"

namespace tmcv::tm {

bool set_backend(Backend b) {
  TxDescriptor& d = descriptor();
  TMCV_ASSERT_MSG(!d.in_txn(), "cannot switch backends inside a transaction");
  if (default_backend() == b) return false;
  // Piggyback on the serial lock's global stop: acquisition drains every
  // in-flight optimistic transaction, so when the new default is published
  // no transaction begun under the old resolution is still running, and
  // every later begin_top re-resolves against the new default.  The lock is
  // held across the store only (no user code), so the stall is one drain.
  serial_lock().acquire(d.slot());
  set_default_backend(b);
  serial_lock().release();
  ++d.stats().backend_switches;
  return true;
}

namespace {

// ---- adaptive controller ----

std::mutex g_ctl_mu;           // guards start/stop transitions and knobs
std::thread g_ctl_thread;
std::atomic<bool> g_ctl_run{false};
AdaptiveKnobs g_knobs;

// Per-slot (commits + aborts) totals from the previous window, used to
// count ACTIVE threads: a registry slot votes only if its counters moved,
// so parked workers, the main thread, and this controller don't inflate
// the thread-count signal that gates NOrec.
struct WindowState {
  std::uint64_t prev_ops[kMaxThreads] = {};
  Stats prev{};
#if TMCV_TRACE
  std::size_t prev_pairs = 0;
#endif
};

// One sampling window: returns the backend the policy wants right now, or
// the current default when the window was too idle to judge.
Backend policy_step(WindowState& w, const AdaptiveKnobs& k,
                    std::uint64_t self_slot) {
  const Backend cur = default_backend();
  const Stats snap = stats_snapshot();
  const std::uint64_t d_commits = snap.commits - w.prev.commits;
  const std::uint64_t d_aborts = snap.aborts - w.prev.aborts;
  w.prev = snap;

  Registry& reg = registry();
  const std::uint64_t n = reg.high_water();
  std::uint64_t active = 0;
  for (std::uint64_t slot = 0; slot < n && slot < kMaxThreads; ++slot) {
    std::uint64_t ops = w.prev_ops[slot];
    if (const TxDescriptor* d = reg.descriptor(slot)) {
      const Stats& s = const_cast<TxDescriptor*>(d)->stats();
      ops = s.commits + s.aborts;  // racy-but-approximate, like snapshots
    }
    if (slot != self_slot && ops != w.prev_ops[slot]) ++active;
    w.prev_ops[slot] = ops;
  }

  if (d_commits + d_aborts < k.min_ops) return cur;  // idle: no vote

  double ratio = static_cast<double>(d_aborts) /
                 static_cast<double>(d_commits == 0 ? 1 : d_commits);
#if TMCV_TRACE
  // Conflict-pair spread (traced builds only): many NEW distinct warring
  // site pairs in one window means contention is diffuse -- encounter-time
  // locking thrashes across the whole footprint -- so treat the measured
  // ratio as hotter than it reads.  The stripe-heat table feeds the same
  // snapshot; spread is the cheaper aggregate of the two.
  if (obs::attribution_enabled()) {
    std::size_t pairs = 0;
    obs::detail::conflict_pair_table().for_each(
        [&](std::uint64_t, std::uint64_t) { ++pairs; });
    const std::size_t fresh = pairs > w.prev_pairs ? pairs - w.prev_pairs : 0;
    w.prev_pairs = pairs;
    const double f = fresh > 8 ? 8.0 : static_cast<double>(fresh);
    ratio *= 1.0 + f / 16.0;
  }
#endif

  if (ratio >= k.high_abort_ratio) return Backend::LazySTM;
  if (active <= k.norec_max_threads && ratio < k.low_abort_ratio)
    return Backend::NOrec;
  return Backend::EagerSTM;
}

void controller_main() {
  WindowState w;
  w.prev = stats_snapshot();
  const std::uint64_t self_slot = descriptor().slot();
  Backend want = default_backend();
  std::uint32_t agree = 0;
  std::uint32_t since_switch = ~0u >> 1;  // allow an immediate first switch
  while (g_ctl_run.load(std::memory_order_acquire)) {
    AdaptiveKnobs k;
    {
      std::lock_guard<std::mutex> lock(g_ctl_mu);
      k = g_knobs;
    }
    {
      // The controller is intentionally idle between policy windows; the
      // publish keeps /threads honest (a sleeping controller is not a
      // stuck worker) and attributes its off-CPU time to adaptive_sleep.
      WaitScope wp(WaitReason::kAdaptiveSleep, nullptr, 0, k.window_ms);
      std::this_thread::sleep_for(std::chrono::milliseconds(k.window_ms));
    }
    const Backend cur = default_backend();
    const Backend next = policy_step(w, k, self_slot);
    if (next == cur) {
      agree = 0;
      want = cur;
    } else if (next == want) {
      ++agree;
    } else {
      want = next;
      agree = 1;
    }
    ++since_switch;
    // Hysteresis: the policy must disagree with the current default for
    // agree_windows consecutive windows AND the last switch must be at
    // least dwell_windows old, so one noisy window never flaps the fleet.
    if (agree >= k.agree_windows && since_switch >= k.dwell_windows) {
      if (set_backend(want)) since_switch = 0;
      agree = 0;
    }
  }
}

}  // namespace

void set_backend_auto(bool enable) {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(g_ctl_mu);
    const bool running = g_ctl_run.load(std::memory_order_acquire);
    if (enable == running) return;
    if (enable) {
      g_ctl_run.store(true, std::memory_order_release);
      g_ctl_thread = std::thread(controller_main);
      return;
    }
    g_ctl_run.store(false, std::memory_order_release);
    to_join = std::move(g_ctl_thread);
  }
  // Join outside the mutex: the controller may be inside set_backend (which
  // can wait on quiescence) when asked to stop.
  if (to_join.joinable()) to_join.join();
}

bool backend_auto_enabled() noexcept {
  return g_ctl_run.load(std::memory_order_acquire);
}

void set_adaptive_knobs(const AdaptiveKnobs& knobs) noexcept {
  std::lock_guard<std::mutex> lock(g_ctl_mu);
  g_knobs = knobs;
}

AdaptiveKnobs adaptive_knobs() noexcept {
  std::lock_guard<std::mutex> lock(g_ctl_mu);
  return g_knobs;
}

}  // namespace tmcv::tm
