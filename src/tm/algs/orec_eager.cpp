// EagerSTM write barrier and commit protocol (also used by the HTM
// emulation, which layers capacity/chaos/syscall aborts on top).
// Encounter-time locking, write-through with an undo log: the method-table
// row for Backend::EagerSTM and Backend::HTM points here.
#include "tm/algs/policy.h"
#include "tm/clock.h"

namespace tmcv::tm {

void TxDescriptor::write_eager(std::atomic<std::uint64_t>* addr,
                               std::uint64_t value) {
  maybe_chaos_abort();
  Orec& o = orec_for(addr);
  for (;;) {
    OrecWord cur = o.load(std::memory_order_acquire);
    if (orec_locked_by_me(cur)) break;  // stripe already owned
    if (orec_is_locked(cur)) {
      note_conflict_orec(o, cur);
      abort_restart(TxAbort::Reason::Conflict);
    }
    if (orec_version(cur) > start_time_) {
      if (backend_ == Backend::HTM) {
        note_conflict_orec(o, cur);  // extend() captures its own culprit
        abort_restart(TxAbort::Reason::Conflict);
      }
      if (!extend()) abort_restart(TxAbort::Reason::Conflict);
      continue;
    }
    if (backend_ == Backend::HTM && lock_set_.size() >= kHtmWriteCapacity)
      abort_restart(TxAbort::Reason::Capacity);
    if (o.compare_exchange_strong(cur, make_locked(slot_),
                                  std::memory_order_acq_rel,
                                  std::memory_order_acquire)) {
      note_lock(&o, cur);
      break;
    }
    // CAS lost a race; re-examine the new word.
  }
  undo_log_.push_back(UndoEntry{addr, addr->load(std::memory_order_relaxed)});
  addr->store(value, std::memory_order_release);
}

void TxDescriptor::commit_eager() {
  if (lock_set_.empty()) {
    // Read-only: the per-read validation already proved consistency at
    // start_time_; nothing to publish.
    ++stats_.ro_commits;
    reset_logs();
    return;
  }
  const VersionClock::Tick t = global_clock().tick();
  stats_.clock_cas_reuses += t.reused;
  // If we won the tick and nobody committed since our snapshot, reads are
  // trivially valid; a reused tick means someone DID commit concurrently,
  // so the skip is never sound then (see VersionClock::tick).
  if ((t.reused || t.time != start_time_ + 1) && !reads_valid_orec())
    abort_restart(TxAbort::Reason::Conflict);
  for (const LockEntry& e : lock_set_)
    e.orec->store(make_version(t.time), std::memory_order_release);
  reset_logs();
  bump_commit_signal();
}

}  // namespace tmcv::tm
