// NOrec global state: the single commit counter behind the no-ownership-
// record backend (Dalessandro, Spear & Scott, "NOrec: Streamlining STM by
// Abolishing Ownership Records", PPoPP 2010).
//
// The counter is a sequence lock in the same even/odd idiom as
// SerialLock (tm/serial.h): even = no write-back in progress, odd = a
// committer owns the counter and is writing its redo log back.  A NOrec
// transaction's snapshot is the even value observed at begin; reads are
// consistent iff the counter still holds that value, and any movement
// triggers value-based revalidation of the read log (norec read entries
// store the value seen, not an orec version).  There is no orec traffic at
// all: conflict detection is centralised on this one cache line.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/backoff.h"

namespace tmcv::tm::algs {

// The process-wide NOrec commit counter (cache-line isolated; see
// norec.cpp for the CacheAligned definition).
std::atomic<std::uint64_t>& norec_clock() noexcept;

// An even snapshot of the counter: spins out any in-flight write-back
// first, so a beginning transaction never reads half-published values.
inline std::uint64_t norec_begin_snapshot() noexcept {
  auto& clk = norec_clock();
  for (;;) {
    const std::uint64_t t = clk.load(std::memory_order_acquire);
    if ((t & 1ull) == 0) return t;
    cpu_relax();
  }
}

}  // namespace tmcv::tm::algs
