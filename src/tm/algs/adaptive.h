// Adaptive backend selection: a quiescence-point switch plus a small
// controller that watches the live signals (abort/commit ratio, active
// thread count, and -- in traced builds -- conflict-pair spread from the
// attribution layer) and moves the process default between EagerSTM,
// LazySTM and NOrec with hysteresis.  See docs/BACKENDS.md for the state
// machine and the knob table.
#pragma once

#include <cstdint>

#include "tm/descriptor.h"

namespace tmcv::tm {

// Switch the process-wide default backend at a quiescence point: acquires
// the serial lock (draining every in-flight optimistic transaction),
// stores the new default, releases.  Transactions beginning after the
// drain observe the new default via begin_top's resolution; combined with
// the NOrec family override (algs::resolve_backend) this guarantees NOrec
// and orec-family transactions never overlap.  Returns true if the default
// actually changed.  Must not be called inside a transaction.
bool set_backend(Backend b);

// Start/stop the adaptive controller thread.  While enabled, the
// controller samples the global stats every window and calls set_backend
// when the policy's choice disagrees with the current default for enough
// consecutive windows.  Disabling joins the thread and leaves whatever
// default is current in place.
void set_backend_auto(bool enable);
[[nodiscard]] bool backend_auto_enabled() noexcept;

// Controller tuning (exposed for tests and benchmarks; defaults match the
// knob table in docs/BACKENDS.md).
struct AdaptiveKnobs {
  std::uint32_t window_ms = 50;      // sampling cadence
  std::uint32_t agree_windows = 3;   // consecutive agreeing windows to switch
  std::uint32_t dwell_windows = 4;   // min windows between switches
  std::uint64_t min_ops = 200;       // windows below this are idle: no vote
  double low_abort_ratio = 0.05;     // NOrec eligibility ceiling
  double high_abort_ratio = 0.30;    // LazySTM (contention) floor
  std::uint64_t norec_max_threads = 8;  // NOrec eligibility thread ceiling
};
void set_adaptive_knobs(const AdaptiveKnobs& knobs) noexcept;
[[nodiscard]] AdaptiveKnobs adaptive_knobs() noexcept;

}  // namespace tmcv::tm
