// The pluggable TM algorithm layer (libitm-style method set).
//
// Each optimistic backend is a row in a static method table: the write
// barrier, the commit protocol, the snapshot-validation predicate, and a
// rollback policy flag.  A descriptor caches a pointer to its row at
// begin (TxDescriptor::alg_), so backend dispatch on the write/commit/
// validate paths is one indirect member call -- paths already dominated by
// CAS and log traffic.  The READ fast path deliberately stays the inlined
// enum dispatch in descriptor.h: it is the one barrier hot enough that an
// indirect call shows up, and keeping it branch-predicted preserves the
// eager fast path bit-for-bit.
//
// Contract for a backend row (see docs/BACKENDS.md):
//   write    -- buffer or publish one word inside an open transaction.
//               May abort (throw TxAbort via abort_restart); must leave
//               the descriptor rollback-able at every point.
//   commit   -- validate + publish + reset_logs + bump_commit_signal for
//               writing transactions; count ro_commits for read-only ones.
//               Runs with state_ == Optimistic; commit_top handles the
//               post-commit bookkeeping (state, activity, handlers).
//   validate -- true iff every logged read is still consistent with the
//               current snapshot.  Must NOT abort and must NOT move
//               start_time_: retry_and_wait calls it before parking.
//   undo_on_rollback -- write-through backends (eager, HTM) must replay
//               the undo log on rollback; redo-log backends publish
//               nothing speculatively.
#pragma once

#include "tm/descriptor.h"

namespace tmcv::tm::algs {

struct AlgMethods {
  Backend backend;
  void (TxDescriptor::*write)(std::atomic<std::uint64_t>*, std::uint64_t);
  void (TxDescriptor::*commit)();
  bool (TxDescriptor::*validate)() const noexcept;
  bool undo_on_rollback;
};

// Map a requested backend to the one that will actually run, given the
// process-wide default.  NOrec detects conflicts by value against its own
// counter and ignores orecs entirely, so NOrec and orec-family transactions
// must never overlap on shared data.  The rule: while the default is NOrec,
// EVERY optimistic transaction (including explicit atomically(Backend::X)
// requests) runs NOrec; while the default is an orec backend, an explicit
// NOrec request is coerced to LazySTM (same redo-log write semantics).
// begin_top applies this after publishing activity, which makes it
// race-free across quiesced backend switches.
[[nodiscard]] Backend resolve_backend(Backend req) noexcept;

}  // namespace tmcv::tm::algs
