// The NOrec backend (Dalessandro/Spear/Scott, PPoPP 2010).
//
// Reads load the value directly and log (addr, value); consistency is the
// single global commit counter not having moved since the transaction's
// snapshot.  When it has moved, the read log is revalidated BY VALUE: each
// address is re-read and compared, so writes that restored the old value
// ("silent stores") don't abort anyone.  Writes buffer in the shared redo
// log (write_lazy); commit CASes the counter even->odd, writes back while
// holding it, and releases with +2.  No ownership records are touched, so
// an uncontended read costs one data load plus one shared counter load --
// no stripe hash, no orec probe, no recheck.
//
// Opacity note (docs/BACKENDS.md): value-based validation admits reading a
// value that is torn ACROSS addresses mid-write-back; the counter check
// after the value load (read_word fast path) closes that window, because a
// write-back holds the counter odd for its whole duration.
#include "tm/algs/norec.h"

#include "tm/algs/policy.h"
#include "util/cacheline.h"

namespace tmcv::tm {

namespace {

CacheAligned<std::atomic<std::uint64_t>> g_norec_clock;

}  // namespace

namespace algs {

std::atomic<std::uint64_t>& norec_clock() noexcept { return *g_norec_clock; }

}  // namespace algs

std::uint64_t TxDescriptor::read_norec_slow(
    const std::atomic<std::uint64_t>* addr) {
  // The counter moved since our snapshot: revalidate the log forward, then
  // retry the read against the new snapshot (the NOrec analogue of the
  // orec family's timestamp extension, so it counts as one).
  for (;;) {
    const std::uint64_t value = addr->load(std::memory_order_acquire);
    if (algs::norec_clock().load(std::memory_order_acquire) == start_time_) {
      ++stats_.reads;
      norec_reads_.push_back(NorecReadEntry{addr, value});
      return value;
    }
    norec_validate();
    ++stats_.extensions;
  }
}

std::uint64_t TxDescriptor::norec_validate() {
  ++stats_.norec_validations;
  auto& clk = algs::norec_clock();
  for (;;) {
    // Wait out any in-flight write-back, then compare every logged value
    // against memory.  The trailing counter recheck makes the scan atomic:
    // if it still reads t, no write-back overlapped the comparisons.
    const std::uint64_t t = algs::norec_begin_snapshot();
    for (const NorecReadEntry& e : norec_reads_) {
      if (e.addr->load(std::memory_order_acquire) != e.value) {
        ++stats_.norec_val_failures;
        abort_restart(TxAbort::Reason::Conflict);
      }
    }
    if (clk.load(std::memory_order_acquire) == t) {
      start_time_ = t;
      return t;
    }
    // A commit raced the scan; run it again at the newer snapshot.
  }
}

bool TxDescriptor::reads_valid_norec() const noexcept {
  // Non-aborting, non-advancing variant for retry_and_wait: report whether
  // the snapshot still holds without moving start_time_ (const contract of
  // the validate method row).
  auto& clk = algs::norec_clock();
  for (;;) {
    const std::uint64_t t = algs::norec_begin_snapshot();
    if (t == start_time_) return true;  // counter never moved: trivially valid
    for (const NorecReadEntry& e : norec_reads_)
      if (e.addr->load(std::memory_order_acquire) != e.value) return false;
    if (clk.load(std::memory_order_acquire) == t) return true;
  }
}

void TxDescriptor::commit_norec() {
  if (redo_log_.empty()) {
    // Read-only: every read was validated against an unmoved counter at the
    // time it was logged, and read-only transactions need no write-back.
    ++stats_.ro_commits;
    reset_logs();
    return;
  }
  auto& clk = algs::norec_clock();
  std::uint64_t t = start_time_;
  while (!clk.compare_exchange_weak(t, t + 1, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
    // The counter moved past our snapshot (or a write-back is in flight):
    // revalidate forward to a fresh even snapshot and retry the CAS there.
    // norec_validate aborts on a value mismatch and leaves start_time_ at
    // the returned snapshot otherwise.
    t = norec_validate();
  }
  // Counter is odd: this thread owns the write-back window.  Replay the
  // redo log in program order (last write wins) and release with +2.
  for (const RedoEntry& w : redo_log_)
    w.addr->store(w.value, std::memory_order_release);
  clk.store(t + 2, std::memory_order_release);
  ++stats_.norec_commits;
  reset_logs();
  bump_commit_signal();
}

}  // namespace tmcv::tm
