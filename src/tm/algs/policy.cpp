#include "tm/algs/policy.h"

#include "tm/api.h"
#include "util/assert.h"

namespace tmcv::tm {

const algs::AlgMethods& TxDescriptor::alg_methods(Backend b) noexcept {
  // Built inside a member function because forming pointers to the private
  // backend methods requires member access.  One row per runnable backend;
  // Hybrid never reaches a descriptor (the retry loop resolves it), but
  // gets a defensive eager row so an indexing bug fails loudly in debug
  // rather than through a null member pointer.
  static constexpr algs::AlgMethods kAlgTable[kBackendCount] = {
      {Backend::EagerSTM, &TxDescriptor::write_eager,
       &TxDescriptor::commit_eager, &TxDescriptor::reads_valid_orec,
       /*undo_on_rollback=*/true},
      {Backend::LazySTM, &TxDescriptor::write_lazy, &TxDescriptor::commit_lazy,
       &TxDescriptor::reads_valid_orec, /*undo_on_rollback=*/false},
      {Backend::HTM, &TxDescriptor::write_eager, &TxDescriptor::commit_eager,
       &TxDescriptor::reads_valid_orec, /*undo_on_rollback=*/true},
      {Backend::Hybrid, &TxDescriptor::write_eager, &TxDescriptor::commit_eager,
       &TxDescriptor::reads_valid_orec, /*undo_on_rollback=*/true},
      {Backend::NOrec, &TxDescriptor::write_lazy, &TxDescriptor::commit_norec,
       &TxDescriptor::reads_valid_norec, /*undo_on_rollback=*/false},
  };
  const auto i = static_cast<std::size_t>(b);
  TMCV_DEBUG_ASSERT(i < kBackendCount);
  return kAlgTable[i];
}

namespace algs {

Backend resolve_backend(Backend req) noexcept {
  const Backend def = default_backend();
  if (def == Backend::NOrec) return Backend::NOrec;
  if (req == Backend::NOrec) return Backend::LazySTM;
  return req;
}

}  // namespace algs

}  // namespace tmcv::tm
