// LazySTM (TL2-style) write barrier and commit protocol: redo logging,
// commit-time orec acquisition, write-back on success.  The redo-log write
// barrier is shared with NOrec (same buffering semantics; NOrec just never
// touches the orecs at commit).
#include <algorithm>

#include "tm/algs/policy.h"
#include "tm/clock.h"

namespace tmcv::tm {

void TxDescriptor::write_lazy(std::atomic<std::uint64_t>* addr,
                              std::uint64_t value) {
  // Append-only redo log: a repeated write appends a second entry instead of
  // seeking and updating the first, so the store fast path is a plain
  // push_back.  Lookups still resolve to the newest write -- find_redo scans
  // newest-first and the index upsert repoints at the latest entry -- and
  // commit write-back replays the log in program order, so the last write
  // wins there too.  Duplicate entries cost one extra write-back store and
  // an own-lock check at acquisition, both far cheaper than a per-store
  // lookup.
  const auto idx = static_cast<std::uint32_t>(redo_log_.size());
  redo_log_.push_back(RedoEntry{addr, value});
  if (redo_indexed_) {
    if (redo_index_.upsert(addr, idx)) ++stats_.log_index_rehashes;
  } else if (redo_log_.size() > kRedoIndexThreshold) {
    build_redo_index();
  }
}

void TxDescriptor::build_redo_index() {
  // The write set outgrew the linear scan; index every live entry once and
  // switch find_redo to O(1) for the rest of the transaction.  (The index
  // was reset for this log epoch at begin, so plain inserts suffice.)
  for (std::uint32_t i = 0; i < redo_log_.size(); ++i)
    if (redo_index_.upsert(redo_log_[i].addr, i)) ++stats_.log_index_rehashes;
  redo_indexed_ = true;
}

void TxDescriptor::commit_lazy() {
  if (redo_log_.empty()) {
    ++stats_.ro_commits;
    reset_logs();
    return;
  }
  // Acquire every written stripe, one lock per orec.  Duplicate stripes need
  // no side table: the orec word itself records ownership, and the
  // acquisition protocol starts with the load that reveals it -- a stripe we
  // already hold is skipped by the locked_by_me check below for free (the
  // old per-entry lock-index maintenance disappears entirely).
  //
  // Small write sets (the overwhelmingly common case) acquire in encounter
  // order: the whole commit window is a handful of stores, so the polite
  // wait below comfortably outlives any cycle partner and the bounded wait
  // turns ordering hazards into (at worst) one abort.  Large write sets are
  // first deduped and sorted into a global acquisition order, so long
  // commit windows chase each other's locks in one direction and cannot
  // form cyclic polite waits.
  const bool sorted_acquire = redo_log_.size() > kSortedAcquireThreshold;
  if (sorted_acquire) {
    acquire_scratch_.clear();
    for (const RedoEntry& w : redo_log_)
      acquire_scratch_.push_back(&orec_for(w.addr));
    std::sort(acquire_scratch_.begin(), acquire_scratch_.end());
    acquire_scratch_.erase(
        std::unique(acquire_scratch_.begin(), acquire_scratch_.end()),
        acquire_scratch_.end());
  }
  const std::size_t n_stripes =
      sorted_acquire ? acquire_scratch_.size() : redo_log_.size();
  for (std::size_t i = 0; i < n_stripes; ++i) {
    Orec* o =
        sorted_acquire ? acquire_scratch_[i] : &orec_for(redo_log_[i].addr);
    for (;;) {
      OrecWord cur = o->load(std::memory_order_acquire);
      if (orec_is_locked(cur)) {
        if (orec_locked_by_me(cur)) break;  // duplicate stripe: already ours
        // Polite acquisition: commit-time lock holds are short (write-back
        // plus release), so a bounded wait usually outlives the holder and
        // turns what was an instant abort into a brief pause.
        cur = wait_for_orec_unlock(*o);
        if (orec_is_locked(cur)) {
          note_conflict_orec(*o, cur);
          abort_restart(TxAbort::Reason::Conflict);
        }
        continue;  // re-run the protocol against the fresh word
      }
      if (orec_version(cur) > start_time_) {
        if (!extend()) abort_restart(TxAbort::Reason::Conflict);
        continue;
      }
      if (o->compare_exchange_strong(cur, make_locked(slot_),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        note_lock(o, cur);
        break;
      }
    }
  }
  const VersionClock::Tick t = global_clock().tick();
  stats_.clock_cas_reuses += t.reused;
  if ((t.reused || t.time != start_time_ + 1) && !reads_valid_orec())
    abort_restart(TxAbort::Reason::Conflict);
  for (const RedoEntry& w : redo_log_)
    w.addr->store(w.value, std::memory_order_release);
  for (const LockEntry& e : lock_set_)
    e.orec->store(make_version(t.time), std::memory_order_release);
  reset_logs();
  bump_commit_signal();
}

}  // namespace tmcv::tm
