// Global version clock shared by all STM backends (TL2-style timebase).
//
// Versions are logical timestamps: a committed writer advances the clock by
// one and stamps every ownership record it released with the new value.
// Readers validate that everything they read carries a stamp no newer than
// their start time.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/cacheline.h"

namespace tmcv::tm {

class VersionClock {
 public:
  // Current time; used as a transaction's start timestamp.
  [[nodiscard]] std::uint64_t now() const noexcept {
    return time_.load(std::memory_order_acquire);
  }

  // Advance and return the new (commit) timestamp.
  std::uint64_t tick() noexcept {
    return time_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

 private:
  alignas(kCacheLine) std::atomic<std::uint64_t> time_{0};
};

// The process-wide clock instance.
VersionClock& global_clock() noexcept;

}  // namespace tmcv::tm
