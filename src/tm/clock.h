// Global version clock shared by all STM backends (TL2-style timebase).
//
// Versions are logical timestamps: a committed writer advances the clock by
// one and stamps every ownership record it released with the new value.
// Readers validate that everything they read carries a stamp no newer than
// their start time.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/cacheline.h"

namespace tmcv::tm {

class VersionClock {
 public:
  struct Tick {
    std::uint64_t time;  // commit timestamp to stamp released orecs with
    bool reused;         // another committer's concurrent tick was adopted
  };

  // Current time; used as a transaction's start timestamp.
  [[nodiscard]] std::uint64_t now() const noexcept {
    return time_->load(std::memory_order_acquire);
  }

  // Produce a commit timestamp, TL2-GV4 style ("pass on failure"): one CAS
  // attempt; when it fails, a concurrent committer advanced the clock and
  // its strictly newer value is adopted instead of retrying, so under heavy
  // commit traffic the shared line is written once per *winning* committer
  // rather than once per committer.  Adoption is safe: at this point every
  // committer holds its (pairwise disjoint) write locks, and the adopted
  // value is >= the adopter's start time + 1.  The caller MUST fully
  // validate its read set when `reused` -- the classic "time == start + 1
  // means nobody else committed" validation skip is only sound for a tick
  // this committer won itself.
  Tick tick() noexcept {
    std::uint64_t cur = time_->load(std::memory_order_relaxed);
    if (time_->compare_exchange_strong(cur, cur + 1,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire))
      return {cur + 1, false};
    return {cur, true};  // cur was reloaded by the failed CAS
  }

 private:
  CacheAligned<std::atomic<std::uint64_t>> time_;
};

// The process-wide clock instance.
VersionClock& global_clock() noexcept;

}  // namespace tmcv::tm
