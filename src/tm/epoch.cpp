#include "tm/epoch.h"

#include <mutex>
#include <vector>

#include "tm/api.h"
#include "tm/descriptor.h"
#include "tm/registry.h"

namespace tmcv::tm {

namespace {

struct RetiredEntry {
  void* ptr;
  GcDeleter deleter;
  std::uint64_t epoch;
};

std::atomic<std::uint64_t> g_pending{0};

std::mutex& orphan_mutex() {
  static std::mutex m;
  return m;
}
std::vector<RetiredEntry>& orphan_list() {
  static std::vector<RetiredEntry> list;
  return list;
}

// Per-thread bin of retired objects; leftovers are orphaned at thread exit
// so a short-lived thread's garbage is eventually freed by survivors.
struct ThreadBin {
  std::vector<RetiredEntry> entries;

  ~ThreadBin() {
    if (entries.empty()) return;
    std::lock_guard<std::mutex> guard(orphan_mutex());
    auto& orphans = orphan_list();
    orphans.insert(orphans.end(), entries.begin(), entries.end());
  }
};

ThreadBin& thread_bin() {
  thread_local ThreadBin bin;
  return bin;
}

// Free every entry in `entries` whose stamp is older than `min_epoch`;
// compacts in place.
void sweep(std::vector<RetiredEntry>& entries, std::uint64_t min_epoch) {
  std::size_t kept = 0;
  for (RetiredEntry& e : entries) {
    if (e.epoch < min_epoch) {
      e.deleter(e.ptr);
      g_pending.fetch_sub(1, std::memory_order_relaxed);
    } else {
      entries[kept++] = e;
    }
  }
  entries.resize(kept);
}

void retire_now(void* ptr, GcDeleter deleter) {
  ThreadBin& bin = thread_bin();
  bin.entries.push_back(RetiredEntry{
      ptr, deleter, gc_epoch_word().load(std::memory_order_seq_cst)});
  g_pending.fetch_add(1, std::memory_order_relaxed);
  if (bin.entries.size() % 16 == 0) gc_collect();
}

}  // namespace

void retire(void* ptr, GcDeleter deleter) {
  if (descriptor().in_txn()) {
    // Defer to commit: if the enclosing transaction aborts, its unlink
    // rolled back and the node must NOT be retired.
    on_commit([ptr, deleter] { retire_now(ptr, deleter); });
    return;
  }
  retire_now(ptr, deleter);
}

void detail_gc_register_alloc(void* ptr, GcDeleter deleter) {
  if (!descriptor().in_txn()) return;
  // Roll the allocation back if the transaction aborts.
  on_abort([ptr, deleter] { deleter(ptr); });
}

void gc_collect() {
  auto& word = gc_epoch_word();
  const std::uint64_t current = word.load(std::memory_order_seq_cst);

  // Compute the oldest epoch any in-flight transaction announced.  Threads
  // between activity_begin and announce_epoch publish conservatively stale
  // (smaller) values, which only delays frees -- never makes them unsafe.
  std::uint64_t min_epoch = current;
  bool all_current = true;
  Registry& reg = registry();
  const std::uint64_t n = reg.high_water();
  for (std::uint64_t slot = 0; slot < n; ++slot) {
    const TxDescriptor* desc = reg.descriptor(slot);
    if (desc == nullptr) continue;
    if ((desc->activity() & 1ull) == 0) continue;  // not in a transaction
    const std::uint64_t announced = desc->announced_epoch();
    if (announced < min_epoch) min_epoch = announced;
    if (announced != current) all_current = false;
  }

  sweep(thread_bin().entries, min_epoch);

  // Drain orphans opportunistically (never block a fast path on the lock).
  {
    std::unique_lock<std::mutex> guard(orphan_mutex(), std::try_to_lock);
    if (guard.owns_lock()) sweep(orphan_list(), min_epoch);
  }

  // Advance the epoch once every in-flight transaction has caught up; a
  // second collect after the advance can then free this epoch's garbage.
  if (all_current) {
    std::uint64_t expected = current;
    word.compare_exchange_strong(expected, current + 1,
                                 std::memory_order_seq_cst);
  }
}

std::uint64_t gc_pending() {
  return g_pending.load(std::memory_order_relaxed);
}

std::uint64_t gc_epoch() {
  return gc_epoch_word().load(std::memory_order_seq_cst);
}

}  // namespace tmcv::tm
