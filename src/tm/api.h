// Public TM API: tm::atomically, tm::irrevocably, tm::on_commit, tm::var.
//
// Transactions are closures.  `atomically(fn)` runs `fn` speculatively and
// retries it on conflict; because a retried closure re-executes from its
// first instruction with freshly captured state, this API is naturally
// continuation-friendly: the paper's WAIT splits a transaction by committing
// early inside the closure and running the continuation as a second closure
// (see core/condvar.h).
//
// Nesting is flat (paper §4.3): a nested atomically() merges into the
// enclosing transaction and the whole flat nest commits/aborts together.
//
// Contention management (tm/cm.h): jittered exponential backoff between
// retries, escalation to the serial-irrevocable mode after a bounded number
// of attempts *or* a run of consecutive conflict aborts, which guarantees
// progress even on heavily oversubscribed machines.  The HTM backend sizes
// its attempt budget from the global fallback-pressure hysteresis and gives
// up immediately on aborts retrying cannot fix (capacity, syscall),
// emulating RTM's lock-elision fallback discipline.
//
// Thread-safety note on statistics: stats_snapshot is safe to call while
// threads run and exit -- the registry serializes thread-exit folds against
// snapshot scans, so no thread's counters are double-counted or lost; live
// counters are read with per-field eventual consistency.  stats_reset still
// assumes no transaction is concurrently in flight (call it between
// benchmark phases).
#pragma once

#include <functional>
#include <type_traits>
#include <utility>

#include "tm/algs/policy.h"
#include "tm/descriptor.h"

namespace tmcv::tm {

// Process-wide default backend for transactions that do not name one.
void set_default_backend(Backend b) noexcept;
[[nodiscard]] Backend default_backend() noexcept;

[[nodiscard]] inline bool in_txn() noexcept { return descriptor().in_txn(); }

// Register work to run after the outermost enclosing transaction commits
// (immediately when no transaction is active).  REGISTERHANDLER of
// Algorithms 5 and 6.
inline void on_commit(std::function<void()> fn) {
  descriptor().on_commit(std::move(fn));
}

// Register compensation to run if the enclosing transaction aborts.
inline void on_abort(std::function<void()> fn) {
  descriptor().on_abort(std::move(fn));
}

// Allocation-free variants: a function pointer plus a caller-owned context,
// stored in fixed per-descriptor slots (no std::function, no heap).  The
// context must outlive the outermost enclosing transaction -- in practice a
// thread_local or a stack frame that spans the atomically() call.  The wait
// paths use these so registering the one handler a wait needs never
// allocates.
inline void on_commit_fn(TxDescriptor::HandlerFn fn, void* ctx) {
  descriptor().on_commit_fn(fn, ctx);
}

inline void on_abort_fn(TxDescriptor::HandlerFn fn, void* ctx) {
  descriptor().on_abort_fn(fn, ctx);
}

// Queue a semaphore post for the outermost enclosing commit (immediate when
// no transaction is active).  The allocation-free specialization of
// on_commit for the notify fast path: victims accumulate in a per-descriptor
// wake batch and are posted with one coalesced BinarySemaphore::post_batch
// after publication; an abort discards the batch, so no wake escapes an
// aborted transaction (Algorithms 5/6).
inline void defer_wake(BinarySemaphore* sem) {
  descriptor().defer_wake(sem);
}

// Models "a syscall aborts a hardware transaction" (§3.2).  The condvar
// implementation calls this in front of every semaphore operation; correct
// usage never trips it because WAIT commits before sleeping and NOTIFY
// defers posts via on_commit.
inline void syscall_fence() { descriptor().syscall_fence(); }

// Explicitly abort and retry the current transaction (self-abort).
[[noreturn]] inline void retry_txn() {
  descriptor().abort_restart(TxAbort::Reason::Explicit);
}

// Harris-style "retry" (Composable Memory Transactions; the alternative
// condition-synchronization mechanism the paper's §6/§7 discuss): abort
// this transaction and block until some other transaction commits writes,
// then re-execute the closure from the top.  Use inside tm::atomically:
//
//   tm::atomically([&] {
//     if (queue_empty()) tm::retry_wait();   // sleeps, then re-runs
//     consume();
//   });
//
// Wake granularity is any-writing-commit (conservative: never loses a
// wakeup, may re-check the predicate spuriously often under unrelated
// commit traffic -- the classic trade-off versus condvar-style explicit
// notification, measurable with bench/ablation_retry).
[[noreturn]] inline void retry_wait() { descriptor().retry_and_wait(); }

// Punctuated transactions (Smaragdakis et al., discussed in the paper's
// §6): commit the enclosing transaction *now*, run `between` outside any
// transaction (it may block, perform I/O, sleep on a semaphore...), then
// resume a transactional context for the remainder of the enclosing
// atomically() closure.  The WAIT algorithm is the specialization where
// `between` is SEMWAIT(sem).  The continuation resumes irrevocably by
// default; pass false only when the remainder provably cannot abort.
// The programmer owns re-checking invariants that may have been broken
// while atomicity was suspended -- exactly the monitor discipline.
template <typename F>
void punctuate(F&& between, bool irrevocable_resume = true) {
  TxDescriptor& d = descriptor();
  TMCV_ASSERT_MSG(d.in_txn(), "punctuate requires a transactional context");
  d.end_sync_block();
  between();
  d.begin_sync_block(irrevocable_resume);
}

namespace detail {

// Park until the commit signal moves past `observed` (retry_wait support).
void retry_sleep(std::uint32_t observed) noexcept;

template <typename F>
void run_optimistic(Backend backend, F&& fn) {
  TxDescriptor& d = descriptor();
  // Pre-resolve against the process default so the Hybrid hardware-attempt
  // policy below sees the effective backend: under a NOrec default every
  // request (including Hybrid) coerces to NOrec and the HW budget loop is
  // skipped.  A stale read here is harmless -- begin_top re-resolves
  // authoritatively after publishing activity, which is the race-free point.
  backend = algs::resolve_backend(backend);
  if (backend == Backend::Hybrid && !d.in_txn()) {
    // Hybrid policy: a few hardware attempts (sized by the global
    // fallback-pressure hysteresis, so a fallback storm shrinks everyone's
    // budget instead of letting the whole fleet lemming into the lock), then
    // software, then (via the EagerSTM budget below) the serial lock.
    // Capacity and syscall aborts are deterministic for a given closure:
    // retrying in hardware cannot succeed, so they forfeit the remaining
    // hardware budget immediately.  TxAbort from the HTM attempts is
    // consumed here; anything else propagates.
    const int hw_budget = htm_attempt_budget();
    for (int attempt = 1; attempt <= hw_budget; ++attempt) {
      d.begin_top(Backend::HTM);
      try {
        fn();
        d.commit_top();
        note_htm_commit();
        return;
      } catch (const TxAbort& abort) {
        d.after_abort();
        if (abort.reason == TxAbort::Reason::RetryWait) {
          retry_sleep(static_cast<std::uint32_t>(abort.retry_signal));
          --attempt;
        } else if (abort.reason == TxAbort::Reason::Capacity ||
                   abort.reason == TxAbort::Reason::Syscall) {
          break;  // hardware cannot run this closure; stop burning attempts
        } else {
          d.backoff_for_retry();
        }
      } catch (...) {
        if (d.in_txn()) {
          try {
            d.abort_restart(TxAbort::Reason::Explicit);
          } catch (const TxAbort&) {
          }
        }
        throw;
      }
    }
    note_htm_fallback();
    backend = Backend::EagerSTM;  // software fallback
  } else if (backend == Backend::Hybrid) {
    backend = Backend::EagerSTM;  // nested: merge into the software nest
  }
  if (d.in_txn()) {
    // Flat nesting: merge into the enclosing transaction.  TxAbort from the
    // body must propagate to the outermost retry loop untouched.
    d.push_nested();
    try {
      fn();
    } catch (...) {
      // The descriptor may already be Idle (abort paths reset it); only
      // adjust depth when the transaction is still alive.
      if (d.in_txn()) d.pop_nested();
      throw;
    }
    if (d.in_txn()) d.pop_nested();  // a split WAIT may have closed the txn
    return;
  }
  const int budget = backend == Backend::HTM ? htm_attempt_budget()
                                             : kStmAttemptsBeforeSerial;
  // Closures that ever executed retry_wait are *waiting*, not livelocked:
  // they must never escalate to the serial lock (a serial closure blocks
  // every other thread, so the awaited predicate could never become true).
  bool has_retry_waited = false;
  // Hardware aborts that retrying cannot fix (capacity, syscall) skip the
  // rest of the budget and escalate on the next loop head.
  bool hard_fail = false;
  for (int attempt = 1;; ++attempt) {
    if ((attempt > budget || hard_fail || d.cm().wants_serial()) &&
        !has_retry_waited) {
      // Escalate: run irrevocably under the serial lock.
      ++d.stats().serial_fallbacks;
      // A conflict streak hitting the CM limit before the attempt budget is
      // exhausted is the adaptive (karma-style) escalation; count it apart
      // from plain budget exhaustion.
      if (!hard_fail && attempt <= budget) ++d.stats().cm_serial_escalations;
      cm_note_serial_escalation(d.txn_site());
      if (backend == Backend::HTM) note_htm_fallback();
      d.begin_serial();
      try {
        fn();
      } catch (...) {
        // Irrevocable transactions cannot roll back; commit what ran and
        // propagate (mirrors GCC libitm's behaviour for unsafe exceptions).
        // A split WAIT may already have closed the serial section.
        if (d.state() == TxState::Serial) d.commit_serial();
        throw;
      }
      d.commit_top();
      return;
    }
    d.begin_top(backend);
    try {
      fn();
      d.commit_top();
      if (backend == Backend::HTM) note_htm_commit();
      return;
    } catch (const TxAbort& abort) {
      d.after_abort();
      if (abort.reason == TxAbort::Reason::RetryWait) {
        // Deliberate waiting, not contention: park until a commit, and do
        // not let the wait count toward serial escalation.
        has_retry_waited = true;
        retry_sleep(static_cast<std::uint32_t>(abort.retry_signal));
        --attempt;
      } else if (backend == Backend::HTM &&
                 (abort.reason == TxAbort::Reason::Capacity ||
                  abort.reason == TxAbort::Reason::Syscall)) {
        hard_fail = true;  // deterministic hardware failure: go serial now
      } else {
        d.backoff_for_retry();
      }
    } catch (...) {
      // A non-TM exception escaping the body aborts the transaction (all
      // speculative effects undone) and propagates to the caller.
      if (d.in_txn()) {
        try {
          d.abort_restart(TxAbort::Reason::Explicit);
        } catch (const TxAbort&) {
        }
      }
      throw;
    }
  }
}

}  // namespace detail

// Run `fn` as an atomic transaction on the given backend, retrying on
// conflicts.  Returns fn's result (if any); on retry the closure re-executes
// from scratch.
template <typename F>
auto atomically(Backend backend, F&& fn)
    -> std::invoke_result_t<F&> {
  using R = std::invoke_result_t<F&>;
  if constexpr (std::is_void_v<R>) {
    detail::run_optimistic(backend, fn);
  } else {
    // Stage the result outside the transaction so a retry overwrites it.
    // R must be default-constructible and assignable.
    R result{};
    detail::run_optimistic(backend, [&] { result = fn(); });
    return result;
  }
}

template <typename F>
auto atomically(F&& fn) -> std::invoke_result_t<F&> {
  return atomically(default_backend(), std::forward<F>(fn));
}

// Run `fn` irrevocably: no other transaction (optimistic or serial) runs
// concurrently, and `fn` may perform I/O or other non-undoable actions.
// This is the paper's "relaxed transaction" (§5.4).
template <typename F>
auto irrevocably(F&& fn) -> std::invoke_result_t<F&> {
  using R = std::invoke_result_t<F&>;
  TxDescriptor& d = descriptor();
  if (d.in_txn()) {
    TMCV_ASSERT_MSG(d.state() == TxState::Serial,
                    "cannot upgrade an active optimistic transaction to "
                    "irrevocable; declare it at the outermost atomically");
    if constexpr (std::is_void_v<R>) {
      fn();
      return;
    } else {
      return fn();
    }
  }
  d.begin_serial();
  if constexpr (std::is_void_v<R>) {
    try {
      fn();
    } catch (...) {
      if (d.state() == TxState::Serial) d.commit_serial();
      throw;
    }
    d.commit_top();
  } else {
    R result{};
    try {
      result = fn();
    } catch (...) {
      if (d.state() == TxState::Serial) d.commit_serial();
      throw;
    }
    d.commit_top();
    return result;
  }
}

}  // namespace tmcv::tm
