// Persistent worker pool fed by a bounded job queue: bodytrack's thread pool
// and the per-stage pools of ferret/dedup (§5.2).
//
// Jobs are 64-bit payloads dispatched to a fixed worker function (supplied
// at construction); this keeps the queue cells transactional under
// TxnPolicy.  A completion latch supports wait_idle().
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "apps/bounded_queue.h"
#include "apps/sync_policy.h"

namespace tmcv::apps {

template <typename Policy>
class ThreadPool {
 public:
  using Job = std::uint64_t;
  using Worker = std::function<void(Job)>;

  ThreadPool(std::size_t threads, std::size_t queue_capacity, Worker worker)
      : worker_(std::move(worker)), jobs_(queue_capacity) {
    threads_.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
      threads_.emplace_back([this] { run(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() { shutdown(); }

  // Enqueue a job (blocks while the queue is full).  Returns false after
  // shutdown.
  bool submit(Job job) {
    Policy::critical(region_, [&] { outstanding_.set(outstanding_.get() + 1); });
    if (jobs_.push(job)) return true;
    // Queue closed: roll the count back.
    const bool idle = Policy::critical(region_, [&] {
      outstanding_.set(outstanding_.get() - 1);
      return outstanding_.get() == 0;
    });
    if (idle) Policy::notify_all(idle_cv_);
    return false;
  }

  // Block until every submitted job has finished executing.
  void wait_idle() {
    Policy::execute_or_wait(region_, idle_cv_,
                            [&] { return outstanding_.get() == 0; });
  }

  // Stop accepting jobs, drain the queue, and join the workers.
  void shutdown() {
    jobs_.close();
    for (auto& t : threads_)
      if (t.joinable()) t.join();
    threads_.clear();
  }

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return threads_.size();
  }

 private:
  void run() {
    Job job{};
    while (jobs_.pop(job)) {
      worker_(job);
      const bool idle = Policy::critical(region_, [&] {
        outstanding_.set(outstanding_.get() - 1);
        return outstanding_.get() == 0;
      });
      if (idle) Policy::notify_all(idle_cv_);
    }
  }

  Worker worker_;
  BoundedQueue<Policy, Job> jobs_;
  typename Policy::Region region_;
  typename Policy::CondVar idle_cv_;
  typename Policy::template Cell<std::size_t> outstanding_{};
  std::vector<std::thread> threads_;
};

}  // namespace tmcv::apps
