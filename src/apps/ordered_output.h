// Ordered (reorder-buffer) output stage: dedup's coordination between its
// parallel compression workers and the serial output thread (§5.2).  Items
// carry sequence numbers; each submitter blocks until its number is next,
// then emits inside a *relaxed* section (an irrevocable transaction under
// TxnPolicy -- the I/O that produces the paper's §5.4 no-scaling anomaly).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "apps/sync_policy.h"
#include "util/assert.h"

namespace tmcv::apps {

template <typename Policy>
class OrderedOutput {
 public:
  OrderedOutput() = default;

  // Block until sequence number `seq` is next in line, then run `emit`
  // (the I/O) inside a relaxed critical section and advance the cursor.
  template <typename Emit>
  void submit(std::uint64_t seq, Emit&& emit) {
    Policy::execute_or_wait(region_, turn_cv_,
                            [&] { return next_.get() == seq; });
    // Only the owner of `seq` can be here; nobody else advances next_.
    Policy::relaxed(region_, [&] {
      emit();
      next_.set(seq + 1);
    });
    // Several successors may be parked with different numbers; wake all so
    // the right one proceeds (oblivious wake-ups, §3.4).
    Policy::notify_all(turn_cv_);
  }

  [[nodiscard]] std::uint64_t next_sequence() {
    return Policy::critical(region_, [&] { return next_.get(); });
  }

 private:
  typename Policy::Region region_;
  typename Policy::CondVar turn_cv_;
  typename Policy::template Cell<std::uint64_t> next_{};
};

// Reorder buffer for a *single* serial output thread (dedup's actual output
// design): out-of-order items are buffered, and each insert flushes the
// ready prefix in order.  Unlike OrderedOutput, insert never blocks, so the
// serial consumer can keep draining its input queue -- the blocking lives in
// the queue, which is where dedup's condition variables are.
template <typename Policy>
class ReorderBuffer {
 public:
  explicit ReorderBuffer(std::size_t window) : window_(window) {
    slots_.resize(window);
    valid_.resize(window);
    for (std::size_t i = 0; i < window; ++i) {
      slots_[i] = std::make_unique<typename Policy::template Cell<
          std::uint64_t>>();
      valid_[i] = std::make_unique<typename Policy::template Cell<bool>>();
    }
  }

  // Buffer (seq, payload), then emit every consecutive ready item starting
  // at the current cursor.  `emit(seq, payload)` runs inside a relaxed
  // section (irrevocable transaction under TxnPolicy) because it performs
  // the output I/O.  Requires seq < cursor + window (bounded skew, which
  // the pipeline's bounded queues guarantee).
  template <typename Emit>
  void insert(std::uint64_t seq, std::uint64_t payload, Emit&& emit) {
    Policy::critical(region_, [&] {
      const std::size_t slot = seq % window_;
      TMCV_ASSERT_MSG(!valid_[slot]->get(), "reorder window overflow");
      slots_[slot]->set(payload);
      valid_[slot]->set(true);
    });
    // Flush the ready prefix.  Single consumer: nobody else moves next_.
    for (;;) {
      std::uint64_t seq_ready = 0;
      std::uint64_t payload_ready = 0;
      const bool have = Policy::critical(region_, [&] {
        const std::uint64_t next = next_.get();
        const std::size_t slot = next % window_;
        if (!valid_[slot]->get()) return false;
        seq_ready = next;
        payload_ready = slots_[slot]->get();
        valid_[slot]->set(false);
        next_.set(next + 1);
        return true;
      });
      if (!have) break;
      Policy::relaxed(region_, [&] { emit(seq_ready, payload_ready); });
    }
  }

  [[nodiscard]] std::uint64_t next_sequence() {
    return Policy::critical(region_, [&] { return next_.get(); });
  }

 private:
  const std::size_t window_;
  typename Policy::Region region_;
  std::vector<
      std::unique_ptr<typename Policy::template Cell<std::uint64_t>>>
      slots_;
  std::vector<std::unique_ptr<typename Policy::template Cell<bool>>> valid_;
  typename Policy::template Cell<std::uint64_t> next_{};
};

}  // namespace tmcv::apps
