// Dynamic, load-balanced task queues with work stealing and a completion
// latch: the facesim pattern (per-thread queues filled by the main thread,
// which then waits for the workers to drain them), also used standalone as
// raytrace's multi-threaded tile queue (§5.2).
//
// Tasks are 64-bit payloads (cell-compatible); the meaning is up to the
// kernel.  One coarse region protects the whole set, mirroring the original
// taskQ's single internal lock.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/sync_policy.h"
#include "util/assert.h"

namespace tmcv::apps {

template <typename Policy>
class TaskQueueSet {
 public:
  using Task = std::uint64_t;

  TaskQueueSet(std::size_t queues, std::size_t capacity_per_queue)
      : queues_(queues), capacity_(capacity_per_queue) {
    TMCV_ASSERT(queues > 0);
    rings_.reserve(queues);
    for (std::size_t q = 0; q < queues; ++q)
      rings_.emplace_back(std::make_unique<Ring>(capacity_per_queue));
  }

  // Add a task to queue q (typically by the main thread).  Fails (returns
  // false) only if that ring is full.
  bool add(std::size_t q, Task task) {
    TMCV_ASSERT(q < queues_);
    const bool added = Policy::critical(region_, [&] {
      Ring& ring = *rings_[q];
      const std::size_t count = ring.count.get();
      if (count == capacity_) return false;
      const std::size_t tail = ring.tail.get();
      ring.slots[tail].set(task);
      ring.tail.set((tail + 1) % capacity_);
      ring.count.set(count + 1);
      pending_.set(pending_.get() + 1);
      return true;
    });
    if (added) Policy::notify_all(work_cv_);
    return added;
  }

  // Take a task, preferring our own queue and stealing round-robin
  // otherwise; blocks while every ring is empty.  Returns false when the
  // set has been stopped and no work remains.
  bool take(std::size_t self, Task& out) {
    TMCV_ASSERT(self < queues_);
    bool got = false;
    Policy::execute_or_wait(region_, work_cv_, [&] {
      // Own queue first (load balance: stealing only when starved).
      for (std::size_t i = 0; i < queues_; ++i) {
        Ring& ring = *rings_[(self + i) % queues_];
        const std::size_t count = ring.count.get();
        if (count == 0) continue;
        const std::size_t head = ring.head.get();
        out = ring.slots[head].get();
        ring.head.set((head + 1) % capacity_);
        ring.count.set(count - 1);
        got = true;
        return true;
      }
      if (stopped_.get()) {
        got = false;
        return true;
      }
      return false;  // nothing anywhere: wait for add() or stop()
    });
    return got;
  }

  // Mark one taken task finished; the completion latch trips at zero.
  void complete() {
    const bool all_done = Policy::critical(region_, [&] {
      const std::size_t pending = pending_.get();
      TMCV_ASSERT(pending > 0);
      pending_.set(pending - 1);
      return pending - 1 == 0;
    });
    if (all_done) Policy::notify_all(done_cv_);
  }

  // Main thread: block until every added task has been completed.
  void wait_all() {
    Policy::execute_or_wait(region_, done_cv_,
                            [&] { return pending_.get() == 0; });
  }

  // Wake all takers permanently (shutdown).
  void stop() {
    Policy::critical(region_, [&] { stopped_.set(true); });
    Policy::notify_all(work_cv_);
  }

  [[nodiscard]] std::size_t pending() {
    return Policy::critical(region_, [&] { return pending_.get(); });
  }

 private:
  struct Ring {
    explicit Ring(std::size_t capacity) : slots(capacity) {}
    std::vector<typename Policy::template Cell<Task>> slots;
    typename Policy::template Cell<std::size_t> head{};
    typename Policy::template Cell<std::size_t> tail{};
    typename Policy::template Cell<std::size_t> count{};
  };

  const std::size_t queues_;
  const std::size_t capacity_;
  typename Policy::Region region_;
  typename Policy::CondVar work_cv_;
  typename Policy::CondVar done_cv_;
  std::vector<std::unique_ptr<Ring>> rings_;
  typename Policy::template Cell<std::size_t> pending_{};
  typename Policy::template Cell<bool> stopped_{};
};

}  // namespace tmcv::apps
