// Multi-stage pipeline with a bounded queue between stages and a worker
// pool per stage: the skeleton of ferret (6 stages) and dedup (5 stages)
// (§5.2).  Items are 64-bit payloads; each stage maps an item to an output
// item via a stage function, and the final stage's outputs go to a sink.
//
// Shutdown is cascaded: when a stage's input queue is closed and drained,
// its workers exit, and the *last* worker out closes the next stage's
// queue.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "apps/bounded_queue.h"
#include "apps/sync_policy.h"
#include "util/assert.h"

namespace tmcv::apps {

template <typename Policy>
class Pipeline {
 public:
  using Item = std::uint64_t;
  // Stage function: stage index, input item -> output item.
  using StageFn = std::function<Item(std::size_t, Item)>;
  using SinkFn = std::function<void(Item)>;

  struct Config {
    std::size_t stages = 3;
    std::size_t workers_per_stage = 1;
    std::size_t queue_capacity = 64;
    // 0 = same as workers_per_stage.  dedup uses 1: its output stage is a
    // single serial thread.
    std::size_t workers_last_stage = 0;

    [[nodiscard]] std::size_t workers_for(std::size_t stage) const noexcept {
      if (stage + 1 == stages && workers_last_stage != 0)
        return workers_last_stage;
      return workers_per_stage;
    }
  };

  Pipeline(Config config, StageFn stage_fn, SinkFn sink_fn)
      : cfg_(config),
        stage_fn_(std::move(stage_fn)),
        sink_fn_(std::move(sink_fn)) {
    TMCV_ASSERT(cfg_.stages >= 1);
    queues_.reserve(cfg_.stages);
    for (std::size_t s = 0; s < cfg_.stages; ++s)
      queues_.emplace_back(
          std::make_unique<BoundedQueue<Policy, Item>>(cfg_.queue_capacity));
    live_workers_.reserve(cfg_.stages);
    for (std::size_t s = 0; s < cfg_.stages; ++s)
      live_workers_.emplace_back(
          std::make_unique<std::atomic<std::size_t>>(cfg_.workers_for(s)));
    for (std::size_t s = 0; s < cfg_.stages; ++s)
      for (std::size_t w = 0; w < cfg_.workers_for(s); ++w)
        threads_.emplace_back([this, s] { run_stage(s); });
  }

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  ~Pipeline() { finish(); }

  // Feed one item into the first stage (blocks when the queue is full).
  bool feed(Item item) { return queues_[0]->push(item); }

  // Close the input and wait for every in-flight item to reach the sink.
  void finish() {
    if (finished_) return;
    finished_ = true;
    queues_[0]->close();
    for (auto& t : threads_)
      if (t.joinable()) t.join();
  }

 private:
  void run_stage(std::size_t s) {
    Item item{};
    while (queues_[s]->pop(item)) {
      const Item out = stage_fn_(s, item);
      if (s + 1 < cfg_.stages)
        queues_[s + 1]->push(out);
      else
        sink_fn_(out);
    }
    // Input closed and drained: the last worker of this stage closes the
    // next stage's input.
    if (live_workers_[s]->fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        s + 1 < cfg_.stages)
      queues_[s + 1]->close();
  }

  Config cfg_;
  StageFn stage_fn_;
  SinkFn sink_fn_;
  std::vector<std::unique_ptr<BoundedQueue<Policy, Item>>> queues_;
  std::vector<std::unique_ptr<std::atomic<std::size_t>>> live_workers_;
  std::vector<std::thread> threads_;
  bool finished_ = false;
};

}  // namespace tmcv::apps
