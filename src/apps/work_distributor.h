// Master/slave work distribution: streamcluster's pattern where a master
// thread hands a command to every slave, then waits for all of them to
// finish it (§5.2).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/sync_policy.h"
#include "util/assert.h"

namespace tmcv::apps {

template <typename Policy>
class WorkDistributor {
 public:
  using Command = std::uint64_t;
  static constexpr Command kStop = ~Command{0};

  explicit WorkDistributor(std::size_t slaves)
      : slaves_(slaves), has_task_(slaves) {
    TMCV_ASSERT(slaves > 0);
  }

  // Master: broadcast a command to every slave and block until all report
  // completion.
  void distribute_and_wait(Command cmd) {
    Policy::critical(region_, [&] {
      command_.set(cmd);
      done_count_.set(0);
      for (std::size_t s = 0; s < slaves_; ++s) has_task_[s].set(true);
    });
    Policy::notify_all(task_cv_);
    Policy::execute_or_wait(region_, done_cv_,
                            [&] { return done_count_.get() == slaves_; });
  }

  // Master: release the slaves permanently.
  void stop() {
    Policy::critical(region_, [&] {
      command_.set(kStop);
      for (std::size_t s = 0; s < slaves_; ++s) has_task_[s].set(true);
    });
    Policy::notify_all(task_cv_);
  }

  // Slave: block for the next command; returns false on kStop.
  bool await_command(std::size_t self, Command& out) {
    TMCV_ASSERT(self < slaves_);
    Command cmd{};
    Policy::execute_or_wait(region_, task_cv_, [&] {
      if (!has_task_[self].get()) return false;
      has_task_[self].set(false);
      cmd = command_.get();
      return true;
    });
    if (cmd == kStop) return false;
    out = cmd;
    return true;
  }

  // Slave: report the current command finished.
  void report_done() {
    const bool all = Policy::critical(region_, [&] {
      done_count_.set(done_count_.get() + 1);
      return done_count_.get() == slaves_;
    });
    if (all) Policy::notify_all(done_cv_);
  }

 private:
  const std::size_t slaves_;
  typename Policy::Region region_;
  typename Policy::CondVar task_cv_;
  typename Policy::CondVar done_cv_;
  typename Policy::template Cell<Command> command_{};
  typename Policy::template Cell<std::size_t> done_count_{};
  std::vector<typename Policy::template Cell<bool>> has_task_;
};

}  // namespace tmcv::apps
