// Sense-reversing (generation-counted) barrier built on a condition
// variable, replicating the pattern fluidanimate, streamcluster and
// bodytrack use in place of pthread_barrier (§5.2).
#pragma once

#include <cstdint>

#include "apps/sync_policy.h"
#include "util/assert.h"

namespace tmcv::apps {

template <typename Policy>
class CvBarrier {
 public:
  explicit CvBarrier(std::size_t parties) : parties_(parties) {
    TMCV_ASSERT(parties > 0);
  }

  // Block until all `parties` threads have arrived.
  void arrive_and_wait() {
    std::uint64_t my_generation = 0;
    bool last = false;
    Policy::critical(region_, [&] {
      my_generation = generation_.get();
      const std::size_t arrived = arrived_.get() + 1;
      if (arrived == parties_) {
        last = true;
        arrived_.set(0);
        generation_.set(my_generation + 1);
      } else {
        arrived_.set(arrived);
      }
    });
    if (last) {
      Policy::notify_all(cv_);
      return;
    }
    // The generation check re-runs inside a fresh critical section, so a
    // release that lands between our arrival and our wait is never missed.
    Policy::execute_or_wait(region_, cv_, [&] {
      return generation_.get() != my_generation;
    });
  }

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

  [[nodiscard]] std::uint64_t generation() {
    return Policy::critical(region_, [&] { return generation_.get(); });
  }

 private:
  const std::size_t parties_;
  typename Policy::Region region_;
  typename Policy::CondVar cv_;
  typename Policy::template Cell<std::size_t> arrived_{};
  typename Policy::template Cell<std::uint64_t> generation_{};
};

}  // namespace tmcv::apps
