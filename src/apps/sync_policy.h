// Synchronization policies: the three software systems of the paper's
// evaluation (§5.3), expressed as interchangeable template policies so every
// building block and PARSEC kernel compiles once per system.
//
//   PthreadPolicy -- Parsec+pthreadCondVar: mutex critical sections,
//                    std::condition_variable.  The baseline.
//   TmCvPolicy    -- Parsec+TMCondVar: mutex critical sections, but our
//                    transaction-friendly condition variables (whose queues
//                    are protected by transactions internally).
//   TxnPolicy     -- TMParsec+TMCondVar: every critical section replaced by
//                    a transaction; shared data lives in tm::var cells;
//                    waits are manually refactored (transaction split at
//                    WAIT), exactly like the paper's PARSEC port.
//
// Policy surface:
//   Region           -- what a critical section locks (mutex / nothing)
//   CondVar          -- the condition-synchronization object
//   Cell<T>          -- shared data cell, valid inside critical sections
//   critical(r, fn)        -- run fn as a critical section, return its value
//   relaxed(r, fn)         -- critical section allowed to do I/O
//                             (irrevocable transaction under TxnPolicy)
//   execute_or_wait(r, cv, fn)
//                    -- the Mesa wait loop: run fn in a critical section;
//                       if it returns false, wait on cv (splitting the
//                       section) and retry until it returns true
//   notify_one/notify_all(cv)
//                    -- callable from inside or outside critical sections
#pragma once

#include <condition_variable>
#include <mutex>
#include <type_traits>
#include <utility>

#include "core/condvar.h"
#include "core/legacy_cv.h"
#include "tm/api.h"
#include "tm/txn_sync.h"
#include "tm/var.h"

namespace tmcv::apps {

// Plain cell: protection comes from the enclosing mutex.
template <typename T>
class PlainCell {
 public:
  constexpr PlainCell() noexcept : value_{} {}
  explicit constexpr PlainCell(T initial) noexcept : value_(initial) {}
  [[nodiscard]] T get() const noexcept { return value_; }
  void set(T v) noexcept { value_ = v; }

 private:
  T value_;
};

// Transactional cell adapter with the same get/set spelling.
template <typename T>
class TxCell {
 public:
  constexpr TxCell() noexcept = default;
  explicit TxCell(T initial) noexcept : value_(initial) {}
  [[nodiscard]] T get() const { return value_.load(); }
  void set(T v) { value_.store(v); }

 private:
  tm::var<T> value_;
};

// ---------------------------------------------------------------------------

struct PthreadPolicy {
  static constexpr const char* name() noexcept { return "pthread"; }
  static constexpr bool kTransactional = false;

  using Region = std::mutex;
  using CondVar = std::condition_variable;
  template <typename T>
  using Cell = PlainCell<T>;

  template <typename F>
  static auto critical(Region& m, F&& fn) {
    std::lock_guard<Region> guard(m);
    return fn();
  }

  template <typename F>
  static auto relaxed(Region& m, F&& fn) {
    return critical(m, std::forward<F>(fn));
  }

  template <typename F>
  static void execute_or_wait(Region& m, CondVar& cv, F&& fn) {
    std::unique_lock<Region> lock(m);
    while (!fn()) cv.wait(lock);
  }

  static void notify_one(CondVar& cv) { cv.notify_one(); }
  static void notify_all(CondVar& cv) { cv.notify_all(); }
};

// ---------------------------------------------------------------------------

struct TmCvPolicy {
  static constexpr const char* name() noexcept { return "tmcv"; }
  static constexpr bool kTransactional = false;

  using Region = std::mutex;
  using CondVar = tmcv::condition_variable;
  template <typename T>
  using Cell = PlainCell<T>;

  template <typename F>
  static auto critical(Region& m, F&& fn) {
    // Declared before the guard so it outlives the unlock: notifies issued
    // inside the section morph onto this mutex's relay chain
    // (sync/wait_morph.h), waking one waiter per unlock instead of the
    // whole herd.
    WakeHandoffScope scope(m);
    std::lock_guard<Region> guard(m);
    return fn();
  }

  template <typename F>
  static auto relaxed(Region& m, F&& fn) {
    return critical(m, std::forward<F>(fn));
  }

  template <typename F>
  static void execute_or_wait(Region& m, CondVar& cv, F&& fn) {
    WakeHandoffScope scope(m);  // fn may notify; see critical()
    std::unique_lock<Region> lock(m);
    while (!fn()) cv.wait(lock);  // no spurious wakeups; loop handles
                                  // oblivious ones under notify_all
  }

  static void notify_one(CondVar& cv) { cv.notify_one(); }
  static void notify_all(CondVar& cv) { cv.notify_all(); }
};

// ---------------------------------------------------------------------------

struct TxnPolicy {
  static constexpr const char* name() noexcept { return "tm"; }
  static constexpr bool kTransactional = true;

  // Transactions need no named region; the empty struct keeps signatures
  // uniform (and marks where a lock used to be).
  struct Region {};
  using CondVar = tmcv::CondVar;
  template <typename T>
  using Cell = TxCell<T>;

  template <typename F>
  static auto critical(Region&, F&& fn) {
    return tm::atomically(std::forward<F>(fn));
  }

  // Relaxed transaction: irrevocable, may perform I/O; serializes against
  // all other transactions (the paper's dedup anomaly, §5.4).
  template <typename F>
  static auto relaxed(Region&, F&& fn) {
    return tm::irrevocably(std::forward<F>(fn));
  }

  // The manual refactoring of §5.3: each iteration is one transaction; a
  // false predicate enqueues and splits at the WAIT, and the retry runs a
  // fresh transaction.  Predicate check and enqueue are atomic, so no
  // notify can fall between them.
  template <typename F>
  static void execute_or_wait(Region&, CondVar& cv, F&& fn) {
    for (;;) {
      bool satisfied = false;
      tm::atomically([&] {
        satisfied = fn();
        if (!satisfied) {
          tm::TxnSync sync;
          cv.wait_final(sync);
        }
      });
      if (satisfied) return;
    }
  }

  static void notify_one(CondVar& cv) { cv.notify_one(); }
  static void notify_all(CondVar& cv) { cv.notify_all(); }
};

}  // namespace tmcv::apps
