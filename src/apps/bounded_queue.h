// Bounded multi-producer/multi-consumer FIFO queue with close semantics,
// templated on a SyncPolicy.  The condition-synchronization skeleton of
// ferret's and dedup's per-stage job queues (§5.2).
//
// T must be trivially copyable and at most 8 bytes (it lives in policy
// cells so the TxnPolicy instantiation is transactional end-to-end).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/sync_policy.h"
#include "util/assert.h"

namespace tmcv::apps {

template <typename Policy, typename T = std::uint64_t>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity), slots_(capacity) {
    TMCV_ASSERT(capacity > 0);
  }

  // Blocking push; returns false iff the queue was closed.
  bool push(T value) {
    bool pushed = false;
    Policy::execute_or_wait(region_, not_full_, [&] {
      if (closed_.get()) {
        pushed = false;
        return true;  // closed: stop waiting, report failure
      }
      const std::size_t count = count_.get();
      if (count == capacity_) return false;  // full: wait
      const std::size_t tail = tail_.get();
      slots_[tail].set(value);
      tail_.set((tail + 1) % capacity_);
      count_.set(count + 1);
      pushed = true;
      return true;
    });
    if (pushed) Policy::notify_one(not_empty_);
    return pushed;
  }

  // Blocking pop; returns false iff the queue is closed AND drained.
  bool pop(T& out) {
    bool popped = false;
    Policy::execute_or_wait(region_, not_empty_, [&] {
      const std::size_t count = count_.get();
      if (count == 0) {
        if (closed_.get()) {
          popped = false;
          return true;  // closed and empty: stop waiting
        }
        return false;  // empty: wait
      }
      const std::size_t head = head_.get();
      out = slots_[head].get();
      head_.set((head + 1) % capacity_);
      count_.set(count - 1);
      popped = true;
      return true;
    });
    if (popped) Policy::notify_one(not_full_);
    return popped;
  }

  // Non-blocking variants.
  bool try_push(T value) {
    const bool pushed = Policy::critical(region_, [&] {
      if (closed_.get() || count_.get() == capacity_) return false;
      const std::size_t tail = tail_.get();
      slots_[tail].set(value);
      tail_.set((tail + 1) % capacity_);
      count_.set(count_.get() + 1);
      return true;
    });
    if (pushed) Policy::notify_one(not_empty_);
    return pushed;
  }

  bool try_pop(T& out) {
    const bool popped = Policy::critical(region_, [&] {
      if (count_.get() == 0) return false;
      const std::size_t head = head_.get();
      out = slots_[head].get();
      head_.set((head + 1) % capacity_);
      count_.set(count_.get() - 1);
      return true;
    });
    if (popped) Policy::notify_one(not_full_);
    return popped;
  }

  // Close the queue: pending pops drain remaining items then fail; pushes
  // fail immediately.  Idempotent.
  void close() {
    Policy::critical(region_, [&] { closed_.set(true); });
    Policy::notify_all(not_empty_);
    Policy::notify_all(not_full_);
  }

  [[nodiscard]] std::size_t size() {
    return Policy::critical(region_, [&] { return count_.get(); });
  }

  [[nodiscard]] bool closed() {
    return Policy::critical(region_, [&] { return closed_.get(); });
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  typename Policy::Region region_;
  typename Policy::CondVar not_empty_;
  typename Policy::CondVar not_full_;
  std::vector<typename Policy::template Cell<T>> slots_;
  typename Policy::template Cell<std::size_t> head_{};
  typename Policy::template Cell<std::size_t> tail_{};
  typename Policy::template Cell<std::size_t> count_{};
  typename Policy::template Cell<bool> closed_{};
};

}  // namespace tmcv::apps
