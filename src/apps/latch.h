// Completion latch: N parties report once each; waiters block until the
// target is reached.  Reusable via wait_and_reset (bodytrack's per-frame
// completion barrier between the main thread and its worker pool).
#pragma once

#include <cstddef>

#include "apps/sync_policy.h"

namespace tmcv::apps {

template <typename Policy>
class Latch {
 public:
  Latch() = default;

  explicit Latch(std::size_t target) { set_target(target); }

  // Set the number of report() calls wait() blocks for.
  void set_target(std::size_t target) {
    Policy::critical(region_, [&] { target_.set(target); });
  }

  // One party reports completion.
  void report() {
    const bool full = Policy::critical(region_, [&] {
      arrived_.set(arrived_.get() + 1);
      return target_.get() != 0 && arrived_.get() >= target_.get();
    });
    if (full) Policy::notify_all(cv_);
  }

  // Block until `target` reports have arrived (target must be set).
  void wait() {
    Policy::execute_or_wait(region_, cv_, [&] {
      return target_.get() != 0 && arrived_.get() >= target_.get();
    });
  }

  // Block, then re-arm for the next round with `target` parties.
  void wait_and_reset(std::size_t target) {
    Policy::critical(region_, [&] { target_.set(target); });
    Policy::execute_or_wait(region_, cv_,
                            [&] { return arrived_.get() >= target_.get(); });
    Policy::critical(region_, [&] { arrived_.set(0); });
  }

  [[nodiscard]] std::size_t arrived() {
    return Policy::critical(region_, [&] { return arrived_.get(); });
  }

 private:
  typename Policy::Region region_;
  typename Policy::CondVar cv_;
  typename Policy::template Cell<std::size_t> arrived_{};
  typename Policy::template Cell<std::size_t> target_{};
};

}  // namespace tmcv::apps
