// Wire protocol of the transactional KV-cache server: newline-delimited
// text, one request per line, chosen for debuggability (drive it with nc)
// and parse cost (one scan per line, no allocation).
//
//   get <key>\n          ->  V <value>\n   |  M\n        (miss)
//   set <key> <value>\n  ->  S\n
//   del <key>\n          ->  D\n           |  M\n        (absent)
//   stats\n              ->  ST hits=<h> misses=<m> evictions=<e> size=<s>\n
//   quit\n               ->  (connection closed)
//   anything else        ->  E bad\n
//
// Keys are arbitrary byte strings (no spaces/newlines) hashed to 64 bits
// with FNV-1a; the store indexes the hash.  At 2^64 key space the collision
// probability across even hundreds of millions of distinct keys is
// negligible for a cache (a collision returns a stale value, never corrupts
// the store).  Values are unsigned 64-bit decimals.
#pragma once

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>

namespace tmcv::apps::kv {

enum class OpKind : std::uint8_t { kGet, kSet, kDel, kStats, kQuit, kBad };

struct Request {
  OpKind kind = OpKind::kBad;
  std::uint64_t key = 0;    // FNV-1a of the key token
  std::uint64_t value = 0;  // set only
};

// FNV-1a 64-bit: cheap, decent diffusion, endian-stable.
[[nodiscard]] inline std::uint64_t hash_key(std::string_view key) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace detail {

// [begin, end) split at the first space; empty second token when none.
inline void split2(std::string_view line, std::string_view& head,
                   std::string_view& rest) noexcept {
  const std::size_t sp = line.find(' ');
  if (sp == std::string_view::npos) {
    head = line;
    rest = {};
  } else {
    head = line.substr(0, sp);
    rest = line.substr(sp + 1);
  }
}

[[nodiscard]] inline bool parse_u64(std::string_view tok,
                                    std::uint64_t& out) noexcept {
  if (tok.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), out);
  return ec == std::errc{} && ptr == tok.data() + tok.size();
}

}  // namespace detail

// Parse one request line (WITHOUT the trailing '\n'; a trailing '\r' is
// tolerated for telnet-style clients).  Never throws; malformed input
// parses to kBad.
[[nodiscard]] inline Request parse_request(std::string_view line) noexcept {
  Request req;
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::string_view verb;
  std::string_view rest;
  detail::split2(line, verb, rest);
  if (verb == "get") {
    if (rest.empty() || rest.find(' ') != std::string_view::npos) return req;
    req.kind = OpKind::kGet;
    req.key = hash_key(rest);
  } else if (verb == "set") {
    std::string_view key;
    std::string_view val;
    detail::split2(rest, key, val);
    if (key.empty() || !detail::parse_u64(val, req.value)) return req;
    req.kind = OpKind::kSet;
    req.key = hash_key(key);
  } else if (verb == "del") {
    if (rest.empty() || rest.find(' ') != std::string_view::npos) return req;
    req.kind = OpKind::kDel;
    req.key = hash_key(rest);
  } else if (verb == "stats") {
    req.kind = OpKind::kStats;
  } else if (verb == "quit") {
    req.kind = OpKind::kQuit;
  }
  return req;
}

// Response renderers append to an output buffer the caller flushes once per
// batch (the server's syscall budget lives or dies on this).
inline void append_value(std::string& out, std::uint64_t value) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  (void)ec;
  out.append("V ", 2);
  out.append(buf, static_cast<std::size_t>(ptr - buf));
  out.push_back('\n');
}

inline void append_miss(std::string& out) { out.append("M\n", 2); }
inline void append_stored(std::string& out) { out.append("S\n", 2); }
inline void append_deleted(std::string& out) { out.append("D\n", 2); }
inline void append_bad(std::string& out) { out.append("E bad\n", 6); }

inline void append_stats(std::string& out, std::uint64_t hits,
                         std::uint64_t misses, std::uint64_t evictions,
                         std::uint64_t size) {
  out.append("ST hits=");
  out.append(std::to_string(hits));
  out.append(" misses=");
  out.append(std::to_string(misses));
  out.append(" evictions=");
  out.append(std::to_string(evictions));
  out.append(" size=");
  out.append(std::to_string(size));
  out.push_back('\n');
}

}  // namespace tmcv::apps::kv
