// Standalone KV-cache server binary.
//
//   tmcv_kv_server [--port N] [--workers N] [--shards N] [--capacity N]
//                  [--buckets N] [--serve-metrics[=PORT]]
//
// Prints the bound data port (and metrics port when enabled) on stdout,
// then runs until SIGINT/SIGTERM.  Port 0 (the default) asks the kernel
// for a free port -- scripts parse the "listening on" line.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "apps/kv/kv_server.h"
#include "util/cpu.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--workers N] [--shards N]\n"
               "          [--capacity N] [--buckets N] [--serve-metrics[=PORT]]\n"
               "  --port N           data port (default 0 = kernel-assigned)\n"
               "  --workers N        worker threads (default: online CPUs)\n"
               "  --shards N         store shards, power of two (default 8)\n"
               "  --capacity N       entries per shard (default 4096)\n"
               "  --buckets N        hash buckets per shard, power of two "
               "(default 4096)\n"
               "  --serve-metrics    telemetry endpoint (PORT omitted or 0: "
               "ephemeral)\n",
               argv0);
}

bool parse_unsigned(const char* s, long& out) {
  char* end = nullptr;
  out = std::strtol(s, &end, 10);
  return end != s && *end == '\0' && out >= 0;
}

}  // namespace

int main(int argc, char** argv) {
  tmcv::apps::kv::KvOptions opts;
  opts.workers = tmcv::effective_cpus();
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    long value = 0;
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--port") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, value) || value > 65535) {
        usage(argv[0]);
        return 2;
      }
      opts.port = static_cast<std::uint16_t>(value);
    } else if (std::strcmp(arg, "--workers") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, value) || value < 1) {
        usage(argv[0]);
        return 2;
      }
      opts.workers = static_cast<unsigned>(value);
    } else if (std::strcmp(arg, "--shards") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, value) || value < 1) {
        usage(argv[0]);
        return 2;
      }
      opts.shards = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--capacity") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, value) || value < 1) {
        usage(argv[0]);
        return 2;
      }
      opts.capacity_per_shard = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--buckets") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, value) || value < 1) {
        usage(argv[0]);
        return 2;
      }
      opts.buckets_per_shard = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--serve-metrics") == 0) {
      opts.metrics_port = 0;
    } else if (std::strncmp(arg, "--serve-metrics=", 16) == 0) {
      if (!parse_unsigned(arg + 16, value) || value > 65535) {
        usage(argv[0]);
        return 2;
      }
      opts.metrics_port = static_cast<int>(value);
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  tmcv::apps::kv::KvServer server;
  if (!server.start(opts)) {
    std::fprintf(stderr, "tmcv_kv_server: start failed: %s\n",
                 std::strerror(errno));
    return 1;
  }
  std::printf("kv-server listening on 127.0.0.1:%u (%u workers, %zu shards)\n",
              server.port(), opts.workers, opts.shards);
  if (opts.metrics_port >= 0)
    std::printf("kv-server metrics on http://127.0.0.1:%u/metrics.json\n",
                server.metrics_port());
  std::fflush(stdout);

  // Park until SIGINT/SIGTERM (sigwait: no handler-safety concerns).
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  int sig = 0;
  sigwait(&set, &sig);
  std::printf("kv-server: signal %d, shutting down\n", sig);
  server.stop();
  return 0;
}
