// Standalone KV-cache server binary.
//
//   tmcv_kv_server [--port N] [--workers N] [--shards N] [--capacity N]
//                  [--buckets N] [--serve-metrics[=PORT]] [--history[=MS]]
//                  [--watchdog] [--dump-on-exit=PATH] [--backend=NAME]
//
// Prints the bound data port (and metrics port when enabled) on stdout,
// then runs until SIGINT/SIGTERM.  Port 0 (the default) asks the kernel
// for a free port -- scripts parse the "listening on" line.
//
// Shutdown is graceful and talkative: SIGINT/SIGTERM stops accepting,
// drains the workers (KvServer::stop joins every thread), then prints a
// final metrics + attribution summary -- or writes a full flight-recorder
// dump when --dump-on-exit was given.  SIGUSR2 writes a flight dump
// mid-run (to the --dump-on-exit path, or ./kv_flight.json) and keeps
// serving.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/kv/kv_server.h"
#include "tm/algs/adaptive.h"
#include "tm/api.h"
#include "obs/attribution.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/watchdog.h"
#include "util/cpu.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--workers N] [--shards N]\n"
               "          [--capacity N] [--buckets N] [--serve-metrics[=PORT]]\n"
               "          [--history[=MS]] [--watchdog] [--dump-on-exit=PATH]\n"
               "  --port N           data port (default 0 = kernel-assigned)\n"
               "  --workers N        worker threads (default: online CPUs)\n"
               "  --shards N         store shards, power of two (default 8)\n"
               "  --capacity N       entries per shard (default 4096)\n"
               "  --buckets N        hash buckets per shard, power of two "
               "(default 4096)\n"
               "  --serve-metrics    telemetry endpoint (PORT omitted or 0: "
               "ephemeral)\n"
               "  --history[=MS]     time-series recorder, MS ms cadence "
               "(default 1000)\n"
               "  --watchdog         SLO watchdog on default rules (implies "
               "--history)\n"
               "  --watchdog-abort-ratio=F  override the abort-storm "
               "threshold (smoke tests)\n"
               "  --dump-on-exit=P   write a flight dump to P at shutdown "
               "(and on alert/SIGUSR2)\n"
               "  --backend=NAME     TM backend: eager|lazy|htm|hybrid|norec "
               "or auto (adaptive)\n",
               argv0);
}

bool parse_unsigned(const char* s, long& out) {
  char* end = nullptr;
  out = std::strtol(s, &end, 10);
  return end != s && *end == '\0' && out >= 0;
}

// The human-readable shutdown report: the registry headline plus the top
// conflict pairs, so an operator killing the server still learns where the
// contention was without having enabled the telemetry endpoint.
void print_final_summary() {
  const tmcv::obs::MetricsSnapshot s = tmcv::obs::metrics_snapshot();
  std::printf("kv-server final: commits=%llu aborts=%llu (conflict=%llu "
              "capacity=%llu) serial_fallbacks=%llu\n",
              static_cast<unsigned long long>(s.tm.commits),
              static_cast<unsigned long long>(s.tm.aborts),
              static_cast<unsigned long long>(s.tm.aborts_conflict),
              static_cast<unsigned long long>(s.tm.aborts_capacity),
              static_cast<unsigned long long>(s.tm.serial_fallbacks));
  std::printf("kv-server final: cv_waits=%llu threads_woken=%llu parks=%llu "
              "parks_avoided=%llu handoffs=%llu\n",
              static_cast<unsigned long long>(s.cv.waits),
              static_cast<unsigned long long>(s.cv.threads_woken),
              static_cast<unsigned long long>(s.wake.parks),
              static_cast<unsigned long long>(s.wake.parks_avoided),
              static_cast<unsigned long long>(s.wake.handoffs));
  for (const tmcv::obs::AppCounter& ac : s.app)
    std::printf("kv-server final: %s=%llu\n", ac.name.c_str(),
                static_cast<unsigned long long>(ac.value));
  if (!s.attribution.conflict_pairs.empty()) {
    std::printf("kv-server final: top conflict pairs (victim <- attacker):\n");
    std::size_t shown = 0;
    for (const tmcv::obs::AttrEntry& e : s.attribution.conflict_pairs) {
      if (shown++ == 5) break;
      std::printf("  %-12s <- %-12s %llu\n",
                  tmcv::obs::site_name(tmcv::obs::attr_pair_victim(e.key)),
                  tmcv::obs::site_name(tmcv::obs::attr_pair_attacker(e.key)),
                  static_cast<unsigned long long>(e.count));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  tmcv::apps::kv::KvOptions opts;
  opts.workers = tmcv::effective_cpus();
  long history_ms = 0;  // 0: off
  bool watchdog_on = false;
  tmcv::tm::Backend backend = tmcv::tm::Backend::EagerSTM;
  bool backend_set = false;
  bool backend_auto = false;
  double abort_ratio = -1.0;  // < 0: keep the default rule
  std::string dump_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    long value = 0;
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--port") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, value) || value > 65535) {
        usage(argv[0]);
        return 2;
      }
      opts.port = static_cast<std::uint16_t>(value);
    } else if (std::strcmp(arg, "--workers") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, value) || value < 1) {
        usage(argv[0]);
        return 2;
      }
      opts.workers = static_cast<unsigned>(value);
    } else if (std::strcmp(arg, "--shards") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, value) || value < 1) {
        usage(argv[0]);
        return 2;
      }
      opts.shards = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--capacity") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, value) || value < 1) {
        usage(argv[0]);
        return 2;
      }
      opts.capacity_per_shard = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--buckets") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, value) || value < 1) {
        usage(argv[0]);
        return 2;
      }
      opts.buckets_per_shard = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--serve-metrics") == 0) {
      opts.metrics_port = 0;
    } else if (std::strncmp(arg, "--serve-metrics=", 16) == 0) {
      if (!parse_unsigned(arg + 16, value) || value > 65535) {
        usage(argv[0]);
        return 2;
      }
      opts.metrics_port = static_cast<int>(value);
    } else if (std::strcmp(arg, "--history") == 0) {
      history_ms = 1000;
    } else if (std::strncmp(arg, "--history=", 10) == 0) {
      if (!parse_unsigned(arg + 10, value) || value < 1) {
        usage(argv[0]);
        return 2;
      }
      history_ms = value;
    } else if (std::strcmp(arg, "--watchdog") == 0) {
      watchdog_on = true;
    } else if (std::strncmp(arg, "--watchdog-abort-ratio=", 23) == 0) {
      abort_ratio = std::atof(arg + 23);
    } else if (std::strncmp(arg, "--backend=", 10) == 0) {
      const char* name = arg + 10;
      if (std::strcmp(name, "auto") == 0) {
        backend_auto = true;
      } else if (!tmcv::tm::backend_from_label(name, backend)) {
        usage(argv[0]);
        return 2;
      }
      backend_set = true;
    } else if (std::strncmp(arg, "--dump-on-exit=", 15) == 0) {
      dump_path = arg + 15;
      if (dump_path.empty()) {
        usage(argv[0]);
        return 2;
      }
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  // The watchdog judges abort ratios and wake latency, so it needs the
  // timing + attribution layers live (and trace, so an alert-triggered
  // flight dump carries ring contents), plus history to ride on.
  if (watchdog_on && history_ms == 0) history_ms = 1000;
  if (watchdog_on) {
    tmcv::obs::set_timing_enabled(true);
    tmcv::obs::set_trace_enabled(true);
    tmcv::obs::set_attribution_enabled(true);
  }
  if (history_ms > 0) {
    tmcv::obs::TimeSeriesOptions ts;
    ts.interval_ms = static_cast<std::uint32_t>(history_ms);
    tmcv::obs::timeseries().start(ts);
  }
  if (watchdog_on) {
    std::vector<tmcv::obs::WatchdogRule> rules = tmcv::obs::default_rules();
    if (abort_ratio >= 0.0)
      for (tmcv::obs::WatchdogRule& r : rules)
        if (r.kind == tmcv::obs::RuleKind::kAbortStorm)
          r.threshold = abort_ratio;
    tmcv::obs::watchdog().start(std::move(rules), dump_path);
  }

  if (backend_set) {
    if (backend_auto) {
      tmcv::tm::set_backend_auto(true);
    } else {
      tmcv::tm::set_backend(backend);
    }
  }

  // Block the shutdown signals BEFORE spawning any thread: the mask is
  // inherited, so a process-directed SIGINT/SIGTERM can only be consumed
  // by the sigwait loop below.  Masking after start() would leave every
  // worker eligible for delivery, and the default disposition would kill
  // the process without draining (no final summary, no exit flight dump).
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  sigaddset(&set, SIGUSR2);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  tmcv::apps::kv::KvServer server;
  if (!server.start(opts)) {
    std::fprintf(stderr, "tmcv_kv_server: start failed: %s\n",
                 std::strerror(errno));
    return 1;
  }
  std::printf("kv-server listening on 127.0.0.1:%u (%u workers, %zu shards)\n",
              server.port(), opts.workers, opts.shards);
  if (opts.metrics_port >= 0)
    std::printf("kv-server metrics on http://127.0.0.1:%u/metrics.json\n",
                server.metrics_port());
  std::fflush(stdout);

  // Park until SIGINT/SIGTERM (sigwait: no handler-safety concerns).
  // SIGUSR2 dumps the flight recorder and keeps serving.
  for (;;) {
    int sig = 0;
    sigwait(&set, &sig);
    if (sig == SIGUSR2) {
      const std::string path =
          dump_path.empty() ? std::string("kv_flight.json") : dump_path;
      tmcv::obs::FlightDumpOptions fo;
      fo.reason = "signal";
      const bool ok = tmcv::obs::flight_dump(path, fo);
      std::printf("kv-server: SIGUSR2, flight dump %s: %s\n", path.c_str(),
                  ok ? "written" : std::strerror(errno));
      std::fflush(stdout);
      continue;
    }
    std::printf("kv-server: signal %d, draining\n", sig);
    std::fflush(stdout);
    break;
  }

  // Graceful: stop() closes the listener first, so no new connections are
  // accepted while workers drain in-flight batches, then joins everything.
  // The exit dump is written after the drain (quiescent counters: recorded
  // conflicts equal aborts_conflict exactly) but BEFORE the recorder and
  // watchdog stop, so it captures the live history window and alert states.
  server.stop();

  if (!dump_path.empty()) {
    tmcv::obs::FlightDumpOptions fo;
    fo.reason = "exit";
    if (tmcv::obs::flight_dump(dump_path, fo))
      std::printf("kv-server: flight dump written to %s\n", dump_path.c_str());
    else
      std::fprintf(stderr, "kv-server: flight dump failed: %s\n",
                   std::strerror(errno));
  } else {
    print_final_summary();
  }
  tmcv::obs::watchdog().stop();
  tmcv::obs::timeseries().stop();
  tmcv::tm::set_backend_auto(false);  // join the controller if --backend=auto
  return 0;
}
