// Sharded transactional KV-cache server (the tentpole app): a bounded
// TxLruMap store behind a thread-pool accept/worker pipeline whose work
// queue signals with the transaction-friendly condition variables
// (apps/task_queue.h under TxnPolicy), speaking the text protocol of
// protocol.h over localhost TCP.
//
// Thread structure (N = options.workers):
//
//   accept thread --- accept(), hand new connections to the poller
//   poller thread --- poll() over every idle connection + a self-pipe;
//                     readable connections are dispatched as tasks
//   N workers     --- block in TaskQueueSet::take (tmcv condvar wait),
//                     drain one connection's readable bytes, run one
//                     transaction per request against the store, flush one
//                     batched response write, re-arm the connection
//
// A connection is owned by exactly one stage at a time (idle: poller;
// dispatched: the worker that took it), so connection state needs no lock.
// Store operations are labeled with TMCV_TXN_SITE ("kv.get"/"kv.set"/
// "kv.del") so the conflict-attribution profiler names this workload's
// victim x attacker pairs.
//
// Observability: counters register with obs::register_app_counters, so a
// `--serve-metrics` telemetry endpoint (or any embedding process calling
// obs::metrics_snapshot) sees kv_* counters next to the TM runtime's.
#pragma once

#include <cstdint>
#include <memory>

#include "tmds/tx_lru_map.h"

namespace tmcv::apps::kv {

struct KvOptions {
  std::uint16_t port = 0;      // 0: kernel-assigned (see KvServer::port())
  unsigned workers = 4;        // worker threads (>= 1)
  std::size_t shards = 8;      // power of two
  std::size_t capacity_per_shard = 4096;
  std::size_t buckets_per_shard = 4096;  // power of two
  std::size_t queue_capacity = 1024;     // per-worker dispatch ring slots
  // Telemetry endpoint: -1 = off, 0 = ephemeral port, else fixed port.
  int metrics_port = -1;
};

// Process-visible activity counters (relaxed; exact at quiescence).
struct KvCounters {
  std::uint64_t gets = 0;
  std::uint64_t sets = 0;
  std::uint64_t dels = 0;
  std::uint64_t bad = 0;
  std::uint64_t connections = 0;  // accepted, lifetime
  std::uint64_t batches = 0;      // worker dispatches processed
};

class KvServer {
 public:
  KvServer();
  ~KvServer();  // stops if running

  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;

  // Bind, spawn threads, optionally start telemetry.  False on failure with
  // errno describing the failing syscall (EADDRINUSE: port taken).
  bool start(const KvOptions& options);

  // Idempotent; joins every thread and closes every connection.
  void stop();

  [[nodiscard]] bool running() const noexcept;
  [[nodiscard]] std::uint16_t port() const noexcept;          // bound port
  [[nodiscard]] std::uint16_t metrics_port() const noexcept;  // 0 when off

  // Exact store statistics (per-shard transactions, summed).
  [[nodiscard]] tmds::LruStats store_stats() const;
  [[nodiscard]] KvCounters counters() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tmcv::apps::kv
