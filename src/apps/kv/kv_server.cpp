#include "apps/kv/kv_server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/kv/protocol.h"
#include "apps/sync_policy.h"
#include "apps/task_queue.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/telemetry_server.h"
#include "util/net.h"

namespace tmcv::apps::kv {

namespace {

// Per-connection state.  Exactly one stage owns a Conn at any moment
// (poller while idle, one worker while dispatched), so no lock is needed;
// ownership transfers through the task queue and the poller's inbox.
struct Conn {
  explicit Conn(int fd_in) : fd(fd_in) {}
  int fd;
  std::string in;   // unparsed bytes (partial trailing line)
  std::string out;  // batched responses, flushed once per dispatch
};

// A request line longer than this is protocol abuse; drop the connection
// rather than buffering without bound.
constexpr std::size_t kMaxLine = 64 * 1024;

}  // namespace

struct KvServer::Impl {
  KvOptions opts;
  std::atomic<bool> running{false};
  std::atomic<int> listen_fd{-1};
  int wake_r = -1;  // poller self-pipe
  int wake_w = -1;
  std::uint16_t bound_port = 0;

  std::unique_ptr<tmds::TxLruMap<std::uint64_t, std::uint64_t>> store;
  std::unique_ptr<TaskQueueSet<TxnPolicy>> queue;

  std::thread accept_thread;
  std::thread poller_thread;
  std::vector<std::thread> worker_threads;

  // Connections handed to the poller (new accepts and worker re-arms).
  std::mutex inbox_mu;
  std::vector<Conn*> inbox;

  std::atomic<std::uint64_t> gets{0};
  std::atomic<std::uint64_t> sets{0};
  std::atomic<std::uint64_t> dels{0};
  std::atomic<std::uint64_t> bad{0};
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> batches{0};

  obs::TelemetryServer telemetry;

  // ---- app-counter scrape (obs/metrics.h) -------------------------------
  static void scrape(void* ctx, std::vector<obs::AppCounter>& out) {
    auto* im = static_cast<Impl*>(ctx);
    const auto r = std::memory_order_relaxed;
    out.push_back({"kv_get", im->gets.load(r)});
    out.push_back({"kv_set", im->sets.load(r)});
    out.push_back({"kv_del", im->dels.load(r)});
    out.push_back({"kv_bad", im->bad.load(r)});
    out.push_back({"kv_connections", im->connections.load(r)});
    out.push_back({"kv_batches", im->batches.load(r)});
    // Store-exact numbers (shard transactions; cheap -- a handful of reads
    // per shard, once per scrape interval).
    const tmds::LruStats s = im->store->stats();
    out.push_back({"kv_hits", s.hits});
    out.push_back({"kv_misses", s.misses});
    out.push_back({"kv_evictions", s.evictions});
    out.push_back({"kv_size", s.size});
  }

  void wake_poller() {
    const char byte = 0;
    // Nonblocking write; a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] ssize_t n = ::write(wake_w, &byte, 1);
  }

  void enqueue_for_poll(Conn* conn) {
    bool accepted = false;
    {
      std::lock_guard<std::mutex> lock(inbox_mu);
      if (running.load(std::memory_order_acquire)) {
        inbox.push_back(conn);
        accepted = true;
      }
    }
    if (accepted) {
      wake_poller();
    } else {
      ::close(conn->fd);
      delete conn;
    }
  }

  // ---- accept thread ----------------------------------------------------
  void accept_loop() {
    while (running.load(std::memory_order_acquire)) {
      const int fd =
          ::accept(listen_fd.load(std::memory_order_acquire), nullptr,
                   nullptr);
      if (fd < 0) {
        if (!running.load(std::memory_order_acquire)) break;
        if (errno == EINTR || errno == ECONNABORTED) continue;
        break;  // listen socket gone
      }
      set_tcp_nodelay(fd);
      connections.fetch_add(1, std::memory_order_relaxed);
      enqueue_for_poll(new Conn(fd));
    }
  }

  // ---- poller thread -----------------------------------------------------
  void poller_loop() {
    std::vector<Conn*> idle;
    std::vector<pollfd> fds;
    std::size_t rr = 0;  // round-robin dispatch cursor
    while (running.load(std::memory_order_acquire)) {
      fds.clear();
      fds.push_back({wake_r, POLLIN, 0});
      for (Conn* c : idle) fds.push_back({c->fd, POLLIN, 0});
      const int ready = ::poll(fds.data(), fds.size(), -1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;
      }
      std::vector<Conn*> incoming;
      if (fds[0].revents != 0) {  // self-pipe: drain + collect the inbox
        char buf[256];
        while (::read(wake_r, buf, sizeof buf) > 0) {
        }
        std::lock_guard<std::mutex> lock(inbox_mu);
        incoming.swap(inbox);
      }
      // Dispatch readable (or hung-up: the worker's recv sees it) conns;
      // compact the survivors in place, THEN append the incoming ones (they
      // were not in this poll set, so the revents indices track `idle`).
      std::size_t w = 0;
      for (std::size_t i = 1; i < fds.size(); ++i) {
        Conn* c = idle[i - 1];
        if (fds[i].revents == 0) {
          idle[w++] = c;
          continue;
        }
        const std::size_t q = rr++ % opts.workers;
        while (!queue->add(q, reinterpret_cast<std::uint64_t>(c)))
          std::this_thread::yield();  // ring momentarily full
      }
      idle.resize(w);
      idle.insert(idle.end(), incoming.begin(), incoming.end());
    }
    for (Conn* c : idle) {
      ::close(c->fd);
      delete c;
    }
  }

  // ---- workers -----------------------------------------------------------
  void worker_loop(std::size_t self) {
    std::uint64_t task = 0;
    while (queue->take(self, task)) {
      process(reinterpret_cast<Conn*>(task));
      queue->complete();
    }
  }

  // Drain readable bytes, run one labeled transaction per request, flush
  // one batched write, then re-arm (or close).
  void process(Conn* conn) {
    batches.fetch_add(1, std::memory_order_relaxed);
    bool closing = false;
    char buf[65536];
    for (;;) {
      const ssize_t n = ::recv(conn->fd, buf, sizeof buf, MSG_DONTWAIT);
      if (n > 0) {
        conn->in.append(buf, static_cast<std::size_t>(n));
        if (static_cast<std::size_t>(n) < sizeof buf) break;
        continue;  // socket may hold more
      }
      if (n == 0) {
        closing = true;  // peer closed
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      closing = true;
      break;
    }

    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = conn->in.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string_view line(conn->in.data() + start, nl - start);
      start = nl + 1;
      if (execute(parse_request(line), conn->out)) {
        closing = true;  // quit
        break;
      }
    }
    conn->in.erase(0, start);
    if (conn->in.size() > kMaxLine) closing = true;

    if (!conn->out.empty()) {
      if (!send_all(conn->fd, conn->out.data(), conn->out.size()))
        closing = true;
      conn->out.clear();
    }

    if (closing || !running.load(std::memory_order_acquire)) {
      ::close(conn->fd);
      delete conn;
    } else {
      enqueue_for_poll(conn);
    }
  }

  // Returns true when the connection should close (quit).
  bool execute(const Request& req, std::string& out) {
    switch (req.kind) {
      case OpKind::kGet: {
        gets.fetch_add(1, std::memory_order_relaxed);
        std::uint64_t value = 0;
        const bool hit = tm::atomically([&] {
          TMCV_TXN_SITE("kv.get");
          return store->get(req.key, value);
        });
        if (hit)
          append_value(out, value);
        else
          append_miss(out);
        return false;
      }
      case OpKind::kSet: {
        sets.fetch_add(1, std::memory_order_relaxed);
        tm::atomically([&] {
          TMCV_TXN_SITE("kv.set");
          store->put(req.key, req.value);
        });
        append_stored(out);
        return false;
      }
      case OpKind::kDel: {
        dels.fetch_add(1, std::memory_order_relaxed);
        const bool erased = tm::atomically([&] {
          TMCV_TXN_SITE("kv.del");
          return store->erase(req.key);
        });
        if (erased)
          append_deleted(out);
        else
          append_miss(out);
        return false;
      }
      case OpKind::kStats: {
        const tmds::LruStats s = store->stats();
        append_stats(out, s.hits, s.misses, s.evictions, s.size);
        return false;
      }
      case OpKind::kQuit:
        return true;
      case OpKind::kBad:
      default:
        bad.fetch_add(1, std::memory_order_relaxed);
        append_bad(out);
        return false;
    }
  }
};

KvServer::KvServer() : impl_(std::make_unique<Impl>()) {}

KvServer::~KvServer() { stop(); }

bool KvServer::start(const KvOptions& options) {
  Impl& im = *impl_;
  if (im.running.load(std::memory_order_acquire)) {
    errno = EALREADY;
    return false;
  }
  if (options.workers == 0 || options.shards == 0 ||
      (options.shards & (options.shards - 1)) != 0 ||
      options.capacity_per_shard == 0 || options.buckets_per_shard == 0 ||
      (options.buckets_per_shard & (options.buckets_per_shard - 1)) != 0 ||
      options.queue_capacity == 0) {
    errno = EINVAL;
    return false;
  }
  const int lfd = listen_loopback(options.port, im.bound_port);
  if (lfd < 0) return false;
  int pipefd[2];
  if (::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) < 0) {
    const int saved = errno;
    ::close(lfd);
    errno = saved;
    return false;
  }
  im.opts = options;
  im.listen_fd.store(lfd, std::memory_order_release);
  im.wake_r = pipefd[0];
  im.wake_w = pipefd[1];
  im.store = std::make_unique<tmds::TxLruMap<std::uint64_t, std::uint64_t>>(
      options.shards, options.capacity_per_shard, options.buckets_per_shard);
  im.queue = std::make_unique<TaskQueueSet<TxnPolicy>>(
      options.workers, options.queue_capacity);
  im.running.store(true, std::memory_order_release);

  obs::register_app_counters(&Impl::scrape, &im);
  if (options.metrics_port >= 0) {
    obs::TelemetryOptions topts;
    topts.port = static_cast<std::uint16_t>(options.metrics_port);
    if (!im.telemetry.start(topts)) {
      const int saved = errno;
      im.running.store(false, std::memory_order_release);
      obs::unregister_app_counters(&Impl::scrape, &im);
      ::close(lfd);
      im.listen_fd.store(-1, std::memory_order_release);
      ::close(im.wake_r);
      ::close(im.wake_w);
      im.wake_r = im.wake_w = -1;
      im.queue.reset();
      errno = saved;
      return false;
    }
  }

  im.poller_thread = std::thread([&im] { im.poller_loop(); });
  im.accept_thread = std::thread([&im] { im.accept_loop(); });
  im.worker_threads.reserve(options.workers);
  for (unsigned w = 0; w < options.workers; ++w)
    im.worker_threads.emplace_back([&im, w] { im.worker_loop(w); });
  return true;
}

void KvServer::stop() {
  Impl& im = *impl_;
  if (!im.running.exchange(false, std::memory_order_acq_rel)) return;
  obs::unregister_app_counters(&Impl::scrape, &im);
  // Accept thread: invalidate the listen socket under it.
  const int lfd = im.listen_fd.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  if (im.accept_thread.joinable()) im.accept_thread.join();
  // Workers: drain queued dispatches (each closes its connection because
  // running is false), then take() returns false.
  im.queue->stop();
  for (auto& t : im.worker_threads)
    if (t.joinable()) t.join();
  im.worker_threads.clear();
  // Poller: wake it; it observes !running, closes its idle set, exits.
  im.wake_poller();
  if (im.poller_thread.joinable()) im.poller_thread.join();
  // Connections parked in the inbox (re-armed in the shutdown window).
  {
    std::lock_guard<std::mutex> lock(im.inbox_mu);
    for (Conn* c : im.inbox) {
      ::close(c->fd);
      delete c;
    }
    im.inbox.clear();
  }
  im.telemetry.stop();
  if (im.wake_r >= 0) ::close(im.wake_r);
  if (im.wake_w >= 0) ::close(im.wake_w);
  im.wake_r = im.wake_w = -1;
  im.queue.reset();
  im.bound_port = 0;
  // The store stays alive: quiescent post-run statistics (store_stats())
  // remain readable until the next start() or destruction.
}

bool KvServer::running() const noexcept {
  return impl_->running.load(std::memory_order_acquire);
}

std::uint16_t KvServer::port() const noexcept { return impl_->bound_port; }

std::uint16_t KvServer::metrics_port() const noexcept {
  return impl_->telemetry.port();
}

tmds::LruStats KvServer::store_stats() const {
  if (impl_->store == nullptr) return {};
  return impl_->store->stats();
}

KvCounters KvServer::counters() const noexcept {
  const Impl& im = *impl_;
  const auto r = std::memory_order_relaxed;
  KvCounters c;
  c.gets = im.gets.load(r);
  c.sets = im.sets.load(r);
  c.dels = im.dels.load(r);
  c.bad = im.bad.load(r);
  c.connections = im.connections.load(r);
  c.batches = im.batches.load(r);
  return c;
}

}  // namespace tmcv::apps::kv
