// raytrace mini-kernel: animated-scene rendering where worker threads pull
// screen tiles from a multi-threaded task queue, one frame at a time (§5.2).
//
// Table-1 audit of this port: task-queue {add, take, complete, wait_all,
// stop} + per-tile shade fold = 6 total sites; condvar sites: the take wait
// and the frame-completion wait = 2 (no barrier); neither required more
// refactoring than execute_or_wait's split.  The paper's raytrace row is
// larger (14 / 4 (1) / 0) because the original also transactionalizes its
// scene-graph and memory-pool sections, which have no synthetic equivalent
// here; the condvar structure (task queue + completion) is the same.
#include "parsec/runner.h"

#include <atomic>
#include <thread>
#include <vector>

#include "apps/task_queue.h"
#include "parsec/registry.h"
#include "parsec/workload.h"
#include "util/timing.h"

namespace tmcv::parsec {

namespace {

const bool registered = [] {
  register_characteristics({.benchmark = "raytrace",
                            .total_transactions = 6,
                            .condvar_transactions = 2,
                            .condvar_transactions_barrier = 0,
                            .refactored_continuations = 2,
                            .refactored_barrier = 0});
  return true;
}();

template <typename Policy>
KernelResult run_impl(const KernelConfig& cfg) {
  const std::size_t workers = static_cast<std::size_t>(cfg.threads);
  const int frames = 4;
  const int tiles = 128;  // fixed screen size
  const auto tile_iters = static_cast<std::uint64_t>(
      120.0 * calibrated_iters_per_us() * cfg.scale);

  apps::TaskQueueSet<Policy> tq(workers, 512);
  std::atomic<std::uint64_t> checksum{0};

  Stopwatch sw;
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      std::uint64_t local = 0;
      std::uint64_t tile = 0;
      while (tq.take(w, tile)) {
        local ^= synth_work(cfg.seed ^ tile, tile_iters);
        tq.complete();
      }
      checksum.fetch_xor(local, std::memory_order_relaxed);
    });
  }
  for (int f = 0; f < frames; ++f) {
    for (int t = 0; t < tiles; ++t)
      tq.add(static_cast<std::size_t>(t) % workers,
             static_cast<std::uint64_t>(f) * tiles + t);
    tq.wait_all();  // frame boundary: all tiles rendered before the next
  }
  tq.stop();
  for (auto& t : pool) t.join();
  const double seconds = sw.elapsed_seconds();
  return KernelResult{seconds, checksum.load(),
                      static_cast<std::uint64_t>(frames) * tiles};
}

}  // namespace

KernelResult run_raytrace(System sys, const KernelConfig& cfg) {
  TMCV_PARSEC_DISPATCH(run_impl, sys, cfg);
}

}  // namespace tmcv::parsec
