// ferret mini-kernel: content-based similarity search as a 6-stage pipeline
// (load, segment, extract, vector, rank, output), each stage a thread pool
// with a bounded job queue -- the pipelined multi-producer/multi-consumer
// pattern (§5.2).
//
// Table-1 audit of this port: the pipeline's per-stage queue contributes
// push/pop critical sections (shared implementation => counted once) plus
// the sink fold = 3 total transaction sites; push and pop both contain
// condvar waits (2 condvar transactions, no barrier), and both are
// refactored continuations -- matching the paper's ferret row exactly
// (3 / 2 / 2).
#include "parsec/runner.h"

#include <atomic>

#include "apps/pipeline.h"
#include "parsec/registry.h"
#include "parsec/workload.h"
#include "util/timing.h"

namespace tmcv::parsec {

namespace {

const bool registered = [] {
  register_characteristics({.benchmark = "ferret",
                            .total_transactions = 3,
                            .condvar_transactions = 2,
                            .condvar_transactions_barrier = 0,
                            .refactored_continuations = 2,
                            .refactored_barrier = 0});
  return true;
}();

template <typename Policy>
KernelResult run_impl(const KernelConfig& cfg) {
  constexpr std::size_t kStages = 6;
  const int queries = 400;  // fixed input: images to process
  // Middle stages dominate; ferret's -n parameter sets per-stage pool size.
  const auto stage_iters = static_cast<std::uint64_t>(
      30.0 * calibrated_iters_per_us() * cfg.scale);

  std::atomic<std::uint64_t> checksum{0};
  std::atomic<std::uint64_t> ranked{0};

  Stopwatch sw;
  {
    typename apps::Pipeline<Policy>::Config pcfg;
    pcfg.stages = kStages;
    pcfg.workers_per_stage = static_cast<std::size_t>(cfg.threads);
    pcfg.queue_capacity = 32;
    apps::Pipeline<Policy> pipe(
        pcfg,
        [&](std::size_t stage, std::uint64_t item) {
          // Each stage transforms the query (feature mixing).
          return item ^ synth_work(cfg.seed + stage, stage_iters);
        },
        [&](std::uint64_t item) {
          checksum.fetch_xor(item, std::memory_order_relaxed);
          ranked.fetch_add(1, std::memory_order_relaxed);
        });
    for (int q = 0; q < queries; ++q)
      pipe.feed(static_cast<std::uint64_t>(q) + 1);
    pipe.finish();
  }
  const double seconds = sw.elapsed_seconds();
  return KernelResult{seconds, checksum.load(), ranked.load()};
}

}  // namespace

KernelResult run_ferret(System sys, const KernelConfig& cfg) {
  TMCV_PARSEC_DISPATCH(run_impl, sys, cfg);
}

}  // namespace tmcv::parsec
