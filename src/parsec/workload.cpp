#include "parsec/workload.h"

#include "util/rng.h"
#include "util/timing.h"

namespace tmcv::parsec {

std::uint64_t synth_work(std::uint64_t seed, std::uint64_t iters) noexcept {
  // A serial dependency chain so the loop cannot be vectorized away and its
  // latency is predictable.
  std::uint64_t x = seed | 1;
  for (std::uint64_t i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

double calibrated_iters_per_us() {
  static const double value = [] {
    // Warm up, then time a fixed batch.
    (void)synth_work(1, 100000);
    constexpr std::uint64_t kBatch = 2000000;
    Stopwatch sw;
    volatile std::uint64_t sink = synth_work(2, kBatch);
    (void)sink;
    const double us = sw.elapsed_seconds() * 1e6;
    return us > 0 ? static_cast<double>(kBatch) / us : 1e3;
  }();
  return value;
}

}  // namespace tmcv::parsec
