// fluidanimate mini-kernel: incompressible-fluid simulation whose only
// condition synchronization is a condvar-implemented barrier between grid
// phases (§5.2).  Work per phase is fixed (the grid) and split evenly
// across threads, so the time-vs-threads curve is barrier-overhead plus
// compute/t -- the same shape as the paper's Figure 1(c)/2(c).
//
// Table-1 audit of this port: barrier arrive (critical) + barrier wait
// (execute_or_wait) + checksum fold = 3 total sites; both barrier sites are
// condvar sites and barrier-parenthesized; the wait is a refactored
// (barrier) continuation -- the paper's row reports 2 (2) condvar
// transactions and 2 (2) refactored, all from its barrier.
#include "parsec/runner.h"

#include <atomic>
#include <thread>
#include <vector>

#include "apps/barrier.h"
#include "parsec/registry.h"
#include "parsec/workload.h"
#include "util/timing.h"

namespace tmcv::parsec {

namespace {

const bool registered = [] {
  register_characteristics({.benchmark = "fluidanimate",
                            .total_transactions = 3,
                            .condvar_transactions = 2,
                            .condvar_transactions_barrier = 2,
                            .refactored_continuations = 2,
                            .refactored_barrier = 2});
  return true;
}();

template <typename Policy>
KernelResult run_impl(const KernelConfig& cfg) {
  const std::size_t threads = static_cast<std::size_t>(cfg.threads);
  const int phases = 60;
  // Total grid work per phase, divided across threads (fixed input).
  const auto phase_total_iters = static_cast<std::uint64_t>(
      1200.0 * calibrated_iters_per_us() * cfg.scale);

  apps::CvBarrier<Policy> barrier(threads);
  std::atomic<std::uint64_t> checksum{0};

  Stopwatch sw;
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      std::uint64_t local = 0;
      const std::uint64_t slice = phase_total_iters / threads + 1;
      for (int p = 0; p < phases; ++p) {
        local ^= synth_work(cfg.seed + p * 131 + t, slice);
        barrier.arrive_and_wait();
      }
      checksum.fetch_xor(local, std::memory_order_relaxed);
    });
  }
  for (auto& t : pool) t.join();
  const double seconds = sw.elapsed_seconds();
  return KernelResult{seconds, checksum.load(),
                      static_cast<std::uint64_t>(phases)};
}

}  // namespace

KernelResult run_fluidanimate(System sys, const KernelConfig& cfg) {
  TMCV_PARSEC_DISPATCH(run_impl, sys, cfg);
}

}  // namespace tmcv::parsec
