// Kernel runner interface: every PARSEC mini-kernel exposes one entry point
// that runs the workload under a chosen software system (the three systems
// of §5.3) and returns wall-clock time plus a checksum.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/sync_policy.h"

namespace tmcv::parsec {

// The three software systems compared in the paper's evaluation.
enum class System : std::uint8_t {
  Pthread,  // Parsec+pthreadCondVar (baseline)
  TmCv,     // Parsec+TMCondVar
  Tm,       // TMParsec+TMCondVar
};

[[nodiscard]] const char* to_string(System s) noexcept;

struct KernelConfig {
  int threads = 2;
  double scale = 1.0;       // input-size multiplier (1.0 = default input)
  std::uint64_t seed = 42;  // workload PRNG seed
};

struct KernelResult {
  double seconds = 0.0;        // wall-clock run time
  std::uint64_t checksum = 0;  // workload checksum (DCE guard / sanity)
  std::uint64_t units = 0;     // items/frames processed
};

using KernelFn = KernelResult (*)(System, const KernelConfig&);

struct KernelInfo {
  std::string name;
  KernelFn run;
  // Thread sweeps used by the figure benches (kernel-specific constraints:
  // facesim's input designates its counts, fluidanimate needs powers of 2).
  std::vector<int> threads_westmere;
  std::vector<int> threads_haswell;
};

// The eight kernels, in the paper's Figure order.
const std::vector<KernelInfo>& kernels();

// Lookup by name (nullptr if unknown).
const KernelInfo* find_kernel(const std::string& name);

// Observability outputs for a kernel run (run_kernel's --trace/--metrics
// flags).  enable() flips the runtime gates the requested outputs need
// (call before the trials); write() serializes afterwards, at quiescence.
struct ObsOutputs {
  std::string trace_path;    // Chrome trace-event JSON; empty = no trace
  std::string metrics_path;  // metrics JSON (+ .prom sibling); empty = none

  [[nodiscard]] bool any() const noexcept {
    return !trace_path.empty() || !metrics_path.empty();
  }

  void enable() const;

  // Returns false if any requested file could not be written.
  [[nodiscard]] bool write() const;
};

// Kernel entry points (one translation unit each).
KernelResult run_facesim(System, const KernelConfig&);
KernelResult run_ferret(System, const KernelConfig&);
KernelResult run_fluidanimate(System, const KernelConfig&);
KernelResult run_streamcluster(System, const KernelConfig&);
KernelResult run_bodytrack(System, const KernelConfig&);
KernelResult run_x264(System, const KernelConfig&);
KernelResult run_raytrace(System, const KernelConfig&);
KernelResult run_dedup(System, const KernelConfig&);

// Shared dispatch: run `impl<Policy>` for the policy matching `sys`.  The
// HTM-vs-STM choice for the condvar-internal (and TMParsec) transactions is
// global (tm::set_default_backend), chosen by the bench harness per
// "machine".
#define TMCV_PARSEC_DISPATCH(impl, sys, cfg)                \
  do {                                                      \
    switch (sys) {                                          \
      case ::tmcv::parsec::System::Pthread:                 \
        return impl<::tmcv::apps::PthreadPolicy>(cfg);      \
      case ::tmcv::parsec::System::TmCv:                    \
        return impl<::tmcv::apps::TmCvPolicy>(cfg);         \
      case ::tmcv::parsec::System::Tm:                      \
        return impl<::tmcv::apps::TxnPolicy>(cfg);          \
    }                                                       \
    TMCV_ASSERT_MSG(false, "unknown system");               \
    return ::tmcv::parsec::KernelResult{};                  \
  } while (0)

}  // namespace tmcv::parsec
