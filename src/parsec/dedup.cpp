// dedup mini-kernel: stream compression through a 5-stage pipeline
// (fragment, refine, deduplicate, compress, reorder/output) with bounded
// per-stage queues (§5.2).  The deduplication stage probes a shared hash
// table inside a critical section, and the final stage writes output *in
// order* through a serial section that performs real I/O -- under the
// transactional system that section is a relaxed (irrevocable) transaction,
// which serializes against everything else and reproduces the paper's §5.4
// no-scaling anomaly.
//
// Table-1 audit of this port: queue push/pop (per-stage queues share one
// implementation => 2 sites) + hash-table probe + ordered-output turn wait
// + relaxed output emit + stats fold = 6 total sites (1 relaxed); condvar
// sites: queue push wait, queue pop wait, output turn wait = 3 (no
// barrier); all three are refactored continuations -- the paper's dedup row
// is 10 / 3 / 3 with the same three cond_wait sites.
#include "parsec/runner.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <vector>

#include "apps/ordered_output.h"
#include "apps/pipeline.h"
#include "parsec/registry.h"
#include "parsec/workload.h"
#include "util/assert.h"
#include "util/timing.h"

namespace tmcv::parsec {

namespace {

const bool registered = [] {
  register_characteristics({.benchmark = "dedup",
                            .total_transactions = 6,
                            .condvar_transactions = 3,
                            .condvar_transactions_barrier = 0,
                            .refactored_continuations = 3,
                            .refactored_barrier = 0});
  return true;
}();

// A sink fd for the output stage's real write() syscalls.
int dev_null_fd() {
  static const int fd = ::open("/dev/null", O_WRONLY);
  TMCV_ASSERT(fd >= 0);
  return fd;
}

template <typename Policy>
KernelResult run_impl(const KernelConfig& cfg) {
  constexpr std::size_t kStages = 5;
  const int chunks = 300;  // fixed input stream
  constexpr std::size_t kBuckets = 64;
  // Stage costs: fragment/refine/dedup/compress; output is I/O-bound.
  const double stage_us[kStages] = {15.0, 20.0, 25.0, 45.0, 5.0};

  // Shared deduplication hash table: bucket occupancy counters probed and
  // updated inside a critical section (a real shared-state transaction in
  // the TMParsec port).
  typename Policy::Region hash_region;
  std::vector<std::unique_ptr<typename Policy::template Cell<std::uint64_t>>>
      buckets;
  for (std::size_t b = 0; b < kBuckets; ++b)
    buckets.emplace_back(
        std::make_unique<typename Policy::template Cell<std::uint64_t>>());

  // Reorder buffer drained by the single serial output worker (the window
  // bounds reorder skew; in-flight items are limited by queue capacities).
  apps::ReorderBuffer<Policy> reorder(512);
  std::atomic<std::uint64_t> checksum{0};
  std::atomic<std::uint64_t> duplicates{0};

  // Items pack (sequence << 32) | payload-hash-low so order survives the
  // stage transforms.
  auto seq_of = [](std::uint64_t item) { return item >> 32; };
  auto payload_of = [](std::uint64_t item) {
    return item & 0xffffffffull;
  };
  auto make_item = [](std::uint64_t seq, std::uint64_t payload) {
    return (seq << 32) | (payload & 0xffffffffull);
  };

  Stopwatch sw;
  {
    typename apps::Pipeline<Policy>::Config pcfg;
    pcfg.stages = kStages;
    pcfg.workers_per_stage = static_cast<std::size_t>(cfg.threads);
    pcfg.workers_last_stage = 1;  // dedup's serial output thread
    pcfg.queue_capacity = 16;     // small: exercises backpressure waits
    apps::Pipeline<Policy> pipe(
        pcfg,
        [&](std::size_t stage, std::uint64_t item) {
          const auto iters = static_cast<std::uint64_t>(
              stage_us[stage] * calibrated_iters_per_us() * cfg.scale);
          std::uint64_t payload =
              payload_of(item) ^
              (synth_work(cfg.seed + stage * 7919 + payload_of(item), iters) &
               0xffffffffull);
          if (stage == 2) {
            // Deduplicate: probe the shared hash table.
            const std::size_t bucket = payload % kBuckets;
            const bool dup = Policy::critical(hash_region, [&] {
              const std::uint64_t seen = buckets[bucket]->get();
              buckets[bucket]->set(seen + 1);
              return seen > 0;
            });
            if (dup) duplicates.fetch_add(1, std::memory_order_relaxed);
          }
          return make_item(seq_of(item), payload);
        },
        [&](std::uint64_t item) {
          // Reorder/output stage (single serial worker): buffer, then emit
          // every ready item strictly in order.
          reorder.insert(
              seq_of(item), payload_of(item),
              [&](std::uint64_t seq, std::uint64_t payload) {
                // The I/O that makes this transaction relaxed in the paper.
                [[maybe_unused]] const ssize_t n =
                    ::write(dev_null_fd(), &payload, sizeof(payload));
                checksum.fetch_xor(payload * (seq + 1),
                                   std::memory_order_relaxed);
              });
        });
    for (int c = 0; c < chunks; ++c)
      pipe.feed(make_item(static_cast<std::uint64_t>(c),
                          static_cast<std::uint64_t>(c) * 2654435761u));
    pipe.finish();
  }
  const double seconds = sw.elapsed_seconds();
  return KernelResult{seconds, checksum.load() ^ duplicates.load(),
                      static_cast<std::uint64_t>(chunks)};
}

}  // namespace

KernelResult run_dedup(System sys, const KernelConfig& cfg) {
  TMCV_PARSEC_DISPATCH(run_impl, sys, cfg);
}

}  // namespace tmcv::parsec
