#include "parsec/runner.h"

namespace tmcv::parsec {

const char* to_string(System s) noexcept {
  switch (s) {
    case System::Pthread:
      return "Parsec+pthreadCondVar";
    case System::TmCv:
      return "Parsec+TMCondVar";
    case System::Tm:
      return "TMParsec+TMCondVar";
  }
  return "?";
}

const std::vector<KernelInfo>& kernels() {
  // Thread sweeps mirror the paper's figures: Westmere plots 1..12 (we
  // sample the same range), Haswell 1..8; facesim's input designates its
  // counts and fluidanimate requires powers of two.
  static const std::vector<KernelInfo> table{
      {"facesim", &run_facesim, {1, 2, 3, 4, 6, 8}, {1, 2, 3, 4, 6, 8}},
      {"ferret", &run_ferret, {1, 2, 4, 6, 8, 12}, {1, 2, 4, 6, 8}},
      {"fluidanimate", &run_fluidanimate, {1, 2, 4, 8}, {1, 2, 4, 8}},
      {"streamcluster", &run_streamcluster, {1, 2, 4, 6, 8, 12}, {1, 2, 4, 6, 8}},
      {"bodytrack", &run_bodytrack, {1, 2, 4, 6, 8, 12}, {1, 2, 4, 6, 8}},
      {"x264", &run_x264, {1, 2, 4, 6, 8, 12}, {1, 2, 4, 6, 8}},
      {"raytrace", &run_raytrace, {1, 2, 4, 6, 8, 12}, {1, 2, 4, 6, 8}},
      {"dedup", &run_dedup, {1, 2, 4, 6, 8, 12}, {1, 2, 4, 6, 8}},
  };
  return table;
}

const KernelInfo* find_kernel(const std::string& name) {
  for (const KernelInfo& k : kernels())
    if (k.name == name) return &k;
  return nullptr;
}

}  // namespace tmcv::parsec
