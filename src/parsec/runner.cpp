#include "parsec/runner.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tmcv::parsec {

void ObsOutputs::enable() const {
  // Histograms feed the metrics snapshot, so --metrics wants timing too;
  // --trace additionally captures per-event records into the rings.
  if (!metrics_path.empty() || !trace_path.empty())
    obs::set_timing_enabled(true);
  if (!trace_path.empty()) obs::set_trace_enabled(true);
}

bool ObsOutputs::write() const {
  bool ok = true;
  if (!trace_path.empty()) ok = obs::write_chrome_trace(trace_path) && ok;
  if (!metrics_path.empty())
    ok = obs::write_metrics_files(obs::metrics_snapshot(), metrics_path) && ok;
  return ok;
}

const char* to_string(System s) noexcept {
  switch (s) {
    case System::Pthread:
      return "Parsec+pthreadCondVar";
    case System::TmCv:
      return "Parsec+TMCondVar";
    case System::Tm:
      return "TMParsec+TMCondVar";
  }
  return "?";
}

const std::vector<KernelInfo>& kernels() {
  // Thread sweeps mirror the paper's figures: Westmere plots 1..12 (we
  // sample the same range), Haswell 1..8; facesim's input designates its
  // counts and fluidanimate requires powers of two.
  static const std::vector<KernelInfo> table{
      {"facesim", &run_facesim, {1, 2, 3, 4, 6, 8}, {1, 2, 3, 4, 6, 8}},
      {"ferret", &run_ferret, {1, 2, 4, 6, 8, 12}, {1, 2, 4, 6, 8}},
      {"fluidanimate", &run_fluidanimate, {1, 2, 4, 8}, {1, 2, 4, 8}},
      {"streamcluster", &run_streamcluster, {1, 2, 4, 6, 8, 12}, {1, 2, 4, 6, 8}},
      {"bodytrack", &run_bodytrack, {1, 2, 4, 6, 8, 12}, {1, 2, 4, 6, 8}},
      {"x264", &run_x264, {1, 2, 4, 6, 8, 12}, {1, 2, 4, 6, 8}},
      {"raytrace", &run_raytrace, {1, 2, 4, 6, 8, 12}, {1, 2, 4, 6, 8}},
      {"dedup", &run_dedup, {1, 2, 4, 6, 8, 12}, {1, 2, 4, 6, 8}},
  };
  return table;
}

const KernelInfo* find_kernel(const std::string& name) {
  for (const KernelInfo& k : kernels())
    if (k.name == name) return &k;
  return nullptr;
}

}  // namespace tmcv::parsec
