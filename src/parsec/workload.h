// Synthetic compute payloads for the PARSEC mini-kernels.
//
// The paper's evaluation measures condition-synchronization behaviour, not
// PARSEC's numerics, so each kernel replaces the original math with a
// calibrated PRNG-mixing loop whose cost scales linearly with `iters` and
// whose result feeds a checksum (preventing dead-code elimination and
// enabling cross-system result comparison).
#pragma once

#include <cstdint>

namespace tmcv::parsec {

// Burn roughly `iters` PRNG-mix rounds seeded by `seed`; returns a checksum.
[[nodiscard]] std::uint64_t synth_work(std::uint64_t seed,
                                       std::uint64_t iters) noexcept;

// Rough number of synth_work iterations per microsecond on this machine
// (measured once, cached); used to express kernel work in time units so the
// figure benches stay proportioned like the paper's run times.
[[nodiscard]] double calibrated_iters_per_us();

}  // namespace tmcv::parsec
