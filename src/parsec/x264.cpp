// x264 mini-kernel: H.264 encoding where each thread encodes one frame at a
// time and rows of frame f depend on the reference frame f-1 having encoded
// a few rows ahead (§5.2).  Condition variables coordinate encoder threads
// with threads waiting on reference-frame progress.
//
// Table-1 audit of this port: frame-ticket take + row-progress publish +
// row-progress wait + checksum fold = 4 total sites; the progress wait is
// the single condvar transaction (no barrier); the wait loop re-checks the
// dependency inside each transaction, so it did not need a continuation
// split beyond execute_or_wait itself -- matching the paper's x264 row
// (4 / 1 / 0: its single cond_wait needed no refactoring).
#include "parsec/runner.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "apps/sync_policy.h"
#include "parsec/registry.h"
#include "parsec/workload.h"
#include "util/timing.h"

namespace tmcv::parsec {

namespace {

const bool registered = [] {
  register_characteristics({.benchmark = "x264",
                            .total_transactions = 4,
                            .condvar_transactions = 1,
                            .condvar_transactions_barrier = 0,
                            .refactored_continuations = 0,
                            .refactored_barrier = 0});
  return true;
}();

template <typename Policy>
KernelResult run_impl(const KernelConfig& cfg) {
  const std::size_t encoders = static_cast<std::size_t>(cfg.threads);
  const int frames = 24;
  const int rows = 16;
  const int lookahead = 2;  // rows the reference must lead by
  const auto row_iters = static_cast<std::uint64_t>(
      150.0 * calibrated_iters_per_us() * cfg.scale);

  // Per-frame encoded-row progress (frame -1 is "already complete").
  typename Policy::Region region;
  typename Policy::CondVar progress_cv;
  std::vector<std::unique_ptr<typename Policy::template Cell<int>>> progress;
  for (int f = 0; f < frames; ++f)
    progress.emplace_back(
        std::make_unique<typename Policy::template Cell<int>>());
  typename Policy::template Cell<int> next_frame{};

  std::atomic<std::uint64_t> checksum{0};

  Stopwatch sw;
  std::vector<std::thread> pool;
  for (std::size_t e = 0; e < encoders; ++e) {
    pool.emplace_back([&, e] {
      std::uint64_t local = 0;
      for (;;) {
        // Claim the next frame to encode.
        const int f = Policy::critical(region, [&] {
          const int claimed = next_frame.get();
          if (claimed >= frames) return -1;
          next_frame.set(claimed + 1);
          return claimed;
        });
        if (f < 0) break;
        for (int r = 0; r < rows; ++r) {
          if (f > 0) {
            // Wait for the reference frame to be `lookahead` rows ahead.
            const int needed = r + lookahead < rows ? r + lookahead : rows;
            Policy::execute_or_wait(region, progress_cv, [&] {
              return progress[f - 1]->get() >= needed;
            });
          }
          local ^= synth_work(cfg.seed ^ (static_cast<std::uint64_t>(f) * 131
                                          + static_cast<std::uint64_t>(r)),
                              row_iters);
          Policy::critical(region, [&] { progress[f]->set(r + 1); });
          // Threads encoding dependent frames may be waiting on any row.
          Policy::notify_all(progress_cv);
        }
      }
      checksum.fetch_xor(local, std::memory_order_relaxed);
      (void)e;
    });
  }
  for (auto& t : pool) t.join();
  const double seconds = sw.elapsed_seconds();
  return KernelResult{seconds, checksum.load(),
                      static_cast<std::uint64_t>(frames)};
}

}  // namespace

KernelResult run_x264(System sys, const KernelConfig& cfg) {
  TMCV_PARSEC_DISPATCH(run_impl, sys, cfg);
}

}  // namespace tmcv::parsec
