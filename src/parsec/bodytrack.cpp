// bodytrack mini-kernel: particle-filter body tracking using the three
// condvar facilities the paper lists (§5.2): a persistent thread pool whose
// workers receive frame commands through per-worker synchronization queues
// (mailboxes), a ticket dispenser for particle work units, a barrier between
// annealing layers, and a completion latch the main thread waits on.
//
// Table-1 audit of this port: mailbox push/pop + ticket take + barrier
// arrive/wait + latch report/wait = 7 total sites; condvar sites: mailbox
// pop, barrier wait, latch wait = 3 (1 barrier); refactored: the same three
// execute_or_wait sites = 3 (1 barrier).  The paper's row (9 / 2 (1) /
// 2 (1)) differs slightly because the original reuses one queue for two
// roles; the barrier parenthesization matches.
#include "parsec/runner.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "apps/barrier.h"
#include "apps/bounded_queue.h"
#include "apps/latch.h"
#include "parsec/registry.h"
#include "parsec/workload.h"
#include "util/timing.h"

namespace tmcv::parsec {

namespace {

const bool registered = [] {
  register_characteristics({.benchmark = "bodytrack",
                            .total_transactions = 7,
                            .condvar_transactions = 3,
                            .condvar_transactions_barrier = 1,
                            .refactored_continuations = 3,
                            .refactored_barrier = 1});
  return true;
}();

template <typename Policy>
KernelResult run_impl(const KernelConfig& cfg) {
  const std::size_t workers = static_cast<std::size_t>(cfg.threads);
  const int frames = 6;
  const int layers = 5;
  const int particles = 64;  // per layer, shared via the ticket dispenser
  const auto particle_iters = static_cast<std::uint64_t>(
      30.0 * calibrated_iters_per_us() * cfg.scale);
  constexpr std::uint64_t kQuit = ~std::uint64_t{0};

  // Per-worker mailboxes (the "multi-threaded synchronization queue").
  std::vector<std::unique_ptr<apps::BoundedQueue<Policy>>> mailboxes;
  for (std::size_t w = 0; w < workers; ++w)
    mailboxes.emplace_back(std::make_unique<apps::BoundedQueue<Policy>>(4));
  apps::CvBarrier<Policy> layer_barrier(workers);
  apps::Latch<Policy> frame_latch;
  // Ticket dispenser: monotonically increasing work-unit counter.
  typename Policy::Region ticket_region;
  typename Policy::template Cell<std::uint64_t> next_ticket{};

  std::atomic<std::uint64_t> checksum{0};

  Stopwatch sw;
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      std::uint64_t local = 0;
      std::uint64_t frame_cmd = 0;
      while (mailboxes[w]->pop(frame_cmd) && frame_cmd != kQuit) {
        for (int layer = 0; layer < layers; ++layer) {
          // All tickets below `target` belong to this (frame, layer).
          const std::uint64_t target =
              (frame_cmd * layers + static_cast<std::uint64_t>(layer) + 1) *
              particles;
          for (;;) {
            const std::uint64_t ticket =
                Policy::critical(ticket_region, [&] {
                  const std::uint64_t t = next_ticket.get();
                  if (t >= target) return ~std::uint64_t{0};
                  next_ticket.set(t + 1);
                  return t;
                });
            if (ticket == ~std::uint64_t{0}) break;
            local ^= synth_work(cfg.seed ^ ticket, particle_iters);
          }
          layer_barrier.arrive_and_wait();
        }
        frame_latch.report();
      }
      checksum.fetch_xor(local, std::memory_order_relaxed);
    });
  }
  for (int f = 0; f < frames; ++f) {
    for (std::size_t w = 0; w < workers; ++w)
      mailboxes[w]->push(static_cast<std::uint64_t>(f));
    frame_latch.wait_and_reset(workers);
  }
  for (std::size_t w = 0; w < workers; ++w) mailboxes[w]->push(kQuit);
  for (auto& t : pool) t.join();
  const double seconds = sw.elapsed_seconds();
  return KernelResult{seconds, checksum.load(),
                      static_cast<std::uint64_t>(frames)};
}

}  // namespace

KernelResult run_bodytrack(System sys, const KernelConfig& cfg) {
  TMCV_PARSEC_DISPATCH(run_impl, sys, cfg);
}

}  // namespace tmcv::parsec
