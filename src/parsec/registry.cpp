#include "parsec/registry.h"

#include <algorithm>

namespace tmcv::parsec {

namespace {

std::vector<SyncCharacteristics>& rows() {
  static std::vector<SyncCharacteristics> instance;
  return instance;
}

}  // namespace

const std::vector<PaperTableRow>& paper_table1() {
  // Table 1 of the paper, "Synchronization characteristics of PARSEC source
  // code"; parenthesized values are the barrier-implementation subsets.
  static const std::vector<PaperTableRow> table{
      {"facesim", 9, 2, 0, 0, 0},
      {"ferret", 3, 2, 0, 2, 0},
      {"fluidanimate", 9, 2, 2, 2, 2},
      {"streamcluster", 7, 3, 2, 2, 2},
      {"bodytrack", 9, 2, 1, 2, 1},
      {"x264", 4, 1, 0, 0, 0},
      {"raytrace", 14, 4, 1, 0, 0},
      {"dedup", 10, 3, 0, 3, 0},
  };
  return table;
}

void register_characteristics(SyncCharacteristics row) {
  auto& all = rows();
  // Idempotent by benchmark name (static initializers run once, but tests
  // may re-register).
  const auto it =
      std::find_if(all.begin(), all.end(), [&](const SyncCharacteristics& r) {
        return r.benchmark == row.benchmark;
      });
  if (it != all.end())
    *it = std::move(row);
  else
    all.push_back(std::move(row));
}

const std::vector<SyncCharacteristics>& registered_characteristics() {
  return rows();
}

}  // namespace tmcv::parsec
