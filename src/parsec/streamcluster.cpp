// streamcluster mini-kernel: online clustering with a master/slaves work
// distribution plus a condvar barrier (§5.2).  Each round the master
// broadcasts a command (evaluate a candidate center), the slaves compute
// their partial costs, the master waits for all, and a barrier separates
// rounds.
//
// Table-1 audit of this port: distributor {distribute, await, report} +
// barrier {arrive, wait} + cost fold = 6 total sites; condvar sites: the
// master's completion wait, the slaves' command wait, and the barrier wait
// = 3 (1 barrier); refactored: slave wait + barrier wait = 2 (1 barrier).
// The paper's row is 7 / 3 (2) / 2 (2) -- same shape, one fewer barrier
// use because our port folds the original's second barrier into the
// distributor's completion wait.
#include "parsec/runner.h"

#include <atomic>
#include <thread>
#include <vector>

#include "apps/barrier.h"
#include "apps/work_distributor.h"
#include "parsec/registry.h"
#include "parsec/workload.h"
#include "util/timing.h"

namespace tmcv::parsec {

namespace {

const bool registered = [] {
  register_characteristics({.benchmark = "streamcluster",
                            .total_transactions = 6,
                            .condvar_transactions = 3,
                            .condvar_transactions_barrier = 1,
                            .refactored_continuations = 2,
                            .refactored_barrier = 1});
  return true;
}();

template <typename Policy>
KernelResult run_impl(const KernelConfig& cfg) {
  const std::size_t slaves = static_cast<std::size_t>(cfg.threads);
  const int rounds = 40;
  // Per-round total cost evaluation, split across slaves (fixed input).
  const auto round_total_iters = static_cast<std::uint64_t>(
      1500.0 * calibrated_iters_per_us() * cfg.scale);

  apps::WorkDistributor<Policy> dist(slaves);
  // Barrier includes the master (slaves + 1), like streamcluster's.
  apps::CvBarrier<Policy> barrier(slaves + 1);
  std::atomic<std::uint64_t> checksum{0};

  Stopwatch sw;
  std::vector<std::thread> pool;
  for (std::size_t s = 0; s < slaves; ++s) {
    pool.emplace_back([&, s] {
      std::uint64_t local = 0;
      const std::uint64_t slice = round_total_iters / slaves + 1;
      std::uint64_t cmd = 0;
      while (dist.await_command(s, cmd)) {
        local ^= synth_work(cfg.seed ^ (cmd * 977 + s), slice);
        dist.report_done();
        barrier.arrive_and_wait();
      }
      checksum.fetch_xor(local, std::memory_order_relaxed);
    });
  }
  for (int r = 1; r <= rounds; ++r) {
    dist.distribute_and_wait(static_cast<std::uint64_t>(r));
    barrier.arrive_and_wait();
  }
  dist.stop();
  for (auto& t : pool) t.join();
  const double seconds = sw.elapsed_seconds();
  return KernelResult{seconds, checksum.load(),
                      static_cast<std::uint64_t>(rounds)};
}

}  // namespace

KernelResult run_streamcluster(System sys, const KernelConfig& cfg) {
  TMCV_PARSEC_DISPATCH(run_impl, sys, cfg);
}

}  // namespace tmcv::parsec
