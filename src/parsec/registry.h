// Synchronization-characteristics registry: regenerates the paper's Table 1.
//
// The paper's Table 1 audits the PARSEC sources: how many critical sections
// became transactions in the TMParsec port, how many of those contain
// condition-variable operations (barrier uses in parentheses), and how many
// cond_wait sites required manual refactoring (transaction splitting).
//
// Our kernels declare the same characteristics for *our* ports: every
// Policy::critical / Policy::relaxed / Policy::execute_or_wait site in the
// kernel source is one (potential) transaction, sites containing condvar
// operations are counted separately, and every execute_or_wait is by
// construction a refactored continuation (the transaction is split at the
// WAIT).  Each kernel's .cpp carries the audit next to the code it counts.
#pragma once

#include <string>
#include <vector>

namespace tmcv::parsec {

struct SyncCharacteristics {
  std::string benchmark;
  int total_transactions = 0;
  int condvar_transactions = 0;
  int condvar_transactions_barrier = 0;  // subset, shown in parens
  int refactored_continuations = 0;
  int refactored_barrier = 0;  // subset, shown in parens
};

// The paper's Table 1 row for a benchmark (for side-by-side printing).
struct PaperTableRow {
  const char* benchmark;
  int total_transactions;
  int condvar_transactions;
  int condvar_transactions_barrier;
  int refactored_continuations;
  int refactored_barrier;
};

// Paper's Table 1, verbatim (including the TOTAL row computed by callers).
const std::vector<PaperTableRow>& paper_table1();

// Static registration, done by each kernel translation unit at load time.
void register_characteristics(SyncCharacteristics row);
const std::vector<SyncCharacteristics>& registered_characteristics();

}  // namespace tmcv::parsec
