// facesim mini-kernel: physics-frame simulation driven by a dynamic,
// load-balanced task-queue (§5.2).  The main thread adds one batch of tasks
// per frame to the per-worker queues and waits for their completion; the
// workers drain their own queue and steal when starved.
//
// Table-1 audit of this port (TMParsec system):
//   critical sections -> transactions: TaskQueueSet::{add, take, complete,
//   wait_all, stop} plus the kernel's checksum fold = 6 "total" sites, of
//   which take/wait_all contain condvar waits (2 condvar transactions, no
//   barrier) and both are refactored (execute_or_wait splits at the WAIT).
#include "parsec/runner.h"

#include <atomic>
#include <thread>
#include <vector>

#include "apps/task_queue.h"
#include "parsec/registry.h"
#include "parsec/workload.h"
#include "util/timing.h"

namespace tmcv::parsec {

namespace {

const bool registered = [] {
  register_characteristics({.benchmark = "facesim",
                            .total_transactions = 6,
                            .condvar_transactions = 2,
                            .condvar_transactions_barrier = 0,
                            .refactored_continuations = 2,
                            .refactored_barrier = 0});
  return true;
}();

template <typename Policy>
KernelResult run_impl(const KernelConfig& cfg) {
  const std::size_t workers = static_cast<std::size_t>(cfg.threads);
  const int frames = 8;
  const int tasks_per_frame = 48;  // fixed input size (load-balanced)
  const auto work_iters = static_cast<std::uint64_t>(
      120.0 * calibrated_iters_per_us() * cfg.scale);

  apps::TaskQueueSet<Policy> tq(workers, 256);
  std::atomic<std::uint64_t> checksum{0};

  Stopwatch sw;
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      std::uint64_t task = 0;
      std::uint64_t local = 0;
      while (tq.take(w, task)) {
        local ^= synth_work(cfg.seed ^ task, work_iters);
        tq.complete();
      }
      checksum.fetch_xor(local, std::memory_order_relaxed);
    });
  }
  // Main thread: one task batch per frame, then wait for frame completion
  // (the load-balanced task queue + completion latch of facesim).
  for (int f = 0; f < frames; ++f) {
    for (int t = 0; t < tasks_per_frame; ++t)
      tq.add(static_cast<std::size_t>(t) % workers,
             static_cast<std::uint64_t>(f) * tasks_per_frame + t);
    tq.wait_all();
  }
  tq.stop();
  for (auto& t : threads) t.join();
  const double seconds = sw.elapsed_seconds();
  return KernelResult{seconds, checksum.load(),
                      static_cast<std::uint64_t>(frames) * tasks_per_frame};
}

}  // namespace

KernelResult run_facesim(System sys, const KernelConfig& cfg) {
  TMCV_PARSEC_DISPATCH(run_impl, sys, cfg);
}

}  // namespace tmcv::parsec
