// Internal assertion macros.
//
// TMCV_ASSERT is active in all build types (the library is a concurrency
// runtime; silent corruption is worse than an abort), but compiles to a
// single predictable branch.  TMCV_DEBUG_ASSERT is compiled out in release
// builds and may guard expensive checks.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tmcv::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "tmcv: assertion failed: %s at %s:%d%s%s\n", expr, file,
               line, msg ? " -- " : "", msg ? msg : "");
  std::abort();
}

}  // namespace tmcv::detail

#define TMCV_ASSERT(expr)                                                \
  do {                                                                   \
    if (!(expr)) [[unlikely]]                                            \
      ::tmcv::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);   \
  } while (0)

#define TMCV_ASSERT_MSG(expr, msg)                                       \
  do {                                                                   \
    if (!(expr)) [[unlikely]]                                            \
      ::tmcv::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));     \
  } while (0)

#ifdef NDEBUG
#define TMCV_DEBUG_ASSERT(expr) ((void)0)
#else
#define TMCV_DEBUG_ASSERT(expr) TMCV_ASSERT(expr)
#endif
