// CPU feature and topology queries used to pick TM backends and size
// benchmark sweeps.
#pragma once

namespace tmcv {

// True when the processor supports Intel RTM (TSX).  The HTM backend uses
// this to decide between real hardware transactions and the software
// emulation documented in DESIGN.md.
[[nodiscard]] bool cpu_has_rtm() noexcept;

// Number of online logical processors (>= 1).
[[nodiscard]] unsigned online_cpus() noexcept;

}  // namespace tmcv
