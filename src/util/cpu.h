// CPU feature and topology queries used to pick TM backends and size
// benchmark sweeps.
#pragma once

namespace tmcv {

// True when the processor supports Intel RTM (TSX).  The HTM backend uses
// this to decide between real hardware transactions and the software
// emulation documented in DESIGN.md.
[[nodiscard]] bool cpu_has_rtm() noexcept;

// Number of online logical processors (>= 1).
[[nodiscard]] unsigned online_cpus() noexcept;

// Number of processors this process may actually run on: the size of the
// sched_getaffinity mask when available, capped by online_cpus().  A
// container pinned to one core reports 1 here even when the host has many
// -- the signal the spin-budget default keys off (spinning for a wake that
// can only be produced by the core we are occupying is pure waste).
[[nodiscard]] unsigned effective_cpus() noexcept;

}  // namespace tmcv
