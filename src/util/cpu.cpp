#include "util/cpu.h"

#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

#if defined(__linux__)
#include <sched.h>
#endif

namespace tmcv {

bool cpu_has_rtm() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  // Leaf 7 subleaf 0, EBX bit 11 = RTM.
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (ebx & (1u << 11)) != 0;
#else
  return false;
#endif
}

unsigned online_cpus() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

unsigned effective_cpus() noexcept {
  unsigned n = online_cpus();
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof mask, &mask) == 0) {
    const int allowed = CPU_COUNT(&mask);
    if (allowed > 0 && static_cast<unsigned>(allowed) < n)
      n = static_cast<unsigned>(allowed);
  }
#endif
  return n;
}

}  // namespace tmcv
