// Wall-clock timing helpers for the benchmark harnesses, plus the raw
// cycle-counter clock the observability layer stamps events with.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace tmcv {

// Raw timestamp counter: the cheapest monotonic-enough clock available
// (~20 cycles on x86, no syscall, safe inside emulated hardware
// transactions).  Ticks are converted to nanoseconds through a one-shot
// calibration against steady_clock; the conversion is only as good as the
// calibration window (~2 ms), which is plenty for latency histograms and
// trace timelines.  On architectures without a user-readable cycle counter
// the steady clock is used directly (ticks == nanoseconds).
class TscClock {
 public:
  [[nodiscard]] static std::uint64_t now() noexcept {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
    return __rdtsc();
#elif defined(__aarch64__)
    std::uint64_t v;
    asm volatile("mrs %0, cntvct_el0" : "=r"(v));
    return v;
#else
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#endif
  }

  // Nanoseconds per tick (calibrated once, on first use; thread-safe).
  [[nodiscard]] static double ns_per_tick() noexcept {
    static const double ratio = calibrate();
    return ratio;
  }

  [[nodiscard]] static std::uint64_t to_ns(std::uint64_t ticks) noexcept {
    return static_cast<std::uint64_t>(static_cast<double>(ticks) *
                                      ns_per_tick());
  }

 private:
  static double calibrate() noexcept {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__) || \
    defined(__aarch64__)
    using Clock = std::chrono::steady_clock;
    const auto w0 = Clock::now();
    const std::uint64_t t0 = now();
    // ~2 ms window: long enough to swamp the clock-read costs at both ends.
    while (Clock::now() - w0 < std::chrono::milliseconds(2)) {
    }
    const std::uint64_t t1 = now();
    const auto w1 = Clock::now();
    const auto ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(w1 - w0)
            .count());
    const auto ticks = static_cast<double>(t1 - t0);
    return ticks > 0 ? ns / ticks : 1.0;
#else
    return 1.0;  // ticks already are steady_clock nanoseconds
#endif
  }
};

// Monotonic stopwatch.  Construction starts it; elapsed_*() may be called
// repeatedly; restart() re-arms.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] std::uint64_t elapsed_nanos() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  Clock::time_point start_;
};

}  // namespace tmcv
