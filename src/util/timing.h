// Wall-clock timing helpers for the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace tmcv {

// Monotonic stopwatch.  Construction starts it; elapsed_*() may be called
// repeatedly; restart() re-arms.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] std::uint64_t elapsed_nanos() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  Clock::time_point start_;
};

}  // namespace tmcv
