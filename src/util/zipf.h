// Zipfian key-distribution generator, shared by every workload that claims
// "zipfian" in its JSON (bench/micro_tm.cpp's contended profile and the KV
// load driver) so the skew they report is computed one way, in one place.
//
// Construction builds the CDF once (O(n) pow() calls); each draw is a
// binary search over it (O(log n), allocation-free) fed by a caller-owned
// Xoshiro256, so sequences are deterministic given (n, theta, seed) across
// platforms -- the reproducibility contract the bench artifacts rely on.
//
// theta is the standard skew exponent: frequency(rank k) ~ 1 / k^theta.
// theta = 0 degenerates to uniform; 0.9 is the conventional "hot key"
// cache workload (~35% of draws hit the top 4 of 64 ranks).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.h"
#include "util/rng.h"

namespace tmcv {

class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double theta) : cdf_(n) {
    TMCV_ASSERT_MSG(n > 0, "zipf needs a non-empty rank space");
    double total = 0;
    for (std::size_t i = 0; i < n; ++i)
      total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    double acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), theta) / total;
      cdf_[i] = acc;
    }
    cdf_[n - 1] = 1.0;  // guard against float drift at the tail
  }

  // Draw a rank in [0, n); rank 0 is the hottest.
  [[nodiscard]] std::size_t operator()(Xoshiro256& rng) const noexcept {
    const double u = rng.next_double();
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

  // P(rank < k): the mass of the k hottest ranks (for tests and docs).
  [[nodiscard]] double cumulative(std::size_t k) const noexcept {
    if (k == 0) return 0.0;
    return cdf_[k <= cdf_.size() ? k - 1 : cdf_.size() - 1];
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace tmcv
