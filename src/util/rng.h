// Small deterministic PRNGs used by workload generators and randomized tests.
//
// We deliberately do not use std::mt19937 on hot paths: the workload kernels
// call the generator inside their synthetic compute loops and need a couple of
// instructions per draw, plus stable cross-platform sequences for
// reproducibility of the experiment tables.
#pragma once

#include <cstdint>

namespace tmcv {

// splitmix64: used to seed other generators from a single word.
struct SplitMix64 {
  std::uint64_t state;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

// xoshiro256**: fast, high-quality generator for workloads.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform draw in [0, bound). Uses the multiply-shift trick; bias is
  // negligible for bounds far below 2^64 and irrelevant for workloads.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    __extension__ using u128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<u128>(next()) * bound) >>
                                      64);
  }

  // Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace tmcv
