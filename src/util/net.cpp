#include "util/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace tmcv {

namespace {

// close() may clobber errno; callers of these helpers report the *first*
// failure, so preserve it around the cleanup.
int close_keep_errno(int fd) noexcept {
  const int saved = errno;
  ::close(fd);
  errno = saved;
  return -1;
}

}  // namespace

int listen_loopback(std::uint16_t port, std::uint16_t& bound_port,
                    int backlog) noexcept {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, always
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, backlog) < 0)
    return close_keep_errno(fd);
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0)
    return close_keep_errno(fd);
  bound_port = ntohs(bound.sin_port);
  return fd;
}

int connect_loopback(std::uint16_t port) noexcept {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0)
    return close_keep_errno(fd);
  return fd;
}

bool set_tcp_nodelay(int fd) noexcept {
  const int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one) == 0;
}

bool send_all(int fd, const void* data, std::size_t len) noexcept {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace tmcv
