// Cache-line geometry helpers: padding shared variables to distinct lines is
// the single most important layout rule for the hot-path atomics in this
// library (global clock, serial lock, orec table stripes).
#pragma once

#include <cstddef>

namespace tmcv {

// std::hardware_destructive_interference_size is 64 on every x86-64 target we
// support; pinning it avoids ABI warnings and keeps layouts stable.
inline constexpr std::size_t kCacheLine = 64;

// Wrapper that places T alone on its own cache line.
template <typename T>
struct alignas(kCacheLine) CacheAligned {
  T value{};

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

}  // namespace tmcv
