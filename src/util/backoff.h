// Bounded exponential backoff for contended atomics.
//
// This process may run heavily oversubscribed (many more threads than cores),
// so unbounded spinning can livelock: the lock holder may be descheduled while
// waiters burn their whole quantum.  Backoff therefore escalates from PAUSE to
// sched_yield quickly, and callers are expected to bound total retries.
#pragma once

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include <sched.h>

namespace tmcv {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  // Fallback: compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

class Backoff {
 public:
  // After `yield_after` escalations every wait becomes a sched_yield, which is
  // mandatory for forward progress on oversubscribed machines.
  explicit Backoff(std::uint32_t yield_after = 6) noexcept
      : yield_after_(yield_after) {}

  void wait() noexcept {
    if (round_ >= yield_after_) {
      sched_yield();
      return;
    }
    const std::uint32_t spins = 1u << round_;
    for (std::uint32_t i = 0; i < spins; ++i) cpu_relax();
    ++round_;
  }

  void reset() noexcept { round_ = 0; }

  [[nodiscard]] std::uint32_t rounds() const noexcept { return round_; }

 private:
  std::uint32_t yield_after_;
  std::uint32_t round_ = 0;
};

}  // namespace tmcv
