// Bounded exponential backoff for contended atomics.
//
// This process may run heavily oversubscribed (many more threads than cores),
// so unbounded spinning can livelock: the lock holder may be descheduled while
// waiters burn their whole quantum.  Backoff therefore escalates from PAUSE to
// sched_yield quickly, and callers are expected to bound total retries.
#pragma once

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include <sched.h>

#include "util/rng.h"

namespace tmcv {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  // Fallback: compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

class Backoff {
 public:
  // After `yield_after` escalations every wait becomes a sched_yield, which is
  // mandatory for forward progress on oversubscribed machines.  A nonzero
  // `seed` fixes the jitter stream (tests); 0 self-seeds from the instance
  // address so distinct waiters draw distinct streams.
  explicit Backoff(std::uint32_t yield_after = 6,
                   std::uint64_t seed = 0) noexcept
      : yield_after_(yield_after),
        rng_(seed != 0 ? seed
                       : static_cast<std::uint64_t>(
                             reinterpret_cast<std::uintptr_t>(this)) ^
                             0x9e3779b97f4a7c15ULL) {}

  // One backoff step.  Spin waits draw uniformly from [1, 2^round]: the
  // expected wait still grows geometrically, but simultaneous waiters no
  // longer retry in lockstep (the deterministic 1<<round schedule made every
  // collision repeat as another collision -- herding).  Returns the spin
  // count taken, 0 when the step escalated to sched_yield.
  std::uint32_t wait() noexcept {
    if (round_ >= yield_after_) {
      sched_yield();
      return 0;
    }
    const std::uint32_t spins =
        1u + static_cast<std::uint32_t>(rng_.next() & ((1u << round_) - 1u));
    for (std::uint32_t i = 0; i < spins; ++i) cpu_relax();
    ++round_;
    return spins;
  }

  void reset() noexcept { round_ = 0; }

  [[nodiscard]] std::uint32_t rounds() const noexcept { return round_; }

 private:
  std::uint32_t yield_after_;
  std::uint32_t round_ = 0;
  SplitMix64 rng_;
};

}  // namespace tmcv
