// Minimal loopback TCP helpers shared by the telemetry endpoint, the KV
// server, and the load driver -- the socket plumbing is identical in all
// three (loopback-only listeners with SO_REUSEADDR, ephemeral port-0 binds
// for tests/CI, full-buffer sends), so it lives here once.
//
// Every call returns -1 on failure with errno intact (including across the
// internal close() on partially constructed sockets), so callers can report
// *why* a bind failed -- "port taken" versus "permission denied" -- instead
// of a silent -1.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tmcv {

// Create, bind, and listen a loopback (127.0.0.1) TCP socket with
// SO_REUSEADDR.  `port` 0 asks the kernel for a free port.  On success the
// bound port is written to `bound_port` (resolving port 0) and the listen
// fd is returned; on failure returns -1 with errno describing the first
// failing syscall (EADDRINUSE when the port is taken).
[[nodiscard]] int listen_loopback(std::uint16_t port,
                                  std::uint16_t& bound_port,
                                  int backlog = 64) noexcept;

// Blocking connect to 127.0.0.1:port.  Returns the fd or -1 with errno.
[[nodiscard]] int connect_loopback(std::uint16_t port) noexcept;

// Disable Nagle (TCP_NODELAY); best-effort, returns false with errno set.
bool set_tcp_nodelay(int fd) noexcept;

// Send the whole buffer (retrying short writes, MSG_NOSIGNAL).  Returns
// false on the first unrecoverable send error or peer close.
bool send_all(int fd, const void* data, std::size_t len) noexcept;

}  // namespace tmcv
