#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace tmcv {

Summary summarize(std::span<const double> xs) noexcept {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  double sum = 0.0;
  s.min = xs[0];
  s.max = xs[0];
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) {
    const double d = x - s.mean;
    var += d * d;
  }
  // Sample standard deviation for n > 1; zero otherwise.
  s.stddev = xs.size() > 1
                 ? std::sqrt(var / static_cast<double>(xs.size() - 1))
                 : 0.0;
  return s;
}

double geomean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 1.0;
  double log_sum = 0.0;
  for (double x : xs) {
    TMCV_ASSERT_MSG(x > 0.0, "geomean requires positive inputs");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  const std::size_t mid = copy.size() / 2;
  return copy.size() % 2 == 1 ? copy[mid]
                              : 0.5 * (copy[mid - 1] + copy[mid]);
}

}  // namespace tmcv
