// Summary statistics for benchmark results: mean, stddev, min/max, and the
// geometric mean used by the paper's Figure 3.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tmcv {

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

// Summary statistics over a sample; n==0 yields an all-zero summary.
[[nodiscard]] Summary summarize(std::span<const double> xs) noexcept;

// Geometric mean; all inputs must be > 0 (asserted).  Empty input yields 1.
[[nodiscard]] double geomean(std::span<const double> xs) noexcept;

// Median (copies and sorts); empty input yields 0.
[[nodiscard]] double median(std::span<const double> xs);

// Repeatedly run `fn` (returning elapsed seconds per trial) and return all
// trial times.  Used by the figure harnesses ("average of five trials").
template <typename Fn>
std::vector<double> run_trials(std::size_t trials, Fn&& fn) {
  std::vector<double> times;
  times.reserve(trials);
  for (std::size_t i = 0; i < trials; ++i) times.push_back(fn());
  return times;
}

}  // namespace tmcv
