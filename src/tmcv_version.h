// Library version (kept in sync with the CMake project version).
#pragma once

#define TMCV_VERSION_MAJOR 1
#define TMCV_VERSION_MINOR 0
#define TMCV_VERSION_PATCH 0
#define TMCV_VERSION_STRING "1.0.0"

namespace tmcv {

inline constexpr const char* version() noexcept {
  return TMCV_VERSION_STRING;
}

}  // namespace tmcv
