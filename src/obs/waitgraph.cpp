// Wait-for graph implementation: seqlock-validated slot snapshots, edge
// resolution against the live orec table / TM registry / condvar registry,
// functional-graph cycle detection, and the per-episode lost-wakeup
// detector the time-series probe advances.
#include "obs/waitgraph.h"

#include <mutex>
#include <sstream>

#include "core/condvar.h"
#include "obs/attribution.h"
#include "tm/orec.h"
#include "tm/stats.h"
#include "util/timing.h"

namespace tmcv::obs {

namespace {

// Per-slot episode state, keyed by the slot's odd seq value: a new park
// (new TSC start) resets the entry, so verdicts never leak across
// wake-and-repark.  Written only by waitgraph_probe() under State::mu.
struct Episode {
  std::uint64_t episode = 0;          // slot seq value; 0 = idle
  std::uint32_t windows = 0;          // consecutive probe ticks observed
  std::uint64_t commits_at_start = 0; // tm commits when the episode began
  std::uint64_t notifies_at_start = 0;
  bool cv_known = false;              // target resolved in the cv registry
  bool notified_before = false;       // cv had >0 notifies at episode start
  bool suspect = false;               // lost-wakeup verdict (condvar only)
  bool stuck = false;                 // generic stuck verdict
};

struct State {
  std::mutex mu;
  WaitGraph graph;  // probe/exporter scratch: never on a stack
  Episode episodes[kMaxWaitSlots];
  std::uint64_t cells[kWaitReasonCount][kStallSiteSlots];
  std::uint64_t prev_reason_ticks[kWaitReasonCount] = {};
  std::uint64_t prev_total_ticks = 0;
  std::atomic<std::uint32_t> stuck_windows{2};
};

State& state() {
  static State s;
  return s;
}

std::uint64_t cv_notify_total(const CondVarStats& s) noexcept {
  return s.notify_one_calls + s.notify_all_calls + s.notify_best_calls;
}

// Read one claimed slot into `row`.  Returns false for free slots.  A
// parked row is accepted only when the same odd seq brackets the payload
// (the slot's single-writer seqlock); a slot that churns faster than four
// retries is reported as running, never as a torn mix.
bool read_slot(const WaitSlot& s, std::uint32_t idx, std::uint64_t now,
               ThreadRow& row) noexcept {
  const std::uint32_t tid = s.os_tid.load(std::memory_order_acquire);
  if (tid == 0) return false;
  row = ThreadRow{};
  row.slot = idx;
  row.os_tid = tid;
  row.tm_slot = s.tm_slot.load(std::memory_order_relaxed);
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
    if ((s1 & 1ull) == 0) return true;  // running
    const std::uint64_t info = s.info.load(std::memory_order_relaxed);
    const void* target = s.target.load(std::memory_order_relaxed);
    const void* relay = s.relay_key.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != s1) continue;
    row.waiting = true;
    row.reason = wait_info_reason(info);
    row.site = wait_info_site(info);
    row.detail = wait_info_detail(info);
    row.target = target;
    row.relay_key = relay;
    row.episode = s1;
    const std::uint64_t start = s1 >> 1;
    row.age_ns = now > start ? TscClock::to_ns(now - start) : 0;
    return true;
  }
  return true;
}

// Row index whose bound TM registry slot is `tm_slot`, or -1.
std::int32_t find_tm_row(const WaitGraph& g, std::uint64_t tm_slot) noexcept {
  for (std::uint32_t i = 0; i < g.thread_count; ++i)
    if (g.rows[i].tm_slot == tm_slot) return static_cast<std::int32_t>(i);
  return -1;
}

// Rows + edges + cycles.  Suspects are filled by the caller (the probe
// computes fresh verdicts; the exporters copy the last probe's).
void collect_rows_edges(WaitGraph& g) {
  g.thread_count = 0;
  g.edge_count = 0;
  g.cycle_threads = 0;
  g.suspect_count = 0;
  g.now_ticks = TscClock::now();
  WaitSlot* slots = tmcv::detail::wait_slots();
  const std::uint32_t n = wait_slot_high_water();
  for (std::uint32_t i = 0; i < n && g.thread_count < kMaxWaitSlots; ++i) {
    ThreadRow row;
    if (!read_slot(slots[i], i, g.now_ticks, row)) continue;
    g.rows[g.thread_count++] = row;
  }
  for (std::uint32_t i = 0; i < g.thread_count; ++i) {
    const ThreadRow& r = g.rows[i];
    if (!r.waiting) continue;
    WaitEdge e;
    e.waiter = i;
    e.reason = r.reason;
    e.holder = -1;
    e.holder_site = r.site;
    switch (r.reason) {
      case WaitReason::kCondVar: {
        // The waiter is parked, so the condvar cannot be destroyed under
        // us: the probe either finds it live or (address reuse aside)
        // leaves the publish-time site.
        CondVarStats cs;
        std::uint16_t last_notify_site = 0;
        if (r.target != nullptr &&
            condvar_probe(r.target, cs, last_notify_site))
          e.holder_site = last_notify_site;
        break;
      }
      case WaitReason::kOrec: {
        // Re-read the contested stripe: if it is still locked the current
        // owner is authoritative; otherwise keep the publish-time owner
        // site (the wait is about to resolve anyway).
        const tm::OrecWord w =
            tm::orec_at(r.detail).load(std::memory_order_relaxed);
        if (tm::orec_is_locked(w))
          e.holder = find_tm_row(g, tm::orec_owner_slot(w));
        break;
      }
      case WaitReason::kSerialQuiesce:
        e.holder = find_tm_row(g, r.detail);
        break;
      default:
        break;  // semaphore / serial lock / adaptive sleep: site only
    }
    if (e.holder == static_cast<std::int32_t>(i)) e.holder = -1;
    g.edges[g.edge_count++] = e;
  }
  // Cycle detection: every waiting row has at most one outgoing edge, so
  // the holder links form a functional graph -- one three-color walk per
  // component finds every cycle.
  std::int32_t out[kMaxWaitSlots];
  std::uint8_t color[kMaxWaitSlots];  // 0 white, 1 on current path, 2 done
  bool on_cycle[kMaxWaitSlots];
  for (std::uint32_t i = 0; i < g.thread_count; ++i) {
    out[i] = -1;
    color[i] = 0;
    on_cycle[i] = false;
  }
  for (std::uint32_t k = 0; k < g.edge_count; ++k)
    out[g.edges[k].waiter] = g.edges[k].holder;
  std::uint32_t path[kMaxWaitSlots];
  for (std::uint32_t i = 0; i < g.thread_count; ++i) {
    if (color[i] != 0) continue;
    std::uint32_t len = 0;
    std::int32_t cur = static_cast<std::int32_t>(i);
    while (cur >= 0 && color[cur] == 0) {
      color[cur] = 1;
      path[len++] = static_cast<std::uint32_t>(cur);
      cur = out[cur];
    }
    if (cur >= 0 && color[cur] == 1) {
      bool in = false;
      for (std::uint32_t p = 0; p < len; ++p) {
        if (path[p] == static_cast<std::uint32_t>(cur)) in = true;
        if (in) on_cycle[path[p]] = true;
      }
    }
    for (std::uint32_t p = 0; p < len; ++p) color[path[p]] = 2;
  }
  for (std::uint32_t i = 0; i < g.thread_count; ++i)
    if (on_cycle[i]) ++g.cycle_threads;
  for (std::uint32_t k = 0; k < g.edge_count; ++k) {
    WaitEdge& e = g.edges[k];
    e.in_cycle = on_cycle[e.waiter] && e.holder >= 0 && on_cycle[e.holder];
  }
}

// Copy the last probe's verdicts into g.suspects (episode ids must still
// match: a since-recycled park is not a suspect).
void fill_suspects(WaitGraph& g, const State& st) {
  for (std::uint32_t i = 0; i < g.thread_count; ++i) {
    const ThreadRow& r = g.rows[i];
    if (!r.waiting) continue;
    const Episode& ep = st.episodes[r.slot];
    if (ep.suspect && ep.episode == r.episode &&
        g.suspect_count < kMaxWaitSlots)
      g.suspects[g.suspect_count++] = i;
  }
}

StallSnapshot stall_snapshot_locked(State& st) {
  StallSnapshot snap;
  snap.total_ticks = snapshot_stall(st.cells);
  for (std::uint32_t r = 0; r < kWaitReasonCount; ++r)
    for (std::uint32_t s = 0; s < kStallSiteSlots; ++s) {
      const std::uint64_t t = st.cells[r][s];
      if (t == 0) continue;
      StallEntry e;
      e.reason = static_cast<WaitReason>(r);
      e.site = static_cast<std::uint16_t>(s);
      e.ticks = t;
      e.ns = TscClock::to_ns(t);
      snap.entries.push_back(e);
      snap.total_ns += e.ns;
    }
  return snap;
}

void append_row_json(std::ostringstream& os, const ThreadRow& r) {
  os << "{\"slot\": " << r.slot << ", \"os_tid\": " << r.os_tid
     << ", \"tm_slot\": ";
  if (r.tm_slot == 0xffffffffu)
    os << "null";
  else
    os << r.tm_slot;
  os << ", \"waiting\": " << (r.waiting ? "true" : "false");
  if (r.waiting) {
    os << ", \"reason\": \"" << wait_reason_name(r.reason) << "\""
       << ", \"site\": \"" << site_name(r.site) << "\""
       << ", \"site_id\": " << r.site << ", \"detail\": " << r.detail
       << ", \"target\": \"" << r.target << "\""
       << ", \"relayed\": " << (r.relay_key != nullptr ? "true" : "false")
       << ", \"age_ns\": " << r.age_ns;
  }
  os << "}";
}

}  // namespace

void waitgraph_collect(WaitGraph& g) {
  State& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  collect_rows_edges(g);
  fill_suspects(g, st);
}

WaitProbe waitgraph_probe() {
  State& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  WaitGraph& g = st.graph;
  collect_rows_edges(g);
  const std::uint64_t commits_now = tm::stats_snapshot().commits;
  const std::uint32_t need =
      st.stuck_windows.load(std::memory_order_relaxed);
  WaitProbe p;
  for (std::uint32_t i = 0; i < g.thread_count; ++i) {
    const ThreadRow& r = g.rows[i];
    if (!r.waiting) {
      st.episodes[r.slot] = Episode{};
      continue;
    }
    ++p.threads_waiting;
    const std::uint64_t age_ms = r.age_ns / 1000000u;
    if (age_ms > p.max_wait_age_ms) p.max_wait_age_ms = age_ms;
    Episode& ep = st.episodes[r.slot];
    if (ep.episode != r.episode) {
      ep = Episode{};
      ep.episode = r.episode;
      ep.windows = 1;
      ep.commits_at_start = commits_now;
      if (r.reason == WaitReason::kCondVar && r.target != nullptr) {
        CondVarStats cs;
        std::uint16_t last_notify_site = 0;
        ep.cv_known = condvar_probe(r.target, cs, last_notify_site);
        if (ep.cv_known) {
          ep.notifies_at_start = cv_notify_total(cs);
          ep.notified_before = ep.notifies_at_start > 0;
        }
      }
    } else {
      ++ep.windows;
    }
    ep.suspect = false;
    ep.stuck = false;
    if (ep.windows > need) {
      switch (r.reason) {
        case WaitReason::kCondVar: {
          // Lost-wakeup heuristic, all four conditions: (a) the episode
          // outlived the window budget, (b) the condvar saw ZERO notifies
          // during it, (c) it HAD been notified before it began (a
          // never-notified cv is a phase barrier, not a bug), (d) the
          // process kept committing (a globally idle process is just
          // idle).
          CondVarStats cs;
          std::uint16_t last_notify_site = 0;
          if (ep.cv_known && ep.notified_before && r.target != nullptr &&
              condvar_probe(r.target, cs, last_notify_site) &&
              cv_notify_total(cs) == ep.notifies_at_start &&
              commits_now > ep.commits_at_start) {
            ep.suspect = true;
            ep.stuck = true;
          }
          break;
        }
        case WaitReason::kOrec:
        case WaitReason::kSerialQuiesce:
        case WaitReason::kSerialLock:
          // These are bounded drain/handoff waits that resolve in
          // microseconds when healthy; surviving whole probe windows
          // means the holder is stuck (or preempted to death).
          ep.stuck = true;
          break;
        default:
          // Raw semaphore parks and the controller's between-window sleep
          // can legitimately last forever; they never count as stuck.
          break;
      }
    }
    if (ep.stuck && age_ms > p.stuck_age_ms) p.stuck_age_ms = age_ms;
    if (ep.suspect && g.suspect_count < kMaxWaitSlots)
      g.suspects[g.suspect_count++] = i;
  }
  p.wait_cycles = g.cycle_threads;
  // Stall-table interval delta (ticks are monotone; a reset_stall_table
  // between probes shows up as a sum below the baseline -> clamp to 0).
  const std::uint64_t total = snapshot_stall(st.cells);
  std::uint64_t best_delta = 0;
  for (std::uint32_t r = 0; r < kWaitReasonCount; ++r) {
    std::uint64_t sum = 0;
    for (std::uint32_t s = 0; s < kStallSiteSlots; ++s) sum += st.cells[r][s];
    const std::uint64_t d =
        sum >= st.prev_reason_ticks[r] ? sum - st.prev_reason_ticks[r] : 0;
    if (d > best_delta) {
      best_delta = d;
      p.stall_top_reason = r;
    }
    st.prev_reason_ticks[r] = sum;
  }
  const std::uint64_t dt =
      total >= st.prev_total_ticks ? total - st.prev_total_ticks : 0;
  st.prev_total_ticks = total;
  p.stall_ns = TscClock::to_ns(dt);
  return p;
}

void set_stuck_windows(std::uint32_t n) noexcept {
  state().stuck_windows.store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

std::uint32_t stuck_windows() noexcept {
  return state().stuck_windows.load(std::memory_order_relaxed);
}

void waitgraph_reset() noexcept {
  State& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  for (std::uint32_t i = 0; i < kMaxWaitSlots; ++i)
    st.episodes[i] = Episode{};
  for (std::uint32_t r = 0; r < kWaitReasonCount; ++r)
    st.prev_reason_ticks[r] = 0;
  st.prev_total_ticks = 0;
}

StallSnapshot stall_snapshot() {
  State& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  return stall_snapshot_locked(st);
}

std::string threads_json() {
  State& st = state();
  std::ostringstream os;
  std::lock_guard<std::mutex> lock(st.mu);
  WaitGraph& g = st.graph;
  collect_rows_edges(g);
  fill_suspects(g, st);
  std::uint32_t waiting = 0;
  std::uint64_t oldest_ns = 0;
  for (std::uint32_t i = 0; i < g.thread_count; ++i) {
    if (!g.rows[i].waiting) continue;
    ++waiting;
    if (g.rows[i].age_ns > oldest_ns) oldest_ns = g.rows[i].age_ns;
  }
  os << "{\n  \"waitpoints_enabled\": "
     << (waitpoints_enabled() ? "true" : "false")
     << ",\n  \"slot_high_water\": " << wait_slot_high_water()
     << ",\n  \"threads_waiting\": " << waiting
     << ",\n  \"oldest_wait_ns\": " << oldest_ns << ",\n  \"threads\": [";
  for (std::uint32_t i = 0; i < g.thread_count; ++i) {
    os << (i == 0 ? "" : ",") << "\n    ";
    append_row_json(os, g.rows[i]);
  }
  os << (g.thread_count == 0 ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

std::string waitgraph_json() {
  State& st = state();
  std::ostringstream os;
  std::lock_guard<std::mutex> lock(st.mu);
  WaitGraph& g = st.graph;
  collect_rows_edges(g);
  fill_suspects(g, st);
  os << "{\n  \"now_ticks\": " << g.now_ticks
     << ",\n  \"cycle_threads\": " << g.cycle_threads
     << ",\n  \"threads\": [";
  for (std::uint32_t i = 0; i < g.thread_count; ++i) {
    os << (i == 0 ? "" : ",") << "\n    ";
    append_row_json(os, g.rows[i]);
  }
  os << (g.thread_count == 0 ? "" : "\n  ") << "],\n  \"edges\": [";
  for (std::uint32_t k = 0; k < g.edge_count; ++k) {
    const WaitEdge& e = g.edges[k];
    const ThreadRow& w = g.rows[e.waiter];
    os << (k == 0 ? "" : ",") << "\n    {\"waiter_slot\": " << w.slot
       << ", \"waiter_tid\": " << w.os_tid << ", \"reason\": \""
       << wait_reason_name(e.reason) << "\", \"holder_slot\": ";
    if (e.holder >= 0)
      os << g.rows[e.holder].slot << ", \"holder_tid\": "
         << g.rows[e.holder].os_tid;
    else
      os << "null, \"holder_tid\": null";
    os << ", \"holder_site\": \"" << site_name(e.holder_site)
       << "\", \"holder_site_id\": " << e.holder_site << ", \"in_cycle\": "
       << (e.in_cycle ? "true" : "false") << "}";
  }
  os << (g.edge_count == 0 ? "" : "\n  ") << "],\n  \"suspects\": [";
  for (std::uint32_t k = 0; k < g.suspect_count; ++k) {
    const ThreadRow& r = g.rows[g.suspects[k]];
    os << (k == 0 ? "" : ",") << "\n    {\"slot\": " << r.slot
       << ", \"os_tid\": " << r.os_tid << ", \"target\": \"" << r.target
       << "\", \"site\": \"" << site_name(r.site) << "\", \"age_ns\": "
       << r.age_ns << "}";
  }
  os << (g.suspect_count == 0 ? "" : "\n  ") << "],\n  \"stall\": {";
  // The stall table is appended from the same exporter everywhere (route,
  // flight dump) so trace_report --validate can hold both ledgers to the
  // exact-sum contract.
  const StallSnapshot snap = stall_snapshot_locked(st);
  os << "\n    \"total_ticks\": " << snap.total_ticks
     << ",\n    \"total_ns\": " << snap.total_ns
     << ",\n    \"entries\": [";
  for (std::size_t k = 0; k < snap.entries.size(); ++k) {
    const StallEntry& e = snap.entries[k];
    os << (k == 0 ? "" : ",") << "\n      {\"reason\": \""
       << wait_reason_name(e.reason) << "\", \"site\": \""
       << site_name(e.site) << "\", \"site_id\": " << e.site
       << ", \"ticks\": " << e.ticks << ", \"ns\": " << e.ns << "}";
  }
  os << (snap.entries.empty() ? "" : "\n    ") << "]\n  }\n}\n";
  return os.str();
}

}  // namespace tmcv::obs
