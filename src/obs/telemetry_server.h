// Live telemetry endpoint: scrape the metrics registry from a RUNNING
// process instead of waiting for an exit dump.
//
// A background pump thread snapshots the registry every
// `snapshot_interval_ms` and retains a small ring of deltas (activity per
// interval); an accept thread serves a minimal blocking HTTP/1.0 loop bound
// to 127.0.0.1:
//
//   GET /metrics       Prometheus text exposition (to_prometheus)
//   GET /metrics.json  full JSON snapshot (to_json)
//   GET /healthz       liveness + activity over the most recent interval
//   GET /profile       conflict-attribution top-N (abort sites, conflict
//                      pairs, hot stripes), JSON
//
// Scope: a debugging/bench endpoint, deliberately minimal -- one request
// per connection, GET only, no TLS, loopback only.  Production deployments
// would sit a real exporter in front; this exists so `curl
// localhost:PORT/profile` works mid-run (the ROADMAP's "scrapeable from a
// running process" requirement) and so CI can assert the attribution lists
// are non-empty while the contended bench is still executing.
//
// The C API face (tmcv_telemetry_start/stop, declared in core/c_api.h) is
// defined here in the obs library, keeping tmcv_core free of any obs
// dependency.
#pragma once

#include <cstdint>
#include <memory>

namespace tmcv::obs {

struct TelemetryOptions {
  std::uint16_t port = 0;  // 0 = ephemeral (read the bound port after start)
  std::uint32_t snapshot_interval_ms = 250;
  std::uint32_t delta_ring = 16;  // retained per-interval deltas
};

class TelemetryServer {
 public:
  TelemetryServer();
  ~TelemetryServer();  // stops if running

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  // Bind, spawn the pump + accept threads.  Returns false if already
  // running or the socket could not be bound.
  bool start(const TelemetryOptions& opts = {});

  // Shut the listen socket, join both threads.  Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept;

  // Bound port (valid after a successful start; 0 otherwise).
  [[nodiscard]] std::uint16_t port() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tmcv::obs
