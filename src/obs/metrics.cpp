#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <functional>
#include <sstream>
#include <utility>

#include "obs/trace.h"

namespace tmcv::obs {

MetricsSnapshot metrics_snapshot() {
  MetricsSnapshot s;
  s.tm = tm::stats_snapshot();
  s.cv = condvar_stats_aggregate();
  s.wake = wake_stats_snapshot();
  const TraceCounts tc = trace_counts();
  s.trace_events = tc.recorded;
  s.trace_dropped = tc.dropped;
  s.cv_wait_ns = hist_cv_wait().snapshot();
  s.notify_wake_ns = hist_notify_wake().snapshot();
  s.txn_commit_ns = hist_txn_commit().snapshot();
  s.txn_abort_ns = hist_txn_abort().snapshot();
  s.serial_stall_ns = hist_serial_stall().snapshot();
  s.cm_backoff_ns = hist_cm_backoff().snapshot();
  s.spin_park_ns = hist_spin_park().snapshot();
  return s;
}

MetricsSnapshot metrics_delta(const MetricsSnapshot& now,
                              const MetricsSnapshot& before) {
  MetricsSnapshot d = now;
  d.tm -= before.tm;
  d.cv -= before.cv;
  d.wake -= before.wake;
  d.trace_events -= before.trace_events;
  d.trace_dropped -= before.trace_dropped;
  d.cv_wait_ns -= before.cv_wait_ns;
  d.notify_wake_ns -= before.notify_wake_ns;
  d.txn_commit_ns -= before.txn_commit_ns;
  d.txn_abort_ns -= before.txn_abort_ns;
  d.serial_stall_ns -= before.serial_stall_ns;
  d.cm_backoff_ns -= before.cm_backoff_ns;
  d.spin_park_ns -= before.spin_park_ns;
  return d;
}

namespace {

struct NamedHist {
  const char* name;
  const HistogramSnapshot* hist;
};

// The histograms by export name, in a stable order.
void for_each_hist(const MetricsSnapshot& s,
                   const std::function<void(const NamedHist&)>& fn) {
  fn({"cv_wait_ns", &s.cv_wait_ns});
  fn({"notify_wake_ns", &s.notify_wake_ns});
  fn({"txn_commit_ns", &s.txn_commit_ns});
  fn({"txn_abort_ns", &s.txn_abort_ns});
  fn({"serial_stall_ns", &s.serial_stall_ns});
  fn({"cm_backoff_ns", &s.cm_backoff_ns});
  fn({"spin_park_ns", &s.spin_park_ns});
}

}  // namespace

std::string to_json(const MetricsSnapshot& s) {
  std::ostringstream os;
  os << "{\n  \"tm\": {\n";
  bool first = true;
  tm::Stats::for_each_field([&](const char* name,
                                std::uint64_t tm::Stats::*field) {
    os << (first ? "" : ",\n") << "    \"" << name << "\": " << s.tm.*field;
    first = false;
  });
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", s.tm.dedup_hit_rate());
  os << ",\n    \"dedup_hit_rate\": " << buf;
  const double attempts = static_cast<double>(s.tm.commits) +
                          static_cast<double>(s.tm.aborts);
  std::snprintf(buf, sizeof buf, "%.6f",
                attempts ? static_cast<double>(s.tm.aborts) / attempts : 0.0);
  os << ",\n    \"abort_rate\": " << buf << "\n  },\n  \"condvar\": {\n";
  first = true;
  CondVarStats::for_each_field([&](const char* name,
                                   std::uint64_t CondVarStats::*field) {
    os << (first ? "" : ",\n") << "    \"" << name << "\": " << s.cv.*field;
    first = false;
  });
  os << "\n  },\n  \"wake\": {\n";
  first = true;
  WakeStats::for_each_field([&](const char* name,
                                std::uint64_t WakeStats::*field) {
    os << (first ? "" : ",\n") << "    \"" << name
       << "\": " << s.wake.*field;
    first = false;
  });
  os << "\n  },\n  \"trace\": {\n    \"events\": " << s.trace_events
     << ",\n    \"dropped\": " << s.trace_dropped
     << "\n  },\n  \"histograms\": {\n";
  first = true;
  for_each_hist(s, [&](const NamedHist& h) {
    char mean[64];
    std::snprintf(mean, sizeof mean, "%.1f", h.hist->mean());
    os << (first ? "" : ",\n") << "    \"" << h.name << "\": {"
       << "\"count\": " << h.hist->count << ", \"sum\": " << h.hist->sum
       << ", \"mean\": " << mean << ", \"p50\": " << h.hist->percentile(0.5)
       << ", \"p90\": " << h.hist->percentile(0.9)
       << ", \"p99\": " << h.hist->percentile(0.99)
       << ", \"p999\": " << h.hist->percentile(0.999)
       << ", \"max\": " << h.hist->max_observed() << "}";
    first = false;
  });
  os << "\n  }\n}\n";
  return os.str();
}

std::string to_prometheus(const MetricsSnapshot& s) {
  std::ostringstream os;
  tm::Stats::for_each_field([&](const char* name,
                                std::uint64_t tm::Stats::*field) {
    os << "# TYPE tmcv_tm_" << name << "_total counter\n"
       << "tmcv_tm_" << name << "_total " << s.tm.*field << "\n";
  });
  CondVarStats::for_each_field([&](const char* name,
                                   std::uint64_t CondVarStats::*field) {
    os << "# TYPE tmcv_cv_" << name << "_total counter\n"
       << "tmcv_cv_" << name << "_total " << s.cv.*field << "\n";
  });
  WakeStats::for_each_field([&](const char* name,
                                std::uint64_t WakeStats::*field) {
    os << "# TYPE tmcv_wake_" << name << "_total counter\n"
       << "tmcv_wake_" << name << "_total " << s.wake.*field << "\n";
  });
  os << "# TYPE tmcv_trace_events gauge\ntmcv_trace_events "
     << s.trace_events << "\n"
     << "# TYPE tmcv_trace_dropped_total counter\ntmcv_trace_dropped_total "
     << s.trace_dropped << "\n";
  for_each_hist(s, [&](const NamedHist& h) {
    os << "# TYPE tmcv_" << h.name << " summary\n";
    static constexpr std::pair<double, const char*> kQuantiles[] = {
        {0.5, "0.5"}, {0.9, "0.9"}, {0.99, "0.99"}, {0.999, "0.999"}};
    for (const auto& [q, label] : kQuantiles) {
      os << "tmcv_" << h.name << "{quantile=\"" << label << "\"} "
         << h.hist->percentile(q) << "\n";
    }
    os << "tmcv_" << h.name << "_sum " << h.hist->sum << "\n"
       << "tmcv_" << h.name << "_count " << h.hist->count << "\n";
  });
  return os.str();
}

bool write_metrics_files(const MetricsSnapshot& s,
                         const std::string& json_path) {
  const auto write = [](const std::string& path, const std::string& text) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const bool ok = std::fputs(text.c_str(), f) >= 0;
    return std::fclose(f) == 0 && ok;
  };
  return write(json_path, to_json(s)) &&
         write(json_path + ".prom", to_prometheus(s));
}

}  // namespace tmcv::obs
