#include "obs/metrics.h"

#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <functional>
#include <mutex>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "tm/api.h"
#include "tmcv_version.h"

namespace tmcv::obs {

namespace {

struct AppSource {
  AppCounterFn fn;
  void* ctx;
};

std::mutex& app_sources_mu() {
  static std::mutex mu;
  return mu;
}

std::vector<AppSource>& app_sources() {
  static std::vector<AppSource> sources;
  return sources;
}

}  // namespace

void register_app_counters(AppCounterFn fn, void* ctx) {
  std::lock_guard<std::mutex> lock(app_sources_mu());
  app_sources().push_back(AppSource{fn, ctx});
}

void unregister_app_counters(AppCounterFn fn, void* ctx) {
  std::lock_guard<std::mutex> lock(app_sources_mu());
  auto& sources = app_sources();
  for (auto it = sources.begin(); it != sources.end(); ++it) {
    if (it->fn == fn && it->ctx == ctx) {
      sources.erase(it);
      return;
    }
  }
}

void scrape_app_counters_into(std::vector<AppCounter>& out) {
  // Under the lock: orders against a concurrent unregister-then-destroy.
  std::lock_guard<std::mutex> lock(app_sources_mu());
  for (const AppSource& src : app_sources()) src.fn(src.ctx, out);
}

namespace {

// Anchored the first time anything queries uptime; constant-initialized
// early enough that "first scrape" and "process start" agree to well under
// a second in every real deployment.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

}  // namespace

double process_uptime_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_process_start)
      .count();
}

MetricsSnapshot metrics_snapshot() {
  MetricsSnapshot s;
  s.tm = tm::stats_snapshot();
  s.tm_backend = tm::backend_label(tm::default_backend());
  s.cv = condvar_stats_aggregate();
  s.wake = wake_stats_snapshot();
  const TraceCounts tc = trace_counts();
  s.trace_events = tc.recorded;
  s.trace_dropped = tc.dropped;
  for_each_ring([&](const TraceRing& r) {
    s.trace_ring_drops.push_back(RingDrops{r.tid(), r.dropped()});
  });
  s.attribution = attribution_snapshot();
  scrape_app_counters_into(s.app);
  s.stall = stall_snapshot();
  s.cv_wait_ns = hist_cv_wait().snapshot();
  s.notify_wake_ns = hist_notify_wake().snapshot();
  s.txn_commit_ns = hist_txn_commit().snapshot();
  s.txn_abort_ns = hist_txn_abort().snapshot();
  s.serial_stall_ns = hist_serial_stall().snapshot();
  s.cm_backoff_ns = hist_cm_backoff().snapshot();
  s.spin_park_ns = hist_spin_park().snapshot();
  return s;
}

MetricsSnapshot metrics_delta(const MetricsSnapshot& now,
                              const MetricsSnapshot& before) {
  MetricsSnapshot d = now;
  d.tm -= before.tm;
  d.cv -= before.cv;
  d.wake -= before.wake;
  d.trace_events -= before.trace_events;
  d.trace_dropped -= before.trace_dropped;
  // Rings are immortal and tids stable, so match by tid (a ring absent from
  // `before` was born in between: its whole count is delta).
  for (RingDrops& rd : d.trace_ring_drops)
    for (const RingDrops& bd : before.trace_ring_drops)
      if (bd.tid == rd.tid) {
        rd.dropped =
            rd.dropped > bd.dropped ? rd.dropped - bd.dropped : 0;
        break;
      }
  d.attribution = attribution_delta(now.attribution, before.attribution);
  // App counters match by name (a counter absent from `before` appeared in
  // between: its whole value is delta).
  for (AppCounter& ac : d.app)
    for (const AppCounter& bc : before.app)
      if (bc.name == ac.name) {
        ac.value = ac.value > bc.value ? ac.value - bc.value : 0;
        break;
      }
  // Stall entries match by (reason, site); totals are re-derived from the
  // diffed entries so the "total_ns == sum of entry ns" contract survives
  // the subtraction (total_ticks likewise stays the two-ledger diff).
  d.stall.total_ticks = now.stall.total_ticks > before.stall.total_ticks
                            ? now.stall.total_ticks - before.stall.total_ticks
                            : 0;
  d.stall.total_ns = 0;
  for (StallEntry& e : d.stall.entries) {
    for (const StallEntry& be : before.stall.entries)
      if (be.reason == e.reason && be.site == e.site) {
        e.ticks = e.ticks > be.ticks ? e.ticks - be.ticks : 0;
        e.ns = e.ns > be.ns ? e.ns - be.ns : 0;
        break;
      }
    d.stall.total_ns += e.ns;
  }
  d.cv_wait_ns -= before.cv_wait_ns;
  d.notify_wake_ns -= before.notify_wake_ns;
  d.txn_commit_ns -= before.txn_commit_ns;
  d.txn_abort_ns -= before.txn_abort_ns;
  d.serial_stall_ns -= before.serial_stall_ns;
  d.cm_backoff_ns -= before.cm_backoff_ns;
  d.spin_park_ns -= before.spin_park_ns;
  return d;
}

namespace {

struct NamedHist {
  const char* name;
  const HistogramSnapshot* hist;
};

// The histograms by export name, in a stable order.
void for_each_hist(const MetricsSnapshot& s,
                   const std::function<void(const NamedHist&)>& fn) {
  fn({"cv_wait_ns", &s.cv_wait_ns});
  fn({"notify_wake_ns", &s.notify_wake_ns});
  fn({"txn_commit_ns", &s.txn_commit_ns});
  fn({"txn_abort_ns", &s.txn_abort_ns});
  fn({"serial_stall_ns", &s.serial_stall_ns});
  fn({"cm_backoff_ns", &s.cm_backoff_ns});
  fn({"spin_park_ns", &s.spin_park_ns});
}

// Top-N slice exported for the attribution tables (the snapshot itself is
// unsliced; totals are always computed over everything).
constexpr std::size_t kExportTopN = 10;

// Escape a string for both JSON strings and Prometheus label values (the
// escape sets coincide for the characters site names can contain).
std::string escaped(const char* s) {
  std::string out;
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    if (*s == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(*s);
  }
  return out;
}

}  // namespace

std::string to_json(const MetricsSnapshot& s) {
  std::ostringstream os;
  char upbuf[64];
  std::snprintf(upbuf, sizeof upbuf, "%.3f", process_uptime_seconds());
  os << "{\n  \"meta\": {\"version\": \"" << TMCV_VERSION_STRING
     << "\", \"trace_compiled\": " << (TMCV_TRACE ? "true" : "false")
     << ", \"htm\": \"emulated\", \"uptime_seconds\": " << upbuf
     << "},\n  \"tm\": {\n    \"backend\": \"" << s.tm_backend << "\"";
  bool first = false;
  tm::Stats::for_each_field([&](const char* name,
                                std::uint64_t tm::Stats::*field) {
    os << (first ? "" : ",\n") << "    \"" << name << "\": " << s.tm.*field;
    first = false;
  });
  // Per-backend abort-reason matrix (nested object: scalar-diffing tools
  // skip it; tmcv-top and the backend-smoke CI step read it).
  os << ",\n    \"aborts_by_backend\": {";
  for (std::size_t b = 0; b < tm::kStatsBackends; ++b) {
    os << (b ? ", " : "") << "\"" << tm::stats_backend_label(b) << "\": {";
    for (std::size_t r = 0; r < tm::kStatsAbortReasons; ++r)
      os << (r ? ", " : "") << "\"" << tm::stats_abort_reason_label(r)
         << "\": " << s.tm.aborts_by_backend[b][r];
    os << "}";
  }
  os << "}";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", s.tm.dedup_hit_rate());
  os << ",\n    \"dedup_hit_rate\": " << buf;
  const double attempts = static_cast<double>(s.tm.commits) +
                          static_cast<double>(s.tm.aborts);
  std::snprintf(buf, sizeof buf, "%.6f",
                attempts ? static_cast<double>(s.tm.aborts) / attempts : 0.0);
  os << ",\n    \"abort_rate\": " << buf << "\n  },\n  \"condvar\": {\n";
  first = true;
  CondVarStats::for_each_field([&](const char* name,
                                   std::uint64_t CondVarStats::*field) {
    os << (first ? "" : ",\n") << "    \"" << name << "\": " << s.cv.*field;
    first = false;
  });
  os << "\n  },\n  \"wake\": {\n";
  first = true;
  WakeStats::for_each_field([&](const char* name,
                                std::uint64_t WakeStats::*field) {
    os << (first ? "" : ",\n") << "    \"" << name
       << "\": " << s.wake.*field;
    first = false;
  });
  os << "\n  },\n  \"trace\": {\n    \"events\": " << s.trace_events
     << ",\n    \"dropped\": " << s.trace_dropped
     << ",\n    \"per_thread_drops\": {";
  first = true;
  for (const RingDrops& rd : s.trace_ring_drops) {
    os << (first ? "" : ", ") << "\"" << rd.tid << "\": " << rd.dropped;
    first = false;
  }
  os << "}\n  },\n  \"attribution\": {\n    \"conflicts_recorded\": "
     << attr_conflicts_total(s.attribution)
     << ",\n    \"dropped\": " << s.attribution.dropped
     << ",\n    \"abort_sites\": [";
  first = true;
  for (std::size_t i = 0;
       i < s.attribution.abort_sites.size() && i < kExportTopN; ++i) {
    const AttrEntry& e = s.attribution.abort_sites[i];
    os << (first ? "" : ", ") << "\n      {\"site\": \""
       << escaped(site_name(attr_key_site(e.key))) << "\", \"reason\": \""
       << attr_reason_name(attr_key_reason(e.key))
       << "\", \"count\": " << e.count << "}";
    first = false;
  }
  os << (first ? "" : "\n    ") << "],\n    \"conflict_pairs\": [";
  first = true;
  for (std::size_t i = 0;
       i < s.attribution.conflict_pairs.size() && i < kExportTopN; ++i) {
    const AttrEntry& e = s.attribution.conflict_pairs[i];
    os << (first ? "" : ", ") << "\n      {\"victim\": \""
       << escaped(site_name(attr_pair_victim(e.key))) << "\", \"attacker\": \""
       << escaped(site_name(attr_pair_attacker(e.key)))
       << "\", \"reason\": \"" << attr_reason_name(attr_key_reason(e.key))
       << "\", \"count\": " << e.count << "}";
    first = false;
  }
  os << (first ? "" : "\n    ") << "],\n    \"hot_stripes\": [";
  first = true;
  for (std::size_t i = 0;
       i < s.attribution.hot_stripes.size() && i < kExportTopN; ++i) {
    const AttrEntry& e = s.attribution.hot_stripes[i];
    os << (first ? "" : ", ") << "\n      {\"stripe\": "
       << attr_stripe_index(e.key) << ", \"count\": " << e.count << "}";
    first = false;
  }
  os << (first ? "" : "\n    ") << "]\n  },\n  \"app\": {\n";
  first = true;
  for (const AppCounter& ac : s.app) {
    os << (first ? "" : ",\n") << "    \"" << escaped(ac.name.c_str())
       << "\": " << ac.value;
    first = false;
  }
  os << "\n  },\n  \"stall\": {\n    \"total_ticks\": "
     << s.stall.total_ticks << ",\n    \"total_ns\": " << s.stall.total_ns
     << ",\n    \"entries\": [";
  first = true;
  for (const StallEntry& e : s.stall.entries) {
    os << (first ? "" : ",") << "\n      {\"reason\": \""
       << wait_reason_name(e.reason) << "\", \"site\": \""
       << escaped(site_name(e.site)) << "\", \"ticks\": " << e.ticks
       << ", \"ns\": " << e.ns << "}";
    first = false;
  }
  os << (first ? "" : "\n    ") << "]\n  },\n  \"histograms\": {\n";
  first = true;
  for_each_hist(s, [&](const NamedHist& h) {
    char mean[64];
    std::snprintf(mean, sizeof mean, "%.1f", h.hist->mean());
    os << (first ? "" : ",\n") << "    \"" << h.name << "\": {"
       << "\"count\": " << h.hist->count << ", \"sum\": " << h.hist->sum
       << ", \"mean\": " << mean << ", \"p50\": " << h.hist->percentile(0.5)
       << ", \"p90\": " << h.hist->percentile(0.9)
       << ", \"p99\": " << h.hist->percentile(0.99)
       << ", \"p999\": " << h.hist->percentile(0.999)
       << ", \"min\": " << h.hist->min_observed()
       << ", \"max\": " << h.hist->max_observed() << "}";
    first = false;
  });
  os << "\n  }\n}\n";
  return os.str();
}

std::string to_prometheus(const MetricsSnapshot& s) {
  std::ostringstream os;
  // Every family gets a # HELP / # TYPE header (in that order, once) before
  // its samples -- tests/obs_prom_test.cpp enforces the pairing.
  const auto header = [&](const std::string& name, const char* type,
                          const char* help) {
    os << "# HELP " << name << " " << help << "\n"
       << "# TYPE " << name << " " << type << "\n";
  };
  // Uptime + an info-gauge first: they make scrapes across restarts
  // attributable (uptime reset => counter resets expected).
  header("tmcv_uptime_seconds", "gauge",
         "Seconds since this process started.");
  char upbuf[64];
  std::snprintf(upbuf, sizeof upbuf, "%.3f", process_uptime_seconds());
  os << "tmcv_uptime_seconds " << upbuf << "\n";
  header("tmcv_build_info", "gauge",
         "Build metadata as labels; value is always 1.");
  os << "tmcv_build_info{version=\"" << TMCV_VERSION_STRING
     << "\",htm=\"emulated\",trace=\"" << (TMCV_TRACE ? "on" : "off")
     << "\"} 1\n";
  header("tmcv_tm_backend", "gauge",
         "Current default TM backend as a label; value is always 1.");
  os << "tmcv_tm_backend{backend=\"" << s.tm_backend << "\"} 1\n";
  tm::Stats::for_each_field([&](const char* name,
                                std::uint64_t tm::Stats::*field) {
    const std::string metric = std::string("tmcv_tm_") + name + "_total";
    header(metric, "counter", "Cumulative TM runtime counter (tm::Stats).");
    os << metric << " " << s.tm.*field << "\n";
    if (std::strcmp(name, "aborts") == 0) {
      // The per-backend abort-reason breakdown rides the same family as
      // labeled samples (one HELP/TYPE header above covers them), so
      // sum by (backend) or by (reason) stays comparable to the unlabeled
      // process total.
      for (std::size_t b = 0; b < tm::kStatsBackends; ++b)
        for (std::size_t r = 0; r < tm::kStatsAbortReasons; ++r)
          os << metric << "{backend=\"" << tm::stats_backend_label(b)
             << "\",reason=\"" << tm::stats_abort_reason_label(r) << "\"} "
             << s.tm.aborts_by_backend[b][r] << "\n";
    }
  });
  CondVarStats::for_each_field([&](const char* name,
                                   std::uint64_t CondVarStats::*field) {
    const std::string metric = std::string("tmcv_cv_") + name + "_total";
    header(metric, "counter",
           "Cumulative condition-variable counter (CondVarStats).");
    os << metric << " " << s.cv.*field << "\n";
  });
  WakeStats::for_each_field([&](const char* name,
                                std::uint64_t WakeStats::*field) {
    const std::string metric = std::string("tmcv_wake_") + name + "_total";
    header(metric, "counter",
           "Cumulative wake-path counter (spin-then-park / wait morphing).");
    os << metric << " " << s.wake.*field << "\n";
  });
  header("tmcv_trace_events", "gauge",
         "Trace records currently retained across all rings.");
  os << "tmcv_trace_events " << s.trace_events << "\n";
  header("tmcv_trace_dropped_total", "counter",
         "Trace records lost to ring wraparound (all threads).");
  os << "tmcv_trace_dropped_total " << s.trace_dropped << "\n";
  header("tmcv_trace_drops_total", "counter",
         "Trace records lost to ring wraparound, by capture thread.");
  for (const RingDrops& rd : s.trace_ring_drops)
    os << "tmcv_trace_drops_total{tid=\"" << rd.tid << "\"} " << rd.dropped
       << "\n";
  // Conflict attribution: top-N slices of the sharded tables, plus the
  // all-pairs total so completeness (sum == aborts_conflict) stays
  // checkable even when the top-N slice truncates.
  header("tmcv_attr_aborts_total", "counter",
         "Aborts by victim transaction site and reason (top sites).");
  for (std::size_t i = 0;
       i < s.attribution.abort_sites.size() && i < kExportTopN; ++i) {
    const AttrEntry& e = s.attribution.abort_sites[i];
    os << "tmcv_attr_aborts_total{site=\""
       << escaped(site_name(attr_key_site(e.key))) << "\",reason=\""
       << attr_reason_name(attr_key_reason(e.key)) << "\"} " << e.count
       << "\n";
  }
  header("tmcv_attr_conflict_pairs_total", "counter",
         "Conflict aborts by (victim site, attacker site) pair (top pairs).");
  for (std::size_t i = 0;
       i < s.attribution.conflict_pairs.size() && i < kExportTopN; ++i) {
    const AttrEntry& e = s.attribution.conflict_pairs[i];
    os << "tmcv_attr_conflict_pairs_total{victim=\""
       << escaped(site_name(attr_pair_victim(e.key))) << "\",attacker=\""
       << escaped(site_name(attr_pair_attacker(e.key))) << "\",reason=\""
       << attr_reason_name(attr_key_reason(e.key)) << "\"} " << e.count
       << "\n";
  }
  header("tmcv_attr_stripe_conflicts_total", "counter",
         "Conflict aborts by orec stripe index (top stripes).");
  for (std::size_t i = 0;
       i < s.attribution.hot_stripes.size() && i < kExportTopN; ++i) {
    const AttrEntry& e = s.attribution.hot_stripes[i];
    os << "tmcv_attr_stripe_conflicts_total{stripe=\""
       << attr_stripe_index(e.key) << "\"} " << e.count << "\n";
  }
  header("tmcv_attr_conflicts_recorded_total", "counter",
         "Conflict aborts recorded by attribution, all pairs (equals "
         "tmcv_tm_aborts_conflict_total when attribution ran the whole "
         "time and nothing dropped).");
  os << "tmcv_attr_conflicts_recorded_total "
     << attr_conflicts_total(s.attribution) << "\n";
  header("tmcv_attr_dropped_total", "counter",
         "Attribution increments lost to counter-table overflow.");
  os << "tmcv_attr_dropped_total " << s.attribution.dropped << "\n";
  header("tmcv_stall_ns_total", "counter",
         "Off-CPU park time by wait reason and transaction site, in "
         "nanoseconds (wait-point registry stall table).");
  for (const StallEntry& e : s.stall.entries)
    os << "tmcv_stall_ns_total{reason=\"" << wait_reason_name(e.reason)
       << "\",site=\"" << escaped(site_name(e.site)) << "\"} " << e.ns
       << "\n";
  header("tmcv_stall_overall_ns_total", "counter",
         "Grand-total off-CPU park time in nanoseconds (independent "
         "ledger; equals the sum of tmcv_stall_ns_total samples).");
  os << "tmcv_stall_overall_ns_total " << s.stall.total_ns << "\n";
  for (const AppCounter& ac : s.app) {
    // Registered application counters; names are sanitized into the
    // Prometheus identifier alphabet.
    std::string ident;
    for (const char c : ac.name)
      ident.push_back(std::isalnum(static_cast<unsigned char>(c)) || c == '_'
                          ? c
                          : '_');
    const std::string metric = "tmcv_app_" + ident;
    header(metric, "counter", "Registered application counter.");
    os << metric << " " << ac.value << "\n";
  }
  for_each_hist(s, [&](const NamedHist& h) {
    const std::string metric = std::string("tmcv_") + h.name;
    header(metric, "summary",
           "Latency distribution in nanoseconds (log-bucketed histogram).");
    static constexpr std::pair<double, const char*> kQuantiles[] = {
        {0.5, "0.5"}, {0.9, "0.9"}, {0.99, "0.99"}, {0.999, "0.999"}};
    for (const auto& [q, label] : kQuantiles) {
      os << metric << "{quantile=\"" << label << "\"} "
         << h.hist->percentile(q) << "\n";
    }
    os << metric << "_sum " << h.hist->sum << "\n"
       << metric << "_count " << h.hist->count << "\n";
    // Exact extrema as sibling gauge families (summaries cannot carry
    // them; log buckets alone would round them to 1/16).
    header(metric + "_min", "gauge",
           "Exact minimum recorded value in nanoseconds (0 when empty).");
    os << metric << "_min " << h.hist->min_observed() << "\n";
    header(metric + "_max", "gauge",
           "Exact maximum recorded value in nanoseconds (0 when empty).");
    os << metric << "_max " << h.hist->max_observed() << "\n";
  });
  return os.str();
}

bool write_metrics_files(const MetricsSnapshot& s,
                         const std::string& json_path) {
  const auto write = [](const std::string& path, const std::string& text) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const bool ok = std::fputs(text.c_str(), f) >= 0;
    return std::fclose(f) == 0 && ok;
  };
  return write(json_path, to_json(s)) &&
         write(json_path + ".prom", to_prometheus(s));
}

}  // namespace tmcv::obs
