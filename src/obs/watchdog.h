// SLO/anomaly watchdog: turns the time-series recorder's samples into
// firing/cleared alerts.
//
// Each rule is a threshold over one derived signal of a TsSample (abort
// storm, serial-escalation rate, notify->wake p99 breach, park imbalance,
// KV eviction storm).  The watchdog registers itself as the recorder's
// observer, so rules are evaluated once per sampling tick -- no second
// timer, no extra scrape.  A rule FIRES after `consecutive` breaching
// samples (debounce: one noisy interval is not an incident) and CLEARS on
// the first non-breaching sample with enough activity to judge.
//
// Firing transitions can trigger the flight recorder (obs/flight.h): set a
// dump path and the first clear->fire edge freezes trace + history +
// attribution into a post-mortem JSON, rate-limited to one dump per
// firing episode.
//
// Surfaces: `/alerts` (JSON) on the telemetry endpoint, and
// `tmcv_alerts_firing{rule=...}` / `tmcv_alerts_fired_total{rule=...}`
// gauges appended to `/metrics`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/timeseries.h"

namespace tmcv::obs {

enum class RuleKind : std::uint8_t {
  kAbortStorm = 0,      // aborts/commits ratio over threshold
  kSerialEscalation,    // cm_serial_escalations per second over threshold
  kLatencyP99,          // notify->wake window p99 (ns) over threshold
  kParkImbalance,       // parks/(parks+parks_avoided) over threshold
  kEvictionStorm,       // kv_evictions/kv_sets over threshold
  kStuckThread,         // oldest stuck waiter age (ms) over threshold
  kWaitCycle,           // threads in waiter->holder cycles over threshold
  kRuleKindCount,
};

[[nodiscard]] constexpr const char* rule_kind_name(RuleKind k) noexcept {
  switch (k) {
    case RuleKind::kAbortStorm:
      return "abort_storm";
    case RuleKind::kSerialEscalation:
      return "serial_escalation";
    case RuleKind::kLatencyP99:
      return "latency_p99";
    case RuleKind::kParkImbalance:
      return "park_imbalance";
    case RuleKind::kEvictionStorm:
      return "eviction_storm";
    case RuleKind::kStuckThread:
      return "stuck_thread";
    case RuleKind::kWaitCycle:
      return "wait_cycle";
    case RuleKind::kRuleKindCount:
      break;
  }
  return "?";
}

struct WatchdogRule {
  RuleKind kind = RuleKind::kAbortStorm;
  double threshold = 0.0;       // breach when signal > threshold
  std::uint64_t min_activity = 0;  // skip samples below this denominator
                                   // (idle intervals neither fire nor clear)
  std::uint32_t consecutive = 2;   // breaching samples needed to fire
};

// Per-rule alert state, readable at any time.
struct AlertState {
  WatchdogRule rule;
  bool firing = false;
  std::uint32_t breach_streak = 0;  // consecutive breaches so far
  std::uint64_t fired_count = 0;    // clear->fire transitions since start
  std::uint64_t last_change_ms = 0; // sample t_ms of the last transition
  double last_value = 0.0;          // signal value at the last judged sample
};

// The rule set the KV server and benches enable by default.  Thresholds
// documented in docs/OBSERVABILITY.md §8 and docs/TUNING.md.
[[nodiscard]] std::vector<WatchdogRule> default_rules();

class Watchdog {
 public:
  Watchdog();
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Install the rule set and subscribe to the recorder's ticks.  The
  // recorder itself must be started separately (they are independent
  // layers: history without alerts is valid).  `dump_path`, when
  // non-empty, enables a flight dump on each clear->fire edge, writing to
  // dump_path (one dump per episode).  Restart replaces rules and resets
  // all alert state.
  void start(std::vector<WatchdogRule> rules, std::string dump_path = "");

  // Unsubscribe and stop evaluating.  Alert state stays readable.
  void stop();

  [[nodiscard]] bool running() const;

  // Evaluate one sample against every rule (the observer body; public so
  // tests can drive synthetic samples deterministically).
  void evaluate(const TsSample& s);

  // Snapshot of every rule's state.
  [[nodiscard]] std::vector<AlertState> alerts() const;

  // True when any rule is currently firing.
  [[nodiscard]] bool any_firing() const;

  // Exporters: the `/alerts` JSON document and the Prometheus gauge block
  // appended to `/metrics`.
  [[nodiscard]] std::string alerts_json() const;
  [[nodiscard]] std::string prometheus() const;

 private:
  struct Impl;
  Impl* impl_;
};

// Process-wide instance shared by telemetry routes, benches, and the KV
// server.
[[nodiscard]] Watchdog& watchdog();

}  // namespace tmcv::obs
