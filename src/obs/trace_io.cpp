// Chrome trace-event serialization: merge every thread's ring, sort by
// timestamp, and emit the JSON schema Perfetto / chrome://tracing load.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tmcv::obs {

std::vector<TaggedEvent> collect_trace_sorted() {
  std::vector<TaggedEvent> all;
  std::vector<TraceEvent> scratch;
  for_each_ring([&](const TraceRing& r) {
    scratch.clear();
    r.snapshot(scratch);
    for (const TraceEvent& e : scratch) all.push_back({e, r.tid()});
  });
  std::stable_sort(all.begin(), all.end(),
                   [](const TaggedEvent& a, const TaggedEvent& b) {
                     return a.event.ts < b.event.ts;
                   });
  return all;
}

std::string chrome_trace_json() {
  const std::vector<TaggedEvent> all = collect_trace_sorted();

  const double ns_per_tick = TscClock::ns_per_tick();
  const std::uint64_t t0 = all.empty() ? 0 : all.front().event.ts;
  std::string out = "{\"traceEvents\":[";
  out.reserve(128 + all.size() * 96);
  char line[192];
  for (std::size_t i = 0; i < all.size(); ++i) {
    const TraceEvent& e = all[i].event;
    const auto type = static_cast<Event>(e.type);
    const double ts_us = static_cast<double>(e.ts - t0) * ns_per_tick / 1e3;
    if (i != 0) out.push_back(',');
    out.push_back('\n');
    if (event_has_duration(type)) {
      const double dur_us = static_cast<double>(e.dur) * ns_per_tick / 1e3;
      std::snprintf(line, sizeof line,
                    "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                    "\"pid\":1,\"tid\":%u,\"args\":{\"arg\":%u}}",
                    event_name(type), ts_us, dur_us, all[i].tid, e.arg);
    } else {
      std::snprintf(line, sizeof line,
                    "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,"
                    "\"pid\":1,\"tid\":%u,\"args\":{\"arg\":%u}}",
                    event_name(type), ts_us, all[i].tid, e.arg);
    }
    out += line;
  }
  out += "\n],\"displayTimeUnit\":\"ns\"}";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_trace_json();
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  ok = ok && std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace tmcv::obs
