// Combined trace + histogram emission helpers: what the instrumented call
// sites in tm/, core/ and sync/ actually invoke (always wrapped in
// `#if TMCV_TRACE` so a disabled build compiles them away entirely).
//
// Usage pattern:
//
//   const std::uint64_t t0 = obs::region_begin();   // 0 when obs is off
//   ...work...
//   obs::region_end(obs::Event::kTxnCommit, t0, &obs::hist_txn_commit());
//
// With hooks compiled in but the runtime flags clear, region_begin is one
// relaxed load + branch and region_end one load + two branches.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/histogram.h"
#include "obs/trace.h"

namespace tmcv::obs {

// Close a region opened by region_begin(): emit the trace record (when
// capture is on) and feed the nanosecond duration to `hist` (when timing is
// on).  Safe with t0 == 0 (obs was off at region entry).
inline void region_end(Event type, std::uint64_t t0, LatencyHistogram* hist,
                       std::uint16_t arg = 0) noexcept {
  const std::uint32_t f = flags();
  if (f == 0 || t0 == 0) return;
  const std::uint64_t now = TscClock::now();
  const std::uint64_t dur = now > t0 ? now - t0 : 0;
  if (f & kTraceBit) detail::my_ring().push(type, t0, dur, arg);
  if (hist != nullptr && (f & kTimingBit))
    hist->record(TscClock::to_ns(dur));
}

// Notify→wake latency plumbing: the notifier stamps the victim's slot when
// it selects it (inside the queue transaction -- a stamp from an aborted
// selection is simply overwritten by the next one), and the woken waiter
// consumes the stamp.  The slot always ends cleared, so a stamp can never
// leak into an unrelated later wait.
inline void stamp_notify(std::atomic<std::uint64_t>& slot) noexcept {
  if (flags() != 0) slot.store(TscClock::now(), std::memory_order_relaxed);
}

inline void consume_notify_stamp(std::atomic<std::uint64_t>& slot) noexcept {
  if (slot.load(std::memory_order_relaxed) == 0) return;
  const std::uint64_t t = slot.exchange(0, std::memory_order_relaxed);
  const std::uint32_t f = flags();
  if (f == 0 || t == 0) return;
  const std::uint64_t now = TscClock::now();
  if ((f & kTimingBit) && now > t)
    hist_notify_wake().record(TscClock::to_ns(now - t));
}

}  // namespace tmcv::obs
