#include "obs/timeseries.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/condvar.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/waitgraph.h"
#include "sync/wake_stats.h"
#include "tm/stats.h"

namespace tmcv::obs {

namespace {

using Clock = std::chrono::steady_clock;

// Single source of truth for the counter fields: JSON keys, table columns,
// and tools/tmcv_top.py all read these names.
template <typename Fn>
constexpr void for_each_ts_field(Fn&& fn) {
  fn("commits", &TsSample::commits);
  fn("aborts", &TsSample::aborts);
  fn("aborts_conflict", &TsSample::aborts_conflict);
  fn("aborts_capacity", &TsSample::aborts_capacity);
  fn("serial_fallbacks", &TsSample::serial_fallbacks);
  fn("cm_serial_escalations", &TsSample::cm_serial_escalations);
  fn("cv_waits", &TsSample::cv_waits);
  fn("notifies", &TsSample::notifies);
  fn("threads_woken", &TsSample::threads_woken);
  fn("lost_notifies", &TsSample::lost_notifies);
  fn("parks", &TsSample::parks);
  fn("parks_avoided", &TsSample::parks_avoided);
  fn("requeues", &TsSample::requeues);
  fn("handoffs", &TsSample::handoffs);
  fn("trace_dropped", &TsSample::trace_dropped);
  fn("kv_gets", &TsSample::kv_gets);
  fn("kv_sets", &TsSample::kv_sets);
  fn("kv_hits", &TsSample::kv_hits);
  fn("kv_misses", &TsSample::kv_misses);
  fn("kv_evictions", &TsSample::kv_evictions);
  fn("notify_wake_p99_ns", &TsSample::notify_wake_p99_ns);
  fn("txn_commit_p99_ns", &TsSample::txn_commit_p99_ns);
  fn("cv_wait_p99_ns", &TsSample::cv_wait_p99_ns);
  fn("stall_ns", &TsSample::stall_ns);
  fn("stall_top_reason", &TsSample::stall_top_reason);
  fn("max_wait_age_ms", &TsSample::max_wait_age_ms);
  fn("stuck_age_ms", &TsSample::stuck_age_ms);
  fn("wait_cycles", &TsSample::wait_cycles);
  fn("threads_waiting", &TsSample::threads_waiting);
}

}  // namespace

struct TimeSeriesRecorder::Impl {
  mutable std::mutex mu;

  // Configuration (fixed between start() and stop()).
  TimeSeriesOptions opts;
  bool started = false;

  // The ring: preallocated at start(), indexed modulo depth.
  std::vector<TsSample> ring;
  std::uint64_t taken = 0;  // samples appended since start()
  Clock::time_point t0;
  Clock::time_point last_tick;

  // Previous-tick baselines (the "delta" in delta snapshot).  The three
  // histogram baselines are the big ones (~7.4 KiB each); members, not
  // per-tick temporaries, so steady state never touches the heap.
  tm::Stats prev_tm;
  CondVarStats prev_cv;
  WakeStats prev_wake;
  std::uint64_t prev_trace_dropped = 0;
  HistogramSnapshot prev_notify_wake;
  HistogramSnapshot prev_txn_commit;
  HistogramSnapshot prev_cv_wait;

  // Reusable app-counter scratch: cleared each tick, capacity retained (the
  // KV counter names all fit in SSO, so refills are allocation-free too).
  std::vector<AppCounter> scratch_app;

  // Observer (watchdog).  Guarded by mu for the set; invoked OUTSIDE mu so
  // an observer may read the recorder (flight dump) without deadlocking.
  TsObserverFn observer = nullptr;
  void* observer_ctx = nullptr;

  // Sampler thread machinery.
  std::thread sampler;
  std::condition_variable stop_cv;
  std::mutex stop_mu;
  bool stopping = false;

  void capture_baselines() {
    prev_tm = tm::stats_snapshot();
    prev_cv = condvar_stats_aggregate();
    prev_wake = wake_stats_snapshot();
    prev_trace_dropped = trace_counts().dropped;
    prev_notify_wake = hist_notify_wake().snapshot();
    prev_txn_commit = hist_txn_commit().snapshot();
    prev_cv_wait = hist_cv_wait().snapshot();
  }

  // Scrape + diff + append.  Returns a copy of the appended sample for the
  // observer call (made by the caller after dropping mu).
  TsSample tick_locked() {
    const Clock::time_point now = Clock::now();

    TsSample s;
    s.t_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(now - t0)
            .count());
    s.interval_ms = static_cast<std::uint32_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(now - last_tick)
            .count());
    s.seq = taken;
    last_tick = now;

    // Runtime counters: cumulative now, delta vs the previous tick.
    const tm::Stats cur_tm = tm::stats_snapshot();
    const CondVarStats cur_cv = condvar_stats_aggregate();
    const WakeStats cur_wake = wake_stats_snapshot();
    const std::uint64_t cur_dropped = trace_counts().dropped;

    const auto d = [](std::uint64_t now_v, std::uint64_t prev_v) {
      return now_v > prev_v ? now_v - prev_v : 0;  // counters are monotonic;
    };  // clamp anyway so a mid-run stats_reset() yields 0, not wraparound

    s.commits = d(cur_tm.commits, prev_tm.commits);
    s.aborts = d(cur_tm.aborts, prev_tm.aborts);
    s.aborts_conflict = d(cur_tm.aborts_conflict, prev_tm.aborts_conflict);
    s.aborts_capacity = d(cur_tm.aborts_capacity, prev_tm.aborts_capacity);
    s.serial_fallbacks = d(cur_tm.serial_fallbacks, prev_tm.serial_fallbacks);
    s.cm_serial_escalations =
        d(cur_tm.cm_serial_escalations, prev_tm.cm_serial_escalations);

    s.cv_waits = d(cur_cv.waits, prev_cv.waits);
    s.notifies = d(cur_cv.notify_one_calls + cur_cv.notify_all_calls +
                       cur_cv.notify_best_calls,
                   prev_cv.notify_one_calls + prev_cv.notify_all_calls +
                       prev_cv.notify_best_calls);
    s.threads_woken = d(cur_cv.threads_woken, prev_cv.threads_woken);
    s.lost_notifies = d(cur_cv.lost_notifies, prev_cv.lost_notifies);

    s.parks = d(cur_wake.parks, prev_wake.parks);
    s.parks_avoided = d(cur_wake.parks_avoided, prev_wake.parks_avoided);
    s.requeues = d(cur_wake.requeues, prev_wake.requeues);
    s.handoffs = d(cur_wake.handoffs, prev_wake.handoffs);

    s.trace_dropped = d(cur_dropped, prev_trace_dropped);

    // App counters: scrape into the retained scratch, pick out the KV set.
    scratch_app.clear();
    scrape_app_counters_into(scratch_app);
    for (const AppCounter& ac : scratch_app) {
      std::uint64_t TsSample::*field = nullptr;
      if (ac.name == "kv_get") field = &TsSample::kv_gets;
      else if (ac.name == "kv_set") field = &TsSample::kv_sets;
      else if (ac.name == "kv_hits") field = &TsSample::kv_hits;
      else if (ac.name == "kv_misses") field = &TsSample::kv_misses;
      else if (ac.name == "kv_evictions") field = &TsSample::kv_evictions;
      if (field != nullptr) s.*field = ac.value;
    }
    // The KV fields scraped above are cumulative; diff against the previous
    // appended sample's baselines held in prev_kv_*.
    s.kv_gets = d(s.kv_gets, prev_kv[0]);
    s.kv_sets = d(s.kv_sets, prev_kv[1]);
    s.kv_hits = d(s.kv_hits, prev_kv[2]);
    s.kv_misses = d(s.kv_misses, prev_kv[3]);
    s.kv_evictions = d(s.kv_evictions, prev_kv[4]);
    prev_kv[0] += s.kv_gets;
    prev_kv[1] += s.kv_sets;
    prev_kv[2] += s.kv_hits;
    prev_kv[3] += s.kv_misses;
    prev_kv[4] += s.kv_evictions;

    // Window percentiles: cumulative histogram minus the previous baseline.
    // ~7.4 KiB stack copies, no heap.
    HistogramSnapshot w = hist_notify_wake().snapshot();
    const HistogramSnapshot cur_nw = w;
    w -= prev_notify_wake;
    s.notify_wake_p99_ns = w.percentile(0.99);
    prev_notify_wake = cur_nw;

    w = hist_txn_commit().snapshot();
    const HistogramSnapshot cur_tc = w;
    w -= prev_txn_commit;
    s.txn_commit_p99_ns = w.percentile(0.99);
    prev_txn_commit = cur_tc;

    w = hist_cv_wait().snapshot();
    const HistogramSnapshot cur_cw = w;
    w -= prev_cv_wait;
    s.cv_wait_p99_ns = w.percentile(0.99);
    prev_cv_wait = cur_cw;

    // Wait-point probe: the recorder is the probe's single periodic
    // caller, so lost-wakeup episode windows advance exactly once per
    // tick.  Allocation-free, like everything else here.
    const WaitProbe wp = waitgraph_probe();
    s.stall_ns = wp.stall_ns;
    s.stall_top_reason = wp.stall_top_reason;
    s.max_wait_age_ms = wp.max_wait_age_ms;
    s.stuck_age_ms = wp.stuck_age_ms;
    s.wait_cycles = wp.wait_cycles;
    s.threads_waiting = wp.threads_waiting;

    prev_tm = cur_tm;
    prev_cv = cur_cv;
    prev_wake = cur_wake;
    prev_trace_dropped = cur_dropped;

    ring[static_cast<std::size_t>(taken % opts.depth)] = s;
    ++taken;
    return s;
  }

  std::uint64_t prev_kv[5] = {0, 0, 0, 0, 0};

  // Copy the retained window, oldest first, under mu.
  void history_locked(std::vector<TsSample>& out) const {
    out.clear();
    const std::uint64_t n = taken < opts.depth ? taken : opts.depth;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = taken - n; i < taken; ++i)
      out.push_back(ring[static_cast<std::size_t>(i % opts.depth)]);
  }
};

TimeSeriesRecorder::TimeSeriesRecorder() : impl_(new Impl) {}

TimeSeriesRecorder::~TimeSeriesRecorder() {
  stop();
  delete impl_;
}

bool TimeSeriesRecorder::start(const TimeSeriesOptions& opts) {
  Impl& im = *impl_;
  std::unique_lock<std::mutex> lock(im.mu);
  if (im.started) return false;

  im.opts = opts;
  if (im.opts.interval_ms < 10) im.opts.interval_ms = 10;
  if (im.opts.depth < 2) im.opts.depth = 2;

  im.ring.assign(im.opts.depth, TsSample{});
  im.ring.shrink_to_fit();
  im.scratch_app.clear();
  im.scratch_app.reserve(16);
  im.taken = 0;
  std::memset(im.prev_kv, 0, sizeof im.prev_kv);
  im.t0 = Clock::now();
  im.last_tick = im.t0;
  im.capture_baselines();
  im.started = true;
  im.stopping = false;

  if (im.opts.sampler_thread) {
    im.sampler = std::thread([this] {
      Impl& i = *impl_;
      for (;;) {
        {
          std::unique_lock<std::mutex> slock(i.stop_mu);
          if (i.stop_cv.wait_for(
                  slock, std::chrono::milliseconds(i.opts.interval_ms),
                  [&] { return i.stopping; }))
            return;
        }
        sample_now();
      }
    });
  }
  return true;
}

void TimeSeriesRecorder::stop() {
  Impl& im = *impl_;
  std::thread joiner;
  {
    std::unique_lock<std::mutex> lock(im.mu);
    if (!im.started) return;
    im.started = false;
    joiner = std::move(im.sampler);
  }
  {
    std::lock_guard<std::mutex> slock(im.stop_mu);
    im.stopping = true;
  }
  im.stop_cv.notify_all();
  if (joiner.joinable()) joiner.join();
}

bool TimeSeriesRecorder::running() const noexcept {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->started;
}

std::uint32_t TimeSeriesRecorder::interval_ms() const noexcept {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->opts.interval_ms;
}

std::uint32_t TimeSeriesRecorder::depth() const noexcept {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->opts.depth;
}

std::uint64_t TimeSeriesRecorder::samples_taken() const noexcept {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->taken;
}

void TimeSeriesRecorder::sample_now() {
  Impl& im = *impl_;
  TsSample s;
  TsObserverFn fn = nullptr;
  void* ctx = nullptr;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    if (!im.started) return;
    s = im.tick_locked();
    fn = im.observer;
    ctx = im.observer_ctx;
  }
  // Outside mu: the observer (watchdog) may trigger a flight dump that
  // reads this recorder back.
  if (fn != nullptr) fn(s, ctx);
}

void TimeSeriesRecorder::history(std::vector<TsSample>& out) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->history_locked(out);
}

void TimeSeriesRecorder::set_observer(TsObserverFn fn, void* ctx) noexcept {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->observer = fn;
  impl_->observer_ctx = ctx;
}

std::string TimeSeriesRecorder::to_json() const {
  std::vector<TsSample> window;
  std::uint32_t interval = 0;
  std::uint32_t depth = 0;
  std::uint64_t taken = 0;
  bool run = false;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->history_locked(window);
    interval = impl_->opts.interval_ms;
    depth = impl_->opts.depth;
    taken = impl_->taken;
    run = impl_->started;
  }
  std::ostringstream os;
  os << "{\n  \"meta\": {\"interval_ms\": " << interval
     << ", \"depth\": " << depth << ", \"samples_taken\": " << taken
     << ", \"running\": " << (run ? "true" : "false")
     << "},\n  \"samples\": [";
  char buf[64];
  bool first_sample = true;
  for (const TsSample& s : window) {
    os << (first_sample ? "" : ",") << "\n    {\"t_ms\": " << s.t_ms
       << ", \"interval_ms\": " << s.interval_ms << ", \"seq\": " << s.seq;
    for_each_ts_field([&](const char* name, std::uint64_t TsSample::*field) {
      os << ", \"" << name << "\": " << s.*field;
    });
    std::snprintf(buf, sizeof buf, "%.1f", s.commits_per_sec());
    os << ", \"commits_per_sec\": " << buf;
    std::snprintf(buf, sizeof buf, "%.1f", s.aborts_per_sec());
    os << ", \"aborts_per_sec\": " << buf;
    std::snprintf(buf, sizeof buf, "%.4f", s.abort_commit_ratio());
    os << ", \"abort_commit_ratio\": " << buf;
    std::snprintf(buf, sizeof buf, "%.4f", s.kv_hit_rate());
    os << ", \"kv_hit_rate\": " << buf;
    std::snprintf(buf, sizeof buf, "%.4f", s.park_ratio());
    os << ", \"park_ratio\": " << buf << "}";
    first_sample = false;
  }
  os << (first_sample ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

std::string TimeSeriesRecorder::to_text() const {
  std::vector<TsSample> window;
  std::uint32_t interval = 0;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->history_locked(window);
    interval = impl_->opts.interval_ms;
  }
  std::ostringstream os;
  os << "# tmcv history: " << window.size() << " samples @ " << interval
     << " ms\n";
  os << "#    t_ms   commit/s    abort/s  ab/cm  nw_p99_ns  cv_waits  "
        "parks  kv_hit\n";
  char line[160];
  for (const TsSample& s : window) {
    std::snprintf(line, sizeof line,
                  "%9llu %10.1f %10.1f %6.3f %10llu %9llu %6llu %7.3f\n",
                  static_cast<unsigned long long>(s.t_ms),
                  s.commits_per_sec(), s.aborts_per_sec(),
                  s.abort_commit_ratio(),
                  static_cast<unsigned long long>(s.notify_wake_p99_ns),
                  static_cast<unsigned long long>(s.cv_waits),
                  static_cast<unsigned long long>(s.parks), s.kv_hit_rate());
    os << line;
  }
  return os.str();
}

TimeSeriesRecorder& timeseries() {
  static TimeSeriesRecorder recorder;
  return recorder;
}

}  // namespace tmcv::obs
