#include "obs/flight.h"

#include <cstdio>
#include <sstream>

#include "core/c_api.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/waitgraph.h"
#include "obs/watchdog.h"
#include "tmcv_version.h"

namespace tmcv::obs {

namespace {

// Clears the runtime capture flags for the duration of serialization so
// the rings/tables/histograms are quiescent-ish while we read them, then
// restores whatever was set.  The stats counters themselves are always-on
// and unaffected.
class CaptureFreeze {
 public:
  CaptureFreeze() : saved_(flags()) {
    set_timing_enabled(false);
    set_trace_enabled(false);
    set_attribution_enabled(false);
  }
  ~CaptureFreeze() {
    set_timing_enabled((saved_ & kTimingBit) != 0);
    set_trace_enabled((saved_ & kTraceBit) != 0);
    set_attribution_enabled((saved_ & kAttrBit) != 0);
  }
  CaptureFreeze(const CaptureFreeze&) = delete;
  CaptureFreeze& operator=(const CaptureFreeze&) = delete;

 private:
  std::uint32_t saved_;
};

std::string escaped(const char* s) {
  std::string out;
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    if (*s == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(*s);
  }
  return out;
}

// The UNSLICED attribution tables.  /metrics exports top-10 slices; a
// post-mortem needs every pair so `sum(conflict_pairs) == aborts_conflict`
// is verifiable from the file alone.
std::string attribution_full_json(const AttributionSnapshot& a) {
  std::ostringstream os;
  os << "{\n    \"conflicts_recorded\": " << attr_conflicts_total(a)
     << ",\n    \"dropped\": " << a.dropped << ",\n    \"abort_sites\": [";
  bool first = true;
  for (const AttrEntry& e : a.abort_sites) {
    os << (first ? "" : ", ") << "\n      {\"site\": \""
       << escaped(site_name(attr_key_site(e.key))) << "\", \"reason\": \""
       << attr_reason_name(attr_key_reason(e.key))
       << "\", \"count\": " << e.count << "}";
    first = false;
  }
  os << (first ? "" : "\n    ") << "],\n    \"conflict_pairs\": [";
  first = true;
  for (const AttrEntry& e : a.conflict_pairs) {
    os << (first ? "" : ", ") << "\n      {\"victim\": \""
       << escaped(site_name(attr_pair_victim(e.key))) << "\", \"attacker\": \""
       << escaped(site_name(attr_pair_attacker(e.key)))
       << "\", \"reason\": \"" << attr_reason_name(attr_key_reason(e.key))
       << "\", \"count\": " << e.count << "}";
    first = false;
  }
  os << (first ? "" : "\n    ") << "],\n    \"hot_stripes\": [";
  first = true;
  for (const AttrEntry& e : a.hot_stripes) {
    os << (first ? "" : ", ") << "\n      {\"stripe\": "
       << attr_stripe_index(e.key) << ", \"count\": " << e.count << "}";
    first = false;
  }
  os << (first ? "" : "\n    ") << "]\n  }";
  return os.str();
}

}  // namespace

std::string flight_json(const FlightDumpOptions& opts) {
  CaptureFreeze freeze;

  // Capture every section while frozen.  Order matters only for humans.
  const MetricsSnapshot snap = metrics_snapshot();

  std::ostringstream os;
  char upbuf[64];
  std::snprintf(upbuf, sizeof upbuf, "%.3f", process_uptime_seconds());
  os << "{\n\"tmcv_flight\": 1,\n\"meta\": {\"version\": \""
     << TMCV_VERSION_STRING << "\", \"trace_compiled\": "
     << (TMCV_TRACE ? "true" : "false")
     << ", \"htm\": \"emulated\", \"reason\": \""
     << escaped(opts.reason != nullptr ? opts.reason : "api")
     << "\", \"uptime_seconds\": " << upbuf << "},\n\"alerts\": "
     << watchdog().alerts_json() << ",\n\"metrics\": " << to_json(snap)
     << ",\n\"history\": " << timeseries().to_json()
     << ",\n\"attribution_full\": " << attribution_full_json(snap.attribution)
     << ",\n\"waitgraph\": " << waitgraph_json()
     << ",\n\"trace\": " << chrome_trace_json() << "\n}\n";
  return os.str();
}

bool flight_dump(const std::string& path, const FlightDumpOptions& opts) {
  const std::string json = flight_json(opts);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  // Atomic publish: a concurrent validator sees the old file or the new
  // one, never a prefix.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace tmcv::obs

// C API (declared in core/c_api.h, same link contract as the telemetry
// endpoint: requires tmcv_obs).
extern "C" int tmcv_flight_dump(const char* path) {
  if (path == nullptr || *path == '\0') return -1;
  tmcv::obs::FlightDumpOptions opts;
  opts.reason = "api";
  return tmcv::obs::flight_dump(path, opts) ? 0 : -1;
}
