// Fold half of conflict attribution: merge the sharded counter tables into
// sorted snapshots (capture half in attribution.h; export in metrics.cpp).
#include "obs/attribution.h"

#include <algorithm>
#include <unordered_map>

namespace tmcv::obs {

namespace {

// Merge replicas (the same key may live in several shards) and sort by
// count descending, ties by key ascending, so quiescent snapshots are
// deterministic.
std::vector<AttrEntry> fold_sorted(
    const std::unordered_map<std::uint64_t, std::uint64_t>& merged) {
  std::vector<AttrEntry> out;
  out.reserve(merged.size());
  for (const auto& [k, c] : merged) out.push_back({k, c});
  std::sort(out.begin(), out.end(), [](const AttrEntry& a, const AttrEntry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  return out;
}

template <unsigned L>
std::vector<AttrEntry> fold_table(const AttrTable<L>& t) {
  std::unordered_map<std::uint64_t, std::uint64_t> merged;
  t.for_each(
      [&](std::uint64_t k, std::uint64_t c) { merged[k] += c; });
  return fold_sorted(merged);
}

std::vector<AttrEntry> subtract(const std::vector<AttrEntry>& now,
                                const std::vector<AttrEntry>& before) {
  std::unordered_map<std::uint64_t, std::uint64_t> merged;
  for (const AttrEntry& e : now) merged[e.key] = e.count;
  for (const AttrEntry& e : before) {
    auto it = merged.find(e.key);
    if (it == merged.end()) continue;
    it->second = it->second > e.count ? it->second - e.count : 0;
    if (it->second == 0) merged.erase(it);
  }
  return fold_sorted(merged);
}

}  // namespace

AttributionSnapshot attribution_snapshot() {
  AttributionSnapshot s;
  s.abort_sites = fold_table(detail::abort_site_table());
  s.conflict_pairs = fold_table(detail::conflict_pair_table());
  s.hot_stripes = fold_table(detail::stripe_table());
  s.dropped = detail::abort_site_table().overflow() +
              detail::conflict_pair_table().overflow() +
              detail::stripe_table().overflow();
  return s;
}

AttributionSnapshot attribution_delta(const AttributionSnapshot& now,
                                      const AttributionSnapshot& before) {
  AttributionSnapshot d;
  d.abort_sites = subtract(now.abort_sites, before.abort_sites);
  d.conflict_pairs = subtract(now.conflict_pairs, before.conflict_pairs);
  d.hot_stripes = subtract(now.hot_stripes, before.hot_stripes);
  d.dropped = now.dropped > before.dropped ? now.dropped - before.dropped : 0;
  return d;
}

std::uint64_t attr_conflicts_total(const AttributionSnapshot& s) noexcept {
  std::uint64_t total = 0;
  for (const AttrEntry& e : s.conflict_pairs) total += e.count;
  return total;
}

}  // namespace tmcv::obs
