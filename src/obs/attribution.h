// Conflict attribution: WHO aborts WHOM, and WHERE -- the capture half.
//
// The trace rings and histograms (PR 2) answer "how much"; this layer
// answers "where contention comes from": which transaction sites conflict
// with which, and on which orec stripes.  Three sharded, lock-free counter
// tables accumulate
//
//   * (victim site x abort reason)      -- every abort, any reason
//   * (victim site x attacker site)     -- conflict aborts, attacker read
//                                          from the owning descriptor of the
//                                          locked orec (approximate: the
//                                          owner may have moved on by the
//                                          time we read its site; the
//                                          stripe/victim half is exact)
//   * per-orec-stripe conflict heatmap  -- which stripes the fights are on
//
// A "site" is a static label interned once per call site by the
// TMCV_TXN_SITE("name") macro, which publishes the id into the calling
// thread's TM descriptor; unlabeled transactions attribute to site 0,
// "(unattributed)".  Attribution is complete, not sampled: with the runtime
// gate on, every conflict abort lands in the pair table (a full table
// increments the overflow counter instead of silently dropping), so the pair
// counts sum to aborts_conflict exactly.
//
// Gating follows trace.h's two-level scheme: every call site in tm/ is
// inside `#if TMCV_TRACE` (a disabled build has zero obs symbols in the hot
// archives), and recording additionally checks the kAttrBit runtime flag
// (obs::set_attribution_enabled), so compiled-in-but-disabled costs one
// relaxed load + branch per abort -- aborts are already off the fast path.
//
// Like trace.h, this header is dependency-free capture machinery with inline
// globals: the TM runtime records without a link edge back to tmcv_obs.  The
// fold/top-N/export half (AttributionSnapshot) lives in attribution.cpp
// inside the obs library.
#pragma once

#ifndef TMCV_TRACE
#define TMCV_TRACE 1
#endif

#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <vector>

#include "obs/trace.h"
#include "util/cacheline.h"

namespace tmcv::obs {

// ---------------------------------------------------------------------------
// Site interning
// ---------------------------------------------------------------------------

// Site 0 is reserved for unlabeled transactions (and unknown attackers).
inline constexpr std::uint16_t kMaxSites = 256;
inline constexpr std::uint16_t kUnattributedSite = 0;

namespace detail {

struct SiteTable {
  std::mutex mu;
  // Interned names must be string literals (or otherwise immortal): the
  // table stores the pointers, never copies.  TMCV_TXN_SITE guarantees this.
  const char* names[kMaxSites] = {"(unattributed)"};
  std::uint16_t count = 1;
};

inline SiteTable& site_table() {
  static SiteTable t;
  return t;
}

}  // namespace detail

// Intern `name` (an immortal string), returning its site id.  Idempotent by
// string content; a full table returns kUnattributedSite rather than grow.
// Cold: called once per call site through a function-local static.
inline std::uint16_t intern_site(const char* name) {
  detail::SiteTable& t = detail::site_table();
  std::lock_guard<std::mutex> lock(t.mu);
  for (std::uint16_t i = 1; i < t.count; ++i)
    if (std::strcmp(t.names[i], name) == 0) return i;
  if (t.count == kMaxSites) return kUnattributedSite;
  t.names[t.count] = name;
  return t.count++;
}

// Name for a site id ("(unattributed)" for 0 or out-of-range ids).  The
// returned pointer is immortal.
inline const char* site_name(std::uint16_t id) {
  detail::SiteTable& t = detail::site_table();
  std::lock_guard<std::mutex> lock(t.mu);
  // The kMaxSites bound is implied by count <= kMaxSites, but spelling it
  // out lets the compiler see the array access is in range.
  if (id >= kMaxSites || id >= t.count) return t.names[0];
  return t.names[id];
}

// ---------------------------------------------------------------------------
// Reason vocabulary
// ---------------------------------------------------------------------------

// 0..4 mirror tm::TxAbort::Reason numerically (asserted in descriptor.cpp);
// 5 is the CM's conflict-streak serial escalation (not an abort reason, but
// the same (site x cause) shape).
inline constexpr std::uint16_t kAttrReasonConflict = 0;
inline constexpr std::uint16_t kAttrReasonCapacity = 1;
inline constexpr std::uint16_t kAttrReasonSyscall = 2;
inline constexpr std::uint16_t kAttrReasonExplicit = 3;
inline constexpr std::uint16_t kAttrReasonRetryWait = 4;
inline constexpr std::uint16_t kAttrReasonEscalation = 5;

[[nodiscard]] constexpr const char* attr_reason_name(
    std::uint16_t r) noexcept {
  switch (r) {
    case kAttrReasonConflict:
      return "conflict";
    case kAttrReasonCapacity:
      return "capacity";
    case kAttrReasonSyscall:
      return "syscall";
    case kAttrReasonExplicit:
      return "explicit";
    case kAttrReasonRetryWait:
      return "retry_wait";
    case kAttrReasonEscalation:
      return "serial_escalation";
  }
  return "?";
}

// Stripe sentinel: "conflict detected, stripe unknown" (failed validation
// where the culprit orec was not captured).
inline constexpr std::uint32_t kAttrNoStripe = ~0u;

// ---------------------------------------------------------------------------
// Sharded lock-free counter table
// ---------------------------------------------------------------------------

// Fixed-capacity open-addressed table of (key -> count), sharded by thread
// so concurrent recorders do not fight over one cache line per hot key.  A
// key may therefore live in several shards; for_each visits every replica
// and the fold (attribution.cpp) merges by key.  Keys are nonzero by
// construction (the pack_* helpers set a tag bit); 0 means empty.  A shard
// that fills up counts into `overflow` instead of dropping silently, so
// completeness stays checkable.  reset() is quiescent-only, like
// tm::stats_reset.
template <unsigned SlotsLog2>
class AttrTable {
 public:
  static constexpr std::size_t kShards = 8;
  static constexpr std::size_t kSlots = std::size_t{1} << SlotsLog2;

  void add(std::uint64_t key, std::uint64_t n = 1) noexcept {
    Shard& sh = shards_[shard_index()];
    std::size_t h = hash(key) & (kSlots - 1);
    for (std::size_t probes = 0; probes < kSlots; ++probes) {
      Slot& s = sh.slots[h];
      std::uint64_t cur = s.key.load(std::memory_order_relaxed);
      if (cur == 0) {
        // Claim the empty slot; a lost CAS means someone else claimed it
        // (maybe with our key) -- re-examine the same slot.
        if (!s.key.compare_exchange_strong(cur, key,
                                           std::memory_order_relaxed,
                                           std::memory_order_relaxed)) {
          --probes;
          continue;
        }
        cur = key;
      }
      if (cur == key) {
        s.count.fetch_add(n, std::memory_order_relaxed);
        return;
      }
      h = (h + 1) & (kSlots - 1);
    }
    sh.overflow.fetch_add(n, std::memory_order_relaxed);
  }

  // Visit every live (key, count) replica across all shards.  Counts are
  // relaxed loads: exact at quiescence, monotone approximations while
  // recorders run.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Shard& sh : shards_)
      for (const Slot& s : sh.slots) {
        const std::uint64_t k = s.key.load(std::memory_order_relaxed);
        if (k == 0) continue;
        const std::uint64_t c = s.count.load(std::memory_order_relaxed);
        if (c != 0) fn(k, c);
      }
  }

  [[nodiscard]] std::uint64_t overflow() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& sh : shards_)
      total += sh.overflow.load(std::memory_order_relaxed);
    return total;
  }

  // Zero everything.  Call at quiescence only (a concurrent add could split
  // a key/count pair); same contract as tm::stats_reset.
  void reset() noexcept {
    for (Shard& sh : shards_) {
      for (Slot& s : sh.slots) {
        s.key.store(0, std::memory_order_relaxed);
        s.count.store(0, std::memory_order_relaxed);
      }
      sh.overflow.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> key{0};
    std::atomic<std::uint64_t> count{0};
  };
  struct alignas(kCacheLine) Shard {
    Slot slots[kSlots];
    std::atomic<std::uint64_t> overflow{0};
  };

  [[nodiscard]] static std::size_t hash(std::uint64_t k) noexcept {
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
    return static_cast<std::size_t>(k);
  }

  [[nodiscard]] static std::size_t shard_index() noexcept {
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t mine =
        next.fetch_add(1, std::memory_order_relaxed);
    return mine % kShards;
  }

  Shard shards_[kShards];
};

// ---------------------------------------------------------------------------
// Key packing (tag bit keeps every key nonzero)
// ---------------------------------------------------------------------------

inline constexpr std::uint64_t kAttrKeyTag = 1ull << 63;

[[nodiscard]] constexpr std::uint64_t attr_pack_site_reason(
    std::uint16_t site, std::uint16_t reason) noexcept {
  return kAttrKeyTag | (std::uint64_t{site} << 16) | reason;
}
[[nodiscard]] constexpr std::uint16_t attr_key_site(std::uint64_t k) noexcept {
  return static_cast<std::uint16_t>(k >> 16);
}
[[nodiscard]] constexpr std::uint16_t attr_key_reason(
    std::uint64_t k) noexcept {
  return static_cast<std::uint16_t>(k & 0xffff);
}

[[nodiscard]] constexpr std::uint64_t attr_pack_pair(
    std::uint16_t victim, std::uint16_t attacker,
    std::uint16_t reason) noexcept {
  return kAttrKeyTag | (std::uint64_t{victim} << 32) |
         (std::uint64_t{attacker} << 16) | reason;
}
[[nodiscard]] constexpr std::uint16_t attr_pair_victim(
    std::uint64_t k) noexcept {
  return static_cast<std::uint16_t>(k >> 32);
}
[[nodiscard]] constexpr std::uint16_t attr_pair_attacker(
    std::uint64_t k) noexcept {
  return static_cast<std::uint16_t>(k >> 16);
}

[[nodiscard]] constexpr std::uint64_t attr_pack_stripe(
    std::uint32_t stripe) noexcept {
  return kAttrKeyTag | stripe;
}
[[nodiscard]] constexpr std::uint32_t attr_stripe_index(
    std::uint64_t k) noexcept {
  return static_cast<std::uint32_t>(k & 0xffffffffu);
}

// ---------------------------------------------------------------------------
// Process-wide tables + record hooks
// ---------------------------------------------------------------------------

namespace detail {

// Sizes: sites x reasons is tiny; pairs are quadratic in *labeled* sites
// but sparse in practice; stripes see at most one key per contended orec.
inline AttrTable<9>& abort_site_table() {
  static AttrTable<9> t;
  return t;
}
inline AttrTable<10>& conflict_pair_table() {
  static AttrTable<10> t;
  return t;
}
inline AttrTable<12>& stripe_table() {
  static AttrTable<12> t;
  return t;
}

}  // namespace detail

// Record one abort of any reason (victim side).  Call sites live in
// tm/descriptor.cpp under #if TMCV_TRACE.
inline void attr_record_abort(std::uint16_t victim_site,
                              std::uint16_t reason) noexcept {
  if (!attribution_enabled()) return;
  detail::abort_site_table().add(attr_pack_site_reason(victim_site, reason));
}

// Record one conflict abort: victim x attacker pair plus the stripe heat
// (skipped for kAttrNoStripe).  Unknown attackers pass kUnattributedSite, so
// pair counts still sum to aborts_conflict.
inline void attr_record_conflict(std::uint16_t victim_site,
                                 std::uint16_t attacker_site,
                                 std::uint32_t stripe) noexcept {
  if (!attribution_enabled()) return;
  detail::conflict_pair_table().add(
      attr_pack_pair(victim_site, attacker_site, kAttrReasonConflict));
  if (stripe != kAttrNoStripe)
    detail::stripe_table().add(attr_pack_stripe(stripe));
}

// Record one conflict-streak serial escalation (tm/cm.cpp).
inline void attr_record_escalation(std::uint16_t site) noexcept {
  if (!attribution_enabled()) return;
  detail::abort_site_table().add(
      attr_pack_site_reason(site, kAttrReasonEscalation));
}

// Zero all three tables (quiescent-only; benches call this next to
// tm::stats_reset so attribution sums match the same measurement window).
inline void attr_reset() noexcept {
  detail::abort_site_table().reset();
  detail::conflict_pair_table().reset();
  detail::stripe_table().reset();
}

// ---------------------------------------------------------------------------
// Fold / export (implemented in attribution.cpp, library tmcv_obs)
// ---------------------------------------------------------------------------

struct AttrEntry {
  std::uint64_t key;
  std::uint64_t count;
};

// Merged-by-key view of the three tables, each sorted by count descending
// (ties by key, so snapshots are deterministic at quiescence).  `dropped`
// sums the overflow counters: nonzero means the tables were too small for
// the workload and the top-N lists may be incomplete.
struct AttributionSnapshot {
  std::vector<AttrEntry> abort_sites;     // attr_pack_site_reason keys
  std::vector<AttrEntry> conflict_pairs;  // attr_pack_pair keys
  std::vector<AttrEntry> hot_stripes;     // attr_pack_stripe keys
  std::uint64_t dropped = 0;
};

[[nodiscard]] AttributionSnapshot attribution_snapshot();

// Keyed element-wise `now - before` (activity between two snapshots).
[[nodiscard]] AttributionSnapshot attribution_delta(
    const AttributionSnapshot& now, const AttributionSnapshot& before);

// Sum of conflict-pair counts: the completeness check against
// tm::Stats::aborts_conflict (equal at quiescence when `dropped` is 0).
[[nodiscard]] std::uint64_t attr_conflicts_total(
    const AttributionSnapshot& s) noexcept;

}  // namespace tmcv::obs

// ---------------------------------------------------------------------------
// TMCV_TXN_SITE: label the enclosing transaction(s) started by this thread
// ---------------------------------------------------------------------------
//
// Place at the top of a transaction body (or just before tm::atomically):
//
//   tm::atomically([&] {
//     TMCV_TXN_SITE("queue.push");
//     ...
//   });
//
// The name must be a string literal (interned by pointer-stable content,
// once, via a function-local static).  The id is published into the thread's
// descriptor with one relaxed store per execution; begin_top clears it, so a
// label never leaks into the next, unlabeled transaction.  The _HINT variant
// sets the label only when none is present yet -- library-internal
// transactions (condvar queue operations) use it so they never stomp a
// user's label on an ambient transaction.
//
// With TMCV_TRACE=0 both macros compile to nothing.
#if TMCV_TRACE
#include "tm/descriptor.h"
#define TMCV_TXN_SITE(name_literal)                          \
  do {                                                       \
    static const std::uint16_t tmcv_site_id_ =               \
        ::tmcv::obs::intern_site(name_literal);              \
    ::tmcv::tm::descriptor().set_txn_site(tmcv_site_id_);    \
  } while (0)
#define TMCV_TXN_SITE_HINT(name_literal)                         \
  do {                                                           \
    static const std::uint16_t tmcv_site_id_ =                   \
        ::tmcv::obs::intern_site(name_literal);                  \
    ::tmcv::tm::descriptor().set_txn_site_hint(tmcv_site_id_);   \
  } while (0)
#else
#define TMCV_TXN_SITE(name_literal) \
  do {                              \
  } while (0)
#define TMCV_TXN_SITE_HINT(name_literal) \
  do {                                   \
  } while (0)
#endif
