#include "obs/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/waitgraph.h"
#include "obs/watchdog.h"
#include "util/net.h"

namespace tmcv::obs {

namespace {

// /profile payload: the attribution section alone, with enough context
// (aborts_conflict, drop count) to judge completeness at a glance.
std::string profile_json(const MetricsSnapshot& s) {
  constexpr std::size_t kTopN = 10;
  std::ostringstream os;
  os << "{\n  \"aborts_conflict\": " << s.tm.aborts_conflict
     << ",\n  \"conflicts_recorded\": " << attr_conflicts_total(s.attribution)
     << ",\n  \"dropped\": " << s.attribution.dropped
     << ",\n  \"abort_sites\": [";
  bool first = true;
  for (std::size_t i = 0; i < s.attribution.abort_sites.size() && i < kTopN;
       ++i) {
    const AttrEntry& e = s.attribution.abort_sites[i];
    os << (first ? "" : ",") << "\n    {\"site\": \""
       << site_name(attr_key_site(e.key)) << "\", \"reason\": \""
       << attr_reason_name(attr_key_reason(e.key))
       << "\", \"count\": " << e.count << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "],\n  \"conflict_pairs\": [";
  first = true;
  for (std::size_t i = 0;
       i < s.attribution.conflict_pairs.size() && i < kTopN; ++i) {
    const AttrEntry& e = s.attribution.conflict_pairs[i];
    os << (first ? "" : ",") << "\n    {\"victim\": \""
       << site_name(attr_pair_victim(e.key)) << "\", \"attacker\": \""
       << site_name(attr_pair_attacker(e.key)) << "\", \"reason\": \""
       << attr_reason_name(attr_key_reason(e.key))
       << "\", \"count\": " << e.count << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "],\n  \"hot_stripes\": [";
  first = true;
  for (std::size_t i = 0; i < s.attribution.hot_stripes.size() && i < kTopN;
       ++i) {
    const AttrEntry& e = s.attribution.hot_stripes[i];
    os << (first ? "" : ",") << "\n    {\"stripe\": "
       << attr_stripe_index(e.key) << ", \"count\": " << e.count << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

}  // namespace

struct TelemetryServer::Impl {
  TelemetryOptions opts;
  // Atomic: stop() invalidates the fd concurrently with the accept loop's
  // reads (the exchange also keeps a double-stop from closing twice).
  std::atomic<int> listen_fd{-1};
  std::uint16_t bound_port = 0;
  std::atomic<bool> running{false};
  std::thread accept_thread;
  std::thread pump_thread;

  // Pump state: the latest snapshot plus a short ring of per-interval
  // deltas, all under one mutex (requests are rare; contention is nil).
  std::mutex mu;
  std::condition_variable pump_cv;  // wakes the pump early on stop()
  MetricsSnapshot latest;
  std::deque<MetricsSnapshot> deltas;  // newest at back
  std::uint64_t snapshots_taken = 0;
  std::chrono::steady_clock::time_point started_at;

  void pump() {
    MetricsSnapshot prev = metrics_snapshot();
    {
      std::lock_guard<std::mutex> lock(mu);
      latest = prev;
      snapshots_taken = 1;
    }
    std::unique_lock<std::mutex> lock(mu);
    while (running.load(std::memory_order_acquire)) {
      pump_cv.wait_for(
          lock, std::chrono::milliseconds(opts.snapshot_interval_ms),
          [&] { return !running.load(std::memory_order_acquire); });
      if (!running.load(std::memory_order_acquire)) break;
      lock.unlock();
      MetricsSnapshot now = metrics_snapshot();
      MetricsSnapshot delta = metrics_delta(now, prev);
      prev = now;
      lock.lock();
      latest = std::move(now);
      ++snapshots_taken;
      deltas.push_back(std::move(delta));
      while (deltas.size() > opts.delta_ring) deltas.pop_front();
    }
  }

  std::string healthz_json() {
    std::lock_guard<std::mutex> lock(mu);
    const auto uptime = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - started_at);
    std::ostringstream os;
    os << "{\n  \"status\": \"ok\",\n  \"uptime_ms\": " << uptime.count()
       << ",\n  \"snapshots\": " << snapshots_taken
       << ",\n  \"snapshot_interval_ms\": " << opts.snapshot_interval_ms;
    if (!deltas.empty()) {
      // Activity over the most recent interval: enough to tell a live
      // workload from a stalled one without parsing the full export.
      const MetricsSnapshot& d = deltas.back();
      os << ",\n  \"last_interval\": {\"commits\": " << d.tm.commits
         << ", \"aborts\": " << d.tm.aborts
         << ", \"notifies\": "
         << d.cv.notify_one_calls + d.cv.notify_all_calls
         << ", \"trace_dropped\": " << d.trace_dropped << "}";
    }
    os << "\n}\n";
    return os.str();
  }

  // One row per GET path.  The table generates BOTH the dispatch and the
  // 404 help string, so a route cannot ship without its help text (the
  // old hand-maintained help line drifted twice).
  struct RouteRow {
    const char* path;
    const char* content_type;
    std::string (*handler)(Impl& im, const MetricsSnapshot& snap);
  };

  static const std::vector<RouteRow>& routes() {
    static const std::vector<RouteRow> r = {
        {"/metrics", "text/plain; version=0.0.4",
         [](Impl&, const MetricsSnapshot& s) {
           // Watchdog gauges ride the Prometheus export so one scrape
           // target covers counters and alerts.
           return to_prometheus(s) + watchdog().prometheus();
         }},
        {"/metrics.json", "application/json",
         [](Impl&, const MetricsSnapshot& s) { return to_json(s); }},
        {"/healthz", "application/json",
         [](Impl& im, const MetricsSnapshot&) { return im.healthz_json(); }},
        {"/profile", "application/json",
         [](Impl&, const MetricsSnapshot& s) { return profile_json(s); }},
        {"/history", "text/plain; version=0.0.4",
         [](Impl&, const MetricsSnapshot&) {
           return timeseries().to_text();
         }},
        {"/history.json", "application/json",
         [](Impl&, const MetricsSnapshot&) {
           return timeseries().to_json();
         }},
        {"/alerts", "application/json",
         [](Impl&, const MetricsSnapshot&) {
           return watchdog().alerts_json();
         }},
        {"/threads", "application/json",
         [](Impl&, const MetricsSnapshot&) { return threads_json(); }},
        {"/waitgraph", "application/json",
         [](Impl&, const MetricsSnapshot&) { return waitgraph_json(); }},
    };
    return r;
  }

  static std::string route_help() {
    std::string help = "unknown path; try";
    for (const RouteRow& r : routes()) {
      help += ' ';
      help += r.path;
    }
    help += '\n';
    return help;
  }

  // One request per connection, HTTP/1.0, GET only.
  void serve_client(int fd) {
    char buf[1024];
    std::string req;
    // Read until the header terminator (or the buffer limit -- request
    // lines we care about are tiny).
    while (req.find("\r\n\r\n") == std::string::npos &&
           req.size() < 8 * sizeof buf) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n <= 0) break;
      req.append(buf, static_cast<std::size_t>(n));
      if (req.find('\n') != std::string::npos &&
          req.compare(0, 4, "GET ") != 0)
        break;  // non-GET: no point reading more
    }
    std::string status = "200 OK";
    std::string content_type = "text/plain; version=0.0.4";
    std::string body;
    const auto path_of = [&]() -> std::string {
      const std::size_t sp1 = req.find(' ');
      if (sp1 == std::string::npos) return "";
      const std::size_t sp2 = req.find(' ', sp1 + 1);
      if (sp2 == std::string::npos) return "";
      return req.substr(sp1 + 1, sp2 - sp1 - 1);
    };
    if (req.compare(0, 4, "GET ") != 0) {
      status = "405 Method Not Allowed";
      body = "only GET is supported\n";
    } else {
      const std::string path = path_of();
      MetricsSnapshot snap;
      {
        std::lock_guard<std::mutex> lock(mu);
        snap = latest;
      }
      const RouteRow* hit = nullptr;
      for (const RouteRow& r : routes())
        if (path == r.path) {
          hit = &r;
          break;
        }
      if (hit != nullptr) {
        content_type = hit->content_type;
        body = hit->handler(*this, snap);
      } else {
        status = "404 Not Found";
        body = route_help();
      }
    }
    std::ostringstream os;
    os << "HTTP/1.0 " << status << "\r\nContent-Type: " << content_type
       << "\r\nContent-Length: " << body.size()
       << "\r\nConnection: close\r\n\r\n"
       << body;
    const std::string resp = os.str();
    std::size_t off = 0;
    while (off < resp.size()) {
      const ssize_t n = ::send(fd, resp.data() + off, resp.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    ::close(fd);
  }

  void accept_loop() {
    while (running.load(std::memory_order_acquire)) {
      const int fd =
          ::accept(listen_fd.load(std::memory_order_acquire), nullptr, nullptr);
      if (fd < 0) {
        if (!running.load(std::memory_order_acquire)) break;
        if (errno == EINTR || errno == ECONNABORTED) continue;
        break;  // listen socket gone
      }
      serve_client(fd);
    }
  }
};

TelemetryServer::TelemetryServer() : impl_(std::make_unique<Impl>()) {}

TelemetryServer::~TelemetryServer() { stop(); }

bool TelemetryServer::start(const TelemetryOptions& opts) {
  Impl& im = *impl_;
  if (im.running.load(std::memory_order_acquire)) {
    errno = EALREADY;
    return false;
  }
  // Shared loopback listener plumbing (util/net.h): SO_REUSEADDR, port 0 =
  // kernel-picked free port, errno preserved across cleanup so callers can
  // print WHY the bind failed (EADDRINUSE when the port is taken).
  std::uint16_t bound_port = 0;
  const int fd = listen_loopback(opts.port, bound_port, 16);
  if (fd < 0) return false;
  im.opts = opts;
  if (im.opts.snapshot_interval_ms == 0) im.opts.snapshot_interval_ms = 1;
  if (im.opts.delta_ring == 0) im.opts.delta_ring = 1;
  im.listen_fd.store(fd, std::memory_order_release);
  im.bound_port = bound_port;
  im.started_at = std::chrono::steady_clock::now();
  im.deltas.clear();
  im.snapshots_taken = 0;
  im.running.store(true, std::memory_order_release);
  im.pump_thread = std::thread([&im] { im.pump(); });
  im.accept_thread = std::thread([&im] { im.accept_loop(); });
  return true;
}

void TelemetryServer::stop() {
  Impl& im = *impl_;
  if (!im.running.exchange(false, std::memory_order_acq_rel)) return;
  // Unblock accept(): shutdown wakes a blocked accept on Linux; the close
  // finishes the job.  The pump is woken through its condition variable.
  const int lfd = im.listen_fd.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  im.pump_cv.notify_all();
  if (im.accept_thread.joinable()) im.accept_thread.join();
  if (im.pump_thread.joinable()) im.pump_thread.join();
  im.bound_port = 0;
}

bool TelemetryServer::running() const noexcept {
  return impl_->running.load(std::memory_order_acquire);
}

std::uint16_t TelemetryServer::port() const noexcept {
  return impl_->bound_port;
}

}  // namespace tmcv::obs

// ---------------------------------------------------------------------------
// C API face (declared in core/c_api.h; defined here so tmcv_core carries
// no obs dependency -- callers of these two must link tmcv_obs)
// ---------------------------------------------------------------------------

namespace {

std::mutex g_c_api_mu;
tmcv::obs::TelemetryServer* g_c_api_server = nullptr;

}  // namespace

extern "C" int tmcv_telemetry_start(int port) {
  if (port < 0 || port > 65535) {
    errno = EINVAL;
    return -1;
  }
  std::lock_guard<std::mutex> lock(g_c_api_mu);
  if (g_c_api_server != nullptr) {
    errno = EALREADY;
    return -1;
  }
  auto* server = new tmcv::obs::TelemetryServer;
  tmcv::obs::TelemetryOptions opts;
  opts.port = static_cast<std::uint16_t>(port);
  if (!server->start(opts)) {
    const int saved = errno;  // EADDRINUSE when the port is taken
    delete server;
    errno = saved;
    return -1;
  }
  g_c_api_server = server;
  return static_cast<int>(server->port());
}

extern "C" void tmcv_telemetry_stop(void) {
  tmcv::obs::TelemetryServer* server = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_c_api_mu);
    server = g_c_api_server;
    g_c_api_server = nullptr;
  }
  if (server != nullptr) {
    server->stop();
    delete server;
  }
}
