#include "obs/watchdog.h"

#include <cstdio>
#include <mutex>
#include <sstream>
#include <utility>

#include "obs/flight.h"

namespace tmcv::obs {

std::vector<WatchdogRule> default_rules() {
  return {
      // Half the attempts aborting for two consecutive intervals is a
      // storm by any workload's standard; min_activity filters idle ticks
      // (a single retried transaction is not an incident).
      {RuleKind::kAbortStorm, /*threshold=*/0.5, /*min_activity=*/100,
       /*consecutive=*/2},
      // Escalations are meant to be rare safety valves: sustained tens per
      // second means the conflict-streak limit is doing the scheduling.
      {RuleKind::kSerialEscalation, /*threshold=*/10.0, /*min_activity=*/1,
       /*consecutive=*/2},
      // notify->wake p99 above 1 ms means wakeups have fallen off the
      // fast path entirely (parking + scheduling latency dominates).
      // Signal is 0 when the timing layer is off -> never fires.
      {RuleKind::kLatencyP99, /*threshold=*/1e6, /*min_activity=*/16,
       /*consecutive=*/2},
      // Nearly every slow wait parking means the adaptive spin budget has
      // collapsed (or the machine is oversubscribed).
      {RuleKind::kParkImbalance, /*threshold=*/0.95, /*min_activity=*/64,
       /*consecutive=*/3},
      // Evictions tracking sets 1:2 means the working set blew the cache
      // capacity -- hit rate is about to follow.
      {RuleKind::kEvictionStorm, /*threshold=*/0.5, /*min_activity=*/100,
       /*consecutive=*/2},
      // A waiter the waitgraph probe judged stuck (lost-wakeup suspect, or
      // an orec/serial drain that outlived its windows) aging past 3 s.
      // The signal is already heavily gated by the suspect heuristic, so
      // two confirming samples suffice; activity is always 1 (a stuck
      // thread is an incident precisely when the rest of the process is
      // making progress).
      {RuleKind::kStuckThread, /*threshold=*/3000.0, /*min_activity=*/1,
       /*consecutive=*/2},
      // Any thread in a waiter->holder cycle is a deadlock in the making:
      // one confirmed sample fires.
      {RuleKind::kWaitCycle, /*threshold=*/0.5, /*min_activity=*/1,
       /*consecutive=*/1},
  };
}

namespace {

// The (signal, denominator) a rule judges on one sample.  The denominator
// gates on min_activity so idle intervals are skipped entirely.
struct Signal {
  double value = 0.0;
  std::uint64_t activity = 0;
};

Signal signal_of(RuleKind k, const TsSample& s) {
  switch (k) {
    case RuleKind::kAbortStorm:
      return {s.abort_commit_ratio(), s.commits + s.aborts};
    case RuleKind::kSerialEscalation:
      return {s.interval_ms ? static_cast<double>(s.cm_serial_escalations) *
                                  1e3 / s.interval_ms
                            : 0.0,
              s.commits + s.aborts};
    case RuleKind::kLatencyP99:
      return {static_cast<double>(s.notify_wake_p99_ns), s.threads_woken};
    case RuleKind::kParkImbalance:
      return {s.park_ratio(), s.parks + s.parks_avoided};
    case RuleKind::kEvictionStorm:
      return {s.kv_sets ? static_cast<double>(s.kv_evictions) /
                              static_cast<double>(s.kv_sets)
                        : 0.0,
              s.kv_sets};
    case RuleKind::kStuckThread:
      return {static_cast<double>(s.stuck_age_ms), 1};
    case RuleKind::kWaitCycle:
      return {static_cast<double>(s.wait_cycles), 1};
    case RuleKind::kRuleKindCount:
      break;
  }
  return {};
}

void observer_tramp(const TsSample& s, void* ctx) {
  static_cast<Watchdog*>(ctx)->evaluate(s);
}

}  // namespace

struct Watchdog::Impl {
  mutable std::mutex mu;
  bool started = false;
  std::vector<AlertState> states;
  std::string dump_path;
};

Watchdog::Watchdog() : impl_(new Impl) {}

Watchdog::~Watchdog() {
  stop();
  delete impl_;
}

void Watchdog::start(std::vector<WatchdogRule> rules, std::string dump_path) {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->states.clear();
    impl_->states.reserve(rules.size());
    for (const WatchdogRule& r : rules) {
      AlertState st;
      st.rule = r;
      if (st.rule.consecutive == 0) st.rule.consecutive = 1;
      impl_->states.push_back(st);
    }
    impl_->dump_path = std::move(dump_path);
    impl_->started = true;
  }
  timeseries().set_observer(&observer_tramp, this);
}

void Watchdog::stop() {
  bool was_started = false;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    was_started = impl_->started;
    impl_->started = false;
  }
  if (was_started) timeseries().set_observer(nullptr, nullptr);
}

bool Watchdog::running() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->started;
}

void Watchdog::evaluate(const TsSample& s) {
  bool want_dump = false;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (!impl_->started) return;
    for (AlertState& st : impl_->states) {
      const Signal sig = signal_of(st.rule.kind, s);
      if (sig.activity < st.rule.min_activity) continue;  // idle: no verdict
      st.last_value = sig.value;
      if (sig.value > st.rule.threshold) {
        if (++st.breach_streak >= st.rule.consecutive && !st.firing) {
          st.firing = true;
          ++st.fired_count;
          st.last_change_ms = s.t_ms;
          if (!impl_->dump_path.empty()) {
            want_dump = true;  // one dump per episode: only on the edge
            path = impl_->dump_path;
          }
        }
      } else {
        st.breach_streak = 0;
        if (st.firing) {
          st.firing = false;
          st.last_change_ms = s.t_ms;
        }
      }
    }
  }
  // Outside mu: the dump reads telemetry state (history, alerts) back.
  if (want_dump)
    flight_dump(path, FlightDumpOptions{/*reason=*/"watchdog"});
}

std::vector<AlertState> Watchdog::alerts() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->states;
}

bool Watchdog::any_firing() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const AlertState& st : impl_->states)
    if (st.firing) return true;
  return false;
}

std::string Watchdog::alerts_json() const {
  std::vector<AlertState> states = alerts();
  bool run;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    run = impl_->started;
  }
  std::ostringstream os;
  os << "{\n  \"watchdog_running\": " << (run ? "true" : "false")
     << ",\n  \"alerts\": [";
  char buf[64];
  bool first = true;
  for (const AlertState& st : states) {
    std::snprintf(buf, sizeof buf, "%.6g", st.rule.threshold);
    os << (first ? "" : ",") << "\n    {\"rule\": \""
       << rule_kind_name(st.rule.kind) << "\", \"firing\": "
       << (st.firing ? "true" : "false") << ", \"threshold\": " << buf;
    std::snprintf(buf, sizeof buf, "%.6g", st.last_value);
    os << ", \"last_value\": " << buf
       << ", \"breach_streak\": " << st.breach_streak
       << ", \"fired_count\": " << st.fired_count
       << ", \"min_activity\": " << st.rule.min_activity
       << ", \"consecutive\": " << st.rule.consecutive
       << ", \"last_change_ms\": " << st.last_change_ms << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

std::string Watchdog::prometheus() const {
  const std::vector<AlertState> states = alerts();
  std::ostringstream os;
  os << "# HELP tmcv_alerts_firing Watchdog alert state (1 firing, 0 "
        "clear).\n# TYPE tmcv_alerts_firing gauge\n";
  for (const AlertState& st : states)
    os << "tmcv_alerts_firing{rule=\"" << rule_kind_name(st.rule.kind)
       << "\"} " << (st.firing ? 1 : 0) << "\n";
  os << "# HELP tmcv_alerts_fired_total Watchdog clear->fire transitions "
        "since start.\n# TYPE tmcv_alerts_fired_total counter\n";
  for (const AlertState& st : states)
    os << "tmcv_alerts_fired_total{rule=\"" << rule_kind_name(st.rule.kind)
       << "\"} " << st.fired_count << "\n";
  return os.str();
}

Watchdog& watchdog() {
  static Watchdog w;
  return w;
}

}  // namespace tmcv::obs
