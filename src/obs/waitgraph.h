// Live wait-for graph and stuck-thread diagnosis, built on the sync
// layer's always-on wait-point registry (sync/waitpoint.h).
//
// The sync layer answers "thread T is parked, reason R, target X, since
// tick S"; this layer turns those per-thread slots into the three
// diagnostic surfaces ISSUE-level tooling needs:
//
//   * a consistent thread snapshot (`/threads`): every claimed slot,
//     seqlock-validated so a row is either a stable parked state with an
//     exact age or marked running -- never a torn mix;
//   * a waiter -> holder edge set (`/waitgraph`): condvar waiters point at
//     their condvar's last notifier site, orec waiters at the thread whose
//     registry slot holds the contested stripe (re-read at snapshot time),
//     serial quiescers at the transaction they are draining.  Edges whose
//     holder is itself a waiter form a functional graph; cycles are
//     detected and counted (a wait cycle is a deadlock in the making);
//   * a lost-wakeup heuristic: a condvar waiter whose park episode has
//     outlived `stuck_windows` probe ticks, whose condvar was being
//     notified before the episode began but saw ZERO notifies during it,
//     while the process kept committing transactions, is flagged a
//     suspect.  The episode id is the slot's odd seq value (unique per
//     park), so a wake-and-repark never carries stale state over.
//
// The probe (`waitgraph_probe`) is the time-series recorder's per-tick
// hook: allocation-free after first use, single caller (the sampler under
// its own mutex), and the only writer of episode state -- the JSON
// builders read the last probe's verdicts but never advance them, so a
// curl cannot perturb the detector.  With the recorder stopped the
// suspect list stays empty (ages and edges still work).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sync/waitpoint.h"

namespace tmcv::obs {

// One claimed wait slot, seqlock-validated.  `waiting == false` rows are
// live threads that are currently running (or whose slot could not be read
// stably); their reason/target/age fields are zero.
struct ThreadRow {
  std::uint32_t slot = 0;                // wait-slot index
  std::uint32_t os_tid = 0;
  std::uint32_t tm_slot = 0xffffffffu;   // TM registry slot, if bound
  bool waiting = false;
  WaitReason reason = WaitReason::kNone;
  std::uint16_t site = 0;                // waiter's own txn site label
  std::uint32_t detail = 0;              // reason-specific (stripe / slot)
  const void* target = nullptr;          // reason-specific identity
  const void* relay_key = nullptr;       // wait-morph chain key, if relayed
  std::uint64_t episode = 0;             // odd seq value; park episode id
  std::uint64_t age_ns = 0;              // now - park start
};

// One waiter -> holder edge.  Exactly one per waiting row: `holder` is an
// index into rows when the blocker resolved to a live thread, else -1 with
// `holder_site` naming the site the waiter is blocked on (condvar: the
// last notifier's site; orec with a since-released stripe: the owner site
// captured at publish time).
struct WaitEdge {
  std::uint32_t waiter = 0;
  std::int32_t holder = -1;
  std::uint16_t holder_site = 0;
  WaitReason reason = WaitReason::kNone;
  bool in_cycle = false;
};

// Fixed-capacity snapshot (about 50 KiB: heap- or static-allocate, do not
// put one on a small stack).
struct WaitGraph {
  std::uint32_t thread_count = 0;
  std::uint32_t edge_count = 0;
  std::uint32_t cycle_threads = 0;   // threads participating in wait cycles
  std::uint32_t suspect_count = 0;   // lost-wakeup suspects (row indices)
  std::uint64_t now_ticks = 0;       // TSC at snapshot
  ThreadRow rows[kMaxWaitSlots];
  WaitEdge edges[kMaxWaitSlots];
  std::uint32_t suspects[kMaxWaitSlots];
};

// Fill `g` with a consistent snapshot: rows, edges, cycles, and the last
// probe's suspect verdicts.  Thread-safe; does not advance episode state.
void waitgraph_collect(WaitGraph& g);

// Per-tick digest for the time-series recorder (TsSample wait fields).
struct WaitProbe {
  std::uint64_t stall_ns = 0;         // park time accumulated this interval
  std::uint64_t stall_top_reason = 0; // WaitReason index with the largest
                                      // share of stall_ns (0 = none)
  std::uint64_t max_wait_age_ms = 0;  // oldest currently-parked thread
  std::uint64_t stuck_age_ms = 0;     // oldest STUCK thread (see header)
  std::uint64_t wait_cycles = 0;      // threads in waiter->holder cycles
  std::uint64_t threads_waiting = 0;
};

// Take one probe: snapshot the slots, advance per-episode suspect state,
// and diff the stall table against the previous probe.  Allocation-free
// after first call; intended for a single periodic caller (the recorder's
// sampler); concurrent callers are safe but split the interval deltas.
[[nodiscard]] WaitProbe waitgraph_probe();

// Consecutive probe ticks a park episode must outlive before it can be
// judged stuck (lost-wakeup condition (a)).  Default 2.
void set_stuck_windows(std::uint32_t n) noexcept;
[[nodiscard]] std::uint32_t stuck_windows() noexcept;

// Forget episode state and probe baselines (bench phase hygiene; tests).
void waitgraph_reset() noexcept;

// ---------------------------------------------------------------------------
// Stall attribution: the (reason x site) park-time table, resolved.
// ---------------------------------------------------------------------------

struct StallEntry {
  WaitReason reason = WaitReason::kNone;
  std::uint16_t site = 0;
  std::uint64_t ticks = 0;
  std::uint64_t ns = 0;  // to_ns(ticks), converted entry-wise
};

struct StallSnapshot {
  std::vector<StallEntry> entries;  // nonzero cells only
  // Two ledgers, both exact: total_ticks is the sync layer's independently
  // maintained grand total (== sum of entry ticks for every accepted
  // snapshot), and total_ns is the sum of the entry-wise ns conversions
  // (so JSON consumers can re-add entries and match exactly).
  std::uint64_t total_ticks = 0;
  std::uint64_t total_ns = 0;
};

[[nodiscard]] StallSnapshot stall_snapshot();

// ---------------------------------------------------------------------------
// Exporters.
// ---------------------------------------------------------------------------

// `/threads`: every claimed slot with reason, target, site, age.
[[nodiscard]] std::string threads_json();

// `/waitgraph` and the flight recorder's "waitgraph" section: threads +
// edges + suspects + the stall table (trace_report --validate checks that
// edges reference listed threads and that the stall ledgers agree).
[[nodiscard]] std::string waitgraph_json();

}  // namespace tmcv::obs
