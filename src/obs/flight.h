// Flight recorder: one-shot post-mortem capture.
//
// When something goes wrong -- a watchdog alert fires, an operator sends
// SIGUSR2, a server exits with --dump-on-exit -- the flight recorder
// freezes the whole observability surface into a single JSON document:
//
//   {"tmcv_flight": 1,
//    "meta": {...version/build/reason/uptime...},
//    "alerts": {...},          // watchdog rule states at dump time
//    "metrics": {...},         // full registry snapshot (to_json)
//    "history": {...},         // the recorder's retained window
//    "attribution_full": {...},// UNSLICED tables: pair counts sum exactly
//                              // to aborts_conflict (the /metrics exports
//                              // slice to top-10; a post-mortem must not)
//    "trace": {...}}           // Chrome trace document, loadable as-is
//
// "Freeze" means: the runtime capture flags are cleared for the duration of
// serialization and restored afterwards, so the rings and tables are not
// mutating mid-read more than the usual relaxed-counter slack.  The dump is
// written to `path + ".tmp"` and renamed into place, so a reader never sees
// a torn file.
//
// `tools/trace_report.py FILE --validate` checks a dump's invariants and
// `--summary` walks its sections; see docs/OBSERVABILITY.md §8.4.
#pragma once

#include <string>

namespace tmcv::obs {

struct FlightDumpOptions {
  // Free-form provenance recorded in meta.reason: "watchdog", "signal",
  // "exit", "api", a test name...
  const char* reason = "api";
};

// Serialize the full document (always possible; sections honestly reflect
// whatever was enabled -- an empty trace section means tracing was off).
[[nodiscard]] std::string flight_json(
    const FlightDumpOptions& opts = {});

// Atomically write flight_json() to `path`.  Returns false (errno intact)
// on I/O failure.
bool flight_dump(const std::string& path,
                 const FlightDumpOptions& opts = {});

}  // namespace tmcv::obs
