// Continuous time-series recorder: the "what happened over the last N
// minutes" half of the observability layer.
//
// PR 2/PR 5 made the registry scrapeable at an instant; contention
// pathologies (abort storms after a workload shift, wake-latency creep, LRU
// eviction storms) are only visible as *trends*, so this recorder keeps a
// fixed-memory ring of per-interval delta samples: every `interval_ms` a
// sampler thread diffs the headline counters against the previous tick and
// appends one POD `TsSample`.  Depth x interval is the retained window
// (default 240 x 1 s = 4 minutes in ~70 KiB, all preallocated).
//
// Memory discipline: everything the sampler touches is preallocated at
// start() -- the ring, the previous-tick counter baselines (three full
// histogram snapshots included), and a reusable app-counter scratch vector.
// After the first tick, taking a sample performs NO heap allocation
// (asserted by tests/obs_timeseries_test.cpp with a counting allocator), so
// the recorder can run forever in a production process without churn.  The
// full attribution fold is deliberately NOT sampled per tick (it allocates
// and its cumulative tables are always available); the flight recorder
// (obs/flight.h) captures it on demand.
//
// Consistency: samples inherit the registry's eventual-consistency contract
// -- each counter delta is exact over *some* interval bracketing the tick,
// which is precisely what rate estimation wants.
//
// The recorder is exposed at `/history` (human table) and `/history.json`
// on the telemetry endpoint, consumed by the SLO watchdog (obs/watchdog.h)
// and by `tools/tmcv_top.py`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tmcv::obs {

// One per-interval delta sample.  POD: lives in the preallocated ring.
struct TsSample {
  std::uint64_t t_ms = 0;        // ms since recorder start, at sample time
  std::uint32_t interval_ms = 0; // actual elapsed ms this sample covers
  std::uint64_t seq = 0;         // 0-based tick number (monotonic)

  // TM runtime (tm::Stats deltas).
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t aborts_conflict = 0;
  std::uint64_t aborts_capacity = 0;
  std::uint64_t serial_fallbacks = 0;
  std::uint64_t cm_serial_escalations = 0;

  // Condition variables (CondVarStats deltas).
  std::uint64_t cv_waits = 0;
  std::uint64_t notifies = 0;       // notify_one + notify_all + notify_best
  std::uint64_t threads_woken = 0;
  std::uint64_t lost_notifies = 0;

  // Wake path (WakeStats deltas).
  std::uint64_t parks = 0;
  std::uint64_t parks_avoided = 0;
  std::uint64_t requeues = 0;
  std::uint64_t handoffs = 0;

  // Capture health.
  std::uint64_t trace_dropped = 0;

  // KV application counters (0 when no KV server is registered).
  std::uint64_t kv_gets = 0;
  std::uint64_t kv_sets = 0;
  std::uint64_t kv_hits = 0;
  std::uint64_t kv_misses = 0;
  std::uint64_t kv_evictions = 0;

  // Interval-window latency percentiles in ns (0 unless the timing layer
  // ran during the interval).
  std::uint64_t notify_wake_p99_ns = 0;
  std::uint64_t txn_commit_p99_ns = 0;
  std::uint64_t cv_wait_p99_ns = 0;

  // Wait-point probe (obs/waitgraph.h): park time accumulated during this
  // interval, the WaitReason index that dominated it (0 = none), and the
  // stuck-thread signals the watchdog's stuck_thread / wait_cycle rules
  // judge.  All zero until the first tick after a park.
  std::uint64_t stall_ns = 0;
  std::uint64_t stall_top_reason = 0;
  std::uint64_t max_wait_age_ms = 0;
  std::uint64_t stuck_age_ms = 0;
  std::uint64_t wait_cycles = 0;
  std::uint64_t threads_waiting = 0;

  // Derived rates (per second over the actual interval; 0 on a 0-ms tick).
  [[nodiscard]] double commits_per_sec() const noexcept {
    return interval_ms ? static_cast<double>(commits) * 1e3 / interval_ms
                       : 0.0;
  }
  [[nodiscard]] double aborts_per_sec() const noexcept {
    return interval_ms ? static_cast<double>(aborts) * 1e3 / interval_ms
                       : 0.0;
  }
  // Aborts per commit in this interval (the abort-storm signal).
  [[nodiscard]] double abort_commit_ratio() const noexcept {
    return commits ? static_cast<double>(aborts) /
                         static_cast<double>(commits)
                   : (aborts ? static_cast<double>(aborts) : 0.0);
  }
  [[nodiscard]] double kv_hit_rate() const noexcept {
    const std::uint64_t lookups = kv_hits + kv_misses;
    return lookups ? static_cast<double>(kv_hits) /
                         static_cast<double>(lookups)
                   : 0.0;
  }
  // Fraction of slow-path waits that had to futex-park (spin-budget health).
  [[nodiscard]] double park_ratio() const noexcept {
    const std::uint64_t slow = parks + parks_avoided;
    return slow ? static_cast<double>(parks) / static_cast<double>(slow)
                : 0.0;
  }
};

// Observer invoked after every appended sample (on the sampler thread, or
// on the caller of sample_now()).  The watchdog registers itself here so
// rule evaluation rides the recorder cadence without a second timer.
using TsObserverFn = void (*)(const TsSample& sample, void* ctx);

struct TimeSeriesOptions {
  std::uint32_t interval_ms = 1000;  // sampler cadence (clamped to >= 10)
  std::uint32_t depth = 240;         // retained samples (clamped to >= 2)
  bool sampler_thread = true;        // false: caller drives sample_now()
};

class TimeSeriesRecorder {
 public:
  TimeSeriesRecorder();
  ~TimeSeriesRecorder();  // stops if running

  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  // Preallocate the ring, capture the tick-0 baselines, and (unless
  // opts.sampler_thread is false) spawn the sampler.  Restarting an already
  // running recorder fails (EALREADY); a stopped one restarts fresh.
  bool start(const TimeSeriesOptions& opts = {});

  // Join the sampler and stop appending.  The retained window stays
  // readable until the next start().  Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept;
  [[nodiscard]] std::uint32_t interval_ms() const noexcept;
  [[nodiscard]] std::uint32_t depth() const noexcept;
  [[nodiscard]] std::uint64_t samples_taken() const noexcept;

  // Take one sample now (the sampler thread's body; also the deterministic
  // driver for tests and benches).  No-op unless start() succeeded.
  void sample_now();

  // Copy the retained window, oldest first, into `out` (cleared first).
  void history(std::vector<TsSample>& out) const;

  // Exporters: {"meta": {...}, "samples": [...]} with derived rates, and a
  // fixed-width table for `curl /history`.
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_text() const;

  // At most one observer; nullptr unregisters.  Set while stopped (or from
  // the observer itself) to avoid racing the sampler.
  void set_observer(TsObserverFn fn, void* ctx) noexcept;

 private:
  struct Impl;
  Impl* impl_;  // manual pimpl: the recorder itself must not churn
};

// The process-wide recorder instance every surface (telemetry routes,
// watchdog, flight recorder, benches) shares.
[[nodiscard]] TimeSeriesRecorder& timeseries();

}  // namespace tmcv::obs
