// Lock-free event tracing: the capture half of the observability layer.
//
// Every thread owns a fixed-size ring of POD trace records; producers write
// with plain stores plus one release store of the head index, so the hot
// path takes no lock and allocates nothing after the first event.  Rings are
// registered in a process-wide table and never freed, so a serializer can
// drain the events of threads that have already exited (the same immortality
// discipline the TM descriptor pool uses).
//
// Two gates stack:
//   * Compile time: the TMCV_TRACE macro (CMake option, default ON).  When 0
//     every hook in tm/core/sync compiles away completely -- the hot path is
//     bit-identical to an untraced build (CI asserts no obs symbols leak
//     into those archives).
//   * Run time: a process-wide flag word.  With hooks compiled in but flags
//     clear, the entire cost of a hook is one relaxed load and one
//     predictable branch.
//
// Timestamps are raw TscClock ticks (util/timing.h); conversion to
// nanoseconds/microseconds happens at serialization time, never on the hot
// path.  The serializer (Chrome trace-event JSON, viewable in Perfetto) and
// the metrics registry live in src/obs/trace_io.cpp and metrics.cpp
// (library tmcv_obs); this header stays dependency-free so the TM runtime
// and the semaphores can emit events without a link edge back to obs.
#pragma once

#ifndef TMCV_TRACE
#define TMCV_TRACE 1
#endif

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "util/timing.h"

namespace tmcv::obs {

// ---------------------------------------------------------------------------
// Event vocabulary
// ---------------------------------------------------------------------------

enum class Event : std::uint16_t {
  kTxnCommit = 0,       // complete: one committed top-level transaction
  kTxnAbort,            // complete: begin -> abort; arg = TxAbort reason
  kSerialFallback,      // complete: serial-lock acquire stall on escalation
  kCvWait,              // complete: condvar enqueue -> wakeup
  kCvNotify,            // instant: a notify call; arg = waiters woken
  kSemWait,             // complete: semaphore wait, blocking path only
                        // (uncontended waits emit nothing by design)
  kSemPost,             // instant: semaphore post
  kSemPostBatch,        // instant: coalesced batch post; arg = batch size
  kSemSpin,             // complete: pre-park spin phase of a slow wait
                        // (whether or not it avoided the park)
  kCmBackoff,           // complete: contention-manager wait (polite orec
                        // wait or inter-retry backoff)
  kEventTypeCount,
};

// Chrome trace-event name for an event type (stable, dot-namespaced).
[[nodiscard]] constexpr const char* event_name(Event e) noexcept {
  switch (e) {
    case Event::kTxnCommit:
      return "txn.commit";
    case Event::kTxnAbort:
      return "txn.abort";
    case Event::kSerialFallback:
      return "txn.serial_fallback";
    case Event::kCvWait:
      return "cv.wait";
    case Event::kCvNotify:
      return "cv.notify";
    case Event::kSemWait:
      return "sem.wait";
    case Event::kSemPost:
      return "sem.post";
    case Event::kSemPostBatch:
      return "sem.post_batch";
    case Event::kSemSpin:
      return "sem.spin";
    case Event::kCmBackoff:
      return "cm.backoff";
    case Event::kEventTypeCount:
      break;
  }
  return "?";
}

// Whether an event type is a duration ("X" phase) or an instant ("i").
[[nodiscard]] constexpr bool event_has_duration(Event e) noexcept {
  switch (e) {
    case Event::kTxnCommit:
    case Event::kTxnAbort:
    case Event::kSerialFallback:
    case Event::kCvWait:
    case Event::kSemWait:
    case Event::kSemSpin:
    case Event::kCmBackoff:
      return true;
    default:
      return false;
  }
}

// One trace record: 24 bytes of PODs, written with plain stores.
struct TraceEvent {
  std::uint64_t ts;    // TscClock ticks at event start
  std::uint64_t dur;   // ticks of duration (0 for instants)
  std::uint16_t type;  // Event
  std::uint16_t arg;   // small payload (reason, woken count, batch size...)
  std::uint32_t pad = 0;
};
static_assert(sizeof(TraceEvent) == 24);

// ---------------------------------------------------------------------------
// Runtime gates
// ---------------------------------------------------------------------------

// Bit 0: latency timing (histograms).  Bit 1: event capture (rings).
// Bit 2: conflict attribution (sharded counter tables, obs/attribution.h).
inline constexpr std::uint32_t kTimingBit = 1u;
inline constexpr std::uint32_t kTraceBit = 2u;
inline constexpr std::uint32_t kAttrBit = 4u;

namespace detail {
inline std::atomic<std::uint32_t> g_flags{0};
}  // namespace detail

[[nodiscard]] inline std::uint32_t flags() noexcept {
  return detail::g_flags.load(std::memory_order_relaxed);
}

inline void set_timing_enabled(bool on) noexcept {
  if (on)
    detail::g_flags.fetch_or(kTimingBit, std::memory_order_relaxed);
  else
    detail::g_flags.fetch_and(~kTimingBit, std::memory_order_relaxed);
}

inline void set_trace_enabled(bool on) noexcept {
  if (on)
    detail::g_flags.fetch_or(kTraceBit, std::memory_order_relaxed);
  else
    detail::g_flags.fetch_and(~kTraceBit, std::memory_order_relaxed);
}

inline void set_attribution_enabled(bool on) noexcept {
  if (on)
    detail::g_flags.fetch_or(kAttrBit, std::memory_order_relaxed);
  else
    detail::g_flags.fetch_and(~kAttrBit, std::memory_order_relaxed);
}

[[nodiscard]] inline bool timing_enabled() noexcept {
  return (flags() & kTimingBit) != 0;
}
[[nodiscard]] inline bool trace_enabled() noexcept {
  return (flags() & kTraceBit) != 0;
}
[[nodiscard]] inline bool attribution_enabled() noexcept {
  return (flags() & kAttrBit) != 0;
}

// Timestamp for a region start: 0 when the layer is entirely off, so the
// matching end-hook can skip with one test.  This is THE disabled-path cost:
// one relaxed load, one predictable branch.
[[nodiscard]] inline std::uint64_t region_begin() noexcept {
  return flags() != 0 ? TscClock::now() : 0;
}

// ---------------------------------------------------------------------------
// Per-thread ring buffer
// ---------------------------------------------------------------------------

class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 15;  // 768 KiB

  explicit TraceRing(std::uint32_t tid,
                     std::size_t capacity = kDefaultCapacity)
      : events_(new TraceEvent[capacity]), cap_(capacity), tid_(tid) {
    // Power-of-two capacity keeps the index computation a mask.
    while (cap_ & (cap_ - 1)) --cap_;
  }

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void push(Event type, std::uint64_t ts, std::uint64_t dur,
            std::uint16_t arg) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    TraceEvent& e = events_[h & (cap_ - 1)];
    e.ts = ts;
    e.dur = dur;
    e.type = static_cast<std::uint16_t>(type);
    e.arg = arg;
    head_.store(h + 1, std::memory_order_release);
  }

  // Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return h < cap_ ? static_cast<std::size_t>(h) : cap_;
  }

  // Events overwritten because the ring was full (the ring keeps the most
  // recent `capacity` records; older ones are the overflow drops).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return h > cap_ ? h - cap_ : 0;
  }

  [[nodiscard]] std::uint64_t total_pushed() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  [[nodiscard]] std::uint32_t tid() const noexcept { return tid_; }

  // Copy the retained events, oldest first.  Coherent when the owner thread
  // is quiescent (the supported serialization point); a concurrent writer
  // can at worst tear records that are about to be overwritten anyway.
  void snapshot(std::vector<TraceEvent>& out) const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t n = h < cap_ ? h : cap_;
    out.reserve(out.size() + static_cast<std::size_t>(n));
    for (std::uint64_t i = h - n; i < h; ++i)
      out.push_back(events_[i & (cap_ - 1)]);
  }

  void clear() noexcept { head_.store(0, std::memory_order_release); }

 private:
  std::unique_ptr<TraceEvent[]> events_;
  std::size_t cap_;
  std::uint32_t tid_;
  std::atomic<std::uint64_t> head_{0};
};

// ---------------------------------------------------------------------------
// Ring table (process-wide)
// ---------------------------------------------------------------------------

namespace detail {

struct RingTable {
  std::mutex mu;
  std::vector<std::unique_ptr<TraceRing>> rings;  // never shrunk
  std::uint32_t next_tid = 1;
};

inline RingTable& ring_table() {
  static RingTable table;
  return table;
}

// Cold: allocate + register this thread's ring.
inline TraceRing* acquire_ring() {
  RingTable& t = ring_table();
  std::lock_guard<std::mutex> lock(t.mu);
  t.rings.push_back(std::make_unique<TraceRing>(t.next_tid++));
  return t.rings.back().get();
}

inline TraceRing& my_ring() {
  thread_local TraceRing* ring = acquire_ring();
  return *ring;
}

}  // namespace detail

// Visit every ring ever registered (exited threads included).
template <typename Fn>
void for_each_ring(Fn&& fn) {
  detail::RingTable& t = detail::ring_table();
  std::lock_guard<std::mutex> lock(t.mu);
  for (const auto& r : t.rings) fn(*r);
}

// Drop all captured events (per-run reset; call at quiescence).
inline void trace_reset() noexcept {
  detail::RingTable& t = detail::ring_table();
  std::lock_guard<std::mutex> lock(t.mu);
  for (const auto& r : t.rings) r->clear();
}

// ---------------------------------------------------------------------------
// Emission hooks (call sites in tm/core/sync wrap these in #if TMCV_TRACE)
// ---------------------------------------------------------------------------

// Record a duration event started at `t0` (a region_begin() result; no-op
// when that returned 0 or capture is off).  Returns the tick count spent,
// or 0 when timing is entirely off -- callers feed it to a histogram.
inline std::uint64_t emit_complete(Event type, std::uint64_t t0,
                                   std::uint16_t arg = 0) noexcept {
  const std::uint32_t f = flags();
  if (f == 0 || t0 == 0) return 0;
  const std::uint64_t now = TscClock::now();
  const std::uint64_t dur = now > t0 ? now - t0 : 0;
  if (f & kTraceBit) detail::my_ring().push(type, t0, dur, arg);
  return dur;
}

inline void emit_instant(Event type, std::uint16_t arg = 0) noexcept {
  if ((flags() & kTraceBit) == 0) return;
  detail::my_ring().push(type, TscClock::now(), 0, arg);
}

// Instant with a caller-captured timestamp (a region_begin() result; no-op
// when that returned 0).  Used where the logical time of the event precedes
// the point where its payload is known -- e.g. a notify's grant instant is
// before the queue transaction, its woken count after.
inline void emit_instant_at(Event type, std::uint64_t ts,
                            std::uint16_t arg = 0) noexcept {
  if ((flags() & kTraceBit) == 0 || ts == 0) return;
  detail::my_ring().push(type, ts, 0, arg);
}

// Capture-side totals for the metrics registry.
struct TraceCounts {
  std::uint64_t recorded = 0;  // pushes that are still retained
  std::uint64_t dropped = 0;   // pushes overwritten by wraparound
};

inline TraceCounts trace_counts() {
  TraceCounts c;
  for_each_ring([&](const TraceRing& r) {
    c.recorded += r.size();
    c.dropped += r.dropped();
  });
  return c;
}

}  // namespace tmcv::obs
