// Metrics registry: one snapshot/delta API over every counter and histogram
// the runtime maintains -- the TM statistics (tm::Stats), the aggregated
// condition-variable counters (CondVarStats), the latency histograms, and
// the tracer's capture totals -- with JSON and Prometheus text exporters.
//
// Consistency model: a snapshot folds per-thread / per-object counters that
// are maintained with relaxed (or plain, for TM descriptors) increments.
// Values are therefore monotonic and *eventually consistent*: exact once
// the measured threads are quiescent, approximate while they run.  What IS
// guaranteed even under concurrency (since the registry routed the
// thread-exit fold through a mutex) is that no thread's counters are ever
// double-counted or lost while it migrates from the live set to the retired
// accumulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/condvar.h"
#include "obs/attribution.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "obs/waitgraph.h"
#include "sync/wake_stats.h"
#include "tm/stats.h"

namespace tmcv::obs {

// One trace ring's drop count (per-thread: a scraper can tell WHOSE data is
// incomplete, not just that some ring wrapped).
struct RingDrops {
  std::uint32_t tid = 0;
  std::uint64_t dropped = 0;
};

// ---------------------------------------------------------------------------
// Application counters
//
// The registry's fixed sections cover the runtime; workloads built ON the
// runtime (the KV server's get/set/hit/miss counters, a future vacation
// bench) publish theirs by registering a scrape callback.  Each snapshot
// invokes every registered source, so app counters ride the same pump,
// delta, JSON, and Prometheus machinery as everything else -- `curl
// /metrics.json` mid-run shows `kv_get_total` next to `commits`.
//
// Names should be snake_case identifiers; they are exported verbatim into
// JSON under "app" and as `tmcv_app_<name>` Prometheus counters.  Callbacks
// must be cheap (relaxed atomic loads) and thread-safe; they run on the
// telemetry pump thread and on any thread that calls metrics_snapshot().
// ---------------------------------------------------------------------------

struct AppCounter {
  std::string name;
  std::uint64_t value = 0;
};

using AppCounterFn = void (*)(void* ctx, std::vector<AppCounter>& out);

// Register / remove a scrape source.  Unregister before destroying `ctx`
// (the KV server does this in stop()).
void register_app_counters(AppCounterFn fn, void* ctx);
void unregister_app_counters(AppCounterFn fn, void* ctx);

// Invoke every registered source into `out` (appended; caller clears).
// This is the cheap path the time-series recorder ticks on: with `out`
// capacity retained and SSO-sized names it performs no heap allocation,
// unlike a full metrics_snapshot().
void scrape_app_counters_into(std::vector<AppCounter>& out);

struct MetricsSnapshot {
  tm::Stats tm;        // folded over live + retired TM threads
  std::string tm_backend;  // default backend label at capture time
                           // ("eager"/"lazy"/"htm"/"hybrid"/"norec")
  CondVarStats cv;     // folded over live + destroyed condition variables
  WakeStats wake;      // process-wide spin/park and wait-morph counters
  std::uint64_t trace_events = 0;   // records retained across all rings
  std::uint64_t trace_dropped = 0;  // records lost to ring wraparound
  std::vector<RingDrops> trace_ring_drops;  // per-ring breakdown (every ring)
  AttributionSnapshot attribution;  // conflict attribution (sorted, unsliced)
  std::vector<AppCounter> app;      // registered application counters
  StallSnapshot stall;              // off-CPU park time by (reason x site)

  HistogramSnapshot cv_wait_ns;       // condvar enqueue -> wakeup
  HistogramSnapshot notify_wake_ns;   // notify selection -> waiter running
  HistogramSnapshot txn_commit_ns;    // begin -> successful outermost commit
  HistogramSnapshot txn_abort_ns;     // begin -> abort (any reason)
  HistogramSnapshot serial_stall_ns;  // serial-fallback lock-acquire stall
  HistogramSnapshot cm_backoff_ns;    // CM waits: polite orec wait +
                                      // inter-retry backoff
  HistogramSnapshot spin_park_ns;     // pre-park spin phase of slow waits
};

// Seconds since this process first touched the metrics registry (anchored
// at static-init time in practice): the `tmcv_uptime_seconds` gauge, and
// the freshness stamp in flight-recorder dumps.
[[nodiscard]] double process_uptime_seconds();

// Capture everything now.
[[nodiscard]] MetricsSnapshot metrics_snapshot();

// Element-wise `now - before`: activity between two snapshots.
[[nodiscard]] MetricsSnapshot metrics_delta(const MetricsSnapshot& now,
                                            const MetricsSnapshot& before);

// Exporters.
[[nodiscard]] std::string to_json(const MetricsSnapshot& s);
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& s);

// Write the snapshot as JSON to `json_path` and as Prometheus text to
// `json_path` + ".prom".  Returns false (with errno intact) on I/O failure.
bool write_metrics_files(const MetricsSnapshot& s,
                         const std::string& json_path);

// ---------------------------------------------------------------------------
// Chrome trace serialization (capture side lives in obs/trace.h)
// ---------------------------------------------------------------------------

// A ring record tagged with its owner thread's trace id.
struct TaggedEvent {
  TraceEvent event;
  std::uint32_t tid;
};

// The Chrome trace document as a string (no trailing newline): what
// write_chrome_trace() writes, reusable inline in a flight-recorder dump.
[[nodiscard]] std::string chrome_trace_json();

// Merge the retained events of every ring (exited threads included),
// sorted by raw timestamp.  Call at quiescence.
[[nodiscard]] std::vector<TaggedEvent> collect_trace_sorted();

// Serialize every ring to Chrome trace-event JSON (loadable in Perfetto /
// chrome://tracing): {"traceEvents": [...], "displayTimeUnit": "ns"}.
// Events are merged across threads and sorted by timestamp; timestamps are
// microseconds relative to the earliest captured event.  Call at
// quiescence.  Returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

}  // namespace tmcv::obs
