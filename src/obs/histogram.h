// Log-bucketed latency histograms (HDR-style): power-of-two major buckets
// subdivided into 16 linear sub-buckets, giving a guaranteed relative
// resolution of 1/16 (6.25%) across the full clamped nanosecond range in
// 944 buckets (7.4 KiB).
//
// Recording is a relaxed atomic increment on one bucket plus count/sum --
// wait-free, mergeable across threads, and safe to read concurrently (the
// reader sees some interleaving of increments; exact at quiescence, the
// standard contract for hot-path metrics).  `snapshot()` produces a plain
// HistogramSnapshot that supports +=, -= (delta between two snapshots) and
// percentile queries.
//
// Percentile semantics: percentile(q) returns the LOWER BOUND of the bucket
// containing the value of rank ceil(q * count).  The true recorded value v
// satisfies  result <= v < result * (1 + 1/16)  (exact below 16 ns).
#pragma once

#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace tmcv::obs {

namespace hist_detail {

inline constexpr int kSubBits = 4;                    // 16 sub-buckets
inline constexpr std::size_t kSub = 1u << kSubBits;   // per major bucket

// Values above this are clamped into the last bucket (≈ 146 years in ns).
inline constexpr std::uint64_t kClamp = (1ull << 62) - 1;

// Exactly the reachable index range: kClamp has bit_width 62, so the top
// group is 62-kSubBits = 58 and the top index is 58*16 + 15 = 943.
inline constexpr std::size_t kBuckets = 59 * kSub;    // 944

[[nodiscard]] constexpr std::size_t bucket_of(std::uint64_t v) noexcept {
  if (v < kSub) return static_cast<std::size_t>(v);
  if (v > kClamp) v = kClamp;
  const int e = std::bit_width(v) - 1;           // 4 <= e <= 61
  const int g = e - kSubBits + 1;                // major group, >= 1
  const auto sub = static_cast<std::size_t>((v >> (e - kSubBits)) &
                                            (kSub - 1));
  return static_cast<std::size_t>(g) * kSub + sub;
}

// Smallest value mapping to bucket `idx`.
[[nodiscard]] constexpr std::uint64_t bucket_lower_bound(
    std::size_t idx) noexcept {
  if (idx < kSub) return idx;
  const std::size_t g = idx >> kSubBits;
  const std::uint64_t sub = idx & (kSub - 1);
  return (kSub + sub) << (g - 1);
}

// Width of bucket `idx` (== the absolute resolution at that magnitude).
[[nodiscard]] constexpr std::uint64_t bucket_width(std::size_t idx) noexcept {
  return idx < kSub ? 1 : 1ull << ((idx >> kSubBits) - 1);
}

}  // namespace hist_detail

// Plain (non-atomic) histogram contents: the snapshot/delta/query type.
struct HistogramSnapshot {
  std::uint64_t buckets[hist_detail::kBuckets] = {};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  // Exact observed extrema: log buckets only bound a value to 1/16, so the
  // live histogram tracks the true min/max separately (0/0 when empty).
  // Advisory fields: merge (+=) combines them, but a delta (-=) keeps the
  // minuend's values -- the extrema OF a window are unknowable from two
  // cumulative snapshots, only bounded by them -- and operator== ignores
  // them, so merge/delta algebra on the bucket contents is unaffected.
  std::uint64_t min_value = 0;
  std::uint64_t max_value = 0;

  HistogramSnapshot& operator+=(const HistogramSnapshot& o) noexcept {
    if (o.count != 0) {
      min_value = count == 0 ? o.min_value
                             : (o.min_value < min_value ? o.min_value
                                                        : min_value);
      max_value = o.max_value > max_value ? o.max_value : max_value;
    }
    for (std::size_t i = 0; i < hist_detail::kBuckets; ++i)
      buckets[i] += o.buckets[i];
    count += o.count;
    sum += o.sum;
    return *this;
  }

  // Delta against an earlier snapshot of the same histogram.  min/max keep
  // the newer (cumulative) values: they bound the window loosely.
  HistogramSnapshot& operator-=(const HistogramSnapshot& o) noexcept {
    for (std::size_t i = 0; i < hist_detail::kBuckets; ++i)
      buckets[i] -= o.buckets[i];
    count -= o.count;
    sum -= o.sum;
    return *this;
  }

  [[nodiscard]] bool operator==(const HistogramSnapshot& o) const noexcept {
    if (count != o.count || sum != o.sum) return false;
    for (std::size_t i = 0; i < hist_detail::kBuckets; ++i)
      if (buckets[i] != o.buckets[i]) return false;
    return true;
  }

  [[nodiscard]] double mean() const noexcept {
    return count ? static_cast<double>(sum) / static_cast<double>(count)
                 : 0.0;
  }

  // Lower bound of the bucket holding the rank-ceil(q*count) value; 0 when
  // empty.  q in [0, 1].
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept {
    if (count == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    if (rank == 0) rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < hist_detail::kBuckets; ++i) {
      seen += buckets[i];
      if (seen >= rank) return hist_detail::bucket_lower_bound(i);
    }
    return hist_detail::bucket_lower_bound(hist_detail::kBuckets - 1);
  }

  // Exact maximum when the recorder tracked one; otherwise (hand-built
  // snapshots) the lower bound of the highest populated bucket.  0 when
  // empty.
  [[nodiscard]] std::uint64_t max_observed() const noexcept {
    if (max_value != 0) return max_value;
    for (std::size_t i = hist_detail::kBuckets; i > 0; --i)
      if (buckets[i - 1] != 0)
        return hist_detail::bucket_lower_bound(i - 1);
    return 0;
  }

  // Exact minimum (same fallback rule); 0 when empty.
  [[nodiscard]] std::uint64_t min_observed() const noexcept {
    if (count == 0) return 0;
    if (min_value != 0 || max_value != 0) return min_value;
    for (std::size_t i = 0; i < hist_detail::kBuckets; ++i)
      if (buckets[i] != 0) return hist_detail::bucket_lower_bound(i);
    return 0;
  }
};

inline HistogramSnapshot operator+(HistogramSnapshot a,
                                   const HistogramSnapshot& b) noexcept {
  a += b;
  return a;
}

inline HistogramSnapshot operator-(HistogramSnapshot a,
                                   const HistogramSnapshot& b) noexcept {
  a -= b;
  return a;
}

// The live, concurrently-writable histogram.
class LatencyHistogram {
 public:
  void record(std::uint64_t value) noexcept {
    buckets_[hist_detail::bucket_of(value)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    // Exact extrema (log buckets alone lose them): lock-free CAS-min/max.
    // The loops almost never iterate -- a new extreme is rare by definition.
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (value < cur &&
           !min_.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (value > cur &&
           !max_.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot s;
    for (std::size_t i = 0; i < hist_detail::kBuckets; ++i)
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    const std::uint64_t mn = min_.load(std::memory_order_relaxed);
    s.min_value = (s.count == 0 || mn == kNoMin) ? 0 : mn;
    s.max_value = s.count == 0 ? 0 : max_.load(std::memory_order_relaxed);
    return s;
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(kNoMin, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t kNoMin = ~std::uint64_t{0};

  std::atomic<std::uint64_t> buckets_[hist_detail::kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{kNoMin};
  std::atomic<std::uint64_t> max_{0};
};

// ---------------------------------------------------------------------------
// The process-wide latency histograms (all in nanoseconds).
//
// Inline globals so tm/core/sync record into them without linking tmcv_obs;
// the metrics registry snapshots them by name.  Recording only happens under
// obs::timing_enabled() (plus the TMCV_TRACE compile gate at call sites).
// ---------------------------------------------------------------------------

inline LatencyHistogram& hist_cv_wait() noexcept {
  static LatencyHistogram h;
  return h;
}
inline LatencyHistogram& hist_notify_wake() noexcept {
  static LatencyHistogram h;
  return h;
}
inline LatencyHistogram& hist_txn_commit() noexcept {
  static LatencyHistogram h;
  return h;
}
inline LatencyHistogram& hist_txn_abort() noexcept {
  static LatencyHistogram h;
  return h;
}
inline LatencyHistogram& hist_serial_stall() noexcept {
  static LatencyHistogram h;
  return h;
}
inline LatencyHistogram& hist_cm_backoff() noexcept {
  static LatencyHistogram h;
  return h;
}
inline LatencyHistogram& hist_spin_park() noexcept {
  static LatencyHistogram h;
  return h;
}

}  // namespace tmcv::obs
