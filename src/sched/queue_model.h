// Step-machine model of the *practical* condition-variable implementation
// (Algorithms 4-6): a FIFO queue of per-thread binary semaphores, with the
// transactional sections of WAIT/NOTIFY as single atomic steps and the
// semaphore post deferred to a separate commit step (the onCommit handler).
//
// This complements cv_model.h (Algorithm 2): the explorer checks that the
// implementation-level structure preserves the specification's properties
// under every interleaving, including the windows the real code worries
// about:
//   * a notifier's dequeue committing while the waiter has not yet reached
//     its SEMWAIT (the post must "stick" -- token semantics);
//   * the post being delayed arbitrarily after the dequeue (deferred
//     onCommit, §3.2) -- modeled as a separate step that the scheduler may
//     postpone;
//   * NOTIFYALL draining while enqueuers race in.
//
// Checked invariants:
//   (I1) queue nodes are distinct and only ever owned by enqueued waiters;
//   (I2) token conservation: sem[p] <= 1, and sem[p]=1 only between a
//        dequeue of p and p's SEMWAIT;
//   (I3) a waiter past SEMWAIT was dequeued exactly once (no spurious);
//   (I4) completed waits never exceed completed posts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sched/explorer.h"

namespace tmcv::sched {

enum class QNotifyOp : std::uint8_t { One, All };

struct QueueModelConfig {
  std::size_t waiters = 2;
  std::vector<QNotifyOp> notifier_program;
  bool guarded_notify = true;  // notify ops wait for a nonempty queue
};

class QueueModel final : public Model {
 public:
  explicit QueueModel(QueueModelConfig config) : cfg_(std::move(config)) {
    reset();
  }

  void reset() override {
    queue_.clear();
    sem_.assign(cfg_.waiters, 0);
    dequeued_count_.assign(cfg_.waiters, 0);
    waiter_pc_.assign(cfg_.waiters, WEnqueue);
    notifier_pc_.assign(cfg_.notifier_program.size(), NSelect);
    pending_posts_.assign(cfg_.notifier_program.size(),
                          std::vector<std::size_t>{});
    completed_waits_ = 0;
    completed_posts_ = 0;
  }

  [[nodiscard]] std::size_t process_count() const override {
    return cfg_.waiters + cfg_.notifier_program.size();
  }

  [[nodiscard]] bool done(std::size_t p) const override {
    if (p < cfg_.waiters) return waiter_pc_[p] == WDone;
    return notifier_pc_[p - cfg_.waiters] == NDone;
  }

  [[nodiscard]] bool enabled(std::size_t p) const override {
    if (p < cfg_.waiters) {
      // SEMWAIT blocks until the token arrives.
      if (waiter_pc_[p] == WSemWait) return sem_[p] > 0;
      return waiter_pc_[p] != WDone;
    }
    const std::size_t n = p - cfg_.waiters;
    if (notifier_pc_[n] == NDone) return false;
    if (notifier_pc_[n] == NSelect && cfg_.guarded_notify && queue_.empty())
      return false;
    return true;
  }

  void step(std::size_t p) override {
    if (p < cfg_.waiters)
      step_waiter(p);
    else
      step_notifier(p - cfg_.waiters);
  }

  void check_invariants() const override {
    // (I1) queue entries distinct, each owner is a waiter parked before or
    // at SEMWAIT and not yet dequeued.
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const std::size_t p = queue_[i];
      for (std::size_t j = i + 1; j < queue_.size(); ++j)
        if (queue_[j] == p) fail("I1: duplicate node in queue", p);
      if (waiter_pc_[p] != WSemWait)
        fail("I1: queued waiter not at SEMWAIT", p);
      if (sem_[p] != 0) fail("I2: queued waiter already has a token", p);
    }
    for (std::size_t p = 0; p < cfg_.waiters; ++p) {
      // (I2) binary token.
      if (sem_[p] > 1) fail("I2: semaphore value exceeds 1", p);
      // (I3) a waiter done its wait must have been dequeued exactly once
      // per completed wait (single-shot model: exactly 1).
      if (waiter_pc_[p] == WDone && dequeued_count_[p] != 1)
        fail("I3: completed wait without exactly one dequeue", p);
      // A waiter holding a token must have been dequeued already.
      if (sem_[p] == 1 && dequeued_count_[p] == 0)
        fail("I2: token exists without a dequeue", p);
    }
    // (I4)
    if (completed_waits_ > completed_posts_)
      fail("I4: more completed waits than posts", 0);
  }

  void check_final() const override {
    // In a final state no token may be stranded while its owner finished.
    for (std::size_t p = 0; p < cfg_.waiters; ++p)
      if (waiter_pc_[p] == WDone && sem_[p] != 0)
        throw ModelViolation("final: leftover token after completed wait");
  }

  [[nodiscard]] std::size_t completed_waits() const noexcept {
    return completed_waits_;
  }

 private:
  // Waiter program counters: the three phases of WAIT that matter for
  // interleaving (lines 2-8 as one transaction, line 9 implicit, line 10).
  enum WaiterPc : int { WEnqueue = 0, WSemWait = 1, WDone = 99 };
  // Notifier: the dequeue transaction, then the (deferrable) post step per
  // selected waiter.
  enum NotifierPc : int { NSelect = 0, NPost = 1, NDone = 99 };

  void step_waiter(std::size_t p) {
    switch (waiter_pc_[p]) {
      case WEnqueue:  // the enqueue transaction commits (+ ENDSYNCBLOCK)
        queue_.push_back(p);
        waiter_pc_[p] = WSemWait;
        break;
      case WSemWait:  // enabled only when sem_[p] > 0: consume the token
        --sem_[p];
        ++completed_waits_;
        waiter_pc_[p] = WDone;
        break;
      default:
        throw ModelViolation("waiter stepped when done");
    }
  }

  void step_notifier(std::size_t n) {
    switch (notifier_pc_[n]) {
      case NSelect: {  // the dequeue transaction commits
        if (queue_.empty()) {
          // Unguarded lost notify: operation completes with no effect.
          notifier_pc_[n] = NDone;
          return;
        }
        if (cfg_.notifier_program[n] == QNotifyOp::One) {
          pending_posts_[n].push_back(queue_.front());
          ++dequeued_count_[queue_.front()];
          queue_.pop_front();
        } else {
          for (std::size_t p : queue_) {
            pending_posts_[n].push_back(p);
            ++dequeued_count_[p];
          }
          queue_.clear();
        }
        notifier_pc_[n] = NPost;
        break;
      }
      case NPost: {  // one deferred onCommit post per step
        const std::size_t p = pending_posts_[n].back();
        pending_posts_[n].pop_back();
        ++sem_[p];
        ++completed_posts_;
        if (pending_posts_[n].empty()) notifier_pc_[n] = NDone;
        break;
      }
      default:
        throw ModelViolation("notifier stepped when done");
    }
  }

  [[noreturn]] void fail(const char* msg, std::size_t who) const {
    throw ModelViolation(std::string(msg) + " (process " +
                         std::to_string(who) + ")");
  }

  QueueModelConfig cfg_;
  std::deque<std::size_t> queue_;            // FIFO of waiting threads
  std::vector<int> sem_;                     // per-thread binary semaphores
  std::vector<int> dequeued_count_;          // dequeues per waiter
  std::vector<int> waiter_pc_;
  std::vector<int> notifier_pc_;
  std::vector<std::vector<std::size_t>> pending_posts_;  // onCommit handlers
  std::size_t completed_waits_ = 0;
  std::size_t completed_posts_ = 0;
};

}  // namespace tmcv::sched
