// A small Wing & Gong linearizability checker.
//
// Takes a concurrent history (operations with real-time invocation/response
// bounds, observed results) and a sequential model, and decides whether
// some linearization of the history is consistent with the model: a total
// order that respects real time (if op A responded before op B was invoked,
// A precedes B) in which every operation's observed result matches the
// model's sequential answer.
//
// Used by the container tests to validate TxQueue/TxStack against their
// sequential specifications on real recorded executions, complementing the
// invariant-style concurrency tests.  Histories are kept small (the search
// is exponential in the worst case; real-time constraints prune heavily).
#pragma once

#include <cstdint>
#include <vector>

namespace tmcv::sched {

struct LinOp {
  std::uint64_t invoke_ns = 0;    // invocation timestamp
  std::uint64_t response_ns = 0;  // response timestamp
  int opcode = 0;                 // model-defined
  std::uint64_t arg = 0;
  std::uint64_t result = 0;       // observed result (model-defined encoding)
};

// SeqModel requirements:
//   * copyable value type;
//   * std::uint64_t apply(int opcode, std::uint64_t arg) -- executes the
//     operation sequentially and returns the result it would produce.
template <typename SeqModel>
bool is_linearizable(const std::vector<LinOp>& history,
                     const SeqModel& initial) {
  const std::size_t n = history.size();
  if (n == 0) return true;
  if (n > 24) return true;  // refuse unbounded search; callers keep it small

  // Iterative DFS over linearization prefixes.  `taken` is a bitmask of
  // linearized ops; candidates are operations not strictly preceded (in
  // real time) by any un-linearized operation.
  struct Choice {
    std::uint32_t taken;
    SeqModel state;
    std::size_t next_candidate;
  };
  std::vector<Choice> work;
  work.push_back(Choice{0, initial, 0});

  const std::uint32_t all = (n == 32) ? ~0u : ((1u << n) - 1);

  while (!work.empty()) {
    Choice current = work.back();
    work.pop_back();
    if (current.taken == all) return true;

    for (std::size_t i = current.next_candidate; i < n; ++i) {
      if (current.taken & (1u << i)) continue;
      // Real-time constraint: i may linearize now only if no un-taken op
      // responded before i was invoked.
      bool blocked = false;
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j || (current.taken & (1u << j))) continue;
        if (history[j].response_ns < history[i].invoke_ns) {
          blocked = true;
          break;
        }
      }
      if (blocked) continue;
      SeqModel next_state = current.state;
      const std::uint64_t expected =
          next_state.apply(history[i].opcode, history[i].arg);
      if (expected != history[i].result) continue;
      // Remember the untried siblings, then descend.
      work.push_back(Choice{current.taken, current.state, i + 1});
      work.push_back(
          Choice{current.taken | (1u << i), std::move(next_state), 0});
      break;
    }
  }
  return false;
}

}  // namespace tmcv::sched
