// Step-machine model of the spin-then-park BinarySemaphore slow path
// (sync/semaphore.h + sync/spin.h), for exhaustive schedule exploration.
//
// The real wait() is: fast-path CAS; then a bounded spin probing the token
// word; if the probe sees the token, a consuming CAS; otherwise a parking
// loop of {CAS; futex_wait while word == 0}.  Each of those memory actions
// is one atomic model step.  futex_wait is modeled as blocking-until-
// token-set: the kernel returns either because a wake was posted or because
// the word already differed at call time -- both collapse to "enabled once
// the token is visible", which preserves the reachable-state set while
// keeping schedules finite.
//
// Checked properties:
//   * Token conservation: the waiter consumes the token exactly once, and
//     only via a CAS that observed it set (no spurious completion).
//   * No lost wakeup: with at least one post in the program, every schedule
//     ends with the waiter done -- a stuck final state shows up as an
//     explorer deadlock.  This must hold for every spin budget, including
//     R = 0 (the TMCV_NO_SPIN / set_spin_budget(0) configuration), because
//     the budget only decides WHERE the consuming CAS happens, never
//     whether one happens.
//   * Park avoidance is a pure optimization: with R = 0 every slow-path
//     schedule parks (only a fast-path CAS win skips it); with R > 0 both
//     outcomes (post lands mid-spin -> no park; post lands late -> park)
//     are reachable, which the tests assert via the ever_* accumulators
//     that survive reset().
#pragma once

#include <cstdint>

#include "sched/explorer.h"

namespace tmcv::sched {

struct SpinModelConfig {
  unsigned spin_rounds = 2;  // R: probe rounds before parking (0 = no spin)
  unsigned posts = 1;        // poster processes, each posts the token once
};

class SpinSemModel final : public Model {
 public:
  explicit SpinSemModel(SpinModelConfig config) : cfg_(config) {
    if (cfg_.posts > kMaxPosters) cfg_.posts = kMaxPosters;
    reset();
  }

  void reset() override {
    token_ = false;
    waiter_pc_ = kFastCas;
    spin_round_ = 0;
    consumed_ = 0;
    parked_ = false;
    slow_ = false;
    for (bool& b : posted_) b = false;
    posts_done_ = 0;
  }

  [[nodiscard]] std::size_t process_count() const override {
    return 1 + cfg_.posts;  // process 0 is the waiter
  }

  [[nodiscard]] bool done(std::size_t p) const override {
    if (p == 0) return waiter_pc_ == kDone;
    return posted_[p - 1];
  }

  [[nodiscard]] bool enabled(std::size_t p) const override {
    if (p != 0) return !posted_[p - 1];
    if (waiter_pc_ == kDone) return false;
    // futex_wait: blocked until the word changes (wake or value mismatch).
    if (waiter_pc_ == kSleep) return token_;
    return true;
  }

  void step(std::size_t p) override {
    if (p != 0) {
      // post(): exchange(1).  Idempotent on a binary semaphore.
      posted_[p - 1] = true;
      ++posts_done_;
      token_ = true;
      return;
    }
    switch (waiter_pc_) {
      case kFastCas:  // wait() fast path
        if (token_) {
          consume();
        } else {
          slow_ = true;
          waiter_pc_ = cfg_.spin_rounds > 0 ? kSpinProbe : kParkCas;
          if (waiter_pc_ == kParkCas) parked_ = ever_parked_ = true;
        }
        break;
      case kSpinProbe:  // adaptive_spin's ready() load
        if (token_) {
          waiter_pc_ = kSpinConsume;
        } else if (++spin_round_ >= cfg_.spin_rounds) {
          waiter_pc_ = kParkCas;  // budget exhausted: enter the park path
          parked_ = ever_parked_ = true;
        }
        break;
      case kSpinConsume:  // try_wait() after a successful probe
        if (token_) {
          ever_avoided_ = true;
          consume();
        } else {
          // Token stolen between probe and CAS (impossible with one waiter,
          // kept for fidelity to the code, which falls through to parking).
          waiter_pc_ = kParkCas;
          parked_ = ever_parked_ = true;
        }
        break;
      case kParkCas:  // parking loop's CAS before futex_wait
        if (token_)
          consume();
        else
          waiter_pc_ = kSleep;
        break;
      case kSleep:  // futex_wait returned (only enabled once token_ is set)
        waiter_pc_ = kParkCas;
        break;
      default:
        throw ModelViolation("waiter stepped when done");
    }
  }

  void check_invariants() const override {
    if (consumed_ > 1)
      throw ModelViolation("token consumed more than once");
    if (waiter_pc_ == kDone && consumed_ != 1)
      throw ModelViolation("waiter completed without consuming a token");
  }

  void check_final() const override {
    // The explorer reports stuck states as deadlocks; here we only verify
    // conservation and the R = 0 properties.  A fast-path CAS win (the post
    // landed before wait()) legitimately completes without parking at any
    // budget; what R = 0 forbids is finishing the SLOW path without a park.
    if (waiter_pc_ == kDone && consumed_ != 1)
      throw ModelViolation("final state: wait completed, token count != 1");
    if (cfg_.spin_rounds == 0 && waiter_pc_ == kDone && slow_ && !parked_)
      throw ModelViolation("R = 0 slow path completed without parking");
    if (cfg_.spin_rounds == 0 && ever_avoided_)
      throw ModelViolation("R = 0 schedule avoided a park via spinning");
  }

  // Cross-schedule accumulators (NOT cleared by reset): whether any explored
  // schedule avoided the park / entered the park path.
  [[nodiscard]] bool ever_avoided() const noexcept { return ever_avoided_; }
  [[nodiscard]] bool ever_parked() const noexcept { return ever_parked_; }

 private:
  enum Pc : std::uint8_t {
    kFastCas,
    kSpinProbe,
    kSpinConsume,
    kParkCas,
    kSleep,
    kDone,
  };

  void consume() {
    token_ = false;
    ++consumed_;
    waiter_pc_ = kDone;
  }

  static constexpr std::size_t kMaxPosters = 4;

  SpinModelConfig cfg_;
  bool token_ = false;
  Pc waiter_pc_ = kFastCas;
  unsigned spin_round_ = 0;
  unsigned consumed_ = 0;
  bool parked_ = false;
  bool slow_ = false;  // fast-path CAS failed: wait_slow was entered
  bool posted_[kMaxPosters] = {};
  unsigned posts_done_ = 0;
  bool ever_avoided_ = false;
  bool ever_parked_ = false;
};

}  // namespace tmcv::sched
