// Deterministic interleaving explorer: a miniature stateless model checker.
//
// A Model is a set of processes, each advancing by explicit atomic steps
// (matching the paper's proof convention that "each line in the code listing
// is executed as an atomic step").  The explorer enumerates interleavings --
// exhaustively via DFS with replay, or randomly for larger configurations --
// executes the model along each schedule, and checks invariants after every
// step.  This machinery discharges, by brute force over bounded
// configurations, the Lemma 2 invariants and Definition 1 legality
// conditions of the paper's §2.3.
//
// Blocking is modeled by enabledness: a process waiting on a flag simply has
// no enabled step until another process clears the flag.  A state where no
// process is enabled but not all are done is reported as a deadlock.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace tmcv::sched {

// Thrown by models when an invariant fails; the explorer attaches the
// offending schedule.
class ModelViolation : public std::runtime_error {
 public:
  explicit ModelViolation(const std::string& what)
      : std::runtime_error(what) {}
};

class Model {
 public:
  virtual ~Model() = default;

  // Restore the initial state (called before replaying each schedule).
  virtual void reset() = 0;

  [[nodiscard]] virtual std::size_t process_count() const = 0;

  // True when process p has finished its program.
  [[nodiscard]] virtual bool done(std::size_t p) const = 0;

  // True when process p can take a step now (false models blocking).
  [[nodiscard]] virtual bool enabled(std::size_t p) const = 0;

  // Execute one atomic step of process p (requires enabled(p)).
  virtual void step(std::size_t p) = 0;

  // Check global invariants; throw ModelViolation on failure.
  virtual void check_invariants() const = 0;

  // Check conditions that must hold in every *final* (all-done) state.
  virtual void check_final() const {}
};

struct ExploreResult {
  std::uint64_t schedules = 0;     // complete schedules executed
  std::uint64_t steps = 0;         // total steps executed
  std::uint64_t deadlocks = 0;     // stuck non-final states found
  std::uint64_t violations = 0;    // invariant failures found
  std::vector<std::size_t> counterexample;  // first failing schedule
  std::string first_error;

  [[nodiscard]] bool ok() const noexcept {
    return deadlocks == 0 && violations == 0;
  }
};

// Exhaustive DFS over all interleavings up to max_depth steps per schedule.
// Stops early (recording the counterexample) on the first violation when
// stop_on_first is set.
[[nodiscard]] ExploreResult explore_all(Model& model,
                                        std::size_t max_depth = 64,
                                        bool stop_on_first = true);

// Random schedule sampling: `schedules` runs, each driven by a seeded PRNG.
[[nodiscard]] ExploreResult explore_random(Model& model,
                                           std::uint64_t schedules,
                                           std::uint64_t seed,
                                           std::size_t max_steps = 10000);

}  // namespace tmcv::sched
