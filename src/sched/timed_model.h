// Step-machine model of the timed-wait race protocol (CondVar::wait_for):
//
//   waiter:   enqueue ; arm timer ; then either
//               (a) consume token            -> notified
//               (b) timeout fires -> try to remove own node:
//                     removed     -> timed out
//                     not found   -> a notifier selected us: consume the
//                                    (possibly still pending) token -> notified
//   notifier: dequeue (atomic)  ; post token (separate, deferrable step)
//
// The timeout itself is modeled as a nondeterministic step that is always
// enabled while the waiter is parked -- the explorer therefore covers every
// relative order of {timeout, dequeue, post}.  Checked:
//   * exactly one of {timeout-removal, notify-dequeue} wins per wait;
//   * a waiter reports "notified" iff a dequeue selected it;
//   * no token is leaked (semaphore drained in final states) or duplicated.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sched/explorer.h"

namespace tmcv::sched {

struct TimedModelConfig {
  std::size_t waiters = 1;
  std::size_t notifiers = 1;  // each performs one NotifyOne
};

class TimedWaitModel final : public Model {
 public:
  explicit TimedWaitModel(TimedModelConfig config) : cfg_(config) { reset(); }

  void reset() override {
    queue_.clear();
    sem_.assign(cfg_.waiters, 0);
    dequeued_.assign(cfg_.waiters, false);
    outcome_.assign(cfg_.waiters, Outcome::Pending);
    waiter_pc_.assign(cfg_.waiters, WEnqueue);
    notifier_pc_.assign(cfg_.notifiers, NSelect);
    notifier_victim_.assign(cfg_.notifiers, kNone);
  }

  [[nodiscard]] std::size_t process_count() const override {
    // Each waiter is two processes: the thread itself and its timer.
    return cfg_.waiters * 2 + cfg_.notifiers;
  }

  [[nodiscard]] bool done(std::size_t p) const override {
    if (p < cfg_.waiters) return waiter_pc_[p] == WDone;
    if (p < cfg_.waiters * 2) {
      // Timer process: done once fired or once its waiter finished.
      const std::size_t w = p - cfg_.waiters;
      return waiter_pc_[w] != WParked;
    }
    return notifier_pc_[p - cfg_.waiters * 2] == NDone;
  }

  [[nodiscard]] bool enabled(std::size_t p) const override {
    if (p < cfg_.waiters) {
      switch (waiter_pc_[p]) {
        case WEnqueue:
          return true;
        case WParked:
          return sem_[p] > 0;  // wake on token
        case WMustConsume:
          return sem_[p] > 0;  // post may still be pending
        case WRemove:
          return true;
        default:
          return false;
      }
    }
    if (p < cfg_.waiters * 2) {
      // The timer can fire at any moment while its waiter is parked.
      const std::size_t w = p - cfg_.waiters;
      return waiter_pc_[w] == WParked;
    }
    const std::size_t n = p - cfg_.waiters * 2;
    // NSelect is always enabled: an empty queue makes it a lost notify.
    return notifier_pc_[n] == NSelect || notifier_pc_[n] == NPost;
  }

  void step(std::size_t p) override {
    if (p < cfg_.waiters) {
      step_waiter(p);
    } else if (p < cfg_.waiters * 2) {
      // Timer fires: the waiter moves to the removal attempt.
      const std::size_t w = p - cfg_.waiters;
      if (waiter_pc_[w] == WParked) waiter_pc_[w] = WRemove;
    } else {
      step_notifier(p - cfg_.waiters * 2);
    }
  }

  void check_invariants() const override {
    for (std::size_t w = 0; w < cfg_.waiters; ++w) {
      if (sem_[w] > 1) fail("token duplicated", w);
      if (sem_[w] == 1 && !dequeued_[w])
        fail("token exists without a dequeue", w);
      if (outcome_[w] == Outcome::TimedOut && dequeued_[w])
        fail("reported timeout but a notifier selected this waiter", w);
      if (outcome_[w] == Outcome::Notified && !dequeued_[w])
        fail("reported notified without a dequeue", w);
    }
  }

  void check_final() const override {
    for (std::size_t w = 0; w < cfg_.waiters; ++w) {
      if (sem_[w] != 0)
        throw ModelViolation("final: leaked token for waiter " +
                             std::to_string(w));
      if (outcome_[w] == Outcome::Pending)
        throw ModelViolation("final: waiter never resolved");
    }
  }

  enum class Outcome : std::uint8_t { Pending, Notified, TimedOut };

  [[nodiscard]] Outcome outcome(std::size_t w) const { return outcome_[w]; }

 private:
  enum WaiterPc : int {
    WEnqueue = 0,
    WParked = 1,       // sleeping; token or timer resolves
    WRemove = 2,       // timed out: transactional self-removal attempt
    WMustConsume = 3,  // removal found nothing: absorb the incoming token
    WDone = 99,
  };
  enum NotifierPc : int { NSelect = 0, NPost = 1, NDone = 99 };
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  void step_waiter(std::size_t w) {
    switch (waiter_pc_[w]) {
      case WEnqueue:
        queue_.push_back(w);
        waiter_pc_[w] = WParked;
        break;
      case WParked:  // token available: normal notified wake
        --sem_[w];
        outcome_[w] = Outcome::Notified;
        waiter_pc_[w] = WDone;
        break;
      case WRemove: {  // the try_remove_self transaction (atomic)
        bool found = false;
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
          if (*it == w) {
            queue_.erase(it);
            found = true;
            break;
          }
        }
        if (found) {
          outcome_[w] = Outcome::TimedOut;
          waiter_pc_[w] = WDone;
        } else {
          // Dequeued concurrently: the paper-extension protocol absorbs
          // the (possibly still pending) token and reports notified.
          waiter_pc_[w] = WMustConsume;
        }
        break;
      }
      case WMustConsume:
        --sem_[w];
        outcome_[w] = Outcome::Notified;
        waiter_pc_[w] = WDone;
        break;
      default:
        throw ModelViolation("waiter stepped when done");
    }
  }

  void step_notifier(std::size_t n) {
    switch (notifier_pc_[n]) {
      case NSelect:
        if (queue_.empty()) {  // lost notify
          notifier_pc_[n] = NDone;
          break;
        }
        notifier_victim_[n] = queue_.front();
        dequeued_[queue_.front()] = true;
        queue_.pop_front();
        notifier_pc_[n] = NPost;
        break;
      case NPost:
        ++sem_[notifier_victim_[n]];
        notifier_pc_[n] = NDone;
        break;
      default:
        throw ModelViolation("notifier stepped when done");
    }
  }

  [[noreturn]] void fail(const char* msg, std::size_t who) const {
    throw ModelViolation(std::string(msg) + " (waiter " +
                         std::to_string(who) + ")");
  }

  TimedModelConfig cfg_;
  std::deque<std::size_t> queue_;
  std::vector<int> sem_;
  std::vector<bool> dequeued_;
  std::vector<Outcome> outcome_;
  std::vector<int> waiter_pc_;
  std::vector<int> notifier_pc_;
  std::vector<std::size_t> notifier_victim_;
};

}  // namespace tmcv::sched
