#include "sched/explorer.h"

#include "util/rng.h"

namespace tmcv::sched {

namespace {

// Replay `prefix` from the initial state; returns false if a violation was
// recorded (result updated).
bool replay(Model& model, const std::vector<std::size_t>& prefix,
            ExploreResult& result) {
  model.reset();
  for (std::size_t p : prefix) {
    try {
      model.step(p);
      ++result.steps;
      model.check_invariants();
    } catch (const ModelViolation& v) {
      ++result.violations;
      if (result.first_error.empty()) {
        result.first_error = v.what();
        result.counterexample = prefix;
      }
      return false;
    }
  }
  return true;
}

struct Frontier {
  std::vector<std::size_t> enabled;
  std::size_t next = 0;
};

}  // namespace

ExploreResult explore_all(Model& model, std::size_t max_depth,
                          bool stop_on_first) {
  ExploreResult result;
  const std::size_t n = model.process_count();

  // Iterative DFS with replay: `schedule` is the current prefix; `stack`
  // remembers which enabled choices remain at each depth.
  std::vector<std::size_t> schedule;
  std::vector<Frontier> stack;

  auto compute_frontier = [&]() {
    Frontier f;
    for (std::size_t p = 0; p < n; ++p)
      if (!model.done(p) && model.enabled(p)) f.enabled.push_back(p);
    return f;
  };

  model.reset();
  stack.push_back(compute_frontier());

  while (!stack.empty()) {
    Frontier& top = stack.back();
    if (top.enabled.empty()) {
      // No enabled process: either a final state or a deadlock.
      bool all_done = true;
      for (std::size_t p = 0; p < n; ++p)
        if (!model.done(p)) all_done = false;
      ++result.schedules;
      if (!all_done) {
        ++result.deadlocks;
        if (result.first_error.empty()) {
          result.first_error = "deadlock: enabled set empty before all done";
          result.counterexample = schedule;
        }
        if (stop_on_first) return result;
      } else {
        try {
          model.check_final();
        } catch (const ModelViolation& v) {
          ++result.violations;
          if (result.first_error.empty()) {
            result.first_error = v.what();
            result.counterexample = schedule;
          }
          if (stop_on_first) return result;
        }
      }
      // Backtrack.
      stack.pop_back();
      if (!schedule.empty()) schedule.pop_back();
      if (!stack.empty() && !replay(model, schedule, result) && stop_on_first)
        return result;
      continue;
    }
    if (top.next >= top.enabled.size() || schedule.size() >= max_depth) {
      if (schedule.size() >= max_depth && top.next < top.enabled.size()) {
        // Depth bound hit: count as one truncated schedule.
        ++result.schedules;
      }
      stack.pop_back();
      if (!schedule.empty()) schedule.pop_back();
      if (!stack.empty() && !replay(model, schedule, result) && stop_on_first)
        return result;
      continue;
    }
    const std::size_t p = top.enabled[top.next++];
    schedule.push_back(p);
    try {
      model.step(p);
      ++result.steps;
      model.check_invariants();
    } catch (const ModelViolation& v) {
      ++result.violations;
      if (result.first_error.empty()) {
        result.first_error = v.what();
        result.counterexample = schedule;
      }
      if (stop_on_first) return result;
      schedule.pop_back();
      if (!replay(model, schedule, result) && stop_on_first) return result;
      continue;
    }
    stack.push_back(compute_frontier());
  }
  return result;
}

ExploreResult explore_random(Model& model, std::uint64_t schedules,
                             std::uint64_t seed, std::size_t max_steps) {
  ExploreResult result;
  Xoshiro256 rng(seed);
  const std::size_t n = model.process_count();
  std::vector<std::size_t> schedule;
  std::vector<std::size_t> enabled;

  for (std::uint64_t run = 0; run < schedules; ++run) {
    model.reset();
    schedule.clear();
    for (std::size_t s = 0; s < max_steps; ++s) {
      enabled.clear();
      for (std::size_t p = 0; p < n; ++p)
        if (!model.done(p) && model.enabled(p)) enabled.push_back(p);
      if (enabled.empty()) {
        bool all_done = true;
        for (std::size_t p = 0; p < n; ++p)
          if (!model.done(p)) all_done = false;
        if (!all_done) {
          ++result.deadlocks;
          if (result.first_error.empty()) {
            result.first_error = "deadlock in random exploration";
            result.counterexample = schedule;
          }
        } else {
          try {
            model.check_final();
          } catch (const ModelViolation& v) {
            ++result.violations;
            if (result.first_error.empty()) {
              result.first_error = v.what();
              result.counterexample = schedule;
            }
          }
        }
        break;
      }
      const std::size_t p = enabled[rng.next_below(enabled.size())];
      schedule.push_back(p);
      try {
        model.step(p);
        ++result.steps;
        model.check_invariants();
      } catch (const ModelViolation& v) {
        ++result.violations;
        if (result.first_error.empty()) {
          result.first_error = v.what();
          result.counterexample = schedule;
        }
        break;
      }
    }
    ++result.schedules;
    if (!result.ok()) break;
  }
  return result;
}

}  // namespace tmcv::sched
