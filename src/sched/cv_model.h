// Step-machine model of Algorithm 2 (the generic CondVar implementation),
// with each numbered line an atomic step, exactly as the paper's proofs
// assume.  The explorer checks Lemma 2's five invariants after every step
// and conservation properties in final states.
//
// Processes:
//   * Waiters run:  line1 (spin_p := true) ; line2 (Q := Q ∪ {p}) ;
//                   line3 (blocked until ¬spin_p, then return false).
//   * Notifiers run a fixed program of operations:
//       NotifyOne  = line4 (remove arbitrary x, set e) ; line5 (clear spin_x)
//       NotifyAll  = line6 (Q' := Q; Q := ∅) ; line7* (drain Q' one x per
//                    step, clearing spin_x)
//
// "Guarded" notifiers only fire when Q is nonempty, modeling predicate-
// guarded notification; with guards and enough notifications, the explorer
// proves deadlock freedom.  Unguarded notifiers model naked notifies, whose
// lost-wakeup schedules are semantically legal -- tests then disable the
// deadlock check and focus on the invariants.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/explorer.h"

namespace tmcv::sched {

enum class NotifyOp : std::uint8_t { One, All };

struct CvModelConfig {
  std::size_t waiters = 2;
  std::vector<NotifyOp> notifier_program;  // one notifier process per entry
  bool guarded_notify = true;  // notify steps wait for a nonempty Q
  // Minimum queue population before a guarded NotifyAll may start; lets
  // deadlock-freedom theorems like "one NotifyAll after all W waiters
  // enqueued frees everybody" be stated exactly.
  std::size_t notify_all_guard = 1;
};

class CvModel final : public Model {
 public:
  explicit CvModel(CvModelConfig config) : cfg_(std::move(config)) {
    reset();
  }

  void reset() override {
    const std::size_t w = cfg_.waiters;
    spin_.assign(w, false);
    in_q_.assign(w, false);
    waiter_pc_.assign(w, 1);
    notifier_pc_.assign(cfg_.notifier_program.size(), 0);
    e_.assign(cfg_.notifier_program.size(), false);
    x_.assign(cfg_.notifier_program.size(), kNone);
    q_prime_.assign(cfg_.notifier_program.size(),
                    std::vector<std::size_t>{});
    completed_waits_ = 0;
    completed_notifies_ = 0;
  }

  [[nodiscard]] std::size_t process_count() const override {
    return cfg_.waiters + cfg_.notifier_program.size();
  }

  [[nodiscard]] bool done(std::size_t p) const override {
    if (p < cfg_.waiters) return waiter_pc_[p] == kWaiterDone;
    return notifier_pc_[p - cfg_.waiters] == kNotifierDone;
  }

  [[nodiscard]] bool enabled(std::size_t p) const override {
    if (p < cfg_.waiters) {
      // Line 3 is enabled only when the flag has been cleared: the paper's
      // busy-wait is modeled as blocking (same reachable states, finite
      // schedules).
      if (waiter_pc_[p] == 3) return !spin_[p];
      return waiter_pc_[p] != kWaiterDone;
    }
    const std::size_t n = p - cfg_.waiters;
    if (notifier_pc_[n] == kNotifierDone) return false;
    if (cfg_.guarded_notify && at_op_start(n)) {
      const std::size_t need = cfg_.notifier_program[n] == NotifyOp::All
                                   ? cfg_.notify_all_guard
                                   : 1;
      if (queue_size() < need) return false;
    }
    return true;
  }

  void step(std::size_t p) override {
    if (p < cfg_.waiters)
      step_waiter(p);
    else
      step_notifier(p - cfg_.waiters);
  }

  void check_invariants() const override {
    // Lemma 2 (1): p@1 ==> !spin_p ; (2): p@2 ==> spin_p
    for (std::size_t p = 0; p < cfg_.waiters; ++p) {
      if (waiter_pc_[p] == 1 && spin_[p])
        fail("invariant 1: p@1 but spin_p set", p);
      if (waiter_pc_[p] == 2 && !spin_[p])
        fail("invariant 2: p@2 but spin_p clear", p);
      // Lemma 2 (3): p in Q ==> p@3 and spin_p
      if (in_q_[p] && (waiter_pc_[p] != 3 || !spin_[p]))
        fail("invariant 3: p in Q but not (p@3 and spin_p)", p);
    }
    for (std::size_t n = 0; n < cfg_.notifier_program.size(); ++n) {
      // Lemma 2 (4): p@5 and e ==> x@3 and spin_x
      if (notifier_pc_[n] == 5 && e_[n]) {
        const std::size_t x = x_[n];
        if (x == kNone || waiter_pc_[x] != 3 || !spin_[x])
          fail("invariant 4: p@5 with e but x not (x@3 and spin_x)", n);
      }
      // Lemma 2 (5): p@7 and x in Q' ==> x@3 and spin_x
      if (notifier_pc_[n] == 7) {
        for (std::size_t x : q_prime_[n])
          if (waiter_pc_[x] != 3 || !spin_[x])
            fail("invariant 5: p@7 with x in Q' but x not (x@3 and spin_x)",
                 n);
      }
    }
  }

  void check_final() const override {
    // Conservation: every completed wait was paired with exactly one wake
    // (Definition 1's no-spurious-wakeup, checked globally): a waiter can
    // only pass line 3 after some notifier cleared its flag, and flags are
    // cleared once per dequeue.
    if (completed_waits_ > completed_notifies_)
      throw ModelViolation("more completed waits than notifications");
  }

  [[nodiscard]] std::size_t completed_waits() const noexcept {
    return completed_waits_;
  }
  [[nodiscard]] std::size_t completed_notifies() const noexcept {
    return completed_notifies_;
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  static constexpr int kWaiterDone = 99;
  static constexpr int kNotifierDone = 99;

  [[nodiscard]] std::size_t queue_size() const noexcept {
    std::size_t n = 0;
    for (bool b : in_q_)
      if (b) ++n;
    return n;
  }

  // Whether notifier n's pc is at the first line of an operation.
  [[nodiscard]] bool at_op_start(std::size_t n) const noexcept {
    return notifier_pc_[n] == 0;
  }

  void step_waiter(std::size_t p) {
    switch (waiter_pc_[p]) {
      case 1:  // spin_p := true
        spin_[p] = true;
        waiter_pc_[p] = 2;
        break;
      case 2:  // Q := Q ∪ {p}
        in_q_[p] = true;
        waiter_pc_[p] = 3;
        break;
      case 3:  // observed ¬spin_p: WAITSTEP2 returns false
        ++completed_waits_;
        waiter_pc_[p] = kWaiterDone;
        break;
      default:
        throw ModelViolation("waiter stepped when done");
    }
  }

  void step_notifier(std::size_t n) {
    const NotifyOp op = cfg_.notifier_program[n];
    switch (notifier_pc_[n]) {
      case 0:
        if (op == NotifyOp::One) {
          // Line 4: remove an arbitrary x from Q if one exists.
          e_[n] = false;
          x_[n] = kNone;
          for (std::size_t p = 0; p < cfg_.waiters; ++p) {
            if (in_q_[p]) {
              in_q_[p] = false;
              e_[n] = true;
              x_[n] = p;
              break;
            }
          }
          notifier_pc_[n] = 5;
        } else {
          // Line 6: Q' := Q ; Q := ∅ (one atomic step).
          q_prime_[n].clear();
          for (std::size_t p = 0; p < cfg_.waiters; ++p) {
            if (in_q_[p]) {
              q_prime_[n].push_back(p);
              in_q_[p] = false;
            }
          }
          notifier_pc_[n] = 7;
        }
        break;
      case 5:  // Line 5: if e then spin_x := false
        if (e_[n]) {
          spin_[x_[n]] = false;
          ++completed_notifies_;
        }
        notifier_pc_[n] = kNotifierDone;
        break;
      case 7:  // Line 7: one iteration -- remove some x from Q', clear flag
        if (q_prime_[n].empty()) {
          notifier_pc_[n] = kNotifierDone;
        } else {
          const std::size_t x = q_prime_[n].back();
          q_prime_[n].pop_back();
          spin_[x] = false;
          ++completed_notifies_;
          if (q_prime_[n].empty()) notifier_pc_[n] = kNotifierDone;
        }
        break;
      default:
        throw ModelViolation("notifier stepped when done");
    }
  }

  [[noreturn]] void fail(const char* msg, std::size_t who) const {
    throw ModelViolation(std::string(msg) + " (process " +
                         std::to_string(who) + ")");
  }

  CvModelConfig cfg_;
  std::vector<bool> spin_;
  std::vector<bool> in_q_;
  std::vector<int> waiter_pc_;
  std::vector<int> notifier_pc_;
  std::vector<bool> e_;
  std::vector<std::size_t> x_;
  std::vector<std::vector<std::size_t>> q_prime_;
  std::size_t completed_waits_ = 0;
  std::size_t completed_notifies_ = 0;
};

}  // namespace tmcv::sched
