#include "sync/spin.h"

#include <cstdlib>
#include <cstring>

#include "util/cpu.h"

namespace tmcv {

namespace {

constexpr unsigned kDefaultSpinBudget = 16;

unsigned initial_spin_budget() noexcept {
  // TMCV_NO_SPIN set to anything but "0" forces pure park behavior: the
  // process behaves exactly like the pre-spin implementation, which is the
  // right call when the machine is oversubscribed or power-constrained.
  const char* no_spin = std::getenv("TMCV_NO_SPIN");
  const bool forced_off = no_spin != nullptr && std::strcmp(no_spin, "0") != 0;
  return default_spin_budget(effective_cpus(), forced_off);
}

std::atomic<unsigned>& spin_budget_word() noexcept {
  static std::atomic<unsigned> budget{initial_spin_budget()};
  return budget;
}

}  // namespace

unsigned default_spin_budget(unsigned cpus, bool no_spin) noexcept {
  if (no_spin) return 0;
  // One runnable CPU means the poster we would spin for cannot be executing
  // concurrently: every spin round is time stolen from it (the PR-4 1-core
  // pingpong regression).  Park immediately instead.
  if (cpus <= 1) return 0;
  return kDefaultSpinBudget;
}

void set_spin_budget(unsigned rounds) noexcept {
  spin_budget_word().store(rounds, std::memory_order_relaxed);
}

unsigned spin_budget() noexcept {
  return spin_budget_word().load(std::memory_order_relaxed);
}

namespace detail {

SpinControl& my_spin_control() noexcept {
  thread_local SpinControl ctl;
  return ctl;
}

}  // namespace detail

}  // namespace tmcv
