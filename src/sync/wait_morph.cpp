#include "sync/wait_morph.h"

#include <cstdint>

#include "sync/locks.h"
#include "sync/semaphore.h"
#include "sync/wake_stats.h"
#include "sync/waitpoint.h"

namespace tmcv {

namespace {

// Deferred waiters live in a sharded global table keyed by lock identity.
// 64 shards of one cache line each: the shard lock is held for a handful of
// pointer writes, and distinct locks almost never collide.  Collisions are
// correct anyway -- each MorphWaiter carries its key, and lookups match on
// it -- they just share a TasLock.
constexpr std::size_t kShards = 64;

struct Shard {
  TasLock lock;
  MorphWaiter* head = nullptr;
  MorphWaiter* tail = nullptr;
};

Shard& shard_for(const void* key) noexcept {
  static Shard shards[kShards];
  std::uintptr_t x = reinterpret_cast<std::uintptr_t>(key);
  x ^= x >> 4;  // lock objects are aligned; fold the dead low bits first
  x *= 0x9e3779b97f4a7c15ull;
  return shards[x >> (sizeof(x) * 8 - 6)];
}

std::atomic<bool> g_wait_morphing{true};

thread_local const void* t_lock_scope = nullptr;

}  // namespace

void set_wait_morphing(bool enabled) noexcept {
  g_wait_morphing.store(enabled, std::memory_order_relaxed);
}

bool wait_morphing() noexcept {
  return g_wait_morphing.load(std::memory_order_relaxed);
}

const void* current_lock_scope() noexcept { return t_lock_scope; }

WakeHandoffScope::WakeHandoffScope(const void* id) noexcept
    : prev_(t_lock_scope) {
  t_lock_scope = id;
}

WakeHandoffScope::~WakeHandoffScope() { t_lock_scope = prev_; }

void morph_requeue(const void* key, MorphWaiter* w) noexcept {
  // The key doubles as the waiter's "I am in a chain" marker: it is set
  // before the waiter is linked, stays set across the pop in
  // morph_advance, and is cleared only by the waiter itself in
  // morph_consume after wakeup.
  w->key.store(key, std::memory_order_relaxed);
  // Mirror the relay membership into the waiter's wait slot (if it is
  // mid-publish) so the wait-for graph can draw the chain edge.
  if (w->wslot != nullptr)
    w->wslot->relay_key.store(key, std::memory_order_release);
  w->next = nullptr;
  Shard& s = shard_for(key);
  s.lock.lock();
  if (s.tail != nullptr)
    s.tail->next = w;
  else
    s.head = w;
  s.tail = w;
  s.lock.unlock();
  detail::wake_counters().requeues.fetch_add(1, std::memory_order_relaxed);
}

bool morph_advance(const void* key) noexcept {
  Shard& s = shard_for(key);
  s.lock.lock();
  MorphWaiter* prev = nullptr;
  MorphWaiter* w = s.head;
  while (w != nullptr &&
         w->key.load(std::memory_order_relaxed) != key) {
    prev = w;
    w = w->next;
  }
  if (w != nullptr) {
    if (prev != nullptr)
      prev->next = w->next;
    else
      s.head = w->next;
    if (s.tail == w) s.tail = prev;
    w->next = nullptr;
  }
  s.lock.unlock();
  if (w == nullptr) return false;
  detail::wake_counters().handoffs.fetch_add(1, std::memory_order_relaxed);
  // Post outside the shard lock: post may futex_wake, and nothing about the
  // list depends on it.  w's key stays set so the woken waiter relays.
  w->sem->post();
  return true;
}

std::size_t morph_pending(const void* key) noexcept {
  Shard& s = shard_for(key);
  std::size_t n = 0;
  s.lock.lock();
  for (MorphWaiter* w = s.head; w != nullptr; w = w->next)
    if (w->key.load(std::memory_order_relaxed) == key) ++n;
  s.lock.unlock();
  return n;
}

}  // namespace tmcv
