// Process-wide counters for the block/wake path: the spin-then-park
// semaphore slow path and the wait-morphing notify handoff.
//
// These live at the sync layer (not obs/) because the semaphores themselves
// maintain them: they are always-on relaxed counters like tm::Stats and
// CondVarStats, not trace hooks, so they exist in TMCV_TRACE=OFF builds and
// cost one relaxed fetch_add on paths that already pay a syscall or a spin.
// The metrics registry (obs/metrics.h) folds them into its snapshot.
#pragma once

#include <atomic>
#include <cstdint>

namespace tmcv {

// Snapshot of the wake-path counters.  Same consistency model as
// CondVarStats: each field is an exact monotonic count at some instant
// during the snapshot call; cross-field invariants hold only at quiescence.
struct WakeStats {
  std::uint64_t spin_attempts = 0;  // slow-path waits that entered the spin
  std::uint64_t spin_rounds = 0;    // total backoff rounds across attempts
  std::uint64_t parks_avoided = 0;  // token arrived mid-spin: no futex_wait
  std::uint64_t parks = 0;          // waits that entered futex_wait
  std::uint64_t requeues = 0;       // notify victims deferred to a lock's
                                    // morph list instead of woken directly
  std::uint64_t handoffs = 0;       // morphed waiters posted by a chain
                                    // advance (one per lock reacquisition)

  // Visit every counter as (name, member pointer): single source of truth
  // for the arithmetic below and the metrics exporters.
  template <typename Fn>
  static constexpr void for_each_field(Fn&& fn) {
    fn("spin_attempts", &WakeStats::spin_attempts);
    fn("spin_rounds", &WakeStats::spin_rounds);
    fn("parks_avoided", &WakeStats::parks_avoided);
    fn("parks", &WakeStats::parks);
    fn("requeues", &WakeStats::requeues);
    fn("handoffs", &WakeStats::handoffs);
  }

  WakeStats& operator+=(const WakeStats& o) noexcept {
    for_each_field(
        [&](const char*, std::uint64_t WakeStats::*f) { this->*f += o.*f; });
    return *this;
  }

  WakeStats& operator-=(const WakeStats& o) noexcept {
    for_each_field(
        [&](const char*, std::uint64_t WakeStats::*f) { this->*f -= o.*f; });
    return *this;
  }
};

namespace detail {

// One cache line of process-wide relaxed atomics.  Mutations happen on slow
// paths only (a spin, a park, a morph requeue/advance), so a shared line is
// cheaper than per-thread slots plus a registry.
struct WakeCounters {
  std::atomic<std::uint64_t> spin_attempts{0};
  std::atomic<std::uint64_t> spin_rounds{0};
  std::atomic<std::uint64_t> parks_avoided{0};
  std::atomic<std::uint64_t> parks{0};
  std::atomic<std::uint64_t> requeues{0};
  std::atomic<std::uint64_t> handoffs{0};
};

inline WakeCounters& wake_counters() noexcept {
  static WakeCounters c;
  return c;
}

}  // namespace detail

[[nodiscard]] inline WakeStats wake_stats_snapshot() noexcept {
  detail::WakeCounters& c = detail::wake_counters();
  WakeStats s;
  s.spin_attempts = c.spin_attempts.load(std::memory_order_relaxed);
  s.spin_rounds = c.spin_rounds.load(std::memory_order_relaxed);
  s.parks_avoided = c.parks_avoided.load(std::memory_order_relaxed);
  s.parks = c.parks.load(std::memory_order_relaxed);
  s.requeues = c.requeues.load(std::memory_order_relaxed);
  s.handoffs = c.handoffs.load(std::memory_order_relaxed);
  return s;
}

// Benchmark support: zero the counters between phases (call at quiescence).
inline void wake_stats_reset() noexcept {
  detail::WakeCounters& c = detail::wake_counters();
  c.spin_attempts.store(0, std::memory_order_relaxed);
  c.spin_rounds.store(0, std::memory_order_relaxed);
  c.parks_avoided.store(0, std::memory_order_relaxed);
  c.parks.store(0, std::memory_order_relaxed);
  c.requeues.store(0, std::memory_order_relaxed);
  c.handoffs.store(0, std::memory_order_relaxed);
}

}  // namespace tmcv
