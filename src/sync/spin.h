// Adaptive spin-then-park policy for the semaphore slow path.
//
// Parking a thread costs two syscalls (FUTEX_WAIT + FUTEX_WAKE) plus the
// scheduler round trip; when the matching post() lands within a few hundred
// nanoseconds, a short spin is strictly cheaper.  When the wait is long --
// the common case for a condition-variable sleep -- spinning only burns CPU
// that the poster could have used.  So each thread keeps an exponentially-
// weighted history of whether its recent spins succeeded (token arrived
// mid-spin) and scales its budget accordingly, in the style of glibc's
// adaptive mutexes and WebKit/parking_lot's spin heuristics.
//
// Knobs:
//   set_spin_budget(n)  -- process-wide cap on Backoff rounds per wait
//                          (0 disables spinning entirely).
//   TMCV_NO_SPIN        -- env var; when set (to anything but "0"), forces
//                          the budget to 0 at startup.  Escape hatch for
//                          oversubscribed or power-sensitive deployments.
//
// Startup default: 16 rounds on multi-core, 0 when the process is confined
// to a single logical CPU (effective_cpus() == 1) -- a spinner there can
// only delay the poster it is waiting for, which is the documented PR-4
// single-core pingpong regression.  set_spin_budget() and TMCV_NO_SPIN
// both override the detection.
#pragma once

#include <atomic>
#include <cstdint>

#include "sync/wake_stats.h"
#include "util/backoff.h"

namespace tmcv {

// Process-wide maximum number of Backoff rounds a single wait may spin.
// Individual threads spin less when their history says parking is likely.
void set_spin_budget(unsigned rounds) noexcept;
[[nodiscard]] unsigned spin_budget() noexcept;

// The startup default for a given topology: 0 when `no_spin` (TMCV_NO_SPIN)
// is set or the process is confined to one CPU, 16 otherwise.  Exposed as a
// pure function so the single-core detection is unit-testable without
// faking the process affinity mask.
[[nodiscard]] unsigned default_spin_budget(unsigned cpus,
                                           bool no_spin) noexcept;

namespace detail {

// Per-thread spin success predictor.
//
// `ewma` is a fixed-point probability in [0, 256): roughly 256 * P(the next
// spin will obtain the token without parking).  Each outcome folds in as
//
//   ewma = ewma - ewma/8 + (success ? 32 : 0)
//
// i.e. a decay factor of 7/8 with a full-success impulse of 32, giving a
// fixed point of 256 on a success streak and 0 on a failure streak.  The
// effective budget is the global cap scaled by ewma/256, floored at one
// round so a thread stuck in park-always mode keeps probing and can recover
// when the workload turns ping-pongy.
struct SpinControl {
  std::uint32_t ewma = 128;  // start undecided: half the global budget

  [[nodiscard]] unsigned effective_rounds(unsigned max_rounds) const noexcept {
    if (max_rounds == 0) return 0;
    const unsigned scaled = max_rounds * ewma / 256;
    return scaled == 0 ? 1u : scaled;
  }

  void record(bool success) noexcept {
    ewma = ewma - ewma / 8 + (success ? 32u : 0u);
  }
};

[[nodiscard]] SpinControl& my_spin_control() noexcept;

}  // namespace detail

// Spin until `ready()` returns true or the thread's adaptive budget runs
// out.  Returns true when ready() became true (the caller may skip the
// park), false when the budget expired (the caller should futex_wait).
// Updates the calling thread's predictor and the process-wide WakeStats.
//
// `ready` must be safe to call repeatedly and must not block; it is the
// cheap "did my token arrive?" probe, e.g. a relaxed load of the semaphore
// word.  The Backoff escalates to sched_yield() after a few rounds, so the
// spin makes progress even on a single hardware thread.
template <typename ReadyFn>
[[nodiscard]] bool adaptive_spin(ReadyFn&& ready) noexcept {
  const unsigned max_rounds = spin_budget();
  if (max_rounds == 0) return false;

  detail::SpinControl& ctl = detail::my_spin_control();
  const unsigned rounds = ctl.effective_rounds(max_rounds);

  auto& counters = detail::wake_counters();
  counters.spin_attempts.fetch_add(1, std::memory_order_relaxed);

  Backoff backoff;
  bool got_token = false;
  unsigned spent = 0;
  for (; spent < rounds; ++spent) {
    if (ready()) {
      got_token = true;
      break;
    }
    backoff.wait();
  }

  counters.spin_rounds.fetch_add(spent, std::memory_order_relaxed);
  ctl.record(got_token);
  return got_token;
}

}  // namespace tmcv
