// Mutual-exclusion locks used as the "pthread locks" side of the paper's
// evaluation and as internal building blocks.
//
// All locks satisfy the C++ Lockable concept (lock/try_lock/unlock) so they
// compose with std::lock_guard / std::unique_lock, per CP.20.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "sync/futex.h"
#include "util/backoff.h"
#include "util/cacheline.h"

namespace tmcv {

// Test-and-test-and-set spinlock with exponential backoff.  Appropriate only
// for tiny critical sections (orec stripes); application-level sections use
// FutexLock or std::mutex.
class TasLock {
 public:
  TasLock() noexcept = default;
  TasLock(const TasLock&) = delete;
  TasLock& operator=(const TasLock&) = delete;

  void lock() noexcept {
    Backoff backoff;
    for (;;) {
      if (!locked_.load(std::memory_order_relaxed) &&
          !locked_.exchange(true, std::memory_order_acquire))
        return;
      backoff.wait();
    }
  }

  [[nodiscard]] bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  alignas(kCacheLine) std::atomic<bool> locked_{false};
};

// FIFO ticket lock.  Fair, but spin-waiting; yields when oversubscribed.
class TicketLock {
 public:
  TicketLock() noexcept = default;
  TicketLock(const TicketLock&) = delete;
  TicketLock& operator=(const TicketLock&) = delete;

  void lock() noexcept {
    const std::uint32_t ticket =
        next_.fetch_add(1, std::memory_order_relaxed);
    Backoff backoff;
    while (serving_.load(std::memory_order_acquire) != ticket)
      backoff.wait();
  }

  [[nodiscard]] bool try_lock() noexcept {
    std::uint32_t serving = serving_.load(std::memory_order_acquire);
    std::uint32_t expected = serving;
    return next_.compare_exchange_strong(expected, serving + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void unlock() noexcept {
    serving_.fetch_add(1, std::memory_order_release);
  }

 private:
  alignas(kCacheLine) std::atomic<std::uint32_t> next_{0};
  alignas(kCacheLine) std::atomic<std::uint32_t> serving_{0};
};

// MCS queue lock: each waiter spins on its own cache line.  Uses the
// scoped-node interface because MCS fundamentally needs a per-acquisition
// queue node.
class McsLock {
 public:
  struct Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<bool> locked{false};
  };

  McsLock() noexcept = default;
  McsLock(const McsLock&) = delete;
  McsLock& operator=(const McsLock&) = delete;

  void lock(Node& node) noexcept {
    node.next.store(nullptr, std::memory_order_relaxed);
    node.locked.store(true, std::memory_order_relaxed);
    Node* prev = tail_.exchange(&node, std::memory_order_acq_rel);
    if (prev != nullptr) {
      prev->next.store(&node, std::memory_order_release);
      Backoff backoff;
      while (node.locked.load(std::memory_order_acquire)) backoff.wait();
    }
  }

  void unlock(Node& node) noexcept {
    Node* succ = node.next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      Node* expected = &node;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed))
        return;
      Backoff backoff;
      while ((succ = node.next.load(std::memory_order_acquire)) == nullptr)
        backoff.wait();
    }
    succ->locked.store(false, std::memory_order_release);
  }

  // RAII adapter so McsLock composes with scoped usage.
  class Guard {
   public:
    explicit Guard(McsLock& lock) noexcept : lock_(lock) { lock_.lock(node_); }
    ~Guard() { lock_.unlock(node_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    McsLock& lock_;
    Node node_;
  };

 private:
  alignas(kCacheLine) std::atomic<Node*> tail_{nullptr};
};

// Futex-based blocking mutex (the classic three-state algorithm:
// 0 = unlocked, 1 = locked/no waiters, 2 = locked/maybe waiters).  This is
// our stand-in for a pthread mutex with full kernel-sleep semantics.
class FutexLock {
 public:
  FutexLock() noexcept = default;
  FutexLock(const FutexLock&) = delete;
  FutexLock& operator=(const FutexLock&) = delete;

  void lock() noexcept {
    std::uint32_t zero = 0;
    if (state_.compare_exchange_strong(zero, 1, std::memory_order_acquire,
                                       std::memory_order_relaxed))
      return;
    lock_slow();
  }

  [[nodiscard]] bool try_lock() noexcept {
    std::uint32_t zero = 0;
    return state_.compare_exchange_strong(zero, 1, std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void unlock() noexcept {
    if (state_.exchange(0, std::memory_order_release) == 2)
      futex_wake(&state_, 1);
  }

 private:
  void lock_slow() noexcept {
    // A bounded spin before sleeping wins when the holder is running; on an
    // oversubscribed machine the bound keeps us honest.
    for (int i = 0; i < 64; ++i) {
      std::uint32_t zero = 0;
      if (state_.compare_exchange_strong(zero, 1, std::memory_order_acquire,
                                         std::memory_order_relaxed))
        return;
      cpu_relax();
    }
    // Mark "maybe waiters" and sleep.
    while (state_.exchange(2, std::memory_order_acquire) != 0)
      futex_wait(&state_, 2);
  }

  alignas(kCacheLine) std::atomic<std::uint32_t> state_{0};
};

}  // namespace tmcv
