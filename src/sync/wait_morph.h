// Wait morphing for lock-based (facade) condition-variable use.
//
// A notify_all on the legacy facade wakes every waiter, and each woken
// thread immediately blocks again on the mutex the wait re-acquires -- the
// classic thundering herd: N futex wakes, N context switches, N-1 of which
// park right back on the lock.  Kernel condvars morph those waiters onto
// the mutex's wait queue (FUTEX_REQUEUE); our waiters sleep on per-thread
// semaphores, so we morph in user space instead: the notifier wakes ONE
// waiter and parks the rest on a per-lock deferred list.  Each woken waiter
// posts the next deferred waiter only after it has re-acquired the lock, so
// at most one notified waiter is runnable per lock at a time and the herd
// becomes a relay.
//
// The notifier declares "this notify happens under lock L" with a
// WakeHandoffScope; the scope is consulted only by the thread that entered
// it, so it is exact (no inference from lock state).  Waiters participate
// passively: every wait flavor carries a MorphWaiter node and, on wakeup,
// consumes its morph key (if any) at the point where it holds the lock
// again, advancing the chain.
//
// Token conservation (paper §3.3) is preserved: a notify of k waiters still
// produces exactly k semaphore posts -- one immediately, and k-1 one at a
// time as the chain advances.  Disabling morphing mid-flight is safe:
// set_wait_morphing(false) only stops NEW requeues; waiters already on a
// deferred list are drained by their predecessors, whose keys are set.
#pragma once

#include <atomic>
#include <cstddef>

namespace tmcv {

class BinarySemaphore;
struct WaitSlot;

// Intrusive node embedded in each condvar WaitNode.  `next` and `sem` are
// owned by the sharded deferred table (mutated only under a shard lock);
// `key` is written by the notifier before the waiter can run and consumed
// exactly once by the waiter after wakeup.  `wslot`, when set by the
// waiter, lets morph_requeue mirror the relay key into the wait-point
// registry so /waitgraph shows which deferred waiters ride which lock
// chain (advisory: cleared by the waiter's own WaitScope on wake).
struct MorphWaiter {
  MorphWaiter* next = nullptr;
  BinarySemaphore* sem = nullptr;
  WaitSlot* wslot = nullptr;
  std::atomic<const void*> key{nullptr};
};

// Process-wide switch (default on).  Gates only the requeue decision.
void set_wait_morphing(bool enabled) noexcept;
[[nodiscard]] bool wait_morphing() noexcept;

// Identity of the lock the calling thread has declared it holds for notify
// purposes, or nullptr.  Set/restored by WakeHandoffScope (scopes nest).
[[nodiscard]] const void* current_lock_scope() noexcept;

// RAII declaration that notifies issued by this thread inside the scope
// happen under the lock identified by `id` (canonically the mutex address).
// Cheap: two thread-local stores, no atomics.
class WakeHandoffScope {
 public:
  explicit WakeHandoffScope(const void* id) noexcept;
  template <typename Mutex>
  explicit WakeHandoffScope(const Mutex& m) noexcept
      : WakeHandoffScope(static_cast<const void*>(&m)) {}
  ~WakeHandoffScope();

  WakeHandoffScope(const WakeHandoffScope&) = delete;
  WakeHandoffScope& operator=(const WakeHandoffScope&) = delete;

 private:
  const void* prev_;
};

// Defer waking `w` (whose `sem` must be set) until a predecessor on lock
// `key` re-acquires and advances the chain.  Called by the notifier instead
// of posting w->sem.
void morph_requeue(const void* key, MorphWaiter* w) noexcept;

// Pop the oldest deferred waiter for `key` and post its semaphore.  Returns
// false when no waiter is deferred for that lock (chain exhausted).
bool morph_advance(const void* key) noexcept;

// Number of waiters currently deferred for `key` (test/diagnostic helper;
// exact only at quiescence).
[[nodiscard]] std::size_t morph_pending(const void* key) noexcept;

// Waiter-side wakeup hook: consume this waiter's morph key and, if it was
// part of a chain, advance it.  Must be called at a point where the waiter
// holds (or will not contend) the associated lock; calling it with no key
// set is a single relaxed exchange.
inline void morph_consume(MorphWaiter& w) noexcept {
  // The key was written before the semaphore post that woke us, so the
  // acquire in sem.wait() makes a relaxed read here sufficient.
  const void* key = w.key.exchange(nullptr, std::memory_order_relaxed);
  if (key != nullptr) morph_advance(key);
}

}  // namespace tmcv
