// User-space counting and binary semaphores built on futex.
//
// These are the `sem_t` stand-ins of the paper (Algorithm 3): each thread
// owns one binary semaphore; the condition variable queues references to
// them.  The fast path (uncontended post/wait) is a single atomic RMW and
// never enters the kernel; waiters sleep on a futex.
//
// Guarantee relied on by the condition-variable proofs: `wait()` returns only
// after a matching `post()` has consumed-nothing-else — i.e. the semaphore
// count is a conserved token count, so no spurious wakeups can propagate to
// the layer above.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "obs/hooks.h"
#include "sync/futex.h"
#include "sync/spin.h"
#include "sync/waitpoint.h"
#include "util/cacheline.h"

namespace tmcv {

// Counting semaphore.  value_ layout: the low 32 bits hold the count; a
// separate waiter count lets post() skip futex_wake when nobody sleeps.
class Semaphore {
 public:
  explicit Semaphore(std::uint32_t initial = 0) noexcept : count_(initial) {}

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  // Consume one token, blocking until one is available.
  void wait() noexcept {
    // Fast path: decrement a positive count.
    std::uint32_t c = count_.load(std::memory_order_relaxed);
    while (c > 0) {
      if (count_.compare_exchange_weak(c, c - 1, std::memory_order_acquire,
                                       std::memory_order_relaxed))
        return;
    }
    // Only the blocking path is traced: uncontended waits are the common
    // case and would flood the ring with zero-length events.
#if TMCV_TRACE
    const std::uint64_t t0 = obs::region_begin();
#endif
    wait_slow();
#if TMCV_TRACE
    obs::region_end(obs::Event::kSemWait, t0, nullptr);
#endif
  }

  // Try to consume one token without blocking.
  [[nodiscard]] bool try_wait() noexcept {
    std::uint32_t c = count_.load(std::memory_order_relaxed);
    while (c > 0) {
      if (count_.compare_exchange_weak(c, c - 1, std::memory_order_acquire,
                                       std::memory_order_relaxed))
        return true;
    }
    return false;
  }

  // Consume one token within `timeout_ns` nanoseconds; false on timeout.
  [[nodiscard]] bool wait_for(std::uint64_t timeout_ns) noexcept {
    if (try_wait()) return true;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::nanoseconds(timeout_ns);
    // Nested no-op when a condvar wait already published a richer scope.
    WaitScope wp(WaitReason::kSemaphore, this);
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    for (;;) {
      if (try_wait()) {
        waiters_.fetch_sub(1, std::memory_order_seq_cst);
        return true;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        waiters_.fetch_sub(1, std::memory_order_seq_cst);
        return try_wait();
      }
      const auto remaining = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(deadline -
                                                               now)
              .count());
      (void)futex_wait_for(&count_, 0, remaining);
    }
  }

  // Produce one token and wake a waiter if any.
  void post() noexcept {
    count_.fetch_add(1, std::memory_order_release);
    if (waiters_.load(std::memory_order_seq_cst) > 0)
      futex_wake(&count_, 1);
#if TMCV_TRACE
    obs::emit_instant(obs::Event::kSemPost);
#endif
  }

  // Produce `n` tokens (used by notify-all style wakeups on shared sems).
  void post(std::uint32_t n) noexcept {
    count_.fetch_add(n, std::memory_order_release);
    if (waiters_.load(std::memory_order_seq_cst) > 0)
      futex_wake(&count_, static_cast<int>(n));
  }

  [[nodiscard]] std::uint32_t value() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

 private:
  void wait_slow() noexcept {
    // Spin before registering as a waiter: a token that arrives mid-spin is
    // consumed without touching waiters_ at all, so the matching post()
    // skips its futex_wake too -- the whole exchange stays in user space.
#if TMCV_TRACE
    const std::uint64_t s0 = obs::region_begin();
#endif
    const bool spun = adaptive_spin([this]() noexcept {
      return count_.load(std::memory_order_relaxed) > 0;
    });
#if TMCV_TRACE
    if (spin_budget() != 0)
      obs::region_end(obs::Event::kSemSpin, s0, &obs::hist_spin_park());
#endif
    if (spun && try_wait()) {
      detail::wake_counters().parks_avoided.fetch_add(
          1, std::memory_order_relaxed);
      return;
    }
    detail::wake_counters().parks.fetch_add(1, std::memory_order_relaxed);
    // Publish the park into the wait-point registry (outermost scope wins:
    // under a condvar wait this is a nested no-op and the condvar's richer
    // reason/site stays visible).
    WaitScope wp(WaitReason::kSemaphore, this);
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    for (;;) {
      std::uint32_t c = count_.load(std::memory_order_relaxed);
      while (c > 0) {
        if (count_.compare_exchange_weak(c, c - 1, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          waiters_.fetch_sub(1, std::memory_order_seq_cst);
          return;
        }
      }
      futex_wait(&count_, 0);
    }
  }

  // Separate lines: posts touch count_ always but waiters_ only on the
  // contended path; keeping them apart avoids false sharing with the
  // adjacent thread's semaphore in the per-thread node pool.
  alignas(kCacheLine) std::atomic<std::uint32_t> count_;
  alignas(kCacheLine) std::atomic<std::uint32_t> waiters_{0};
};

// Binary semaphore: a Semaphore whose count is clamped to {0, 1}.  post() on
// an already-signaled binary semaphore is idempotent, which is the behaviour
// Algorithm 2's `spin` flags need if a thread can be notified at most once
// per wait (our condvar guarantees that, but the clamp keeps the primitive
// independently safe).
class BinarySemaphore {
 public:
  explicit BinarySemaphore(bool signaled = false) noexcept
      : state_(signaled ? 1u : 0u) {}

  BinarySemaphore(const BinarySemaphore&) = delete;
  BinarySemaphore& operator=(const BinarySemaphore&) = delete;

  void wait() noexcept {
    // Fast path: consume the token.
    std::uint32_t one = 1;
    if (state_.compare_exchange_strong(one, 0, std::memory_order_acquire,
                                       std::memory_order_relaxed))
      return;
#if TMCV_TRACE
    const std::uint64_t t0 = obs::region_begin();
#endif
    wait_slow();
#if TMCV_TRACE
    obs::region_end(obs::Event::kSemWait, t0, nullptr);
#endif
  }

  [[nodiscard]] bool try_wait() noexcept {
    std::uint32_t one = 1;
    return state_.compare_exchange_strong(one, 0, std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  // Consume the token within `timeout_ns` nanoseconds; false on timeout.
  // Used by the timed condition-variable waits: a post that raced the
  // timeout is NOT consumed here (the caller resolves the race against the
  // wait queue and calls wait() if it was in fact notified).
  [[nodiscard]] bool wait_for(std::uint64_t timeout_ns) noexcept {
    if (try_wait()) return true;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::nanoseconds(timeout_ns);
    WaitScope wp(WaitReason::kSemaphore, this);
    for (;;) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return try_wait();
      const auto remaining = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(deadline -
                                                               now)
              .count());
      (void)futex_wait_for(&state_, 0, remaining);
      if (try_wait()) return true;
    }
  }

  void post() noexcept {
    if (state_.exchange(1, std::memory_order_release) == 0)
      futex_wake(&state_, 1);
#if TMCV_TRACE
    obs::emit_instant(obs::Event::kSemPost);
#endif
  }

  // Batch-post over distinct semaphores: publish every token first, then
  // issue the futex wakes.  The TM wake batch uses this so a notify-all of
  // N waiters makes all tokens visible in one pass before any kernel work,
  // and wakes only the semaphores whose token was actually absent (a waiter
  // that raced in on its fast path costs no syscall at all).  Posting the
  // same semaphore twice in a batch is safe (post is idempotent).
  static void post_batch(BinarySemaphore* const* sems,
                         std::size_t n) noexcept {
#if TMCV_TRACE
    obs::emit_instant(obs::Event::kSemPostBatch,
                      static_cast<std::uint16_t>(n > 0xffff ? 0xffff : n));
#endif
    constexpr std::size_t kChunk = 64;
    for (std::size_t base = 0; base < n; base += kChunk) {
      const std::size_t m = n - base < kChunk ? n - base : kChunk;
      std::uint64_t need_wake = 0;
      for (std::size_t i = 0; i < m; ++i)
        if (sems[base + i]->state_.exchange(1, std::memory_order_release) ==
            0)
          need_wake |= 1ull << i;
      // Coalesce wakes that target the same futex word: a batch may list a
      // semaphore more than once (e.g. a waiter consumed its token and
      // re-waited between two exchanges above), and one futex_wake(addr, n)
      // is cheaper than n syscalls to the same address.
      for (std::size_t i = 0; i < m; ++i) {
        if (!(need_wake & (1ull << i))) continue;
        std::atomic<std::uint32_t>* addr = &sems[base + i]->state_;
        int wakes = 1;
        for (std::size_t j = i + 1; j < m; ++j) {
          if ((need_wake & (1ull << j)) && &sems[base + j]->state_ == addr) {
            need_wake &= ~(1ull << j);
            ++wakes;
          }
        }
        futex_wake(addr, wakes);
      }
    }
  }

  [[nodiscard]] bool signaled() const noexcept {
    return state_.load(std::memory_order_acquire) != 0;
  }

 private:
  void wait_slow() noexcept {
    // Adaptive spin-then-park: when the matching post() is imminent (the
    // ping-pong pattern the paper's per-thread semaphores produce under a
    // responsive notifier), a bounded spin picks up the token without the
    // FUTEX_WAIT/FUTEX_WAKE round trip.  The per-thread budget shrinks
    // toward one probe round when history says waits are long.
#if TMCV_TRACE
    const std::uint64_t s0 = obs::region_begin();
#endif
    const bool spun = adaptive_spin([this]() noexcept {
      return state_.load(std::memory_order_relaxed) != 0;
    });
#if TMCV_TRACE
    if (spin_budget() != 0)
      obs::region_end(obs::Event::kSemSpin, s0, &obs::hist_spin_park());
#endif
    if (spun && try_wait()) {
      detail::wake_counters().parks_avoided.fetch_add(
          1, std::memory_order_relaxed);
      return;
    }
    detail::wake_counters().parks.fetch_add(1, std::memory_order_relaxed);
    WaitScope wp(WaitReason::kSemaphore, this);
    for (;;) {
      std::uint32_t one = 1;
      if (state_.compare_exchange_strong(one, 0, std::memory_order_acquire,
                                         std::memory_order_relaxed))
        return;
      futex_wait(&state_, 0);
    }
  }

  alignas(kCacheLine) std::atomic<std::uint32_t> state_;
};

}  // namespace tmcv
