#include "sync/futex.h"

#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <ctime>

namespace tmcv {

namespace {

long sys_futex(const void* addr, int op, std::uint32_t val,
               const struct timespec* timeout = nullptr) noexcept {
  return syscall(SYS_futex, addr, op, val, timeout, nullptr, 0);
}

}  // namespace

void futex_wait(const std::atomic<std::uint32_t>* addr,
                std::uint32_t expected) noexcept {
  // FUTEX_WAIT_PRIVATE: this library never shares futex words across
  // processes, and the private flavor avoids the hash-global locks.
  sys_futex(addr, FUTEX_WAIT_PRIVATE, expected);
  // EINTR/EAGAIN are fine: the caller rechecks its predicate.
}

bool futex_wait_for(const std::atomic<std::uint32_t>* addr,
                    std::uint32_t expected,
                    std::uint64_t timeout_ns) noexcept {
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout_ns / 1000000000ull);
  ts.tv_nsec = static_cast<long>(timeout_ns % 1000000000ull);
  const long rc = sys_futex(addr, FUTEX_WAIT_PRIVATE, expected, &ts);
  return !(rc == -1 && errno == ETIMEDOUT);
}

int futex_wake(std::atomic<std::uint32_t>* addr, int count) noexcept {
  const long woken = sys_futex(
      addr, FUTEX_WAKE_PRIVATE,
      count < 0 ? static_cast<std::uint32_t>(INT_MAX)
                : static_cast<std::uint32_t>(count));
  return woken < 0 ? 0 : static_cast<int>(woken);
}

}  // namespace tmcv
