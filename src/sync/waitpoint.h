// Wait-point registry: one fixed cacheline-aligned slot per thread that
// every blocking path publishes into before parking and clears on wake, so
// "what is thread 7 waiting on, and for how long?" is answerable live
// instead of only statistically (park counts, latency histograms).
//
// Layering: like wake_stats.h this is sync-layer and ALWAYS ON -- plain
// atomics, no obs/ includes, no allocation, so the TMCV_TRACE=OFF build
// keeps its zero-obs-symbol guarantee and the publish cost stays cheap
// enough (a handful of plain stores around a path that already pays a
// futex syscall) to leave enabled in production.  The obs layer
// (obs/waitgraph.h) reads these slots to build the wait-for graph, the
// stall-attribution table exporters, and the stuck-thread heuristic.
//
// Publish protocol: each slot is a single-writer seqlock.  The owning
// thread stores the payload fields (target, packed reason/site/detail)
// relaxed, then release-stores `seq = (start_ticks << 1) | 1`.  On wake it
// release-stores `seq = 0` and folds the measured ticks into the global
// stall table.  A snapshotter accepts a slot iff it reads the same odd seq
// before and after the payload -- so a torn read is impossible and every
// accepted entry carries an exact TSC start.  The odd seq value doubles as
// a per-park episode id (TSC starts are unique per thread park).
//
// Stall-table exactness: the (reason x site) cells and the grand total are
// fed from the same measured delta inside a writer-counted version-stamped
// section, and snapshot_stall() retries until it observes a quiescent
// version -- so `sum(cells) == total` holds exactly for every accepted
// snapshot, not just at quiescence (house style: exact or absent).  The
// table is striped by wait-slot index so concurrent wakers (a notify-all
// herd) never contend on a cache line; each stripe carries its own ledger
// pair and the snapshot sums per-stripe-exact copies, which preserves the
// invariant.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/timing.h"

namespace tmcv {

// Why a thread is off-CPU.  Order is part of the export ABI (stall-table
// rows and the time-series top-reason field index into it); append only.
enum class WaitReason : std::uint8_t {
  kNone = 0,        // slot idle
  kCondVar,         // parked in CondVar::wait / wait_for / wait_at_commit
  kSemaphore,       // raw semaphore park outside any condvar wait
  kOrec,            // polite wait for a locked orec stripe
  kSerialQuiesce,   // serial-mode entry draining an active transaction
  kSerialLock,      // waiting for the serial lock itself to be released
  kAdaptiveSleep,   // adaptive-backend controller between policy windows
};
inline constexpr std::uint32_t kWaitReasonCount = 7;

[[nodiscard]] const char* wait_reason_name(WaitReason r) noexcept;

// Fixed capacity, mirroring tm::kMaxThreads: slots are claimed on first
// park (or at TM registration) and recycled through a free list at thread
// exit, so long-running servers never exhaust them.
inline constexpr std::uint32_t kMaxWaitSlots = 512;

// Site dimension of the stall table: matches obs::kMaxSites so an interned
// site id indexes directly.  Site 0 is "unattributed" (always true with
// TMCV_TRACE=OFF, where txn_site() is compiled to 0).
inline constexpr std::uint32_t kStallSiteSlots = 256;

// reason(8) | site(16) | detail(32), packed so one relaxed store publishes
// all three.  `detail` is reason-specific: orec -> stripe index and the
// owner's registry slot is re-derivable from the stripe; serial quiesce ->
// the registry slot being drained; condvar -> the waiter's own txn site is
// already in `site` and detail is unused.
[[nodiscard]] constexpr std::uint64_t pack_wait_info(
    WaitReason reason, std::uint16_t site, std::uint32_t detail) noexcept {
  return (static_cast<std::uint64_t>(reason) << 48) |
         (static_cast<std::uint64_t>(site) << 32) |
         static_cast<std::uint64_t>(detail);
}
[[nodiscard]] constexpr WaitReason wait_info_reason(std::uint64_t w) noexcept {
  return static_cast<WaitReason>((w >> 48) & 0xff);
}
[[nodiscard]] constexpr std::uint16_t wait_info_site(std::uint64_t w) noexcept {
  return static_cast<std::uint16_t>((w >> 32) & 0xffff);
}
[[nodiscard]] constexpr std::uint32_t wait_info_detail(
    std::uint64_t w) noexcept {
  return static_cast<std::uint32_t>(w);
}

struct alignas(64) WaitSlot {
  // (start_ticks << 1) | 1 while parked, 0 while running.  The seqlock
  // word AND the wait-start timestamp AND the episode id, all in one.
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> info{0};  // pack_wait_info while parked
  std::atomic<const void*> target{nullptr};     // reason-specific identity
  std::atomic<const void*> relay_key{nullptr};  // wait-morph chain, if any
  std::atomic<std::uint32_t> os_tid{0};         // stamped once at claim
  std::atomic<std::uint32_t> tm_slot{0xffffffffu};  // registry slot, if TM
};
static_assert(sizeof(WaitSlot) == 64, "one cache line per thread");

namespace detail {

// The process-global slot array (index < wait_slot_high_water() are the
// slots ever claimed).  Exposed for the obs-layer snapshotter.
[[nodiscard]] WaitSlot* wait_slots() noexcept;

// Claim/release back a slot (mutex + free list; claim stamps os_tid).
// Returns nullptr only if kMaxWaitSlots threads are simultaneously live.
[[nodiscard]] WaitSlot* claim_wait_slot() noexcept;
void release_wait_slot(WaitSlot* s) noexcept;

struct WaitSlotOwner {
  WaitSlot* slot = nullptr;
  ~WaitSlotOwner() {
    if (slot != nullptr) release_wait_slot(slot);
  }
};

// Nesting depth: a condvar wait parks through a semaphore whose own slow
// path would otherwise overwrite the richer outer publish; only the
// outermost WaitScope on a thread owns the slot.
inline thread_local int t_wait_depth = 0;

}  // namespace detail

// This thread's slot, claimed on first use and recycled at thread exit.
[[nodiscard]] inline WaitSlot* my_wait_slot() noexcept {
  thread_local detail::WaitSlotOwner owner;
  if (owner.slot == nullptr) owner.slot = detail::claim_wait_slot();
  return owner.slot;
}

// One past the highest slot index ever claimed (snapshot scan bound).
[[nodiscard]] std::uint32_t wait_slot_high_water() noexcept;

// Stamp the TM registry slot into this thread's wait slot (called by the
// TM registry at thread registration) so waitgraph edges can resolve an
// orec owner's registry slot to an OS thread id.  Unbind at unregister.
void waitpoint_bind_tm_slot(std::uint32_t tm_slot) noexcept;
void waitpoint_unbind_tm_slot() noexcept;

// Runtime kill switch.  Default ON -- it exists so the herd benchmark can
// A/B the publish cost in one process; it is not a production knob.
[[nodiscard]] bool waitpoints_enabled() noexcept;
void set_waitpoints_enabled(bool on) noexcept;

// ---------------------------------------------------------------------------
// Stall attribution: off-CPU park time by (reason x site), in TSC ticks.
// ---------------------------------------------------------------------------

// Copy the (reason x site) cells and return the grand total, all from one
// writer-quiescent version.  The total is maintained independently of the
// cells (both are fed the same delta per park), so `sum(cells) == return`
// is a real two-ledger invariant, asserted in tests, trace_report
// --validate, and CI.  `cells` must be a
// [kWaitReasonCount][kStallSiteSlots] array.  Allocation-free.
[[nodiscard]] std::uint64_t snapshot_stall(
    std::uint64_t (*cells)[kStallSiteSlots]) noexcept;

// Reset the stall table (benchmark A/B hygiene; tests).
void reset_stall_table() noexcept;

// ---------------------------------------------------------------------------
// WaitScope: the publish/clear RAII every park path wraps itself in.
// ---------------------------------------------------------------------------

class WaitScope {
 public:
  WaitScope(WaitReason reason, const void* target, std::uint16_t site = 0,
            std::uint32_t detail = 0) noexcept {
    // Outermost scope on this thread wins; nested scopes are inert so the
    // condvar's publish is not clobbered by its semaphore's.
    if (detail::t_wait_depth++ != 0 || !waitpoints_enabled()) return;
    slot_ = my_wait_slot();
    if (slot_ == nullptr) return;  // all kMaxWaitSlots live: degrade silently
    info_ = pack_wait_info(reason, site, detail);
    start_ = TscClock::now();
    slot_->target.store(target, std::memory_order_relaxed);
    slot_->info.store(info_, std::memory_order_relaxed);
    slot_->seq.store((start_ << 1) | 1ull, std::memory_order_release);
  }

  ~WaitScope() noexcept {
    --detail::t_wait_depth;
    if (slot_ == nullptr) return;
    const std::uint64_t delta = TscClock::now() - start_;
    slot_->relay_key.store(nullptr, std::memory_order_relaxed);
    slot_->seq.store(0, std::memory_order_release);
    accumulate_stall(
        info_, delta,
        static_cast<std::uint32_t>(slot_ - detail::wait_slots()));
  }

  // The slot being published through this scope (nullptr when inert);
  // condvar waits hand this to morph_requeue so relay hops are visible.
  [[nodiscard]] WaitSlot* slot() const noexcept { return slot_; }

  WaitScope(const WaitScope&) = delete;
  WaitScope& operator=(const WaitScope&) = delete;

 private:
  static void accumulate_stall(std::uint64_t info, std::uint64_t delta_ticks,
                               std::uint32_t slot_index) noexcept;

  WaitSlot* slot_ = nullptr;
  std::uint64_t info_ = 0;
  std::uint64_t start_ = 0;
};

}  // namespace tmcv
