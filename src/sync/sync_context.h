// The `Sync` abstraction of Algorithm 4: an abstract description of the
// synchronization context a thread holds when it calls WAIT.
//
// A SyncContext knows how to *complete* the enclosing synchronized block
// (ENDSYNCBLOCK — release every lock, or commit the active transaction) and
// how to *re-instantiate* an equivalent block for the continuation
// (BEGINSYNCBLOCK — re-acquire the locks outermost-first, or begin a new
// transaction at the saved nesting depth).
//
// Lock-based contexts live here; the transactional context is provided by
// the TM runtime (tm/txn_sync.h) so this header stays dependency-free.
#pragma once

#include <cstddef>

#include "util/assert.h"

namespace tmcv {

class SyncContext {
 public:
  virtual ~SyncContext() = default;

  // Complete the enclosing synchronized block (WAIT line 9).
  virtual void end_block() = 0;

  // Re-instantiate the synchronization for the continuation (WAIT line 11).
  virtual void begin_block() = 0;

  // True when the context is a (software or hardware) transaction.  The
  // condition variable uses this to decide whether its internal queue
  // operations can piggyback on the ambient transaction (flat nesting) or
  // must open their own.
  [[nodiscard]] virtual bool is_transactional() const noexcept = 0;
};

// Type-erased reference to any Lockable (std::mutex, FutexLock, TasLock...).
// Small enough to pass by value; never owns the lock.
class LockRef {
 public:
  template <typename Lockable>
  static LockRef of(Lockable& lock) noexcept {
    return LockRef(&lock,
                   [](void* l) { static_cast<Lockable*>(l)->lock(); },
                   [](void* l) { static_cast<Lockable*>(l)->unlock(); });
  }

  void lock() const { lock_fn_(obj_); }
  void unlock() const { unlock_fn_(obj_); }

  [[nodiscard]] const void* id() const noexcept { return obj_; }

 private:
  using Op = void (*)(void*);

  LockRef(void* obj, Op lock_fn, Op unlock_fn) noexcept
      : obj_(obj), lock_fn_(lock_fn), unlock_fn_(unlock_fn) {}

  void* obj_;
  Op lock_fn_;
  Op unlock_fn_;
};

// A critical section protected by one or more locks, held by the caller at
// the time of WAIT.  Locks must be listed outermost first; end_block releases
// them innermost-first and begin_block re-acquires outermost-first (§4.1,
// following Wettstein's treatment of nested monitor calls).
class LockSync final : public SyncContext {
 public:
  static constexpr std::size_t kMaxLocks = 8;

  LockSync() noexcept = default;

  explicit LockSync(LockRef lock) noexcept { push(lock); }

  template <typename Lockable>
  explicit LockSync(Lockable& lock) noexcept {
    push(LockRef::of(lock));
  }

  void push(LockRef lock) noexcept {
    TMCV_ASSERT_MSG(count_ < kMaxLocks, "too many nested locks in LockSync");
    locks_[count_++] = lock;
  }

  void end_block() override {
    for (std::size_t i = count_; i > 0; --i) locks_[i - 1]->unlock();
  }

  void begin_block() override {
    for (std::size_t i = 0; i < count_; ++i) locks_[i]->lock();
  }

  [[nodiscard]] bool is_transactional() const noexcept override {
    return false;
  }

  [[nodiscard]] std::size_t lock_count() const noexcept { return count_; }

 private:
  // Storage without default-constructibility requirements on LockRef.
  struct Slot {
    alignas(LockRef) unsigned char bytes[sizeof(LockRef)];
    LockRef* operator->() noexcept {
      return reinterpret_cast<LockRef*>(bytes);
    }
    Slot& operator=(LockRef ref) noexcept {
      new (bytes) LockRef(ref);
      return *this;
    }
  };

  Slot locks_[kMaxLocks];
  std::size_t count_ = 0;
};

// The "naked" context: WAIT from unsynchronized code.  Permitted by the
// algorithm (the internal transaction still protects the queue) but exposed
// mostly for testing; see §4 for why production code should not do this.
class NoSync final : public SyncContext {
 public:
  void end_block() override {}
  void begin_block() override {}
  [[nodiscard]] bool is_transactional() const noexcept override {
    return false;
  }
};

}  // namespace tmcv
