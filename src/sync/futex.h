// Thin wrapper over the Linux futex syscall.
//
// All blocking in this library ultimately funnels through these two calls:
// the semaphores in semaphore.h use them to sleep waiters and wake them from
// notifiers.  Keeping the wrapper minimal (no timeouts on the fast path, no
// requeue) makes the correctness argument for the condition-variable
// algorithm small.
#pragma once

#include <atomic>
#include <cstdint>

namespace tmcv {

// Block the calling thread while `*addr == expected`.
// Returns immediately if the value already differs.  Spurious returns are
// possible at THIS layer (EINTR); the semaphore layer absorbs them so that
// the condition variable built on top is spurious-wakeup-free.
void futex_wait(const std::atomic<std::uint32_t>* addr,
                std::uint32_t expected) noexcept;

// As futex_wait, but give up after `timeout_ns` nanoseconds.  Returns false
// on timeout, true otherwise (woken, value mismatch, or EINTR -- callers
// recheck their predicate either way).
bool futex_wait_for(const std::atomic<std::uint32_t>* addr,
                    std::uint32_t expected,
                    std::uint64_t timeout_ns) noexcept;

// Wake up to `count` threads blocked in futex_wait on `addr`.
// Returns the number of threads actually woken.
//
// Takes a non-const pointer deliberately: FUTEX_WAKE is the write side of
// the protocol (it pairs with a store to *addr that the caller just made),
// and a const-qualified signature would let a wake slip into read-only
// paths where no such store happened.
int futex_wake(std::atomic<std::uint32_t>* addr, int count) noexcept;

}  // namespace tmcv
