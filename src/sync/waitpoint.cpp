// Wait-point registry implementation: slot claim/recycle, the stall table
// with its writer-counted exact snapshot, and the OS thread id stamp.
#include "sync/waitpoint.h"

#include <mutex>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#elif defined(__APPLE__)
#include <pthread.h>
#endif

namespace tmcv {

namespace {

std::uint32_t os_thread_id() noexcept {
#if defined(__linux__)
  return static_cast<std::uint32_t>(::syscall(SYS_gettid));
#elif defined(__APPLE__)
  std::uint64_t tid = 0;
  pthread_threadid_np(nullptr, &tid);
  return static_cast<std::uint32_t>(tid);
#else
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t mine = next.fetch_add(1);
  return mine;
#endif
}

// The table is striped by wait-slot index: the write path of a notify-all
// herd is eight threads folding their deltas at the same instant, and a
// single shared ledger would serialize them on its cache lines.  Each
// stripe is its own writer-counted version-stamped ledger pair, so the
// per-stripe copies the snapshot sums are each exact -- summing exact
// stripes keeps `sum(cells) == total` exact end to end.
inline constexpr std::uint32_t kStallStripes = 8;

struct alignas(64) StallStripe {
  std::atomic<std::uint64_t> cells[kWaitReasonCount][kStallSiteSlots];
  std::atomic<std::uint64_t> total{0};
  // Multi-writer seqlock, packed into one word to halve the write-side
  // RMWs (the wake path pays them): low 32 bits count in-flight writers,
  // high 32 bits version completed adds.  Enter is +1; exit is
  // +(1<<32)-1, which decrements the writer count and bumps the version
  // in a single RMW.  A reader that loads writers==0 and then re-loads
  // the SAME word after its copy observed a quiescent stripe.
  std::atomic<std::uint64_t> state{0};
};
inline constexpr std::uint64_t kStripeWriterIn = 1;
inline constexpr std::uint64_t kStripeWriterOut = (1ull << 32) - 1;

struct StallTable {
  StallStripe stripes[kStallStripes];
};

struct SlotRegistry {
  WaitSlot slots[kMaxWaitSlots];
  std::mutex mu;
  std::uint32_t free_list[kMaxWaitSlots];  // indices, LIFO
  std::uint32_t free_count = 0;
  std::atomic<std::uint32_t> high_water{0};
};

SlotRegistry& slot_registry() noexcept {
  static SlotRegistry reg;
  return reg;
}

StallTable& stall_table() noexcept {
  static StallTable table;
  return table;
}

std::atomic<bool> g_waitpoints_enabled{true};

}  // namespace

const char* wait_reason_name(WaitReason r) noexcept {
  switch (r) {
    case WaitReason::kNone:
      return "none";
    case WaitReason::kCondVar:
      return "condvar";
    case WaitReason::kSemaphore:
      return "semaphore";
    case WaitReason::kOrec:
      return "orec";
    case WaitReason::kSerialQuiesce:
      return "serial_quiesce";
    case WaitReason::kSerialLock:
      return "serial_lock";
    case WaitReason::kAdaptiveSleep:
      return "adaptive_sleep";
  }
  return "unknown";
}

namespace detail {

WaitSlot* wait_slots() noexcept { return slot_registry().slots; }

WaitSlot* claim_wait_slot() noexcept {
  SlotRegistry& reg = slot_registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  std::uint32_t idx;
  if (reg.free_count > 0) {
    idx = reg.free_list[--reg.free_count];
  } else {
    idx = reg.high_water.load(std::memory_order_relaxed);
    if (idx >= kMaxWaitSlots) return nullptr;
    reg.high_water.store(idx + 1, std::memory_order_release);
  }
  WaitSlot& s = reg.slots[idx];
  s.seq.store(0, std::memory_order_relaxed);
  s.info.store(0, std::memory_order_relaxed);
  s.target.store(nullptr, std::memory_order_relaxed);
  s.relay_key.store(nullptr, std::memory_order_relaxed);
  s.tm_slot.store(0xffffffffu, std::memory_order_relaxed);
  s.os_tid.store(os_thread_id(), std::memory_order_release);
  return &s;
}

void release_wait_slot(WaitSlot* s) noexcept {
  SlotRegistry& reg = slot_registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  s->seq.store(0, std::memory_order_relaxed);
  s->info.store(0, std::memory_order_relaxed);
  s->target.store(nullptr, std::memory_order_relaxed);
  s->relay_key.store(nullptr, std::memory_order_relaxed);
  s->tm_slot.store(0xffffffffu, std::memory_order_relaxed);
  s->os_tid.store(0, std::memory_order_release);
  reg.free_list[reg.free_count++] =
      static_cast<std::uint32_t>(s - reg.slots);
}

}  // namespace detail

std::uint32_t wait_slot_high_water() noexcept {
  return slot_registry().high_water.load(std::memory_order_acquire);
}

void waitpoint_bind_tm_slot(std::uint32_t tm_slot) noexcept {
  WaitSlot* s = my_wait_slot();
  if (s != nullptr) s->tm_slot.store(tm_slot, std::memory_order_release);
}

void waitpoint_unbind_tm_slot() noexcept {
  WaitSlot* s = my_wait_slot();
  if (s != nullptr) s->tm_slot.store(0xffffffffu, std::memory_order_release);
}

bool waitpoints_enabled() noexcept {
  return g_waitpoints_enabled.load(std::memory_order_relaxed);
}

void set_waitpoints_enabled(bool on) noexcept {
  g_waitpoints_enabled.store(on, std::memory_order_relaxed);
}

void WaitScope::accumulate_stall(std::uint64_t info,
                                 std::uint64_t delta_ticks,
                                 std::uint32_t slot_index) noexcept {
  StallStripe& t =
      stall_table().stripes[slot_index & (kStallStripes - 1)];
  const auto reason = static_cast<std::uint32_t>(wait_info_reason(info));
  std::uint32_t site = wait_info_site(info);
  if (reason >= kWaitReasonCount) return;
  if (site >= kStallSiteSlots) site = 0;  // foreign id: fold to unattributed
  t.state.fetch_add(kStripeWriterIn, std::memory_order_acq_rel);
  t.cells[reason][site].fetch_add(delta_ticks, std::memory_order_relaxed);
  t.total.fetch_add(delta_ticks, std::memory_order_relaxed);
  t.state.fetch_add(kStripeWriterOut, std::memory_order_acq_rel);
}

namespace {

// Copy one stripe's cells INTO the accumulating output and return its
// total, all from one writer-quiescent version of that stripe.
std::uint64_t snapshot_stripe(StallStripe& t,
                              std::uint64_t (*cells)[kStallSiteSlots],
                              bool add) noexcept {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const std::uint64_t s1 = t.state.load(std::memory_order_acquire);
    if ((s1 & 0xffffffffull) != 0) continue;  // an add is in flight
    std::uint64_t copy[kWaitReasonCount][kStallSiteSlots];
    for (std::uint32_t r = 0; r < kWaitReasonCount; ++r)
      for (std::uint32_t s = 0; s < kStallSiteSlots; ++s)
        copy[r][s] = t.cells[r][s].load(std::memory_order_relaxed);
    const std::uint64_t total = t.total.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (t.state.load(std::memory_order_acquire) == s1) {
      for (std::uint32_t r = 0; r < kWaitReasonCount; ++r)
        for (std::uint32_t s = 0; s < kStallSiteSlots; ++s)
          cells[r][s] = (add ? cells[r][s] : 0) + copy[r][s];
      return total;  // independently maintained, == sum(copy) at v1
    }
  }
  // Pathological churn: fold in a last read and return ITS sum, keeping
  // "cells sum to total" true from the caller's point of view.
  std::uint64_t sum = 0;
  for (std::uint32_t r = 0; r < kWaitReasonCount; ++r)
    for (std::uint32_t s = 0; s < kStallSiteSlots; ++s) {
      const std::uint64_t v = t.cells[r][s].load(std::memory_order_relaxed);
      cells[r][s] = (add ? cells[r][s] : 0) + v;
      sum += v;
    }
  return sum;
}

}  // namespace

std::uint64_t snapshot_stall(
    std::uint64_t (*cells)[kStallSiteSlots]) noexcept {
  StallTable& t = stall_table();
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < kStallStripes; ++i)
    total += snapshot_stripe(t.stripes[i], cells, /*add=*/i != 0);
  return total;
}

void reset_stall_table() noexcept {
  for (std::uint32_t i = 0; i < kStallStripes; ++i) {
    StallStripe& t = stall_table().stripes[i];
    t.state.fetch_add(kStripeWriterIn, std::memory_order_acq_rel);
    for (std::uint32_t r = 0; r < kWaitReasonCount; ++r)
      for (std::uint32_t s = 0; s < kStallSiteSlots; ++s)
        t.cells[r][s].store(0, std::memory_order_relaxed);
    t.total.store(0, std::memory_order_relaxed);
    t.state.fetch_add(kStripeWriterOut, std::memory_order_acq_rel);
  }
}

}  // namespace tmcv
