#!/usr/bin/env python3
"""tmcv-top: live terminal console for a running tmcv telemetry endpoint.

Polls `/metrics.json`, `/history.json`, `/alerts`, and `/waitgraph` from
the in-process telemetry server (start one with `--serve-metrics`, plus
`--history` / `--watchdog` for the time-series and alert panes) and renders
a top-style dashboard: headline rates, sparklines over the recorder window,
a thread pane of parked threads from the wait-point registry (oldest waiter
first and highlighted -- the lost-wakeup victim reads straight off the
screen), the top conflict pairs from abort attribution, and any firing
watchdog alerts.

    tools/tmcv_top.py 9464                    # port on localhost
    tools/tmcv_top.py 127.0.0.1:9464          # host:port
    tools/tmcv_top.py http://127.0.0.1:9464   # full URL
    tools/tmcv_top.py 9464 --once             # one plain-text frame (no curses)
    tools/tmcv_top.py --self-test             # stdlib-only fixture suite

Keys in the live view: `q` quits.  The frame builder is a pure function of
the three JSON documents, so `--once` (CI/smoke friendly) and the curses
loop render identically.  Only the standard library is used; curses is
imported lazily so `--once` and `--self-test` work on builds without it.
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

SPARK_CHARS = "▁▂▃▄▅▆▇█"


def fetch_json(base, path, timeout=2.0):
    """GET base+path, parse JSON.  Returns None on any error: the console
    keeps rendering with whatever panes it can still populate."""
    try:
        with urllib.request.urlopen(base + path, timeout=timeout) as r:
            return json.loads(r.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError):
        return None


def normalize_target(target):
    """Accept PORT, HOST:PORT, or a full http URL; return the base URL."""
    if target.startswith("http://") or target.startswith("https://"):
        return target.rstrip("/")
    if target.isdigit():
        return "http://127.0.0.1:%s" % target
    return "http://" + target.rstrip("/")


def sparkline(values, width):
    """Render the last `width` values as a block-character sparkline,
    scaled to the window's own min..max (flat series render low, not
    blank, so 'steady at 1M/s' and 'dead' look different)."""
    values = [float(v) for v in values][-width:]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= 0:
        return SPARK_CHARS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        frac = 1.0 if span == 0 else (v - lo) / span
        out.append(SPARK_CHARS[min(7, int(frac * 8))])
    return "".join(out)


def fmt_si(value):
    """1234567 -> '1.23M'; keeps rate columns narrow."""
    value = float(value)
    for factor, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= factor:
            return "%.2f%s" % (value / factor, suffix)
    if value == int(value):
        return "%d" % int(value)
    return "%.2f" % value


def fmt_ns(ns):
    ns = float(ns)
    if ns >= 1e6:
        return "%.2fms" % (ns / 1e6)
    if ns >= 1e3:
        return "%.1fus" % (ns / 1e3)
    return "%dns" % int(ns)


def series(history, key):
    if not history:
        return []
    return [s.get(key, 0) for s in history.get("samples", [])]


def backend_abort_rows(metrics):
    """Flatten tm.aborts_by_backend into [(backend, total, breakdown)] rows,
    non-zero only, sorted by total descending.  breakdown is a 'reason=N'
    string for the non-zero reasons."""
    table = (metrics or {}).get("tm", {}).get("aborts_by_backend", {})
    rows = []
    for backend, reasons in table.items():
        if not isinstance(reasons, dict):
            continue
        nz = [(r, int(n)) for r, n in reasons.items() if n]
        if not nz:
            continue
        nz.sort(key=lambda kv: -kv[1])
        total = sum(n for _, n in nz)
        rows.append((backend, total,
                     " ".join("%s=%s" % (r, fmt_si(n)) for r, n in nz)))
    rows.sort(key=lambda row: -row[1])
    return rows


def waiting_rows(waitgraph):
    """[(is_oldest, line_body)] for the parked threads of a /waitgraph
    document, oldest wait first: in a lost-wakeup the victim is by
    definition the thread that has been parked the longest."""
    threads = (waitgraph or {}).get("threads", [])
    waiting = [t for t in threads
               if isinstance(t, dict) and t.get("waiting")]
    waiting.sort(key=lambda t: -t.get("age_ns", 0))
    suspect_slots = {s.get("slot")
                     for s in (waitgraph or {}).get("suspects", [])
                     if isinstance(s, dict)}
    rows = []
    for i, t in enumerate(waiting):
        tags = []
        if t.get("slot") in suspect_slots:
            tags.append("SUSPECT")
        if t.get("relayed"):
            tags.append("relayed")
        rows.append((i == 0,
                     "slot=%-3s tid=%-7s %-14s %-18s %8s  %s"
                     % (t.get("slot", "?"), t.get("os_tid", "?"),
                        t.get("reason", "?"), t.get("site", "?"),
                        fmt_ns(t.get("age_ns", 0)), " ".join(tags))))
    return rows


def build_frame(metrics, history, alerts, waitgraph=None, width=80):
    """The whole dashboard as a list of lines -- pure, so testable."""
    lines = []
    spark_w = max(16, width - 34)

    meta = (metrics or {}).get("meta", {})
    backend = (metrics or {}).get("tm", {}).get("backend", "?")
    title = "tmcv-top  v%s  backend=%s  trace=%s  htm=%s  up %.0fs" % (
        meta.get("version", "?"), backend,
        "on" if meta.get("trace_compiled") else "off",
        meta.get("htm", "?"), float(meta.get("uptime_seconds", 0)))
    lines.append(title[:width])
    lines.append("-" * min(width, len(title)))

    if metrics is None:
        lines.append("(metrics endpoint unreachable)")
    if history is None or not history.get("samples"):
        lines.append("(no history -- start the process with --history "
                     "or --watchdog)")

    samples = (history or {}).get("samples", [])
    last = samples[-1] if samples else {}
    lines.append(
        "commit/s %-8s abort/s %-8s ab/cm %-6.3f kv_hit %-5.2f park %-5.2f"
        % (fmt_si(last.get("commits_per_sec", 0)),
           fmt_si(last.get("aborts_per_sec", 0)),
           float(last.get("abort_commit_ratio", 0)),
           float(last.get("kv_hit_rate", 0)),
           float(last.get("park_ratio", 0)))[:width])
    lines.append("")

    for label, key, is_ns in (
            ("commit/s", "commits_per_sec", False),
            ("abort/s", "aborts_per_sec", False),
            ("nw_p99", "notify_wake_p99_ns", True),
            ("cv_waits", "cv_waits", False),
            ("parks", "parks", False)):
        vals = series(history, key)
        cur = vals[-1] if vals else 0
        shown = fmt_ns(cur) if is_ns else fmt_si(cur)
        lines.append("%-9s %10s  %s"
                     % (label, shown, sparkline(vals, spark_w))[:width])
    lines.append("")

    rules = (alerts or {}).get("alerts", [])
    firing = [a for a in rules if a.get("firing")]
    if firing:
        lines.append("ALERTS FIRING:")
        for a in firing:
            lines.append(("  %-18s value=%.4g threshold=%.4g fired=%d"
                          % (a.get("rule", "?"), a.get("last_value", 0),
                             a.get("threshold", 0),
                             a.get("fired_count", 0)))[:width])
    elif alerts is not None and alerts.get("watchdog_running"):
        lines.append("alerts: none firing (%d rules watched)" % len(rules))
    else:
        lines.append("alerts: watchdog not running")
    rows = backend_abort_rows(metrics)
    if rows:
        lines.append("aborts by backend:")
        for b, total, breakdown in rows:
            lines.append(("  %-8s %8s  %s"
                          % (b, fmt_si(total), breakdown))[:width])
    lines.append("")

    if waitgraph is not None:
        threads = waitgraph.get("threads", [])
        parked = waiting_rows(waitgraph)
        cycles = waitgraph.get("cycle_threads", 0)
        lines.append(("threads: %d registered, %d waiting, %d in cycles, "
                      "%d suspects"
                      % (len(threads), len(parked), cycles,
                         len(waitgraph.get("suspects", []))))[:width])
        for is_oldest, body in parked[:8]:
            # The oldest waiter gets the arrow: it is the thread to stare
            # at when something is stuck.
            lines.append(("> " if is_oldest else "  ") + body[:width - 2])
        if len(parked) > 8:
            lines.append("  ... %d more waiting" % (len(parked) - 8))
        lines.append("")

    pairs = (metrics or {}).get("attribution", {}).get("conflict_pairs", [])
    if pairs:
        lines.append("top conflict pairs (victim <- attacker):")
        for p in pairs[:5]:
            lines.append(("  %-14s <- %-14s %8s  %s"
                          % (p.get("victim", "?"), p.get("attacker", "?"),
                             fmt_si(p.get("count", 0)),
                             p.get("reason", "")))[:width])
    else:
        lines.append("conflict pairs: none recorded "
                     "(attribution off or no aborts)")
    return lines


def render_once(base, width):
    metrics = fetch_json(base, "/metrics.json")
    history = fetch_json(base, "/history.json")
    alerts = fetch_json(base, "/alerts")
    waitgraph = fetch_json(base, "/waitgraph")
    return (build_frame(metrics, history, alerts, waitgraph, width),
            metrics is not None)


def run_plain(base, width):
    lines, reachable = render_once(base, width)
    for line in lines:
        print(line)
    return 0 if reachable else 1


def run_curses(base, interval):
    import curses

    def loop(stdscr):
        curses.curs_set(0)
        stdscr.nodelay(True)
        stdscr.timeout(int(interval * 1000))
        while True:
            height, width = stdscr.getmaxyx()
            lines, _ = render_once(base, width - 1)
            stdscr.erase()
            for y, line in enumerate(lines[:height - 1]):
                try:
                    stdscr.addstr(y, 0, line)
                except curses.error:
                    pass  # resize race; next frame fixes it
            stdscr.addstr(min(len(lines), height - 1), 0,
                          "q: quit"[:width - 1])
            stdscr.refresh()
            ch = stdscr.getch()
            if ch in (ord("q"), ord("Q")):
                return
            # getch timed out: that WAS the poll interval; loop again.

    curses.wrapper(loop)
    return 0


# ---------------------------------------------------------------------------
# --self-test fixtures: miniature versions of the three endpoint documents.

_FIX_METRICS = {
    "meta": {"version": "1.0.0", "trace_compiled": True, "htm": "emulated",
             "uptime_seconds": 12.5},
    "tm": {"backend": "norec", "commits": 1000, "aborts": 200,
           "aborts_conflict": 180,
           "aborts_by_backend": {
               "eager": {"conflict": 0, "capacity": 0, "syscall": 0,
                         "explicit": 0, "retry_wait": 0},
               "norec": {"conflict": 170, "capacity": 0, "syscall": 0,
                         "explicit": 0, "retry_wait": 30},
               "lazy": {"conflict": 0, "capacity": 0, "syscall": 0,
                        "explicit": 0, "retry_wait": 0},
           }},
    "attribution": {"conflict_pairs": [
        {"victim": "kv_set", "attacker": "kv_set", "reason": "conflict",
         "count": 150},
        {"victim": "kv_get", "attacker": "kv_set", "reason": "conflict",
         "count": 30},
    ]},
}

_FIX_HISTORY = {
    "meta": {"interval_ms": 1000, "depth": 240, "samples_taken": 3,
             "running": True},
    "samples": [
        {"t_ms": 1000, "seq": 0, "commits": 100, "commits_per_sec": 100.0,
         "aborts_per_sec": 10.0, "abort_commit_ratio": 0.1,
         "kv_hit_rate": 0.9, "park_ratio": 0.25,
         "notify_wake_p99_ns": 5000, "cv_waits": 40, "parks": 10},
        {"t_ms": 2000, "seq": 1, "commits": 300, "commits_per_sec": 300.0,
         "aborts_per_sec": 30.0, "abort_commit_ratio": 0.1,
         "kv_hit_rate": 0.8, "park_ratio": 0.25,
         "notify_wake_p99_ns": 7000, "cv_waits": 80, "parks": 20},
    ],
}

_FIX_WAITGRAPH = {
    "now_ticks": 1000, "cycle_threads": 0,
    "threads": [
        {"slot": 0, "os_tid": 100, "tm_slot": 0, "waiting": False},
        {"slot": 1, "os_tid": 101, "tm_slot": 1, "waiting": True,
         "reason": "condvar", "site": "cv.wait.enqueue", "site_id": 1,
         "detail": 0, "target": "0x1000", "relayed": False,
         "age_ns": 740000000},
        {"slot": 2, "os_tid": 102, "tm_slot": 2, "waiting": True,
         "reason": "orec", "site": "kv_set", "site_id": 3, "detail": 7,
         "target": "0x2000", "relayed": False, "age_ns": 1200},
    ],
    "edges": [
        {"waiter_slot": 2, "waiter_tid": 102, "reason": "orec",
         "holder_slot": 0, "holder_tid": 100, "holder_site": "kv_set",
         "holder_site_id": 3, "in_cycle": False},
    ],
    "suspects": [
        {"slot": 1, "os_tid": 101, "target": "0x1000",
         "site": "cv.wait.enqueue", "age_ns": 740000000},
    ],
    "stall": {"total_ticks": 0, "total_ns": 0, "entries": []},
}

_FIX_ALERTS = {
    "watchdog_running": True,
    "alerts": [
        {"rule": "abort_storm", "firing": True, "threshold": 0.5,
         "last_value": 0.91, "breach_streak": 3, "fired_count": 1,
         "min_activity": 100, "consecutive": 2, "last_change_ms": 2000},
        {"rule": "latency_p99", "firing": False, "threshold": 1e6,
         "last_value": 7000, "breach_streak": 0, "fired_count": 0,
         "min_activity": 16, "consecutive": 2, "last_change_ms": 0},
    ],
}


def self_test():
    checks = []

    def check(name, ok):
        checks.append((name, bool(ok)))

    check("sparkline empty", sparkline([], 10) == "")
    check("sparkline flat-zero is all-low",
          sparkline([0, 0, 0], 10) == SPARK_CHARS[0] * 3)
    ramp = sparkline([1, 2, 3, 4], 10)
    check("sparkline ramp ascends",
          len(ramp) == 4 and ramp[0] == SPARK_CHARS[0]
          and ramp[-1] == SPARK_CHARS[7]
          and list(ramp) == sorted(ramp))
    check("sparkline truncates to width", len(sparkline(range(99), 16)) == 16)
    check("sparkline flat-positive not blank",
          set(sparkline([5, 5, 5], 8)) == {SPARK_CHARS[7]})

    check("fmt_si mega", fmt_si(1234567) == "1.23M")
    check("fmt_si small int", fmt_si(42) == "42")
    check("fmt_ns us", fmt_ns(7000) == "7.0us")
    check("fmt_ns ms", fmt_ns(2.5e6) == "2.50ms")

    check("normalize bare port",
          normalize_target("9464") == "http://127.0.0.1:9464")
    check("normalize host:port",
          normalize_target("10.0.0.2:80") == "http://10.0.0.2:80")
    check("normalize full url",
          normalize_target("http://x:1/") == "http://x:1")

    frame = "\n".join(build_frame(_FIX_METRICS, _FIX_HISTORY, _FIX_ALERTS))
    check("frame shows version", "v1.0.0" in frame)
    check("frame shows latest commit rate", "300" in frame)
    check("frame shows firing alert", "abort_storm" in frame)
    check("frame hides cleared alert", "latency_p99" not in frame)
    check("frame shows top pair", "kv_set" in frame and "kv_get" in frame)
    check("frame has sparkline glyphs",
          any(c in frame for c in SPARK_CHARS))

    check("frame shows active backend", "backend=norec" in frame)
    check("frame shows per-backend aborts",
          "aborts by backend:" in frame and "conflict=170" in frame
          and "retry_wait=30" in frame)
    check("frame hides zero-abort backends",
          "\n  eager" not in frame and "\n  lazy" not in frame)
    rows = backend_abort_rows(_FIX_METRICS)
    check("backend rows non-zero only, totalled",
          rows == [("norec", 200, "conflict=170 retry_wait=30")])
    check("backend rows tolerate missing table",
          backend_abort_rows({}) == [] and backend_abort_rows(None) == [])

    wg_frame = "\n".join(build_frame(_FIX_METRICS, _FIX_HISTORY, _FIX_ALERTS,
                                     _FIX_WAITGRAPH))
    check("thread pane shows headline",
          "threads: 3 registered, 2 waiting" in wg_frame)
    rows = waiting_rows(_FIX_WAITGRAPH)
    check("thread pane sorts oldest waiter first",
          len(rows) == 2 and "slot=1" in rows[0][1]
          and "slot=2" in rows[1][1])
    check("oldest waiter highlighted, younger not",
          rows[0][0] and not rows[1][0]
          and "> slot=1" in wg_frame and "\n  slot=2" in wg_frame)
    check("suspect tagged in thread pane", "SUSPECT" in rows[0][1])
    check("running threads not listed as waiting",
          "slot=0" not in rows[0][1] + rows[1][1])
    check("frame without waitgraph omits pane",
          "threads:" not in frame)
    check("waiting rows tolerate missing doc", waiting_rows(None) == [])

    # Degraded inputs must not raise -- the console outlives the server.
    for m, h, a in ((None, None, None),
                    (_FIX_METRICS, None, None),
                    (None, _FIX_HISTORY, None),
                    ({}, {"samples": []}, {"alerts": []})):
        try:
            build_frame(m, h, a, width=40)
        except Exception as e:  # pragma: no cover
            check("frame tolerates %r/%r/%r: %s"
                  % (m is not None, h is not None, a is not None, e), False)
            break
    else:
        check("frame tolerates missing endpoints", True)

    failed = [name for name, ok in checks if not ok]
    for name in failed:
        print("self-test FAILED: %s" % name, file=sys.stderr)
    if failed:
        return 1
    print("self-test: %d checks ok" % len(checks))
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Live console for a tmcv telemetry endpoint.")
    ap.add_argument("target", nargs="?", default=None,
                    help="PORT, HOST:PORT, or http URL of the endpoint")
    ap.add_argument("--interval", type=float, default=1.0,
                    help="poll interval in seconds (default 1.0)")
    ap.add_argument("--once", action="store_true",
                    help="print one plain-text frame and exit (no curses); "
                         "exit 1 if the metrics endpoint is unreachable")
    ap.add_argument("--width", type=int, default=80,
                    help="frame width for --once (default 80)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the embedded fixture suite and exit")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.target is None:
        ap.error("target required (or --self-test)")

    base = normalize_target(args.target)
    if args.once:
        return run_plain(base, args.width)
    try:
        return run_curses(base, max(0.1, args.interval))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
