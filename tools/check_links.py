#!/usr/bin/env python3
"""Markdown link checker for the tmcv docs set.

Scans the repository's markdown files for inline links and validates every
relative (non-http) target against the working tree, including `#fragment`
anchors within .md targets (matched against GitHub-style heading slugs).
External http(s)/mailto links are listed but not fetched -- CI must stay
hermetic. Exits non-zero with a per-link report if anything dangles.

Usage:  tools/check_links.py [repo-root]
"""

import os
import re
import sys
import unicodedata

# Inline markdown links [text](target). Deliberately simple: the docs do not
# use reference-style links or angle-bracket autolinks with spaces.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")

DEFAULT_FILES = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "PAPER.md",
    "CHANGES.md",
    "docs/INDEX.md",
    "docs/API.md",
    "docs/TUNING.md",
    "docs/OBSERVABILITY.md",
]


def github_slug(heading):
    """Approximate GitHub's heading -> anchor slug transform."""
    text = re.sub(r"[`*_]", "", heading)           # strip inline formatting
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = unicodedata.normalize("NFKD", text).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(md_path):
    slugs, seen = set(), {}
    in_fence = False
    with open(md_path, encoding="utf-8") as fh:
        for line in fh:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_slug(m.group(1))
            n = seen.get(slug, 0)
            seen[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def extract_links(md_path):
    links, in_fence = [], False
    with open(md_path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                links.append((lineno, m.group(1)))
    return links


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else
                           os.path.join(os.path.dirname(__file__), ".."))
    files = [f for f in DEFAULT_FILES if os.path.exists(os.path.join(root, f))]
    slug_cache = {}
    errors, external, checked = [], 0, 0

    def slugs_for(path):
        if path not in slug_cache:
            slug_cache[path] = heading_slugs(path)
        return slug_cache[path]

    for rel in files:
        src = os.path.join(root, rel)
        for lineno, target in extract_links(src):
            if target.startswith(("http://", "https://", "mailto:")):
                external += 1
                continue
            checked += 1
            path_part, _, fragment = target.partition("#")
            if path_part:
                dest = os.path.normpath(
                    os.path.join(os.path.dirname(src), path_part))
            else:
                dest = src  # pure fragment: anchor within this file
            if not os.path.exists(dest):
                errors.append(f"{rel}:{lineno}: dangling link -> {target}")
                continue
            if fragment and dest.endswith(".md"):
                if fragment.lower() not in slugs_for(dest):
                    errors.append(
                        f"{rel}:{lineno}: missing anchor -> {target}")

    print(f"check_links: {len(files)} files, {checked} relative links "
          f"checked, {external} external links skipped")
    if errors:
        print("\n".join(errors), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
