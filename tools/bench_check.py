#!/usr/bin/env python3
"""Gate a fresh bench JSON against a committed reference.

The bench binaries (`--json` in bench/micro_tm.cpp, bench/micro_condvar.cpp,
bench/kv_loadgen.cpp) emit one flat-ish JSON object per run; the repo
commits blessed results as `BENCH_*.json`.  CI re-runs the benches into
fresh `*_ci.json` files and this script compares the two, failing only on
*catastrophic* regressions -- shared CI runners are far too noisy for tight
thresholds, so the default tolerances are wide and documented here rather
than scattered across workflow YAML:

  * throughput: fresh `ops_per_sec` must be >= ref * --min-throughput-ratio
    (default 0.20 -- a 5x collapse is a broken wake path or a serial-mode
    livelock, not noise).
  * aborts: fresh `abort_commit_ratio` must be <= ref + --max-abort-delta
    (default 0.05 absolute -- catches an abort storm that throughput alone
    can hide when the retry loop is cheap).
  * shape: the two files must describe the same `benchmark`, and every
    numeric scalar key in the reference must still exist in the fresh run
    (a silently vanished counter usually means a stats-plumbing regression).
    Missing keys are errors; *new* keys in the fresh run are fine.
  * backend: when both files carry a `backend` header the labels must match
    -- comparing a NOrec run against an eager reference (or vice versa)
    would gate one algorithm's throughput against another's and pass or
    fail for the wrong reason.  Regenerate the reference with the same
    `--backend` instead.
  * mixes: when the reference carries a `mixes` object (bench/vacation.cpp
    emits per-mix sections), every mix named in the reference must exist in
    the fresh run and pass the same throughput-floor and abort-ceiling
    checks on its own numbers -- a per-mix collapse (e.g. only the
    high-contention leg livelocking) would otherwise hide behind a healthy
    headline `ops_per_sec`.

    tools/bench_check.py BENCH_micro_tm.json micro_tm_ci.json
    tools/bench_check.py ref.json fresh.json --min-throughput-ratio 0.5
    tools/bench_check.py --self-test

Exit 0 on pass, 1 on any failed check (or unreadable input).  Only the
standard library is used.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def numeric_scalar_keys(doc):
    return {k for k, v in doc.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)}


def check_rates(ref, fresh, failures, lines, min_throughput_ratio,
                max_abort_delta, label=""):
    """Throughput-floor and abort-ceiling checks on one scalar section."""
    tag = ("%s " % label) if label else ""
    ref_ops = ref.get("ops_per_sec")
    fresh_ops = fresh.get("ops_per_sec")
    if not isinstance(ref_ops, (int, float)) or ref_ops <= 0:
        failures.append("%sreference has no positive ops_per_sec" % tag)
    elif isinstance(fresh_ops, (int, float)):
        ratio = fresh_ops / ref_ops
        verdict = "ok" if ratio >= min_throughput_ratio else "FAIL"
        lines.append("%sops_per_sec: ref=%.0f fresh=%.0f ratio=%.3f "
                     "(floor %.2f) %s"
                     % (tag, ref_ops, fresh_ops, ratio, min_throughput_ratio,
                        verdict))
        if verdict == "FAIL":
            failures.append(
                "%sthroughput collapsed: %.0f vs ref %.0f (ratio %.3f < %.2f)"
                % (tag, fresh_ops, ref_ops, ratio, min_throughput_ratio))

    ref_ab = ref.get("abort_commit_ratio")
    fresh_ab = fresh.get("abort_commit_ratio")
    if isinstance(ref_ab, (int, float)) and isinstance(fresh_ab, (int, float)):
        ceiling = ref_ab + max_abort_delta
        verdict = "ok" if fresh_ab <= ceiling else "FAIL"
        lines.append("%sabort_commit_ratio: ref=%.6f fresh=%.6f "
                     "(ceiling %.6f) %s" % (tag, ref_ab, fresh_ab, ceiling,
                                            verdict))
        if verdict == "FAIL":
            failures.append(
                "%sabort ratio blew up: %.6f vs ref %.6f (+%.6f allowed)"
                % (tag, fresh_ab, ref_ab, max_abort_delta))


def compare(ref, fresh, min_throughput_ratio=0.20, max_abort_delta=0.05):
    """Return (failures, report_lines) for a ref/fresh bench JSON pair."""
    failures = []
    lines = []

    ref_name = ref.get("benchmark")
    fresh_name = fresh.get("benchmark")
    if ref_name != fresh_name:
        failures.append("benchmark mismatch: ref=%r fresh=%r"
                        % (ref_name, fresh_name))
        return failures, lines
    lines.append("benchmark: %s" % ref_name)

    ref_backend = ref.get("backend")
    fresh_backend = fresh.get("backend")
    if ref_backend is not None and ref_backend != fresh_backend:
        # Cross-backend numbers are not comparable: NOrec vs eager throughput
        # differences are algorithmic, not regressions.  A fresh file that
        # *dropped* the backend header is treated the same way -- otherwise
        # the gate could be dodged by omitting the label.
        failures.append("backend mismatch: ref=%r fresh=%r "
                        "(refusing cross-backend comparison)"
                        % (ref_backend, fresh_backend))
        return failures, lines
    if ref_backend is not None:
        lines.append("backend: %s" % ref_backend)

    missing = sorted(numeric_scalar_keys(ref) - numeric_scalar_keys(fresh))
    if missing:
        failures.append("fresh run lost numeric keys: %s" % ", ".join(missing))

    check_rates(ref, fresh, failures, lines, min_throughput_ratio,
                max_abort_delta)

    # Per-mix sections (vacation-style JSON): every mix in the reference
    # must survive in the fresh run and pass its own floors.  Dropping a
    # mix is the nested analogue of a vanished numeric key.
    ref_mixes = ref.get("mixes")
    if isinstance(ref_mixes, dict):
        fresh_mixes = fresh.get("mixes")
        if not isinstance(fresh_mixes, dict):
            failures.append("fresh run lost the 'mixes' section")
        else:
            for mix_name in sorted(ref_mixes):
                if mix_name not in fresh_mixes:
                    failures.append("fresh run lost mix %r" % mix_name)
                    continue
                check_rates(ref_mixes[mix_name], fresh_mixes[mix_name],
                            failures, lines, min_throughput_ratio,
                            max_abort_delta, label="mix[%s]" % mix_name)
    return failures, lines


# ---------------------------------------------------------------------------
# --self-test fixtures.

_REF = {"benchmark": "micro_tm_read_heavy", "backend": "EagerSTM",
        "threads": 8,
        "ops_per_sec": 2000000, "abort_commit_ratio": 0.001,
        "commits": 1600000, "aborts": 1600}

_VAC_REF = {"benchmark": "vacation", "backend": "EagerSTM", "threads": 4,
            "ops_per_sec": 500000, "abort_commit_ratio": 0.0002,
            "commits": 85000, "aborts": 20,
            "mixes": {
                "low_contention": {"ops_per_sec": 500000,
                                   "abort_commit_ratio": 0.0002},
                "high_contention": {"ops_per_sec": 70000,
                                    "abort_commit_ratio": 0.023}}}


def self_test():
    checks = []

    def check(name, ok):
        checks.append((name, bool(ok)))

    fresh_ok = dict(_REF, ops_per_sec=1500000, abort_commit_ratio=0.002,
                    extra_new_counter=7)
    fails, _ = compare(_REF, fresh_ok)
    check("healthy run passes (new keys allowed)", not fails)

    fails, _ = compare(_REF, dict(_REF, ops_per_sec=100000))
    check("throughput collapse fails",
          any("collapsed" in f for f in fails))

    fails, _ = compare(_REF, dict(_REF, abort_commit_ratio=0.2))
    check("abort storm fails", any("abort ratio" in f for f in fails))

    fails, _ = compare(_REF, dict(_REF, benchmark="other"))
    check("benchmark mismatch fails", any("mismatch" in f for f in fails))

    fails, _ = compare(_REF, dict(_REF, backend="NOrec"))
    check("cross-backend comparison refused",
          any("backend mismatch" in f for f in fails))

    dropped = dict(_REF)
    del dropped["backend"]
    fails, _ = compare(_REF, dropped)
    check("fresh run that dropped backend header refused",
          any("backend mismatch" in f for f in fails))

    legacy_ref = dict(_REF)
    del legacy_ref["backend"]
    fails, _ = compare(legacy_ref, dict(_REF, ops_per_sec=1500000))
    check("legacy ref without backend still compares", not fails)

    lost = dict(_REF)
    del lost["commits"]
    fails, _ = compare(_REF, lost)
    check("vanished counter fails",
          any("lost numeric keys" in f and "commits" in f for f in fails))

    fails, _ = compare(_REF, dict(_REF, ops_per_sec=1900000),
                       min_throughput_ratio=0.99)
    check("custom ratio floor applies", fails)

    fails, _ = compare({"benchmark": "x"}, {"benchmark": "x"})
    check("ref without ops_per_sec fails", fails)

    # Vacation-style per-mix sections.
    import copy

    vac_ok = copy.deepcopy(_VAC_REF)
    vac_ok["mixes"]["low_contention"]["ops_per_sec"] = 400000
    fails, _ = compare(_VAC_REF, vac_ok)
    check("healthy vacation run passes", not fails)

    vac_slow = copy.deepcopy(_VAC_REF)
    vac_slow["mixes"]["high_contention"]["ops_per_sec"] = 5000
    fails, _ = compare(_VAC_REF, vac_slow)
    check("per-mix throughput collapse fails even with healthy headline",
          any("mix[high_contention]" in f and "collapsed" in f
              for f in fails))

    vac_storm = copy.deepcopy(_VAC_REF)
    vac_storm["mixes"]["low_contention"]["abort_commit_ratio"] = 0.4
    fails, _ = compare(_VAC_REF, vac_storm)
    check("per-mix abort storm fails",
          any("mix[low_contention]" in f and "abort ratio" in f
              for f in fails))

    vac_lost_mix = copy.deepcopy(_VAC_REF)
    del vac_lost_mix["mixes"]["high_contention"]
    fails, _ = compare(_VAC_REF, vac_lost_mix)
    check("vanished mix fails",
          any("lost mix" in f and "high_contention" in f for f in fails))

    vac_no_mixes = copy.deepcopy(_VAC_REF)
    del vac_no_mixes["mixes"]
    fails, _ = compare(_VAC_REF, vac_no_mixes)
    check("vanished mixes section fails",
          any("lost the 'mixes' section" in f for f in fails))

    fails, _ = compare(_VAC_REF, dict(copy.deepcopy(_VAC_REF),
                                      backend="NOrec"))
    check("vacation cross-backend comparison refused",
          any("backend mismatch" in f for f in fails))

    failed = [name for name, ok in checks if not ok]
    for name in failed:
        print("self-test FAILED: %s" % name, file=sys.stderr)
    if failed:
        return 1
    print("self-test: %d checks ok" % len(checks))
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Compare a fresh bench JSON against a committed "
                    "reference; fail on catastrophic regressions.")
    ap.add_argument("ref", nargs="?", default=None,
                    help="committed reference JSON (BENCH_*.json)")
    ap.add_argument("fresh", nargs="?", default=None,
                    help="freshly produced JSON from this run")
    ap.add_argument("--min-throughput-ratio", type=float, default=0.20,
                    help="fresh/ref ops_per_sec floor (default 0.20)")
    ap.add_argument("--max-abort-delta", type=float, default=0.05,
                    help="allowed absolute abort_commit_ratio increase "
                         "(default 0.05)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the embedded fixture suite and exit")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.ref is None or args.fresh is None:
        ap.error("ref and fresh paths required (or --self-test)")

    try:
        ref = load(args.ref)
        fresh = load(args.fresh)
    except (OSError, json.JSONDecodeError) as e:
        print("error: %s" % e, file=sys.stderr)
        return 1

    failures, lines = compare(ref, fresh,
                              min_throughput_ratio=args.min_throughput_ratio,
                              max_abort_delta=args.max_abort_delta)
    for line in lines:
        print(line)
    for f in failures:
        print("bench-check FAIL: %s" % f, file=sys.stderr)
    if failures:
        return 1
    print("bench-check ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
