#!/usr/bin/env python3
"""Render the paper-style figures from the bench binaries' CSV output.

The figure benches (fig1_westmere, fig2_haswell, fig3_speedup) emit lines of
the form

    CSV,<figure>,<kernel>,<system>,<threads>,<mean_s>,<stddev_s>
    CSV,Figure3-<panel>,<kernel>,<threads>,<tmcv_speedup>,<tm_speedup>

Pipe or save any combination of their outputs and feed the file(s) here:

    ./build/bench/fig1_westmere | tee fig1.txt
    tools/plot_figures.py fig1.txt -o plots/

With matplotlib installed, one PNG per figure panel is produced (the same
sub-plots as the paper's Figures 1/2); without it, the script falls back to
ASCII charts on stdout so the tool is usable in minimal containers.
"""

import argparse
import collections
import csv
import os
import sys

Point = collections.namedtuple("Point", "threads mean stddev")


def parse(paths):
    """figure -> kernel -> system -> [Point]"""
    data = collections.defaultdict(
        lambda: collections.defaultdict(lambda: collections.defaultdict(list)))
    for path in paths:
        with open(path, newline="") as fh:
            for row in csv.reader(fh):
                if not row or row[0] != "CSV":
                    continue
                if row[1].startswith("Figure3"):
                    continue  # the bar chart is printed by the bench itself
                _, figure, kernel, system, threads, mean, stddev = row
                data[figure][kernel][system].append(
                    Point(int(threads), float(mean), float(stddev)))
    return data


def ascii_panel(figure, kernel, systems):
    print(f"\n== {figure}: {kernel} ==")
    peak = max(p.mean for pts in systems.values() for p in pts) or 1.0
    width = 46
    for system, pts in systems.items():
        print(f"  {system}")
        for p in sorted(pts):
            bar = "#" * max(1, int(p.mean / peak * width))
            print(f"    t={p.threads:<3d} {p.mean*1e3:9.2f} ms |{bar}")


def matplotlib_panel(figure, kernel, systems, outdir):
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(5, 3.2))
    for system, pts in systems.items():
        pts = sorted(pts)
        ax.errorbar([p.threads for p in pts], [p.mean for p in pts],
                    yerr=[p.stddev for p in pts], marker="o", capsize=2,
                    label=system)
    ax.set_xlabel("Threads")
    ax.set_ylabel("Time in seconds")
    ax.set_title(f"{figure}: {kernel}")
    ax.legend(fontsize=7)
    fig.tight_layout()
    path = os.path.join(outdir, f"{figure}_{kernel}.png".replace("/", "_"))
    fig.savefig(path, dpi=150)
    plt.close(fig)
    return path


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("inputs", nargs="+", help="bench output files")
    ap.add_argument("-o", "--outdir", default="plots",
                    help="PNG output directory (with matplotlib)")
    args = ap.parse_args()

    data = parse(args.inputs)
    if not data:
        print("no CSV rows found", file=sys.stderr)
        return 1

    try:
        import matplotlib  # noqa: F401
        have_mpl = True
        os.makedirs(args.outdir, exist_ok=True)
    except ImportError:
        have_mpl = False
        print("(matplotlib unavailable; ASCII fallback)\n", file=sys.stderr)

    for figure, kernels in sorted(data.items()):
        for kernel, systems in kernels.items():
            if have_mpl:
                print("wrote",
                      matplotlib_panel(figure, kernel, systems, args.outdir))
            else:
                ascii_panel(figure, kernel, systems)
    return 0


if __name__ == "__main__":
    sys.exit(main())
