#!/usr/bin/env python3
"""Summarize, validate, or causally analyze a --trace Chrome trace JSON.

The runtime's trace writer (src/obs/trace_io.cpp) emits the Chrome/Perfetto
"JSON Array Format": a top-level object with a `traceEvents` list of complete
("ph": "X", with `dur`) and instant ("ph": "i") events, timestamps in
microseconds relative to the earliest event.  Load the file in
https://ui.perfetto.dev for a timeline; this script gives the terminal view:

    tools/trace_report.py trace.json              # per-event summary table
    tools/trace_report.py trace.json --validate   # schema check, exit 1 on error
    tools/trace_report.py trace.json --tid 3      # restrict to one thread
    tools/trace_report.py trace.json --causal     # notify->wake edge analysis
    tools/trace_report.py trace.json --causal --validate   # exit 1 on violation
    tools/trace_report.py flight.json --validate  # flight-recorder dump check
    tools/trace_report.py --self-test             # stdlib-only fixture suite

Flight-recorder dumps (src/obs/flight.cpp; `{"tmcv_flight": 1, ...}`) are
detected automatically: --validate checks the section structure, that the
embedded trace document is itself valid, the attribution completeness
invariant (the unsliced conflict pairs sum exactly to
`conflicts_recorded`, and -- when attribution ran the whole process
lifetime with nothing dropped -- to `metrics.tm.aborts_conflict`), and the
waitgraph section (every wait-for edge references a listed thread slot;
the stall table's reason x site entries sum exactly to its totals).  The
default mode prints a section-by-section post-mortem summary.

Causal analysis reconstructs the notify->wake->run edges from the event
stream and checks token conservation: every cv.notify instant grants
`arg` wake tokens (the number of waiters it dequeued) and every cv.wait
completion consumes one at its end timestamp, so at no point may cumulative
wakes exceed cumulative grants.  Tokens are matched FIFO to estimate the
notify->run latency distribution, which can be cross-checked against the
runtime's own notify_wake_ns histogram via --metrics.  The writer does not
record which condvar an event belongs to, so edges are reconstructed
process-wide: exact for single-condvar workloads (the herd bench), an
approximation when several condvars interleave.  Timed-out waits are not
modeled; run --causal on traces without timeouts.

--morph-strict additionally checks the wait-morphing property offline: a
multi-waiter notify under a lock scope must make at most one waiter
runnable per unlock, so the wakes matched to one notify must be serialized
(strictly increasing end timestamps), never simultaneous.

Only the standard library is used, so the script runs in minimal containers.
"""

import argparse
import json
import sys

# Events the tmcv runtime emits (src/obs/trace.h).  Unknown names are
# reported, not rejected: the format is open.
KNOWN_EVENTS = {
    "txn.commit", "txn.abort", "txn.serial_fallback",
    "cv.wait", "cv.notify",
    "sem.wait", "sem.post", "sem.post_batch", "sem.spin",
    "cm.backoff",
}

# TxAbort::Reason, numerically (src/tm/descriptor.h; asserted to stay in
# sync with the attribution reason constants in src/obs/attribution.h).
ABORT_REASONS = {
    0: "conflict", 1: "capacity", 2: "syscall", 3: "explicit",
    4: "retry_wait",
}

REQUIRED_FIELDS = ("name", "ph", "ts", "pid", "tid")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def validate(doc):
    """Return a list of problem strings (empty = valid)."""
    problems = []
    if not isinstance(doc, dict):
        return ["top level is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list `traceEvents`"]
    for i, ev in enumerate(events):
        where = "traceEvents[%d]" % i
        if not isinstance(ev, dict):
            problems.append("%s: not an object" % where)
            continue
        for field in REQUIRED_FIELDS:
            if field not in ev:
                problems.append("%s: missing `%s`" % (where, field))
        ph = ev.get("ph")
        if ph not in ("X", "i"):
            problems.append("%s: unexpected ph=%r (want 'X' or 'i')"
                            % (where, ph))
        if ph == "X" and "dur" not in ev:
            problems.append("%s: complete event missing `dur`" % where)
        for field in ("ts", "dur"):
            if field in ev and not isinstance(ev[field], (int, float)):
                problems.append("%s: `%s` is not a number" % (where, field))
        if len(problems) >= 20:
            problems.append("... (stopping after 20 problems)")
            return problems
    # Timestamps must be non-decreasing: the writer merges per-thread rings
    # with a stable sort.
    ts = [ev.get("ts") for ev in events
          if isinstance(ev, dict) and isinstance(ev.get("ts"), (int, float))]
    if any(b < a for a, b in zip(ts, ts[1:])):
        problems.append("traceEvents are not sorted by ts")
    return problems


def is_flight(doc):
    return isinstance(doc, dict) and doc.get("tmcv_flight") == 1


FLIGHT_SECTIONS = ("meta", "alerts", "metrics", "history",
                   "attribution_full", "waitgraph", "trace")


def validate_flight(doc):
    """Return a list of problem strings for a flight-recorder dump."""
    problems = []
    for section in FLIGHT_SECTIONS:
        if not isinstance(doc.get(section), dict):
            problems.append("missing or non-object section `%s`" % section)
    if problems:
        return problems

    meta = doc["meta"]
    for field in ("version", "reason"):
        if not isinstance(meta.get(field), str):
            problems.append("meta.%s missing or not a string" % field)

    # The embedded trace is a complete Chrome document in its own right.
    problems += ["trace: " + p for p in validate(doc["trace"])]

    history = doc["history"]
    if not isinstance(history.get("samples"), list):
        problems.append("history.samples missing or not a list")

    alerts = doc["alerts"]
    if not isinstance(alerts.get("alerts"), list):
        problems.append("alerts.alerts missing or not a list")

    # Completeness: the dump carries the UNSLICED pair table precisely so
    # this is checkable offline.
    attr = doc["attribution_full"]
    pairs = attr.get("conflict_pairs")
    recorded = attr.get("conflicts_recorded")
    if not isinstance(pairs, list) or not isinstance(recorded, int):
        problems.append("attribution_full.conflict_pairs/conflicts_recorded "
                        "missing")
    else:
        total = sum(p.get("count", 0) for p in pairs if isinstance(p, dict))
        if total != recorded:
            problems.append(
                "attribution pairs sum to %d but conflicts_recorded=%d"
                % (total, recorded))
        aborts_conflict = (doc["metrics"].get("tm", {})
                           .get("aborts_conflict"))
        dropped = attr.get("dropped", 0)
        if (isinstance(aborts_conflict, int) and dropped == 0
                and recorded > aborts_conflict):
            problems.append(
                "conflicts_recorded=%d exceeds tm.aborts_conflict=%d "
                "with nothing dropped" % (recorded, aborts_conflict))

    # Wait-point registry snapshot: edges must reference listed threads and
    # the stall table must keep its two-ledger exactness invariant
    # (src/sync/waitpoint.h: sum of the reason x site cells == total, for
    # every accepted snapshot, not just at quiescence).
    wg = doc["waitgraph"]
    threads = wg.get("threads")
    edges = wg.get("edges")
    if not isinstance(threads, list) or not isinstance(edges, list):
        problems.append("waitgraph.threads/edges missing or not lists")
    else:
        slots = {t.get("slot") for t in threads if isinstance(t, dict)}
        for i, e in enumerate(edges):
            if not isinstance(e, dict):
                problems.append("waitgraph.edges[%d] not an object" % i)
                continue
            if e.get("waiter_slot") not in slots:
                problems.append(
                    "waitgraph.edges[%d].waiter_slot=%r not a listed thread"
                    % (i, e.get("waiter_slot")))
            holder = e.get("holder_slot")
            if holder is not None and holder not in slots:
                problems.append(
                    "waitgraph.edges[%d].holder_slot=%r not a listed thread"
                    % (i, holder))
    stall = wg.get("stall")
    if not isinstance(stall, dict) or not isinstance(
            stall.get("entries"), list):
        problems.append("waitgraph.stall missing or malformed")
    else:
        entries = [e for e in stall["entries"] if isinstance(e, dict)]
        for key in ("ticks", "ns"):
            total = stall.get("total_%s" % key)
            folded = sum(e.get(key, 0) for e in entries)
            if isinstance(total, int) and folded != total:
                problems.append(
                    "stall entries sum to %d %s but total_%s=%d"
                    % (folded, key, key, total))
    return problems


def summarize_flight(doc):
    meta = doc.get("meta", {})
    print("flight dump: version=%s reason=%s uptime=%ss"
          % (meta.get("version", "?"), meta.get("reason", "?"),
             meta.get("uptime_seconds", "?")))
    alerts = doc.get("alerts", {}).get("alerts", [])
    firing = [a for a in alerts if a.get("firing")]
    print("alerts: %d rules, %d firing%s"
          % (len(alerts), len(firing),
             " (" + ", ".join(a.get("rule", "?") for a in firing) + ")"
             if firing else ""))
    tm = doc.get("metrics", {}).get("tm", {})
    print("tm: commits=%s aborts=%s aborts_conflict=%s"
          % (tm.get("commits", "?"), tm.get("aborts", "?"),
             tm.get("aborts_conflict", "?")))
    samples = doc.get("history", {}).get("samples", [])
    print("history: %d samples @ %s ms"
          % (len(samples),
             doc.get("history", {}).get("meta", {}).get("interval_ms", "?")))
    attr = doc.get("attribution_full", {})
    pairs = attr.get("conflict_pairs", [])
    print("attribution: %d pairs, %s conflicts recorded, %s dropped"
          % (len(pairs), attr.get("conflicts_recorded", "?"),
             attr.get("dropped", "?")))
    for p in pairs[:5]:
        print("  %-16s <- %-16s %d" % (p.get("victim", "?"),
                                       p.get("attacker", "?"),
                                       p.get("count", 0)))
    wg = doc.get("waitgraph", {})
    threads = wg.get("threads", [])
    waiting = [t for t in threads if t.get("waiting")]
    suspects = wg.get("suspects", [])
    print("waitgraph: %d threads (%d waiting), %d edges, %d in cycles, "
          "%d lost-wakeup suspects"
          % (len(threads), len(waiting), len(wg.get("edges", [])),
             wg.get("cycle_threads", 0), len(suspects)))
    for s in suspects[:5]:
        print("  suspect slot=%s tid=%s site=%s age=%.1fms"
              % (s.get("slot", "?"), s.get("os_tid", "?"),
                 s.get("site", "?"), s.get("age_ns", 0) / 1e6))
    stall = wg.get("stall", {})
    print("stall: %s ns attributed across %d (reason x site) rows"
          % (stall.get("total_ns", "?"), len(stall.get("entries", []))))
    events = doc.get("trace", {}).get("traceEvents", [])
    print("trace: %d events" % len(events))
    if events:
        print()
        summarize(doc["trace"])


def event_arg(ev):
    args = ev.get("args")
    if isinstance(args, dict) and isinstance(args.get("arg"), (int, float)):
        return int(args["arg"])
    return None


def decode_args(events):
    """Per-event arg decoding: lines describing what the args of each event
    type say in aggregate (abort reasons, waiters woken, batch sizes)."""
    lines = []
    aborts = {}
    notifies = woken = lost = 0
    batches = batched = 0
    for ev in events:
        name = ev.get("name")
        arg = event_arg(ev)
        if arg is None:
            continue
        if name == "txn.abort":
            aborts[arg] = aborts.get(arg, 0) + 1
        elif name == "cv.notify":
            notifies += 1
            woken += arg
            lost += arg == 0
        elif name == "sem.post_batch":
            batches += 1
            batched += arg
    if aborts:
        parts = ["%s=%d" % (ABORT_REASONS.get(r, "reason%d" % r), n)
                 for r, n in sorted(aborts.items())]
        lines.append("txn.abort reasons:    " + "  ".join(parts))
    if notifies:
        lines.append("cv.notify:            %d calls, %d waiters woken, "
                     "%d lost (empty queue)" % (notifies, woken, lost))
    if batches:
        lines.append("sem.post_batch:       %d batches, %d posts, "
                     "mean batch %.2f" % (batches, batched, batched / batches))
    return lines


def summarize(doc, tid_filter=None):
    events = doc.get("traceEvents", [])
    if tid_filter is not None:
        events = [ev for ev in events if ev.get("tid") == tid_filter]
    if not events:
        print("no events")
        return

    by_name = {}  # name -> [count, total_dur_us, max_dur_us]
    tids = set()
    for ev in events:
        tids.add(ev.get("tid"))
        entry = by_name.setdefault(ev["name"], [0, 0.0, 0.0])
        entry[0] += 1
        dur = ev.get("dur", 0.0)
        entry[1] += dur
        entry[2] = max(entry[2], dur)

    span = max(ev["ts"] + ev.get("dur", 0.0) for ev in events)
    print("%d events, %d threads, %.3f ms span" %
          (len(events), len(tids), span / 1000.0))
    print()
    print("%-20s %8s %12s %12s %12s" %
          ("event", "count", "total_ms", "mean_us", "max_us"))
    for name in sorted(by_name, key=lambda n: -by_name[n][1]):
        count, total, peak = by_name[name]
        tag = "" if name in KNOWN_EVENTS else "  (unknown)"
        print("%-20s %8d %12.3f %12.3f %12.3f%s" %
              (name, count, total / 1000.0, total / count, peak, tag))
    decoded = decode_args(events)
    if decoded:
        print()
        for line in decoded:
            print(line)


def percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


def causal_report(doc, metrics=None):
    """Reconstruct notify->wake edges; return (violations, warnings)."""
    events = doc.get("traceEvents", [])
    violations = []
    warnings = []

    # Drops make the stream incomplete: a wake whose notify was overwritten
    # looks like a conservation violation.  The trace itself carries no drop
    # counts; they live in the metrics sibling (--metrics).
    if metrics is not None:
        drops = metrics.get("trace", {}).get("per_thread_drops", {})
        total_drops = sum(drops.values()) if isinstance(drops, dict) else 0
        if total_drops:
            warnings.append(
                "trace rings dropped %d events; stream is incomplete, "
                "skipping strict causal checks" % total_drops)
            print("\n".join(warnings))
            return [], warnings

    # Timeline: grants at the notify instant, consumption at the wait end.
    # Ties grant before they consume (a wake can never precede its notify).
    timeline = []
    for ev in events:
        name = ev.get("name")
        if name == "cv.notify":
            woken = event_arg(ev) or 0
            timeline.append((ev["ts"], 0, woken))
        elif name == "cv.wait" and ev.get("ph") == "X":
            end = ev["ts"] + ev.get("dur", 0.0)
            timeline.append((end, 1, None))
    timeline.sort(key=lambda t: (t[0], t[1]))

    granted = consumed = 0
    open_notifies = []  # FIFO of [notify_ts, remaining_tokens]
    latencies_us = []
    for when, kind, woken in timeline:
        if kind == 0:
            if woken > 0:
                granted += woken
                open_notifies.append([when, woken])
        else:
            consumed += 1
            if consumed > granted:
                if len(violations) < 5:
                    violations.append(
                        "wake at t=%.3fus has no matching notify token "
                        "(%d wakes vs %d granted)" % (when, consumed, granted))
                continue
            head = open_notifies[0]
            latencies_us.append(when - head[0])
            head[1] -= 1
            if head[1] == 0:
                open_notifies.pop(0)
    if consumed > granted and len(violations) >= 5:
        violations.append("... (%d unmatched wakes total)"
                          % (consumed - granted))

    notifies = sum(1 for t in timeline if t[1] == 0)
    wakes = consumed
    print("causal: %d notifies granting %d tokens, %d wakes consumed, "
          "%d tokens unconsumed at end of trace"
          % (notifies, granted, wakes, max(0, granted - consumed)))

    latencies_us.sort()
    if latencies_us:
        print("notify->run latency:  p50=%.1fus  p90=%.1fus  p99=%.1fus  "
              "max=%.1fus  (%d edges, FIFO-matched)"
              % (percentile(latencies_us, 0.5), percentile(latencies_us, 0.9),
                 percentile(latencies_us, 0.99), latencies_us[-1],
                 len(latencies_us)))
    if metrics is not None:
        hist = metrics.get("histograms", {}).get("notify_wake_ns", {})
        if hist.get("count"):
            print("notify_wake_ns hist:  p50=%.1fus  p99=%.1fus  (%d samples,"
                  " runtime-measured; log-bucketed, cross-check only)"
                  % (hist["p50"] / 1e3, hist["p99"] / 1e3, hist["count"]))

    return violations, warnings


def causal_morph_check(doc):
    """Strict wait-morphing check: wakes matched to one multi-waiter notify
    must have strictly increasing end timestamps (one runnable per unlock
    implies serialization; simultaneous end stamps mean a herd stampede)."""
    events = doc.get("traceEvents", [])
    timeline = []
    for ev in events:
        name = ev.get("name")
        if name == "cv.notify":
            woken = event_arg(ev) or 0
            timeline.append((ev["ts"], 0, woken))
        elif name == "cv.wait" and ev.get("ph") == "X":
            timeline.append((ev["ts"] + ev.get("dur", 0.0), 1, None))
    timeline.sort(key=lambda t: (t[0], t[1]))
    violations = []
    open_notifies = []  # FIFO of [notify_ts, remaining, last_end, granted]
    for when, kind, woken in timeline:
        if kind == 0:
            if woken > 0:
                open_notifies.append([when, woken, None, woken])
        elif open_notifies:
            head = open_notifies[0]
            if head[3] > 1 and head[2] is not None and when <= head[2]:
                if len(violations) < 5:
                    violations.append(
                        "morph: wakes at t=%.3fus and t=%.3fus from the "
                        "notify at t=%.3fus are not serialized"
                        % (head[2], when, head[0]))
            head[2] = when
            head[1] -= 1
            if head[1] == 0:
                open_notifies.pop(0)
    return violations


# ---------------------------------------------------------------------------
# --self-test: embedded fixtures exercised with no files and no third-party
# imports, so CI can sanity-check the analyzer itself in a bare container.

_FIX_TRACE_OK = {"traceEvents": [
    {"name": "cv.notify", "ph": "i", "ts": 0.0, "pid": 1, "tid": 1, "s": "t",
     "args": {"arg": 2}},
    {"name": "cv.wait", "ph": "X", "ts": 0.0, "dur": 5.0, "pid": 1, "tid": 2},
    {"name": "cv.wait", "ph": "X", "ts": 1.0, "dur": 7.0, "pid": 1, "tid": 3},
    {"name": "txn.abort", "ph": "i", "ts": 9.0, "pid": 1, "tid": 2, "s": "t",
     "args": {"arg": 0}},
]}

_FIX_TRACE_BAD = {"traceEvents": [
    {"name": "cv.wait", "ph": "X", "ts": 4.0, "pid": 1, "tid": 2},  # no dur
    {"name": "cv.notify", "ph": "i", "ts": 1.0, "pid": 1, "tid": 1},  # !sorted
]}

# A wake with no preceding notify token: conservation must flag it.
_FIX_CAUSAL_BAD = {"traceEvents": [
    {"name": "cv.wait", "ph": "X", "ts": 0.0, "dur": 2.0, "pid": 1, "tid": 2},
    {"name": "cv.notify", "ph": "i", "ts": 5.0, "pid": 1, "tid": 1, "s": "t",
     "args": {"arg": 1}},
]}

# Two wakes from one multi-waiter notify ending at the same instant: a
# stampede, which --morph-strict must reject (plain --causal accepts it).
_FIX_MORPH_BAD = {"traceEvents": [
    {"name": "cv.notify", "ph": "i", "ts": 0.0, "pid": 1, "tid": 1, "s": "t",
     "args": {"arg": 2}},
    {"name": "cv.wait", "ph": "X", "ts": 0.0, "dur": 3.0, "pid": 1, "tid": 2},
    {"name": "cv.wait", "ph": "X", "ts": 1.0, "dur": 2.0, "pid": 1, "tid": 3},
]}


def _fixture_flight():
    return {
        "tmcv_flight": 1,
        "meta": {"version": "1.0.0", "trace_compiled": True,
                 "htm": "emulated", "reason": "self_test",
                 "uptime_seconds": 1.5},
        "alerts": {"watchdog_running": True, "alerts": [
            {"rule": "abort_storm", "firing": True, "threshold": 0.5,
             "last_value": 0.9, "breach_streak": 3, "fired_count": 1,
             "min_activity": 100, "consecutive": 2, "last_change_ms": 2000},
        ]},
        "metrics": {"tm": {"commits": 100, "aborts": 90,
                           "aborts_conflict": 88}},
        "history": {"meta": {"interval_ms": 1000, "depth": 240,
                             "samples_taken": 2, "running": True},
                    "samples": [{"t_ms": 1000, "seq": 0, "commits": 50}]},
        "attribution_full": {
            "conflicts_recorded": 88, "dropped": 0,
            "abort_sites": [],
            "conflict_pairs": [
                {"victim": "kv_set", "attacker": "kv_set", "count": 60},
                {"victim": "kv_get", "attacker": "kv_set", "count": 28},
            ],
            "hot_stripes": [],
        },
        "waitgraph": {
            "now_ticks": 1000, "cycle_threads": 0,
            "threads": [
                {"slot": 0, "os_tid": 100, "tm_slot": 0, "waiting": False},
                {"slot": 1, "os_tid": 101, "tm_slot": 1, "waiting": True,
                 "reason": "condvar", "site": "cv.wait.enqueue",
                 "site_id": 1, "detail": 0, "target": "0x1000",
                 "relayed": False, "age_ns": 505000000},
            ],
            "edges": [
                {"waiter_slot": 1, "waiter_tid": 101, "reason": "condvar",
                 "holder_slot": None, "holder_tid": None,
                 "holder_site": "cv.notify", "holder_site_id": 2,
                 "in_cycle": False},
            ],
            "suspects": [
                {"slot": 1, "os_tid": 101, "target": "0x1000",
                 "site": "cv.wait.enqueue", "age_ns": 505000000},
            ],
            "stall": {
                "total_ticks": 300, "total_ns": 150,
                "entries": [
                    {"reason": "condvar", "site": "cv.wait.enqueue",
                     "site_id": 1, "ticks": 200, "ns": 100},
                    {"reason": "orec", "site": "unattributed",
                     "site_id": 0, "ticks": 100, "ns": 50},
                ],
            },
        },
        "trace": _FIX_TRACE_OK,
    }


def self_test():
    import contextlib
    import copy
    import io

    checks = []

    def check(name, ok):
        checks.append((name, bool(ok)))

    check("validate accepts good trace", not validate(_FIX_TRACE_OK))
    bad = validate(_FIX_TRACE_BAD)
    check("validate flags missing dur", any("dur" in p for p in bad))
    check("validate flags unsorted ts", any("sorted" in p for p in bad))

    quiet = io.StringIO()
    with contextlib.redirect_stdout(quiet):
        good_v, _ = causal_report(_FIX_TRACE_OK)
        bad_v, _ = causal_report(_FIX_CAUSAL_BAD)
        dropped_v, dropped_w = causal_report(
            _FIX_CAUSAL_BAD,
            metrics={"trace": {"per_thread_drops": {"0": 7}}})
        morph_ok_v, _ = causal_report(_FIX_MORPH_BAD)
    check("causal passes conserving trace", not good_v)
    check("causal flags tokenless wake", bad_v)
    check("causal skips strict checks under drops",
          not dropped_v and dropped_w)
    check("causal alone accepts stampede", not morph_ok_v)
    check("morph-strict flags stampede", causal_morph_check(_FIX_MORPH_BAD))
    check("morph-strict passes serialized wakes",
          not causal_morph_check(_FIX_TRACE_OK))

    flight = _fixture_flight()
    check("flight detector positive", is_flight(flight))
    check("flight detector negative", not is_flight(_FIX_TRACE_OK))
    check("flight validate accepts fixture", not validate_flight(flight))

    broken = copy.deepcopy(flight)
    broken["attribution_full"]["conflict_pairs"][0]["count"] = 1
    check("flight validate flags pair-sum mismatch",
          any("pairs sum" in p for p in validate_flight(broken)))

    broken = copy.deepcopy(flight)
    del broken["history"]
    check("flight validate flags missing section",
          any("history" in p for p in validate_flight(broken)))

    broken = copy.deepcopy(flight)
    broken["trace"]["traceEvents"][1].pop("dur")
    check("flight validate recurses into trace",
          any(p.startswith("trace:") for p in validate_flight(broken)))

    broken = copy.deepcopy(flight)
    broken["waitgraph"]["edges"][0]["waiter_slot"] = 99
    check("flight validate flags dangling waitgraph edge",
          any("waiter_slot" in p for p in validate_flight(broken)))

    broken = copy.deepcopy(flight)
    broken["waitgraph"]["edges"][0]["holder_slot"] = 42
    check("flight validate flags dangling holder slot",
          any("holder_slot" in p for p in validate_flight(broken)))

    broken = copy.deepcopy(flight)
    broken["waitgraph"]["stall"]["entries"][0]["ticks"] = 1
    check("flight validate flags stall ledger mismatch",
          any("stall entries sum" in p for p in validate_flight(broken)))

    with contextlib.redirect_stdout(quiet):
        summarize_flight(flight)  # must not raise

    failed = [name for name, ok in checks if not ok]
    for name in failed:
        print("self-test FAILED: %s" % name, file=sys.stderr)
    if failed:
        return 1
    print("self-test: %d checks ok" % len(checks))
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Summarize/validate a Chrome trace from --trace.")
    ap.add_argument("trace", nargs="?", default=None,
                    help="path to the trace (or flight-recorder) JSON")
    ap.add_argument("--validate", action="store_true",
                    help="check only; exit 1 on schema (or, with --causal, "
                         "causal) violations")
    ap.add_argument("--tid", type=int, default=None,
                    help="summarize a single thread id")
    ap.add_argument("--causal", action="store_true",
                    help="reconstruct notify->wake edges, check token "
                         "conservation, report notify->run latency")
    ap.add_argument("--morph-strict", action="store_true",
                    help="with --causal: require the wakes of each "
                         "multi-waiter notify to be serialized "
                         "(wait-morphing property)")
    ap.add_argument("--metrics", default=None,
                    help="metrics JSON sibling (drop counts gate the strict "
                         "checks; notify_wake_ns cross-checks the latency)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the embedded fixture suite and exit")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.trace is None:
        ap.error("trace path required (or --self-test)")

    try:
        doc = load(args.trace)
    except (OSError, json.JSONDecodeError) as e:
        print("error: %s" % e, file=sys.stderr)
        return 1

    metrics = None
    if args.metrics is not None:
        try:
            metrics = load(args.metrics)
        except (OSError, json.JSONDecodeError) as e:
            print("error: %s" % e, file=sys.stderr)
            return 1

    if is_flight(doc):
        flight_problems = validate_flight(doc)
        if args.validate and not args.causal:
            for p in flight_problems:
                print("invalid: %s" % p, file=sys.stderr)
            if flight_problems:
                return 1
            print("ok: flight dump, %d trace events, %d history samples"
                  % (len(doc["trace"].get("traceEvents", [])),
                     len(doc["history"].get("samples", []))))
            return 0
        if not args.causal:
            if flight_problems:
                for p in flight_problems:
                    print("warning: %s" % p, file=sys.stderr)
            summarize_flight(doc)
            return 0
        # --causal on a flight dump: analyze the embedded trace with the
        # embedded metrics (unless the caller supplied a sibling explicitly).
        if metrics is None:
            metrics = doc.get("metrics")
        doc = doc.get("trace", {})

    problems = validate(doc)
    if problems and (args.validate or args.causal):
        for p in problems:
            print("invalid: %s" % p, file=sys.stderr)
        if args.validate:
            return 1

    if args.causal:
        violations, _warnings = causal_report(doc, metrics=metrics)
        if args.morph_strict and not _warnings:
            violations += causal_morph_check(doc)
        for v in violations:
            print("violation: %s" % v, file=sys.stderr)
        if violations:
            print("causal check FAILED (%d violations)" % len(violations),
                  file=sys.stderr)
            return 1 if args.validate else 0
        print("causal check ok")
        return 0

    if args.validate:
        print("ok: %d events" % len(doc["traceEvents"]))
        return 0

    if problems:  # summarize best-effort, but warn
        for p in problems:
            print("warning: %s" % p, file=sys.stderr)
    summarize(doc, args.tid)
    return 0


if __name__ == "__main__":
    sys.exit(main())
