#!/usr/bin/env python3
"""Summarize or validate a Chrome trace-event JSON produced by --trace.

The runtime's trace writer (src/obs/trace_io.cpp) emits the Chrome/Perfetto
"JSON Array Format": a top-level object with a `traceEvents` list of complete
("ph": "X", with `dur`) and instant ("ph": "i") events, timestamps in
microseconds relative to the earliest event.  Load the file in
https://ui.perfetto.dev for a timeline; this script gives the terminal view:

    tools/trace_report.py trace.json              # per-event summary table
    tools/trace_report.py trace.json --validate   # schema check, exit 1 on error
    tools/trace_report.py trace.json --tid 3      # restrict to one thread

Only the standard library is used, so the script runs in minimal containers.
"""

import argparse
import json
import sys

# Events the tmcv runtime emits (src/obs/trace.h).  Unknown names are
# reported, not rejected: the format is open.
KNOWN_EVENTS = {
    "txn.commit", "txn.abort", "txn.serial_fallback",
    "cv.wait", "cv.notify",
    "sem.wait", "sem.post", "sem.post_batch", "sem.spin",
    "cm.backoff",
}

REQUIRED_FIELDS = ("name", "ph", "ts", "pid", "tid")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def validate(doc):
    """Return a list of problem strings (empty = valid)."""
    problems = []
    if not isinstance(doc, dict):
        return ["top level is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list `traceEvents`"]
    for i, ev in enumerate(events):
        where = "traceEvents[%d]" % i
        if not isinstance(ev, dict):
            problems.append("%s: not an object" % where)
            continue
        for field in REQUIRED_FIELDS:
            if field not in ev:
                problems.append("%s: missing `%s`" % (where, field))
        ph = ev.get("ph")
        if ph not in ("X", "i"):
            problems.append("%s: unexpected ph=%r (want 'X' or 'i')"
                            % (where, ph))
        if ph == "X" and "dur" not in ev:
            problems.append("%s: complete event missing `dur`" % where)
        for field in ("ts", "dur"):
            if field in ev and not isinstance(ev[field], (int, float)):
                problems.append("%s: `%s` is not a number" % (where, field))
        if len(problems) >= 20:
            problems.append("... (stopping after 20 problems)")
            return problems
    # Timestamps must be non-decreasing: the writer merges per-thread rings
    # with a stable sort.
    ts = [ev.get("ts") for ev in events
          if isinstance(ev, dict) and isinstance(ev.get("ts"), (int, float))]
    if any(b < a for a, b in zip(ts, ts[1:])):
        problems.append("traceEvents are not sorted by ts")
    return problems


def summarize(doc, tid_filter=None):
    events = doc.get("traceEvents", [])
    if tid_filter is not None:
        events = [ev for ev in events if ev.get("tid") == tid_filter]
    if not events:
        print("no events")
        return

    by_name = {}  # name -> [count, total_dur_us, max_dur_us]
    tids = set()
    for ev in events:
        tids.add(ev.get("tid"))
        entry = by_name.setdefault(ev["name"], [0, 0.0, 0.0])
        entry[0] += 1
        dur = ev.get("dur", 0.0)
        entry[1] += dur
        entry[2] = max(entry[2], dur)

    span = max(ev["ts"] + ev.get("dur", 0.0) for ev in events)
    print("%d events, %d threads, %.3f ms span" %
          (len(events), len(tids), span / 1000.0))
    print()
    print("%-20s %8s %12s %12s %12s" %
          ("event", "count", "total_ms", "mean_us", "max_us"))
    for name in sorted(by_name, key=lambda n: -by_name[n][1]):
        count, total, peak = by_name[name]
        tag = "" if name in KNOWN_EVENTS else "  (unknown)"
        print("%-20s %8d %12.3f %12.3f %12.3f%s" %
              (name, count, total / 1000.0, total / count, peak, tag))


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Summarize/validate a Chrome trace from --trace.")
    ap.add_argument("trace", help="path to the trace JSON")
    ap.add_argument("--validate", action="store_true",
                    help="schema-check only; exit 1 if invalid")
    ap.add_argument("--tid", type=int, default=None,
                    help="summarize a single thread id")
    args = ap.parse_args(argv)

    try:
        doc = load(args.trace)
    except (OSError, json.JSONDecodeError) as e:
        print("error: %s" % e, file=sys.stderr)
        return 1

    problems = validate(doc)
    if args.validate:
        if problems:
            for p in problems:
                print("invalid: %s" % p, file=sys.stderr)
            return 1
        print("ok: %d events" % len(doc["traceEvents"]))
        return 0

    if problems:  # summarize best-effort, but warn
        for p in problems:
            print("warning: %s" % p, file=sys.stderr)
    summarize(doc, args.tid)
    return 0


if __name__ == "__main__":
    sys.exit(main())
