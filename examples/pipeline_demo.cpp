// dedup-style pipeline demo: a 5-stage compression pipeline with bounded
// queues, a shared dedup table, and a serial in-order output stage --
// fully transactionalized (TMParsec+TMCondVar), including the relaxed
// (irrevocable) I/O transaction that the paper's §5.4 identifies as the
// scaling bottleneck.
//
// Build & run:  cmake --build build && ./build/examples/pipeline_demo
#include <cstdio>
#include <vector>

#include "apps/ordered_output.h"
#include "apps/pipeline.h"
#include "parsec/workload.h"
#include "tm/api.h"
#include "util/timing.h"

namespace {

using Policy = tmcv::apps::TxnPolicy;  // every critical section is a txn

struct Stats {
  std::atomic<std::uint64_t> emitted{0};
  std::atomic<std::uint64_t> dups{0};
};

}  // namespace

int main() {
  constexpr int kChunks = 200;
  constexpr std::size_t kBuckets = 32;

  typename Policy::Region hash_region;
  std::vector<std::unique_ptr<Policy::Cell<std::uint64_t>>> buckets;
  for (std::size_t b = 0; b < kBuckets; ++b)
    buckets.emplace_back(std::make_unique<Policy::Cell<std::uint64_t>>());
  tmcv::apps::ReorderBuffer<Policy> reorder(256);
  Stats stats;

  auto seq_of = [](std::uint64_t item) { return item >> 32; };
  auto payload_of = [](std::uint64_t item) { return item & 0xffffffffull; };

  tmcv::Stopwatch sw;
  {
    tmcv::apps::Pipeline<Policy>::Config cfg;
    cfg.stages = 5;
    cfg.workers_per_stage = 2;
    cfg.workers_last_stage = 1;  // the serial output thread
    cfg.queue_capacity = 8;
    tmcv::apps::Pipeline<Policy> pipe(
        cfg,
        [&](std::size_t stage, std::uint64_t item) {
          std::uint64_t payload =
              payload_of(item) ^
              (tmcv::parsec::synth_work(stage * 7919 + payload_of(item), 2000) &
               0xffffffffull);
          if (stage == 2) {
            // Dedup probe: one small transaction against the shared table.
            const std::size_t b = payload % kBuckets;
            const bool dup = Policy::critical(hash_region, [&] {
              const auto seen = buckets[b]->get();
              buckets[b]->set(seen + 1);
              return seen > 0;
            });
            if (dup) stats.dups.fetch_add(1);
          }
          return (seq_of(item) << 32) | payload;
        },
        [&](std::uint64_t item) {
          reorder.insert(seq_of(item), payload_of(item),
                         [&](std::uint64_t, std::uint64_t) {
                           // The "I/O" -- inside an irrevocable transaction.
                           stats.emitted.fetch_add(1);
                         });
        });
    for (int c = 0; c < kChunks; ++c)
      pipe.feed((static_cast<std::uint64_t>(c) << 32) |
                (static_cast<std::uint64_t>(c) * 2654435761u & 0xffffffffu));
    pipe.finish();
  }

  std::printf("dedup-style pipeline (fully transactional):\n");
  std::printf("  chunks emitted (in order): %llu / %d\n",
              static_cast<unsigned long long>(stats.emitted.load()), kChunks);
  std::printf("  duplicate chunks found:    %llu\n",
              static_cast<unsigned long long>(stats.dups.load()));
  std::printf("  elapsed:                   %.1f ms\n",
              sw.elapsed_seconds() * 1e3);
  const auto tm_stats = tmcv::tm::stats_snapshot();
  std::printf("  TM activity: %s\n", tm_stats.to_string().c_str());
  return 0;
}
