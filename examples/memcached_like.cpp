// A memcached-shaped server, fully transactionalized.
//
// The paper's opening motivation: Ruan et al. hit a wall transactionalizing
// memcached because its connection dispatch uses condition variables, which
// no TM system supported.  This example is that architecture with every
// critical section a transaction:
//
//   dispatcher --> transactional connection queue --> worker pool
//                      (condvar: workers sleep when idle)
//   workers    --> GET/SET against a transactional hash table (the cache)
//
// The connection queue's waits split transactions at the WAIT; the cache
// operations compose with the dequeue in a single transaction when useful.
//
// Build & run:  cmake --build build && ./build/examples/memcached_like
#include <cstdio>
#include <thread>
#include <vector>

#include "core/legacy_cv.h"
#include "tm/api.h"
#include "tm/var.h"
#include "tmds/tx_hashmap.h"
#include "tmds/tx_queue.h"
#include "util/rng.h"
#include "util/timing.h"

namespace {

using namespace tmcv;

// A "request": op in the top bit, key below.
constexpr std::uint64_t kOpSet = 1ull << 63;
constexpr std::uint64_t kShutdown = ~std::uint64_t{0};

}  // namespace

int main() {
  constexpr int kWorkers = 4;
  constexpr int kRequests = 20000;
  constexpr std::uint64_t kKeySpace = 512;

  tmds::TxQueue<std::uint64_t> connections;  // the dispatch queue
  tmds::TxHashMap<std::uint64_t, std::uint64_t> cache(256);
  tx_condition_variable work_cv;
  tm::var<long> hits(0), misses(0), sets(0);

  Stopwatch sw;
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        std::uint64_t req = 0;
        bool got = false;
        bool quit = false;
        // Dequeue-or-sleep: one transaction; the WAIT splits it.
        for (;;) {
          tm::atomically([&] {
            got = false;
            quit = false;
            if (connections.dequeue(req)) {
              if (req == kShutdown) {
                connections.enqueue(kShutdown);  // pass it on
                quit = true;
                return;
              }
              got = true;
              return;
            }
            work_cv.wait_final_tx();
          });
          if (got || quit) break;
        }
        if (quit) return;
        // Serve the request: cache access is its own transaction (it could
        // equally have been fused with the dequeue above).
        const bool is_set = (req & kOpSet) != 0;
        const std::uint64_t key = req & ~kOpSet;
        tm::atomically([&] {
          if (is_set) {
            cache.put(key, key * 2 + 1);
            sets.store(sets.load() + 1);
          } else {
            std::uint64_t value = 0;
            if (cache.get(key, value))
              hits.store(hits.load() + 1);
            else
              misses.store(misses.load() + 1);
          }
        });
      }
    });
  }

  // Dispatcher: "accepts" requests and hands them to the pool.
  Xoshiro256 rng(2026);
  for (int i = 0; i < kRequests; ++i) {
    const std::uint64_t key = rng.next_below(kKeySpace);
    const bool is_set = rng.next_below(10) < 3;  // 30% SET, 70% GET
    tm::atomically([&] {
      connections.enqueue(is_set ? (key | kOpSet) : key);
      work_cv.notify_one();
    });
  }
  tm::atomically([&] {
    connections.enqueue(kShutdown);
    work_cv.notify_one();
  });
  // Drain: wake any worker that parked after the last enqueue raced by.
  std::atomic<bool> joined{false};
  std::thread drain([&] {
    while (!joined.load()) {
      work_cv.notify_all();
      std::this_thread::yield();
    }
  });
  for (auto& t : workers) t.join();
  joined.store(true);
  drain.join();
  const double seconds = sw.elapsed_seconds();

  std::printf("memcached-like server, fully transactionalized:\n");
  std::printf("  requests: %d across %d workers in %.1f ms (%.0f kreq/s)\n",
              kRequests, kWorkers, seconds * 1e3,
              kRequests / seconds / 1e3);
  std::printf("  GET hits: %ld  GET misses: %ld  SETs: %ld\n", hits.load(),
              misses.load(), sets.load());
  std::printf("  cache entries: %zu\n", cache.size());
  const auto stats = tm::stats_snapshot();
  std::printf("  TM: %s\n", stats.to_string().c_str());
  std::printf("\nThis is the architecture Ruan et al. could not "
              "transactionalize without transaction-friendly condition "
              "variables (paper, §1).\n");
  return 0;
}
