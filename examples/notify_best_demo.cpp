// notify_best demo (§3.4): because the wait set lives in user space, a
// notifier can *select* which thread to wake -- by priority, by deadline,
// or by the predicate each waiter registered.  OS-backed condition
// variables cannot do this; they must wake everyone (notify_all) or an
// arbitrary thread (notify_one).
//
// Scenario: a dispatcher completes jobs of various sizes; worker threads
// wait, each tagged with the largest job size it can accept.  notify_best
// wakes the best-fitting worker directly.
//
// Build & run:  cmake --build build && ./build/examples/notify_best_demo
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "core/condvar.h"
#include "sync/sync_context.h"

namespace {

using namespace tmcv;

struct Job {
  std::uint64_t size = 0;
  bool taken = false;
};

}  // namespace

int main() {
  constexpr int kWorkers = 4;
  // Worker k accepts jobs up to capacity[k].
  const std::uint64_t capacity[kWorkers] = {10, 25, 50, 100};
  constexpr int kJobs = 8;
  const std::uint64_t job_sizes[kJobs] = {5, 80, 30, 12, 95, 45, 8, 60};

  CondVar cv;
  std::mutex m;
  Job current;
  std::atomic<int> completed{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  for (int k = 0; k < kWorkers; ++k) {
    workers.emplace_back([&, k] {
      for (;;) {
        std::unique_lock<std::mutex> lk(m);
        while (!stop.load() &&
               (current.taken || current.size == 0 ||
                current.size > capacity[k])) {
          LockSync sync(m);
          // Tag = this worker's capacity; the notifier scores against it.
          cv.wait(sync, capacity[k]);
        }
        if (stop.load()) return;
        current.taken = true;
        std::printf("  worker(cap=%3llu) took job of size %llu\n",
                    static_cast<unsigned long long>(capacity[k]),
                    static_cast<unsigned long long>(current.size));
        current.size = 0;
        current.taken = false;
        lk.unlock();
        completed.fetch_add(1);
      }
    });
  }

  std::printf("notify_best: wake the smallest-capacity worker that fits "
              "each job\n\n");
  for (int j = 0; j < kJobs; ++j) {
    const std::uint64_t size = job_sizes[j];
    {
      std::lock_guard<std::mutex> g(m);
      current.size = size;
    }
    // Score: eligible workers (capacity >= size) rank higher the *smaller*
    // their capacity -- best-fit selection.  Ineligible workers score 0.
    auto best_fit = [size](std::uint64_t cap) {
      return cap >= size ? 1000000 - cap : 0;
    };
    cv.notify_best(best_fit);
    // Re-notify until the job is taken: the eligible worker may not have
    // parked yet when the first notify fired.
    while (completed.load() <= j) {
      cv.notify_best(best_fit);
      std::this_thread::yield();
    }
  }

  stop.store(true);
  std::thread drain([&] {
    while (cv.waiter_count() > 0) {
      cv.notify_all();
      std::this_thread::yield();
    }
  });
  for (auto& w : workers) w.join();
  drain.join();
  std::printf("\nall %d jobs executed by best-fitting workers; zero "
              "oblivious wake-ups.\n", kJobs);
  return 0;
}
