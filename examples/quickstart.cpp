// Quickstart: the transaction-friendly condition variable in its two
// habitats.
//
//   1. Lock-based code -- tmcv::condition_variable is a drop-in for
//      std::condition_variable (same wait/notify shapes, minus spurious
//      wake-ups).
//   2. Transactional code -- the *same* condition variable type also works
//      inside tm::atomically, where std::condition_variable cannot be used
//      at all; waits split the transaction and notifies defer to commit.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <mutex>
#include <thread>

#include "core/legacy_cv.h"
#include "tm/api.h"
#include "tm/var.h"

namespace {

// --- Part 1: classic lock-based producer/consumer ---------------------

void lock_based_demo() {
  std::printf("[locks] producer/consumer with tmcv::condition_variable\n");
  std::mutex m;
  tmcv::condition_variable cv;
  int item = 0;
  bool has_item = false;

  std::thread consumer([&] {
    for (int want = 1; want <= 3; ++want) {
      std::unique_lock<std::mutex> lock(m);
      cv.wait(lock, [&] { return has_item; });  // familiar interface
      std::printf("[locks]   consumed item %d\n", item);
      has_item = false;
      lock.unlock();
      cv.notify_one();
    }
  });
  for (int i = 1; i <= 3; ++i) {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return !has_item; });
    item = i;
    has_item = true;
    lock.unlock();
    cv.notify_one();
  }
  consumer.join();
}

// --- Part 2: the same shape, but with transactions --------------------

void transactional_demo() {
  std::printf("[tm]    producer/consumer inside tm::atomically\n");
  tmcv::tx_condition_variable cv;
  tmcv::tm::var<int> item(0);
  tmcv::tm::var<bool> has_item(false);

  std::thread consumer([&] {
    for (int want = 1; want <= 3; ++want) {
      // The refactored wait loop: each iteration is one transaction; a
      // false predicate enqueues and splits the transaction at the WAIT.
      for (;;) {
        bool got = false;
        tmcv::tm::atomically([&] {
          got = false;
          if (has_item.load()) {
            std::printf("[tm]      consumed item %d\n", item.load());
            has_item.store(false);
            cv.notify_one();  // deferred until this transaction commits
            got = true;
            return;
          }
          cv.wait_final_tx();
        });
        if (got) break;
      }
    }
  });
  for (int i = 1; i <= 3; ++i) {
    for (;;) {
      bool placed = false;
      tmcv::tm::atomically([&] {
        placed = false;
        if (!has_item.load()) {
          item.store(i);
          has_item.store(true);
          cv.notify_one();
          placed = true;
          return;
        }
        cv.wait_final_tx();
      });
      if (placed) break;
    }
  }
  consumer.join();
}

}  // namespace

int main() {
  lock_based_demo();
  transactional_demo();
  std::printf("done: one condition variable implementation served both "
              "locks and transactions.\n");
  return 0;
}
