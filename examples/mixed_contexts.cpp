// Mixed-context demo: the property no OS condition variable has (§3.2) --
// one CondVar touched concurrently from a lock-based critical section, a
// software transaction, a *hardware* transaction (emulated), and naked
// (unsynchronized) code, with no races on the wait queue because the queue
// itself is transactional.
//
// Build & run:  cmake --build build && ./build/examples/mixed_contexts
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "core/condvar.h"
#include "sync/sync_context.h"
#include "tm/api.h"
#include "tm/txn_sync.h"
#include "tm/var.h"

namespace {

using namespace tmcv;

}  // namespace

int main() {
  CondVar cv;
  std::mutex m;
  tm::var<int> tickets(0);
  std::atomic<int> served{0};
  constexpr int kTicketsPerWaiter = 50;

  // Waiter 1: classic lock-based critical section.
  std::thread lock_waiter([&] {
    for (int i = 0; i < kTicketsPerWaiter; ++i) {
      std::unique_lock<std::mutex> lk(m);
      for (;;) {
        const int avail = tm::atomically([&] {
          const int t = tickets.load();
          if (t > 0) tickets.store(t - 1);
          return t;
        });
        if (avail > 0) break;
        LockSync sync(m);
        cv.wait(sync);  // release the lock, sleep, re-acquire
      }
      served.fetch_add(1);
    }
    std::printf("  lock-based waiter done (%d tickets)\n",
                kTicketsPerWaiter);
  });

  // Waiter 2: software transaction with the refactored wait loop.
  std::thread stm_waiter([&] {
    for (int i = 0; i < kTicketsPerWaiter; ++i) {
      for (;;) {
        bool got = false;
        tm::atomically(tm::Backend::EagerSTM, [&] {
          got = false;
          if (tickets.load() > 0) {
            tickets.store(tickets.load() - 1);
            got = true;
            return;
          }
          tm::TxnSync sync;
          cv.wait_final(sync);
        });
        if (got) break;
      }
      served.fetch_add(1);
    }
    std::printf("  STM waiter done (%d tickets)\n", kTicketsPerWaiter);
  });

  // Waiter 3: hardware transaction (emulated RTM backend).
  std::thread htm_waiter([&] {
    for (int i = 0; i < kTicketsPerWaiter; ++i) {
      for (;;) {
        bool got = false;
        tm::atomically(tm::Backend::HTM, [&] {
          got = false;
          if (tickets.load() > 0) {
            tickets.store(tickets.load() - 1);
            got = true;
            return;
          }
          tm::TxnSync sync;
          cv.wait_final(sync);
        });
        if (got) break;
      }
      served.fetch_add(1);
    }
    std::printf("  HTM waiter done (%d tickets)\n", kTicketsPerWaiter);
  });

  // Producer: issues tickets alternately from a lock-based section, a
  // transaction, and completely naked code -- the notify is safe from all
  // three.
  const int total = 3 * kTicketsPerWaiter;
  for (int i = 0; i < total; ++i) {
    switch (i % 3) {
      case 0: {  // lock-based notify
        std::lock_guard<std::mutex> g(m);
        tm::atomically([&] { tickets.store(tickets.load() + 1); });
        cv.notify_one();
        break;
      }
      case 1:  // transactional notify (deferred to commit)
        tm::atomically([&] {
          tickets.store(tickets.load() + 1);
          cv.notify_one();
        });
        break;
      case 2:  // naked notify
        tm::atomically([&] { tickets.store(tickets.load() + 1); });
        cv.notify_one();
        break;
    }
    if (i % 16 == 0) std::this_thread::yield();
  }
  // Sweep stragglers: a waiter may have parked just after the last notify.
  while (served.load() < total) {
    cv.notify_all();
    std::this_thread::yield();
  }
  lock_waiter.join();
  stm_waiter.join();
  htm_waiter.join();

  std::printf("\nserved %d/%d tickets across lock-based, STM, HTM and "
              "naked contexts sharing one condition variable.\n",
              served.load(), total);
  return 0;
}
